package kcore

import (
	"fmt"

	"kcore/internal/graph"
	"kcore/internal/korder"
	"kcore/internal/order"

	"kcore/internal/decomp"
)

// IndexState is the complete maintained state of an order-based engine at
// one update sequence number: the edge set, the core numbers, and — the part
// a fresh decomposition cannot reproduce — the maintained k-order, which
// depends on the engine's whole update history. Together with the engine
// parameters that drive deterministic replay (seed, heuristic, order
// structure) it is exactly what a durable snapshot must capture so that
// snapshot + write-ahead-log replay reconstructs the engine bit-identically:
// same cores, same k-order, same Seq. Capture one with View(WithIndex()) and
// View.Index; rebuild an engine from one with FromIndex.
type IndexState struct {
	// Seq is the engine update sequence number the state was captured at.
	Seq uint64
	// Vertices is the vertex count (max vertex id + 1); it can exceed the
	// largest endpoint in Edges when trailing vertices are isolated.
	Vertices int
	// Edges lists every edge with U < V.
	Edges [][2]int
	// Cores holds the core number of every vertex, indexed by vertex id.
	Cores []int
	// Order is the maintained k-order, front to back.
	Order []int
	// Seed, Heuristic and Structure are the engine parameters that must
	// survive a restore for subsequent updates (including wholesale
	// recomputations) to replay deterministically.
	Seed      uint64
	Heuristic Heuristic
	Structure OrderStructure
}

// FromIndex reconstructs an order-based engine from a captured IndexState.
// The state is fully verified in O(m + n) before installation (see
// korder.Restore): a corrupted or internally inconsistent state yields an
// error, never a silently-wrong engine. The engine adopts the state's Seq,
// Seed, Heuristic and Structure — replay determinism depends on them — while
// other options (WithWorkers, WithRebuildThreshold, ...) may be supplied as
// opts.
func FromIndex(st *IndexState, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.algorithm != OrderBased {
		return nil, fmt.Errorf("kcore: FromIndex supports only the order-based engine: %w",
			ErrWrongEngine)
	}
	cfg.seed = st.Seed
	cfg.heuristic = st.Heuristic
	cfg.structure = st.Structure
	if st.Vertices < 0 {
		return nil, fmt.Errorf("kcore: index state: negative vertex count %d", st.Vertices)
	}
	g := graph.New(st.Vertices)
	for _, ed := range st.Edges {
		if ed[0] < 0 || ed[0] >= st.Vertices || ed[1] < 0 || ed[1] >= st.Vertices {
			return nil, fmt.Errorf("kcore: index state: edge (%d,%d) outside vertex range %d",
				ed[0], ed[1], st.Vertices)
		}
		if err := g.AddEdge(ed[0], ed[1]); err != nil {
			return nil, fmt.Errorf("kcore: index state: edge (%d,%d): %w", ed[0], ed[1], err)
		}
	}
	// korder.Restore takes ownership of the core and order slices; copy so
	// the caller's IndexState stays untouched.
	cores := make([]int, len(st.Cores))
	copy(cores, st.Cores)
	ord := make([]int, len(st.Order))
	copy(ord, st.Order)
	m, err := korder.Restore(g, cores, ord, korder.Options{
		Heuristic: decomp.Heuristic(cfg.heuristic),
		OrderKind: order.Kind(cfg.structure),
		Seed:      cfg.seed,
	})
	if err != nil {
		return nil, fmt.Errorf("kcore: %w", err)
	}
	e := &Engine{g: g, m: orderImpl{m}, cfg: cfg, seq: st.Seq}
	e.initBatchRuntime()
	e.publishEpochFull()
	return e, nil
}

// Command kcore is a CLI for static and dynamic k-core decomposition.
//
// Usage:
//
//	kcore decompose <edgelist>           print core-number summary
//	kcore stats <edgelist>               print graph statistics
//	kcore stream <edgelist>              maintain cores over stdin updates
//	kcore communities <edgelist> <k>     print connected k-core components
//
// Stream mode reads one operation per line from stdin: "+ u v [u v ...]"
// inserts edges (multiple pairs apply as one batch), "- u v [u v ...]"
// removes them, "? v" prints the core number of v, "k n" prints the n-core
// vertex count, "watch k" prints subsequent core changes at level k or
// above (a cascade larger than the watch buffer reports how many events
// were dropped), and "quit" exits.
package main

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"kcore"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	engine, err := kcore.Load(f)
	if err != nil {
		fatal(err)
	}
	switch cmd {
	case "decompose":
		decompose(engine)
	case "stats":
		stats(engine)
	case "stream":
		stream(engine)
	case "communities":
		if len(os.Args) < 4 {
			usage()
		}
		k, err := strconv.Atoi(os.Args[3])
		if err != nil {
			fatal(fmt.Errorf("bad k %q: %w", os.Args[3], err))
		}
		communities(engine, k)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kcore (decompose|stats|stream) <edgelist> | kcore communities <edgelist> <k>")
	os.Exit(2)
}

func communities(e *kcore.Engine, k int) {
	comps := e.CoreComponents(k)
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	fmt.Printf("%d-core components: %d\n", k, len(comps))
	for i, c := range comps {
		sample := c
		if len(sample) > 8 {
			sample = sample[:8]
		}
		fmt.Printf("#%d size=%d sample=%v\n", i+1, len(c), sample)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcore:", err)
	os.Exit(1)
}

func decompose(e *kcore.Engine) {
	// One consistent snapshot answers every query below.
	v := e.View()
	hist := map[int]int{}
	for _, c := range v.Cores() {
		hist[c]++
	}
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("vertices=%d edges=%d degeneracy=%d\n", v.NumVertices(), v.NumEdges(), v.Degeneracy())
	for _, k := range keys {
		fmt.Printf("core %4d: %d vertices\n", k, hist[k])
	}
}

func stats(e *kcore.Engine) {
	v := e.View()
	n := v.NumVertices()
	m := v.NumEdges()
	avg := 0.0
	if n > 0 {
		avg = 2 * float64(m) / float64(n)
	}
	fmt.Printf("n=%d m=%d avg_deg=%.2f max_k=%d\n", n, m, avg, v.Degeneracy())
}

// explain maps engine errors to short operator-facing messages, branching
// on the structured sentinels.
func explain(err error) string {
	var be *kcore.BatchError
	pos := ""
	if errors.As(err, &be) {
		pos = fmt.Sprintf(" (pair %d: %d-%d)", be.Index+1, be.Update.U, be.Update.V)
	}
	switch {
	case errors.Is(err, kcore.ErrDuplicateEdge):
		return "edge already present" + pos
	case errors.Is(err, kcore.ErrMissingEdge):
		return "edge not present" + pos
	case errors.Is(err, kcore.ErrSelfLoop):
		return "self loops not supported" + pos
	case errors.Is(err, kcore.ErrVertexRange):
		return "vertex ids must be non-negative" + pos
	default:
		return err.Error()
	}
}

// parseBatch turns "u v [u v ...]" fields into a batch of op updates.
func parseBatch(op kcore.Op, fields []string) (kcore.Batch, error) {
	if len(fields) == 0 || len(fields)%2 != 0 {
		return nil, fmt.Errorf("want an even number of vertex ids")
	}
	batch := make(kcore.Batch, 0, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		u, err1 := strconv.Atoi(fields[i])
		v, err2 := strconv.Atoi(fields[i+1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad vertex ids %q %q", fields[i], fields[i+1])
		}
		if op == kcore.OpAdd {
			batch = append(batch, kcore.Add(u, v))
		} else {
			batch = append(batch, kcore.Remove(u, v))
		}
	}
	return batch, nil
}

func stream(e *kcore.Engine) {
	fmt.Printf("loaded n=%d m=%d degeneracy=%d; reading ops from stdin\n",
		e.NumVertices(), e.NumEdges(), e.Degeneracy())
	var events <-chan kcore.CoreChange
	var cancelWatch func()
	var watchDropped atomic.Uint64
	var reportedDrops uint64
	drainWatch := func() {
		if events == nil {
			return
		}
		for {
			select {
			case ev := <-events:
				fmt.Printf("watch: core(%d) %d -> %d (seq %d)\n",
					ev.Vertex, ev.OldCore, ev.NewCore, ev.Seq)
			default:
				if d := watchDropped.Load(); d > reportedDrops {
					fmt.Printf("watch: %d events dropped (buffer full)\n", d-reportedDrops)
					reportedDrops = d
				}
				return
			}
		}
	}
	defer func() {
		if cancelWatch != nil {
			cancelWatch()
		}
	}()
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "q":
			return
		case "+", "-":
			op := kcore.OpAdd
			if fields[0] == "-" {
				op = kcore.OpRemove
			}
			batch, err := parseBatch(op, fields[1:])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			info, err := e.Apply(batch)
			if err != nil {
				fmt.Println("error:", explain(err))
				continue
			}
			drainWatch()
			fmt.Printf("ok applied=%d changed=%d visited=%d degeneracy=%d\n",
				info.Applied, len(info.Total.CoreChanged), info.Total.Visited, e.Degeneracy())
		case "?":
			if len(fields) != 2 {
				fmt.Println("error: want '? v'")
				continue
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("error: bad vertex id")
				continue
			}
			fmt.Printf("core(%d)=%d\n", v, e.Core(v))
		case "k":
			if len(fields) != 2 {
				fmt.Println("error: want 'k n'")
				continue
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("error: bad k")
				continue
			}
			fmt.Printf("|%d-core|=%d\n", k, len(e.KCore(k)))
		case "watch":
			if len(fields) != 2 {
				fmt.Println("error: want 'watch k'")
				continue
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("error: bad k")
				continue
			}
			if cancelWatch != nil {
				cancelWatch()
			}
			watchDropped.Store(0)
			reportedDrops = 0
			events, cancelWatch = e.Subscribe(kcore.WithMinCore(k),
				kcore.WithBuffer(1024), kcore.WithDropCounter(&watchDropped))
			fmt.Printf("watching core changes at level >= %d\n", k)
		default:
			fmt.Println("error: unknown op (use + - ? k watch quit)")
		}
	}
}

// Command kcore is a CLI for static and dynamic k-core decomposition.
//
// Usage:
//
//	kcore decompose <edgelist>           print core-number summary
//	kcore stats <edgelist>               print graph statistics
//	kcore stream <edgelist>              maintain cores over stdin updates
//	kcore communities <edgelist> <k>     print connected k-core components
//
// Stream mode reads one operation per line from stdin: "+ u v" inserts an
// edge, "- u v" removes one, "? v" prints the core number of v, "k n"
// prints the n-core vertex count, and "quit" exits.
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"kcore"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	engine, err := kcore.Load(f)
	if err != nil {
		fatal(err)
	}
	switch cmd {
	case "decompose":
		decompose(engine)
	case "stats":
		stats(engine)
	case "stream":
		stream(engine)
	case "communities":
		if len(os.Args) < 4 {
			usage()
		}
		k, err := strconv.Atoi(os.Args[3])
		if err != nil {
			fatal(fmt.Errorf("bad k %q: %w", os.Args[3], err))
		}
		communities(engine, k)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kcore (decompose|stats|stream) <edgelist> | kcore communities <edgelist> <k>")
	os.Exit(2)
}

func communities(e *kcore.Engine, k int) {
	comps := e.CoreComponents(k)
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	fmt.Printf("%d-core components: %d\n", k, len(comps))
	for i, c := range comps {
		sample := c
		if len(sample) > 8 {
			sample = sample[:8]
		}
		fmt.Printf("#%d size=%d sample=%v\n", i+1, len(c), sample)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcore:", err)
	os.Exit(1)
}

func decompose(e *kcore.Engine) {
	cores := e.Cores()
	hist := map[int]int{}
	for _, c := range cores {
		hist[c]++
	}
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("vertices=%d edges=%d degeneracy=%d\n", e.NumVertices(), e.NumEdges(), e.Degeneracy())
	for _, k := range keys {
		fmt.Printf("core %4d: %d vertices\n", k, hist[k])
	}
}

func stats(e *kcore.Engine) {
	n := e.NumVertices()
	m := e.NumEdges()
	avg := 0.0
	if n > 0 {
		avg = 2 * float64(m) / float64(n)
	}
	fmt.Printf("n=%d m=%d avg_deg=%.2f max_k=%d\n", n, m, avg, e.Degeneracy())
}

func stream(e *kcore.Engine) {
	fmt.Printf("loaded n=%d m=%d degeneracy=%d; reading ops from stdin\n",
		e.NumVertices(), e.NumEdges(), e.Degeneracy())
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "q":
			return
		case "+", "-":
			if len(fields) != 3 {
				fmt.Println("error: want '+ u v' or '- u v'")
				continue
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				fmt.Println("error: bad vertex ids")
				continue
			}
			var info kcore.UpdateInfo
			var err error
			if fields[0] == "+" {
				info, err = e.AddEdge(u, v)
			} else {
				info, err = e.RemoveEdge(u, v)
			}
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("ok changed=%d visited=%d degeneracy=%d\n",
				len(info.CoreChanged), info.Visited, e.Degeneracy())
		case "?":
			if len(fields) != 2 {
				fmt.Println("error: want '? v'")
				continue
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("error: bad vertex id")
				continue
			}
			fmt.Printf("core(%d)=%d\n", v, e.Core(v))
		case "k":
			if len(fields) != 2 {
				fmt.Println("error: want 'k n'")
				continue
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("error: bad k")
				continue
			}
			fmt.Printf("|%d-core|=%d\n", k, len(e.KCore(k)))
		default:
			fmt.Println("error: unknown op (use + - ? k quit)")
		}
	}
}

// Command kcore-gen generates the synthetic datasets (the offline analogs
// of the paper's Table I graphs) or parameterized random graphs, writing
// them as edge lists — or, with -snapshot, as kcore-serve durability
// snapshots (the internal/persist binary format), ready to drop into a
// -data-dir so the server boots the graph without re-decomposing it from
// an edge list.
//
// Usage:
//
//	kcore-gen -dataset patents-sim -out patents.txt
//	kcore-gen -model ba -n 10000 -k 8 -seed 3 -out social.txt
//	kcore-gen -model ba -n 10000 -snapshot -out data/snapshot.kcs
//	kcore-gen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"kcore"
	"kcore/internal/datasets"
	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/persist"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "named dataset analog (see -list)")
		model    = flag.String("model", "", "generator model: er|ba|rmat|grid|community|ws")
		n        = flag.Int("n", 10000, "number of vertices (er/ba/community/ws)")
		m        = flag.Int("m", 40000, "number of edges (er/rmat)")
		k        = flag.Int("k", 8, "attachment degree (ba) / ring neighbors (ws)")
		scale    = flag.Int("scale", 14, "log2 vertex count (rmat)")
		rows     = flag.Int("rows", 100, "grid rows")
		cols     = flag.Int("cols", 100, "grid cols")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		out      = flag.String("out", "", "output file (default stdout)")
		list     = flag.Bool("list", false, "list named datasets and exit")
		stats    = flag.Bool("stats", false, "print a core-structure summary of the generated graph to stderr")
		snapshot = flag.Bool("snapshot", false, "write the kcore-serve durability snapshot format (internal/persist) instead of an edge list; requires -out")
	)
	flag.Parse()

	if *list {
		for _, d := range datasets.All() {
			fmt.Printf("%-18s %-12s analog of %s\n", d.Name, d.Kind, d.Paper)
		}
		return
	}

	var g *graph.Undirected
	switch {
	case *dataset != "":
		d, err := datasets.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		g = d.Build()
	case *model != "":
		switch *model {
		case "er":
			g = gen.ErdosRenyi(*n, *m, *seed)
		case "ba":
			g = gen.BarabasiAlbert(*n, *k, *seed)
		case "rmat":
			g = gen.RMAT(*scale, *m, 0.57, 0.19, 0.19, *seed)
		case "grid":
			g = gen.Grid(*rows, *cols, 0.62, 0.05, *seed)
		case "community":
			g = gen.Community(*n, 8, 0.7, *n/2, *seed)
		case "ws":
			g = gen.WattsStrogatz(*n, *k, 0.1, *seed)
		default:
			fatal(fmt.Errorf("unknown model %q", *model))
		}
	default:
		fatal(fmt.Errorf("one of -dataset or -model is required (or -list)"))
	}

	if *snapshot {
		// The snapshot format stores verified cores and the maintained
		// k-order, so build the engine (one O(m + n) decomposition) and let
		// persist.Save write it atomically.
		if *out == "" {
			fatal(fmt.Errorf("-snapshot requires -out (atomic temp-file + rename needs a real path)"))
		}
		e, err := kcore.FromEdges(g.Edges(), kcore.WithSeed(*seed))
		if err != nil {
			fatal(err)
		}
		if err := persist.Save(*out, e); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote snapshot n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	} else {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := graph.WriteEdgeList(w, g); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	}
	if *stats {
		cores, err := kcore.Decompose(g.Edges())
		if err != nil {
			fatal(err)
		}
		deg := 0
		for _, c := range cores {
			if c > deg {
				deg = c
			}
		}
		inDeepest := 0
		for _, c := range cores {
			if c == deg {
				inDeepest++
			}
		}
		fmt.Fprintf(os.Stderr, "degeneracy=%d |%d-core|=%d avg_deg=%.2f\n",
			deg, deg, inDeepest, g.AvgDegree())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcore-gen:", err)
	os.Exit(1)
}

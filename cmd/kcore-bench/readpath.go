package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kcore"
	"kcore/internal/bench"
	"kcore/internal/gen"
	"kcore/internal/workload"
)

// Reads-under-write-load contention experiment: measured evidence for the
// epoch-published read path (PR 10). One writer goroutine streams churn
// batches through Apply while reader goroutines hammer the point-read and
// snapshot APIs; the identical workload runs twice:
//
//   - readpath/reads-locked emulates the pre-epoch read side exactly: every
//     engine access goes through one external sync.RWMutex — the writer
//     wraps each Apply in Lock, readers wrap each query in RLock — so
//     readers stall behind every in-flight batch, as they did when the
//     engine's own RWMutex guarded queries.
//   - readpath/reads-epoch drops the wrapper and calls the lock-free APIs
//     directly, which is the shipped configuration.
//
// The headline number is reads/sec under concurrent ingest; the writer's
// applies/sec is recorded alongside to show ingest is not sacrificed. The
// result consistency of the two paths is not re-proven here — that is the
// job of TestReadLinearizabilityDifferential — this experiment only prices
// them. With -min-speedup the run doubles as a CI guard.

const (
	readpathReaders  = 4
	readpathBatch    = 256
	readpathWindowMS = 400
	readpathRounds   = 2
)

// readpathExperiment runs both modes and returns the structured results.
func readpathExperiment(cfg bench.Config, minSpeedup float64) []bench.Result {
	cfg = cfg.WithDefaults()
	n := max(cfg.Edges/2, 200)
	base := gen.ErdosRenyi(n, 3*n/2, cfg.Seed)
	baseEdges := base.Edges()
	ops := workload.Churn(base, cfg.Edges, workload.ChurnOptions{
		AddFraction: 0.5, Skew: 0.2, Seed: cfg.Seed + 1})

	// The forward batches are valid exactly once from the base state, so
	// the writer alternates a forward pass with its inverse (each batch
	// reversed and each op flipped), returning to the base state — an
	// endless valid stream.
	var forward []kcore.Batch
	for start := 0; start < len(ops); start += readpathBatch {
		end := min(start+readpathBatch, len(ops))
		b := make(kcore.Batch, 0, end-start)
		for _, op := range ops[start:end] {
			if op.Insert {
				b = append(b, kcore.Add(op.E.U, op.E.V))
			} else {
				b = append(b, kcore.Remove(op.E.U, op.E.V))
			}
		}
		forward = append(forward, b)
	}
	var stream []kcore.Batch
	stream = append(stream, forward...)
	for i := len(forward) - 1; i >= 0; i-- {
		src := forward[i]
		inv := make(kcore.Batch, 0, len(src))
		for j := len(src) - 1; j >= 0; j-- {
			up := src[j]
			if up.Op == kcore.OpAdd {
				inv = append(inv, kcore.Remove(up.U, up.V))
			} else {
				inv = append(inv, kcore.Add(up.U, up.V))
			}
		}
		stream = append(stream, inv)
	}

	run := func(locked bool) (nsPerRead, readsPerSec, appliesPerSec float64) {
		e, err := kcore.FromEdges(baseEdges, kcore.WithSeed(cfg.Seed))
		if err != nil {
			fatal(err)
		}
		var rw sync.RWMutex // the emulated pre-epoch engine lock
		var reads, applies atomic.Uint64
		done := make(chan struct{})
		var wg sync.WaitGroup

		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i = (i + 1) % len(stream) {
				select {
				case <-done:
					return
				default:
				}
				if locked {
					rw.Lock()
				}
				_, err := e.Apply(stream[i])
				if locked {
					rw.Unlock()
				}
				if err != nil {
					fatal(fmt.Errorf("readpath writer: %w", err))
				}
				applies.Add(1)
			}
		}()
		for r := 0; r < readpathReaders; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				local := uint64(0)
				v := r
				for {
					select {
					case <-done:
						reads.Add(local)
						return
					default:
					}
					if locked {
						rw.RLock()
					}
					if local%64 == 63 {
						// A snapshot-shaped read among the point reads,
						// like the /v1/kcore and /v1/stats handlers mix.
						snap := e.View()
						_ = snap.Degeneracy()
						_, _, _, _ = e.Counts()
					} else {
						_, _ = e.CoreSeq(v)
					}
					if locked {
						rw.RUnlock()
					}
					local++
					v++
					if v >= n {
						v = 0
					}
				}
			}(r)
		}
		start := time.Now()
		time.Sleep(readpathWindowMS * time.Millisecond)
		close(done)
		wg.Wait()
		elapsed := time.Since(start)

		totalReads := float64(reads.Load())
		if totalReads == 0 {
			totalReads = 1
		}
		readsPerSec = totalReads / elapsed.Seconds()
		appliesPerSec = float64(applies.Load()) / elapsed.Seconds()
		// ns/op is reader-time per read: R readers ran for the window, so
		// the per-read latency each reader experienced is R*elapsed/reads.
		nsPerRead = float64(readpathReaders) * float64(elapsed.Nanoseconds()) / totalReads
		return
	}

	row := func(name string, locked bool) bench.Result {
		var best bench.Result
		for round := 0; round < readpathRounds; round++ {
			ns, rps, aps := run(locked)
			if best.Name == "" || ns < best.NsPerOp {
				best = bench.Result{
					Name:       name,
					NsPerOp:    ns,
					Iterations: int(rps * readpathWindowMS / 1000),
					Params: bench.StampParams(map[string]any{
						"readers": readpathReaders, "batch_size": readpathBatch,
						"window_ms": readpathWindowMS, "edges": cfg.Edges,
						"graph": "erdos-renyi", "seed": cfg.Seed,
						"reads_per_sec": rps, "applies_per_sec": aps,
					}),
				}
			}
		}
		fmt.Fprintf(cfg.Out, "%-28s %14.0f %12s %12s\n", best.Name, best.NsPerOp, "-", "-")
		return best
	}

	bench.PrintResultHeader(cfg.Out)
	lockedRes := row("readpath/reads-locked", true)
	epochRes := row("readpath/reads-epoch", false)

	speedup := lockedRes.NsPerOp / epochRes.NsPerOp
	epochRes.Params["speedup_vs_locked"] = speedup
	fmt.Fprintf(cfg.Out, "%-28s %.2fx (locked %.0f ns/read, epoch %.0f ns/read)\n",
		"readpath/read-speedup", speedup,
		lockedRes.NsPerOp, epochRes.NsPerOp)
	if minSpeedup > 0 && speedup < minSpeedup {
		fatal(fmt.Errorf("readpath: epoch read speedup %.2fx under write load is below the required %.2fx",
			speedup, minSpeedup))
	}
	return []bench.Result{lockedRes, epochRes}
}

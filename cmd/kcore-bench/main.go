// Command kcore-bench regenerates the paper's tables and figures on the
// synthetic dataset analogs (DESIGN.md §4 maps each experiment to its
// driver; EXPERIMENTS.md records measured outputs).
//
// Usage:
//
//	kcore-bench                                 run every experiment
//	kcore-bench -experiment table2 -edges 2000  one experiment, custom size
//	kcore-bench -datasets facebook-sim,ca-sim   restrict datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kcore/internal/bench"
	"kcore/internal/datasets"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment name: all|"+strings.Join(bench.ExperimentNames, "|"))
		edges      = flag.Int("edges", 10000, "workload edges per dataset (paper: 100000)")
		groups     = flag.Int("groups", 10, "stability-test groups (paper: 100)")
		hops       = flag.String("hops", "2,3,4,5,6", "traversal hop variants")
		seed       = flag.Uint64("seed", 42, "RNG seed")
		dsNames    = flag.String("datasets", "", "comma-separated dataset subset (default: all 11)")
	)
	flag.Parse()

	cfg := bench.Config{
		Out:    os.Stdout,
		Edges:  *edges,
		Groups: *groups,
		Seed:   *seed,
	}
	for _, h := range strings.Split(*hops, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(h))
		if err != nil || v < 2 {
			fatal(fmt.Errorf("bad hop value %q", h))
		}
		cfg.Hops = append(cfg.Hops, v)
	}
	if *dsNames != "" {
		for _, name := range strings.Split(*dsNames, ",") {
			d, err := datasets.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			cfg.Datasets = append(cfg.Datasets, d)
		}
	}

	names := bench.ExperimentNames
	if *experiment != "all" {
		if _, ok := bench.Experiments[*experiment]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (valid: all, %s)",
				*experiment, strings.Join(bench.ExperimentNames, ", ")))
		}
		names = []string{*experiment}
	}
	for _, name := range names {
		fmt.Printf("=== %s ===\n", name)
		bench.Experiments[name](cfg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcore-bench:", err)
	os.Exit(1)
}

// Command kcore-bench regenerates the paper's tables and figures on the
// synthetic dataset analogs (DESIGN.md §4 maps each experiment to its
// driver; EXPERIMENTS.md records measured outputs).
//
// Usage:
//
//	kcore-bench                                 run every experiment
//	kcore-bench -experiment table2 -edges 2000  one experiment, custom size
//	kcore-bench -datasets facebook-sim,ca-sim   restrict datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kcore"
	"kcore/internal/bench"
	"kcore/internal/datasets"
	"kcore/internal/gen"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment name: all|"+strings.Join(bench.ExperimentNames, "|"))
		edges      = flag.Int("edges", 10000, "workload edges per dataset (paper: 100000)")
		groups     = flag.Int("groups", 10, "stability-test groups (paper: 100)")
		hops       = flag.String("hops", "2,3,4,5,6", "traversal hop variants")
		seed       = flag.Uint64("seed", 42, "RNG seed")
		dsNames    = flag.String("datasets", "", "comma-separated dataset subset (default: all 11)")
	)
	flag.Parse()

	cfg := bench.Config{
		Out:    os.Stdout,
		Edges:  *edges,
		Groups: *groups,
		Seed:   *seed,
	}
	for _, h := range strings.Split(*hops, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(h))
		if err != nil || v < 2 {
			fatal(fmt.Errorf("bad hop value %q", h))
		}
		cfg.Hops = append(cfg.Hops, v)
	}
	if *dsNames != "" {
		for _, name := range strings.Split(*dsNames, ",") {
			d, err := datasets.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			cfg.Datasets = append(cfg.Datasets, d)
		}
	}

	if *experiment == "batchapi" {
		batchAPI(*edges, *seed)
		return
	}

	names := bench.ExperimentNames
	if *experiment != "all" {
		if _, ok := bench.Experiments[*experiment]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (valid: all, batchapi, %s)",
				*experiment, strings.Join(bench.ExperimentNames, ", ")))
		}
		names = []string{*experiment}
	}
	for _, name := range names {
		fmt.Printf("=== %s ===\n", name)
		bench.Experiments[name](cfg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcore-bench:", err)
	os.Exit(1)
}

// batchAPI measures the v1 public API head to head: one Apply batch against
// the same insertions through per-call AddEdge. It exercises the engine
// boundary (locking, validation, result assembly), unlike the algorithm
// experiments above which call the maintainers directly.
func batchAPI(edges int, seed uint64) {
	g := gen.BarabasiAlbert(max(edges/3, 100), 4, seed)
	all := g.Edges()
	if len(all) > edges {
		all = all[:edges]
	}
	batch := make(kcore.Batch, len(all))
	for i, ed := range all {
		batch[i] = kcore.Add(ed[0], ed[1])
	}
	fmt.Printf("=== batchapi === (%d insertions, BA graph)\n", len(all))

	const rounds = 5
	var batchBest, singleBest time.Duration
	for r := 0; r < rounds; r++ {
		e := kcore.NewEngine(kcore.WithSeed(seed))
		start := time.Now()
		if _, err := e.Apply(batch); err != nil {
			fatal(err)
		}
		if d := time.Since(start); r == 0 || d < batchBest {
			batchBest = d
		}
	}
	for r := 0; r < rounds; r++ {
		e := kcore.NewEngine(kcore.WithSeed(seed))
		start := time.Now()
		for _, ed := range all {
			if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
				fatal(err)
			}
		}
		if d := time.Since(start); r == 0 || d < singleBest {
			singleBest = d
		}
	}
	fmt.Printf("Apply(batch):   %12v  (%.0f ns/edge)\n",
		batchBest, float64(batchBest.Nanoseconds())/float64(len(all)))
	fmt.Printf("AddEdge loop:   %12v  (%.0f ns/edge)\n",
		singleBest, float64(singleBest.Nanoseconds())/float64(len(all)))
	fmt.Printf("speedup:        %12.2fx\n", float64(singleBest)/float64(batchBest))
}

// Command kcore-bench regenerates the paper's tables and figures on the
// synthetic dataset analogs (DESIGN.md §4 maps each experiment to its
// driver; EXPERIMENTS.md records measured outputs).
//
// Usage:
//
//	kcore-bench                                 run every experiment
//	kcore-bench -experiment table2 -edges 2000  one experiment, custom size
//	kcore-bench -datasets facebook-sim,ca-sim   restrict datasets
//	kcore-bench -experiment hotpath -json out.json   machine-readable results
//	kcore-bench -experiment parallel -workers 1,2,4,8 -json BENCH_parallel.json
//	kcore-bench -experiment serve2 -fanout 100,1000,10000 -json BENCH_serve.json
//	kcore-bench -compare OLD.json,NEW.json -compare-name engine/apply-batch -max-ratio 1.2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"kcore"
	"kcore/internal/bench"
	"kcore/internal/datasets"
	"kcore/internal/gen"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment name: all|batchapi|parallel|serve|serve2|persist|replicate|chaos|readpath|"+strings.Join(bench.ExperimentNames, "|"))
		edges      = flag.Int("edges", 10000, "workload edges per dataset (paper: 100000)")
		groups     = flag.Int("groups", 10, "stability-test groups (paper: 100)")
		hops       = flag.String("hops", "2,3,4,5,6", "traversal hop variants")
		seed       = flag.Uint64("seed", 42, "RNG seed")
		dsNames    = flag.String("datasets", "", "comma-separated dataset subset (default: all 11)")
		jsonPath   = flag.String("json", "", "write measured results (hotpath, batchapi, parallel and serve experiments) as one JSON document to this path")
		workers    = flag.String("workers", "1,2,4,8", "worker counts the parallel experiment sweeps")
		compare    = flag.String("compare", "", "regression guard: OLD.json,NEW.json — compare the -compare-name result and exit 1 when NEW exceeds OLD by more than -max-ratio")
		cmpName    = flag.String("compare-name", "engine/apply-batch", "result name checked by -compare")
		maxRatio   = flag.Float64("max-ratio", 1.2, "largest allowed NEW/OLD ns-per-op ratio for -compare")
		fanout     = flag.String("fanout", "100,1000,10000", "watcher tiers the serve2 fan-out sweep runs")
		minSpeedup = flag.Float64("min-speedup", 0, "speedup guard: serve2 fails unless binary ingest beats JSON by this factor; readpath fails unless epoch reads beat locked reads by it (0 = off)")
		jsonMerge  = flag.Bool("json-merge", false, "merge -json results into an existing report instead of overwriting it (same-name rows are replaced)")
	)
	flag.Parse()
	mergeReports = *jsonMerge

	if *compare != "" {
		if err := compareReports(*compare, *cmpName, *maxRatio); err != nil {
			fatal(err)
		}
		return
	}

	cfg := bench.Config{
		Out:    os.Stdout,
		Edges:  *edges,
		Groups: *groups,
		Seed:   *seed,
	}
	for _, h := range strings.Split(*hops, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(h))
		if err != nil || v < 2 {
			fatal(fmt.Errorf("bad hop value %q", h))
		}
		cfg.Hops = append(cfg.Hops, v)
	}
	for _, w := range strings.Split(*workers, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad worker count %q", w))
		}
		cfg.Workers = append(cfg.Workers, v)
	}
	if *dsNames != "" {
		for _, name := range strings.Split(*dsNames, ",") {
			d, err := datasets.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			cfg.Datasets = append(cfg.Datasets, d)
		}
	}

	report := bench.NewReport()

	switch *experiment {
	case "batchapi":
		report.Results = append(report.Results, batchAPI(*edges, *seed)...)
		writeReport(report, *jsonPath)
		return
	case "parallel":
		fmt.Println("=== parallel ===")
		report.Results = append(report.Results, parallelExperiment(cfg)...)
		writeReport(report, *jsonPath)
		return
	case "serve":
		report.Results = append(report.Results, serveExperiment(cfg)...)
		writeReport(report, *jsonPath)
		return
	case "serve2":
		var tiers []int
		for _, f := range strings.Split(*fanout, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad fanout tier %q", f))
			}
			tiers = append(tiers, v)
		}
		report.Results = append(report.Results, serve2Experiment(cfg, tiers, *minSpeedup)...)
		writeReport(report, *jsonPath)
		return
	case "persist":
		report.Results = append(report.Results, persistExperiment(cfg)...)
		writeReport(report, *jsonPath)
		return
	case "replicate":
		report.Results = append(report.Results, replicateExperiment(cfg)...)
		writeReport(report, *jsonPath)
		return
	case "chaos":
		fmt.Println("=== chaos ===")
		report.Results = append(report.Results, chaosExperiment(cfg)...)
		writeReport(report, *jsonPath)
		return
	case "readpath":
		fmt.Println("=== readpath ===")
		report.Results = append(report.Results, readpathExperiment(cfg, *minSpeedup)...)
		writeReport(report, *jsonPath)
		return
	case "hotpath":
		fmt.Println("=== hotpath ===")
		report.Results = append(report.Results, bench.Hotpath(cfg)...)
		report.Results = append(report.Results, engineHotpath(*edges, *seed)...)
		writeReport(report, *jsonPath)
		return
	}

	names := bench.ExperimentNames
	if *experiment != "all" {
		if _, ok := bench.Experiments[*experiment]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (valid: all, batchapi, parallel, serve, serve2, persist, replicate, chaos, readpath, %s)",
				*experiment, strings.Join(bench.ExperimentNames, ", ")))
		}
		names = []string{*experiment}
	}
	for _, name := range names {
		fmt.Printf("=== %s ===\n", name)
		if name == "hotpath" {
			// Capture hotpath's structured results instead of the
			// registry's discard-results wrapper.
			report.Results = append(report.Results, bench.Hotpath(cfg)...)
			report.Results = append(report.Results, engineHotpath(*edges, *seed)...)
			continue
		}
		bench.Experiments[name](cfg)
	}
	writeReport(report, *jsonPath)
}

// writeReport writes the JSON document when -json was given. An empty
// result list still produces a valid (schema-stamped) report.
// mergeReports makes writeReport fold results into an existing report file
// (set by -json-merge); BENCH_serve.json carries both the serve and serve2
// experiments this way.
var mergeReports bool

func writeReport(r *bench.Report, path string) {
	if path == "" {
		return
	}
	if mergeReports {
		if old, err := loadReportDoc(path); err == nil {
			fresh := make(map[string]bench.Result, len(r.Results))
			order := []string{}
			for _, res := range r.Results {
				if _, ok := fresh[res.Name]; !ok {
					order = append(order, res.Name)
				}
				fresh[res.Name] = res
			}
			merged := make([]bench.Result, 0, len(old.Results)+len(r.Results))
			for _, res := range old.Results {
				if nres, ok := fresh[res.Name]; ok {
					merged = append(merged, nres)
					delete(fresh, nres.Name)
					continue
				}
				merged = append(merged, res)
			}
			for _, name := range order {
				if res, ok := fresh[name]; ok {
					merged = append(merged, res)
				}
			}
			r.Results = merged
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := r.Write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d results to %s\n", len(r.Results), path)
}

// engineHotpath measures the public-API hot path (Apply over a 10k-edge
// batch and the per-edge loop) with allocation counters; the maintainer-
// and structure-level experiments live in internal/bench.
func engineHotpath(edges int, seed uint64) []bench.Result {
	g := gen.BarabasiAlbert(max(edges/3, 100), 4, seed)
	all := g.Edges()
	if len(all) > edges {
		all = all[:edges]
	}
	batch := make(kcore.Batch, len(all))
	for i, ed := range all {
		batch[i] = kcore.Add(ed[0], ed[1])
	}
	params := map[string]any{"edges": len(all), "graph": "barabasi-albert", "seed": seed,
		"workers": "auto"}

	var results []bench.Result
	run := func(name string, fn func(b *testing.B)) {
		results = append(results, bench.RunMeasured(os.Stdout, name, params, fn))
	}
	run("engine/apply-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := kcore.NewEngine(kcore.WithSeed(seed))
			b.StartTimer()
			if _, err := e.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("engine/per-edge-add", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := kcore.NewEngine(kcore.WithSeed(seed))
			b.StartTimer()
			for _, ed := range all {
				if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	return results
}

// compareReports is the CI regression guard: it loads two BENCH_*.json
// reports ("old,new"), finds the named result in each, and fails when the
// new ns/op exceeds the old by more than maxRatio. Both reports must come
// from the same machine for the ratio to mean anything — CI compares the
// committed baseline files, which were measured together.
func compareReports(spec, name string, maxRatio float64) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants OLD.json,NEW.json, got %q", spec)
	}
	oldPath, newPath := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	oldRes, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRes, err := loadReport(newPath)
	if err != nil {
		return err
	}
	o, ok := oldRes[name]
	if !ok {
		return fmt.Errorf("result %q is missing from %s (have: %s)",
			name, oldPath, strings.Join(resultNames(oldRes), ", "))
	}
	n, ok := newRes[name]
	if !ok {
		return fmt.Errorf("result %q is missing from %s (have: %s)",
			name, newPath, strings.Join(resultNames(newRes), ", "))
	}
	if o.NsPerOp <= 0 {
		return fmt.Errorf("%s: old ns/op %.0f is not positive", name, o.NsPerOp)
	}
	ratio := n.NsPerOp / o.NsPerOp
	fmt.Printf("%s: old %.0f ns/op, new %.0f ns/op, ratio %.3f (limit %.2f)\n",
		name, o.NsPerOp, n.NsPerOp, ratio, maxRatio)
	if ratio > maxRatio {
		return fmt.Errorf("%s regressed: ratio %.3f exceeds %.2f", name, ratio, maxRatio)
	}
	return nil
}

// reportHint names the expected baseline schema and how to regenerate the
// file; every loadReport failure carries it so a missing or malformed
// baseline is actionable instead of a raw unmarshal message.
func reportHint(path string) string {
	return fmt.Sprintf("%s must be a kcore-bench JSON report (schema %q, shape "+
		`{"schema":%q,"go":...,"arch":...,"results":[{"name":...,"ns_per_op":...}]}); `+
		"regenerate it with: go run ./cmd/kcore-bench -experiment <name> -json %s",
		path, bench.ReportSchema, bench.ReportSchema, path)
}

// loadReportDoc reads one report document whole, for -json-merge.
func loadReportDoc(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep bench.Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Schema != bench.ReportSchema {
		return nil, fmt.Errorf("%s has schema %q, want %q", path, rep.Schema, bench.ReportSchema)
	}
	return &rep, nil
}

// loadReport reads one BENCH_*.json report into a name-indexed result map,
// explaining exactly what is wrong (and how to fix it) on failure.
func loadReport(path string) (map[string]bench.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("baseline report %s does not exist; %s", path, reportHint(path))
		}
		return nil, fmt.Errorf("open baseline report: %w; %s", err, reportHint(path))
	}
	defer f.Close()
	var rep bench.Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s is not valid JSON (%v); %s", path, err, reportHint(path))
	}
	if rep.Schema != bench.ReportSchema {
		return nil, fmt.Errorf("%s has schema %q, want %q; %s",
			path, rep.Schema, bench.ReportSchema, reportHint(path))
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s contains no results; %s", path, reportHint(path))
	}
	byName := make(map[string]bench.Result, len(rep.Results))
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	return byName, nil
}

// resultNames lists a report's result names, sorted, for error messages.
func resultNames(m map[string]bench.Result) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcore-bench:", err)
	os.Exit(1)
}

// batchAPI measures the v1 public API head to head: one Apply batch against
// the same insertions through per-call AddEdge. It exercises the engine
// boundary (locking, validation, result assembly), unlike the algorithm
// experiments above which call the maintainers directly. The returned
// results carry best-of-rounds wall time only; allocation counters come
// from the hotpath experiment.
func batchAPI(edges int, seed uint64) []bench.Result {
	g := gen.BarabasiAlbert(max(edges/3, 100), 4, seed)
	all := g.Edges()
	if len(all) > edges {
		all = all[:edges]
	}
	batch := make(kcore.Batch, len(all))
	for i, ed := range all {
		batch[i] = kcore.Add(ed[0], ed[1])
	}
	fmt.Printf("=== batchapi === (%d insertions, BA graph)\n", len(all))

	const rounds = 5
	var batchBest, singleBest time.Duration
	for r := 0; r < rounds; r++ {
		e := kcore.NewEngine(kcore.WithSeed(seed))
		start := time.Now()
		if _, err := e.Apply(batch); err != nil {
			fatal(err)
		}
		if d := time.Since(start); r == 0 || d < batchBest {
			batchBest = d
		}
	}
	for r := 0; r < rounds; r++ {
		e := kcore.NewEngine(kcore.WithSeed(seed))
		start := time.Now()
		for _, ed := range all {
			if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
				fatal(err)
			}
		}
		if d := time.Since(start); r == 0 || d < singleBest {
			singleBest = d
		}
	}
	fmt.Printf("Apply(batch):   %12v  (%.0f ns/edge)\n",
		batchBest, float64(batchBest.Nanoseconds())/float64(len(all)))
	fmt.Printf("AddEdge loop:   %12v  (%.0f ns/edge)\n",
		singleBest, float64(singleBest.Nanoseconds())/float64(len(all)))
	fmt.Printf("speedup:        %12.2fx\n", float64(singleBest)/float64(batchBest))
	params := map[string]any{
		"edges": len(all), "rounds": rounds, "unit": "ns per whole workload",
		"allocs_measured": false,
	}
	return []bench.Result{
		{Name: "batchapi/apply", NsPerOp: float64(batchBest.Nanoseconds()), Iterations: rounds, Params: params},
		{Name: "batchapi/per-edge", NsPerOp: float64(singleBest.Nanoseconds()), Iterations: rounds, Params: params},
	}
}

package main

import (
	"fmt"
	"testing"
	"time"

	"kcore"
	"kcore/internal/bench"
	"kcore/internal/gen"
	"kcore/internal/workload"
)

// Parallel-maintenance experiment: measured evidence for the batch
// execution planner (PR 3). Four question marks, one row group each:
//
//  1. engine/apply-batch — the headline engine benchmark (10k-edge batch
//     into an empty engine) on the new default path. The batch equals the
//     whole graph, so the cost model routes it to one O(m+n) recomputation;
//     this row is compared against BENCH_hotpath.json's sequential-
//     maintenance baseline by the CI regression guard.
//  2. engine/apply-batch/maintain — the same workload forced down the
//     incremental path (recompute disabled, one worker): the PR 2 baseline
//     must still be reachable and fast.
//  3. engine/churn/* — steady-state mixed churn on a prebuilt graph, swept
//     across worker counts and hot-vertex skew: the conflict-grouped
//     concurrent runtime's profile. Scattered updates parallelize; hub-
//     heavy updates collapse into big conflict groups and fall back to
//     nearly sequential execution (visible in the replayed/live counters).
//  4. engine/rebuild-crossover/* — maintain vs recompute for growing batch
//     fractions of m, locating the crossover the cost model's default
//     fraction is calibrated from.

// parallelExperiment runs the experiment and returns the structured results.
func parallelExperiment(cfg bench.Config) []bench.Result {
	cfg = cfg.WithDefaults()
	var results []bench.Result
	bench.PrintResultHeader(cfg.Out)

	// 1 + 2: the headline batch, default path vs forced maintenance.
	results = append(results, applyBatchRows(cfg)...)
	// 3: steady-state churn across workers and skew.
	results = append(results, churnRows(cfg)...)
	// 4: maintain-vs-recompute crossover.
	results = append(results, crossoverRows(cfg)...)
	return results
}

// applyBatchRows mirrors the hotpath experiment's engine/apply-batch
// workload exactly (same generator, sizes, and seed), so the rows are
// comparable across BENCH_*.json files.
func applyBatchRows(cfg bench.Config) []bench.Result {
	g := gen.BarabasiAlbert(max(cfg.Edges/3, 100), 4, cfg.Seed)
	all := g.Edges()
	if len(all) > cfg.Edges {
		all = all[:cfg.Edges]
	}
	batch := make(kcore.Batch, len(all))
	for i, ed := range all {
		batch[i] = kcore.Add(ed[0], ed[1])
	}
	params := map[string]any{
		"edges": len(all), "graph": "barabasi-albert", "seed": cfg.Seed,
	}
	defP := map[string]any{"workers": "auto"}
	for k, v := range params {
		defP[k] = v
	}
	var results []bench.Result
	results = append(results, bench.RunMeasured(cfg.Out, "engine/apply-batch", defP,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := kcore.NewEngine(kcore.WithSeed(cfg.Seed))
				b.StartTimer()
				if _, err := e.Apply(batch); err != nil {
					b.Fatal(err)
				}
			}
		}))
	maintP := map[string]any{"workers": 1}
	for k, v := range params {
		maintP[k] = v
	}
	results = append(results, bench.RunMeasured(cfg.Out, "engine/apply-batch/maintain", maintP,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := kcore.NewEngine(kcore.WithSeed(cfg.Seed),
					kcore.WithWorkers(1), kcore.WithRebuildThreshold(-1, 0))
				b.StartTimer()
				if _, err := e.Apply(batch); err != nil {
					b.Fatal(err)
				}
			}
		}))
	return results
}

// churnRows measures steady-state batched churn (prebuilt graph, mixed
// adds/removes in fixed-size batches) for each worker count and two skew
// settings. Timing is best-of-rounds wall clock over the whole stream —
// the engine evolves across batches, so per-iteration state cannot be reset
// inside testing.B without distorting the measurement.
func churnRows(cfg bench.Config) []bench.Result {
	n := 2 * cfg.Edges
	m := 6 * cfg.Edges
	streamLen := cfg.Edges
	batchSize := max(streamLen/4, 1)
	base := gen.ErdosRenyi(n, m, cfg.Seed)
	baseEdges := base.Edges()

	var results []bench.Result
	for _, skew := range []float64{0.2, 0.9} {
		ops := workload.Churn(base, streamLen, workload.ChurnOptions{
			AddFraction: 0.55, Skew: skew, Seed: cfg.Seed + 1})
		var batches []kcore.Batch
		for start := 0; start < len(ops); start += batchSize {
			end := min(start+batchSize, len(ops))
			b := make(kcore.Batch, 0, end-start)
			for _, op := range ops[start:end] {
				if op.Insert {
					b = append(b, kcore.Add(op.E.U, op.E.V))
				} else {
					b = append(b, kcore.Remove(op.E.U, op.E.V))
				}
			}
			batches = append(batches, b)
		}
		for _, w := range cfg.Workers {
			const rounds = 3
			var best time.Duration
			var stats kcore.ExecStats
			for r := 0; r < rounds; r++ {
				e, err := kcore.FromEdges(baseEdges,
					kcore.WithSeed(cfg.Seed), kcore.WithWorkers(w),
					kcore.WithRebuildThreshold(-1, 0))
				if err != nil {
					panic(err)
				}
				start := time.Now()
				for _, b := range batches {
					if _, err := e.Apply(b); err != nil {
						panic(err)
					}
				}
				if d := time.Since(start); r == 0 || d < best {
					best = d
				}
				stats = e.ExecStats()
			}
			params := bench.StampParams(map[string]any{
				"graph_n": n, "graph_m": m, "stream": streamLen,
				"batch_size": batchSize, "skew": skew, "workers": w,
				"replayed": stats.Replayed, "live": stats.Live + stats.Sequential,
				"unit": "ns per whole stream", "rounds": rounds,
			})
			name := fmt.Sprintf("engine/churn/skew%02.0f/w%d", skew*10, w)
			res := bench.Result{Name: name, NsPerOp: float64(best.Nanoseconds()),
				Iterations: rounds, Params: params}
			fmt.Fprintf(cfg.Out, "%-28s %14.0f %12s %12s\n", name, res.NsPerOp, "-", "-")
			results = append(results, res)
		}
	}
	return results
}

// crossoverRows times the same pure-insertion batch through forced
// maintenance and forced recomputation for growing batch fractions of m.
// The fraction where the recompute row undercuts the maintain row is the
// calibration point for WithRebuildThreshold's default.
func crossoverRows(cfg bench.Config) []bench.Result {
	n := max(cfg.Edges, 1000)
	m := 3 * n
	base := gen.ErdosRenyi(n, m, cfg.Seed+2)
	baseEdges := base.Edges()
	var results []bench.Result
	for _, frac := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
		count := int(frac * float64(m))
		if count < 1 {
			continue
		}
		inserts := workload.SampleNonEdges(base, count, cfg.Seed+3)
		batch := make(kcore.Batch, len(inserts))
		for i, ed := range inserts {
			batch[i] = kcore.Add(ed.U, ed.V)
		}
		for _, mode := range []string{"maintain", "rebuild"} {
			const rounds = 3
			var best time.Duration
			for r := 0; r < rounds; r++ {
				opts := []kcore.Option{kcore.WithSeed(cfg.Seed), kcore.WithWorkers(1)}
				if mode == "maintain" {
					opts = append(opts, kcore.WithRebuildThreshold(-1, 0))
				} else {
					opts = append(opts, kcore.WithRebuildThreshold(1, 0))
				}
				e, err := kcore.FromEdges(baseEdges, opts...)
				if err != nil {
					panic(err)
				}
				start := time.Now()
				info, err := e.Apply(batch)
				if err != nil {
					panic(err)
				}
				if (mode == "rebuild") != info.Recomputed {
					panic("crossover row executed on the wrong path")
				}
				if d := time.Since(start); r == 0 || d < best {
					best = d
				}
			}
			params := bench.StampParams(map[string]any{
				"graph_n": n, "graph_m": m, "batch": count, "frac": frac,
				"mode": mode, "workers": 1,
				"unit": "ns per whole batch", "rounds": rounds,
			})
			name := fmt.Sprintf("engine/rebuild-crossover/f%03.0f/%s", frac*100, mode)
			res := bench.Result{Name: name, NsPerOp: float64(best.Nanoseconds()),
				Iterations: rounds, Params: params}
			fmt.Fprintf(cfg.Out, "%-28s %14.0f %12s %12s\n", name, res.NsPerOp, "-", "-")
			results = append(results, res)
		}
	}
	return results
}

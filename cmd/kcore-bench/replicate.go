package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"kcore"
	"kcore/internal/bench"
	"kcore/internal/gen"
	"kcore/internal/replicate"
	"kcore/internal/server"
)

// Replicate experiment: read scaling through WAL-shipping replication.
// It boots one primary kcore-serve (engine preloaded with an Erdős–Rényi
// base graph, replication publisher attached) and, per sweep point, N
// followers bootstrapped over /v1/replicate. Under a single writer churning
// mixed add/remove batches through the primary, concurrent readers issue
// GET /v1/core round-robin across every serving process. Recorded per
// follower count: read throughput and latency percentiles, each follower's
// catch-up time (StartFollower to lag 0), and the steady-state seq lag
// sampled during the churn. BENCH_replicate.json memorializes the sweep.
type replicateParams struct {
	readers int
	batch   int
	batches int
	baseN   int
	baseM   int
	seed    uint64
}

func replicateExperiment(cfg bench.Config) []bench.Result {
	cfg = cfg.WithDefaults()
	p := replicateParams{
		readers: 4,
		batch:   50,
		batches: max(cfg.Edges/100, 10),
		baseN:   max(cfg.Edges/2, 500),
		baseM:   max(3*cfg.Edges/2, 1500),
		seed:    cfg.Seed,
	}
	var results []bench.Result
	for _, nf := range []int{0, 1, 2} {
		fmt.Printf("=== replicate (followers=%d) === (%d readers, 1 writer x %d batches x %d updates, base %d/%d)\n",
			nf, p.readers, p.batches, p.batch, p.baseN, p.baseM)
		res, err := runReplicateLoad(p, nf)
		if err != nil {
			fatal(err)
		}
		results = append(results, res...)
	}
	return results
}

// replicaProc is one serving process of the fleet: the primary or a
// follower, with its HTTP front door.
type replicaProc struct {
	srv    *server.Server
	client *server.Client
	fol    *replicate.Follower
}

func startReplicaServer(eng *kcore.Engine, opts server.Options) (*replicaProc, error) {
	srv := server.New(eng, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(l) }()
	client, err := server.NewClient("http://"+l.Addr().String(), nil)
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	return &replicaProc{srv: srv, client: client, fol: opts.Follower}, nil
}

func (rp *replicaProc) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = rp.srv.Shutdown(ctx)
	if rp.fol != nil {
		rp.fol.Close()
	}
}

func runReplicateLoad(p replicateParams, numFollowers int) ([]bench.Result, error) {
	base := gen.ErdosRenyi(p.baseN, p.baseM, p.seed)
	engine, err := kcore.FromEdges(base.Edges(), kcore.WithSeed(p.seed))
	if err != nil {
		return nil, err
	}
	pub := replicate.NewPublisher(engine, replicate.PublisherOptions{})
	defer pub.Close()
	primary, err := startReplicaServer(engine, server.Options{Publisher: pub})
	if err != nil {
		return nil, err
	}
	defer primary.stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Followers bootstrap from the preloaded primary; catch-up time spans
	// StartFollower (snapshot transfer + replay) until zero lag against the
	// primary seq at start.
	fleet := []*replicaProc{primary}
	var catchup []time.Duration
	bootSeq := engine.Seq()
	for i := 0; i < numFollowers; i++ {
		target := engine.Seq()
		t0 := time.Now()
		fol, err := replicate.StartFollower(ctx, primary.client.BaseURL(), replicate.FollowerOptions{
			PollInterval: 100 * time.Millisecond,
		})
		if err != nil {
			return nil, fmt.Errorf("follower %d: %w", i, err)
		}
		for fol.Engine().Seq() < target {
			time.Sleep(time.Millisecond)
		}
		catchup = append(catchup, time.Since(t0))
		fp, err := startReplicaServer(fol.Engine(), server.Options{Follower: fol})
		if err != nil {
			fol.Close()
			return nil, fmt.Errorf("follower %d server: %w", i, err)
		}
		defer fp.stop()
		fleet = append(fleet, fp)
	}

	var (
		mu       sync.Mutex
		readLat  []time.Duration
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	// Steady-state lag sampler: every few ms, the worst lag across the
	// follower fleet (0 without followers).
	var lagMu sync.Mutex
	var lagSum, lagMax, lagSamples uint64
	stopSample := make(chan struct{})
	var wgSample sync.WaitGroup
	wgSample.Add(1)
	go func() {
		defer wgSample.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-tick.C:
				var worst uint64
				for _, rp := range fleet[1:] {
					if lag := rp.fol.Stats().SeqLag; lag > worst {
						worst = lag
					}
				}
				lagMu.Lock()
				lagSum += worst
				lagSamples++
				if worst > lagMax {
					lagMax = worst
				}
				lagMu.Unlock()
			}
		}
	}()

	// Readers round-robin across the whole serving fleet.
	stopReaders := make(chan struct{})
	var wgReaders sync.WaitGroup
	for r := 0; r < p.readers; r++ {
		wgReaders.Add(1)
		go func(r int) {
			defer wgReaders.Done()
			rng := rand.New(rand.NewPCG(p.seed+200, uint64(r)))
			var local []time.Duration
			for i := r; ; i++ {
				select {
				case <-stopReaders:
					mu.Lock()
					readLat = append(readLat, local...)
					mu.Unlock()
					return
				default:
				}
				c := fleet[i%len(fleet)].client
				t0 := time.Now()
				if _, err := c.Core(ctx, rng.IntN(p.baseN)); err != nil {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
				local = append(local, time.Since(t0))
			}
		}(r)
	}

	// One writer churns through the primary for the duration of the run.
	script := serveWriterScript(p.baseN, p.batches, p.batch, p.seed+7)
	start := time.Now()
	for _, b := range script {
		if _, err := primary.client.Batch(ctx, b); err != nil {
			fail(fmt.Errorf("writer: %w", err))
			break
		}
	}
	writerElapsed := time.Since(start)
	close(stopReaders)
	wgReaders.Wait()
	readElapsed := time.Since(start)
	close(stopSample)
	wgSample.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("replicate experiment: %w", firstErr)
	}

	// Drain: every follower reaches the primary's final seq, then served
	// cores must agree across the fleet (the differential backstop).
	final := engine.Seq()
	for i, rp := range fleet[1:] {
		deadline := time.Now().Add(30 * time.Second)
		for rp.fol.Engine().Seq() < final {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("follower %d stuck at seq %d, primary %d", i, rp.fol.Engine().Seq(), final)
			}
			time.Sleep(time.Millisecond)
		}
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ccancel()
	rng := rand.New(rand.NewPCG(p.seed+300, 0))
	for i := 0; i < 20; i++ {
		v := rng.IntN(p.baseN)
		want, err := primary.client.Core(cctx, v)
		if err != nil {
			return nil, err
		}
		for j, rp := range fleet[1:] {
			got, err := rp.client.Core(cctx, v)
			if err != nil {
				return nil, err
			}
			if got.Core != want.Core {
				return nil, fmt.Errorf("divergence: follower %d core(%d)=%d, primary %d", j, v, got.Core, want.Core)
			}
		}
	}

	lagMu.Lock()
	meanLag := float64(0)
	if lagSamples > 0 {
		meanLag = float64(lagSum) / float64(lagSamples)
	}
	maxLag := lagMax
	lagMu.Unlock()

	shared := map[string]any{
		"followers": numFollowers, "readers": p.readers,
		"batch_size": p.batch, "batches": p.batches,
		"base_n": p.baseN, "base_m": p.baseM, "seed": p.seed,
		"writer_wall_ns": writerElapsed.Nanoseconds(),
		"reads_per_sec":  float64(len(readLat)) / readElapsed.Seconds(),
		"mean_seq_lag":   meanLag,
		"max_seq_lag":    maxLag,
	}
	s := bench.Summarize(readLat)
	res := bench.Result{
		Name:       fmt.Sprintf("replicate/read-core/followers=%d", numFollowers),
		NsPerOp:    float64(s.P50.Nanoseconds()),
		Iterations: s.Count,
		Params:     bench.StampParams(s.Params(shared)),
	}
	fmt.Printf("%-32s p50 %10v  p99 %10v  %8.0f reads/s  lag mean %.1f max %d\n",
		res.Name, s.P50, s.P99, shared["reads_per_sec"], meanLag, maxLag)
	results := []bench.Result{res}
	if numFollowers > 0 {
		var worst time.Duration
		for _, c := range catchup {
			if c > worst {
				worst = c
			}
		}
		cres := bench.Result{
			Name:       fmt.Sprintf("replicate/catchup/followers=%d", numFollowers),
			NsPerOp:    float64(worst.Nanoseconds()),
			Iterations: numFollowers,
			Params: bench.StampParams(map[string]any{
				"followers": numFollowers, "base_n": p.baseN, "base_m": p.baseM,
				"snapshot_seq": bootSeq, "seed": p.seed,
			}),
		}
		fmt.Printf("%-32s %v (worst of %d followers, snapshot at seq %d)\n",
			cres.Name, worst.Round(time.Microsecond), numFollowers, bootSeq)
		results = append(results, cres)
	}
	return results, nil
}

package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kcore"
	"kcore/internal/bench"
	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/persist"
	"kcore/internal/workload"
)

// The persist experiment answers the two durability cost questions:
//
//  1. WAL overhead per batch — the same churn stream applied with no store
//     and with the WAL at each fsync policy (off / interval / always). The
//     acceptance target: with Sync off, logging adds <= 25% to apply-batch.
//  2. Recovery time vs graph size — persist.Open (snapshot load + state
//     verification + WAL replay) across growing graphs.
//
// Results land in BENCH_persist.json (kcore-bench -experiment persist -json).

// persistWorkload builds the seed graph and a valid churn batch stream.
func persistWorkload(edges int, seed uint64) (*kcore.Engine, []kcore.Batch, error) {
	g := gen.BarabasiAlbert(max(edges/3, 100), 4, seed)
	eng, err := kcore.FromEdges(g.Edges(), kcore.WithSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	const batchSize = 100
	count := max(edges/batchSize, 10)
	cg := graph.New(eng.NumVertices())
	for _, ed := range eng.Edges() {
		if err := cg.AddEdge(ed[0], ed[1]); err != nil {
			return nil, nil, err
		}
	}
	ops := workload.Churn(cg, count*batchSize, workload.ChurnOptions{Seed: seed, Skew: 0.3})
	batches := make([]kcore.Batch, count)
	for i := range batches {
		b := make(kcore.Batch, 0, batchSize)
		for _, op := range ops[i*batchSize : (i+1)*batchSize] {
			if op.Insert {
				b = append(b, kcore.Add(op.E.U, op.E.V))
			} else {
				b = append(b, kcore.Remove(op.E.U, op.E.V))
			}
		}
		batches[i] = b
	}
	return eng, batches, nil
}

// persistExperiment measures WAL overhead and recovery time, returning
// structured results (and printing the overhead summary).
func persistExperiment(cfg bench.Config) []bench.Result {
	cfg = cfg.WithDefaults()
	var results []bench.Result

	// --- 1. WAL overhead on apply-batch. ---
	_, batches, err := persistWorkload(cfg.Edges, cfg.Seed)
	if err != nil {
		fatal(err)
	}
	params := map[string]any{
		"edges": cfg.Edges, "batches": len(batches), "batch_size": 100,
		"graph": "barabasi-albert", "seed": cfg.Seed,
		"unit": "ns per whole churn stream",
	}
	applyStream := func(b *testing.B, open func(tmp string, opts []kcore.Option) (*kcore.Engine, func(), error)) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// The stream is deterministic per (edges, seed) and Apply never
			// mutates its batches, so every iteration replays the outer
			// `batches` against a freshly opened target.
			tmp, err := os.MkdirTemp("", "kcore-bench-persist-*")
			if err != nil {
				b.Fatal(err)
			}
			target, cleanup, err := open(tmp, []kcore.Option{kcore.WithSeed(cfg.Seed)})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, batch := range batches {
				if _, err := target.Apply(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cleanup()
			os.RemoveAll(tmp)
			b.StartTimer()
		}
	}
	baselineOpen := func(tmp string, opts []kcore.Option) (*kcore.Engine, func(), error) {
		eng, _, err := persistWorkload(cfg.Edges, cfg.Seed)
		return eng, func() {}, err
	}
	storeOpen := func(policy persist.SyncPolicy) func(string, []kcore.Option) (*kcore.Engine, func(), error) {
		return func(tmp string, opts []kcore.Option) (*kcore.Engine, func(), error) {
			st, err := persist.Open(tmp, persist.Options{
				Sync: policy, CompactBytes: -1, Engine: opts,
				Init: func() (*kcore.Engine, error) {
					eng, _, err := persistWorkload(cfg.Edges, cfg.Seed)
					return eng, err
				},
			})
			if err != nil {
				return nil, nil, err
			}
			return st.Engine(), func() { _ = st.Close() }, nil
		}
	}

	fmt.Println("=== persist === (WAL overhead per apply-batch, then recovery)")
	bench.PrintResultHeader(os.Stdout)
	run := func(name string, p map[string]any, open func(string, []kcore.Option) (*kcore.Engine, func(), error)) bench.Result {
		r := bench.RunMeasured(os.Stdout, name, p, func(b *testing.B) { applyStream(b, open) })
		results = append(results, r)
		return r
	}
	base := run("persist/apply-nowal", params, baselineOpen)
	for _, pc := range []struct {
		name   string
		policy persist.SyncPolicy
	}{
		{"persist/apply-wal-off", persist.SyncOff},
		{"persist/apply-wal-interval", persist.SyncInterval},
		{"persist/apply-wal-always", persist.SyncAlways},
	} {
		p := make(map[string]any, len(params)+2)
		for k, v := range params {
			p[k] = v
		}
		p["fsync"] = pc.policy.String()
		r := run(pc.name, p, storeOpen(pc.policy))
		overhead := r.NsPerOp/base.NsPerOp - 1
		results[len(results)-1].Params["overhead_vs_nowal"] = fmt.Sprintf("%.1f%%", overhead*100)
		fmt.Printf("  -> %s overhead vs no WAL: %.1f%%\n", pc.policy, overhead*100)
	}

	// --- 2. Recovery time vs graph size. ---
	for _, scale := range []int{1, 4, 16} {
		edges := cfg.Edges * scale / 4
		if edges < 400 {
			edges = 400
		}
		dir, stats, err := buildRecoveryDir(edges, cfg.Seed)
		if err != nil {
			fatal(err)
		}
		p := map[string]any{
			"edges": edges, "wal_records": stats.WALRecords,
			"snapshot_bytes": stats.SnapshotBytes, "wal_bytes": stats.WALBytes,
			"unit": "ns per Open (snapshot load + verify + WAL replay)",
		}
		name := fmt.Sprintf("persist/recover-e%d", edges)
		results = append(results, bench.RunMeasured(os.Stdout, name, p, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := persist.Open(dir, persist.Options{
					Sync: persist.SyncOff, CompactBytes: -1,
					Engine: []kcore.Option{kcore.WithSeed(cfg.Seed)},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}))
		os.RemoveAll(dir)
	}
	return results
}

// buildRecoveryDir prepares a data directory holding a seed snapshot plus a
// churn WAL, for recovery timing.
func buildRecoveryDir(edges int, seed uint64) (string, persist.Stats, error) {
	dir, err := os.MkdirTemp("", "kcore-bench-recover-*")
	if err != nil {
		return "", persist.Stats{}, err
	}
	st, err := persist.Open(dir, persist.Options{
		Sync: persist.SyncOff, CompactBytes: -1,
		Engine: []kcore.Option{kcore.WithSeed(seed)},
		Init: func() (*kcore.Engine, error) {
			eng, _, err := persistWorkload(edges, seed)
			return eng, err
		},
	})
	if err != nil {
		os.RemoveAll(dir)
		return "", persist.Stats{}, err
	}
	_, batches, err := persistWorkload(edges, seed)
	if err == nil {
		for _, b := range batches {
			if _, aerr := st.Engine().Apply(b); aerr != nil {
				err = aerr
				break
			}
		}
	}
	stats := st.Stats()
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.RemoveAll(dir)
		return "", persist.Stats{}, err
	}
	// Leave the WAL in place: Open must replay it. Sanity: the directory
	// still holds both files.
	if _, serr := os.Stat(filepath.Join(dir, persist.SnapshotFile)); serr != nil {
		os.RemoveAll(dir)
		return "", persist.Stats{}, serr
	}
	return dir, stats, nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kcore/internal/bench"
)

// The -compare regression guard must explain itself: a missing or malformed
// baseline names the file, the expected schema, and the command that
// regenerates it — never a raw unmarshal message alone.

func writeTestReport(t *testing.T, dir, name string, mutate func(*bench.Report)) string {
	t.Helper()
	rep := bench.NewReport()
	rep.Results = append(rep.Results, bench.Result{Name: "engine/apply-batch", NsPerOp: 1000, Iterations: 1})
	if mutate != nil {
		mutate(rep)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsHappyPath(t *testing.T) {
	dir := t.TempDir()
	oldP := writeTestReport(t, dir, "old.json", nil)
	newP := writeTestReport(t, dir, "new.json", func(r *bench.Report) {
		r.Results[0].NsPerOp = 1100
	})
	if err := compareReports(oldP+","+newP, "engine/apply-batch", 1.2); err != nil {
		t.Fatalf("within-ratio compare failed: %v", err)
	}
	err := compareReports(oldP+","+newP, "engine/apply-batch", 1.05)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("over-ratio compare err = %v, want regression failure", err)
	}
}

func TestCompareReportsMissingFile(t *testing.T) {
	dir := t.TempDir()
	okP := writeTestReport(t, dir, "ok.json", nil)
	missing := filepath.Join(dir, "nope.json")
	err := compareReports(missing+","+okP, "engine/apply-batch", 1.2)
	if err == nil {
		t.Fatal("missing baseline accepted")
	}
	for _, want := range []string{missing, "does not exist", bench.ReportSchema, "-experiment"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing-file error lacks %q: %v", want, err)
		}
	}
}

func TestCompareReportsMalformed(t *testing.T) {
	dir := t.TempDir()
	okP := writeTestReport(t, dir, "ok.json", nil)

	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("this is not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := compareReports(junk+","+okP, "engine/apply-batch", 1.2)
	if err == nil {
		t.Fatal("malformed baseline accepted")
	}
	for _, want := range []string{junk, "not valid JSON", bench.ReportSchema} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("malformed error lacks %q: %v", want, err)
		}
	}

	wrongSchema := filepath.Join(dir, "schema.json")
	if err := os.WriteFile(wrongSchema, []byte(`{"schema":"other/v9","results":[{"name":"x","ns_per_op":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = compareReports(wrongSchema+","+okP, "engine/apply-batch", 1.2)
	if err == nil || !strings.Contains(err.Error(), `schema "other/v9"`) ||
		!strings.Contains(err.Error(), bench.ReportSchema) {
		t.Fatalf("wrong-schema error = %v, want both schemas named", err)
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":"`+bench.ReportSchema+`","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err = compareReports(empty+","+okP, "engine/apply-batch", 1.2); err == nil ||
		!strings.Contains(err.Error(), "no results") {
		t.Fatalf("empty-report error = %v", err)
	}
}

// Old reports carry allocs_per_op/bytes_per_op on every result (including a
// meaningless 0 on latency-style rows); new ones omit them when unmeasured.
// -compare must accept both generations on either side.
func TestCompareReportsToleratesAllocSchemaChange(t *testing.T) {
	dir := t.TempDir()
	oldStyle := filepath.Join(dir, "old.json")
	if err := os.WriteFile(oldStyle, []byte(`{"schema":"`+bench.ReportSchema+`","go":"go1.24","arch":"amd64",`+
		`"results":[{"name":"engine/apply-batch","ns_per_op":1000,"allocs_per_op":0,"bytes_per_op":0,"iterations":3}]}`),
		0o644); err != nil {
		t.Fatal(err)
	}
	newStyle := writeTestReport(t, dir, "new.json", func(r *bench.Report) {
		r.Results[0].NsPerOp = 1100 // no alloc fields at all
	})
	if err := compareReports(oldStyle+","+newStyle, "engine/apply-batch", 1.2); err != nil {
		t.Fatalf("cross-generation compare failed: %v", err)
	}
	if err := compareReports(newStyle+","+oldStyle, "engine/apply-batch", 1.2); err != nil {
		t.Fatalf("reversed cross-generation compare failed: %v", err)
	}
}

func TestCompareReportsMissingResult(t *testing.T) {
	dir := t.TempDir()
	oldP := writeTestReport(t, dir, "old.json", nil)
	newP := writeTestReport(t, dir, "new.json", nil)
	err := compareReports(oldP+","+newP, "engine/no-such-row", 1.2)
	if err == nil {
		t.Fatal("missing result accepted")
	}
	if !strings.Contains(err.Error(), "engine/no-such-row") ||
		!strings.Contains(err.Error(), "engine/apply-batch") {
		t.Fatalf("missing-result error should name the wanted and available rows: %v", err)
	}
	if err := compareReports("only-one.json", "x", 1.2); err == nil ||
		!strings.Contains(err.Error(), "OLD.json,NEW.json") {
		t.Fatalf("bad spec error = %v", err)
	}
}

package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"kcore"
	"kcore/internal/bench"
	"kcore/internal/gen"
	"kcore/internal/server"
	"kcore/internal/server/wire"
)

// Serve experiment: a load generator for the kcore-serve service layer.
// It boots internal/server on a loopback port over an engine preloaded
// with an Erdős–Rényi base graph, then runs, all at once:
//
//   - writers concurrent HTTP writers streaming mixed add/remove batches
//     through POST /v1/batch (each on a private vertex block above the base
//     graph, so the streams stay valid under any interleaving and the
//     ingest coalescer sees genuinely concurrent callers);
//   - readers concurrent snapshot readers alternating GET /v1/core/{v} and
//     GET /v1/kcore;
//   - one SSE watcher riding /v1/watch.
//
// Every request's wall-clock latency is recorded; the results carry
// p50/p90/p99/max per request class, which is what BENCH_serve.json
// memorializes for the README and CI.
type serveParams struct {
	writers int
	readers int
	batch   int
	batches int
	baseN   int
	baseM   int
	seed    uint64
}

func serveExperiment(cfg bench.Config) []bench.Result {
	cfg = cfg.WithDefaults()
	p := serveParams{
		writers: 4,
		readers: 4,
		batch:   100,
		batches: max(cfg.Edges/(4*100), 5),
		baseN:   max(cfg.Edges/2, 500),
		baseM:   max(3*cfg.Edges/2, 1500),
		seed:    cfg.Seed,
	}
	fmt.Printf("=== serve === (%d writers x %d batches x %d updates, %d readers, base %d/%d)\n",
		p.writers, p.batches, p.batch, p.readers, p.baseN, p.baseM)
	results, err := runServeLoad(p)
	if err != nil {
		fatal(err)
	}
	return results
}

func runServeLoad(p serveParams) ([]bench.Result, error) {
	base := gen.ErdosRenyi(p.baseN, p.baseM, p.seed)
	engine, err := kcore.FromEdges(base.Edges(), kcore.WithSeed(p.seed))
	if err != nil {
		return nil, err
	}
	srv := server.New(engine, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	client, err := server.NewClient("http://"+l.Addr().String(), nil)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Writer scripts live on vertex blocks above the base graph so they
	// can't conflict with it or each other.
	scripts := make([][][]wire.Update, p.writers)
	for w := range scripts {
		scripts[w] = serveWriterScript(p.baseN+w*64, p.batches, p.batch, p.seed+uint64(w))
	}

	// One SSE watcher rides along, counting what it sees.
	events, err := client.Watch(ctx, server.WatchOptions{Buffer: 4096})
	if err != nil {
		return nil, err
	}
	watchStats := make(chan [2]uint64, 1)
	go func() {
		var changes, lagged uint64
		for ev := range events {
			switch ev.Type {
			case wire.EventChange:
				changes++
			case wire.EventLagged:
				lagged = ev.Lagged.Dropped
			}
		}
		watchStats <- [2]uint64{changes, lagged}
	}()

	var (
		wgWriters, wgReaders sync.WaitGroup
		mu                   sync.Mutex
		ingestLat            []time.Duration
		coreLat              []time.Duration
		kcoreLat             []time.Duration
		firstErr             error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	stopReaders := make(chan struct{})

	start := time.Now()
	for w := 0; w < p.writers; w++ {
		wgWriters.Add(1)
		go func(w int) {
			defer wgWriters.Done()
			local := make([]time.Duration, 0, len(scripts[w]))
			for _, b := range scripts[w] {
				t0 := time.Now()
				if _, err := client.Batch(ctx, b); err != nil {
					fail(fmt.Errorf("writer %d: %w", w, err))
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			ingestLat = append(ingestLat, local...)
			mu.Unlock()
		}(w)
	}
	for r := 0; r < p.readers; r++ {
		wgReaders.Add(1)
		go func(r int) {
			defer wgReaders.Done()
			rng := rand.New(rand.NewPCG(p.seed+100, uint64(r)))
			var localCore, localKCore []time.Duration
			for {
				select {
				case <-stopReaders:
					mu.Lock()
					coreLat = append(coreLat, localCore...)
					kcoreLat = append(kcoreLat, localKCore...)
					mu.Unlock()
					return
				default:
				}
				if rng.IntN(4) > 0 { // 3:1 core-to-kcore mix
					t0 := time.Now()
					if _, err := client.Core(ctx, rng.IntN(p.baseN)); err != nil {
						fail(fmt.Errorf("reader %d: %w", r, err))
						return
					}
					localCore = append(localCore, time.Since(t0))
				} else {
					t0 := time.Now()
					if _, err := client.KCore(ctx, 2+rng.IntN(3)); err != nil {
						fail(fmt.Errorf("reader %d: %w", r, err))
						return
					}
					localKCore = append(localKCore, time.Since(t0))
				}
			}
		}(r)
	}
	wgWriters.Wait()
	close(stopReaders)
	wgReaders.Wait()
	elapsed := time.Since(start)
	cancel() // end the watch stream
	var ws [2]uint64
	select {
	case ws = <-watchStats:
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("serve experiment: watcher never finished")
	}
	if firstErr != nil {
		return nil, fmt.Errorf("serve experiment: %w", firstErr)
	}

	st, err := serveFinalStats(client)
	if err != nil {
		return nil, err
	}
	shared := map[string]any{
		"writers": p.writers, "readers": p.readers,
		"batch_size": p.batch, "batches_per_writer": p.batches,
		"base_n": p.baseN, "base_m": p.baseM, "seed": p.seed,
		"wall_ns":        elapsed.Nanoseconds(),
		"ingest_flushes": st.Ingest.Flushes, "ingest_grouped": st.Ingest.Grouped,
		"watch_changes": ws[0], "watch_dropped": ws[1],
	}
	mk := func(name string, sample []time.Duration) bench.Result {
		s := bench.Summarize(sample)
		res := bench.Result{
			Name:       name,
			NsPerOp:    float64(s.P50.Nanoseconds()),
			Iterations: s.Count,
			Params:     bench.StampParams(s.Params(shared)),
		}
		fmt.Printf("%-24s p50 %10v  p90 %10v  p99 %10v  max %10v  (%d requests)\n",
			name, s.P50, s.P90, s.P99, s.Max, s.Count)
		return res
	}
	results := []bench.Result{
		mk("serve/ingest-batch", ingestLat),
		mk("serve/query-core", coreLat),
		mk("serve/query-kcore", kcoreLat),
	}
	fmt.Printf("%-24s %d requests in %v; coalescer grouped %d/%d; watcher saw %d changes (%d dropped)\n",
		"serve/summary", st.Ingest.Requests, elapsed.Round(time.Millisecond),
		st.Ingest.Grouped, st.Ingest.Requests, ws[0], ws[1])
	return results, nil
}

// serveFinalStats fetches the server's ingest counters after the load
// (with its own context: the load generator's is already cancelled).
func serveFinalStats(client *server.Client) (*wire.StatsResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return client.Stats(ctx)
}

// serveWriterScript builds one writer's valid batch sequence over the
// private vertex block [base, base+64): mixed adds and removes against the
// writer's own edge history, mirroring the differential test's generator.
func serveWriterScript(base, batches, batchSize int, seed uint64) [][]wire.Update {
	const span = 64
	rng := rand.New(rand.NewPCG(seed, 0xbeef))
	present := map[[2]int]bool{}
	var presentList [][2]int
	out := make([][]wire.Update, 0, batches)
	for b := 0; b < batches; b++ {
		batch := make([]wire.Update, 0, batchSize)
		for len(batch) < batchSize {
			if len(presentList) > 0 && rng.Float64() < 0.35 {
				i := rng.IntN(len(presentList))
				e := presentList[i]
				presentList[i] = presentList[len(presentList)-1]
				presentList = presentList[:len(presentList)-1]
				delete(present, e)
				batch = append(batch, wire.Update{Op: wire.OpRemove, U: e[0], V: e[1]})
				continue
			}
			u := base + rng.IntN(span)
			v := base + rng.IntN(span)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if present[[2]int{u, v}] {
				continue
			}
			present[[2]int{u, v}] = true
			presentList = append(presentList, [2]int{u, v})
			batch = append(batch, wire.Update{Op: wire.OpAdd, U: u, V: v})
		}
		out = append(out, batch)
	}
	return out
}

package main

import (
	"fmt"
	"sort"

	"kcore/internal/bench"
	"kcore/internal/chaos"
)

// chaosSeeds is how many seeded chaos runs the experiment aggregates
// (seeds cfg.Seed .. cfg.Seed+chaosSeeds-1).
const chaosSeeds = 5

// chaosExperiment runs the seeded chaos soak (internal/chaos) across
// several seeds and reports the two headline resilience numbers: write
// availability under the fault schedule and the median degraded→healthy
// recovery time. Every run must pass the harness's invariants (healthz
// liveness, exact write classification, follower convergence, bit-identical
// recovery) — a violated invariant fails the experiment, it does not
// produce a degraded number.
func chaosExperiment(cfg bench.Config) []bench.Result {
	cfg = cfg.WithDefaults()

	var (
		writes, applied, persistFailed  int
		probes, failures                int
		degradations, recoveries        int
		panics                          uint64
		recoveryMS                      []float64
		minAvailability                 = 1.0
		totalElapsedMS, totalFinalEdges float64
	)
	for i := 0; i < chaosSeeds; i++ {
		seed := cfg.Seed + uint64(i)
		rep, err := chaos.Run(chaos.Config{Seed: seed})
		if err != nil {
			fatal(fmt.Errorf("chaos experiment: seed %d violated an invariant: %w (report: %+v)", seed, err, rep))
		}
		fmt.Fprintf(cfg.Out, "chaos seed %d: %d writes, %.2f%% available, %d degradations, median recovery %.1fms, %d panics contained, final seq %d\n",
			seed, rep.Writes, 100*rep.WriteAvailability, rep.Degradations,
			rep.MedianRecoveryMS, rep.EnginePanics, rep.FinalSeq)
		writes += rep.Writes
		applied += rep.Applied
		persistFailed += rep.PersistFailed
		probes += rep.HealthzProbes
		failures += rep.HealthzFailures
		degradations += rep.Degradations
		recoveries += rep.Recoveries
		panics += rep.EnginePanics
		recoveryMS = append(recoveryMS, rep.RecoveryMS...)
		if rep.Writes > 0 && rep.WriteAvailability < minAvailability {
			minAvailability = rep.WriteAvailability
		}
		totalElapsedMS += rep.ElapsedMS
		totalFinalEdges += float64(rep.FinalEdges)
	}

	availability := 0.0
	if writes > 0 {
		availability = float64(applied) / float64(writes)
	}
	sort.Float64s(recoveryMS)
	medianMS, maxMS := 0.0, 0.0
	if n := len(recoveryMS); n > 0 {
		medianMS = recoveryMS[n/2]
		maxMS = recoveryMS[n-1]
	}

	return []bench.Result{
		{
			// NsPerOp here is the availability fraction, not a duration —
			// the unit param spells it out. The regression guard compares
			// named results, so the unconventional unit stays local.
			Name:       "chaos/write-availability",
			NsPerOp:    availability,
			Iterations: writes,
			Params: map[string]any{
				"unit":              "fraction of write batches acked applied (NOT ns)",
				"seeds":             chaosSeeds,
				"first_seed":        cfg.Seed,
				"writes":            writes,
				"applied":           applied,
				"persist_failed":    persistFailed,
				"min_seed_avail":    minAvailability,
				"healthz_probes":    probes,
				"healthz_failures":  failures,
				"panics_contained":  panics,
				"mean_final_edges":  totalFinalEdges / chaosSeeds,
				"mean_run_ms":       totalElapsedMS / chaosSeeds,
				"episodes_per_seed": 12,
			},
		},
		{
			Name:       "chaos/recovery-median",
			NsPerOp:    medianMS * 1e6,
			Iterations: recoveries,
			Params: map[string]any{
				"unit":         "median degraded→healthy recovery (ns)",
				"median_ms":    medianMS,
				"max_ms":       maxMS,
				"degradations": degradations,
				"recoveries":   recoveries,
			},
		},
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"kcore"
	"kcore/internal/bench"
	"kcore/internal/persist"
	"kcore/internal/server"
	"kcore/internal/server/wire"
)

// Serve2 experiment: the binary wire protocol against JSON.
//
//   - serve2/ingest-json vs serve2/ingest-binary measure the per-batch wire
//     cost of the ingest path (request decode + ack encode, the work that
//     differs between the protocols; the engine Apply between them is shared
//     and excluded) through testing.Benchmark, with allocation counts — the
//     binary path must stay allocation-free in steady state.
//   - serve2/http-ingest-{json,binary} run the same batch script end to end
//     through POST /v1/batch on a loopback server, one protocol per fresh
//     server, reporting p50 per-batch latency and updates/sec.
//   - serve2/fanout-N sweeps the watch broadcast ring with N in-process
//     subscribers (see server.FanoutLoad for why they are not real TCP
//     watchers: 2 file descriptors per connection caps a 10k run above
//     typical nofile limits, and sockets would dominate the measurement).
//
// minSpeedup, when positive, turns the run into a guard: it fails unless
// binary ingest beats JSON ingest by at least that factor.
func serve2Experiment(cfg bench.Config, fanout []int, minSpeedup float64) []bench.Result {
	cfg = cfg.WithDefaults()
	const batchSize = 100
	fmt.Printf("=== serve2 === (batch_size %d, fanout %v)\n", batchSize, fanout)

	results := ingestCodecBench(cfg, batchSize, minSpeedup)
	httpRes, err := httpIngestBench(cfg, batchSize)
	if err != nil {
		fatal(err)
	}
	results = append(results, httpRes...)
	for _, n := range fanout {
		res, err := fanoutBench(cfg, n)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}
	return results
}

// serve2Batch builds one valid batchSize-update batch (a path graph) in both
// representations.
func serve2Batch(batchSize int) (jsonBody, binBody []byte) {
	updates := make([]wire.Update, batchSize)
	kups := make([]kcore.Update, batchSize)
	for i := range updates {
		updates[i] = wire.Update{Op: wire.OpAdd, U: i, V: i + 1}
		kups[i] = kcore.Add(i, i+1)
	}
	jsonBody, err := json.Marshal(wire.BatchRequest{Updates: updates})
	if err != nil {
		fatal(err)
	}
	binBody, err = persist.AppendBatchFrame(nil, kups)
	if err != nil {
		fatal(err)
	}
	return jsonBody, binBody
}

// ingestCodecBench measures the protocol-dependent work of one ingest
// request: decode the body into engine updates, encode the ack.
func ingestCodecBench(cfg bench.Config, batchSize int, minSpeedup float64) []bench.Result {
	jsonBody, binBody := serve2Batch(batchSize)
	ack := wire.BatchResponse{Seq: 12345, Applied: batchSize, FlushedWith: 1,
		CoreChanged: []int{1, 2, 3, 4, 5, 6, 7, 8}, Visited: 4 * batchSize}
	params := map[string]any{"batch_size": batchSize}

	bench.PrintResultHeader(cfg.Out)
	jsonRes := bench.RunMeasured(cfg.Out, "serve2/ingest-json", params, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req wire.BatchRequest
			if err := json.Unmarshal(jsonBody, &req); err != nil {
				b.Fatal(err)
			}
			batch := make(kcore.Batch, 0, len(req.Updates))
			for _, u := range req.Updates {
				switch u.Op {
				case wire.OpAdd:
					batch = append(batch, kcore.Add(u.U, u.V))
				case wire.OpRemove:
					batch = append(batch, kcore.Remove(u.U, u.V))
				default:
					b.Fatalf("bad op %q", u.Op)
				}
			}
			if _, err := json.Marshal(&ack); err != nil {
				b.Fatal(err)
			}
		}
	})
	var scratch []kcore.Update
	var ackBuf []byte
	binRes := bench.RunMeasured(cfg.Out, "serve2/ingest-binary", params, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			updates, err := persist.DecodeBatchFrame(binBody, scratch)
			if err != nil {
				b.Fatal(err)
			}
			scratch = updates
			ackBuf = wire.AppendBatchAck(ackBuf[:0], &ack)
		}
	})

	speedup := jsonRes.NsPerOp / binRes.NsPerOp
	binRes.Params["speedup_vs_json"] = speedup
	fmt.Printf("%-28s %.1fx (json %.0f ns/batch, binary %.0f ns/batch)\n",
		"serve2/ingest-speedup", speedup, jsonRes.NsPerOp, binRes.NsPerOp)
	if minSpeedup > 0 && speedup < minSpeedup {
		fatal(fmt.Errorf("serve2: binary ingest speedup %.2fx is below the required %.2fx",
			speedup, minSpeedup))
	}
	return []bench.Result{jsonRes, binRes}
}

// httpIngestBench runs the same writer script through POST /v1/batch end to
// end, once per protocol, each against a fresh loopback server.
func httpIngestBench(cfg bench.Config, batchSize int) ([]bench.Result, error) {
	batches := max(cfg.Edges/batchSize, 10)
	script := serveWriterScript(0, batches, batchSize, cfg.Seed)
	var out []bench.Result
	for _, binary := range []bool{false, true} {
		name := "serve2/http-ingest-json"
		if binary {
			name = "serve2/http-ingest-binary"
		}
		lat, elapsed, err := runHTTPIngest(script, binary)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		s := bench.Summarize(lat)
		updates := batches * batchSize
		res := bench.Result{
			Name:       name,
			NsPerOp:    float64(s.P50.Nanoseconds()),
			Iterations: s.Count,
			Params: bench.StampParams(s.Params(map[string]any{
				"batch_size": batchSize, "batches": batches,
				"wall_ns":         elapsed.Nanoseconds(),
				"updates_per_sec": float64(updates) / elapsed.Seconds(),
			})),
		}
		fmt.Printf("%-26s p50 %10v  p99 %10v  %8.0f updates/sec\n",
			name, s.P50, s.P99, float64(updates)/elapsed.Seconds())
		out = append(out, res)
	}
	return out, nil
}

func runHTTPIngest(script [][]wire.Update, binary bool) ([]time.Duration, time.Duration, error) {
	engine := kcore.NewEngine()
	srv := server.New(engine, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, err
	}
	go func() { _ = srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	client, err := server.NewClient("http://"+l.Addr().String(), nil)
	if err != nil {
		return nil, 0, err
	}
	client.Binary = binary
	ctx := context.Background()
	lat := make([]time.Duration, 0, len(script))
	start := time.Now()
	for _, b := range script {
		t0 := time.Now()
		if _, err := client.Batch(ctx, b); err != nil {
			return nil, 0, err
		}
		lat = append(lat, time.Since(t0))
	}
	return lat, time.Since(start), nil
}

// fanoutBench runs one watcher tier through the broadcast ring.
func fanoutBench(cfg bench.Config, watchers int) (bench.Result, error) {
	changes := max(min(cfg.Edges/10, 1000), 100)
	st, err := server.FanoutLoad(watchers, changes, 4096)
	if err != nil {
		return bench.Result{}, err
	}
	if st.EncodedSSE != st.EncodedBin {
		return bench.Result{}, fmt.Errorf("fanout-%d: encode counters diverged (%d sse, %d bin)",
			watchers, st.EncodedSSE, st.EncodedBin)
	}
	if st.EncodedSSE != st.Changes {
		return bench.Result{}, fmt.Errorf("fanout-%d: %d events encoded %d times — the ring must encode once per event, independent of %d watchers",
			watchers, st.Changes, st.EncodedSSE, watchers)
	}
	perDelivery := float64(st.Elapsed.Nanoseconds()) / float64(max(st.Delivered, 1))
	name := fmt.Sprintf("serve2/fanout-%d", watchers)
	res := bench.Result{
		Name:       name,
		NsPerOp:    perDelivery,
		Iterations: int(st.Delivered),
		Params: bench.StampParams(map[string]any{
			"watchers": watchers, "changes": st.Changes,
			"delivered": st.Delivered, "dropped": st.Dropped,
			"encoded_sse": st.EncodedSSE, "encoded_bin": st.EncodedBin,
			"wall_ns":            st.Elapsed.Nanoseconds(),
			"deliveries_per_sec": float64(st.Delivered) / st.Elapsed.Seconds(),
		}),
	}
	fmt.Printf("%-26s %8.1f ns/delivery  %d watchers x %d events = %d delivered (%d dropped) in %v\n",
		name, perDelivery, watchers, st.Changes, st.Delivered, st.Dropped,
		st.Elapsed.Round(time.Millisecond))
	return res, nil
}

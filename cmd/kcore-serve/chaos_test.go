package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"kcore/internal/server"
	"kcore/internal/server/wire"
)

// TestChaosFlag boots kcore-serve with a -chaos spec whose WAL-write rule
// fails every append, and proves the fault plane is wired end to end: the
// first writes surface persistence_failed, the server degrades to
// read-only (degraded 503 with Retry-After), healthz keeps answering with
// the cause, and reads keep working throughout.
func TestChaosFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	addrCh := make(chan string, 1)
	runDone := make(chan error, 1)
	dir := t.TempDir()
	go func() {
		runDone <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-data-dir", dir,
			"-fsync", "off",
			"-drain-timeout", "5s",
			"-chaos", "seed=7;wal.write:error",
		}, &out, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		t.Fatalf("run exited before listening: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c.Retry = nil // a degraded rejection must surface, not be retried away

	// Write until the degradation trips: the first appends fail durability
	// (persistence_failed), then the availability machine flips to
	// degraded 503s.
	deadline := time.Now().Add(10 * time.Second)
	sawPersistFailed, sawDegraded := false, false
	for v := 0; time.Now().Before(deadline) && !sawDegraded; v += 2 {
		_, err := c.AddEdges(ctx, [][2]int{{v, v + 1}})
		if err == nil {
			continue
		}
		var we *wire.Error
		if !errors.As(err, &we) {
			t.Fatalf("AddEdges: %v", err)
		}
		switch we.Code {
		case wire.CodePersistenceFailed:
			sawPersistFailed = true
		case wire.CodeDegraded:
			sawDegraded = true
			if we.RetryAfter <= 0 {
				t.Fatalf("degraded rejection carried no Retry-After: %+v", we)
			}
		default:
			t.Fatalf("unexpected write rejection %q: %v", we.Code, we)
		}
	}
	if !sawPersistFailed || !sawDegraded {
		t.Fatalf("chaos WAL faults never degraded the server (persistence_failed=%v degraded=%v)\n%s",
			sawPersistFailed, sawDegraded, out.String())
	}

	// Liveness and reads hold while degraded.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health while degraded: %v", err)
	}
	if h.Status != "degraded" || h.Mode != "read_only" || h.Cause == "" {
		t.Fatalf("healthz = %+v, want degraded/read_only with a cause", h)
	}
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("Stats while degraded: %v", err)
	}

	if !strings.Contains(out.String(), "CHAOS MODE") {
		t.Fatalf("boot log does not announce the armed fault plane:\n%s", out.String())
	}

	// Shutdown: the WAL is sealed by the injected faults, so the final
	// store close is allowed to report the durability failure — the run
	// must still exit (no hang), and the error must name the WAL.
	cancel()
	select {
	case err := <-runDone:
		if err != nil && !strings.Contains(err.Error(), "wal") && !strings.Contains(err.Error(), "injected") {
			t.Fatalf("run exited with an unrelated error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after shutdown")
	}
}

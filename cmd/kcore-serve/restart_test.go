package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"kcore"
	"kcore/internal/gen"
	"kcore/internal/server"
)

// bootServe starts run() with the given args and waits for the listener.
func bootServe(t *testing.T, args []string) (addr string, out *bytes.Buffer, shutdown func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &bytes.Buffer{}
	addrCh := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run(ctx, args, out, func(a string) { addrCh <- a })
	}()
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		cancel()
		t.Fatalf("run exited before listening: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("server never became ready")
	}
	shutdown = func() error {
		cancel() // what SIGTERM does
		select {
		case err := <-runDone:
			return err
		case <-time.After(15 * time.Second):
			t.Fatal("run did not exit after context cancellation")
			return nil
		}
	}
	return addr, out, shutdown
}

// TestServeRestartE2E is the durability end-to-end: boot with -data-dir,
// ingest over HTTP, SIGTERM, boot again on the same directory, and verify
// the recovered server answers identically — same cores, continuous seq —
// then keeps accepting writes.
func TestServeRestartE2E(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-fsync", "always",
		"-drain-timeout", "5s"}

	// ---- First life: ingest a scale-free graph, snapshot mid-way. ----
	addr, out, shutdown := bootServe(t, args)
	c, err := server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.BarabasiAlbert(200, 3, 77)
	edges := g.Edges()
	half := len(edges) / 2
	if _, err := c.AddEdges(ctx, edges[:half]); err != nil {
		t.Fatal(err)
	}
	// Admin snapshot mid-stream: recovery below must combine snapshot + WAL.
	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.Seq != uint64(half) {
		t.Fatalf("snapshot seq = %d, want %d", snap.Seq, half)
	}
	if _, err := c.AddEdges(ctx, edges[half:]); err != nil {
		t.Fatal(err)
	}
	st1, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Seq != uint64(len(edges)) {
		t.Fatalf("pre-restart seq = %d, want %d", st1.Seq, len(edges))
	}
	if err := shutdown(); err != nil {
		t.Fatalf("first shutdown: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bye") {
		t.Fatalf("first life did not exit cleanly:\n%s", out.String())
	}

	// ---- Second life: same directory, verify recovery then continue. ----
	addr2, out2, shutdown2 := bootServe(t, args)
	defer func() {
		if err := shutdown2(); err != nil {
			t.Fatalf("second shutdown: %v\n%s", err, out2.String())
		}
	}()
	if !strings.Contains(out2.String(), "recovered "+dir) {
		t.Fatalf("second boot did not report recovery:\n%s", out2.String())
	}
	c2, err := server.NewClient("http://"+addr2, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Seq continuity across the restart.
	if st2.Seq != st1.Seq {
		t.Fatalf("recovered seq = %d, want %d", st2.Seq, st1.Seq)
	}
	if st2.Persist == nil || st2.Persist.RecoveredSeq != st1.Seq {
		t.Fatalf("persist stats after restart = %+v", st2.Persist)
	}
	if st2.Edges != len(edges) || st2.Degeneracy != st1.Degeneracy {
		t.Fatalf("recovered graph stats = %+v, want %d edges, degeneracy %d",
			st2, len(edges), st1.Degeneracy)
	}
	// Served cores match a direct one-shot decomposition.
	want, err := kcore.Decompose(edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 13, 42, 120, 199} {
		resp, err := c2.Core(ctx, v)
		if err != nil {
			t.Fatalf("Core(%d): %v", v, err)
		}
		if resp.Core != want[v] {
			t.Fatalf("recovered core(%d) = %d, Decompose says %d", v, resp.Core, want[v])
		}
		if resp.Seq != st1.Seq {
			t.Fatalf("recovered core seq = %d, want %d", resp.Seq, st1.Seq)
		}
	}
	// Writes keep flowing, with seq continuing where the first life ended.
	resp, err := c2.AddEdges(ctx, [][2]int{{0, 200}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != st1.Seq+1 {
		t.Fatalf("post-restart batch seq = %d, want %d", resp.Seq, st1.Seq+1)
	}
}

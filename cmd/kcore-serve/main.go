// Command kcore-serve serves a dynamic k-core decomposition engine over
// HTTP/JSON: a mutation path (POST /v1/batch through an ingest coalescer),
// a query path (core/kcore/stats from immutable snapshots), and a live path
// (core-change events over SSE). The wire protocol is documented in
// kcore/internal/server/wire.
//
// Usage:
//
//	kcore-serve                                  serve an empty engine on :8080
//	kcore-serve -addr :9090 -load graph.txt      preload an edge list
//	kcore-serve -workers 4 -max-batch 50000      tune engine and admission
//
// The process drains gracefully on SIGINT/SIGTERM: new writes are refused
// (HTTP 503), queued batches flush, watch streams end, and in-flight
// requests get -drain-timeout to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kcore"
	"kcore/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kcore-serve:", err)
		os.Exit(1)
	}
}

// run builds the engine, binds the listener, and serves until ctx is
// cancelled, then shuts down gracefully. ready, when non-nil, is called
// with the bound address once the listener is accepting — tests and the CI
// end-to-end smoke pass -addr 127.0.0.1:0 and learn the port through it.
func run(ctx context.Context, args []string, out io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("kcore-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		load         = fs.String("load", "", "edge-list file to preload (whitespace-separated \"u v\" lines)")
		seed         = fs.Uint64("seed", 1, "engine randomization seed")
		workers      = fs.Int("workers", 0, "parallel batch maintenance workers (0 = auto)")
		rebuildFloor = fs.Int("rebuild-floor", -2, "maintain-vs-recompute floor (-2 = engine default, -1 = never recompute)")
		rebuildFrac  = fs.Float64("rebuild-frac", 0.15, "maintain-vs-recompute graph fraction (with -rebuild-floor)")
		maxBatch     = fs.Int("max-batch", 10000, "largest accepted updates per batch request (HTTP 413 beyond)")
		maxPending   = fs.Int("max-pending", 100000, "ingest backpressure budget in buffered updates (HTTP 429 beyond)")
		watchBuffer  = fs.Int("watch-buffer", 256, "default per-watch subscription buffer")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []kcore.Option{kcore.WithSeed(*seed)}
	if *workers != 0 {
		opts = append(opts, kcore.WithWorkers(*workers))
	}
	if *rebuildFloor != -2 {
		opts = append(opts, kcore.WithRebuildThreshold(*rebuildFloor, *rebuildFrac))
	}

	engine, err := buildEngine(*load, opts)
	if err != nil {
		return err
	}
	view := engine.View()
	fmt.Fprintf(out, "engine ready: %d vertices, %d edges, degeneracy %d\n",
		view.NumVertices(), view.NumEdges(), view.Degeneracy())

	// Bind before constructing the Server: New starts the ingest flusher
	// goroutine, so a listen failure must not leave one behind.
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", *addr, err)
	}
	srv := server.New(engine, server.Options{
		MaxBatch:    *maxBatch,
		MaxPending:  *maxPending,
		WatchBuffer: *watchBuffer,
	})
	fmt.Fprintf(out, "listening on %s\n", l.Addr())
	if ready != nil {
		ready(l.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case err := <-serveErr:
		// The listener failed before any shutdown was requested; stop the
		// server's internals so nothing is leaked.
		_ = srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down: draining ingest queue and watch streams")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// The drain budget ran out (e.g. a stalled watcher); cut the
		// remaining connections instead of leaking them.
		_ = srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Fprintln(out, "bye")
	return nil
}

// buildEngine constructs the engine, preloading an edge list when -load was
// given.
func buildEngine(path string, opts []kcore.Option) (*kcore.Engine, error) {
	if path == "" {
		return kcore.NewEngine(opts...), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	defer f.Close()
	e, err := kcore.Load(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return e, nil
}

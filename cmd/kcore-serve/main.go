// Command kcore-serve serves dynamic k-core decomposition engines over
// HTTP/JSON: a mutation path (POST .../batch through an ingest coalescer),
// a query path (core/kcore/stats from immutable snapshots), and a live path
// (core-change events over SSE). The wire protocol is documented in
// kcore/internal/server/wire.
//
// Usage:
//
//	kcore-serve                                  serve an empty engine on :8080
//	kcore-serve -addr :9090 -load graph.txt      preload an edge list or snapshot
//	kcore-serve -workers 4 -max-batch 50000      tune engine and admission
//	kcore-serve -data-dir /var/lib/kcore         durable: snapshot + WAL
//	kcore-serve -data-dir d -fsync always        fsync the WAL per batch
//	kcore-serve -follow http://primary:8080      read-scaling follower
//	kcore-serve -read-only                       serve reads, reject writes
//	kcore-serve -max-tenants 16 -tenant-idle 5m  bound and pace tenant hosting
//
// One process hosts many independent graphs: the tenant-scoped routes
// /v1/t/{tenant}/... create tenants on first write, recover them lazily
// from <data-dir>/tenants/<name>/ after a restart, and evict them back to
// disk after -tenant-idle without traffic (bounded at -max-tenants
// resident). The unscoped /v1/... routes alias the pinned "default" tenant
// — the engine -load/-data-dir describe — so pre-tenant clients are
// unaffected. GET /v1/tenants lists tenants; DELETE /v1/t/{name} evicts.
//
// With -data-dir the engine state survives restarts: boot recovers the
// snapshot plus write-ahead log (truncating a torn tail) before the
// listener accepts, every applied batch is logged before its response is
// sent, and the WAL is compacted into a fresh snapshot past -compact-every
// bytes (or on demand via POST /v1/snapshot). -load seeds only a data
// directory without prior state. The -fsync policy trades durability
// against throughput: "always" (per batch), "interval" (grouped, every
// -sync-every), or "off" (OS-paced; a process crash still loses nothing).
//
// Every server (unless -replicate-history is negative) is also a
// replication primary: followers bootstrap and stream applied batches from
// GET /v1/replicate. With -follow the process is instead a follower: it
// boots by catching up from the primary, applies its stream while serving
// the read and watch endpoints locally, rejects writes with the stable
// "read_only" error, and reports staleness as replication.follower.seq_lag
// in /v1/stats. Replication is asynchronous — a follower read may trail a
// write acknowledged by the primary. A follower replicates only the default
// tenant, so it always runs single-tenant: combining -follow with
// -max-tenants > 1 or -tenant-idle is rejected at boot.
//
// The process drains gracefully on SIGINT/SIGTERM: new writes are refused
// (HTTP 503), queued batches flush, watch streams end, in-flight requests
// get -drain-timeout to finish, and the WAL is synced and closed.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"kcore"
	"kcore/internal/fault"
	"kcore/internal/persist"
	"kcore/internal/replicate"
	"kcore/internal/server"
	"kcore/internal/tenant"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kcore-serve:", err)
		os.Exit(1)
	}
}

// run builds the engine, binds the listener, and serves until ctx is
// cancelled, then shuts down gracefully. ready, when non-nil, is called
// with the bound address once the listener is accepting — tests and the CI
// end-to-end smoke pass -addr 127.0.0.1:0 and learn the port through it.
func run(ctx context.Context, args []string, out io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("kcore-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		load         = fs.String("load", "", "file to preload: an edge list (whitespace-separated \"u v\" lines) or a KCORSNAP snapshot image")
		seed         = fs.Uint64("seed", 1, "engine randomization seed")
		workers      = fs.Int("workers", 0, "parallel batch maintenance workers (0 = auto)")
		rebuildFloor = fs.Int("rebuild-floor", -2, "maintain-vs-recompute floor (-2 = engine default, -1 = never recompute)")
		rebuildFrac  = fs.Float64("rebuild-frac", 0.15, "maintain-vs-recompute graph fraction (with -rebuild-floor)")
		maxBatch     = fs.Int("max-batch", 10000, "largest accepted updates per batch request (HTTP 413 beyond)")
		maxPending   = fs.Int("max-pending", 100000, "ingest backpressure budget in buffered updates (HTTP 429 beyond)")
		watchBuffer  = fs.Int("watch-buffer", 256, "default per-watch subscription buffer")
		watchRing    = fs.Int("watch-ring", 4096, "shared watch broadcast ring capacity (every change is encoded once into it; per-watch buffers are clamped to it)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for in-flight requests")
		dataDir      = fs.String("data-dir", "", "durable state directory (snapshot + write-ahead log); empty serves in memory only")
		fsync        = fs.String("fsync", "interval", "WAL fsync policy with -data-dir: always|interval|off")
		syncEvery    = fs.Duration("sync-every", 100*time.Millisecond, "fsync period for -fsync interval")
		compactEvery = fs.Int64("compact-every", 64<<20, "WAL bytes that trigger snapshot compaction with -data-dir (negative disables)")
		follow       = fs.String("follow", "", "run as a replication follower of the primary kcore-serve at this base URL (implies read-only)")
		followPoll   = fs.Duration("follow-poll", time.Second, "staleness poll period against the primary in follower mode")
		readOnly     = fs.Bool("read-only", false, "reject writes with the stable read_only error; reads keep working")
		maxTenants   = fs.Int("max-tenants", 64, "largest number of resident tenants (HTTP 429 tenant_limit beyond)")
		tenantIdle   = fs.Duration("tenant-idle", 15*time.Minute, "evict durable tenants untouched this long back to disk (0 disables; requires -data-dir)")
		replHistory  = fs.Int("replicate-history", 4<<20, "in-memory replication frame history bytes for follower resume (negative disables the replication endpoint)")
		chaosSpec    = fs.String("chaos", "", "FAULT INJECTION (testing only): internal/fault rule spec, e.g. \"seed=42;wal.write:p=0.01;conn.read:p=0.005,drop;apply:panic,count=2\"")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The chaos plane is built empty here (so the store can carry it
	// through recovery un-faulted) and armed with the spec's rules only
	// once the engine is ready — faults target live traffic, not boot.
	var plane *fault.Plane
	var chaosRules []fault.Rule
	if *chaosSpec != "" {
		seed, rules, err := fault.ParseRules(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		plane = fault.New(seed)
		chaosRules = rules
	}
	if *follow != "" {
		// A follower's state IS the primary's stream; local durability or
		// preloads would diverge from it.
		if *dataDir != "" {
			return fmt.Errorf("-follow and -data-dir are mutually exclusive (follower state comes from the primary)")
		}
		if *load != "" {
			return fmt.Errorf("-follow and -load are mutually exclusive (follower state comes from the primary)")
		}
		// A follower replicates only the default tenant (tenant replication
		// is future work — see ROADMAP.md). Hosting named tenants on a
		// follower would serve them unreplicated and silently stale forever,
		// so asking for multi-tenant hosting alongside -follow is rejected
		// loudly, and the tenant defaults narrow to single-tenant hosting.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["max-tenants"] && *maxTenants > 1 {
			return fmt.Errorf("-follow and -max-tenants %d conflict: a follower replicates only the default tenant, so named tenants would be served unreplicated (tenant replication is future work)", *maxTenants)
		}
		if set["tenant-idle"] && *tenantIdle > 0 {
			return fmt.Errorf("-follow and -tenant-idle conflict: idle eviction manages named durable tenants, which a follower cannot host (tenant replication is future work)")
		}
		*maxTenants = 1
		*tenantIdle = 0
	}

	opts := []kcore.Option{kcore.WithSeed(*seed)}
	if *workers != 0 {
		opts = append(opts, kcore.WithWorkers(*workers))
	}
	if *rebuildFloor != -2 {
		opts = append(opts, kcore.WithRebuildThreshold(*rebuildFloor, *rebuildFrac))
	}
	// Parsed up front (not inside the -data-dir branch): named tenants use
	// the same durability policy for their per-tenant stores.
	policy, err := persist.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}

	var engine *kcore.Engine
	var store *persist.Store
	var fol *replicate.Follower
	if *follow != "" {
		// StartFollower blocks (retrying) until the bootstrap succeeds, so
		// the listener only accepts once the engine holds real state —
		// mirroring the -data-dir recovery-before-accept behavior.
		fopts := replicate.FollowerOptions{
			Engine:       opts,
			PollInterval: *followPoll,
		}
		if plane != nil {
			// Chaos in follower mode faults the replication stream's dialer.
			fopts.Client = &http.Client{Transport: &http.Transport{
				DialContext: fault.Dialer(plane, nil),
			}}
		}
		f, err := replicate.StartFollower(ctx, *follow, fopts)
		if err != nil {
			return fmt.Errorf("follow %s: %w", *follow, err)
		}
		defer f.Close()
		fol = f
		engine = f.Engine()
		fmt.Fprintf(out, "following %s: bootstrapped at seq %d\n", f.Primary(), engine.Seq())
	} else if *dataDir != "" {
		var err error
		store, err = persist.Open(*dataDir, persist.Options{
			Sync:         policy,
			SyncEvery:    *syncEvery,
			CompactBytes: *compactEvery,
			Engine:       opts,
			Init:         func() (*kcore.Engine, error) { return buildEngine(*load, opts) },
			Fault:        plane,
		})
		if err != nil {
			return fmt.Errorf("recover %s: %w", *dataDir, err)
		}
		defer store.Close()
		engine = store.Engine()
		ps := store.Stats()
		fmt.Fprintf(out, "recovered %s: snapshot seq %d + %d WAL records -> seq %d (fsync %s)\n",
			*dataDir, ps.SnapshotSeq, ps.RecoveredRecords, ps.RecoveredSeq, policy)
		if ps.TornBytes > 0 {
			fmt.Fprintf(out, "truncated torn WAL tail: %d bytes\n", ps.TornBytes)
		}
	} else {
		var err error
		engine, err = buildEngine(*load, opts)
		if err != nil {
			return err
		}
	}
	view := engine.View()
	fmt.Fprintf(out, "engine ready: %d vertices, %d edges, degeneracy %d\n",
		view.NumVertices(), view.NumEdges(), view.Degeneracy())
	if plane != nil {
		for _, r := range chaosRules {
			plane.Add(r)
		}
		engine.SetApplyProbe(plane.ApplyProbe())
		fmt.Fprintf(out, "CHAOS MODE: fault plane armed (%s)\n", plane)
	}

	// Every non-follower is a replication primary unless disabled: the
	// publisher taps the engine's apply path and serves GET /v1/replicate.
	// Chained replication (a follower re-publishing) is not supported.
	var pub *replicate.Publisher
	if fol == nil && *replHistory >= 0 {
		popts := replicate.PublisherOptions{HistoryBytes: *replHistory}
		if store != nil {
			// With persistence, reconnecting followers can also resume from
			// the on-disk WAL after the in-memory history was evicted.
			popts.WALPath = filepath.Join(store.Dir(), persist.WALFile)
		}
		pub = replicate.NewPublisher(engine, popts)
		defer pub.Close()
	}

	// Bind before constructing the Server: New starts the ingest flusher
	// goroutine, so a listen failure must not leave one behind.
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", *addr, err)
	}
	if plane != nil {
		l = fault.WrapListener(plane, l)
	}
	topts := tenant.Options{
		MaxTenants: *maxTenants,
		IdleAfter:  *tenantIdle,
		Engine:     opts,
		Persist: persist.Options{
			Sync:         policy,
			SyncEvery:    *syncEvery,
			CompactBytes: *compactEvery,
			Fault:        plane,
		},
	}
	if store != nil {
		// Named tenants persist under <data-dir>/tenants/<name>; followers
		// and memory-only servers host memory-only tenants (never idle-
		// evicted — there is nowhere to put them).
		topts.DataDir = *dataDir
	}
	srv := server.New(engine, server.Options{
		MaxBatch:    *maxBatch,
		MaxPending:  *maxPending,
		WatchBuffer: *watchBuffer,
		WatchRing:   *watchRing,
		Persist:     store,
		ReadOnly:    *readOnly,
		Publisher:   pub,
		Follower:    fol,
		Tenants:     topts,
	})
	idle := "off"
	if *tenantIdle > 0 && store != nil {
		idle = tenantIdle.String()
	}
	fmt.Fprintf(out, "tenant hosting: max %d resident, idle eviction %s\n", *maxTenants, idle)
	fmt.Fprintf(out, "listening on %s\n", l.Addr())
	if ready != nil {
		ready(l.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case err := <-serveErr:
		// The listener failed before any shutdown was requested; stop the
		// server's internals so nothing is leaked.
		_ = srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down: draining ingest queue and watch streams")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// The drain budget ran out (e.g. a stalled watcher); cut the
		// remaining connections instead of leaking them.
		_ = srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	if store != nil {
		// Final WAL sync + close before reporting a clean exit (the deferred
		// Close is then a no-op).
		if err := store.Close(); err != nil {
			return fmt.Errorf("close data dir: %w", err)
		}
	}
	fmt.Fprintln(out, "bye")
	return nil
}

// buildEngine constructs the engine, preloading the -load file when given.
// A KCORSNAP image (saved from GET /v1/snapshot/export, a -data-dir, or
// kcore-gen -snapshot) is restored with full verification and keeps its
// seq; anything else is parsed as a whitespace-separated edge list.
func buildEngine(path string, opts []kcore.Option) (*kcore.Engine, error) {
	if path == "" {
		return kcore.NewEngine(opts...), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	prefix, _ := br.Peek(8)
	var e *kcore.Engine
	if persist.IsSnapshot(prefix) {
		e, err = persist.ReadSnapshot(br, opts...)
	} else {
		e, err = kcore.Load(br, opts...)
	}
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return e, nil
}

package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"kcore"
	"kcore/internal/gen"
	"kcore/internal/persist"
	"kcore/internal/server"
	"kcore/internal/server/wire"
)

// TestServeE2E is the CI end-to-end smoke: it boots kcore-serve on a random
// port exactly as main would, drives it over real HTTP with the in-process
// client (batch ingest, snapshot queries, an SSE watch), asserts the served
// core numbers match a direct one-shot Decompose of the same edges, and
// then exercises graceful shutdown.
func TestServeE2E(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	addrCh := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"},
			&out, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		t.Fatalf("run exited before listening: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	// Open the watch before writing so it sees the ingest. The watch
	// context is deliberately independent of the run context: the stream
	// ending after shutdown must prove SERVER-side termination, not the
	// client tearing its own request down.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	events, err := c.Watch(wctx, server.WatchOptions{Buffer: 1 << 15})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if ev := <-events; ev.Type != wire.EventHello {
		t.Fatalf("first watch event = %+v, want hello", ev)
	}

	// Ingest a scale-free graph in a handful of batches.
	g := gen.BarabasiAlbert(300, 3, 99)
	edges := g.Edges()
	const batchSize = 128
	for start := 0; start < len(edges); start += batchSize {
		end := min(start+batchSize, len(edges))
		if _, err := c.AddEdges(ctx, edges[start:end]); err != nil {
			t.Fatalf("AddEdges[%d:%d]: %v", start, end, err)
		}
	}

	// The served core numbers must match a direct one-shot decomposition.
	want, err := kcore.Decompose(edges)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	for _, v := range []int{0, 1, 7, 42, 150, 299} {
		resp, err := c.Core(ctx, v)
		if err != nil {
			t.Fatalf("Core(%d): %v", v, err)
		}
		if resp.Core != want[v] {
			t.Fatalf("served core(%d) = %d, Decompose says %d", v, resp.Core, want[v])
		}
	}
	maxCore := 0
	for _, cv := range want {
		maxCore = max(maxCore, cv)
	}
	for k := 0; k <= maxCore+1; k++ {
		wantCount := 0
		for _, cv := range want {
			if cv >= k {
				wantCount++
			}
		}
		resp, err := c.KCore(ctx, k)
		if err != nil {
			t.Fatalf("KCore(%d): %v", k, err)
		}
		if resp.Count != wantCount {
			t.Fatalf("served kcore(%d) has %d vertices, Decompose says %d", k, resp.Count, wantCount)
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Edges != len(edges) || st.Degeneracy != maxCore {
		t.Fatalf("stats = %+v, want %d edges, degeneracy %d", st, len(edges), maxCore)
	}
	if st.Seq != uint64(len(edges)) {
		t.Fatalf("stats seq = %d, want %d", st.Seq, len(edges))
	}

	// The watcher saw real transitions (exact count depends on drops —
	// none expected with this buffer, but the contract only promises
	// change events are well-formed).
	sawChange := false
drain:
	for {
		select {
		case ev, open := <-events:
			if !open {
				t.Fatal("watch stream closed before shutdown")
			}
			if ev.Type == wire.EventChange {
				sawChange = true
				if ev.Change.OldCore == ev.Change.NewCore {
					t.Fatalf("change event with no transition: %+v", ev.Change)
				}
			}
		case <-time.After(200 * time.Millisecond):
			break drain
		}
	}
	if !sawChange {
		t.Fatal("watcher saw no change events during ingest")
	}

	// Graceful shutdown: cancel the run context (what SIGTERM does) and the
	// server must drain and exit cleanly, ending the watch stream.
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
	deadline := time.After(5 * time.Second)
waitClosed:
	for {
		select {
		case _, open := <-events:
			if !open {
				break waitClosed
			}
		case <-deadline:
			t.Fatal("watch stream still open after shutdown")
		}
	}
	if !strings.Contains(out.String(), "bye") {
		t.Fatalf("run output missing clean exit marker:\n%s", out.String())
	}
	// The port is released.
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("health check succeeded after shutdown")
	}
}

// TestRunLoadsEdgeList covers the -load path end to end.
func TestRunLoadsEdgeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graph.txt")
	if err := os.WriteFile(path, []byte("# triangle\n0 1\n1 2\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	addrCh := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run(ctx, []string{"-addr", "127.0.0.1:0", "-load", path},
			&out, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		t.Fatalf("run exited before listening: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	c, err := server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	resp, err := c.Core(ctx, 0)
	if err != nil || resp.Core != 2 {
		t.Fatalf("core(0) = %+v, err %v; want preloaded triangle core 2", resp, err)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunLoadsSnapshot covers -load with a KCORSNAP image: the bytes
// streamed from GET /v1/snapshot/export boot a fresh server with the same
// cores and seq.
func TestRunLoadsSnapshot(t *testing.T) {
	eng := kcore.NewEngine()
	if _, err := eng.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.snap")
	if err := persist.Save(path, eng); err != nil {
		t.Fatalf("Save: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	addrCh := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run(ctx, []string{"-addr", "127.0.0.1:0", "-load", path},
			&out, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		t.Fatalf("run exited before listening: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	c, err := server.NewClient("http://"+addr, nil)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	resp, err := c.Cores(ctx)
	if err != nil {
		t.Fatalf("Cores: %v", err)
	}
	if want := eng.Cores(); !slices.Equal(resp.Cores, want) {
		t.Fatalf("restored cores = %v, want %v", resp.Cores, want)
	}
	if resp.Seq != eng.Seq() {
		t.Fatalf("restored seq = %d, want %d", resp.Seq, eng.Seq())
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunRejectsBadFlags keeps flag errors structured (no os.Exit in run).
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, nil); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run(context.Background(), []string{"-load", "/no/such/file"}, &out, nil); err == nil {
		t.Fatal("run accepted a missing -load file")
	}
}

// TestRunRejectsFollowMultiTenant pins the boot-time rejection of -follow
// combined with multi-tenant hosting: a follower replicates only the
// default tenant, so explicitly asking it to host named tenants must fail
// loudly instead of serving them unreplicated. Leaving the tenant flags at
// their (multi-tenant) defaults must still boot — the follower narrows
// itself to single-tenant hosting.
func TestRunRejectsFollowMultiTenant(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-follow", "http://127.0.0.1:1", "-max-tenants", "8"},
		{"-follow", "http://127.0.0.1:1", "-tenant-idle", "5m"},
	} {
		err := run(context.Background(), args, &out, nil)
		if err == nil {
			t.Fatalf("run accepted %v", args)
		}
		if !strings.Contains(err.Error(), "conflict") {
			t.Fatalf("run %v: want a flag-conflict error, got: %v", args, err)
		}
	}
	// Explicit single-tenant values are consistent with following and must
	// not trip the conflict check (the bootstrap itself fails later on the
	// unreachable primary, proving the flag gate was passed).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := run(ctx, []string{
		"-follow", "http://127.0.0.1:1", "-max-tenants", "1", "-tenant-idle", "0"}, &out, nil)
	if err == nil || strings.Contains(err.Error(), "conflict") {
		t.Fatalf("run with single-tenant flags: want a bootstrap error, got: %v", err)
	}
}

package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"kcore/internal/gen"
	"kcore/internal/server"
	"kcore/internal/server/wire"
)

// startServe boots one kcore-serve process via run() on a random port and
// returns its base URL plus a shutdown func that asserts a clean exit.
func startServe(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	addrCh := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, args...),
			&out, func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		cancel()
		t.Fatalf("run %v exited before listening: %v\n%s", args, err, out.String())
	case <-time.After(20 * time.Second):
		cancel()
		t.Fatalf("server %v never became ready\n%s", args, out.String())
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case err := <-runDone:
			if err != nil {
				t.Errorf("run %v: %v\n%s", args, err, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Errorf("run %v never exited\n%s", args, out.String())
		}
	}
}

// TestFollowE2E boots a primary and a follower exactly as main would and
// checks the follower converges to the primary's cores, reports staleness,
// and rejects writes.
func TestFollowE2E(t *testing.T) {
	ctx := context.Background()
	primaryURL, stopPrimary := startServe(t)
	defer stopPrimary()
	pc, err := server.NewClient(primaryURL, nil)
	if err != nil {
		t.Fatalf("NewClient(primary): %v", err)
	}

	// State before the follower exists: replicated via snapshot bootstrap.
	g := gen.BarabasiAlbert(200, 3, 7)
	edges := g.Edges()
	half := len(edges) / 2
	if _, err := pc.AddEdges(ctx, edges[:half]); err != nil {
		t.Fatalf("primary ingest: %v", err)
	}

	followerURL, stopFollower := startServe(t, "-follow", primaryURL, "-follow-poll", "50ms")
	defer stopFollower()
	fc, err := server.NewClient(followerURL, nil)
	if err != nil {
		t.Fatalf("NewClient(follower): %v", err)
	}

	// State after: replicated via the live stream.
	if _, err := pc.AddEdges(ctx, edges[half:]); err != nil {
		t.Fatalf("primary ingest: %v", err)
	}

	pst, err := pc.Stats(ctx)
	if err != nil {
		t.Fatalf("primary stats: %v", err)
	}
	if pst.Replication == nil || pst.Replication.Role != "primary" {
		t.Fatalf("primary must replicate by default, stats = %+v", pst.Replication)
	}

	// Converge: poll the follower's replication stats until seq_lag hits 0
	// at the primary's seq.
	deadline := time.Now().Add(15 * time.Second)
	for {
		fst, err := fc.Stats(ctx)
		if err == nil && fst.Replication != nil && fst.Replication.Follower != nil {
			f := fst.Replication.Follower
			if f.AppliedSeq >= pst.Seq && f.SeqLag == 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			fst, _ := fc.Stats(ctx)
			t.Fatalf("follower never caught up to seq %d: %+v", pst.Seq, fst)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Spot-check served cores agree between the two processes.
	for _, v := range []int{0, 1, 5, 42, 120, 199} {
		want, err := pc.Core(ctx, v)
		if err != nil {
			t.Fatalf("primary core(%d): %v", v, err)
		}
		got, err := fc.Core(ctx, v)
		if err != nil {
			t.Fatalf("follower core(%d): %v", v, err)
		}
		if got.Core != want.Core {
			t.Fatalf("core(%d): follower %d, primary %d", v, got.Core, want.Core)
		}
	}

	// Writes bounce with the stable code, pointing at the primary.
	if _, err := fc.AddEdges(ctx, [][2]int{{900, 901}}); err == nil ||
		!strings.Contains(err.Error(), wire.CodeReadOnly) {
		t.Fatalf("follower write: err = %v, want %s", err, wire.CodeReadOnly)
	}
}

package kcore

import (
	"errors"
	"testing"
)

// An injected probe panic must reject the batch cleanly: no state change,
// no seq advance, a *PanicError, and a usable engine afterwards.
func TestApplyProbePanicQuarantinesCleanly(t *testing.T) {
	for _, opts := range [][]Option{
		{WithSeed(1)},
		{WithAlgorithm(Traversal)},
	} {
		e := NewEngine(opts...)
		if _, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
			t.Fatalf("seed batch: %v", err)
		}
		seq := e.Seq()
		arm := true
		e.SetApplyProbe(func(updates int) {
			if arm {
				arm = false
				panic("injected")
			}
		})
		_, err := e.Apply(Batch{Add(2, 3), Add(3, 4)})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("Apply err = %v, want *PanicError", err)
		}
		if pe.Value != "injected" || len(pe.Stack) == 0 {
			t.Fatalf("PanicError = {Value:%v Stack:%d bytes}", pe.Value, len(pe.Stack))
		}
		if e.Seq() != seq {
			t.Fatalf("seq advanced across quarantined batch: %d -> %d", seq, e.Seq())
		}
		if got := e.ExecStats().Panics; got != 1 {
			t.Fatalf("ExecStats.Panics = %d, want 1", got)
		}
		if e.Core(0) != 2 {
			t.Fatalf("core(0) = %d after quarantine, want 2", e.Core(0))
		}
		// The engine stays fully usable.
		if _, err := e.Apply(Batch{Add(2, 3), Add(3, 4)}); err != nil {
			t.Fatalf("post-quarantine Apply: %v", err)
		}
		if e.Seq() != seq+2 {
			t.Fatalf("post-quarantine seq = %d, want %d", e.Seq(), seq+2)
		}
	}
}

// A panic mid-execution (from inside the maintainer path, modeled by a
// probe that panics on the second batch only after state exists) must
// leave the engine consistent with its graph: cores equal a from-scratch
// decomposition of whatever the graph holds.
func TestPanicContainmentRecomputesConsistentState(t *testing.T) {
	e := NewEngine(WithSeed(7))
	if _, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	e.SetApplyProbe(func(int) { panic("boom") })
	if _, err := e.Apply(Batch{Add(3, 4)}); err == nil {
		t.Fatal("Apply under panicking probe succeeded")
	}
	e.SetApplyProbe(nil)
	// The maintained state must agree with an independent engine built
	// from the same edges.
	ref := NewEngine(WithSeed(7))
	if _, err := ref.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}); err != nil {
		t.Fatalf("ref seed: %v", err)
	}
	for v := 0; v < 5; v++ {
		if e.Core(v) != ref.Core(v) {
			t.Fatalf("core(%d) = %d after containment, ref %d", v, e.Core(v), ref.Core(v))
		}
	}
}

// Subscribers must see diff events when containment's recompute changes
// cores relative to what was already notified — and none when the panic
// fired pre-mutation.
func TestPanicContainmentNotifiesNoSpuriousEvents(t *testing.T) {
	e := NewEngine(WithSeed(1))
	if _, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatalf("seed: %v", err)
	}
	ch, cancel := e.Subscribe(WithBuffer(16))
	defer cancel()
	e.SetApplyProbe(func(int) { panic("boom") })
	if _, err := e.Apply(Batch{Add(5, 6)}); err == nil {
		t.Fatal("Apply under panicking probe succeeded")
	}
	e.SetApplyProbe(nil)
	select {
	case ev := <-ch:
		t.Fatalf("pre-mutation quarantine emitted event %+v", ev)
	default:
	}
}

// The probe's delay path must not corrupt anything: a probe that just
// observes sees the surviving-update count, post-coalescing.
func TestApplyProbeSeesSurvivingCount(t *testing.T) {
	e := NewEngine()
	var got []int
	e.SetApplyProbe(func(n int) { got = append(got, n) })
	if _, err := e.Apply(Batch{Add(0, 1), Add(1, 2), Remove(1, 2)}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("probe saw %v, want [1]", got)
	}
}

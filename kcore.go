// Package kcore provides dynamic k-core decomposition for evolving
// undirected graphs: it maintains the core number of every vertex under
// edge insertions and removals in time proportional to a small neighborhood
// of the updated edge, instead of recomputing the decomposition from
// scratch.
//
// The default engine implements the order-based core-maintenance algorithms
// (OrderInsert / OrderRemoval) of Zhang, Yu, Zhang and Qin, "A Fast
// Order-Based Approach for Core Maintenance" (ICDE 2017). The traversal
// algorithm of Sariyüce et al. (PVLDB 2013 / VLDBJ 2016) is available as an
// alternative for comparison.
//
// # Quick start
//
//	e := kcore.NewEngine()
//	e.AddEdge(0, 1)
//	e.AddEdge(1, 2)
//	e.AddEdge(0, 2)          // 0,1,2 now form a triangle
//	fmt.Println(e.Core(0))   // 2
//	e.RemoveEdge(0, 2)
//	fmt.Println(e.Core(0))   // 1
//
// # v1 API overview
//
// The engine is built for read-mostly concurrency with high-rate streaming
// writes, around four pillars:
//
//   - Batched updates: Apply executes a mixed Batch of insertions and
//     removals under one write-lock acquisition, pre-validating the whole
//     batch (a failing batch leaves the engine untouched) and returning
//     per-update and aggregated BatchInfo. AddEdges/RemoveEdges are
//     conveniences; AddEdge/RemoveEdge are one-update batches.
//   - Lock-free reads: after every mutation the writer publishes an
//     immutable epoch snapshot of the maintained read-state (core numbers,
//     counts, degeneracy, sequence number) with one atomic pointer swap, so
//     every query over that state (Core, CoreSeq, Cores, KCore, Degeneracy,
//     Counts, View, ...) answers with zero locking and never contends with
//     writers (see epoch.go). Queries that walk the adjacency structure
//     itself (Neighbors, HasEdge, Community, Edges, ...) share a read lock
//     instead. View captures the current epoch in O(1) for cheap repeated
//     queries.
//   - Change subscriptions: Subscribe delivers per-update CoreChange events
//     (vertex, old core, new core, update sequence number) so streaming
//     consumers stop polling Cores.
//   - Structured errors: mutations wrap the sentinel errors ErrSelfLoop,
//     ErrDuplicateEdge, ErrMissingEdge, ErrVertexRange and ErrWrongEngine,
//     so callers branch with errors.Is; batch failures additionally carry
//     the offending position via *BatchError.
//
// For durability, the engine exposes a persistence seam rather than a
// persistence layer: SetApplyHook observes every applied batch under the
// write lock (a write-ahead log appends and fsyncs there, so Apply
// returning nil means both applied and durable), View(WithIndex()) captures
// the complete maintained state for snapshotting, FromIndex restores it
// with full verification, and Replay re-applies logged batches silently
// during recovery. The snapshot + WAL store built on this seam lives in
// internal/persist and is wired into cmd/kcore-serve via -data-dir.
package kcore

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"kcore/internal/decomp"
	"kcore/internal/graph"
	"kcore/internal/korder"
	"kcore/internal/order"
	"kcore/internal/parallel"
	"kcore/internal/traversal"
)

// Algorithm selects the maintenance algorithm.
type Algorithm int

const (
	// OrderBased is the paper's order-based algorithm (recommended).
	OrderBased Algorithm = iota
	// Traversal is the Sariyüce et al. baseline.
	Traversal
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case OrderBased:
		return "order-based"
	case Traversal:
		return "traversal"
	default:
		return "unknown"
	}
}

// Heuristic selects the initial k-order generation rule (order-based only).
type Heuristic int

const (
	// SmallDegPlusFirst is the paper's recommended heuristic.
	SmallDegPlusFirst Heuristic = iota
	// LargeDegPlusFirst removes large remaining-degree vertices first.
	LargeDegPlusFirst
	// RandomDegPlusFirst removes a random removable vertex.
	RandomDegPlusFirst
)

// OrderStructure selects the per-level order representation (order-based
// engine only).
type OrderStructure int

const (
	// TreapOrder uses the paper's order-statistics treap (O(log n)
	// comparisons, O(log n) updates).
	TreapOrder OrderStructure = iota
	// TagOrder uses a labeled order-maintenance list (O(1) comparisons).
	TagOrder
)

type config struct {
	algorithm    Algorithm
	heuristic    Heuristic
	structure    OrderStructure
	hops         int
	seed         uint64
	workers      int
	rebuildFloor int
	rebuildFrac  float64
}

// Defaults for the batch execution planner. The rebuild fraction is
// measured: see the rebuild-crossover rows of BENCH_parallel.json and
// EXPERIMENTS.md.
const (
	defaultRebuildFloor = 256
	defaultRebuildFrac  = 0.15
	defaultParallelMin  = 128
	maxAutoWorkers      = 8
)

func defaultConfig() config {
	return config{hops: 2, seed: 1, rebuildFloor: defaultRebuildFloor,
		rebuildFrac: defaultRebuildFrac}
}

// Option configures an Engine.
type Option func(*config)

// WithAlgorithm selects the maintenance algorithm (default OrderBased).
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algorithm = a } }

// WithHeuristic selects the initial k-order heuristic (default
// SmallDegPlusFirst; order-based engine only).
func WithHeuristic(h Heuristic) Option { return func(c *config) { c.heuristic = h } }

// WithOrderStructure selects the order representation (default TreapOrder;
// order-based engine only).
func WithOrderStructure(s OrderStructure) Option { return func(c *config) { c.structure = s } }

// WithTraversalHops sets h for the traversal engine (default 2; ignored by
// the order-based engine).
func WithTraversalHops(h int) Option { return func(c *config) { c.hops = h } }

// WithSeed makes all internal randomization deterministic (default 1).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithWorkers sets how many workers Apply may use for conflict-grouped
// concurrent batch maintenance (order-based engine only). n = 1 forces
// sequential execution; n <= 0 (the default) picks min(GOMAXPROCS, 8).
// Parallel execution produces results bit-identical to sequential — same
// core numbers, BatchInfo, subscriber events, and maintained k-order — so
// the setting is purely a performance knob. Small batches always run
// sequentially regardless.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithRebuildThreshold tunes the maintain-vs-recompute cost model
// (order-based engine only): a batch whose surviving update count is at
// least floor and at least fraction*(m+n) of the post-batch graph is
// applied by one wholesale O(m + n) recomputation instead of per-update
// maintenance, which is much faster but coarsens the result — see
// BatchInfo.Recomputed. floor < 0 disables recomputation entirely.
// Defaults: floor 256, fraction 0.15 (measured; see EXPERIMENTS.md).
func WithRebuildThreshold(floor int, fraction float64) Option {
	return func(c *config) {
		c.rebuildFloor = floor
		c.rebuildFrac = fraction
	}
}

// UpdateInfo reports the effect of one edge update (or, aggregated, of one
// multi-update operation).
type UpdateInfo struct {
	// CoreChanged lists the vertices whose core number changed (by +1 for
	// insertion, -1 for removal). Aggregated results (BatchInfo.Total,
	// AddVertexWithEdges, RemoveVertex) deduplicate: a vertex whose core
	// changed more than once during the operation appears once, at its
	// first change. When a batch was applied by wholesale recomputation
	// (BatchInfo.Recomputed), the aggregated CoreChanged instead lists the
	// net-changed vertices in ascending order.
	//
	// The slice is owned by the caller: unlike the internal maintainers'
	// pooled buffers, it never aliases engine scratch, so it stays valid
	// indefinitely and across later updates.
	CoreChanged []int
	// Visited is the number of vertices the algorithm examined to find
	// CoreChanged (the paper's |V+| / |V'| search-space metric).
	Visited int
	// Coalesced marks a batch position that was cancelled during
	// pre-validation as half of a self-annihilating pair (see
	// BatchInfo.Coalesced); such entries carry no other information.
	Coalesced bool
}

// maintainer abstracts the two algorithm implementations.
type maintainer interface {
	Insert(u, v int) (changed []int, visited int, err error)
	Remove(u, v int) (changed []int, visited int, err error)
	Core(v int) int
	Cores() []int
}

type orderImpl struct{ m *korder.Maintainer }

func (o orderImpl) Insert(u, v int) ([]int, int, error) {
	r, err := o.m.Insert(u, v)
	return r.Changed, r.Visited, err
}
func (o orderImpl) Remove(u, v int) ([]int, int, error) {
	r, err := o.m.Remove(u, v)
	return r.Changed, r.Visited, err
}
func (o orderImpl) Core(v int) int { return o.m.Core(v) }
func (o orderImpl) Cores() []int   { return o.m.Cores() }

type travImpl struct{ m *traversal.Maintainer }

func (t travImpl) Insert(u, v int) ([]int, int, error) {
	r, err := t.m.Insert(u, v)
	return r.Changed, r.Visited, err
}
func (t travImpl) Remove(u, v int) ([]int, int, error) {
	r, err := t.m.Remove(u, v)
	return r.Changed, r.Visited, err
}
func (t travImpl) Core(v int) int { return t.m.Core(v) }
func (t travImpl) Cores() []int   { return t.m.Cores() }

// Engine is a dynamic k-core decomposition engine. It is safe for
// concurrent use by multiple goroutines: mutations (Apply, AddEdge, ...)
// serialize behind a write lock; queries over the maintained read-state
// (Core, Cores, KCore, View, Counts, ...) read an epoch-published immutable
// snapshot without any locking, and queries over the adjacency structure
// (Neighbors, HasEdge, ...) share a read lock.
type Engine struct {
	mu  sync.RWMutex
	g   *graph.Undirected
	m   maintainer
	cfg config
	seq uint64 // updates applied over the engine's lifetime; guarded by mu

	// ep is the epoch-published read-state (see epoch.go): written only by
	// mutators holding mu, loaded lock-free by the read APIs. Invariant:
	// whenever mu is not held exclusively, ep.Load().seq == seq. epUpd is
	// the writer's reusable override-collection scratch — never published,
	// only its values are copied into each epoch's fresh patch.
	ep    atomic.Pointer[epoch]
	epUpd []corePatch

	// Batch-apply scratch (guarded by mu): epoch-stamped per-vertex marks
	// for deduplicating aggregated CoreChanged, and the reusable edge
	// overlay used by batch validation. Both avoid per-batch map churn.
	dedupEp  []uint64
	dedupCur uint64
	val      overlay
	skipBuf  []bool

	// Parallel batch runtime (guarded by mu; see parallel.go). workers,
	// parMin, rebuildFloor and rebuildFrac are resolved from the config at
	// construction. The sims, regions, deltas and planner scratch are only
	// touched by Apply while holding the write lock; their worker goroutines
	// never outlive one Apply call.
	workers      int
	parMin       int
	rebuildFloor int
	rebuildFrac  float64
	sims         []*korder.Sim
	regions      [][]int32
	views        [][]int32
	deltas       []*korder.Delta
	planner      parallel.Planner
	dirtyEp      []uint64
	dirtyCur     uint64
	exec         ExecStats

	// Change subscriptions (see subscribe.go). subMu guards subs; subCount
	// mirrors len(subs) so the no-subscriber fast path skips locking.
	subMu     sync.Mutex
	subs      map[uint64]*subscriber
	nextSubID uint64
	subCount  atomic.Int32

	// Apply observers (guarded by mu; see hook.go): hook observes every
	// applied batch for durability, tap observes it error-free for
	// replication, hookBuf is their reused surviving-update buffer.
	// replaying suppresses the hook and tap (Replay and ReplayNotify both
	// re-apply state that originated elsewhere); silent additionally
	// suppresses subscriber notification (Replay restores pre-crash state
	// that is not news, ReplayNotify leaves events on).
	hook      ApplyHook
	tap       ApplyTap
	probe     func(updates int)
	hookBuf   []Update
	replaying bool
	silent    bool
}

// NewEngine returns an empty engine. Vertices are dense non-negative
// integers created implicitly by AddEdge/AddVertex.
func NewEngine(opts ...Option) *Engine {
	e, err := FromEdges(nil, opts...)
	if err != nil {
		// Unreachable: an empty edge set cannot fail.
		panic(err)
	}
	return e
}

// FromEdges builds an engine from an initial edge list (duplicates and self
// loops are rejected). Building from a batch is much faster than inserting
// edges one by one: the initial decomposition runs in O(m + n).
func FromEdges(edges [][2]int, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	g := &graph.Undirected{}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("kcore: edge (%d,%d): %w", e[0], e[1], err)
		}
	}
	return fromGraph(g, cfg)
}

// Load builds an engine from a whitespace-separated edge list ("u v" per
// line; '#' and '%' comments allowed; duplicate edges and self loops are
// skipped).
func Load(r io.Reader, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, fmt.Errorf("kcore: %w", err)
	}
	return fromGraph(g, cfg)
}

func fromGraph(g *graph.Undirected, cfg config) (*Engine, error) {
	e := &Engine{g: g, cfg: cfg}
	switch cfg.algorithm {
	case OrderBased:
		e.m = orderImpl{korder.New(g, korder.Options{
			Heuristic: decomp.Heuristic(cfg.heuristic),
			OrderKind: order.Kind(cfg.structure),
			Seed:      cfg.seed,
		})}
	case Traversal:
		if cfg.hops < 2 {
			return nil, fmt.Errorf("kcore: traversal hops must be >= 2, got %d", cfg.hops)
		}
		e.m = travImpl{traversal.New(g, cfg.hops)}
	default:
		return nil, fmt.Errorf("kcore: unknown algorithm %d", cfg.algorithm)
	}
	e.initBatchRuntime()
	e.publishEpochFull()
	return e, nil
}

// initBatchRuntime resolves the batch execution planner's settings from the
// config.
func (e *Engine) initBatchRuntime() {
	e.workers = e.cfg.workers
	if e.workers <= 0 {
		e.workers = min(runtime.GOMAXPROCS(0), maxAutoWorkers)
	}
	e.parMin = defaultParallelMin
	e.rebuildFloor = e.cfg.rebuildFloor
	e.rebuildFrac = e.cfg.rebuildFrac
}

// Algorithm reports the engine's maintenance algorithm.
func (e *Engine) Algorithm() Algorithm { return e.cfg.algorithm }

// ExecStats counts, over the engine's lifetime, how many applied updates
// went through each batch execution mode. It is observability for the batch
// planner: a high Live share on large batches means the workload's update
// regions overlap (hot hubs), so the conflict-grouped runtime is falling
// back to sequential execution.
type ExecStats struct {
	// Sequential counts updates applied by the plain sequential path.
	Sequential uint64
	// Replayed counts updates whose concurrently simulated delta was
	// committed by the parallel runtime.
	Replayed uint64
	// Live counts updates the parallel runtime executed sequentially —
	// multi-update conflict groups, region overflows, and demotions.
	Live uint64
	// Recomputed counts updates absorbed by a wholesale recomputation.
	Recomputed uint64
	// Panics counts batches quarantined by panic containment: their
	// execution panicked, the engine recovered and recomputed its
	// maintained state wholesale, and the Apply caller got a *PanicError.
	Panics uint64
}

// ExecStats reports cumulative batch execution counters. It reads the
// current epoch without locking; the counters are consistent with the state
// the other read APIs observe at the same moment.
func (e *Engine) ExecStats() ExecStats {
	return e.loadEpoch().exec
}

// Seq reports the number of updates applied over the engine's lifetime.
// Every applied update increments it by one; BatchInfo, CoreChange and View
// carry the sequence number of the state they describe. Lock-free.
func (e *Engine) Seq() uint64 {
	return e.loadEpoch().seq
}

// AddEdge inserts the undirected edge (u, v), creating vertices as needed,
// and updates all core numbers. It returns which vertices changed. The
// error wraps ErrSelfLoop, ErrDuplicateEdge or ErrVertexRange on invalid
// input. It is a one-update batch: many edges at once are cheaper through
// Apply or AddEdges.
func (e *Engine) AddEdge(u, v int) (UpdateInfo, error) {
	info, err := e.Apply(Batch{Add(u, v)})
	if err != nil {
		return UpdateInfo{}, fmt.Errorf("kcore: add edge (%d,%d): %w", u, v, batchCause(err))
	}
	return info.Updates[0], nil
}

// RemoveEdge deletes the undirected edge (u, v) and updates all core
// numbers. It returns which vertices changed. The error wraps
// ErrMissingEdge when the edge is absent.
func (e *Engine) RemoveEdge(u, v int) (UpdateInfo, error) {
	info, err := e.Apply(Batch{Remove(u, v)})
	if err != nil {
		return UpdateInfo{}, fmt.Errorf("kcore: remove edge (%d,%d): %w", u, v, batchCause(err))
	}
	return info.Updates[0], nil
}

// batchCause strips the batch-position wrapper from single-update batches,
// leaving the sentinel cause for the caller's own context message.
func batchCause(err error) error {
	if be, ok := err.(*BatchError); ok {
		return be.Err
	}
	return err
}

// AddVertexWithEdges inserts a fresh vertex connected to the given
// neighbors (the paper's vertex insertion, simulated as a batch of edge
// insertions applied under one write-lock acquisition) and returns its id
// along with the deduplicated union of core changes. On invalid input
// (duplicate or negative neighbors) nothing is applied.
func (e *Engine) AddVertexWithEdges(neighbors []int) (int, UpdateInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.g.NumVertices()
	batch := make(Batch, len(neighbors))
	for i, w := range neighbors {
		batch[i] = Add(v, w)
	}
	info, err := e.applyLocked(batch)
	return v, info.Total, err
}

// RemoveVertex disconnects v by removing all of its incident edges (the
// paper's vertex removal, simulated as a batch of edge removals applied
// under one write-lock acquisition). The vertex id remains valid with core
// number 0. The returned UpdateInfo deduplicates repeated core changes.
func (e *Engine) RemoveVertex(v int) (UpdateInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	nbrs := e.g.AppendNeighbors(nil, v)
	batch := make(Batch, len(nbrs))
	for i, w := range nbrs {
		batch[i] = Remove(v, w)
	}
	info, err := e.applyLocked(batch)
	return info.Total, err
}

// HasEdge reports whether the edge (u, v) is present.
func (e *Engine) HasEdge(u, v int) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.g.HasEdge(u, v)
}

// NumVertices reports the vertex count (max vertex id + 1). Lock-free.
func (e *Engine) NumVertices() int {
	return e.loadEpoch().vertices
}

// NumEdges reports the edge count. Lock-free.
func (e *Engine) NumEdges() int {
	return e.loadEpoch().edges
}

// Degree reports the degree of v (0 for unknown vertices).
func (e *Engine) Degree(v int) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.g.Degree(v)
}

// Neighbors returns the neighbors of v as a fresh slice.
func (e *Engine) Neighbors(v int) []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.g.AppendNeighbors(nil, v)
}

// Core returns the current core number of v (0 for unknown vertices).
// Lock-free: it answers from the current epoch snapshot.
func (e *Engine) Core(v int) int {
	return e.loadEpoch().core(v)
}

// CoreSeq returns v's current core number together with the update
// sequence number it was read at, from one epoch load. It is the cheap
// single-vertex form of View: point queries that must report a consistent
// (core, seq) pair — network serving, most prominently — avoid View's O(n)
// copy of all core numbers. Lock-free.
func (e *Engine) CoreSeq(v int) (core int, seq uint64) {
	ep := e.loadEpoch()
	return ep.core(v), ep.seq
}

// Counts returns the scalar state summary — vertex count, edge count,
// degeneracy, and the update sequence number they were read at — from one
// epoch load, without locking or touching the core numbers. Like CoreSeq,
// it exists so frequent small reads (serving stats and health endpoints)
// skip View's full snapshot.
func (e *Engine) Counts() (vertices, edges, degeneracy int, seq uint64) {
	ep := e.loadEpoch()
	return ep.vertices, ep.edges, ep.maxCore, ep.seq
}

// Cores returns a copy of all current core numbers, indexed by vertex.
// Lock-free.
func (e *Engine) Cores() []int {
	return e.loadEpoch().coresCopy()
}

// KCore returns the vertices of the current k-core (every vertex whose core
// number is at least k). Lock-free.
func (e *Engine) KCore(k int) []int {
	var out []int
	e.loadEpoch().forEach(func(v, c int) {
		if c >= k {
			out = append(out, v)
		}
	})
	return out
}

// Degeneracy returns the maximum core number, maintained incrementally by
// the writer and read from the current epoch. Lock-free.
func (e *Engine) Degeneracy() int {
	return e.loadEpoch().maxCore
}

// Community answers a core-based community search query (the application
// the paper's introduction motivates): the connected component of the
// k-core containing v, for the largest level <= k at which v participates.
// Returns nil for unknown or isolated-at-level vertices. Cost is
// O((m+n) * degeneracy) per call — it recomputes the core hierarchy; batch
// queries should use CoreComponents.
func (e *Engine) Community(v, k int) []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h := decomp.BuildHierarchy(e.g, e.m.Cores())
	return h.CommunityOf(v, k)
}

// CoreComponents returns the connected components of the k-core, each as a
// sorted vertex list.
func (e *Engine) CoreComponents(k int) [][]int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h := decomp.BuildHierarchy(e.g, e.m.Cores())
	var out [][]int
	for _, i := range h.LevelComponents(k) {
		c, err := h.Component(i)
		if err != nil {
			continue
		}
		vs := make([]int, len(c.Vertices))
		copy(vs, c.Vertices)
		out = append(out, vs)
	}
	return out
}

// GreedyColoring colors the graph greedily along the maintained degeneracy
// order, guaranteeing at most Degeneracy()+1 colors (the classic k-core
// application to coloring). Only the order-based engine maintains an order;
// other engines compute one on the fly. Returns per-vertex colors and the
// number of colors used.
func (e *Engine) GreedyColoring() ([]int, int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var ord []int
	if impl, ok := e.m.(orderImpl); ok {
		ord = impl.m.Order()
	} else {
		ord = decomp.KOrder(e.g, decomp.SmallDegPlusFirst, e.cfg.seed).Order
	}
	return decomp.GreedyColorByOrder(e.g, ord)
}

// Edges returns all current edges with u < v.
func (e *Engine) Edges() [][2]int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.g.Edges()
}

// Save writes the current graph as an edge list readable by Load.
func (e *Engine) Save(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return graph.WriteEdgeList(w, e.g)
}

// SaveIndex serializes the full maintained index (graph, core numbers, and
// k-order) so a later LoadIndex can resume without recomputing — and, more
// importantly, with the exact same maintained order. Only the order-based
// engine supports snapshots; others get an error wrapping ErrWrongEngine.
func (e *Engine) SaveIndex(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	impl, ok := e.m.(orderImpl)
	if !ok {
		return fmt.Errorf("kcore: SaveIndex requires the order-based engine (have %s): %w",
			e.cfg.algorithm, ErrWrongEngine)
	}
	return impl.m.WriteSnapshot(w)
}

// LoadIndex restores an order-based engine from a SaveIndex snapshot,
// verifying its integrity in O(m + n).
func LoadIndex(r io.Reader, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.algorithm != OrderBased {
		return nil, fmt.Errorf("kcore: LoadIndex supports only the order-based engine: %w",
			ErrWrongEngine)
	}
	m, err := korder.LoadSnapshot(r, korder.Options{
		Heuristic: decomp.Heuristic(cfg.heuristic),
		OrderKind: order.Kind(cfg.structure),
		Seed:      cfg.seed,
	})
	if err != nil {
		return nil, fmt.Errorf("kcore: %w", err)
	}
	e := &Engine{g: m.Graph(), m: orderImpl{m}, cfg: cfg}
	e.initBatchRuntime()
	e.publishEpochFull()
	return e, nil
}

// Validate checks the maintained state against a from-scratch
// recomputation. It is intended for tests and debugging; cost is
// O((m+n) log n).
func (e *Engine) Validate() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := e.validateEpochLocked(); err != nil {
		return err
	}
	switch impl := e.m.(type) {
	case orderImpl:
		return impl.m.CheckInvariants()
	case travImpl:
		return impl.m.CheckInvariants()
	default:
		return fmt.Errorf("kcore: unknown engine implementation")
	}
}

// validateEpochLocked checks the published epoch against the authoritative
// maintained state: with the read lock held no publication can be in
// flight, so the epoch must agree exactly with the maintainer and graph.
// It is the tripwire for incremental-publication bugs (a missed changed
// vertex would surface here long before a serving differential catches it).
func (e *Engine) validateEpochLocked() error {
	ep := e.loadEpoch()
	if ep == nil {
		return fmt.Errorf("kcore: no epoch published")
	}
	if ep.seq != e.seq {
		return fmt.Errorf("kcore: epoch seq %d != engine seq %d", ep.seq, e.seq)
	}
	n := e.g.NumVertices()
	if ep.vertices != n || len(ep.cores) > n {
		return fmt.Errorf("kcore: epoch has %d vertices (cores len %d), graph has %d",
			ep.vertices, len(ep.cores), n)
	}
	if len(ep.patch) > maxEpochPatch {
		return fmt.Errorf("kcore: epoch patch has %d entries, cap is %d",
			len(ep.patch), maxEpochPatch)
	}
	for i := 1; i < len(ep.patch); i++ {
		if ep.patch[i-1].v >= ep.patch[i].v {
			return fmt.Errorf("kcore: epoch patch unsorted at %d (%d >= %d)",
				i, ep.patch[i-1].v, ep.patch[i].v)
		}
	}
	if ep.edges != e.g.NumEdges() {
		return fmt.Errorf("kcore: epoch has %d edges, graph has %d", ep.edges, e.g.NumEdges())
	}
	maxc := 0
	for v := 0; v < n; v++ {
		c := e.m.Core(v)
		if ep.core(v) != c {
			return fmt.Errorf("kcore: epoch core[%d] = %d, maintainer has %d",
				v, ep.core(v), c)
		}
		if c > maxc {
			maxc = c
		}
	}
	if ep.maxCore != maxc {
		return fmt.Errorf("kcore: epoch degeneracy %d, maintainer has %d", ep.maxCore, maxc)
	}
	return nil
}

// Decompose computes core numbers for a static edge list without building
// an engine (one-shot O(m + n) decomposition).
func Decompose(edges [][2]int) ([]int, error) {
	g := &graph.Undirected{}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("kcore: edge (%d,%d): %w", e[0], e[1], err)
		}
	}
	return decomp.Cores(g), nil
}

package kcore_test

import (
	"errors"
	"fmt"
	"log"
	"strings"

	"kcore"
)

// The most common flow: create an engine, stream edges, query cores.
func ExampleNewEngine() {
	e := kcore.NewEngine()
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	for _, ed := range edges {
		if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(e.Core(0), e.Core(3), e.Degeneracy())
	// Output: 2 1 2
}

// Build from a batch in O(m+n), then maintain incrementally.
func ExampleFromEdges() {
	e, err := kcore.FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	info, err := e.RemoveEdge(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(info.CoreChanged), e.Core(2))
	// Output: 3 1
}

// One-shot static decomposition without an engine.
func ExampleDecompose() {
	cores, err := kcore.Decompose([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cores)
	// Output: [2 2 2 1]
}

// Load an edge list in the common "u v" text format.
func ExampleLoad() {
	data := "# a triangle\n0 1\n1 2\n0 2\n"
	e, err := kcore.Load(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(e.KCore(2))
	// Output: [0 1 2]
}

// Vertex updates are sequences of edge updates (Section III of the paper).
func ExampleEngine_AddVertexWithEdges() {
	e, err := kcore.FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := e.AddVertexWithEdges([]int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, e.Core(v)) // the new vertex completes K4
	if _, err := e.RemoveVertex(v); err != nil {
		log.Fatal(err)
	}
	fmt.Println(e.Core(0), e.Degree(v))
	// Output:
	// 3 3
	// 2 0
}

// Mixed insertions and removals apply atomically as one batch: a single
// lock acquisition, pre-validation of the whole batch, and an aggregated
// result with deduplicated core changes.
func ExampleEngine_Apply() {
	e := kcore.NewEngine()
	info, err := e.Apply(kcore.Batch{
		kcore.Add(0, 1), kcore.Add(1, 2), kcore.Add(0, 2), // triangle
		kcore.Add(2, 3),    // pendant...
		kcore.Remove(2, 3), // ...cancelled again: the pair coalesces away
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(info.Applied, info.Coalesced, len(info.Total.CoreChanged), e.Core(0))
	// Output: 3 2 3 2
}

// A failed batch wraps a sentinel error and leaves the engine untouched.
func ExampleBatchError() {
	e := kcore.NewEngine()
	_, err := e.Apply(kcore.Batch{kcore.Add(0, 1), kcore.Add(1, 0)})
	var be *kcore.BatchError
	fmt.Println(errors.Is(err, kcore.ErrDuplicateEdge), errors.As(err, &be) && be.Index == 1, e.NumEdges())
	// Output: true true 0
}

// A View is an immutable consistent snapshot: cheap repeated queries with
// no further locking, unaffected by later updates.
func ExampleEngine_View() {
	e, err := kcore.FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	v := e.View()
	if _, err := e.RemoveEdge(0, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println(v.Core(0), v.Degeneracy(), e.Core(0))
	// Output: 2 2 1
}

// Subscriptions push core changes to streaming consumers.
func ExampleEngine_Subscribe() {
	e := kcore.NewEngine()
	events, cancel := e.Subscribe(kcore.WithBuffer(8))
	defer cancel()
	if _, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		log.Fatal(err)
	}
	// The triangle-closing update lifts all three vertices from core 1 to 2.
	for i := 0; i < 5; i++ {
		ev := <-events
		fmt.Printf("core(%d) %d->%d\n", ev.Vertex, ev.OldCore, ev.NewCore)
	}
	// Output:
	// core(0) 0->1
	// core(1) 0->1
	// core(2) 0->1
	// core(2) 1->2
	// core(0) 1->2
}

// The traversal baseline is available for comparison.
func ExampleWithAlgorithm() {
	e := kcore.NewEngine(kcore.WithAlgorithm(kcore.Traversal), kcore.WithTraversalHops(3))
	for _, ed := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(e.Algorithm(), e.Core(1))
	// Output: traversal 2
}

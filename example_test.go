package kcore_test

import (
	"fmt"
	"log"
	"strings"

	"kcore"
)

// The most common flow: create an engine, stream edges, query cores.
func ExampleNewEngine() {
	e := kcore.NewEngine()
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	for _, ed := range edges {
		if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(e.Core(0), e.Core(3), e.Degeneracy())
	// Output: 2 1 2
}

// Build from a batch in O(m+n), then maintain incrementally.
func ExampleFromEdges() {
	e, err := kcore.FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	info, err := e.RemoveEdge(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(info.CoreChanged), e.Core(2))
	// Output: 3 1
}

// One-shot static decomposition without an engine.
func ExampleDecompose() {
	cores, err := kcore.Decompose([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cores)
	// Output: [2 2 2 1]
}

// Load an edge list in the common "u v" text format.
func ExampleLoad() {
	data := "# a triangle\n0 1\n1 2\n0 2\n"
	e, err := kcore.Load(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(e.KCore(2))
	// Output: [0 1 2]
}

// Vertex updates are sequences of edge updates (Section III of the paper).
func ExampleEngine_AddVertexWithEdges() {
	e, err := kcore.FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	v, _, err := e.AddVertexWithEdges([]int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, e.Core(v)) // the new vertex completes K4
	if _, err := e.RemoveVertex(v); err != nil {
		log.Fatal(err)
	}
	fmt.Println(e.Core(0), e.Degree(v))
	// Output:
	// 3 3
	// 2 0
}

// The traversal baseline is available for comparison.
func ExampleWithAlgorithm() {
	e := kcore.NewEngine(kcore.WithAlgorithm(kcore.Traversal), kcore.WithTraversalHops(3))
	for _, ed := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(e.Algorithm(), e.Core(1))
	// Output: traversal 2
}

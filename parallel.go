package kcore

import (
	"kcore/internal/korder"
	"kcore/internal/parallel"
)

// Parallel batch execution and the maintain-vs-recompute hybrid.
//
// The order-based algorithm localizes each update's work to a small region
// around the root's core level K (the paper's locality result: V* is
// confined to the level-K connected region of the edge, and all reads stay
// within that region and its direct neighbors). Updates whose regions are
// disjoint are therefore independent, and a batch can exploit that:
//
//  1. Plan (sequential, cheap): estimate every update's region
//     (korder.EstimateRegion) and union-find updates with intersecting
//     regions into conflict groups (parallel.Planner).
//  2. Simulate (concurrent): updates alone in their group are simulated
//     read-only against the frozen pre-batch state by a pool of workers,
//     each owning its own korder.Sim scratch. A simulation records a
//     replayable Delta plus its exact read/write footprint.
//  3. Commit (sequential, in batch order): validated deltas replay in a few
//     hundred nanoseconds (CommitDelta); everything else — multi-update
//     groups, region-cap overflows, simulations whose footprint escaped
//     their claimed region, and deltas whose region a live update dirtied —
//     executes live through the normal Insert/Remove path, with its write
//     set logged so later replays can detect interference.
//
// Because replayed deltas perform the exact logical mutations the live path
// would have performed, in the same batch order, the final engine state and
// every observable output (BatchInfo, core numbers, the maintained k-order,
// subscriber events) are bit-identical to sequential execution. See
// PARALLEL.md for the full safety argument.
//
// Separately, when a batch rewrites a large fraction of the graph, per-edge
// maintenance — even parallel — loses to a single O(m + n) recomputation
// (the static peel that builds the engine in the first place). A cost-model
// switch routes such batches to applyRebuild instead; see
// WithRebuildThreshold.

// shouldRebuild is the maintain-vs-recompute cost model: recompute when the
// surviving batch is at least rebuildFrac of the post-batch graph size
// (m + n, the O(m + n) peel's input) and clears the floor that keeps small
// batches on the cheap incremental path. The default fraction is measured —
// see the rebuild-crossover rows of BENCH_parallel.json.
func (e *Engine) shouldRebuild(applied, adds, removes int) bool {
	if e.rebuildFloor < 0 {
		return false
	}
	if applied < e.rebuildFloor {
		return false
	}
	mAfter := e.g.NumEdges() + adds - removes
	return float64(applied) >= e.rebuildFrac*float64(mAfter+e.g.NumVertices())
}

// applyRebuild applies the batch by wholesale recomputation: mutate the
// graph directly, then reseed the maintainer from one static O(m + n)
// decomposition. Per-update attribution is lost — see BatchInfo.Recomputed
// for the coarsened result semantics.
func (e *Engine) applyRebuild(impl orderImpl, batch Batch, skip []bool, coalesced int) (BatchInfo, error) {
	m := impl.m
	oldCores := m.Cores()
	info := BatchInfo{Coalesced: coalesced, Recomputed: true}
	for i, up := range batch {
		if skip != nil && skip[i] {
			continue
		}
		var err error
		if up.Op == OpAdd {
			err = e.g.AddEdge(up.U, up.V)
		} else {
			err = e.g.RemoveEdge(up.U, up.V)
		}
		if err != nil {
			// Unreachable after validation. Reseed anyway so the maintained
			// state matches the partially mutated graph before reporting.
			m.Reseed()
			info.Seq = e.seq
			return info, &BatchError{Index: i, Update: up, Err: err}
		}
		e.seq++
		info.Applied++
		e.exec.Recomputed++
	}
	m.Reseed()
	info.Seq = e.seq

	// Net effect: diff old and new cores. Vertices created by the batch had
	// implicit core 0 before it.
	n := e.g.NumVertices()
	for v := 0; v < n; v++ {
		old := 0
		if v < len(oldCores) {
			old = oldCores[v]
		}
		if m.Core(v) != old {
			info.Total.CoreChanged = append(info.Total.CoreChanged, v)
		}
	}
	info.Total.Visited = n
	e.notifyDiff(info.Total.CoreChanged, oldCores)
	return info, nil
}

// applyParallel executes the batch with the plan/simulate/commit pipeline
// described above. Results are bit-identical to applySequential.
func (e *Engine) applyParallel(impl orderImpl, batch Batch, skip []bool, coalesced int) (BatchInfo, error) {
	m := impl.m
	workers := e.workers
	for len(e.sims) < workers {
		e.sims = append(e.sims, korder.NewSim(m))
	}
	sims := e.sims[:workers]
	for _, s := range sims {
		s.Grow()
		s.ResetDeltas()
	}
	nb := len(batch)
	for len(e.regions) < nb {
		e.regions = append(e.regions, nil)
	}
	for len(e.views) < nb {
		e.views = append(e.views, nil)
	}
	for len(e.deltas) < nb {
		e.deltas = append(e.deltas, nil)
	}
	regions := e.regions[:nb] // per-slot buffers, kept across batches
	views := e.views[:nb]     // regions[i] when a candidate, else nil
	deltas := e.deltas[:nb]

	// Phase 1a (concurrent, read-only): estimate regions. A nil view means
	// the update is no simulation candidate — coalesced, endpoint outside
	// the snapshot, or region beyond the caps — and will run live.
	parallel.ForEach(workers, nb, func(w, i int) {
		deltas[i] = nil
		views[i] = nil
		if skip[i] {
			return
		}
		up := batch[i]
		region, ok := sims[w].EstimateRegion(up.Op == OpAdd, up.U, up.V, regions[i][:0])
		regions[i] = region // keep the (possibly grown) buffer either way
		if ok {
			views[i] = region
		}
	})

	// Phase 1b (sequential): conflict groups via union-find over region
	// intersection.
	e.planner.Plan(m.NumVertices(), views)

	// Phase 2 (concurrent, read-only): simulate singleton groups against
	// the frozen pre-batch state; discard simulations whose actual
	// footprint escaped their claimed region.
	parallel.ForEach(workers, nb, func(w, i int) {
		if views[i] == nil || !e.planner.Singleton(i) {
			return
		}
		up := batch[i]
		d, ok := sims[w].SimUpdate(up.Op == OpAdd, up.U, up.V)
		if !ok || !e.planner.Contained(i, d.Footprint) {
			return
		}
		deltas[i] = d
	})

	// Phase 3 (sequential, batch order): replay validated deltas, run the
	// rest live. Live updates log their write set; a delta whose region was
	// dirtied by an earlier live update is demoted to live execution, since
	// its simulation may have read state that has since changed.
	e.dirtyReset()
	m.StartWriteLog()
	defer m.StopWriteLog()

	info := BatchInfo{Coalesced: coalesced, Updates: make([]UpdateInfo, 0, nb)}
	e.dedupCur++
	var carve []int
	for i, up := range batch {
		if skip[i] {
			info.Updates = append(info.Updates, UpdateInfo{Coalesced: true})
			continue
		}
		var changed []int
		var visited int
		var err error
		if d := deltas[i]; d != nil && !e.dirtyHas(views[i]) {
			var r korder.UpdateResult
			r, err = m.CommitDelta(d)
			changed, visited = r.Changed, r.Visited
			e.exec.Replayed++
		} else {
			if up.Op == OpAdd {
				changed, visited, err = impl.Insert(up.U, up.V)
			} else {
				changed, visited, err = impl.Remove(up.U, up.V)
			}
			e.dirtyMark(m.TakeWriteLog())
			e.exec.Live++
		}
		if err != nil {
			info.Seq = e.seq
			return info, &BatchError{Index: i, Update: up, Err: err}
		}
		e.seq++
		e.notify(up.Op, changed)
		start := len(carve)
		carve = append(carve, changed...)
		info.Applied++
		info.Updates = append(info.Updates,
			UpdateInfo{CoreChanged: carve[start:len(carve):len(carve)], Visited: visited})
		info.Total.Visited += visited
		e.dedupTotal(&info, changed)
	}
	info.Seq = e.seq
	return info, nil
}

// dirtyReset starts a fresh dirty epoch sized to the pre-batch vertex set.
func (e *Engine) dirtyReset() {
	n := e.g.NumVertices()
	for len(e.dirtyEp) < n {
		e.dirtyEp = append(e.dirtyEp, 0)
	}
	e.dirtyCur++
}

// dirtyMark records the vertices a live update wrote. Vertices created
// mid-batch (beyond the pre-batch range) are ignored: no region — all
// computed against the pre-batch snapshot — can contain them.
func (e *Engine) dirtyMark(writes []int) {
	for _, v := range writes {
		if v < len(e.dirtyEp) {
			e.dirtyEp[v] = e.dirtyCur
		}
	}
}

// dirtyHas reports whether any vertex of the region was written by an
// earlier live update this batch.
func (e *Engine) dirtyHas(region []int32) bool {
	for _, v := range region {
		if int(v) < len(e.dirtyEp) && e.dirtyEp[v] == e.dirtyCur {
			return true
		}
	}
	return false
}

module kcore

go 1.22

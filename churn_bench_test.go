package kcore

import (
	"testing"

	"kcore/internal/gen"
	"kcore/internal/workload"
)

// Steady-state batched churn through Apply: the parallel runtime's target
// workload (prebuilt graph, mixed adds/removes, fixed-size batches). The
// sequential and 4-worker variants share one fixture so their ratio is the
// conflict-grouped runtime's overhead (GOMAXPROCS=1) or speedup (multicore).

type churnFixture struct {
	edges   [][2]int
	batches []Batch
}

var churnFx *churnFixture

func churnFixture1() *churnFixture {
	if churnFx != nil {
		return churnFx
	}
	base := gen.ErdosRenyi(20000, 60000, 42)
	ops := workload.Churn(base, 10000, workload.ChurnOptions{AddFraction: 0.55, Skew: 0.2, Seed: 43})
	fx := &churnFixture{edges: base.Edges()}
	for start := 0; start < len(ops); start += 2500 {
		end := min(start+2500, len(ops))
		b := make(Batch, 0, end-start)
		for _, op := range ops[start:end] {
			if op.Insert {
				b = append(b, Add(op.E.U, op.E.V))
			} else {
				b = append(b, Remove(op.E.U, op.E.V))
			}
		}
		fx.batches = append(fx.batches, b)
	}
	churnFx = fx
	return fx
}

func benchmarkChurnBatches(b *testing.B, workers int) {
	fx := churnFixture1()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := FromEdges(fx.edges, WithSeed(42), WithWorkers(workers),
			WithRebuildThreshold(-1, 0))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, batch := range fx.batches {
			if _, err := e.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(10000, "updates/op")
}

func BenchmarkChurnBatchesSeq(b *testing.B) { benchmarkChurnBatches(b, 1) }
func BenchmarkChurnBatchesW4(b *testing.B)  { benchmarkChurnBatches(b, 4) }

package kcore

// The apply hook is the engine's durability tap: a persistence layer (see
// internal/persist) registers one function that observes every successfully
// applied batch — its surviving updates and the resulting sequence number —
// synchronously, under the engine's write lock, in apply order. Because the
// hook runs before Apply returns, a hook that appends to a write-ahead log
// with fsync gives callers a hard guarantee: when Apply returns nil, the
// batch is both applied in memory and durable on disk.

// AppliedBatch describes one successfully applied batch to an ApplyHook.
type AppliedBatch struct {
	// Seq is the engine update sequence number after the batch (equals
	// BatchInfo.Seq of the Apply that produced it).
	Seq uint64
	// Updates holds the batch's surviving updates in application order —
	// self-annihilating pairs coalesced away during validation are absent,
	// so len(Updates) is exactly the number of sequence increments the batch
	// consumed. The slice may alias engine-owned scratch: it is valid only
	// for the duration of the hook call and must be copied (or encoded) by
	// hooks that retain it.
	Updates []Update
}

// ApplyHook observes one applied batch. A non-nil error aborts nothing —
// the batch is already applied in memory — but is surfaced to the Apply
// caller wrapped in a *HookError, signalling that durability (not the
// update) failed. See SetApplyHook.
type ApplyHook func(AppliedBatch) error

// ApplyTap observes one applied batch like an ApplyHook, but cannot fail:
// it watches what the engine's in-memory state did, not what was made
// durable. See SetApplyTap.
type ApplyTap func(AppliedBatch)

// SetApplyHook registers fn to be called after every successfully applied
// batch with at least one surviving update (nil unregisters). The hook runs
// synchronously while the engine's write lock is held, so invocations are
// totally ordered and match the sequence-number order exactly; it must not
// call back into the engine (deadlock) and should be fast — its latency is
// added to every mutation.
//
// When the hook returns an error, Apply (and the convenience wrappers built
// on it) return that error wrapped in a *HookError. The batch itself remains
// applied — BatchInfo is valid, subscribers were notified — so callers must
// treat a *HookError as "state advanced, durability failed" and not retry
// the batch. At most one hook is registered at a time; Replay never invokes
// it.
func (e *Engine) SetApplyHook(fn ApplyHook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hook = fn
}

// SetApplyTap registers fn as a second, error-free observer of applied
// batches (nil unregisters). It runs under the same write lock as the apply
// hook, after it, and — unlike the hook — even when the hook failed: the tap
// observes the engine's in-memory state, which advanced regardless of
// whether durability succeeded. Replication (internal/replicate) uses the
// tap so it can coexist with a persistence hook on the same engine. The
// same constraints apply: no calling back into the engine, keep it fast,
// copy (or encode) AppliedBatch.Updates before the call returns. Replay and
// ReplayNotify never invoke it.
func (e *Engine) SetApplyTap(fn ApplyTap) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tap = fn
}

// SetApplyProbe registers fn to be called at the start of every batch
// execution — after validation, before any mutation — with the number of
// surviving updates (nil unregisters). It is the engine surface of the
// fault-injection plane (internal/fault): the probe may sleep to model a
// slow apply, or panic to exercise the engine's panic containment. A probe
// panic is caught by the same quarantine machinery as a real execution
// panic (see PanicError), but because it fires before any mutation the
// batch is rejected with the engine state untouched.
//
// The probe runs under the engine write lock (its latency is added to every
// mutation) and also fires during Replay/ReplayNotify.
func (e *Engine) SetApplyProbe(fn func(updates int)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.probe = fn
}

// Replay applies a batch exactly like Apply — same validation, same
// execution strategies, same BatchInfo — but silently: subscribers receive
// no CoreChange events and the apply hook is not invoked. It exists for
// durability recovery (internal/persist replays the write-ahead log through
// it), where the "changes" are not new information but the restoration of
// state the engine already reached before a crash; subscribers attached
// during or before recovery observe only post-recovery changes. Normal
// callers mutate through Apply.
func (e *Engine) Replay(batch Batch) (BatchInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.replaying, e.silent = true, true
	defer func() { e.replaying, e.silent = false, false }()
	return e.applyLocked(batch)
}

// ReplayNotify applies a batch like Replay — the apply hook and tap are not
// invoked — but subscribers DO receive CoreChange events. It exists for
// replication followers (internal/replicate): a follower applying streamed
// frames must not feed them back into its own durability or replication
// taps, yet for its local watchers the changes are new information, exactly
// as if the batch had been applied here.
func (e *Engine) ReplayNotify(batch Batch) (BatchInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.replaying = true
	defer func() { e.replaying = false }()
	return e.applyLocked(batch)
}

// runApplyHook invokes the registered hook and tap for a successful batch,
// building the surviving-update record. Caller holds the write lock and has
// already checked !e.replaying, info.Applied > 0, and that a hook or tap is
// registered.
func (e *Engine) runApplyHook(batch Batch, skip []bool, info *BatchInfo) error {
	updates := batch
	if info.Coalesced > 0 {
		buf := e.hookBuf[:0]
		for i, up := range batch {
			if skip != nil && skip[i] {
				continue
			}
			buf = append(buf, up)
		}
		e.hookBuf = buf
		updates = Batch(buf)
	}
	rec := AppliedBatch{Seq: info.Seq, Updates: updates}
	var err error
	if e.hook != nil {
		if herr := e.hook(rec); herr != nil {
			err = &HookError{Err: herr}
		}
	}
	if e.tap != nil {
		e.tap(rec)
	}
	return err
}

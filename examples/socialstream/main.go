// Socialstream simulates the paper's motivating scenario: an evolving
// online social network where friendships arrive (and occasionally
// dissolve) continuously, while an analyst tracks engagement cohorts — the
// k-core a user belongs to is a standard engagement/influence proxy.
//
// The demo grows a preferential-attachment network in streaming fashion
// through the dynamic engine (no recomputation), reports cohort sizes over
// time, and follows one early adopter's core number as the community
// densifies and then partially churns away.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"kcore"
)

const (
	users       = 4000
	meetPerUser = 6
	churnEvery  = 5 // one unfriend per this many friendships
	reportEvery = 1000
	trackedUser = 10 // an early adopter
)

func main() {
	e := kcore.NewEngine(kcore.WithSeed(7))
	rng := rand.New(rand.NewPCG(7, 99))

	// endpoints doubles as a degree-proportional sampler: picking a random
	// entry picks a user proportionally to its current friend count.
	var endpoints []int
	var friendships [][2]int
	addFriendship := func(u, v int) bool {
		if u == v || e.HasEdge(u, v) {
			return false
		}
		if _, err := e.AddEdge(u, v); err != nil {
			log.Fatal(err)
		}
		endpoints = append(endpoints, u, v)
		friendships = append(friendships, [2]int{u, v})
		return true
	}

	// Seed clique of early adopters.
	for u := 0; u < meetPerUser+1; u++ {
		for v := u + 1; v < meetPerUser+1; v++ {
			addFriendship(u, v)
		}
	}

	events := 0
	for newUser := meetPerUser + 1; newUser < users; newUser++ {
		// The new user befriends existing users, preferring popular ones.
		for made := 0; made < meetPerUser; {
			target := endpoints[rng.IntN(len(endpoints))]
			if addFriendship(newUser, target) {
				made++
				events++
			}
		}
		// Occasional churn: an old friendship dissolves.
		if events%churnEvery == 0 && len(friendships) > 10 {
			i := rng.IntN(len(friendships))
			f := friendships[i]
			if e.HasEdge(f[0], f[1]) {
				if _, err := e.RemoveEdge(f[0], f[1]); err != nil {
					log.Fatal(err)
				}
			}
			friendships[i] = friendships[len(friendships)-1]
			friendships = friendships[:len(friendships)-1]
		}
		if newUser%reportEvery == 0 {
			report(e, newUser)
		}
	}
	report(e, users)

	fmt.Println("\n--- cohort summary at end of stream ---")
	deg := e.Degeneracy()
	for k := deg; k >= deg-2 && k > 0; k-- {
		fmt.Printf("%2d-core (most engaged cohort at k=%d): %d users\n",
			k, k, len(e.KCore(k)))
	}
	fmt.Printf("\nearly adopter %d: final core number %d (degeneracy %d)\n",
		trackedUser, e.Core(trackedUser), deg)
	if err := e.Validate(); err != nil {
		log.Fatalf("maintained state diverged from recomputation: %v", err)
	}
	fmt.Println("maintained cores verified against full recomputation: OK")
}

func report(e *kcore.Engine, usersSoFar int) {
	fmt.Printf("users=%-5d friendships=%-6d degeneracy=%-3d core(user %d)=%d\n",
		usersSoFar, e.NumEdges(), e.Degeneracy(), trackedUser, e.Core(trackedUser))
}

// Socialstream simulates the paper's motivating scenario: an evolving
// online social network where friendships arrive (and occasionally
// dissolve) continuously, while an analyst tracks engagement cohorts — the
// k-core a user belongs to is a standard engagement/influence proxy.
//
// The demo grows a preferential-attachment network in streaming fashion
// through the dynamic engine (no recomputation). Each new user's
// friendships land as one Apply batch, a change subscription follows one
// early adopter's core number push-style (no polling), and cohort sizes
// are reported from consistent views.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"kcore"
)

const (
	users       = 4000
	meetPerUser = 6
	churnEvery  = 5 // one unfriend per this many new users
	reportEvery = 1000
	trackedUser = 10 // an early adopter
)

func main() {
	e := kcore.NewEngine(kcore.WithSeed(7))
	rng := rand.New(rand.NewPCG(7, 99))

	// Follow the early adopter's engagement push-style: every core-number
	// transition arrives as an event instead of a per-step Core() poll.
	events, cancel := e.Subscribe(kcore.WithBuffer(4096))
	defer cancel()
	transitions := 0
	drainTracked := func() {
		for {
			select {
			case ev := <-events:
				if ev.Vertex == trackedUser {
					transitions++
					fmt.Printf("  event: user %d core %d -> %d (update %d)\n",
						ev.Vertex, ev.OldCore, ev.NewCore, ev.Seq)
				}
			default:
				return
			}
		}
	}

	// endpoints doubles as a degree-proportional sampler: picking a random
	// entry picks a user proportionally to its current friend count.
	var endpoints []int
	var friendships [][2]int
	recordBatch := func(batch kcore.Batch) {
		if len(batch) == 0 {
			return
		}
		if _, err := e.Apply(batch); err != nil {
			log.Fatal(err)
		}
		for _, up := range batch {
			endpoints = append(endpoints, up.U, up.V)
			friendships = append(friendships, [2]int{up.U, up.V})
		}
	}

	// Seed clique of early adopters.
	var seed kcore.Batch
	for u := 0; u < meetPerUser+1; u++ {
		for v := u + 1; v < meetPerUser+1; v++ {
			seed = append(seed, kcore.Add(u, v))
		}
	}
	recordBatch(seed)

	for newUser := meetPerUser + 1; newUser < users; newUser++ {
		// The new user befriends existing users, preferring popular ones.
		// All friendships of one user arrive as one batch: one lock
		// acquisition and one aggregated result per user.
		chosen := map[int]bool{}
		var batch kcore.Batch
		for len(batch) < meetPerUser {
			target := endpoints[rng.IntN(len(endpoints))]
			if target == newUser || chosen[target] || e.HasEdge(newUser, target) {
				continue
			}
			chosen[target] = true
			batch = append(batch, kcore.Add(newUser, target))
		}
		recordBatch(batch)

		// Occasional churn: an old friendship dissolves.
		if newUser%churnEvery == 0 && len(friendships) > 10 {
			i := rng.IntN(len(friendships))
			f := friendships[i]
			if e.HasEdge(f[0], f[1]) {
				if _, err := e.RemoveEdge(f[0], f[1]); err != nil {
					log.Fatal(err)
				}
			}
			friendships[i] = friendships[len(friendships)-1]
			friendships = friendships[:len(friendships)-1]
		}
		drainTracked()
		if newUser%reportEvery == 0 {
			report(e, newUser)
		}
	}
	drainTracked()
	report(e, users)

	fmt.Println("\n--- cohort summary at end of stream ---")
	v := e.View() // one snapshot for all cohort queries
	deg := v.Degeneracy()
	for k := deg; k >= deg-2 && k > 0; k-- {
		fmt.Printf("%2d-core (most engaged cohort at k=%d): %d users\n",
			k, k, len(v.KCore(k)))
	}
	fmt.Printf("\nearly adopter %d: final core number %d (degeneracy %d), %d tracked transitions\n",
		trackedUser, v.Core(trackedUser), deg, transitions)
	if err := e.Validate(); err != nil {
		log.Fatalf("maintained state diverged from recomputation: %v", err)
	}
	fmt.Println("maintained cores verified against full recomputation: OK")
}

func report(e *kcore.Engine, usersSoFar int) {
	v := e.View()
	fmt.Printf("users=%-5d friendships=%-6d degeneracy=%-3d core(user %d)=%d\n",
		usersSoFar, v.NumEdges(), v.Degeneracy(), trackedUser, v.Core(trackedUser))
}

// Community demonstrates core-based community search — the application
// behind reference [11] of the paper — on an evolving collaboration
// network. Communities are connected k-core components: every member
// collaborates with at least k others inside the community. As new
// collaborations stream in (each research group's collaborations arrive as
// one batch), the dynamic engine keeps core numbers current, and community
// queries are answered on demand.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"kcore"
)

const (
	groups     = 12 // research groups (dense collaboration pockets)
	groupSize  = 9
	crossEdges = 30 // cross-group collaborations
)

func main() {
	e := kcore.NewEngine(kcore.WithSeed(11))
	rng := rand.New(rand.NewPCG(11, 5))
	n := groups * groupSize

	// Stream within-group collaborations (dense: ~85% of pairs), one batch
	// per group.
	for g := 0; g < groups; g++ {
		base := g * groupSize
		var batch kcore.Batch
		for i := 0; i < groupSize; i++ {
			for j := i + 1; j < groupSize; j++ {
				if rng.Float64() < 0.85 {
					batch = append(batch, kcore.Add(base+i, base+j))
				}
			}
		}
		if _, err := e.Apply(batch); err != nil {
			log.Fatal(err)
		}
	}
	// Sparse cross-group collaborations.
	for added := 0; added < crossEdges; {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || u/groupSize == v/groupSize || e.HasEdge(u, v) {
			continue
		}
		if _, err := e.AddEdge(u, v); err != nil {
			log.Fatal(err)
		}
		added++
	}

	// The summary lines read one consistent snapshot; the component and
	// community queries below have no View equivalent and hit the live
	// engine under its read lock.
	view := e.View()
	fmt.Printf("collaboration network: %d researchers, %d collaborations, degeneracy %d\n\n",
		view.NumVertices(), view.NumEdges(), view.Degeneracy())

	// Find the tightest communities: components of the deepest cores.
	for k := view.Degeneracy(); k >= view.Degeneracy()-1 && k > 0; k-- {
		comps := e.CoreComponents(k)
		sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
		fmt.Printf("%d-core communities: %d\n", k, len(comps))
		for i, c := range comps {
			if i >= 3 {
				fmt.Printf("  ... and %d more\n", len(comps)-3)
				break
			}
			fmt.Printf("  community of %d researchers (sample: %v)\n", len(c), c[:min(5, len(c))])
		}
	}

	// Community search for a specific researcher, at decreasing cohesion.
	probe := 4
	fmt.Printf("\ncommunity search for researcher %d (core %d):\n", probe, view.Core(probe))
	for k := view.Core(probe); k >= 1; k -= 2 {
		comm := e.Community(probe, k)
		fmt.Printf("  k=%d: community of %d researchers\n", k, len(comm))
	}

	// A new researcher joins group 0 with many collaborations: the
	// community deepens incrementally (one batched vertex insertion).
	newcomer, _, err := e.AddVertexWithEdges([]int{0, 1, 2, 3, 4, 5, 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnewcomer %d joined group 0 with 7 collaborations: core %d, community size %d\n",
		newcomer, e.Core(newcomer), len(e.Community(newcomer, e.Core(newcomer))))

	if err := e.Validate(); err != nil {
		log.Fatalf("maintained state diverged: %v", err)
	}
	fmt.Println("maintained cores verified against full recomputation: OK")
}

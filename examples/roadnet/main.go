// Roadnet exercises the engine on the opposite regime from social graphs:
// a sparse, near-planar road network (the paper's CA dataset, average
// degree 2.8, max core 3). It simulates a season of road construction and
// closures, maintaining the core structure incrementally, and reports the
// "redundant grid" (2-core) — intersections with at least two independent
// ways in and out, a standard resilience measure for road networks.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"kcore"
	"kcore/internal/gen"
	"kcore/internal/graph"
)

func main() {
	// Build the CA-like road grid and feed it to the engine through the
	// public edge-list interface.
	road := gen.Grid(120, 120, 0.62, 0.05, 8)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, road); err != nil {
		log.Fatal(err)
	}
	e, err := kcore.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	report(e, "initial network")

	rng := rand.New(rand.NewPCG(8, 21))
	n := e.NumVertices()

	// Construction season: add local connector roads (short random links
	// between nearby intersections). Each month's construction lands as
	// one batch.
	const months, perMonth = 8, 100
	var newRoads [][2]int
	for m := 0; m < months; m++ {
		var batch [][2]int
		for len(batch) < perMonth {
			u := rng.IntN(n)
			// A nearby intersection on the 120x120 grid.
			dr, dc := rng.IntN(3)-1, rng.IntN(3)-1
			v := u + dr*120 + dc
			if v < 0 || v >= n || u == v || e.HasEdge(u, v) {
				continue
			}
			dup := false
			for _, b := range batch {
				if (b[0] == u && b[1] == v) || (b[0] == v && b[1] == u) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			batch = append(batch, [2]int{u, v})
		}
		if _, err := e.AddEdges(batch); err != nil {
			log.Fatal(err)
		}
		newRoads = append(newRoads, batch...)
	}
	report(e, fmt.Sprintf("after building %d connector roads", len(newRoads)))

	// Closure season: a random 30% of the new connectors close again, all
	// processed as one removal batch.
	var closures [][2]int
	for _, r := range newRoads {
		if rng.Float64() < 0.3 && e.HasEdge(r[0], r[1]) {
			closures = append(closures, r)
		}
	}
	if _, err := e.RemoveEdges(closures); err != nil {
		log.Fatal(err)
	}
	report(e, fmt.Sprintf("after closing %d connectors", len(closures)))

	if err := e.Validate(); err != nil {
		log.Fatalf("maintained state diverged: %v", err)
	}
	fmt.Println("\nmaintained cores verified against full recomputation: OK")
}

func report(e *kcore.Engine, label string) {
	v := e.View() // one consistent snapshot per report line
	n := v.NumVertices()
	redundant := len(v.KCore(2))
	dense := len(v.KCore(3))
	fmt.Printf("%-38s m=%-6d redundant grid (2-core): %5d/%d intersections, dense pockets (3-core): %d, max k=%d\n",
		label, v.NumEdges(), redundant, n, dense, v.Degeneracy())
}

// Quickstart: the smallest useful tour of the kcore public API — build a
// graph with a batch, watch core numbers evolve under insertions and
// removals, and query the k-core structure through a consistent view.
package main

import (
	"errors"
	"fmt"
	"log"

	"kcore"
)

func main() {
	e := kcore.NewEngine()

	// A triangle plus a pendant vertex, applied as one batch (one lock
	// acquisition, one aggregated result).
	info, err := e.AddEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied %d insertions: %d distinct core numbers changed, cores now %v\n",
		info.Applied, len(info.Total.CoreChanged), e.Cores())

	// A View answers any number of queries from one consistent snapshot.
	v := e.View()
	fmt.Printf("\ndegeneracy (max core): %d\n", v.Degeneracy())
	fmt.Printf("2-core members: %v\n", v.KCore(2))
	fmt.Printf("core(3) = %d (the pendant vertex)\n\n", v.Core(3))

	// Close the square 1-2-3: vertex 3 joins the 2-core.
	if _, err := e.AddEdge(1, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after adding (1,3): core(3) = %d, 2-core = %v\n",
		e.Core(3), e.KCore(2))

	// Structured errors let callers branch on the cause.
	if _, err := e.AddEdge(1, 3); errors.Is(err, kcore.ErrDuplicateEdge) {
		fmt.Println("adding (1,3) again is rejected as a duplicate")
	}

	// Removing (0,1) drops vertex 0 out of the 2-core; 1-2-3 still form a
	// triangle and stay at core 2.
	rinfo, err := e.RemoveEdge(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after removing (0,1): %d cores changed, cores now %v\n",
		len(rinfo.CoreChanged), e.Cores())

	// One-shot static decomposition, no engine needed.
	cores, err := kcore.Decompose([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic Decompose of a triangle: %v\n", cores)
}

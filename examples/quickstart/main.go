// Quickstart: the smallest useful tour of the kcore public API — build a
// graph, watch core numbers evolve under insertions and removals, and query
// the k-core structure.
package main

import (
	"fmt"
	"log"

	"kcore"
)

func main() {
	e := kcore.NewEngine()

	// A triangle plus a pendant vertex.
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	for _, ed := range edges {
		info, err := e.AddEdge(ed[0], ed[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("added (%d,%d): %d core numbers changed, cores now %v\n",
			ed[0], ed[1], len(info.CoreChanged), e.Cores())
	}

	fmt.Printf("\ndegeneracy (max core): %d\n", e.Degeneracy())
	fmt.Printf("2-core members: %v\n", e.KCore(2))
	fmt.Printf("core(3) = %d (the pendant vertex)\n\n", e.Core(3))

	// Close the square 1-2-3: vertex 3 joins the 2-core.
	if _, err := e.AddEdge(1, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after adding (1,3): core(3) = %d, 2-core = %v\n",
		e.Core(3), e.KCore(2))

	// Removing (0,1) drops vertex 0 out of the 2-core; 1-2-3 still form a
	// triangle and stay at core 2.
	info, err := e.RemoveEdge(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after removing (0,1): %d cores changed, cores now %v\n",
		len(info.CoreChanged), e.Cores())

	// One-shot static decomposition, no engine needed.
	cores, err := kcore.Decompose([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic Decompose of a triangle: %v\n", cores)
}

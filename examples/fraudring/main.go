// Fraudring demonstrates dense-subgraph alerting on a streaming transaction
// graph. Collusive fraud rings (accounts that transact heavily among
// themselves) form unusually dense subgraphs; a vertex whose core number
// jumps far above the population norm is a standard anomaly signal, and
// dynamic core maintenance makes the check O(small neighborhood) per
// transaction instead of O(graph) — exactly the use case that motivates
// core maintenance over recomputation.
//
// The demo streams legitimate transactions (sparse, random), injects two
// fraud rings, alerts the moment any account crosses the core threshold,
// and shows the alert clearing when the ring's transactions are charged
// back (edge removals).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"kcore"
)

const (
	accounts      = 3000
	legitTxns     = 9000
	ringSize      = 12
	coreThreshold = 6
)

func main() {
	e := kcore.NewEngine(kcore.WithSeed(3))
	rng := rand.New(rand.NewPCG(3, 17))
	alerted := map[int]bool{}

	process := func(u, v int, label string) {
		if u == v || e.HasEdge(u, v) {
			return
		}
		info, err := e.AddEdge(u, v)
		if err != nil {
			log.Fatal(err)
		}
		// Only vertices in CoreChanged can newly cross the threshold:
		// the check is O(|V*|), not O(n).
		for _, w := range info.CoreChanged {
			if e.Core(w) >= coreThreshold && !alerted[w] {
				alerted[w] = true
				fmt.Printf("ALERT  account %-4d reached core %d (%s txn %d-%d)\n",
					w, e.Core(w), label, u, v)
			}
		}
	}

	fmt.Printf("streaming %d legitimate transactions...\n", legitTxns)
	for i := 0; i < legitTxns; i++ {
		process(rng.IntN(accounts), rng.IntN(accounts), "legit")
	}
	fmt.Printf("background degeneracy after legit traffic: %d (threshold %d)\n\n",
		e.Degeneracy(), coreThreshold)

	// Inject ring 1: a clique of colluding accounts.
	ring1 := pickAccounts(rng, ringSize, accounts)
	fmt.Printf("injecting fraud ring 1: %v\n", ring1)
	var ringEdges [][2]int
	for i := 0; i < len(ring1); i++ {
		for j := i + 1; j < len(ring1); j++ {
			process(ring1[i], ring1[j], "ring1")
			ringEdges = append(ringEdges, [2]int{ring1[i], ring1[j]})
		}
	}

	// Inject ring 2: a denser-than-normal but not complete ring.
	ring2 := pickAccounts(rng, ringSize+6, accounts)
	fmt.Printf("\ninjecting fraud ring 2 (partial): %v\n", ring2)
	for i := 0; i < len(ring2); i++ {
		for j := i + 1; j < len(ring2); j++ {
			if rng.Float64() < 0.6 {
				process(ring2[i], ring2[j], "ring2")
			}
		}
	}

	fmt.Printf("\naccounts alerted: %d; degeneracy now %d\n", len(alerted), e.Degeneracy())

	// Chargebacks: ring 1's transactions are reversed; its members' core
	// numbers collapse back to the background level.
	fmt.Println("\ncharging back ring 1 transactions...")
	for _, ed := range ringEdges {
		if e.HasEdge(ed[0], ed[1]) {
			if _, err := e.RemoveEdge(ed[0], ed[1]); err != nil {
				log.Fatal(err)
			}
		}
	}
	cleared := 0
	for _, a := range ring1 {
		if e.Core(a) < coreThreshold {
			cleared++
		}
	}
	fmt.Printf("ring 1 members below threshold after chargebacks: %d/%d\n",
		cleared, len(ring1))
	if err := e.Validate(); err != nil {
		log.Fatalf("maintained state diverged: %v", err)
	}
	fmt.Println("maintained cores verified against full recomputation: OK")
}

func pickAccounts(rng *rand.Rand, k, n int) []int {
	seen := map[int]bool{}
	var out []int
	for len(out) < k {
		a := rng.IntN(n)
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

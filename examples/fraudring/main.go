// Fraudring demonstrates dense-subgraph alerting on a streaming transaction
// graph. Collusive fraud rings (accounts that transact heavily among
// themselves) form unusually dense subgraphs; a vertex whose core number
// jumps far above the population norm is a standard anomaly signal, and
// dynamic core maintenance makes the check O(small neighborhood) per
// transaction instead of O(graph) — exactly the use case that motivates
// core maintenance over recomputation.
//
// The demo streams legitimate transactions (sparse, random), injects two
// fraud rings as batches, and drives alerting entirely from a change
// subscription filtered at the core threshold — the alerting path never
// polls Cores(). Chargebacks (batched edge removals) clear the alerts.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"kcore"
)

const (
	accounts      = 3000
	legitTxns     = 9000
	ringSize      = 12
	coreThreshold = 6
)

func main() {
	e := kcore.NewEngine(kcore.WithSeed(3))
	rng := rand.New(rand.NewPCG(3, 17))
	alerted := map[int]bool{}

	// The subscription delivers only changes touching the threshold level
	// or above: crossings in both directions, nothing else.
	events, cancel := e.Subscribe(kcore.WithMinCore(coreThreshold), kcore.WithBuffer(4096))
	defer cancel()
	pump := func(label string) {
		for {
			select {
			case ev := <-events:
				if ev.NewCore >= coreThreshold && !alerted[ev.Vertex] {
					alerted[ev.Vertex] = true
					fmt.Printf("ALERT  account %-4d reached core %d (%s, update %d)\n",
						ev.Vertex, ev.NewCore, label, ev.Seq)
				}
				if ev.NewCore < coreThreshold && alerted[ev.Vertex] {
					delete(alerted, ev.Vertex)
					fmt.Printf("CLEAR  account %-4d back to core %d (%s, update %d)\n",
						ev.Vertex, ev.NewCore, label, ev.Seq)
				}
			default:
				return
			}
		}
	}

	process := func(u, v int, label string) {
		if u == v || e.HasEdge(u, v) {
			return
		}
		if _, err := e.AddEdge(u, v); err != nil {
			log.Fatal(err)
		}
		pump(label)
	}

	fmt.Printf("streaming %d legitimate transactions...\n", legitTxns)
	for i := 0; i < legitTxns; i++ {
		process(rng.IntN(accounts), rng.IntN(accounts), "legit")
	}
	fmt.Printf("background degeneracy after legit traffic: %d (threshold %d)\n\n",
		e.Degeneracy(), coreThreshold)

	// Inject ring 1: a clique of colluding accounts, as one batch.
	ring1 := pickAccounts(rng, ringSize, accounts)
	fmt.Printf("injecting fraud ring 1: %v\n", ring1)
	var ringEdges [][2]int
	for i := 0; i < len(ring1); i++ {
		for j := i + 1; j < len(ring1); j++ {
			if !e.HasEdge(ring1[i], ring1[j]) {
				ringEdges = append(ringEdges, [2]int{ring1[i], ring1[j]})
			}
		}
	}
	if _, err := e.AddEdges(ringEdges); err != nil {
		log.Fatal(err)
	}
	pump("ring1")

	// Inject ring 2: a denser-than-normal but not complete ring.
	ring2 := pickAccounts(rng, ringSize+6, accounts)
	fmt.Printf("\ninjecting fraud ring 2 (partial): %v\n", ring2)
	var ring2Edges [][2]int
	for i := 0; i < len(ring2); i++ {
		for j := i + 1; j < len(ring2); j++ {
			if rng.Float64() < 0.6 && !e.HasEdge(ring2[i], ring2[j]) {
				ring2Edges = append(ring2Edges, [2]int{ring2[i], ring2[j]})
			}
		}
	}
	if _, err := e.AddEdges(ring2Edges); err != nil {
		log.Fatal(err)
	}
	pump("ring2")

	fmt.Printf("\naccounts alerted: %d; degeneracy now %d\n", len(alerted), e.Degeneracy())

	// Chargebacks: ring 1's transactions are reversed in one batch; its
	// members' core numbers collapse back to the background level and the
	// subscription delivers the falls.
	fmt.Println("\ncharging back ring 1 transactions...")
	var chargebacks [][2]int
	for _, ed := range ringEdges {
		if e.HasEdge(ed[0], ed[1]) {
			chargebacks = append(chargebacks, ed)
		}
	}
	if _, err := e.RemoveEdges(chargebacks); err != nil {
		log.Fatal(err)
	}
	pump("chargeback")

	cleared := 0
	for _, a := range ring1 {
		if e.Core(a) < coreThreshold {
			cleared++
		}
	}
	fmt.Printf("ring 1 members below threshold after chargebacks: %d/%d (still alerted overall: %d)\n",
		cleared, len(ring1), len(alerted))
	if err := e.Validate(); err != nil {
		log.Fatalf("maintained state diverged: %v", err)
	}
	fmt.Println("maintained cores verified against full recomputation: OK")
}

func pickAccounts(rng *rand.Rand, k, n int) []int {
	seen := map[int]bool{}
	var out []int
	for len(out) < k {
		a := rng.IntN(n)
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

package kcore

import "slices"

// Epoch-published read state: instead of guarding queries with the engine's
// RWMutex, the writer publishes an immutable snapshot of everything the read
// APIs answer from — core numbers, graph counts, degeneracy, sequence number,
// execution counters — after every mutation, with a single atomic pointer
// swap. Readers load the current epoch and answer with zero locking, so
// queries and SSE fan-out never contend with Apply at all.
//
// Publication must not make the write path O(n) per update, so an epoch is
// a two-level structure: a shared immutable base array of core numbers plus
// a small sorted patch of overrides. A batch that changes few cores
// publishes a new epoch that aliases the previous base and carries the
// changes (and any new vertices) in the patch; once the patch would exceed
// maxEpochPatch entries the writer folds everything into a fresh base.
// Point reads pay one bounded binary search over the patch; the writer pays
// O(changes) per publish and one O(n) copy per ~maxEpochPatch accumulated
// changes — amortized O(1) per single-edge update.
//
// Safety argument (see also PARALLEL.md):
//
//   - The writer fully constructs an epoch — base, patch, and scalars —
//     before the atomic Store. The Store is a release operation and every
//     reader's Load is an acquire, so a reader that observes the pointer
//     observes every field behind it (Go memory model: the atomic store
//     orders all writes that happened before it ahead of any read that
//     follows the corresponding load).
//   - An epoch is never mutated after publication: bases are shared across
//     epochs but only ever read, and each publish builds a fresh patch
//     slice. Readers therefore cannot observe torn or shifting state, and
//     a View (which wraps one epoch) stays valid indefinitely.
//   - All publications happen while holding the engine write lock, so the
//     stores are totally ordered and epoch sequence numbers are monotonic:
//     a reader that loads seq S and loads again later sees seq' >= S.
//
// One semantic note: subscriber events (Subscribe) are emitted per update
// *during* batch execution, while the epoch for the batch is published at
// the end. A subscriber that receives an event for sequence S and
// immediately queries the engine may briefly observe an epoch with
// seq < S; poll Seq() >= S when that matters. (The previous locked
// implementation hid this window only from readers that blocked for the
// whole Apply; asynchronous consumers could always observe lag.)

// maxEpochPatch bounds the patch: one more accumulated change folds the
// epoch into a fresh base. The bound trades the writer's fold frequency
// against the readers' binary-search depth (6 levels at 64).
const maxEpochPatch = 64

// corePatch is one patch entry: vertex v has core number c, overriding the
// base array.
type corePatch struct{ v, c int32 }

// epoch is the immutable read-state snapshot. Core numbers are stored as
// int32 — a core number is bounded by the maximum degree, and the graph
// package already stores vertex ids as int32 — halving the copy cost of a
// fold.
type epoch struct {
	cores    []int32     // base core numbers; shared across epochs, never written
	patch    []corePatch // sorted by v; overrides cores, covers vertices beyond it
	vertices int         // authoritative vertex count (>= len(cores))
	edges    int
	maxCore  int
	seq      uint64
	exec     ExecStats
}

// core answers a point lookup (0 for unknown vertices).
func (ep *epoch) core(v int) int {
	if v < 0 || v >= ep.vertices {
		return 0
	}
	if lo, hi := 0, len(ep.patch); hi > 0 {
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if int(ep.patch[mid].v) < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ep.patch) && int(ep.patch[lo].v) == v {
			return int(ep.patch[lo].c)
		}
	}
	if v < len(ep.cores) {
		return int(ep.cores[v])
	}
	return 0
}

// forEach visits every vertex with its effective core number, merging the
// base and the patch in one O(vertices + patch) pass.
func (ep *epoch) forEach(fn func(v, c int)) {
	pi := 0
	for v := 0; v < ep.vertices; v++ {
		c := 0
		if v < len(ep.cores) {
			c = int(ep.cores[v])
		}
		for pi < len(ep.patch) && int(ep.patch[pi].v) < v {
			pi++
		}
		if pi < len(ep.patch) && int(ep.patch[pi].v) == v {
			c = int(ep.patch[pi].c)
		}
		fn(v, c)
	}
}

// coresCopy converts the epoch's effective core numbers to a fresh []int.
func (ep *epoch) coresCopy() []int {
	out := make([]int, ep.vertices)
	ep.forEach(func(v, c int) { out[v] = c })
	return out
}

// publishEpoch derives the next epoch from the previous one and installs
// it. changed lists every pre-existing vertex whose core number changed
// since the last publication (BatchInfo.Total.CoreChanged is exactly that
// list, duplicate-free, on all three execution strategies); vertices
// created since the last epoch are always re-read from the maintainer, so
// they need not appear in changed. The caller holds the write lock.
func (e *Engine) publishEpoch(changed []int) {
	old := e.ep.Load()
	if old == nil {
		e.publishEpochFull()
		return
	}
	if _, ok := e.m.(orderImpl); !ok {
		// The traversal engine is the comparison baseline: publication
		// stays the simple full rebuild (its degeneracy needs an O(n)
		// scan anyway).
		e.publishEpochFull()
		return
	}
	n := e.g.NumVertices()
	grown := n - old.vertices
	if len(changed) == 0 && grown == 0 {
		// Counts, seq and exec may still have moved (e.g. an edge flip
		// that changed no cores): alias both levels, O(1).
		e.installEpoch(old.cores, old.patch)
		return
	}
	if len(old.patch)+len(changed)+grown > maxEpochPatch ||
		4*(len(old.patch)+len(changed)+grown) > n {
		// Fold: the old epoch already equals the pre-change state (the
		// seq invariant), so the new base is old base + old patch + this
		// publication's updates — one memcpy plus O(updates) maintainer
		// reads, never an O(n) re-read of the maintainer.
		cores := make([]int32, n)
		copy(cores, old.cores)
		for _, p := range old.patch {
			cores[p.v] = p.c
		}
		for _, v := range changed {
			if v >= 0 && v < n {
				cores[v] = int32(e.m.Core(v))
			}
		}
		for v := old.vertices; v < n; v++ {
			cores[v] = int32(e.m.Core(v))
		}
		e.installEpoch(cores, nil)
		return
	}
	// Collect this publication's overrides (changed may already include
	// fresh vertices; the sort-then-merge below deduplicates). epUpd is
	// writer-owned scratch: values are copied into the fresh patch, the
	// slice itself is never published.
	upd := e.epUpd[:0]
	for _, v := range changed {
		if v >= 0 && v < n {
			upd = append(upd, corePatch{int32(v), int32(e.m.Core(v))})
		}
	}
	for v := old.vertices; v < n; v++ {
		upd = append(upd, corePatch{int32(v), int32(e.m.Core(v))})
	}
	slices.SortFunc(upd, func(a, b corePatch) int { return int(a.v) - int(b.v) })
	e.epUpd = upd
	// Merge the old patch with the new overrides (new wins on ties) into a
	// fresh sorted patch; the base is shared untouched.
	patch := make([]corePatch, 0, len(old.patch)+len(upd))
	i, j := 0, 0
	for i < len(old.patch) || j < len(upd) {
		switch {
		case j >= len(upd):
			patch = append(patch, old.patch[i])
			i++
		case i >= len(old.patch):
			patch = appendPatch(patch, upd[j])
			j++
		case old.patch[i].v < upd[j].v:
			patch = append(patch, old.patch[i])
			i++
		case old.patch[i].v > upd[j].v:
			patch = appendPatch(patch, upd[j])
			j++
		default:
			patch = appendPatch(patch, upd[j])
			i++
			j++
		}
	}
	e.installEpoch(old.cores, patch)
}

// appendPatch appends p, replacing a duplicate vertex at the tail (changed
// and the fresh-vertex range may overlap; both read the same current core,
// so last-write-wins is exact).
func appendPatch(patch []corePatch, p corePatch) []corePatch {
	if k := len(patch) - 1; k >= 0 && patch[k].v == p.v {
		patch[k] = p
		return patch
	}
	return append(patch, p)
}

// publishEpochFull rebuilds the read state from the maintainer into a
// fresh base with an empty patch, trusting no previous epoch.
// Construction, panic repair (after a wholesale reseed there is no
// reliable changed list relative to the last published state), and
// traversal engines land here; ordinary patch overflow folds from the
// previous epoch inside publishEpoch instead. The caller holds the write
// lock.
func (e *Engine) publishEpochFull() {
	n := e.g.NumVertices()
	cores := make([]int32, n)
	for v := range cores {
		cores[v] = int32(e.m.Core(v))
	}
	e.installEpoch(cores, nil)
}

// installEpoch stamps the remaining read-state fields and swaps the epoch
// in. The caller holds the write lock.
func (e *Engine) installEpoch(cores []int32, patch []corePatch) {
	maxc := 0
	if impl, ok := e.m.(orderImpl); ok {
		// The maintained level lists answer the degeneracy in
		// O(degeneracy) without touching the core numbers.
		maxc = impl.m.MaxCore()
	} else {
		for _, c := range cores {
			if int(c) > maxc {
				maxc = int(c)
			}
		}
	}
	e.ep.Store(&epoch{
		cores:    cores,
		patch:    patch,
		vertices: e.g.NumVertices(),
		edges:    e.g.NumEdges(),
		maxCore:  maxc,
		seq:      e.seq,
		exec:     e.exec,
	})
}

// loadEpoch returns the current epoch for a lock-free read.
func (e *Engine) loadEpoch() *epoch { return e.ep.Load() }

package kcore

import (
	"errors"
	"fmt"

	"kcore/internal/graph"
)

// Sentinel errors returned (wrapped) by engine mutations. Callers branch on
// them with errors.Is:
//
//	if _, err := e.AddEdge(u, v); errors.Is(err, kcore.ErrDuplicateEdge) {
//		// edge was already present
//	}
var (
	// ErrSelfLoop is returned when an update names an edge (v, v).
	ErrSelfLoop = graph.ErrSelfLoop
	// ErrDuplicateEdge is returned when an inserted edge is already present
	// (in the graph, or earlier in the same batch).
	ErrDuplicateEdge = graph.ErrDuplicateEdge
	// ErrMissingEdge is returned when a removed edge is not present.
	ErrMissingEdge = graph.ErrMissingEdge
	// ErrVertexRange is returned for negative vertex identifiers.
	ErrVertexRange = graph.ErrVertexRange
	// ErrWrongEngine is returned by operations that require a specific
	// maintenance algorithm (e.g. SaveIndex needs the order-based engine).
	ErrWrongEngine = errors.New("kcore: operation not supported by this engine")
)

// BatchError reports which update of a batch failed and why. Apply returns
// it for every validation failure; it wraps one of the sentinel errors, so
// both errors.As (for the position) and errors.Is (for the cause) work:
//
//	var be *kcore.BatchError
//	if errors.As(err, &be) {
//		log.Printf("update %d (%v) rejected: %v", be.Index, be.Update, be.Err)
//	}
type BatchError struct {
	// Index is the position of the offending update within the batch.
	Index int
	// Update is the offending update.
	Update Update
	// Err is the underlying cause (one of the sentinel errors).
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("kcore: batch update %d (%s %d-%d): %v",
		e.Index, e.Update.Op, e.Update.U, e.Update.V, e.Err)
}

// Unwrap exposes the underlying sentinel to errors.Is / errors.As.
func (e *BatchError) Unwrap() error { return e.Err }

// HookError reports that a batch was applied in memory but the registered
// apply hook — typically the write-ahead log of a persistence layer (see
// SetApplyHook) — failed afterwards. The distinction matters: on a
// *HookError the engine state HAS advanced (BatchInfo is valid, subscribers
// were notified), only durability failed, so callers must not re-submit the
// batch — a retry would double-apply it. Branch with errors.As:
//
//	var he *kcore.HookError
//	if errors.As(err, &he) {
//		log.Printf("batch applied but not persisted: %v", he.Err)
//	}
type HookError struct {
	// Err is the error the apply hook returned.
	Err error
}

func (e *HookError) Error() string { return "kcore: apply hook: " + e.Err.Error() }

// Unwrap exposes the hook's error to errors.Is / errors.As.
func (e *HookError) Unwrap() error { return e.Err }

// PanicError reports that a batch was quarantined: its execution panicked,
// the engine recovered, and the maintained cores and k-order were
// recomputed wholesale from the graph (see ExecStats.Panics). The engine
// stays usable; the batch is rejected.
//
// A quarantined batch may have applied a prefix of its updates before the
// panic (Seq tells how far the sequence advanced). Those updates were NOT
// handed to the apply hook or tap, so a persistence layer will refuse the
// next append as a sequence gap until it heals by snapshot, and a
// replication follower crossing the gap re-bootstraps — both by design:
// the durability and replication planes never paper over a hole. Panics
// injected through the fault plane's apply probe fire before any mutation,
// so they quarantine cleanly with no prefix.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("kcore: batch quarantined after panic: %v", e.Value)
}

package kcore_test

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"kcore"
)

// TestIntegrationLifecycle exercises the full public workflow end to end:
// load a graph, maintain it through mixed churn, snapshot mid-stream,
// restore, continue on both engines, and answer structural queries —
// validating the maintained state against recomputation at every stage.
func TestIntegrationLifecycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 1))

	// Stage 1: build a community-structured graph through the API.
	e := kcore.NewEngine(kcore.WithSeed(9))
	const groups, size = 6, 8
	for g := 0; g < groups; g++ {
		base := g * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.8 {
					if _, err := e.AddEdge(base+i, base+j); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	for i := 0; i < 30; i++ {
		u, v := rng.IntN(groups*size), rng.IntN(groups*size)
		if u != v && !e.HasEdge(u, v) {
			if _, err := e.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("stage 1: %v", err)
	}

	// Stage 2: churn, snapshotting halfway.
	var snap bytes.Buffer
	edges := e.Edges()
	for i, ed := range edges {
		if i%3 == 0 {
			if _, err := e.RemoveEdge(ed[0], ed[1]); err != nil {
				t.Fatal(err)
			}
		}
		if i == len(edges)/2 {
			if err := e.SaveIndex(&snap); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("stage 2: %v", err)
	}

	// Stage 3: restore the snapshot and replay different updates; the
	// restored engine must stay valid and agree with a traversal engine
	// fed the same state.
	r, err := kcore.LoadIndex(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("restored: %v", err)
	}
	var dump bytes.Buffer
	if err := r.Save(&dump); err != nil {
		t.Fatal(err)
	}
	tr, err := kcore.Load(&dump, kcore.WithAlgorithm(kcore.Traversal))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 150; step++ {
		u, v := rng.IntN(groups*size), rng.IntN(groups*size)
		if u == v {
			continue
		}
		if r.HasEdge(u, v) {
			if _, err := r.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := r.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for v := 0; v < groups*size; v++ {
		if r.Core(v) != tr.Core(v) {
			t.Fatalf("core(%d): restored %d vs traversal %d", v, r.Core(v), tr.Core(v))
		}
	}

	// Stage 4: structural queries on the final state.
	colors, k := r.GreedyColoring()
	if k > r.Degeneracy()+1 {
		t.Fatalf("coloring used %d colors > degeneracy+1 = %d", k, r.Degeneracy()+1)
	}
	for _, ed := range r.Edges() {
		if colors[ed[0]] == colors[ed[1]] {
			t.Fatalf("improper coloring on edge %v", ed)
		}
	}
	deepest := r.Degeneracy()
	if comps := r.CoreComponents(deepest); len(comps) == 0 {
		t.Fatal("no components at the degeneracy level")
	} else {
		probe := comps[0][0]
		if comm := r.Community(probe, deepest); len(comm) == 0 {
			t.Fatal("empty community for a degeneracy-level vertex")
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("final: %v", err)
	}
}

package kcore

import "fmt"

// View is an immutable, internally consistent snapshot of the engine's
// maintained state: core numbers, degeneracy, and graph size, all captured
// at the same update sequence number. A View answers any number of queries
// without touching the engine's lock, so read-heavy callers take one View
// per decision instead of re-locking per query.
//
// A View never changes after creation; later engine updates are invisible
// to it. It is safe for concurrent use by multiple goroutines. Nothing a
// View returns aliases engine scratch: the core numbers are copied out once
// at capture time, so a View stays valid indefinitely no matter how the
// engine is mutated afterwards.
type View struct {
	cores    []int
	vertices int
	edges    int
	maxCore  int
	seq      uint64

	// Index capture (WithIndex only): the full maintained state needed to
	// reconstruct the engine bit-identically — see View.Index.
	index *IndexState
}

// ViewOption configures what a View captures beyond the default core
// snapshot.
type ViewOption func(*viewConfig)

type viewConfig struct{ index bool }

// WithIndex makes the View additionally capture the complete maintained
// index — edge list, core numbers, and the maintained k-order — retrievable
// via View.Index. Capture cost grows from O(n) to O(m + n), still under one
// read-lock acquisition; it is how the durable snapshot writer
// (internal/persist) observes a consistent state without blocking writers
// while the file is written. Order-based engines only: on other engines the
// View is still valid but Index returns an error.
func WithIndex() ViewOption { return func(c *viewConfig) { c.index = true } }

// View captures a consistent snapshot of the current state. Cost is one
// read-lock acquisition and one O(n) copy of the core numbers (O(m + n)
// with WithIndex).
func (e *Engine) View(opts ...ViewOption) *View {
	var cfg viewConfig
	for _, o := range opts {
		o(&cfg)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	cores := e.m.Cores()
	maxc := 0
	for _, c := range cores {
		if c > maxc {
			maxc = c
		}
	}
	v := &View{
		cores:    cores,
		vertices: e.g.NumVertices(),
		edges:    e.g.NumEdges(),
		maxCore:  maxc,
		seq:      e.seq,
	}
	if cfg.index {
		if impl, ok := e.m.(orderImpl); ok {
			v.index = &IndexState{
				Seq:       e.seq,
				Vertices:  v.vertices,
				Edges:     e.g.Edges(),
				Cores:     cores,
				Order:     impl.m.Order(),
				Seed:      e.cfg.seed,
				Heuristic: e.cfg.heuristic,
				Structure: e.cfg.structure,
			}
		}
	}
	return v
}

// Index returns the complete maintained state captured at View time, for
// serialization by a persistence layer. It requires the View to have been
// taken with WithIndex on an order-based engine; otherwise the error wraps
// ErrWrongEngine. The returned state shares the View's internal slices —
// callers must treat it as read-only.
func (v *View) Index() (*IndexState, error) {
	if v.index == nil {
		return nil, fmt.Errorf("kcore: View captured no index (need View(WithIndex()) on the order-based engine): %w",
			ErrWrongEngine)
	}
	return v.index, nil
}

// Seq is the engine update sequence number at which the snapshot was taken.
func (v *View) Seq() uint64 { return v.seq }

// NumVertices reports the snapshot's vertex count (max vertex id + 1).
func (v *View) NumVertices() int { return v.vertices }

// NumEdges reports the snapshot's edge count.
func (v *View) NumEdges() int { return v.edges }

// Degeneracy returns the snapshot's maximum core number.
func (v *View) Degeneracy() int { return v.maxCore }

// Core returns the snapshot core number of x (0 for unknown vertices).
func (v *View) Core(x int) int {
	if x < 0 || x >= len(v.cores) {
		return 0
	}
	return v.cores[x]
}

// Cores returns a copy of the snapshot's core numbers, indexed by vertex.
func (v *View) Cores() []int {
	out := make([]int, len(v.cores))
	copy(out, v.cores)
	return out
}

// KCore returns the vertices of the snapshot's k-core (core number >= k).
func (v *View) KCore(k int) []int {
	var out []int
	for x, c := range v.cores {
		if c >= k {
			out = append(out, x)
		}
	}
	return out
}

package kcore

import "fmt"

// View is an immutable, internally consistent snapshot of the engine's
// maintained state: core numbers, degeneracy, and graph size, all captured
// at the same update sequence number. A View answers any number of queries
// from the same state no matter how the engine moves on, so read-heavy
// callers take one View per decision instead of re-reading per query.
//
// A View is the engine's epoch snapshot (see epoch.go) wrapped in a stable
// API: capturing one is a single atomic pointer load — O(1), no locking, no
// copying — and it never changes after creation. It is safe for concurrent
// use by multiple goroutines and stays valid indefinitely no matter how the
// engine is mutated (or even unloaded) afterwards: nothing it returns
// aliases engine scratch.
type View struct {
	ep *epoch

	// Index capture (WithIndex only): the full maintained state needed to
	// reconstruct the engine bit-identically — see View.Index.
	index *IndexState
}

// ViewOption configures what a View captures beyond the default core
// snapshot.
type ViewOption func(*viewConfig)

type viewConfig struct{ index bool }

// WithIndex makes the View additionally capture the complete maintained
// index — edge list, core numbers, and the maintained k-order — retrievable
// via View.Index. Capture cost grows from O(1) to O(m + n) under one
// read-lock acquisition (the adjacency structure and maintained order are
// mutated in place, so unlike the core snapshot they cannot be read without
// the lock); it is how the durable snapshot writer (internal/persist)
// observes a consistent state without blocking writers while the file is
// written. Order-based engines only: on other engines the View is still
// valid but Index returns an error.
func WithIndex() ViewOption { return func(c *viewConfig) { c.index = true } }

// View captures a consistent snapshot of the current state. The default
// capture is one atomic epoch load — O(1), lock-free; WithIndex takes a
// read lock and copies the full maintained state in O(m + n).
func (e *Engine) View(opts ...ViewOption) *View {
	var cfg viewConfig
	for _, o := range opts {
		o(&cfg)
	}
	if !cfg.index {
		return &View{ep: e.loadEpoch()}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	// Under the read lock no publication is in flight, so the current
	// epoch describes exactly the state the index capture walks.
	v := &View{ep: e.loadEpoch()}
	if impl, ok := e.m.(orderImpl); ok {
		v.index = &IndexState{
			Seq:       e.seq,
			Vertices:  e.g.NumVertices(),
			Edges:     e.g.Edges(),
			Cores:     e.m.Cores(),
			Order:     impl.m.Order(),
			Seed:      e.cfg.seed,
			Heuristic: e.cfg.heuristic,
			Structure: e.cfg.structure,
		}
	}
	return v
}

// Index returns the complete maintained state captured at View time, for
// serialization by a persistence layer. It requires the View to have been
// taken with WithIndex on an order-based engine; otherwise the error wraps
// ErrWrongEngine. The returned state shares the View's internal slices —
// callers must treat it as read-only.
func (v *View) Index() (*IndexState, error) {
	if v.index == nil {
		return nil, fmt.Errorf("kcore: View captured no index (need View(WithIndex()) on the order-based engine): %w",
			ErrWrongEngine)
	}
	return v.index, nil
}

// Seq is the engine update sequence number at which the snapshot was taken.
func (v *View) Seq() uint64 { return v.ep.seq }

// NumVertices reports the snapshot's vertex count (max vertex id + 1).
func (v *View) NumVertices() int { return v.ep.vertices }

// NumEdges reports the snapshot's edge count.
func (v *View) NumEdges() int { return v.ep.edges }

// Degeneracy returns the snapshot's maximum core number.
func (v *View) Degeneracy() int { return v.ep.maxCore }

// Core returns the snapshot core number of x (0 for unknown vertices).
func (v *View) Core(x int) int { return v.ep.core(x) }

// Cores returns a copy of the snapshot's core numbers, indexed by vertex.
func (v *View) Cores() []int { return v.ep.coresCopy() }

// KCore returns the vertices of the snapshot's k-core (core number >= k).
func (v *View) KCore(k int) []int {
	var out []int
	v.ep.forEach(func(x, c int) {
		if c >= k {
			out = append(out, x)
		}
	})
	return out
}

package kcore

// View is an immutable, internally consistent snapshot of the engine's
// maintained state: core numbers, degeneracy, and graph size, all captured
// at the same update sequence number. A View answers any number of queries
// without touching the engine's lock, so read-heavy callers take one View
// per decision instead of re-locking per query.
//
// A View never changes after creation; later engine updates are invisible
// to it. It is safe for concurrent use by multiple goroutines. Nothing a
// View returns aliases engine scratch: the core numbers are copied out once
// at capture time, so a View stays valid indefinitely no matter how the
// engine is mutated afterwards.
type View struct {
	cores    []int
	vertices int
	edges    int
	maxCore  int
	seq      uint64
}

// View captures a consistent snapshot of the current state. Cost is one
// read-lock acquisition and one O(n) copy of the core numbers.
func (e *Engine) View() *View {
	e.mu.RLock()
	defer e.mu.RUnlock()
	cores := e.m.Cores()
	maxc := 0
	for _, c := range cores {
		if c > maxc {
			maxc = c
		}
	}
	return &View{
		cores:    cores,
		vertices: e.g.NumVertices(),
		edges:    e.g.NumEdges(),
		maxCore:  maxc,
		seq:      e.seq,
	}
}

// Seq is the engine update sequence number at which the snapshot was taken.
func (v *View) Seq() uint64 { return v.seq }

// NumVertices reports the snapshot's vertex count (max vertex id + 1).
func (v *View) NumVertices() int { return v.vertices }

// NumEdges reports the snapshot's edge count.
func (v *View) NumEdges() int { return v.edges }

// Degeneracy returns the snapshot's maximum core number.
func (v *View) Degeneracy() int { return v.maxCore }

// Core returns the snapshot core number of x (0 for unknown vertices).
func (v *View) Core(x int) int {
	if x < 0 || x >= len(v.cores) {
		return 0
	}
	return v.cores[x]
}

// Cores returns a copy of the snapshot's core numbers, indexed by vertex.
func (v *View) Cores() []int {
	out := make([]int, len(v.cores))
	copy(out, v.cores)
	return out
}

// KCore returns the vertices of the snapshot's k-core (core number >= k).
func (v *View) KCore(k int) []int {
	var out []int
	for x, c := range v.cores {
		if c >= k {
			out = append(out, x)
		}
	}
	return out
}

package kcore

import (
	"runtime"
	"sync/atomic"
	"testing"

	"kcore/internal/gen"
	"kcore/internal/workload"
)

// churnBatches converts a churn stream into fixed-size batches, injecting a
// self-annihilating pair every so often so coalescing is exercised on every
// execution path.
func churnBatches(ops []workload.Op, batchSize int, inject bool) []Batch {
	var out []Batch
	for start := 0; start < len(ops); start += batchSize {
		end := min(start+batchSize, len(ops))
		var b Batch
		for i, op := range ops[start:end] {
			if op.Insert {
				b = append(b, Add(op.E.U, op.E.V))
				if inject && i%17 == 3 {
					// Take the insertion right back: a coalescable pair.
					b = append(b, Remove(op.E.U, op.E.V), Add(op.E.U, op.E.V))
				}
			} else {
				b = append(b, Remove(op.E.U, op.E.V))
			}
		}
		out = append(out, b)
	}
	return out
}

// newDifferentialPair builds a sequential reference engine and a parallel
// engine over the same seed graph, both with recomputation disabled so the
// maintenance path itself is compared. The parallel engine's batch-size
// floor is lowered so test-sized batches exercise the concurrent runtime.
func newDifferentialPair(t *testing.T, edges [][2]int, workers int) (*Engine, *Engine) {
	t.Helper()
	seqE, err := FromEdges(edges, WithWorkers(1), WithRebuildThreshold(-1, 0))
	if err != nil {
		t.Fatal(err)
	}
	parE, err := FromEdges(edges, WithWorkers(workers), WithRebuildThreshold(-1, 0))
	if err != nil {
		t.Fatal(err)
	}
	parE.parMin = 2
	return seqE, parE
}

func compareBatchInfo(t *testing.T, batch int, seq, par BatchInfo) {
	t.Helper()
	if seq.Applied != par.Applied || seq.Coalesced != par.Coalesced ||
		seq.Seq != par.Seq || seq.Recomputed != par.Recomputed {
		t.Fatalf("batch %d: header mismatch seq=%+v par=%+v", batch, seq, par)
	}
	if len(seq.Updates) != len(par.Updates) {
		t.Fatalf("batch %d: len(Updates) %d vs %d", batch, len(seq.Updates), len(par.Updates))
	}
	for i := range seq.Updates {
		su, pu := seq.Updates[i], par.Updates[i]
		if su.Coalesced != pu.Coalesced || su.Visited != pu.Visited ||
			len(su.CoreChanged) != len(pu.CoreChanged) {
			t.Fatalf("batch %d update %d: %+v vs %+v", batch, i, su, pu)
		}
		for j := range su.CoreChanged {
			if su.CoreChanged[j] != pu.CoreChanged[j] {
				t.Fatalf("batch %d update %d: CoreChanged %v vs %v",
					batch, i, su.CoreChanged, pu.CoreChanged)
			}
		}
	}
	if seq.Total.Visited != par.Total.Visited ||
		len(seq.Total.CoreChanged) != len(par.Total.CoreChanged) {
		t.Fatalf("batch %d: Total mismatch %+v vs %+v", batch, seq.Total, par.Total)
	}
	for j := range seq.Total.CoreChanged {
		if seq.Total.CoreChanged[j] != par.Total.CoreChanged[j] {
			t.Fatalf("batch %d: Total.CoreChanged %v vs %v",
				batch, seq.Total.CoreChanged, par.Total.CoreChanged)
		}
	}
}

func compareState(t *testing.T, batch int, seqE, parE *Engine) {
	t.Helper()
	sc, pc := seqE.Cores(), parE.Cores()
	if len(sc) != len(pc) {
		t.Fatalf("batch %d: vertex counts %d vs %d", batch, len(sc), len(pc))
	}
	for v := range sc {
		if sc[v] != pc[v] {
			t.Fatalf("batch %d: core(%d) seq %d par %d", batch, v, sc[v], pc[v])
		}
	}
	// Bit-identical maintained k-order, not just equal cores.
	so := seqE.m.(orderImpl).m.Order()
	po := parE.m.(orderImpl).m.Order()
	for i := range so {
		if so[i] != po[i] {
			t.Fatalf("batch %d: k-order diverged at %d", batch, i)
		}
	}
}

// TestParallelApplyMatchesSequential is the differential test of the
// parallel runtime: randomized mixed batches (both scattered and hub-heavy)
// applied to a sequential-reference engine and a parallel engine must yield
// identical core numbers, BatchInfo, subscription event streams, and even
// the same maintained k-order. Run under -race this also proves the
// concurrent phases are data-race free; the CI matrix covers GOMAXPROCS=1
// and 4.
func TestParallelApplyMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		skew float64
	}{
		{"scattered", 0.0},
		{"hot-hubs", 0.85},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.ErdosRenyi(800, 2400, 17)
			ops := workload.Churn(g, 1200, workload.ChurnOptions{
				AddFraction: 0.55, Skew: tc.skew, Seed: 23})
			seqE, parE := newDifferentialPair(t, g.Edges(), 4)

			var seqDrop, parDrop atomic.Uint64
			seqCh, cancelSeq := seqE.Subscribe(WithBuffer(1<<16), WithDropCounter(&seqDrop))
			defer cancelSeq()
			parCh, cancelPar := parE.Subscribe(WithBuffer(1<<16), WithDropCounter(&parDrop))
			defer cancelPar()

			for bi, batch := range churnBatches(ops, 150, true) {
				seqInfo, seqErr := seqE.Apply(batch)
				parInfo, parErr := parE.Apply(batch)
				if seqErr != nil || parErr != nil {
					t.Fatalf("batch %d: seq err %v, par err %v", bi, seqErr, parErr)
				}
				compareBatchInfo(t, bi, seqInfo, parInfo)
				compareState(t, bi, seqE, parE)
			}
			if seqDrop.Load() != 0 || parDrop.Load() != 0 {
				t.Fatalf("event buffers overflowed (seq %d, par %d): grow the test buffer",
					seqDrop.Load(), parDrop.Load())
			}
			seqEvs, parEvs := drain(seqCh), drain(parCh)
			if len(seqEvs) != len(parEvs) {
				t.Fatalf("event counts differ: seq %d par %d", len(seqEvs), len(parEvs))
			}
			for i := range seqEvs {
				if seqEvs[i] != parEvs[i] {
					t.Fatalf("event %d differs: seq %+v par %+v", i, seqEvs[i], parEvs[i])
				}
			}
			if err := seqE.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := parE.Validate(); err != nil {
				t.Fatal(err)
			}
			// The scattered workload must actually use the concurrent path —
			// if every update were demoted to live execution this test would
			// pass vacuously.
			if tc.skew == 0 {
				if st := parE.ExecStats(); st.Replayed == 0 {
					t.Fatalf("no update was replayed from a simulation: %+v", st)
				}
			}
		})
	}
}

// TestParallelAcrossGOMAXPROCS reruns a compact differential workload at
// GOMAXPROCS 1 and 4: the runtime must be correct (and race-clean) whether
// or not real parallelism is available.
func TestParallelAcrossGOMAXPROCS(t *testing.T) {
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		func() {
			defer runtime.GOMAXPROCS(old)
			g := gen.BarabasiAlbert(400, 3, 29)
			ops := workload.Churn(g, 600, workload.ChurnOptions{
				AddFraction: 0.5, Skew: 0.3, Seed: 31})
			seqE, parE := newDifferentialPair(t, g.Edges(), 4)
			for bi, batch := range churnBatches(ops, 120, true) {
				seqInfo, seqErr := seqE.Apply(batch)
				parInfo, parErr := parE.Apply(batch)
				if seqErr != nil || parErr != nil {
					t.Fatalf("procs %d batch %d: seq err %v, par err %v", procs, bi, seqErr, parErr)
				}
				compareBatchInfo(t, bi, seqInfo, parInfo)
				compareState(t, bi, seqE, parE)
			}
		}()
	}
}

// TestRebuildMatchesMaintainedCores: the recompute path must land on the
// same core numbers as incremental maintenance, with the documented coarse
// BatchInfo and net-diff subscriber events.
func TestRebuildMatchesMaintainedCores(t *testing.T) {
	g := gen.ErdosRenyi(300, 600, 41)
	base := g.Edges()
	ops := workload.Churn(g, 900, workload.ChurnOptions{AddFraction: 0.7, Seed: 43})
	var batch Batch
	for _, op := range ops {
		if op.Insert {
			batch = append(batch, Add(op.E.U, op.E.V))
		} else {
			batch = append(batch, Remove(op.E.U, op.E.V))
		}
	}

	maintE, err := FromEdges(base, WithRebuildThreshold(-1, 0))
	if err != nil {
		t.Fatal(err)
	}
	rebuildE, err := FromEdges(base, WithRebuildThreshold(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	oldCores := rebuildE.Cores()
	ch, cancel := rebuildE.Subscribe(WithBuffer(1 << 14))
	defer cancel()

	mInfo, err := maintE.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	rInfo, err := rebuildE.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if mInfo.Recomputed || !rInfo.Recomputed {
		t.Fatalf("Recomputed flags wrong: maintain %v rebuild %v", mInfo.Recomputed, rInfo.Recomputed)
	}
	if rInfo.Updates != nil {
		t.Fatal("recomputed batch must not carry per-update attribution")
	}
	if rInfo.Applied != mInfo.Applied || rInfo.Seq != mInfo.Seq {
		t.Fatalf("applied/seq mismatch: %+v vs %+v", rInfo, mInfo)
	}
	mc, rc := maintE.Cores(), rebuildE.Cores()
	if len(mc) != len(rc) {
		t.Fatalf("vertex counts differ: %d vs %d", len(mc), len(rc))
	}
	for v := range mc {
		if mc[v] != rc[v] {
			t.Fatalf("core(%d): maintained %d, recomputed %d", v, mc[v], rc[v])
		}
	}
	if err := rebuildE.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total.CoreChanged is the ascending net diff; events mirror it.
	prev := -1
	for _, v := range rInfo.Total.CoreChanged {
		if v <= prev {
			t.Fatalf("net diff not ascending: %v", rInfo.Total.CoreChanged)
		}
		prev = v
		old := 0
		if v < len(oldCores) {
			old = oldCores[v]
		}
		if rc[v] == old {
			t.Fatalf("vertex %d in net diff but core unchanged (%d)", v, old)
		}
	}
	evs := drain(ch)
	if len(evs) != len(rInfo.Total.CoreChanged) {
		t.Fatalf("rebuild events = %d, want %d", len(evs), len(rInfo.Total.CoreChanged))
	}
	for i, ev := range evs {
		v := rInfo.Total.CoreChanged[i]
		old := 0
		if v < len(oldCores) {
			old = oldCores[v]
		}
		want := CoreChange{Vertex: v, OldCore: old, NewCore: rc[v], Seq: rInfo.Seq}
		if ev != want {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want)
		}
	}
	if st := rebuildE.ExecStats(); st.Recomputed == 0 || st.Sequential != 0 {
		t.Fatalf("exec stats %+v: expected pure recompute", st)
	}
}

// TestRebuildCostModelRouting: small batches stay incremental, whole-graph
// rewrites recompute, and the floor/disable knobs are honored.
func TestRebuildCostModelRouting(t *testing.T) {
	big := gen.ErdosRenyi(500, 2000, 47)
	e, err := FromEdges(big.Edges())
	if err != nil {
		t.Fatal(err)
	}
	// A handful of updates on a big graph: incremental.
	info, err := e.Apply(Batch{Add(0, 1), Add(0, 2)})
	if err == nil && info.Recomputed {
		t.Fatal("tiny batch recomputed")
	}
	// A batch dwarfing the graph: recomputed (default thresholds).
	fresh := NewEngine()
	edges := gen.ErdosRenyi(400, 1200, 49).Edges()
	batch := make(Batch, len(edges))
	for i, ed := range edges {
		batch[i] = Add(ed[0], ed[1])
	}
	info, err = fresh.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recomputed {
		t.Fatal("graph-sized batch not recomputed under default thresholds")
	}
	if err := fresh.Validate(); err != nil {
		t.Fatal(err)
	}
	// Single-update public calls must never route to rebuild, even under a
	// pathologically eager threshold — they rely on per-update attribution
	// (regression: AddEdge used to panic on Updates[0] here).
	eager := NewEngine(WithRebuildThreshold(0, 0.5))
	if ui, err := eager.AddEdge(0, 1); err != nil || ui.Visited < 0 {
		t.Fatalf("AddEdge under eager rebuild threshold: %v", err)
	}
	if ui, err := eager.RemoveEdge(0, 1); err != nil || len(ui.CoreChanged) != 2 {
		t.Fatalf("RemoveEdge under eager rebuild threshold: %v", err)
	}
	// Same batch with recomputation disabled: incremental, same cores.
	off := NewEngine(WithRebuildThreshold(-1, 0))
	info2, err := off.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Recomputed {
		t.Fatal("recomputation ran while disabled")
	}
	a, b := fresh.Cores(), off.Cores()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("core(%d) differs between rebuild and maintain: %d vs %d", v, a[v], b[v])
		}
	}
}

package kcore

import "sync/atomic"

// Change subscriptions: push-style notification of core-number changes, so
// streaming consumers (alerting, cohort tracking) stop polling Cores().
// Events are emitted synchronously while the engine's write lock is held;
// delivery into each subscriber channel is non-blocking — a subscriber that
// falls behind its buffer loses events rather than stalling the writer.

// CoreChange is one vertex's core-number transition caused by one update.
type CoreChange struct {
	// Vertex is the affected vertex.
	Vertex int
	// OldCore and NewCore are the core numbers before and after the update.
	// For incrementally maintained updates they differ by exactly 1; a
	// batch the engine applied by wholesale recomputation (see
	// BatchInfo.Recomputed) instead delivers one event per net-changed
	// vertex, whose cores may differ by more than 1 in either direction.
	OldCore int
	NewCore int
	// Seq is the engine update sequence number of the update that caused
	// the change (see Engine.Seq). All changes of one update share one Seq;
	// recomputed batches tag every event with the batch's final Seq.
	Seq uint64
}

type subscriber struct {
	ch      chan CoreChange
	minCore int
	dropped *atomic.Uint64
}

type subConfig struct {
	buffer  int
	minCore int
	dropped *atomic.Uint64
}

// SubscribeOption configures a subscription.
type SubscribeOption func(*subConfig)

// WithBuffer sets the subscription channel's buffer size (default 64,
// minimum 1). When the buffer is full, further events are dropped for this
// subscriber until it drains.
func WithBuffer(n int) SubscribeOption {
	return func(c *subConfig) {
		if n > 0 {
			c.buffer = n
		}
	}
}

// WithMinCore delivers only changes involving core level k or above: events
// with max(OldCore, NewCore) >= k. Useful for threshold alerting — both the
// crossing above k and the fall back below it are delivered.
func WithMinCore(k int) SubscribeOption {
	return func(c *subConfig) { c.minCore = k }
}

// WithDropCounter makes the subscription count events it dropped because
// the buffer was full into d (incremented atomically, safe to read at any
// time). Without it, drops are silent.
func WithDropCounter(d *atomic.Uint64) SubscribeOption {
	return func(c *subConfig) { c.dropped = d }
}

// Subscribe registers a core-change listener and returns its event channel
// plus a cancel function. Every applied update delivers one CoreChange per
// affected vertex, in settlement order, tagged with the update's sequence
// number.
//
// cancel unregisters the subscription and closes the channel; it is safe to
// call more than once. Callers must cancel when done — an abandoned
// subscription leaks its channel and keeps dropping events forever.
func (e *Engine) Subscribe(opts ...SubscribeOption) (<-chan CoreChange, func()) {
	cfg := subConfig{buffer: 64}
	for _, o := range opts {
		o(&cfg)
	}
	s := &subscriber{
		ch:      make(chan CoreChange, cfg.buffer),
		minCore: cfg.minCore,
		dropped: cfg.dropped,
	}
	e.subMu.Lock()
	if e.subs == nil {
		e.subs = make(map[uint64]*subscriber)
	}
	e.nextSubID++
	id := e.nextSubID
	e.subs[id] = s
	e.subMu.Unlock()
	e.subCount.Add(1)
	cancel := func() {
		e.subMu.Lock()
		if _, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(s.ch)
			e.subCount.Add(-1)
		}
		e.subMu.Unlock()
	}
	return s.ch, cancel
}

// notify fans one update's core changes out to all subscribers. The caller
// holds the engine write lock; op tells the direction every change took
// (+1 for insertions, -1 for removals).
func (e *Engine) notify(op Op, changed []int) {
	// Recovery is silent: Replay restores state the engine had already
	// reached, so subscribers see only post-recovery changes (see
	// Engine.Replay; ReplayNotify keeps events on).
	if e.silent || len(changed) == 0 || e.subCount.Load() == 0 {
		return
	}
	delta := 1
	if op == OpRemove {
		delta = -1
	}
	e.subMu.Lock()
	defer e.subMu.Unlock()
	for _, v := range changed {
		newCore := e.m.Core(v)
		e.deliver(CoreChange{Vertex: v, OldCore: newCore - delta, NewCore: newCore, Seq: e.seq})
	}
}

// notifyDiff fans out the net core changes of a recomputed batch (see
// BatchInfo.Recomputed): one event per changed vertex, in ascending vertex
// order, all tagged with the batch's final sequence number. The caller
// holds the engine write lock; changed lists the vertices whose core
// numbers differ from oldCores (implicitly 0 beyond its length).
func (e *Engine) notifyDiff(changed []int, oldCores []int) {
	if e.silent || len(changed) == 0 || e.subCount.Load() == 0 {
		return
	}
	e.subMu.Lock()
	defer e.subMu.Unlock()
	for _, v := range changed {
		old := 0
		if v < len(oldCores) {
			old = oldCores[v]
		}
		e.deliver(CoreChange{Vertex: v, OldCore: old, NewCore: e.m.Core(v), Seq: e.seq})
	}
}

// deliver fans one event out to all subscribers, applying each one's
// min-core filter and non-blocking drop policy. The caller holds subMu.
func (e *Engine) deliver(ev CoreChange) {
	for _, s := range e.subs {
		if ev.NewCore < s.minCore && ev.OldCore < s.minCore {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			if s.dropped != nil {
				s.dropped.Add(1)
			}
		}
	}
}

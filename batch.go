package kcore

import (
	"fmt"
	"runtime/debug"

	"kcore/internal/traversal"
)

// Batched updates: Apply takes the engine's write lock once, pre-validates
// the whole batch against the current graph (tracking intra-batch effects),
// and only then mutates — a batch that fails validation leaves the engine
// untouched. During validation, self-annihilating pairs (an insertion of an
// edge followed by its removal, or vice versa) are coalesced away entirely.
// The surviving updates are then executed by whichever strategy the engine
// predicts cheapest: per-update maintenance replayed sequentially,
// conflict-grouped concurrent maintenance (see parallel.go), or — when the
// batch rewrites a large fraction of the graph — one wholesale O(m + n)
// recomputation.

// Op is the kind of one edge update.
type Op uint8

const (
	// OpAdd inserts an edge.
	OpAdd Op = iota
	// OpRemove deletes an edge.
	OpRemove
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	default:
		return "unknown"
	}
}

// Update is one edge insertion or removal.
type Update struct {
	Op   Op
	U, V int
}

// Add returns an edge-insertion update for use in a Batch.
func Add(u, v int) Update { return Update{Op: OpAdd, U: u, V: v} }

// Remove returns an edge-removal update for use in a Batch.
func Remove(u, v int) Update { return Update{Op: OpRemove, U: u, V: v} }

// Batch is an ordered sequence of edge updates applied as one locked
// operation. Updates may mix insertions and removals and may touch the same
// edge repeatedly (add then remove is valid; adding a present edge is not).
type Batch []Update

// BatchInfo aggregates the effect of an applied batch.
type BatchInfo struct {
	// Applied is the number of updates that took effect. Coalesced updates
	// are not counted.
	Applied int
	// Coalesced is the number of updates cancelled during pre-validation as
	// self-annihilating pairs: an Add(u,v) later undone by a Remove(u,v) in
	// the same batch (or a Remove later undone by an Add) is elided in its
	// entirety. A cancelled pair behaves as if neither update had been
	// submitted — it consumes no sequence numbers, emits no subscriber
	// events (including the transient core changes the pair would have
	// caused), and performs no maintenance work. Coalesced is always even.
	Coalesced int
	// Recomputed reports that the engine applied the batch by one wholesale
	// O(m + n) recomputation instead of per-update maintenance (see
	// WithRebuildThreshold). In that mode per-update attribution does not
	// exist: Updates is nil, Total.CoreChanged lists the net-changed
	// vertices in ascending order, and subscribers receive one event per
	// net-changed vertex (whose cores may differ by more than 1) instead of
	// per-update events.
	Recomputed bool
	// Seq is the engine's update sequence number after the last applied
	// update (see Engine.Seq); it equals the pre-batch value when the batch
	// was empty or fully coalesced.
	Seq uint64
	// Updates holds the per-update effects, one entry per batch position
	// (coalesced positions carry a zero UpdateInfo with Coalesced set).
	// Updates is nil when Recomputed is set.
	Updates []UpdateInfo
	// Total aggregates the batch: CoreChanged lists every vertex whose core
	// number changed at least once during the batch, deduplicated, in
	// first-change order (ascending vertex order when Recomputed); Visited
	// sums the per-update search-space sizes.
	Total UpdateInfo
}

// Apply executes the batch under a single write-lock acquisition.
//
// The batch is validated in full before any mutation: every update is
// checked (in order, accounting for the effect of the preceding updates in
// the batch) for self loops, negative vertex ids, duplicate insertions and
// missing removals. On a validation failure Apply returns a *BatchError
// wrapping the corresponding sentinel and the engine is left unchanged.
// Validation also coalesces self-annihilating update pairs — see
// BatchInfo.Coalesced for the exact semantics.
//
// On success, subscribers (see Subscribe) receive one CoreChange event per
// affected vertex per update (or per net-changed vertex when the batch was
// applied by recomputation — see BatchInfo.Recomputed).
//
// Large batches on the order-based engine may be executed by the parallel
// conflict-grouped runtime (see WithWorkers); its results — core numbers,
// BatchInfo, subscriber events, and the maintained k-order — are identical
// to sequential execution.
func (e *Engine) Apply(batch Batch) (BatchInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyLocked(batch)
}

// AddEdges applies a pure-insertion batch built from an edge list.
func (e *Engine) AddEdges(edges [][2]int) (BatchInfo, error) {
	batch := make(Batch, len(edges))
	for i, ed := range edges {
		batch[i] = Add(ed[0], ed[1])
	}
	return e.Apply(batch)
}

// RemoveEdges applies a pure-removal batch built from an edge list.
func (e *Engine) RemoveEdges(edges [][2]int) (BatchInfo, error) {
	batch := make(Batch, len(edges))
	for i, ed := range edges {
		batch[i] = Remove(ed[0], ed[1])
	}
	return e.Apply(batch)
}

// applyLocked validates a batch, picks an execution strategy, applies it,
// and feeds the apply hook. Callers hold the write lock.
func (e *Engine) applyLocked(batch Batch) (BatchInfo, error) {
	skip, coalesced, err := e.validateBatch(batch)
	if err != nil {
		return BatchInfo{Seq: e.seq}, err
	}
	info, err := e.executeGuarded(batch, skip, coalesced)
	// Publish the post-batch epoch before the durability hook runs, so
	// readers never wait behind a WAL fsync. Total.CoreChanged is the
	// complete changed-vertex list on every execution strategy, including
	// a mid-batch error's applied prefix; the panic path published its own
	// full rebuild inside containPanic (its diff is relative to the
	// panic-time cores, not the last epoch, so no patch list exists).
	if _, panicked := err.(*PanicError); !panicked {
		e.publishEpoch(info.Total.CoreChanged)
	}
	if err == nil && info.Applied > 0 && !e.replaying && (e.hook != nil || e.tap != nil) {
		err = e.runApplyHook(batch, skip, &info)
	}
	return info, err
}

// executeGuarded runs the apply probe (the engine surface of the fault
// plane, see SetApplyProbe) and then executes the batch with panic
// containment: a panic anywhere in execution — the probe, the maintainer,
// the parallel runtime — is recovered, the maintained cores and k-order
// are recomputed wholesale from the graph (the one repair that needs no
// assumptions about how far the batch got), and the batch is rejected
// with a *PanicError. Callers hold the write lock.
func (e *Engine) executeGuarded(batch Batch, skip []bool, coalesced int) (info BatchInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			info, err = e.containPanic(r)
		}
	}()
	if e.probe != nil {
		e.probe(len(batch) - coalesced)
	}
	return e.executeBatch(batch, skip, coalesced)
}

// containPanic repairs the engine after a batch execution panic. The
// graph structures are mutated update-by-update, so after an arbitrary
// panic they reflect some applied prefix of the batch; the maintained
// cores/k-order, however, may be mid-flight. Reseeding recomputes them
// from the graph as it stands, and subscribers receive diff events for
// any repair-visible core changes (panics injected via the apply probe
// fire pre-mutation, so their diff is empty). If the repair itself
// panics, the engine is beyond recovery and the panic propagates.
func (e *Engine) containPanic(r any) (BatchInfo, error) {
	oldCores := e.m.Cores()
	switch impl := e.m.(type) {
	case orderImpl:
		impl.m.Reseed()
	case travImpl:
		e.m = travImpl{traversal.New(e.g, e.cfg.hops)}
	}
	var changed []int
	for v := 0; v < e.g.NumVertices(); v++ {
		old := 0
		if v < len(oldCores) {
			old = oldCores[v]
		}
		if e.m.Core(v) != old {
			changed = append(changed, v)
		}
	}
	e.notifyDiff(changed, oldCores)
	e.exec.Panics++
	e.publishEpochFull()
	return BatchInfo{Seq: e.seq}, &PanicError{Value: r, Stack: debug.Stack()}
}

// executeBatch routes a validated batch to an execution strategy.
// Single-update batches always take the sequential path: recomputation
// can never beat one incremental update, and AddEdge/RemoveEdge rely on
// the per-update BatchInfo.Updates entry that the rebuild path elides.
func (e *Engine) executeBatch(batch Batch, skip []bool, coalesced int) (BatchInfo, error) {
	applied := len(batch) - coalesced
	if impl, ok := e.m.(orderImpl); ok && applied > 1 {
		adds, removes := 0, 0
		for i, up := range batch {
			if skip != nil && skip[i] {
				continue
			}
			if up.Op == OpAdd {
				adds++
			} else {
				removes++
			}
		}
		if e.shouldRebuild(applied, adds, removes) {
			return e.applyRebuild(impl, batch, skip, coalesced)
		}
		if e.workers > 1 && applied >= e.parMin {
			return e.applyParallel(impl, batch, skip, coalesced)
		}
	}
	return e.applySequential(batch, skip, coalesced)
}

// applySequential replays the surviving updates one at a time through the
// maintainer — the reference execution strategy the other two must match
// observably (and, for the parallel runtime, bit-identically).
func (e *Engine) applySequential(batch Batch, skip []bool, coalesced int) (BatchInfo, error) {
	info := BatchInfo{Coalesced: coalesced}
	if len(batch) > 0 {
		info.Updates = make([]UpdateInfo, 0, len(batch))
	}
	dedup := len(batch) > 1
	if dedup {
		e.dedupCur++
	}
	// The maintainers return Changed slices that alias their pooled scratch
	// (valid only until the next update), while BatchInfo escapes to the
	// caller indefinitely. Copy-on-return: all per-update CoreChanged
	// slices are carved out of one fresh per-batch buffer, costing O(1)
	// amortized allocations per batch instead of one per update. When the
	// buffer grows, earlier carved slices keep the old backing array —
	// they are never written again, so that is safe.
	var carve []int
	for i, up := range batch {
		if skip != nil && skip[i] {
			info.Updates = append(info.Updates, UpdateInfo{Coalesced: true})
			continue
		}
		var changed []int
		var visited int
		var err error
		if up.Op == OpAdd {
			changed, visited, err = e.m.Insert(up.U, up.V)
		} else {
			changed, visited, err = e.m.Remove(up.U, up.V)
		}
		if err != nil {
			// Unreachable after validation; reported structurally anyway so
			// callers can tell how far the batch got.
			info.Seq = e.seq
			return info, &BatchError{Index: i, Update: up, Err: err}
		}
		e.seq++
		e.exec.Sequential++
		e.notify(up.Op, changed)
		start := len(carve)
		carve = append(carve, changed...)
		info.Applied++
		info.Updates = append(info.Updates,
			UpdateInfo{CoreChanged: carve[start:len(carve):len(carve)], Visited: visited})
		info.Total.Visited += visited
		if !dedup {
			info.Total.CoreChanged = append(info.Total.CoreChanged, changed...)
		} else {
			e.dedupTotal(&info, changed)
		}
	}
	info.Seq = e.seq
	return info, nil
}

// dedupTotal appends changed vertices to info.Total.CoreChanged, keeping
// each vertex once (at its first change) via the epoch-stamped marks.
func (e *Engine) dedupTotal(info *BatchInfo, changed []int) {
	for _, v := range changed {
		for v >= len(e.dedupEp) {
			e.dedupEp = append(e.dedupEp, 0)
		}
		if e.dedupEp[v] != e.dedupCur {
			e.dedupEp[v] = e.dedupCur
			info.Total.CoreChanged = append(info.Total.CoreChanged, v)
		}
	}
}

// validateBatch checks the whole batch against the current graph plus the
// pending effect of earlier updates in the batch, without mutating anything.
// It also detects self-annihilating pairs: a valid update that exactly
// undoes a pending earlier update of the batch cancels both. The returned
// skip slice (aliasing engine scratch, valid until the next validation)
// marks cancelled positions; it is nil for single-update batches.
func (e *Engine) validateBatch(batch Batch) (skip []bool, coalesced int, err error) {
	// The overlay tracks edges whose presence diverges from the graph
	// because of earlier updates in this batch. Single-update batches (the
	// AddEdge/RemoveEdge fast path) skip it entirely.
	track := len(batch) > 1
	if track {
		e.val.init(len(batch))
		if cap(e.skipBuf) < len(batch) {
			e.skipBuf = make([]bool, len(batch))
		}
		skip = e.skipBuf[:len(batch)]
		clear(skip)
	}
	for i, up := range batch {
		u, v := up.U, up.V
		var cause error
		switch {
		case u < 0 || v < 0:
			cause = ErrVertexRange
		case u == v:
			cause = ErrSelfLoop
		}
		if cause != nil {
			return nil, 0, &BatchError{Index: i, Update: up, Err: cause}
		}
		var slot int
		present, overlaid := false, false
		pair := int32(-1)
		if track {
			slot, present, pair, overlaid = e.val.lookup(u, v)
		}
		if !overlaid {
			present = e.g.HasEdge(u, v)
		}
		switch up.Op {
		case OpAdd:
			if present {
				return nil, 0, &BatchError{Index: i, Update: up, Err: ErrDuplicateEdge}
			}
		case OpRemove:
			if !present {
				return nil, 0, &BatchError{Index: i, Update: up, Err: ErrMissingEdge}
			}
		default:
			return nil, 0, &BatchError{Index: i, Update: up, Err: fmt.Errorf("unknown op %d", up.Op)}
		}
		if !track {
			continue
		}
		if overlaid && pair >= 0 {
			// This valid update exactly undoes pending update `pair`: cancel
			// both. The slot's pending presence returns to the pre-pair
			// state, which for an alternating op sequence equals the value
			// this op would have stored; only the pairing index is cleared,
			// so the next update on this edge validates against the graph
			// state and cannot cancel into the annihilated pair.
			skip[i] = true
			skip[pair] = true
			coalesced += 2
			e.val.store(slot, u, v, up.Op == OpAdd, -1)
			continue
		}
		e.val.store(slot, u, v, up.Op == OpAdd, int32(i))
	}
	return skip, coalesced, nil
}

// overlay is an open-addressed hash table from a packed edge key to the
// edge's pending presence and the batch index of the update that produced
// it, reused across batches so validation costs one (amortized zero)
// allocation per Apply instead of per-update map inserts.
// Keys pack the sorted endpoint pair into one word; vertex ids are dense
// and the graph stores them as int32, so 32 bits per endpoint suffice.
// Key 0 would be the self loop (0,0), which validation rejects first, so 0
// safely marks empty slots.
type overlay struct {
	keys    []uint64
	present []bool
	idx     []int32 // batch index of the pending update; -1 = not cancellable
	shift   uint
}

func edgeKey(u, v int) uint64 {
	return uint64(uint32(min(u, v)))<<32 | uint64(uint32(max(u, v)))
}

// init clears the table and sizes it to at least 4n slots (load <= 1/4).
func (o *overlay) init(n int) {
	size, shift := 16, uint(60)
	for size < 4*n {
		size <<= 1
		shift--
	}
	o.shift = shift
	if cap(o.keys) >= size {
		o.keys = o.keys[:size]
		o.present = o.present[:size]
		o.idx = o.idx[:size]
		clear(o.keys)
	} else {
		o.keys = make([]uint64, size)
		o.present = make([]bool, size)
		o.idx = make([]int32, size)
	}
}

// lookup probes for edge (u, v), returning the slot where it lives or would
// live, its pending presence, the pending update's batch index (-1 when not
// cancellable), and whether the batch touched it before.
func (o *overlay) lookup(u, v int) (slot int, present bool, idx int32, overlaid bool) {
	key := edgeKey(u, v)
	mask := uint64(len(o.keys) - 1)
	i := (key * 0x9e3779b97f4a7c15) >> o.shift
	for o.keys[i] != 0 && o.keys[i] != key {
		i = (i + 1) & mask
	}
	return int(i), o.present[i], o.idx[i], o.keys[i] == key
}

// store records the pending presence of the edge at slot (from lookup).
func (o *overlay) store(slot int, u, v int, present bool, idx int32) {
	o.keys[slot] = edgeKey(u, v)
	o.present[slot] = present
	o.idx[slot] = idx
}

package kcore

import "fmt"

// Batched updates: Apply takes the engine's write lock once, pre-validates
// the whole batch against the current graph (tracking intra-batch effects),
// and only then mutates — a batch that fails validation leaves the engine
// untouched. Per-update maintenance reuses the maintainer's epoch-stamped
// scratch buffers, so a batch amortizes locking and bookkeeping over many
// updates without giving up the incremental per-edge algorithms.

// Op is the kind of one edge update.
type Op uint8

const (
	// OpAdd inserts an edge.
	OpAdd Op = iota
	// OpRemove deletes an edge.
	OpRemove
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	default:
		return "unknown"
	}
}

// Update is one edge insertion or removal.
type Update struct {
	Op   Op
	U, V int
}

// Add returns an edge-insertion update for use in a Batch.
func Add(u, v int) Update { return Update{Op: OpAdd, U: u, V: v} }

// Remove returns an edge-removal update for use in a Batch.
func Remove(u, v int) Update { return Update{Op: OpRemove, U: u, V: v} }

// Batch is an ordered sequence of edge updates applied as one locked
// operation. Updates may mix insertions and removals and may touch the same
// edge repeatedly (add then remove is valid; adding a present edge is not).
type Batch []Update

// BatchInfo aggregates the effect of an applied batch.
type BatchInfo struct {
	// Applied is the number of updates that were applied.
	Applied int
	// Seq is the engine's update sequence number after the last applied
	// update (see Engine.Seq); 0 when the batch was empty and no update had
	// ever been applied.
	Seq uint64
	// Updates holds the per-update effects in batch order.
	Updates []UpdateInfo
	// Total aggregates the batch: CoreChanged lists every vertex whose core
	// number changed at least once during the batch, deduplicated, in
	// first-change order; Visited sums the per-update search-space sizes.
	Total UpdateInfo
}

// Apply executes the batch under a single write-lock acquisition.
//
// The batch is validated in full before any mutation: every update is
// checked (in order, accounting for the effect of the preceding updates in
// the batch) for self loops, negative vertex ids, duplicate insertions and
// missing removals. On a validation failure Apply returns a *BatchError
// wrapping the corresponding sentinel and the engine is left unchanged.
//
// On success, subscribers (see Subscribe) receive one CoreChange event per
// affected vertex per update.
func (e *Engine) Apply(batch Batch) (BatchInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyLocked(batch)
}

// AddEdges applies a pure-insertion batch built from an edge list.
func (e *Engine) AddEdges(edges [][2]int) (BatchInfo, error) {
	batch := make(Batch, len(edges))
	for i, ed := range edges {
		batch[i] = Add(ed[0], ed[1])
	}
	return e.Apply(batch)
}

// RemoveEdges applies a pure-removal batch built from an edge list.
func (e *Engine) RemoveEdges(edges [][2]int) (BatchInfo, error) {
	batch := make(Batch, len(edges))
	for i, ed := range edges {
		batch[i] = Remove(ed[0], ed[1])
	}
	return e.Apply(batch)
}

// applyLocked validates and applies a batch. Callers hold the write lock.
func (e *Engine) applyLocked(batch Batch) (BatchInfo, error) {
	if err := e.validateBatch(batch); err != nil {
		return BatchInfo{Seq: e.seq}, err
	}
	info := BatchInfo{}
	if len(batch) > 0 {
		info.Updates = make([]UpdateInfo, 0, len(batch))
	}
	dedup := len(batch) > 1
	if dedup {
		e.dedupCur++
	}
	// The maintainers return Changed slices that alias their pooled scratch
	// (valid only until the next update), while BatchInfo escapes to the
	// caller indefinitely. Copy-on-return: all per-update CoreChanged
	// slices are carved out of one fresh per-batch buffer, costing O(1)
	// amortized allocations per batch instead of one per update. When the
	// buffer grows, earlier carved slices keep the old backing array —
	// they are never written again, so that is safe.
	var carve []int
	for i, up := range batch {
		var changed []int
		var visited int
		var err error
		if up.Op == OpAdd {
			changed, visited, err = e.m.Insert(up.U, up.V)
		} else {
			changed, visited, err = e.m.Remove(up.U, up.V)
		}
		if err != nil {
			// Unreachable after validation; reported structurally anyway so
			// callers can tell how far the batch got.
			info.Seq = e.seq
			return info, &BatchError{Index: i, Update: up, Err: err}
		}
		e.seq++
		e.notify(up.Op, changed)
		start := len(carve)
		carve = append(carve, changed...)
		info.Applied++
		info.Updates = append(info.Updates,
			UpdateInfo{CoreChanged: carve[start:len(carve):len(carve)], Visited: visited})
		info.Total.Visited += visited
		if !dedup {
			info.Total.CoreChanged = append(info.Total.CoreChanged, changed...)
		} else {
			for _, v := range changed {
				for v >= len(e.dedupEp) {
					e.dedupEp = append(e.dedupEp, 0)
				}
				if e.dedupEp[v] != e.dedupCur {
					e.dedupEp[v] = e.dedupCur
					info.Total.CoreChanged = append(info.Total.CoreChanged, v)
				}
			}
		}
	}
	info.Seq = e.seq
	return info, nil
}

// validateBatch checks the whole batch against the current graph plus the
// pending effect of earlier updates in the batch, without mutating anything.
func (e *Engine) validateBatch(batch Batch) error {
	// The overlay tracks edges whose presence diverges from the graph
	// because of earlier updates in this batch. Single-update batches (the
	// AddEdge/RemoveEdge fast path) skip it entirely.
	track := len(batch) > 1
	if track {
		e.val.init(len(batch))
	}
	for i, up := range batch {
		u, v := up.U, up.V
		var cause error
		switch {
		case u < 0 || v < 0:
			cause = ErrVertexRange
		case u == v:
			cause = ErrSelfLoop
		}
		if cause != nil {
			return &BatchError{Index: i, Update: up, Err: cause}
		}
		var slot int
		present, overlaid := false, false
		if track {
			slot, present, overlaid = e.val.lookup(u, v)
		}
		if !overlaid {
			present = e.g.HasEdge(u, v)
		}
		switch up.Op {
		case OpAdd:
			if present {
				return &BatchError{Index: i, Update: up, Err: ErrDuplicateEdge}
			}
		case OpRemove:
			if !present {
				return &BatchError{Index: i, Update: up, Err: ErrMissingEdge}
			}
		default:
			return &BatchError{Index: i, Update: up, Err: fmt.Errorf("unknown op %d", up.Op)}
		}
		if track {
			e.val.store(slot, u, v, up.Op == OpAdd)
		}
	}
	return nil
}

// overlay is an open-addressed hash table from a packed edge key to the
// edge's pending presence, reused across batches so validation costs one
// (amortized zero) allocation per Apply instead of per-update map inserts.
// Keys pack the sorted endpoint pair into one word; vertex ids are dense
// and the graph stores them as int32, so 32 bits per endpoint suffice.
// Key 0 would be the self loop (0,0), which validation rejects first, so 0
// safely marks empty slots.
type overlay struct {
	keys    []uint64
	present []bool
	shift   uint
}

func edgeKey(u, v int) uint64 {
	return uint64(uint32(min(u, v)))<<32 | uint64(uint32(max(u, v)))
}

// init clears the table and sizes it to at least 4n slots (load <= 1/4).
func (o *overlay) init(n int) {
	size, shift := 16, uint(60)
	for size < 4*n {
		size <<= 1
		shift--
	}
	o.shift = shift
	if cap(o.keys) >= size {
		o.keys = o.keys[:size]
		o.present = o.present[:size]
		clear(o.keys)
	} else {
		o.keys = make([]uint64, size)
		o.present = make([]bool, size)
	}
}

// lookup probes for edge (u, v), returning the slot where it lives or would
// live, its pending presence, and whether the batch touched it before.
func (o *overlay) lookup(u, v int) (slot int, present, overlaid bool) {
	key := edgeKey(u, v)
	mask := uint64(len(o.keys) - 1)
	i := (key * 0x9e3779b97f4a7c15) >> o.shift
	for o.keys[i] != 0 && o.keys[i] != key {
		i = (i + 1) & mask
	}
	return int(i), o.present[i], o.keys[i] == key
}

// store records the pending presence of the edge at slot (from lookup).
func (o *overlay) store(slot int, u, v int, present bool) {
	o.keys[slot] = edgeKey(u, v)
	o.present[slot] = present
}

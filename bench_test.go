package kcore

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (Section VII), wrapping the drivers in internal/bench
// at reduced workload size so `go test -bench=.` completes in minutes.
// Full-size (scaled-paper) runs are produced by cmd/kcore-bench; measured
// results are recorded in EXPERIMENTS.md.

import (
	"io"
	"math/rand/v2"
	"testing"

	"kcore/internal/bench"
	"kcore/internal/datasets"
	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/korder"
	"kcore/internal/traversal"
	"kcore/internal/workload"
)

// benchConfig is the reduced configuration used by the testing.B targets.
func benchConfig() bench.Config {
	return bench.Config{
		Out:      io.Discard,
		Edges:    300,
		Groups:   4,
		Hops:     []int{2, 3},
		Seed:     11,
		Datasets: datasets.Small(),
	}
}

func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.TableI(benchConfig())
	}
}

func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Fig1(benchConfig())
	}
}

func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Fig2(benchConfig())
	}
}

func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Fig5(benchConfig())
	}
}

func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Fig9(benchConfig())
	}
}

func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Fig10(benchConfig())
	}
}

func BenchmarkFig11(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Edges = 150
	for i := 0; i < b.N; i++ {
		bench.Fig11(cfg)
	}
}

func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Edges = 100
	for i := 0; i < b.N; i++ {
		bench.Fig12(cfg)
	}
}

func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	cfg.Edges = 200
	for i := 0; i < b.N; i++ {
		bench.TableII(cfg)
	}
}

func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.TableIII(benchConfig())
	}
}

// --- Micro-benchmarks: per-update cost of each algorithm on a fixed
// workload (the unit quantity behind Table II). ---

type microFixture struct {
	g     *graph.Undirected
	edges []workload.Edge
}

func microGraph(kind string) microFixture {
	var g *graph.Undirected
	switch kind {
	case "social":
		g = gen.BarabasiAlbert(5000, 8, 3)
	case "web":
		g = gen.RMAT(13, 40000, 0.57, 0.19, 0.19, 3)
	case "road":
		g = gen.Grid(70, 70, 0.62, 0.05, 3)
	default:
		g = gen.ErdosRenyi(5000, 20000, 3)
	}
	edges := workload.SampleEdges(g, 2000, 5)
	workload.RemoveAll(g, edges)
	return microFixture{g: g, edges: edges}
}

func benchmarkOrderInsert(b *testing.B, kind string) {
	b.ReportAllocs()
	fx := microGraph(kind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := fx.g.Clone()
		m := korder.New(g, korder.Options{Seed: 1})
		b.StartTimer()
		for _, e := range fx.edges {
			if _, err := m.Insert(e.U, e.V); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(fx.edges)), "edges/op")
}

func benchmarkOrderRemove(b *testing.B, kind string) {
	b.ReportAllocs()
	fx := microGraph(kind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := fx.g.Clone()
		m := korder.New(g, korder.Options{Seed: 1})
		for _, e := range fx.edges {
			if _, err := m.Insert(e.U, e.V); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for _, e := range fx.edges {
			if _, err := m.Remove(e.U, e.V); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(fx.edges)), "edges/op")
}

func benchmarkTravInsert(b *testing.B, kind string, hops int) {
	b.ReportAllocs()
	fx := microGraph(kind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := fx.g.Clone()
		m := traversal.New(g, hops)
		b.StartTimer()
		for _, e := range fx.edges {
			if _, err := m.Insert(e.U, e.V); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(fx.edges)), "edges/op")
}

func BenchmarkOrderInsertSocial(b *testing.B)  { benchmarkOrderInsert(b, "social") }
func BenchmarkOrderInsertWeb(b *testing.B)     { benchmarkOrderInsert(b, "web") }
func BenchmarkOrderInsertRoad(b *testing.B)    { benchmarkOrderInsert(b, "road") }
func BenchmarkOrderRemoveSocial(b *testing.B)  { benchmarkOrderRemove(b, "social") }
func BenchmarkTravInsertSocialH2(b *testing.B) { benchmarkTravInsert(b, "social", 2) }
func BenchmarkTravInsertRoadH2(b *testing.B)   { benchmarkTravInsert(b, "road", 2) }

// BenchmarkEngineAddRemove measures the public API round trip on a mixed
// stream (order-based engine).
func BenchmarkEngineAddRemove(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(WithSeed(2))
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.IntN(2000), rng.IntN(2000)
		if u == v {
			continue
		}
		if e.HasEdge(u, v) {
			if _, err := e.RemoveEdge(u, v); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := e.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Batch API: Apply amortizes locking, validation and result assembly
// over the whole batch; the per-edge loop pays them per call. Same 10k-edge
// insertion workload either way. ---

func batchBenchEdges() [][2]int {
	g := gen.BarabasiAlbert(3000, 4, 13)
	edges := g.Edges()
	if len(edges) > 10000 {
		edges = edges[:10000]
	}
	return edges
}

// BenchmarkApplyBatch10k measures the default engine: a batch this large
// relative to the graph is routed to the wholesale-recompute path by the
// cost model (see BatchInfo.Recomputed). BenchmarkApplyBatch10kMaintain
// pins the pre-PR 3 incremental path for comparison.
func BenchmarkApplyBatch10k(b *testing.B) {
	b.ReportAllocs()
	edges := batchBenchEdges()
	batch := make(Batch, len(edges))
	for i, ed := range edges {
		batch[i] = Add(ed[0], ed[1])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine(WithSeed(1))
		b.StartTimer()
		if _, err := e.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(edges)), "edges/op")
}

func BenchmarkApplyBatch10kMaintain(b *testing.B) {
	b.ReportAllocs()
	edges := batchBenchEdges()
	batch := make(Batch, len(edges))
	for i, ed := range edges {
		batch[i] = Add(ed[0], ed[1])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine(WithSeed(1), WithWorkers(1), WithRebuildThreshold(-1, 0))
		b.StartTimer()
		if _, err := e.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(edges)), "edges/op")
}

func BenchmarkPerEdgeAdd10k(b *testing.B) {
	b.ReportAllocs()
	edges := batchBenchEdges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine(WithSeed(1))
		b.StartTimer()
		for _, ed := range edges {
			if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(edges)), "edges/op")
}

// BenchmarkIndexBuild measures initial index construction (Table III's
// unit operation) on the social micro graph.
func BenchmarkIndexBuildOrder(b *testing.B) {
	b.ReportAllocs()
	g := gen.BarabasiAlbert(5000, 8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = korder.New(g.Clone(), korder.Options{Seed: 1})
	}
}

func BenchmarkIndexBuildTravH2(b *testing.B) {
	b.ReportAllocs()
	g := gen.BarabasiAlbert(5000, 8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = traversal.New(g.Clone(), 2)
	}
}

package kcore

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	e := NewEngine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	info, err := e.AddEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.CoreChanged) != 3 {
		t.Fatalf("CoreChanged=%v", info.CoreChanged)
	}
	if e.Core(0) != 2 {
		t.Fatalf("Core(0)=%d", e.Core(0))
	}
	if _, err := e.RemoveEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if e.Core(0) != 1 {
		t.Fatalf("Core(0)=%d after removal", e.Core(0))
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdges(t *testing.T) {
	e, err := FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumVertices() != 4 || e.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", e.NumVertices(), e.NumEdges())
	}
	if e.Core(3) != 1 || e.Core(2) != 2 {
		t.Fatalf("cores=%v", e.Cores())
	}
	if _, err := FromEdges([][2]int{{0, 0}}); err == nil {
		t.Fatal("self loop should fail")
	}
	if _, err := FromEdges([][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("duplicate edge should fail")
	}
}

func TestLoadAndSave(t *testing.T) {
	in := "# demo\n0 1\n1 2\n0 2\n"
	e, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if e.Degeneracy() != 2 {
		t.Fatalf("degeneracy=%d", e.Degeneracy())
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.NumEdges() != e.NumEdges() {
		t.Fatal("round trip lost edges")
	}
	if _, err := Load(strings.NewReader("bad line\n")); err == nil {
		t.Fatal("malformed input should fail")
	}
}

func TestAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	ord := NewEngine(WithAlgorithm(OrderBased), WithSeed(5))
	trv := NewEngine(WithAlgorithm(Traversal), WithTraversalHops(3))
	const n = 25
	for step := 0; step < 300; step++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if ord.HasEdge(u, v) {
			if _, err := ord.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if _, err := trv.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := ord.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if _, err := trv.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		for x := 0; x < n; x++ {
			if ord.Core(x) != trv.Core(x) {
				t.Fatalf("step %d: core(%d) disagreement %d vs %d",
					step, x, ord.Core(x), trv.Core(x))
			}
		}
	}
	if err := ord.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := trv.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionCombos(t *testing.T) {
	for _, h := range []Heuristic{SmallDegPlusFirst, LargeDegPlusFirst, RandomDegPlusFirst} {
		for _, s := range []OrderStructure{TreapOrder, TagOrder} {
			e := NewEngine(WithHeuristic(h), WithOrderStructure(s), WithSeed(9))
			mustAdd(t, e, 0, 1)
			mustAdd(t, e, 1, 2)
			mustAdd(t, e, 0, 2)
			if e.Core(1) != 2 {
				t.Fatalf("h=%v s=%v: core=%d", h, s, e.Core(1))
			}
			if err := e.Validate(); err != nil {
				t.Fatalf("h=%v s=%v: %v", h, s, err)
			}
		}
	}
	if _, err := FromEdges(nil, WithAlgorithm(Traversal), WithTraversalHops(1)); err == nil {
		t.Fatal("hops=1 should fail")
	}
	if _, err := FromEdges(nil, WithAlgorithm(Algorithm(9))); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestAlgorithmString(t *testing.T) {
	if OrderBased.String() != "order-based" || Traversal.String() != "traversal" ||
		Algorithm(7).String() != "unknown" {
		t.Fatal("Algorithm.String broken")
	}
}

func TestQueries(t *testing.T) {
	e, err := FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Algorithm() != OrderBased {
		t.Fatal("default algorithm should be order-based")
	}
	if !e.HasEdge(0, 1) || e.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
	if e.Degree(2) != 3 {
		t.Fatalf("Degree(2)=%d", e.Degree(2))
	}
	nb := e.Neighbors(2)
	if len(nb) != 3 {
		t.Fatalf("Neighbors(2)=%v", nb)
	}
	kc := e.KCore(2)
	if len(kc) != 3 {
		t.Fatalf("KCore(2)=%v", kc)
	}
	if len(e.KCore(5)) != 0 {
		t.Fatal("KCore(5) should be empty")
	}
	if len(e.Edges()) != 4 {
		t.Fatalf("Edges()=%v", e.Edges())
	}
	if e.Core(-1) != 0 || e.Core(1000) != 0 {
		t.Fatal("out-of-range Core should be 0")
	}
}

func TestErrorsWrapped(t *testing.T) {
	e := NewEngine()
	mustAdd(t, e, 0, 1)
	if _, err := e.AddEdge(0, 1); err == nil || !strings.Contains(err.Error(), "kcore:") {
		t.Fatalf("duplicate add error = %v", err)
	}
	if _, err := e.RemoveEdge(5, 6); err == nil || !strings.Contains(err.Error(), "kcore:") {
		t.Fatalf("missing remove error = %v", err)
	}
}

func TestDecomposeStatic(t *testing.T) {
	cores, err := Decompose([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 2, 1}
	for v := range want {
		if cores[v] != want[v] {
			t.Fatalf("cores=%v want %v", cores, want)
		}
	}
	if _, err := Decompose([][2]int{{1, 1}}); err == nil {
		t.Fatal("self loop should fail")
	}
}

// TestConcurrentAccess exercises the engine from multiple goroutines; run
// with -race to verify the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	e := NewEngine(WithSeed(3))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 9))
			for i := 0; i < 200; i++ {
				u, v := rng.IntN(20), rng.IntN(20)
				if u == v {
					continue
				}
				switch rng.IntN(3) {
				case 0:
					_, _ = e.AddEdge(u, v)
				case 1:
					_, _ = e.RemoveEdge(u, v)
				default:
					_ = e.Core(u)
					_ = e.Degeneracy()
				}
			}
		}()
	}
	wg.Wait()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCommunityQueries(t *testing.T) {
	// Two K4s joined through a low-core middle vertex (the paper's Fig. 3
	// shape: 3-subcores hang off a lower-core region): the 3-core has two
	// components that merge at lower levels.
	var edges [][2]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]int{i, j}, [2]int{4 + i, 4 + j})
		}
	}
	edges = append(edges, [2]int{3, 8}, [2]int{8, 4}) // middle vertex 8, core 2
	e, err := FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	comm := e.Community(0, 3)
	if len(comm) != 4 {
		t.Fatalf("Community(0,3)=%v", comm)
	}
	commB := e.Community(5, 3)
	if len(commB) != 4 || commB[0] == comm[0] {
		t.Fatalf("Community(5,3)=%v overlaps %v", commB, comm)
	}
	// At k<=2 the middle vertex merges everything into one community.
	if len(e.Community(0, 2)) != 9 {
		t.Fatalf("Community(0,2)=%v", e.Community(0, 2))
	}
	comps := e.CoreComponents(3)
	if len(comps) != 2 {
		t.Fatalf("CoreComponents(3)=%v", comps)
	}
	if len(e.CoreComponents(5)) != 0 {
		t.Fatal("CoreComponents(5) should be empty")
	}
	if e.Community(-5, 2) != nil {
		t.Fatal("unknown vertex community should be nil")
	}
}

func TestGreedyColoring(t *testing.T) {
	for _, alg := range []Algorithm{OrderBased, Traversal} {
		e := NewEngine(WithAlgorithm(alg), WithSeed(3))
		// K4 needs exactly 4 colors.
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				mustAdd(t, e, i, j)
			}
		}
		mustAdd(t, e, 3, 4) // pendant
		colors, k := e.GreedyColoring()
		if k != 4 {
			t.Fatalf("%v: colors=%d want 4", alg, k)
		}
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				if colors[u] == colors[v] {
					t.Fatalf("%v: K4 coloring improper", alg)
				}
			}
		}
		if colors[4] == colors[3] {
			t.Fatalf("%v: pendant conflicts", alg)
		}
	}
}

func TestSaveLoadIndex(t *testing.T) {
	e, err := FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if e.Core(v) != e2.Core(v) {
			t.Fatalf("core(%d): %d vs %d", v, e.Core(v), e2.Core(v))
		}
	}
	// Restored engine keeps maintaining.
	if _, err := e2.AddEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := e2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Traversal engines do not support snapshots.
	tr := NewEngine(WithAlgorithm(Traversal))
	if err := tr.SaveIndex(&bytes.Buffer{}); err == nil {
		t.Fatal("traversal SaveIndex should fail")
	}
	if _, err := LoadIndex(strings.NewReader("junk"), WithAlgorithm(Traversal)); err == nil {
		t.Fatal("LoadIndex with traversal should fail")
	}
	if _, err := LoadIndex(strings.NewReader("junk")); err == nil {
		t.Fatal("junk index should fail")
	}
}

func TestSnapshotWithTagOrder(t *testing.T) {
	e, err := FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}},
		WithOrderStructure(TagOrder), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(&buf, WithOrderStructure(TagOrder), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if e2.Core(3) != 3 {
		t.Fatalf("core(3)=%d want 3", e2.Core(3))
	}
	if err := e2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVertexOps(t *testing.T) {
	e, err := FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	v, info, err := e.AddVertexWithEdges([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || e.Core(v) != 3 {
		t.Fatalf("v=%d core=%d", v, e.Core(v))
	}
	if len(info.CoreChanged) == 0 {
		t.Fatal("no core changes reported")
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicate neighbor in the list fails atomically (nothing applied).
	if _, _, err := e.AddVertexWithEdges([]int{0, 0}); err == nil {
		t.Fatal("duplicate neighbor should fail")
	}
	if _, err := e.RemoveVertex(3); err != nil {
		t.Fatal(err)
	}
	if e.Core(3) != 0 || e.Degree(3) != 0 {
		t.Fatalf("vertex 3 not disconnected: core=%d deg=%d", e.Core(3), e.Degree(3))
	}
	// Removing an isolated/unknown vertex is a no-op.
	if _, err := e.RemoveVertex(999); err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func mustAdd(t testing.TB, e *Engine, u, v int) {
	t.Helper()
	if _, err := e.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

// Package traversal implements the state-of-the-art baseline the paper
// compares against: the traversal core-maintenance algorithm of Sariyüce et
// al. (PVLDB'13), including the VLDBJ'16 multi-hop enhancement (Trav-h).
//
// The maintainer keeps core numbers plus the residential core degrees
// rcd^1..rcd^h, where rcd^1 = mcd, rcd^2 = pcd, and
//
//	rcd^i(u) = |{w in nbr(u): core(w) > core(u) or
//	             (core(w) == core(u) and rcd^{i-1}(w) > core(w))}|.
//
// Insertion searches for V* with an expand–shrink DFS rooted at the
// lower-core endpoint, using cd initialized from rcd^h and eviction
// propagation; removal peels with cd initialized from mcd. After every
// update the rcd values are repaired over the h-hop neighborhood of the
// affected vertices — the maintenance cost the paper identifies as this
// algorithm's bottleneck (it grows with h and with vertex degrees).
package traversal

import (
	"fmt"

	"kcore/internal/decomp"
	"kcore/internal/graph"
)

// Maintainer is the traversal-algorithm counterpart of korder.Maintainer.
type Maintainer struct {
	g    *graph.Undirected
	core []int
	rcd  [][]int // rcd[i] = rcd^{i+1}; rcd[0] = mcd, rcd[1] = pcd
	hops int

	// repairRCD scratch: epoch-stamped membership plus reusable buffers.
	mark     []uint64
	epoch    uint64
	region   []int
	frontier []int

	// Per-update search scratch (epoch-stamped).
	visEp []uint64
	eviEp []uint64
	cdEp  []uint64
	cdVal []int
	opEp  uint64

	stats Stats
}

func (m *Maintainer) growScratch() {
	n := m.g.NumVertices()
	for len(m.visEp) < n {
		m.visEp = append(m.visEp, 0)
		m.eviEp = append(m.eviEp, 0)
		m.cdEp = append(m.cdEp, 0)
		m.cdVal = append(m.cdVal, 0)
	}
}

func (m *Maintainer) visited(v int) bool { return m.visEp[v] == m.opEp }
func (m *Maintainer) evicted(v int) bool { return m.eviEp[v] == m.opEp }
func (m *Maintainer) cd(v int) int {
	if m.cdEp[v] == m.opEp {
		return m.cdVal[v]
	}
	return 0
}
func (m *Maintainer) setCD(v, x int) {
	m.cdEp[v] = m.opEp
	m.cdVal[v] = x
}

// Stats accumulates work counters across the maintainer's lifetime.
type Stats struct {
	Inserts       int64
	Removes       int64
	VisitedInsert int64 // |V'|: vertices visited by the insertion DFS
	ChangedInsert int64 // |V*|
	ChangedRemove int64
	RCDRepaired   int64 // vertices whose rcd values were recomputed
}

// UpdateResult describes one maintained update.
type UpdateResult struct {
	K       int
	Changed []int
	Visited int // insertion: |V'| (DFS-visited); removal: |V*|
}

// New builds a traversal maintainer with the given hop count h >= 2
// (h=2 is the PVLDB'13 algorithm; larger h is the VLDBJ'16 enhancement).
func New(g *graph.Undirected, hops int) *Maintainer {
	if hops < 2 {
		panic(fmt.Sprintf("traversal: hops must be >= 2, got %d", hops))
	}
	m := &Maintainer{g: g, hops: hops}
	m.core = decomp.Cores(g)
	m.rcd = make([][]int, hops)
	n := g.NumVertices()
	for i := range m.rcd {
		m.rcd[i] = make([]int, n)
	}
	for v := 0; v < n; v++ {
		m.rcd[0][v] = m.computeRCD1(v)
	}
	for i := 1; i < hops; i++ {
		for v := 0; v < n; v++ {
			m.rcd[i][v] = m.computeRCDNext(i, v)
		}
	}
	return m
}

// Hops returns the configured hop count h.
func (m *Maintainer) Hops() int { return m.hops }

// Graph returns the underlying graph.
func (m *Maintainer) Graph() *graph.Undirected { return m.g }

// Core returns the current core number of v.
func (m *Maintainer) Core(v int) int {
	if v < 0 || v >= len(m.core) {
		return 0
	}
	return m.core[v]
}

// Cores returns a copy of all core numbers.
func (m *Maintainer) Cores() []int {
	out := make([]int, len(m.core))
	copy(out, m.core)
	return out
}

// MCD returns the maintained mcd (= rcd^1) of v.
func (m *Maintainer) MCD(v int) int { return m.rcd[0][v] }

// PCD returns the maintained pcd (= rcd^2) of v.
func (m *Maintainer) PCD(v int) int { return m.rcd[1][v] }

// Stats returns accumulated counters.
func (m *Maintainer) Stats() Stats { return m.stats }

// ResetStats zeroes accumulated counters.
func (m *Maintainer) ResetStats() { m.stats = Stats{} }

// EnsureVertex grows the maintained state to include v.
func (m *Maintainer) EnsureVertex(v int) {
	if v < 0 {
		return
	}
	m.g.EnsureVertex(v)
	for len(m.core) < m.g.NumVertices() {
		m.core = append(m.core, 0)
		for i := range m.rcd {
			m.rcd[i] = append(m.rcd[i], 0)
		}
	}
}

func (m *Maintainer) computeRCD1(v int) int {
	c := 0
	for _, w := range m.g.Neighbors(v) {
		if m.core[w] >= m.core[v] {
			c++
		}
	}
	return c
}

// computeRCDNext computes rcd^{i+1}(v) from the stored rcd^i values.
func (m *Maintainer) computeRCDNext(i, v int) int {
	c := 0
	for _, w32 := range m.g.Neighbors(v) {
		w := int(w32)
		if m.core[w] > m.core[v] || (m.core[w] == m.core[v] && m.rcd[i-1][w] > m.core[w]) {
			c++
		}
	}
	return c
}

// repairRCD recomputes rcd^1..rcd^h over the expanding neighborhood of the
// seed set: rcd^1 changes only for seeds and their neighbors, rcd^2 one hop
// further, and so on. This is the baseline's per-update index-maintenance
// cost — it grows with h and with the degrees around the update, which is
// exactly the bottleneck the paper identifies (Section IV-B).
func (m *Maintainer) repairRCD(seeds []int) {
	if n := m.g.NumVertices(); len(m.mark) < n {
		m.mark = append(m.mark, make([]uint64, n-len(m.mark))...)
	}
	m.epoch++
	m.region = m.region[:0]
	m.frontier = m.frontier[:0]
	add := func(v int) {
		if m.mark[v] != m.epoch {
			m.mark[v] = m.epoch
			m.region = append(m.region, v)
			m.frontier = append(m.frontier, v)
		}
	}
	for _, s := range seeds {
		add(s)
	}
	// expand grows the region by one hop; frontier holds only the newly
	// added vertices so each expansion is proportional to the boundary.
	expand := func() {
		prev := m.frontier
		m.frontier = nil
		for _, v := range prev {
			for _, w := range m.g.Neighbors(v) {
				if m.mark[w] != m.epoch {
					m.mark[w] = m.epoch
					m.region = append(m.region, int(w))
					m.frontier = append(m.frontier, int(w))
				}
			}
		}
	}
	expand() // rcd^1 region: seeds + their neighbors
	for i := 0; i < m.hops; i++ {
		if i > 0 {
			expand()
		}
		for _, v := range m.region {
			if i == 0 {
				m.rcd[0][v] = m.computeRCD1(v)
			} else {
				m.rcd[i][v] = m.computeRCDNext(i, v)
			}
		}
		m.stats.RCDRepaired += int64(len(m.region))
	}
}

// Insert adds edge (u, v) and updates cores and rcd values. The returned
// Visited is |V'|, the number of vertices visited by the DFS — the quantity
// plotted in the paper's Figures 1 and 2.
func (m *Maintainer) Insert(u, v int) (UpdateResult, error) {
	m.EnsureVertex(u)
	m.EnsureVertex(v)
	if err := m.g.AddEdge(u, v); err != nil {
		return UpdateResult{}, err
	}
	m.stats.Inserts++
	// Reflect the new edge in the rcd index before searching.
	m.repairRCD([]int{u, v})
	root := u
	if m.core[v] < m.core[u] {
		root = v
	}
	K := m.core[root]
	res := UpdateResult{K: K}

	// Expand–shrink DFS (Section IV-A).
	m.growScratch()
	m.opEp++
	var stack, allVisited []int
	// counted reports whether z contributes to a same-level neighbor's cd:
	// the rcd^h criterion counts z iff rcd^{h-1}(z) > core(z).
	counted := func(z int) bool { return m.rcd[m.hops-2][z] > K }
	visit := func(w int) {
		m.visEp[w] = m.opEp
		allVisited = append(allVisited, w)
		// cd(w) starts from the rcd^h criterion but must exclude vertices
		// already evicted earlier in this update (their credit is gone).
		c := 0
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if m.core[z] > K || (m.core[z] == K && counted(z) && !m.evicted(z)) {
				c++
			}
		}
		m.setCD(w, c)
		stack = append(stack, w)
	}
	// propagate evicts w and cascades: visited, non-evicted neighbors that
	// gave cd credit to w's eviction lose one unit; w only removes credit
	// from neighbors it was counted for (the rcd^h criterion).
	var propagate func(w int)
	propagate = func(w int) {
		if m.evicted(w) {
			return
		}
		m.eviEp[w] = m.opEp
		if !counted(w) {
			return // w never contributed cd credit to same-level neighbors
		}
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if m.core[z] != K || !m.visited(z) || m.evicted(z) {
				continue
			}
			m.setCD(z, m.cd(z)-1)
			if m.cd(z) <= K {
				propagate(z)
			}
		}
	}
	if m.rcd[0][root] > K {
		visit(root)
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if m.evicted(w) {
			continue
		}
		if m.cd(w) > K {
			for _, z32 := range m.g.Neighbors(w) {
				z := int(z32)
				if !m.visited(z) && m.core[z] == K && m.rcd[0][z] > K {
					visit(z)
				}
			}
		} else {
			propagate(w)
		}
	}
	var vstar []int
	for _, w := range allVisited {
		if !m.evicted(w) {
			vstar = append(vstar, w)
		}
	}
	for _, w := range vstar {
		m.core[w] = K + 1
	}
	if len(vstar) > 0 {
		m.repairRCD(vstar)
	}
	res.Changed = vstar
	res.Visited = len(allVisited)
	m.stats.VisitedInsert += int64(len(allVisited))
	m.stats.ChangedInsert += int64(len(vstar))
	return res, nil
}

// Remove deletes edge (u, v) and updates cores and rcd values via the
// peeling routine of Section IV-B.
func (m *Maintainer) Remove(u, v int) (UpdateResult, error) {
	if err := m.g.RemoveEdge(u, v); err != nil {
		return UpdateResult{}, err
	}
	m.stats.Removes++
	m.repairRCD([]int{u, v})
	K := m.core[u]
	if m.core[v] < K {
		K = m.core[v]
	}
	res := UpdateResult{K: K}

	inVStar := make(map[int]bool, 8)
	cd := make(map[int]int, 8)
	touch := func(w int) int {
		if c, ok := cd[w]; ok {
			return c
		}
		cd[w] = m.rcd[0][w]
		return cd[w]
	}
	var vstar, stack []int
	dispose := func(w int) {
		inVStar[w] = true
		m.core[w] = K - 1
		vstar = append(vstar, w)
		stack = append(stack, w)
	}
	for _, r := range []int{u, v} {
		if m.core[r] == K && !inVStar[r] && touch(r) < K {
			dispose(r)
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if m.core[z] != K || inVStar[z] {
				continue
			}
			c := touch(z) - 1
			cd[z] = c
			if c < K {
				dispose(z)
			}
		}
	}
	if len(vstar) > 0 {
		m.repairRCD(vstar)
	}
	res.Changed = vstar
	res.Visited = len(vstar)
	m.stats.ChangedRemove += int64(len(vstar))
	return res, nil
}

// CheckInvariants validates cores and all rcd levels against recomputation.
func (m *Maintainer) CheckInvariants() error {
	if err := decomp.Validate(m.g, m.core); err != nil {
		return err
	}
	n := m.g.NumVertices()
	for v := 0; v < n; v++ {
		if want := m.computeRCD1(v); m.rcd[0][v] != want {
			return fmt.Errorf("traversal: rcd1(%d) = %d, want %d", v, m.rcd[0][v], want)
		}
	}
	for i := 1; i < m.hops; i++ {
		for v := 0; v < n; v++ {
			if want := m.computeRCDNext(i, v); m.rcd[i][v] != want {
				return fmt.Errorf("traversal: rcd%d(%d) = %d, want %d", i+1, v, m.rcd[i][v], want)
			}
		}
	}
	return nil
}

package traversal

import (
	"errors"
	"math/rand/v2"
	"testing"

	"kcore/internal/graph"
	"kcore/internal/korder"
)

func newMaint(t testing.TB, g *graph.Undirected, hops int) *Maintainer {
	t.Helper()
	m := New(g, hops)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("initial invariants (h=%d): %v", hops, err)
	}
	return m
}

func TestNewPanicsOnBadHops(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hops < 2")
		}
	}()
	New(graph.New(1), 1)
}

func TestInsertTriangle(t *testing.T) {
	for _, h := range []int{2, 3, 4} {
		g := graph.New(3)
		m := newMaint(t, g, h)
		mustInsert(t, m, 0, 1)
		mustInsert(t, m, 1, 2)
		res := mustInsert(t, m, 0, 2)
		if len(res.Changed) != 3 {
			t.Fatalf("h=%d: V* = %v", h, res.Changed)
		}
		for v := 0; v < 3; v++ {
			if m.Core(v) != 2 {
				t.Fatalf("h=%d: core(%d)=%d", h, v, m.Core(v))
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if m.Hops() != h {
			t.Fatalf("Hops()=%d", m.Hops())
		}
	}
}

func TestRemoveTriangle(t *testing.T) {
	g := graph.New(3)
	mustAddRaw(t, g, 0, 1)
	mustAddRaw(t, g, 1, 2)
	mustAddRaw(t, g, 0, 2)
	m := newMaint(t, g, 2)
	res, err := m.Remove(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 3 {
		t.Fatalf("V* = %v", res.Changed)
	}
	for v := 0; v < 3; v++ {
		if m.Core(v) != 1 {
			t.Fatalf("core(%d)=%d", v, m.Core(v))
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	g := graph.New(2)
	mustAddRaw(t, g, 0, 1)
	m := newMaint(t, g, 2)
	if _, err := m.Insert(0, 1); !errors.Is(err, graph.ErrDuplicateEdge) {
		t.Fatalf("duplicate error = %v", err)
	}
	if _, err := m.Remove(0, 9); err == nil {
		t.Fatal("remove of missing edge should fail")
	}
	if m.Core(-2) != 0 {
		t.Fatal("Core out of range")
	}
}

func TestVertexGrowth(t *testing.T) {
	g := graph.New(0)
	m := newMaint(t, g, 2)
	mustInsert(t, m, 2, 6)
	if m.Core(2) != 1 || m.Core(6) != 1 || m.Core(4) != 0 {
		t.Fatalf("cores = %v", m.Cores())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPaperExample42 reproduces Example 4.2: inserting an edge from a long
// path into a 2-core makes the traversal DFS visit the whole path even
// though V* has exactly one vertex.
func TestPaperExample42(t *testing.T) {
	g := graph.New(0)
	vs := make([]int, 5)
	for i := range vs {
		vs[i] = g.AddVertex()
	}
	for i := 0; i < 5; i++ {
		mustAddRaw(t, g, vs[i], vs[(i+1)%5])
	}
	const L = 200
	us := make([]int, L)
	for i := range us {
		us[i] = g.AddVertex()
	}
	// u0 sits in the middle of the path so the DFS spreads both ways.
	for i := 0; i+1 < L; i++ {
		mustAddRaw(t, g, us[i], us[i+1])
	}
	mustAddRaw(t, g, us[L/2], vs[0])
	m := newMaint(t, g, 2)
	res := mustInsert(t, m, us[L/2], vs[2])
	if len(res.Changed) != 1 || res.Changed[0] != us[L/2] {
		t.Fatalf("V* = %v, want [u_mid]", res.Changed)
	}
	if m.Core(us[L/2]) != 2 {
		t.Fatalf("core(u_mid)=%d", m.Core(us[L/2]))
	}
	// The deficiency the paper illustrates: |V'| is large (the DFS walks
	// the path interior whose mcd is 2 > K=1).
	if res.Visited < L/2 {
		t.Fatalf("traversal visited only %d vertices; expected a large search space", res.Visited)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomStreamOracle validates cores and rcd after every update on a
// random stream, for several hop counts.
func TestRandomStreamOracle(t *testing.T) {
	for _, h := range []int{2, 3, 5} {
		h := h
		t.Run(map[int]string{2: "h2", 3: "h3", 5: "h5"}[h], func(t *testing.T) {
			rng := rand.New(rand.NewPCG(13, uint64(h)))
			n := 20
			g := graph.New(n)
			for i := 0; i < 30; i++ {
				u, v := rng.IntN(n), rng.IntN(n)
				if u != v && !g.HasEdge(u, v) {
					mustAddRaw(t, g, u, v)
				}
			}
			m := newMaint(t, g, h)
			for step := 0; step < 250; step++ {
				u, v := rng.IntN(n), rng.IntN(n)
				if u == v {
					continue
				}
				var err error
				if g.HasEdge(u, v) {
					_, err = m.Remove(u, v)
				} else {
					_, err = m.Insert(u, v)
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		})
	}
}

// TestAgreesWithOrderBased runs identical random streams through the
// traversal maintainer and the order-based maintainer; every core number
// must agree after every update.
func TestAgreesWithOrderBased(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 56))
	n := 30
	gT := graph.New(n)
	gO := graph.New(n)
	mT := newMaint(t, gT, 2)
	mO := korder.New(gO, korder.Options{Seed: 9})
	for step := 0; step < 500; step++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if gT.HasEdge(u, v) {
			if _, err := mT.Remove(u, v); err != nil {
				t.Fatal(err)
			}
			if _, err := mO.Remove(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := mT.Insert(u, v); err != nil {
				t.Fatal(err)
			}
			if _, err := mO.Insert(u, v); err != nil {
				t.Fatal(err)
			}
		}
		for x := 0; x < n; x++ {
			if mT.Core(x) != mO.Core(x) {
				t.Fatalf("step %d: core(%d): traversal %d vs order-based %d",
					step, x, mT.Core(x), mO.Core(x))
			}
		}
	}
}

// TestOrderBasedVisitsFewer verifies the paper's headline claim on the
// pathological structure: the order-based insertion search space is
// dramatically smaller than the traversal one.
func TestOrderBasedVisitsFewer(t *testing.T) {
	build := func() (*graph.Undirected, int, int) {
		g := graph.New(0)
		vs := make([]int, 5)
		for i := range vs {
			vs[i] = g.AddVertex()
		}
		for i := 0; i < 5; i++ {
			mustAddRaw(t, g, vs[i], vs[(i+1)%5])
		}
		const L = 300
		us := make([]int, L)
		for i := range us {
			us[i] = g.AddVertex()
		}
		for i := 0; i+1 < L; i++ {
			mustAddRaw(t, g, us[i], us[i+1])
		}
		mustAddRaw(t, g, us[L/2], vs[0])
		return g, us[L/2], vs[2]
	}
	gT, u, v := build()
	mT := newMaint(t, gT, 2)
	resT, err := mT.Insert(u, v)
	if err != nil {
		t.Fatal(err)
	}
	gO, u2, v2 := build()
	mO := korder.New(gO, korder.Options{Seed: 3})
	resO, err := mO.Insert(u2, v2)
	if err != nil {
		t.Fatal(err)
	}
	if resO.Visited*10 > resT.Visited {
		t.Fatalf("order-based visited %d, traversal %d; expected >=10x gap",
			resO.Visited, resT.Visited)
	}
}

func TestStatsAccumulate(t *testing.T) {
	g := graph.New(4)
	m := newMaint(t, g, 2)
	mustInsert(t, m, 0, 1)
	mustInsert(t, m, 1, 2)
	if _, err := m.Remove(0, 1); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Inserts != 2 || st.Removes != 1 || st.RCDRepaired == 0 {
		t.Fatalf("stats = %+v", st)
	}
	m.ResetStats()
	if m.Stats().Inserts != 0 {
		t.Fatal("ResetStats failed")
	}
	if m.MCD(0) != m.Cores()[0] && m.MCD(0) < 0 {
		t.Fatal("MCD accessor broken")
	}
	_ = m.PCD(0)
	_ = m.Graph()
}

func mustInsert(t testing.TB, m *Maintainer, u, v int) UpdateResult {
	t.Helper()
	res, err := m.Insert(u, v)
	if err != nil {
		t.Fatalf("Insert(%d,%d): %v", u, v, err)
	}
	return res
}

func mustAddRaw(t testing.TB, g *graph.Undirected, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

package korder

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"kcore/internal/decomp"
	"kcore/internal/graph"
	"kcore/internal/order"
)

func allConfigs() []Options {
	var out []Options
	for _, h := range []decomp.Heuristic{decomp.SmallDegPlusFirst, decomp.LargeDegPlusFirst, decomp.RandomDegPlusFirst} {
		for _, k := range []order.Kind{order.KindTreap, order.KindTagList} {
			out = append(out, Options{Heuristic: h, OrderKind: k, Seed: 7})
		}
	}
	return out
}

func newMaint(t testing.TB, g *graph.Undirected) *Maintainer {
	t.Helper()
	m := New(g, Options{Seed: 42})
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("initial invariants: %v", err)
	}
	return m
}

func TestInsertSingleEdgeOnEmpty(t *testing.T) {
	g := graph.New(2)
	m := newMaint(t, g)
	res, err := m.Insert(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 2 {
		t.Fatalf("V* = %v, want both endpoints", res.Changed)
	}
	if m.Core(0) != 1 || m.Core(1) != 1 {
		t.Fatalf("cores = %d,%d want 1,1", m.Core(0), m.Core(1))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBuildTriangle(t *testing.T) {
	g := graph.New(3)
	m := newMaint(t, g)
	mustInsert(t, m, 0, 1)
	mustInsert(t, m, 1, 2)
	res := mustInsert(t, m, 0, 2)
	if m.Core(0) != 2 || m.Core(1) != 2 || m.Core(2) != 2 {
		t.Fatalf("cores after triangle: %v", m.Cores())
	}
	if len(res.Changed) != 3 {
		t.Fatalf("V* = %v, want 3 vertices", res.Changed)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveBackToPath(t *testing.T) {
	g := graph.New(3)
	mustAddRaw(t, g, 0, 1)
	mustAddRaw(t, g, 1, 2)
	mustAddRaw(t, g, 0, 2)
	m := newMaint(t, g)
	res, err := m.Remove(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 3 {
		t.Fatalf("V* = %v, want 3", res.Changed)
	}
	for v := 0; v < 3; v++ {
		if m.Core(v) != 1 {
			t.Fatalf("core(%d)=%d want 1", v, m.Core(v))
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveLastEdge(t *testing.T) {
	g := graph.New(2)
	mustAddRaw(t, g, 0, 1)
	m := newMaint(t, g)
	if _, err := m.Remove(0, 1); err != nil {
		t.Fatal(err)
	}
	if m.Core(0) != 0 || m.Core(1) != 0 {
		t.Fatalf("cores = %v want 0,0", m.Cores())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertErrors(t *testing.T) {
	g := graph.New(2)
	mustAddRaw(t, g, 0, 1)
	m := newMaint(t, g)
	if _, err := m.Insert(0, 1); !errors.Is(err, graph.ErrDuplicateEdge) {
		t.Fatalf("duplicate insert error = %v", err)
	}
	if _, err := m.Insert(0, 0); !errors.Is(err, graph.ErrSelfLoop) {
		t.Fatalf("self loop error = %v", err)
	}
	if _, err := m.Remove(0, 5); err == nil {
		t.Fatal("remove unknown edge should fail")
	}
	if _, err := m.Remove(1, 0); err != nil {
		t.Fatalf("reversed remove failed: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveOutOfRangeError(t *testing.T) {
	g := graph.New(2)
	m := newMaint(t, g)
	if _, err := m.Remove(-1, 5); err == nil || err.Error() == "" {
		t.Fatalf("out-of-range remove error = %v", err)
	}
	if _, err := m.Remove(0, 99); err == nil {
		t.Fatal("out-of-range remove should fail")
	}
}

func TestInsertGrowsVertices(t *testing.T) {
	g := graph.New(0)
	m := newMaint(t, g)
	mustInsert(t, m, 5, 9)
	if m.Graph().NumVertices() != 10 {
		t.Fatalf("n=%d want 10", m.Graph().NumVertices())
	}
	if m.Core(5) != 1 || m.Core(9) != 1 || m.Core(3) != 0 {
		t.Fatalf("cores after sparse growth: %v", m.Cores())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPaperExample52 reproduces Example 5.2: a long path attached to a
// structure with higher cores; inserting an edge from the path's last
// vertex into the 2-core must update only that vertex, visiting O(1)
// vertices (this is the case where the traversal algorithm visits the
// entire path).
func TestPaperExample52(t *testing.T) {
	g := graph.New(0)
	// Pentagon v1..v5 (2-core).
	vs := make([]int, 5)
	for i := range vs {
		vs[i] = g.AddVertex()
	}
	for i := 0; i < 5; i++ {
		mustAddRaw(t, g, vs[i], vs[(i+1)%5])
	}
	// Path u_0 .. u_{L-1} with u_{L-1} .. u_0 ordered so u_0 attaches last.
	const L = 500
	us := make([]int, L)
	for i := range us {
		us[i] = g.AddVertex()
	}
	for i := 0; i+1 < L; i++ {
		mustAddRaw(t, g, us[i], us[i+1])
	}
	// u_0 touches the pentagon once (still core 1).
	mustAddRaw(t, g, us[0], vs[0])
	m := newMaint(t, g)
	if m.Core(us[0]) != 1 || m.Core(vs[0]) != 2 {
		t.Fatalf("setup cores wrong: u0=%d v0=%d", m.Core(us[0]), m.Core(vs[0]))
	}
	// Insert (u_0, v_2): u_0 gains a second anchor into the 2-core, so
	// core(u_0) becomes 2; no other vertex changes.
	res := mustInsert(t, m, us[0], vs[2])
	if len(res.Changed) != 1 || res.Changed[0] != us[0] {
		t.Fatalf("V* = %v, want [u0]", res.Changed)
	}
	if m.Core(us[0]) != 2 {
		t.Fatalf("core(u0) = %d want 2", m.Core(us[0]))
	}
	// The order-based scan must not walk the path: |V+| stays tiny.
	if res.Visited > 5 {
		t.Fatalf("order-based insertion visited %d vertices; want O(1)", res.Visited)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem31 checks that no update ever changes a core number by more
// than 1, and insertions only increase while removals only decrease.
func TestTheorem31(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g := graph.New(30)
	m := newMaint(t, g)
	for step := 0; step < 800; step++ {
		before := m.Cores()
		u, v := rng.IntN(30), rng.IntN(30)
		if u == v {
			continue
		}
		var err error
		insert := !m.Graph().HasEdge(u, v)
		if insert {
			_, err = m.Insert(u, v)
		} else {
			_, err = m.Remove(u, v)
		}
		if err != nil {
			t.Fatal(err)
		}
		after := m.Cores()
		for x := range before {
			d := after[x] - before[x]
			if insert && (d < 0 || d > 1) {
				t.Fatalf("step %d: insert changed core(%d) by %d", step, x, d)
			}
			if !insert && (d > 0 || d < -1) {
				t.Fatalf("step %d: remove changed core(%d) by %d", step, x, d)
			}
		}
	}
}

// TestRandomStreamAllConfigs is the primary oracle test: random
// insert/remove streams on random graphs, validating the full maintained
// state (cores, k-order, deg+, mcd, level membership) against
// recomputation after every update, for every heuristic and order
// structure.
func TestRandomStreamAllConfigs(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		name := cfg.Heuristic.String() + "/" + cfg.OrderKind.String()
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(101, uint64(cfg.Heuristic)<<8|uint64(cfg.OrderKind)))
			n := 24
			g := graph.New(n)
			// Seed graph.
			for i := 0; i < 40; i++ {
				u, v := rng.IntN(n), rng.IntN(n)
				if u != v && !g.HasEdge(u, v) {
					mustAddRaw(t, g, u, v)
				}
			}
			m := New(g, cfg)
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("init: %v", err)
			}
			for step := 0; step < 400; step++ {
				u, v := rng.IntN(n), rng.IntN(n)
				if u == v {
					continue
				}
				var err error
				if g.HasEdge(u, v) {
					_, err = m.Remove(u, v)
				} else {
					_, err = m.Insert(u, v)
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("step %d (%s): %v", step, name, err)
				}
			}
		})
	}
}

// TestDenseChurn drives a denser graph through heavy insert-then-remove
// churn with periodic full validation.
func TestDenseChurn(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	n := 60
	g := graph.New(n)
	m := newMaint(t, g)
	type edge struct{ u, v int }
	var edges []edge
	// Build up ~6n edges.
	for len(edges) < 6*n {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		mustInsert(t, m, u, v)
		edges = append(edges, edge{u, v})
		if len(edges)%50 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("build %d: %v", len(edges), err)
			}
		}
	}
	// Tear down in random order.
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for i, e := range edges {
		if _, err := m.Remove(e.u, e.v); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
		if i%50 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("teardown %d: %v", i, err)
			}
		}
	}
	for v := 0; v < n; v++ {
		if m.Core(v) != 0 {
			t.Fatalf("core(%d)=%d after removing all edges", v, m.Core(v))
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInsertRemoveInverse checks that inserting then removing an edge
// restores all core numbers.
func TestInsertRemoveInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	n := 40
	g := graph.New(n)
	for i := 0; i < 3*n; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v && !g.HasEdge(u, v) {
			mustAddRaw(t, g, u, v)
		}
	}
	m := newMaint(t, g)
	base := m.Cores()
	for trial := 0; trial < 100; trial++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		mustInsert(t, m, u, v)
		if _, err := m.Remove(u, v); err != nil {
			t.Fatal(err)
		}
		got := m.Cores()
		for x := range base {
			if got[x] != base[x] {
				t.Fatalf("trial %d: core(%d) = %d, want %d after insert+remove", trial, x, got[x], base[x])
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueriesAndStats(t *testing.T) {
	g := graph.New(4)
	m := newMaint(t, g)
	mustInsert(t, m, 0, 1)
	mustInsert(t, m, 1, 2)
	mustInsert(t, m, 0, 2)
	if m.MaxCore() != 2 {
		t.Fatalf("MaxCore=%d", m.MaxCore())
	}
	kc := m.KCore(2)
	if len(kc) != 3 {
		t.Fatalf("KCore(2)=%v", kc)
	}
	if len(m.KCore(3)) != 0 {
		t.Fatal("KCore(3) should be empty")
	}
	ord := m.Order()
	if len(ord) != 4 {
		t.Fatalf("Order()=%v", ord)
	}
	if ord[0] != 3 { // isolated vertex 3 is the only core-0 vertex
		t.Fatalf("order should start with the isolated vertex, got %v", ord)
	}
	st := m.Stats()
	if st.Inserts != 3 || st.Removes != 0 || st.ChangedInsert == 0 {
		t.Fatalf("stats = %+v", st)
	}
	m.ResetStats()
	if m.Stats().Inserts != 0 {
		t.Fatal("ResetStats failed")
	}
	if m.Core(-1) != 0 || m.Core(99) != 0 {
		t.Fatal("Core out of range should be 0")
	}
}

// TestVStarSubsetOfVPlus checks V* ⊆ V+ accounting (Visited >= |Changed|).
func TestVStarSubsetOfVPlus(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	n := 50
	g := graph.New(n)
	m := newMaint(t, g)
	for step := 0; step < 600; step++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		res := mustInsert(t, m, u, v)
		if res.Visited < len(res.Changed) {
			t.Fatalf("step %d: visited %d < |V*| %d", step, res.Visited, len(res.Changed))
		}
	}
}

// TestCliqueGrowth inserts edges forming an ever-larger clique; core
// numbers must track k-1 for a (k)-clique.
func TestCliqueGrowth(t *testing.T) {
	g := graph.New(0)
	m := newMaint(t, g)
	const K = 12
	for v := 1; v < K; v++ {
		for u := 0; u < v; u++ {
			mustInsert(t, m, u, v)
		}
		for u := 0; u <= v; u++ {
			if m.Core(u) != v {
				t.Fatalf("clique size %d: core(%d)=%d want %d", v+1, u, m.Core(u), v)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Peel the clique back down.
	for v := K - 1; v >= 1; v-- {
		for u := 0; u < v; u++ {
			if _, err := m.Remove(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSoakLargeChurn is a longer mixed-churn soak on a larger graph, with
// periodic full validation (skipped with -short).
func TestSoakLargeChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewPCG(2024, 6))
	n := 300
	g := graph.New(n)
	m := New(g, Options{Seed: 12})
	for step := 0; step < 8000; step++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		var err error
		if g.HasEdge(u, v) {
			_, err = m.Remove(u, v)
		} else {
			_, err = m.Insert(u, v)
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%1000 == 999 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertStream is a testing/quick property: for any sequence of
// vertex pairs, inserting the distinct edges one by one through the
// maintainer leaves a fully valid state.
func TestQuickInsertStream(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := graph.New(1)
		m := New(g, Options{Seed: 4})
		for _, p := range pairs {
			u, v := int(p[0])%24, int(p[1])%24
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if _, err := m.Insert(u, v); err != nil {
				return false
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertThenRemoveAll: inserting any edge set and removing it in
// reverse order restores an all-zero core assignment and a valid state.
func TestQuickInsertThenRemoveAll(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := graph.New(1)
		m := New(g, Options{Seed: 8})
		var added [][2]int
		for _, p := range pairs {
			u, v := int(p[0])%20, int(p[1])%20
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if _, err := m.Insert(u, v); err != nil {
				return false
			}
			added = append(added, [2]int{u, v})
		}
		for i := len(added) - 1; i >= 0; i-- {
			if _, err := m.Remove(added[i][0], added[i][1]); err != nil {
				return false
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			if m.Core(v) != 0 {
				return false
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func mustInsert(t testing.TB, m *Maintainer, u, v int) UpdateResult {
	t.Helper()
	res, err := m.Insert(u, v)
	if err != nil {
		t.Fatalf("Insert(%d,%d): %v", u, v, err)
	}
	return res
}

func mustAddRaw(t testing.TB, g *graph.Undirected, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

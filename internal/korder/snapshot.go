package korder

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"kcore/internal/decomp"
	"kcore/internal/graph"
)

// Snapshot format (little endian):
//
//	magic   [8]byte  "KCOREIDX"
//	version uint32   1
//	n       uint64   vertices
//	m       uint64   edges
//	edges   [2m]uint32
//	core    [n]uint32
//	order   [n]uint32  the maintained k-order, front to back
//
// deg+ and mcd are not stored: both are recomputed in O(m) during load,
// which doubles as an integrity check of the snapshot (see LoadSnapshot).

var snapshotMagic = [8]byte{'K', 'C', 'O', 'R', 'E', 'I', 'D', 'X'}

const snapshotVersion = 1

// WriteSnapshot serializes the maintained index (graph, core numbers, and
// k-order). The snapshot preserves the exact maintained order, so a
// restored maintainer continues with the same per-update behavior instead
// of a freshly generated order.
func (m *Maintainer) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("korder: snapshot write: %w", err)
	}
	n := m.g.NumVertices()
	hdr := []uint64{snapshotVersion, uint64(n), uint64(m.g.NumEdges())}
	// version is logically uint32; written as part of a uint64 triple would
	// change the layout, so write it separately.
	if err := binary.Write(bw, binary.LittleEndian, uint32(snapshotVersion)); err != nil {
		return fmt.Errorf("korder: snapshot write: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, hdr[1:]); err != nil {
		return fmt.Errorf("korder: snapshot write: %w", err)
	}
	edges := make([]uint32, 0, 2*m.g.NumEdges())
	m.g.ForEachEdge(func(u, v int) {
		edges = append(edges, uint32(u), uint32(v))
	})
	if err := binary.Write(bw, binary.LittleEndian, edges); err != nil {
		return fmt.Errorf("korder: snapshot write: %w", err)
	}
	core := make([]uint32, n)
	for v := 0; v < n; v++ {
		core[v] = uint32(m.core[v])
	}
	if err := binary.Write(bw, binary.LittleEndian, core); err != nil {
		return fmt.Errorf("korder: snapshot write: %w", err)
	}
	ord := make([]uint32, 0, n)
	for _, v := range m.Order() {
		ord = append(ord, uint32(v))
	}
	if err := binary.Write(bw, binary.LittleEndian, ord); err != nil {
		return fmt.Errorf("korder: snapshot write: %w", err)
	}
	return bw.Flush()
}

// Reseed rebuilds the maintained index from a fresh static decomposition of
// the current graph, discarding the incrementally maintained order. The
// engine's batch cost model uses it when a batch is so large that replaying
// it through per-edge maintenance would cost more than one O(m + n) peel:
// the graph is mutated wholesale first, then Reseed recomputes cores,
// k-order, deg+, and mcd, and re-allocates the per-level lists and scratch
// exactly as New would — the maintainer afterwards is indistinguishable from
// a freshly constructed one.
func (m *Maintainer) Reseed() {
	dec := decomp.KOrder(m.g, m.opts.Heuristic, m.opts.Seed)
	m.core = dec.Core
	m.degPlus = dec.DegPlus
	m.mcd = decomp.ComputeMCD(m.g, dec.Core)
	m.seedCtr = m.opts.Seed
	m.initLevels(dec.MaxCore, dec.Order)
	m.initScratch(m.g.NumVertices())
	m.logWrites = false
	m.writeLog = nil
}

// LoadSnapshot restores a maintainer from a snapshot written by
// WriteSnapshot. The snapshot is fully verified in O(m + n): the stored
// order must be a permutation, level-monotone, a valid peeling order
// (deg+(v) <= core(v) along the order), and every vertex must have at
// least core(v) neighbors at its own level or above — together these
// certify that the stored core numbers are exactly the core numbers of the
// stored graph, without rerunning the decomposition.
func LoadSnapshot(r io.Reader, opts Options) (*Maintainer, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("korder: snapshot read: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("korder: snapshot: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("korder: snapshot read: %w", err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("korder: snapshot: unsupported version %d", version)
	}
	var nm [2]uint64
	if err := binary.Read(br, binary.LittleEndian, &nm); err != nil {
		return nil, fmt.Errorf("korder: snapshot read: %w", err)
	}
	n, mEdges := int(nm[0]), int(nm[1])
	if n < 0 || mEdges < 0 || n > 1<<31 || mEdges > 1<<31 {
		return nil, fmt.Errorf("korder: snapshot: implausible sizes n=%d m=%d", n, mEdges)
	}
	edges := make([]uint32, 2*mEdges)
	if err := binary.Read(br, binary.LittleEndian, edges); err != nil {
		return nil, fmt.Errorf("korder: snapshot read: %w", err)
	}
	coreU := make([]uint32, n)
	if err := binary.Read(br, binary.LittleEndian, coreU); err != nil {
		return nil, fmt.Errorf("korder: snapshot read: %w", err)
	}
	ordU := make([]uint32, n)
	if err := binary.Read(br, binary.LittleEndian, ordU); err != nil {
		return nil, fmt.Errorf("korder: snapshot read: %w", err)
	}

	g := graph.New(n)
	for i := 0; i < len(edges); i += 2 {
		u, v := int(edges[i]), int(edges[i+1])
		if u >= n || v >= n {
			return nil, fmt.Errorf("korder: snapshot: edge (%d,%d) out of range", u, v)
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("korder: snapshot: edge (%d,%d): %w", u, v, err)
		}
	}
	core := make([]int, n)
	for v := range coreU {
		core[v] = int(coreU[v])
	}
	ord := make([]int, n)
	for i, u := range ordU {
		ord[i] = int(u)
	}
	return Restore(g, core, ord, opts)
}

// Restore builds a Maintainer directly from a claimed maintained state:
// graph, core numbers, and k-order. It is the verification core of
// LoadSnapshot, exported separately so other serialization formats (the
// engine's durable snapshot in internal/persist, most prominently) can reuse
// it. The claimed state is fully verified in O(m + n): the order must be a
// permutation, level-monotone, a valid peeling order (deg+(v) <= core(v)
// along the order), and every vertex must have at least core(v) neighbors at
// its own level or above — together these certify that core is exactly the
// core-number function of g, so a Restore that returns nil error can never
// install silently-wrong state. g must not be mutated except through the
// returned Maintainer afterwards.
func Restore(g *graph.Undirected, core []int, ord []int, opts Options) (*Maintainer, error) {
	n := g.NumVertices()
	if len(core) != n || len(ord) != n {
		return nil, fmt.Errorf("korder: snapshot: %d cores and %d order entries for %d vertices",
			len(core), len(ord), n)
	}
	seen := make([]bool, n)
	for i, v := range ord {
		if v < 0 || v >= n || seen[v] {
			return nil, fmt.Errorf("korder: snapshot: order is not a permutation at %d", i)
		}
		seen[v] = true
	}

	// Verification (see doc comment). Lower bound: mcd(v) >= core(v).
	for v := 0; v < n; v++ {
		if core[v] < 0 {
			return nil, fmt.Errorf("korder: snapshot: vertex %d has negative core %d", v, core[v])
		}
		cnt := 0
		for _, w := range g.Neighbors(v) {
			if core[w] >= core[v] {
				cnt++
			}
		}
		if cnt < core[v] {
			return nil, fmt.Errorf("korder: snapshot: vertex %d claims core %d with only %d strong neighbors",
				v, core[v], cnt)
		}
	}
	// Upper bound: monotone valid peeling order; record deg+ as we go.
	degPlus := make([]int, n)
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	prev := 0
	for _, v := range ord {
		if core[v] < prev {
			return nil, fmt.Errorf("korder: snapshot: order not level-monotone at vertex %d", v)
		}
		prev = core[v]
		if deg[v] > core[v] {
			return nil, fmt.Errorf("korder: snapshot: vertex %d has remaining degree %d > core %d",
				v, deg[v], core[v])
		}
		degPlus[v] = deg[v]
		removed[v] = true
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
			}
		}
	}

	m := &Maintainer{g: g, opts: opts, seedCtr: opts.Seed}
	m.core = core
	m.degPlus = degPlus
	m.mcd = decomp.ComputeMCD(g, core)
	maxCore := 0
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	m.initLevels(maxCore, ord)
	m.initScratch(n)
	return m, nil
}

package korder

// CommitDelta replays a simulated update (see Sim) on the maintainer. The
// replay applies the exact logical mutations the live path would have
// performed, in the same order, so the resulting maintained state — cores,
// deg+, mcd, per-level order lists, arena slot assignment, treap shapes —
// is bit-identical to having called Insert or Remove at this point.
//
// The caller is responsible for validity: between the simulation snapshot
// and this call, no vertex in d.Footprint may have had a logical-state
// change (the engine's parallel path guarantees it via disjoint region
// claims plus a dirty check).
func (m *Maintainer) CommitDelta(d *Delta) (UpdateResult, error) {
	var err error
	if d.Insert {
		err = m.g.AddEdge(d.U, d.V)
	} else {
		err = m.g.RemoveEdge(d.U, d.V)
	}
	if err != nil {
		return UpdateResult{}, err
	}
	// Replayed writes are confined to the update's own claimed region, which
	// no other group reads, so they bypass the write log (only live updates
	// dirty foreign regions).
	for _, w := range d.core {
		m.core[w.v] = int(w.x)
	}
	for _, w := range d.degPlus {
		m.degPlus[w.v] = int(w.x)
	}
	for _, w := range d.mcd {
		m.mcd[w.v] = int(w.x)
	}
	for _, op := range d.ops {
		switch op.kind {
		case opEnsureLevel:
			m.ensureLevel(int(op.level))
		case opListRemove:
			m.levels[op.level].Remove(int(op.b))
		case opListInsertAfter:
			m.levels[op.level].InsertAfter(int(op.a), int(op.b))
		case opListPushFront:
			m.levels[op.level].PushFront(int(op.b))
		case opListPushBack:
			m.levels[op.level].PushBack(int(op.b))
		}
	}
	if d.Insert {
		m.stats.Inserts++
		m.stats.VisitedInsert += int64(d.Visited)
		m.stats.ChangedInsert += int64(len(d.Changed))
	} else {
		m.stats.Removes++
		m.stats.ChangedRemove += int64(len(d.Changed))
	}
	return UpdateResult{K: d.K, Changed: d.Changed, Visited: d.Visited}, nil
}

package korder

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"kcore/internal/graph"
)

func snapshotRoundTrip(t *testing.T, m *Maintainer) *Maintainer {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadSnapshot(&buf, m.opts)
	if err != nil {
		t.Fatal(err)
	}
	return m2
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	n := 40
	g := graph.New(n)
	m := New(g, Options{Seed: 5})
	for i := 0; i < 4*n; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v && !g.HasEdge(u, v) {
			mustInsert(t, m, u, v)
		}
	}
	m2 := snapshotRoundTrip(t, m)
	if err := m2.CheckInvariants(); err != nil {
		t.Fatalf("restored invariants: %v", err)
	}
	// Same cores and the exact same order.
	c1, c2 := m.Cores(), m2.Cores()
	for v := range c1 {
		if c1[v] != c2[v] {
			t.Fatalf("core(%d): %d vs %d", v, c1[v], c2[v])
		}
	}
	o1, o2 := m.Order(), m2.Order()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, o1[i], o2[i])
		}
	}
	// The restored maintainer keeps working.
	for i := 0; i < 50; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || m2.Graph().HasEdge(u, v) {
			continue
		}
		mustInsert(t, m2, u, v)
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatalf("post-restore updates: %v", err)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	m := New(graph.New(0), Options{})
	m2 := snapshotRoundTrip(t, m)
	if m2.Graph().NumVertices() != 0 {
		t.Fatal("restored empty graph not empty")
	}
	mustInsert(t, m2, 0, 1)
	if m2.Core(0) != 1 {
		t.Fatal("restored empty maintainer broken")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	g := graph.New(4)
	m := New(g, Options{Seed: 1})
	mustInsert(t, m, 0, 1)
	mustInsert(t, m, 1, 2)
	mustInsert(t, m, 0, 2)
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every prefix length must error, not panic.
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := LoadSnapshot(bytes.NewReader(good[:cut]), Options{}); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte("NOTMAGIC"), good[8:]...)
	if _, err := LoadSnapshot(bytes.NewReader(bad), Options{}); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt a core value: flip the core bytes region. Core section
	// starts after magic(8)+version(4)+n,m(16)+edges(2m*4).
	corrupt := append([]byte(nil), good...)
	coreOff := 8 + 4 + 16 + 2*3*4
	corrupt[coreOff] = 99
	if _, err := LoadSnapshot(bytes.NewReader(corrupt), Options{}); err == nil {
		t.Fatal("corrupted core value accepted")
	}
	if _, err := LoadSnapshot(strings.NewReader(""), Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSnapshotRejectsWrongOrder(t *testing.T) {
	// Build a snapshot by hand with a non-monotone order: must be rejected.
	g := graph.New(3)
	m := New(g, Options{Seed: 1})
	mustInsert(t, m, 0, 1)
	mustInsert(t, m, 1, 2)
	mustInsert(t, m, 0, 2)
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Order section = last n*4 bytes. Swap two entries so the claimed
	// peeling order breaks deg+ <= core (a triangle has a unique level).
	// Instead corrupt the permutation: duplicate the first order entry.
	orderOff := len(raw) - 3*4
	copy(raw[orderOff+4:orderOff+8], raw[orderOff:orderOff+4])
	if _, err := LoadSnapshot(bytes.NewReader(raw), Options{}); err == nil {
		t.Fatal("non-permutation order accepted")
	}
}

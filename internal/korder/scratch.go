package korder

// Epoch-stamped scratch arrays: per-update working state (deg*, candidate
// flags, queue membership, ...) is reset in O(1) by bumping an epoch counter
// instead of clearing arrays, keeping per-update cost proportional to the
// number of vertices actually touched.

// sparseFlags is an epoch-stamped boolean array.
type sparseFlags struct {
	ep  []uint64
	cur uint64
}

func newSparseFlags(n int) *sparseFlags {
	return &sparseFlags{ep: make([]uint64, n), cur: 1}
}

func (s *sparseFlags) grow(n int) {
	for len(s.ep) < n {
		s.ep = append(s.ep, 0)
	}
}

func (s *sparseFlags) reset()         { s.cur++ }
func (s *sparseFlags) set(v int)      { s.ep[v] = s.cur }
func (s *sparseFlags) clear(v int)    { s.ep[v] = 0 }
func (s *sparseFlags) has(v int) bool { return s.ep[v] == s.cur }

// sparseInts is an epoch-stamped integer array defaulting to zero.
type sparseInts struct {
	val []int
	ep  []uint64
	cur uint64
}

func newSparseInts(n int) *sparseInts {
	return &sparseInts{val: make([]int, n), ep: make([]uint64, n), cur: 1}
}

func (s *sparseInts) grow(n int) {
	for len(s.ep) < n {
		s.ep = append(s.ep, 0)
		s.val = append(s.val, 0)
	}
}

func (s *sparseInts) reset() { s.cur++ }

func (s *sparseInts) get(v int) int {
	if s.ep[v] == s.cur {
		return s.val[v]
	}
	return 0
}

// lookup returns the stored value and whether v was set this epoch,
// distinguishing an explicit zero from "untouched" (get cannot).
func (s *sparseInts) lookup(v int) (int, bool) {
	if s.ep[v] == s.cur {
		return s.val[v], true
	}
	return 0, false
}

func (s *sparseInts) set(v, x int) {
	s.ep[v] = s.cur
	s.val[v] = x
}

func (s *sparseInts) add(v, d int) int {
	if s.ep[v] != s.cur {
		s.ep[v] = s.cur
		s.val[v] = 0
	}
	s.val[v] += d
	return s.val[v]
}

package korder

import (
	"kcore/internal/order"
)

// Read-only simulation of OrderInsert / OrderRemoval.
//
// A Sim executes one edge update against a Maintainer without mutating it:
// every write goes to a worker-local overlay, every physical O_k mutation is
// recorded as a logical op, and every vertex whose logical state (core,
// deg+, mcd, order position, adjacency) is read or written is collected into
// a footprint. The recorded Delta can later be replayed on the Maintainer
// (CommitDelta) producing a state bit-identical to running Insert/Remove
// live — provided none of the footprint vertices changed between the
// simulation snapshot and the replay. The engine's parallel Apply path
// enforces exactly that with region claims and a dirty set.
//
// Several Sims may simulate concurrently against one Maintainer as long as
// nothing mutates it: all Maintainer and order.List accesses on this path
// are read-only (treap Rank walks parent pointers, tag-list Less compares
// labels; neither restructures).

// vertexValue is one recorded absolute state write.
type vertexValue struct {
	v int32
	x int32
}

// Logical order-list operations, replayed by CommitDelta in recorded order.
const (
	opEnsureLevel     uint8 = iota // levels grown to include level k
	opListRemove                   // levels[k].Remove(b)
	opListInsertAfter              // levels[k].InsertAfter(a, b)
	opListPushFront                // levels[k].PushFront(b)
	opListPushBack                 // levels[k].PushBack(b)
)

type simOp struct {
	kind  uint8
	level int32
	a, b  int32
}

// Delta is the recorded effect of one simulated update.
type Delta struct {
	// U, V, Insert identify the simulated edge update.
	U, V   int
	Insert bool
	// K is min(core(u), core(v)) before the update (UpdateResult.K).
	K int
	// Visited is the UpdateResult.Visited work metric.
	Visited int
	// Changed is V*, owned by the Delta (stable across later updates).
	Changed []int
	// Footprint lists every vertex whose logical state the simulation read
	// or wrote, including all of Changed and both endpoints.
	Footprint []int

	core, degPlus, mcd []vertexValue
	ops                []simOp
}

// reset truncates all recorded slices for reuse.
func (d *Delta) reset() {
	d.Changed = d.Changed[:0]
	d.Footprint = d.Footprint[:0]
	d.core = d.core[:0]
	d.degPlus = d.degPlus[:0]
	d.mcd = d.mcd[:0]
	d.ops = d.ops[:0]
}

// simOverlay is an epoch-stamped absolute-value overlay over one of the
// maintained per-vertex arrays, remembering which vertices were written.
type simOverlay struct {
	vals    *sparseInts
	written []int32
}

func newSimOverlay(n int) *simOverlay {
	return &simOverlay{vals: newSparseInts(n)}
}

func (o *simOverlay) reset() {
	o.vals.reset()
	o.written = o.written[:0]
}

func (o *simOverlay) grow(n int) { o.vals.grow(n) }

func (o *simOverlay) get(base []int, v int) int {
	if x, ok := o.vals.lookup(v); ok {
		return x
	}
	return base[v]
}

func (o *simOverlay) set(v, x int) {
	if _, ok := o.vals.lookup(v); !ok {
		o.written = append(o.written, int32(v))
	}
	o.vals.set(v, x)
}

// emit appends the overlay's written (vertex, final value) pairs to dst.
func (o *simOverlay) emit(dst []vertexValue) []vertexValue {
	for _, v := range o.written {
		x, _ := o.vals.lookup(int(v))
		dst = append(dst, vertexValue{v: v, x: int32(x)})
	}
	return dst
}

// Sim simulates updates against one Maintainer. Each concurrent worker owns
// its own Sim; a Sim is not safe for concurrent use.
type Sim struct {
	m *Maintainer

	// Single-edge adjacency patch: the update's own edge, visible (insert)
	// or hidden (remove) during neighbor iteration.
	pu, pv   int
	patchAdd bool
	patchDel bool

	coreOv, dpOv, mcdOv *simOverlay

	// Footprint collection.
	fpSet *sparseFlags
	fp    []int

	// Per-update scratch mirroring the Maintainer's.
	degStar *sparseInts
	cd      *sparseInts
	cand    *sparseFlags
	conf    *sparseFlags
	inHeap  *sparseFlags
	inQ     *sparseFlags
	inVStar *sparseFlags
	moved   *sparseFlags
	heap    order.MinHeap

	vcBuf     []int
	vstarBuf  []int
	stackBuf  []int
	queueBuf  []int
	relocsBuf []relocation

	d *Delta

	pool  []*Delta
	inUse int
}

// NewSim builds a simulation worker for m, sized to m's current vertex set.
func NewSim(m *Maintainer) *Sim {
	s := &Sim{m: m}
	n := len(m.core)
	s.coreOv = newSimOverlay(n)
	s.dpOv = newSimOverlay(n)
	s.mcdOv = newSimOverlay(n)
	s.fpSet = newSparseFlags(n)
	s.degStar = newSparseInts(n)
	s.cd = newSparseInts(n)
	s.cand = newSparseFlags(n)
	s.conf = newSparseFlags(n)
	s.inHeap = newSparseFlags(n)
	s.inQ = newSparseFlags(n)
	s.inVStar = newSparseFlags(n)
	s.moved = newSparseFlags(n)
	return s
}

// Grow resizes the Sim's scratch to the Maintainer's current vertex count.
// Call once per batch, before any simulation, while nothing mutates m.
func (s *Sim) Grow() {
	n := len(s.m.core)
	s.coreOv.grow(n)
	s.dpOv.grow(n)
	s.mcdOv.grow(n)
	s.fpSet.grow(n)
	s.degStar.grow(n)
	s.cd.grow(n)
	s.cand.grow(n)
	s.conf.grow(n)
	s.inHeap.grow(n)
	s.inQ.grow(n)
	s.inVStar.grow(n)
	s.moved.grow(n)
}

// ResetDeltas recycles all Deltas handed out since the last call. The engine
// calls it at the start of each batch; Deltas are only valid within one.
func (s *Sim) ResetDeltas() { s.inUse = 0 }

func (s *Sim) takeDelta() *Delta {
	if s.inUse < len(s.pool) {
		d := s.pool[s.inUse]
		s.inUse++
		d.reset()
		return d
	}
	d := &Delta{}
	s.pool = append(s.pool, d)
	s.inUse++
	return d
}

// State accessors: every read or write funnels through these so the
// footprint stays complete. Soundness of the parallel path depends on the
// footprint covering everything the outcome depends on.

func (s *Sim) touch(v int) {
	if !s.fpSet.has(v) {
		s.fpSet.set(v)
		s.fp = append(s.fp, v)
	}
}

func (s *Sim) coreOf(v int) int {
	s.touch(v)
	return s.coreOv.get(s.m.core, v)
}

func (s *Sim) setCore(v, x int) {
	s.touch(v)
	s.coreOv.set(v, x)
}

func (s *Sim) dpOf(v int) int {
	s.touch(v)
	return s.dpOv.get(s.m.degPlus, v)
}

func (s *Sim) setDP(v, x int) {
	s.touch(v)
	s.dpOv.set(v, x)
}

func (s *Sim) mcdOf(v int) int {
	s.touch(v)
	return s.mcdOv.get(s.m.mcd, v)
}

func (s *Sim) setMCD(v, x int) {
	s.touch(v)
	s.mcdOv.set(v, x)
}

func (s *Sim) less(L order.List, a, b int) bool {
	s.touch(a)
	s.touch(b)
	return L.Less(a, b)
}

func (s *Sim) key(L order.List, v int) uint64 {
	s.touch(v)
	return L.Key(v)
}

// before mirrors Maintainer.before under the core overlay.
func (s *Sim) before(u, v int) bool {
	cu, cv := s.coreOf(u), s.coreOf(v)
	if cu != cv {
		return cu < cv
	}
	return s.less(s.m.levels[cu], u, v)
}

// eachNeighbor iterates w's adjacency under the single-edge patch,
// reproducing the exact iteration order live execution would see: an
// inserted arc is appended at the end (graph.addArc appends), a removed arc
// is swap-filled by the last neighbor (graph.removeArc). Matching the order
// matters — discovery order decides V* order and therefore the final
// k-order, which must be bit-identical to the live path.
func (s *Sim) eachNeighbor(w int, fn func(z int)) {
	adj := s.m.g.Neighbors(w)
	if s.patchDel && (w == s.pu || w == s.pv) {
		other := int32(s.pv)
		if w == s.pv {
			other = int32(s.pu)
		}
		idx := -1
		for j, z32 := range adj {
			if z32 == other {
				idx = j
				break
			}
		}
		last := len(adj) - 1
		for j := 0; j < last; j++ {
			z := adj[j]
			if j == idx {
				z = adj[last]
			}
			fn(int(z))
		}
		return
	}
	for _, z32 := range adj {
		fn(int(z32))
	}
	if s.patchAdd {
		if w == s.pu {
			fn(s.pv)
		} else if w == s.pv {
			fn(s.pu)
		}
	}
}

// begin resets all per-update state and opens a Delta for the update.
func (s *Sim) begin(u, v int, insert bool) {
	s.pu, s.pv = u, v
	s.patchAdd, s.patchDel = insert, !insert
	s.coreOv.reset()
	s.dpOv.reset()
	s.mcdOv.reset()
	s.fpSet.reset()
	s.fp = s.fp[:0]
	s.degStar.reset()
	s.cd.reset()
	s.cand.reset()
	s.conf.reset()
	s.inHeap.reset()
	s.inQ.reset()
	s.inVStar.reset()
	s.moved.reset()
	s.heap.Reset()
	d := s.takeDelta()
	d.U, d.V, d.Insert = u, v, insert
	s.d = d
	s.touch(u)
	s.touch(v)
}

// finish seals the Delta: overlay writes become absolute value records and
// the footprint is copied out.
func (s *Sim) finish(visited int, changed []int) *Delta {
	d := s.d
	d.Visited = visited
	d.Changed = append(d.Changed[:0], changed...)
	d.core = s.coreOv.emit(d.core[:0])
	d.degPlus = s.dpOv.emit(d.degPlus[:0])
	d.mcd = s.mcdOv.emit(d.mcd[:0])
	d.Footprint = append(d.Footprint[:0], s.fp...)
	s.d = nil
	return d
}

func (s *Sim) op(kind uint8, level, a, b int) {
	s.d.ops = append(s.d.ops, simOp{kind: kind, level: int32(level), a: int32(a), b: int32(b)})
}

// SimInsert simulates OrderInsert of edge (u, v). It returns ok=false when
// the update cannot be simulated (an endpoint outside the snapshot's vertex
// range); such updates must run live. The edge must be valid and absent —
// the engine's batch validation guarantees both.
func (s *Sim) SimInsert(u, v int) (*Delta, bool) {
	m := s.m
	if u < 0 || v < 0 || u >= len(m.core) || v >= len(m.core) {
		return nil, false
	}
	s.begin(u, v, true)
	cu, cv := s.coreOf(u), s.coreOf(v)
	if cv >= cu {
		s.setMCD(u, s.mcdOf(u)+1)
	}
	if cu >= cv {
		s.setMCD(v, s.mcdOf(v)+1)
	}
	root := u
	if s.before(v, u) {
		root = v
	}
	K := s.coreOf(root)
	s.d.K = K
	s.setDP(root, s.dpOf(root)+1)
	if s.dpOf(root) <= K {
		// Lemma 5.2: no core numbers change.
		return s.finish(0, nil), true
	}

	// Core phase, mirroring Insert: comparisons and rank snapshots run
	// against the unmutated O_K; physical mutations become recorded ops.
	L := m.levels[K]
	vc := s.vcBuf[:0]
	relocs := s.relocsBuf[:0]
	cursor := -1
	visited := 0

	s.heap.Push(s.key(L, root), root)
	s.inHeap.set(root)

	for {
		it, ok := s.heap.Pop()
		if !ok {
			break
		}
		w := it.V
		if s.cand.has(w) || s.conf.has(w) {
			continue
		}
		s.inHeap.clear(w)
		ds := s.degStar.get(w)
		if ds == 0 && w != root {
			continue
		}
		if ds+s.dpOf(w) > K {
			visited++
			s.cand.set(w)
			vc = append(vc, w)
			s.eachNeighbor(w, func(z int) {
				if s.coreOf(z) == K && s.less(L, w, z) {
					s.degStar.add(z, 1)
					if !s.inHeap.has(z) && !s.cand.has(z) && !s.conf.has(z) {
						s.inHeap.set(z)
						s.heap.Push(s.key(L, z), z)
					}
				}
			})
			continue
		}
		visited++
		s.conf.set(w)
		s.setDP(w, s.dpOf(w)+ds)
		s.degStar.set(w, 0)
		cursor = w
		cursor = s.simRemoveCandidates(L, w, K, &relocs, cursor)
	}

	// Ending phase: record the deferred O_K mutations, then settle V*.
	for _, r := range relocs {
		s.op(opListRemove, K, 0, r.v)
		s.op(opListInsertAfter, K, r.anchor, r.v)
	}
	vstar := vc[:0]
	for _, w := range vc {
		if s.cand.has(w) {
			vstar = append(vstar, w)
		}
	}
	if len(vstar) > 0 {
		s.op(opEnsureLevel, K+1, 0, 0)
		for _, w := range vstar {
			s.op(opListRemove, K, 0, w)
		}
		for i := len(vstar) - 1; i >= 0; i-- {
			s.op(opListPushFront, K+1, 0, vstar[i])
		}
		for _, w := range vstar {
			s.setCore(w, K+1)
			s.degStar.set(w, 0)
		}
		for _, w := range vstar {
			cnt := 0
			s.eachNeighbor(w, func(z int) {
				if s.coreOf(z) >= K+1 {
					cnt++
				}
				if !s.cand.has(z) && s.coreOf(z) == K+1 {
					s.setMCD(z, s.mcdOf(z)+1)
				}
			})
			s.setMCD(w, cnt)
		}
	}
	s.vcBuf = vc[:0]
	s.relocsBuf = relocs[:0]
	return s.finish(visited, vstar), true
}

// simRemoveCandidates mirrors removeCandidates under the overlays.
func (s *Sim) simRemoveCandidates(L order.List, vi, K int, relocs *[]relocation, cursor int) int {
	queue := s.queueBuf[:0]
	s.eachNeighbor(vi, func(z int) {
		if s.cand.has(z) {
			s.setDP(z, s.dpOf(z)-1)
			if s.dpOf(z)+s.degStar.get(z) <= K && !s.inQ.has(z) {
				s.inQ.set(z)
				queue = append(queue, z)
			}
		}
	})
	for qi := 0; qi < len(queue); qi++ {
		wp := queue[qi]
		s.cand.clear(wp)
		s.conf.set(wp)
		s.setDP(wp, s.dpOf(wp)+s.degStar.get(wp))
		s.degStar.set(wp, 0)
		*relocs = append(*relocs, relocation{anchor: cursor, v: wp})
		cursor = wp
		s.eachNeighbor(wp, func(z int) {
			if s.coreOf(z) != K {
				return
			}
			switch {
			case s.less(L, vi, z):
				s.degStar.add(z, -1)
			case s.cand.has(z) && s.less(L, wp, z):
				s.degStar.add(z, -1)
				if s.dpOf(z)+s.degStar.get(z) <= K && !s.inQ.has(z) {
					s.inQ.set(z)
					queue = append(queue, z)
				}
			case s.cand.has(z):
				s.setDP(z, s.dpOf(z)-1)
				if s.dpOf(z)+s.degStar.get(z) <= K && !s.inQ.has(z) {
					s.inQ.set(z)
					queue = append(queue, z)
				}
			}
		})
	}
	s.queueBuf = queue[:0]
	return cursor
}

// simCDTouch mirrors cdTouch under the mcd overlay.
func (s *Sim) simCDTouch(w int) int {
	if s.cd.get(w) == 0 && !s.inVStar.has(w) {
		s.cd.set(w, s.mcdOf(w)+1)
	}
	return s.cd.get(w) - 1
}

// SimRemove simulates OrderRemoval of edge (u, v). It returns ok=false when
// an endpoint is outside the snapshot's vertex range. The edge must exist —
// the engine's batch validation guarantees it.
func (s *Sim) SimRemove(u, v int) (*Delta, bool) {
	m := s.m
	if u < 0 || v < 0 || u >= len(m.core) || v >= len(m.core) {
		return nil, false
	}
	s.begin(u, v, false)
	uFirst := s.before(u, v)
	if uFirst {
		s.setDP(u, s.dpOf(u)-1)
	} else {
		s.setDP(v, s.dpOf(v)-1)
	}
	cu, cv := s.coreOf(u), s.coreOf(v)
	if cv >= cu {
		s.setMCD(u, s.mcdOf(u)-1)
	}
	if cu >= cv {
		s.setMCD(v, s.mcdOf(v)-1)
	}
	K := cu
	if cv < K {
		K = cv
	}
	s.d.K = K

	vstar := s.vstarBuf[:0]
	stack := s.stackBuf[:0]
	for _, r := range [2]int{u, v} {
		if s.coreOf(r) == K && !s.inVStar.has(r) && s.simCDTouch(r) < K {
			s.inVStar.set(r)
			s.setCore(r, K-1)
			vstar = append(vstar, r)
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.eachNeighbor(w, func(z int) {
			if s.coreOf(z) != K || s.inVStar.has(z) {
				return
			}
			cd := s.simCDTouch(z) - 1
			s.cd.set(z, cd+1)
			if cd < K {
				s.inVStar.set(z)
				s.setCore(z, K-1)
				vstar = append(vstar, z)
				stack = append(stack, z)
			}
		})
	}
	s.vstarBuf, s.stackBuf = vstar, stack[:0]
	if len(vstar) == 0 {
		return s.finish(0, nil), true
	}

	// k-order repair: V* moves to the end of O_{K-1} in discovery order.
	// levels[K] exists (a vertex currently has core K), so the live path's
	// ensureLevel(K) is a no-op and needs no recorded op.
	L := m.levels[K]
	for _, w := range vstar {
		dp := 0
		s.eachNeighbor(w, func(z int) {
			if s.coreOf(z) == K && s.less(L, z, w) {
				s.setDP(z, s.dpOf(z)-1)
			}
			if s.coreOf(z) >= K || (s.inVStar.has(z) && !s.moved.has(z) && z != w) {
				dp++
			}
		})
		s.setDP(w, dp)
		s.moved.set(w)
		s.op(opListRemove, K, 0, w)
		s.op(opListPushBack, K-1, 0, w)
	}
	for _, w := range vstar {
		cnt := 0
		s.eachNeighbor(w, func(z int) {
			if s.coreOf(z) >= K-1 {
				cnt++
			}
			if !s.inVStar.has(z) && s.coreOf(z) == K {
				s.setMCD(z, s.mcdOf(z)-1)
			}
		})
		s.setMCD(w, cnt)
	}
	return s.finish(len(vstar), vstar), true
}

// SimUpdate simulates an insertion (insert=true) or removal.
func (s *Sim) SimUpdate(insert bool, u, v int) (*Delta, bool) {
	if insert {
		return s.SimInsert(u, v)
	}
	return s.SimRemove(u, v)
}

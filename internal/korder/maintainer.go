// Package korder implements the paper's contribution: order-based core
// maintenance. A Maintainer keeps, for an evolving undirected graph, the
// core number of every vertex, the k-order (a removal order realizable by
// the static core-decomposition algorithm), each vertex's remaining degree
// deg+ with respect to that order, and the max-core degree mcd.
//
// OrderInsert (Algorithms 2 and 3 of the paper) and OrderRemoval
// (Algorithm 4) update all of this in time proportional to a small
// neighborhood of the inserted or removed edge.
package korder

import (
	"fmt"

	"kcore/internal/decomp"
	"kcore/internal/graph"
	"kcore/internal/order"
)

// Options configures a Maintainer.
type Options struct {
	// Heuristic selects the initial k-order generation heuristic
	// (default: small deg+ first, the paper's recommendation).
	Heuristic decomp.Heuristic
	// OrderKind selects the per-level order structure (default: treap).
	OrderKind order.Kind
	// Seed drives all internal randomization deterministically.
	Seed uint64
}

// Stats accumulates per-update work counters across the Maintainer's
// lifetime. They power Figures 1, 2 and 9.
type Stats struct {
	// Inserts and Removes count maintained updates.
	Inserts int64
	Removes int64
	// VisitedInsert accumulates |V+| over insertions: the number of
	// vertices the scan expanded (Case 1 and Case 2b of Algorithm 2).
	VisitedInsert int64
	// ChangedInsert accumulates |V*| over insertions.
	ChangedInsert int64
	// ChangedRemove accumulates |V*| over removals.
	ChangedRemove int64
}

// UpdateResult describes the effect of one maintained edge update.
type UpdateResult struct {
	// K is min(core(u), core(v)) evaluated before the update.
	K int
	// Changed lists V*: the vertices whose core number changed (all by
	// +1 for insertion, -1 for removal), in the order they were settled.
	//
	// Aliasing contract: Changed aliases a scratch buffer owned by the
	// Maintainer and is valid only until the next Insert or Remove call on
	// it. Callers that retain it across updates must copy (the kcore
	// engine's Apply does; see UpdateInfo.CoreChanged).
	Changed []int
	// Visited is |V+| for insertions (vertices expanded by the scan,
	// always >= len(Changed)); for removals it equals len(Changed).
	Visited int
}

// Maintainer holds the maintained index: cores, k-order, deg+, mcd.
type Maintainer struct {
	g       *graph.Undirected
	core    []int
	degPlus []int
	mcd     []int
	arena   *order.Arena // shared node store for every per-level list
	levels  []order.List // levels[k] = O_k
	opts    Options
	seedCtr uint64

	// Per-update scratch (epoch reset).
	degStar *sparseInts
	cd      *sparseInts
	cand    *sparseFlags // in VC
	conf    *sparseFlags // confirmed staying at level K this update
	inHeap  *sparseFlags
	inQ     *sparseFlags
	inVStar *sparseFlags
	moved   *sparseFlags
	heap    order.MinHeap

	// Pooled per-update slices, reused across updates so the steady-state
	// hot path performs no heap allocations. vcBuf backs Insert's returned
	// Changed slice and vstarBuf backs Remove's (see UpdateResult.Changed
	// for the aliasing contract).
	vcBuf     []int
	vstarBuf  []int
	stackBuf  []int
	queueBuf  []int
	relocsBuf []relocation

	// Write log: when enabled (StartWriteLog), Insert and Remove append
	// every vertex whose logical state they change — core, deg+, mcd, or
	// position in the k-order — so a parallel batch runtime can track which
	// regions a live update dirtied (see the engine's parallel Apply path).
	logWrites bool
	writeLog  []int

	stats Stats
}

// StartWriteLog clears the write log and starts recording the vertices whose
// logical state subsequent updates change. The log is an over-approximation-
// free record: exactly the vertices with a core, deg+, mcd, or order-position
// write. Scratch-only churn (deg*, candidate flags) is not logged.
func (m *Maintainer) StartWriteLog() {
	m.logWrites = true
	m.writeLog = m.writeLog[:0]
}

// TakeWriteLog returns the vertices logged since StartWriteLog and clears
// the log, keeping recording enabled. The slice aliases internal storage and
// is valid until the next update.
func (m *Maintainer) TakeWriteLog() []int {
	log := m.writeLog
	m.writeLog = m.writeLog[:0]
	return log
}

// StopWriteLog disables write recording.
func (m *Maintainer) StopWriteLog() {
	m.logWrites = false
	m.writeLog = m.writeLog[:0]
}

// logw records a logical-state write to v while the write log is enabled.
func (m *Maintainer) logw(v int) {
	if m.logWrites {
		m.writeLog = append(m.writeLog, v)
	}
}

// NumVertices reports the number of maintained vertices.
func (m *Maintainer) NumVertices() int { return len(m.core) }

// New builds a Maintainer for g, computing the initial decomposition and
// k-order with the configured heuristic. g must not be mutated except
// through the Maintainer afterwards.
func New(g *graph.Undirected, opts Options) *Maintainer {
	m := &Maintainer{g: g, opts: opts, seedCtr: opts.Seed}
	dec := decomp.KOrder(g, opts.Heuristic, opts.Seed)
	n := g.NumVertices()
	m.core = dec.Core
	m.degPlus = dec.DegPlus
	m.mcd = decomp.ComputeMCD(g, dec.Core)
	m.initLevels(dec.MaxCore, dec.Order)
	m.initScratch(n)
	return m
}

// initLevels builds the per-level order lists from a global k-order. All
// levels share one arena sized for the full vertex set up front.
func (m *Maintainer) initLevels(maxCore int, ord []int) {
	m.arena = order.NewArena()
	m.arena.Reserve(len(ord))
	m.levels = make([]order.List, maxCore+1)
	for k := range m.levels {
		m.levels[k] = m.newList()
	}
	for _, v := range ord {
		m.levels[m.core[v]].PushBack(v)
	}
}

// initScratch allocates the epoch-stamped per-update working state.
func (m *Maintainer) initScratch(n int) {
	m.degStar = newSparseInts(n)
	m.cd = newSparseInts(n)
	m.cand = newSparseFlags(n)
	m.conf = newSparseFlags(n)
	m.inHeap = newSparseFlags(n)
	m.inQ = newSparseFlags(n)
	m.inVStar = newSparseFlags(n)
	m.moved = newSparseFlags(n)
}

func (m *Maintainer) newList() order.List {
	m.seedCtr++
	return order.NewListOn(m.arena, m.opts.OrderKind, m.seedCtr*0x9e3779b97f4a7c15+1)
}

// Graph returns the underlying graph (read-only for callers).
func (m *Maintainer) Graph() *graph.Undirected { return m.g }

// Core returns the current core number of v (0 for unknown vertices).
func (m *Maintainer) Core(v int) int {
	if v < 0 || v >= len(m.core) {
		return 0
	}
	return m.core[v]
}

// Cores returns a copy of all current core numbers.
func (m *Maintainer) Cores() []int {
	out := make([]int, len(m.core))
	copy(out, m.core)
	return out
}

// MaxCore returns the current degeneracy (maximum core number).
func (m *Maintainer) MaxCore() int {
	for k := len(m.levels) - 1; k >= 0; k-- {
		if m.levels[k].Len() > 0 {
			return k
		}
	}
	return 0
}

// KCore returns the vertices of the current k-core.
func (m *Maintainer) KCore(k int) []int {
	var out []int
	for v, c := range m.core {
		if c >= k {
			out = append(out, v)
		}
	}
	return out
}

// Order returns the maintained k-order as a vertex sequence (O_0 O_1 ...).
func (m *Maintainer) Order() []int {
	out := make([]int, 0, len(m.core))
	for _, l := range m.levels {
		out = append(out, order.Slice(l)...)
	}
	return out
}

// Stats returns accumulated work counters.
func (m *Maintainer) Stats() Stats { return m.stats }

// ResetStats zeroes accumulated work counters.
func (m *Maintainer) ResetStats() { m.stats = Stats{} }

// EnsureVertex grows the maintained state to include vertex v. New vertices
// are isolated: core 0, appended to O_0.
func (m *Maintainer) EnsureVertex(v int) {
	if v < 0 {
		return
	}
	m.g.EnsureVertex(v)
	for len(m.core) <= v {
		w := len(m.core)
		m.core = append(m.core, 0)
		m.degPlus = append(m.degPlus, 0)
		m.mcd = append(m.mcd, 0)
		m.ensureLevel(0)
		m.levels[0].PushBack(w)
	}
	n := len(m.core)
	m.degStar.grow(n)
	m.cd.grow(n)
	m.cand.grow(n)
	m.conf.grow(n)
	m.inHeap.grow(n)
	m.inQ.grow(n)
	m.inVStar.grow(n)
	m.moved.grow(n)
}

func (m *Maintainer) ensureLevel(k int) {
	for len(m.levels) <= k {
		m.levels = append(m.levels, m.newList())
	}
}

// before reports whether u precedes v in the maintained global k-order.
func (m *Maintainer) before(u, v int) bool {
	if m.core[u] != m.core[v] {
		return m.core[u] < m.core[v]
	}
	return m.levels[m.core[u]].Less(u, v)
}

// CheckInvariants validates the complete maintained state against
// recomputation: core numbers, level membership, the k-order property
// (Lemma 5.1), deg+ consistency with the order, and mcd. Intended for
// tests; cost is O((m+n) log n).
func (m *Maintainer) CheckInvariants() error {
	n := m.g.NumVertices()
	if len(m.core) != n {
		return fmt.Errorf("korder: state has %d vertices, graph %d", len(m.core), n)
	}
	if err := decomp.Validate(m.g, m.core); err != nil {
		return err
	}
	// Level membership.
	seen := make([]bool, n)
	for k, l := range m.levels {
		for v, ok := l.Front(); ok; v, ok = l.Next(v) {
			if seen[v] {
				return fmt.Errorf("korder: vertex %d appears in multiple levels", v)
			}
			seen[v] = true
			if m.core[v] != k {
				return fmt.Errorf("korder: vertex %d in O_%d but core %d", v, k, m.core[v])
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			return fmt.Errorf("korder: vertex %d missing from all levels", v)
		}
	}
	// deg+ consistency and Lemma 5.1 (deg+(v) <= k for v in O_k).
	for v := 0; v < n; v++ {
		dp := 0
		for _, w := range m.g.Neighbors(v) {
			if m.before(v, int(w)) {
				dp++
			}
		}
		if dp != m.degPlus[v] {
			return fmt.Errorf("korder: deg+(%d) = %d, order implies %d", v, m.degPlus[v], dp)
		}
		if dp > m.core[v] {
			return fmt.Errorf("korder: deg+(%d) = %d exceeds core %d (Lemma 5.1 violated)",
				v, dp, m.core[v])
		}
	}
	// mcd consistency.
	wantMCD := decomp.ComputeMCD(m.g, m.core)
	for v := 0; v < n; v++ {
		if m.mcd[v] != wantMCD[v] {
			return fmt.Errorf("korder: mcd(%d) = %d, want %d", v, m.mcd[v], wantMCD[v])
		}
	}
	return nil
}

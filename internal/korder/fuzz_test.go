package korder

import (
	"testing"

	"kcore/internal/graph"
)

// FuzzMaintainerAgainstOracle decodes the fuzz input as a stream of edge
// toggles over a small vertex set (toggle = insert if absent, remove if
// present) and validates the complete maintained state against
// recomputation after the stream. Run with `go test -fuzz=Fuzz` for
// extended differential fuzzing; the seed corpus keeps it meaningful as a
// plain test.
func FuzzMaintainerAgainstOracle(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x30, 0x01, 0x12})
	f.Add([]byte{0x01, 0x02, 0x03, 0x12, 0x13, 0x23}) // K4 build-up
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x55, 0xAA, 0x77, 0x11, 0x22, 0x33, 0x44})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 12
		g := graph.New(n)
		m := New(g, Options{Seed: 17})
		for i, b := range data {
			if i > 300 {
				break
			}
			u := int(b>>4) % n
			v := int(b&0xF) % n
			if u == v {
				continue
			}
			var err error
			if g.HasEdge(u, v) {
				_, err = m.Remove(u, v)
			} else {
				_, err = m.Insert(u, v)
			}
			if err != nil {
				t.Fatalf("op %d (%d,%d): %v", i, u, v, err)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants after %d ops: %v", len(data), err)
		}
	})
}

package korder

import (
	"math/rand/v2"
	"testing"

	"kcore/internal/gen"
	"kcore/internal/order"
)

// TestSimCommitMatchesLive drives two maintainers over the same randomized
// mixed update stream: one through the live Insert/Remove path, one through
// SimInsert/SimRemove + CommitDelta. After every update the full maintained
// state — core numbers, the complete k-order, and the UpdateResult — must be
// bit-identical, and the simulation's recorded footprint must be covered by
// the planner's region estimate (the containment the parallel Apply path
// relies on).
func TestSimCommitMatchesLive(t *testing.T) {
	for _, kind := range []order.Kind{order.KindTreap, order.KindTagList} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(kind.String(), func(t *testing.T) {
				g := gen.ErdosRenyi(60, 140, seed)
				opts := Options{OrderKind: kind, Seed: 11}
				live := New(g.Clone(), opts)
				replay := New(g.Clone(), opts)
				sim := NewSim(replay)
				rng := rand.New(rand.NewPCG(seed, 99))
				n := g.NumVertices()
				for step := 0; step < 500; step++ {
					u, v := rng.IntN(n), rng.IntN(n)
					if u == v {
						continue
					}
					insert := !live.g.HasEdge(u, v)

					region, regionOK := sim.EstimateRegion(insert, u, v, nil)
					sim.ResetDeltas()
					d, ok := sim.SimUpdate(insert, u, v)
					if !ok {
						t.Fatalf("step %d: SimUpdate refused in-range update", step)
					}
					if regionOK {
						inRegion := make(map[int]bool, len(region))
						for _, w := range region {
							inRegion[int(w)] = true
						}
						for _, w := range d.Footprint {
							if !inRegion[w] {
								t.Fatalf("step %d (%v %d-%d): footprint vertex %d outside estimated region %v",
									step, insert, u, v, w, region)
							}
						}
					}

					var rLive, rReplay UpdateResult
					var errLive, errReplay error
					if insert {
						rLive, errLive = live.Insert(u, v)
					} else {
						rLive, errLive = live.Remove(u, v)
					}
					rReplay, errReplay = replay.CommitDelta(d)
					if errLive != nil || errReplay != nil {
						t.Fatalf("step %d: live err %v, replay err %v", step, errLive, errReplay)
					}
					if rLive.K != rReplay.K || rLive.Visited != rReplay.Visited {
						t.Fatalf("step %d: result mismatch live %+v replay %+v", step, rLive, rReplay)
					}
					if len(rLive.Changed) != len(rReplay.Changed) {
						t.Fatalf("step %d: changed mismatch live %v replay %v",
							step, rLive.Changed, rReplay.Changed)
					}
					for i := range rLive.Changed {
						if rLive.Changed[i] != rReplay.Changed[i] {
							t.Fatalf("step %d: changed order mismatch live %v replay %v",
								step, rLive.Changed, rReplay.Changed)
						}
					}
					for w := 0; w < n; w++ {
						if live.core[w] != replay.core[w] {
							t.Fatalf("step %d: core(%d) live %d replay %d",
								step, w, live.core[w], replay.core[w])
						}
						if live.degPlus[w] != replay.degPlus[w] {
							t.Fatalf("step %d: deg+(%d) live %d replay %d",
								step, w, live.degPlus[w], replay.degPlus[w])
						}
						if live.mcd[w] != replay.mcd[w] {
							t.Fatalf("step %d: mcd(%d) live %d replay %d",
								step, w, live.mcd[w], replay.mcd[w])
						}
					}
					lo, ro := live.Order(), replay.Order()
					for i := range lo {
						if lo[i] != ro[i] {
							t.Fatalf("step %d: k-order diverged at position %d: live %v replay %v",
								step, i, lo, ro)
						}
					}
				}
				if err := live.CheckInvariants(); err != nil {
					t.Fatalf("live invariants: %v", err)
				}
				if err := replay.CheckInvariants(); err != nil {
					t.Fatalf("replay invariants: %v", err)
				}
			})
		}
	}
}

// TestWriteLogCoversStateChanges checks the live write log against a
// before/after diff of the scalar maintained state: every vertex whose core,
// deg+, or mcd changed must appear in the log (the log may legitimately
// contain more — order moves and transient writes).
func TestWriteLogCoversStateChanges(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 5)
	m := New(g, Options{Seed: 3})
	m.StartWriteLog()
	defer m.StopWriteLog()
	rng := rand.New(rand.NewPCG(8, 16))
	n := g.NumVertices()
	snap := func() ([]int, []int, []int) {
		c := append([]int(nil), m.core...)
		d := append([]int(nil), m.degPlus...)
		mc := append([]int(nil), m.mcd...)
		return c, d, mc
	}
	for step := 0; step < 300; step++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		c0, d0, m0 := snap()
		var err error
		if m.g.HasEdge(u, v) {
			_, err = m.Remove(u, v)
		} else {
			_, err = m.Insert(u, v)
		}
		if err != nil {
			t.Fatal(err)
		}
		logged := map[int]bool{}
		for _, w := range m.TakeWriteLog() {
			logged[w] = true
		}
		c1, d1, m1 := snap()
		for w := 0; w < n; w++ {
			if (c0[w] != c1[w] || d0[w] != d1[w] || m0[w] != m1[w]) && !logged[w] {
				t.Fatalf("step %d: vertex %d changed (core %d->%d deg+ %d->%d mcd %d->%d) but was not logged",
					step, w, c0[w], c1[w], d0[w], d1[w], m0[w], m1[w])
			}
		}
	}
}

// TestReseedEquivalentToFresh: after wholesale graph mutation, Reseed must
// leave the maintainer indistinguishable from one freshly built on the same
// graph, and fully valid.
func TestReseedEquivalentToFresh(t *testing.T) {
	g := gen.ErdosRenyi(50, 100, 21)
	m := New(g, Options{Seed: 9})
	// Mutate the graph directly (as the engine's rebuild path does), then
	// reseed.
	rng := rand.New(rand.NewPCG(4, 2))
	for i := 0; i < 60; i++ {
		u, v := rng.IntN(50), rng.IntN(50)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			_ = g.RemoveEdge(u, v)
		} else {
			_ = g.AddEdge(u, v)
		}
	}
	m.Reseed()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after reseed: %v", err)
	}
	fresh := New(g.Clone(), Options{Seed: 9})
	fo, ro := fresh.Order(), m.Order()
	if len(fo) != len(ro) {
		t.Fatalf("order length %d vs fresh %d", len(ro), len(fo))
	}
	for i := range fo {
		if fo[i] != ro[i] {
			t.Fatalf("order diverges from fresh build at %d", i)
		}
	}
	for v := range fresh.core {
		if fresh.core[v] != m.core[v] {
			t.Fatalf("core(%d) = %d, fresh %d", v, m.core[v], fresh.core[v])
		}
	}
	// The reseeded maintainer keeps maintaining correctly.
	for i := 0; i < 40; i++ {
		u, v := rng.IntN(50), rng.IntN(50)
		if u == v {
			continue
		}
		var err error
		if m.g.HasEdge(u, v) {
			_, err = m.Remove(u, v)
		} else {
			_, err = m.Insert(u, v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after post-reseed churn: %v", err)
	}
}

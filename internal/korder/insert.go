package korder

import (
	"kcore/internal/order"
)

// relocation records "move v right after anchor" — the deferred replay of
// Algorithm 3's append of an evicted candidate to O'_K (see DESIGN.md §2.2:
// all physical O_K mutations are deferred to the end of the core phase so
// that rank snapshots taken during the scan remain mutually consistent).
type relocation struct {
	anchor int
	v      int
}

// Insert performs OrderInsert (Algorithm 2 + Algorithm 3): it adds the edge
// (u, v) to the graph and updates core numbers, the k-order, deg+, and mcd.
// It returns the set of vertices whose core number increased and the number
// of vertices the scan expanded (|V+|).
func (m *Maintainer) Insert(u, v int) (UpdateResult, error) {
	m.EnsureVertex(u)
	m.EnsureVertex(v)
	// Preparing phase: K, root, edge, deg+ and mcd edge deltas.
	if err := m.g.AddEdge(u, v); err != nil {
		return UpdateResult{}, err
	}
	m.stats.Inserts++
	// Both endpoints are logged unconditionally: even when an endpoint's
	// mcd and deg+ stay put, its adjacency changed, which is logical state
	// a concurrent simulation may have read (neighbor counts feed mcd
	// repair and deg+ recomputation).
	m.logw(u)
	m.logw(v)
	// mcd deltas use pre-update core numbers (the V* rise is accounted for
	// separately below, uniformly over all edges including this one).
	if m.core[v] >= m.core[u] {
		m.mcd[u]++
	}
	if m.core[u] >= m.core[v] {
		m.mcd[v]++
	}
	root := u
	if m.before(v, u) {
		root = v
	}
	K := m.core[root]
	m.degPlus[root]++ // root is already logged above
	res := UpdateResult{K: K}
	if m.degPlus[root] <= K {
		// Lemma 5.2: no core number changes; the order is still valid.
		return res, nil
	}

	// Core phase. All comparisons and rank snapshots run against the
	// unmutated O_K; physical mutations are recorded and replayed at the end.
	L := m.levels[K]
	m.degStar.reset()
	m.cand.reset()
	m.conf.reset()
	m.inHeap.reset()
	m.inQ.reset()
	m.heap.Reset()

	vc := m.vcBuf[:0]         // candidates in discovery order (superset of V*)
	relocs := m.relocsBuf[:0] // deferred evicted-candidate moves
	cursor := -1              // last vertex settled into O'_K (Case 2b anchor)
	visited := 0

	m.heap.Push(L.Key(root), root)
	m.inHeap.set(root)

	for {
		it, ok := m.heap.Pop()
		if !ok {
			break
		}
		w := it.V
		if m.cand.has(w) || m.conf.has(w) {
			continue // stale: already settled this update
		}
		m.inHeap.clear(w)
		ds := m.degStar.get(w)
		if ds == 0 && w != root {
			continue // stale: candidate support vanished (Case 2a region)
		}
		if ds+m.degPlus[w] > K {
			// Case 1: w is a potential member of V*.
			visited++
			m.cand.set(w)
			vc = append(vc, w)
			for _, z32 := range m.g.Neighbors(w) {
				z := int(z32)
				if m.core[z] == K && L.Less(w, z) {
					m.degStar.add(z, 1)
					if !m.inHeap.has(z) && !m.cand.has(z) && !m.conf.has(z) {
						m.inHeap.set(z)
						m.heap.Push(L.Key(z), z)
					}
				}
			}
			continue
		}
		// Case 2b (ds > 0, or the root with insufficient support): w stays
		// at level K; fold deg* into deg+ and cascade candidate removal.
		visited++
		m.conf.set(w)
		m.degPlus[w] += ds
		m.logw(w)
		m.degStar.set(w, 0)
		cursor = w
		cursor = m.removeCandidates(L, w, K, &relocs, cursor)
	}

	// Ending phase: replay deferred O_K mutations, then settle V*.
	for _, r := range relocs {
		L.Remove(r.v)
		L.InsertAfter(r.anchor, r.v)
	}
	vstar := vc[:0]
	for _, w := range vc {
		if m.cand.has(w) {
			vstar = append(vstar, w)
		}
	}
	if len(vstar) > 0 {
		m.ensureLevel(K + 1)
		up := m.levels[K+1]
		for _, w := range vstar {
			L.Remove(w)
		}
		// Insert V* at the beginning of O_{K+1} preserving relative order.
		for i := len(vstar) - 1; i >= 0; i-- {
			up.PushFront(vstar[i])
		}
		for _, w := range vstar {
			m.core[w] = K + 1
			m.logw(w)
			m.degStar.set(w, 0)
		}
		// mcd repair for the K -> K+1 rise (DESIGN.md §2.4).
		for _, w := range vstar {
			cnt := 0
			for _, z32 := range m.g.Neighbors(w) {
				z := int(z32)
				if m.core[z] >= K+1 {
					cnt++
				}
				if !m.cand.has(z) && m.core[z] == K+1 {
					m.mcd[z]++
					m.logw(z)
				}
			}
			m.mcd[w] = cnt
		}
	}
	// Return the pooled buffers (vstar is a compacted prefix of vc, so both
	// live in vcBuf; res.Changed aliases it until the next update).
	m.vcBuf = vc
	m.relocsBuf = relocs[:0]
	res.Changed = vstar
	res.Visited = visited
	m.stats.VisitedInsert += int64(visited)
	m.stats.ChangedInsert += int64(len(vstar))
	return res, nil
}

// removeCandidates is Algorithm 3: vi has just been confirmed to stay at
// level K; each candidate neighbor loses one unit of deg+ support, and
// candidates whose total support drops to K or below are evicted from VC
// (recursively), becoming confirmed level-K vertices placed right after vi
// in the new order. Returns the updated cursor (the last settled vertex).
func (m *Maintainer) removeCandidates(L order.List, vi, K int, relocs *[]relocation, cursor int) int {
	queue := m.queueBuf[:0]
	for _, z32 := range m.g.Neighbors(vi) {
		z := int(z32)
		if m.cand.has(z) {
			m.degPlus[z]--
			m.logw(z)
			if m.degPlus[z]+m.degStar.get(z) <= K && !m.inQ.has(z) {
				m.inQ.set(z)
				queue = append(queue, z)
			}
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		wp := queue[qi]
		// Evict wp: it stays at level K after all.
		m.cand.clear(wp)
		m.conf.set(wp)
		m.degPlus[wp] += m.degStar.get(wp)
		m.logw(wp)
		m.degStar.set(wp, 0)
		*relocs = append(*relocs, relocation{anchor: cursor, v: wp})
		cursor = wp
		for _, z32 := range m.g.Neighbors(wp) {
			z := int(z32)
			if m.core[z] != K {
				continue
			}
			switch {
			case L.Less(vi, z):
				// z is after the scan position: it loses one potential
				// candidate supporter.
				m.degStar.add(z, -1)
			case m.cand.has(z) && L.Less(wp, z):
				m.degStar.add(z, -1)
				if m.degPlus[z]+m.degStar.get(z) <= K && !m.inQ.has(z) {
					m.inQ.set(z)
					queue = append(queue, z)
				}
			case m.cand.has(z):
				m.degPlus[z]--
				m.logw(z)
				if m.degPlus[z]+m.degStar.get(z) <= K && !m.inQ.has(z) {
					m.inQ.set(z)
					queue = append(queue, z)
				}
			}
		}
	}
	m.queueBuf = queue[:0]
	return cursor
}

package korder

import (
	"fmt"

	"kcore/internal/graph"
)

// Remove performs OrderRemoval (Algorithm 4): it deletes the edge (u, v)
// from the graph and updates core numbers, the k-order, deg+, and mcd.
// V* discovery reuses the traversal-removal peeling with cd initialized
// from the maintained mcd; the k-order is repaired by moving V* to the end
// of O_{K-1} in discovery order.
func (m *Maintainer) Remove(u, v int) (UpdateResult, error) {
	if u < 0 || u >= len(m.core) || v < 0 || v >= len(m.core) {
		return UpdateResult{}, errMissing(u, v)
	}
	// deg+ delta for the removed edge itself (the paper's pseudocode omits
	// this; required whenever V* is empty or excludes the earlier endpoint).
	uFirst := m.before(u, v)
	if err := m.g.RemoveEdge(u, v); err != nil {
		return UpdateResult{}, err
	}
	m.stats.Removes++
	if uFirst {
		m.degPlus[u]--
	} else {
		m.degPlus[v]--
	}
	m.logw(u)
	m.logw(v)
	// mcd deltas with pre-update core numbers (lines 3-4 of Algorithm 4).
	if m.core[v] >= m.core[u] {
		m.mcd[u]--
	}
	if m.core[u] >= m.core[v] {
		m.mcd[v]--
	}
	K := m.core[u]
	if m.core[v] < K {
		K = m.core[v]
	}
	res := UpdateResult{K: K}

	// Find V* by peeling (Section IV-B): repeatedly dispose vertices at
	// level K whose upper bound cd on neighbors in the new K-core drops
	// below K. cd is lazily initialized from the maintained mcd (cdTouch).
	// vstar and stack are pooled buffers; written inline rather than via
	// dispose/touch closures, which would escape to the heap per update.
	m.cd.reset()
	m.inVStar.reset()
	m.moved.reset()
	vstar := m.vstarBuf[:0]
	stack := m.stackBuf[:0]
	for _, r := range [2]int{u, v} {
		if m.core[r] == K && !m.inVStar.has(r) && m.cdTouch(r) < K {
			m.inVStar.set(r)
			m.core[r] = K - 1
			m.logw(r)
			vstar = append(vstar, r)
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if m.core[z] != K || m.inVStar.has(z) {
				continue
			}
			cd := m.cdTouch(z) - 1
			m.cd.set(z, cd+1)
			if cd < K {
				m.inVStar.set(z)
				m.core[z] = K - 1
				m.logw(z)
				vstar = append(vstar, z)
				stack = append(stack, z)
			}
		}
	}
	m.vstarBuf, m.stackBuf = vstar, stack[:0]
	if len(vstar) == 0 {
		return res, nil
	}

	// k-order repair (Algorithm 4 lines 6-14): move V* to the end of
	// O_{K-1} in discovery order, recomputing each deg+ and decrementing
	// deg+ of earlier same-level neighbors.
	m.ensureLevel(K) // K >= 1 here: endpoints of an existing edge have core >= 1
	L := m.levels[K]
	down := m.levels[K-1]
	for _, w := range vstar {
		dp := 0
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if m.core[z] == K && L.Less(z, w) {
				m.degPlus[z]--
				m.logw(z)
			}
			if m.core[z] >= K || (m.inVStar.has(z) && !m.moved.has(z) && z != w) {
				dp++
			}
		}
		m.degPlus[w] = dp
		m.moved.set(w)
		L.Remove(w)
		down.PushBack(w)
	}
	// mcd repair for the K -> K-1 fall (DESIGN.md §2.4).
	for _, w := range vstar {
		cnt := 0
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if m.core[z] >= K-1 {
				cnt++
			}
			if !m.inVStar.has(z) && m.core[z] == K {
				m.mcd[z]--
				m.logw(z)
			}
		}
		m.mcd[w] = cnt
	}
	// res.Changed aliases the pooled vstarBuf until the next update (see
	// UpdateResult.Changed).
	res.Changed = vstar
	res.Visited = len(vstar)
	m.stats.ChangedRemove += int64(len(vstar))
	return res, nil
}

// cdTouch lazily initializes the peeling bound cd(w) from the maintained
// mcd on first touch this update, and returns it. The stored value is
// offset by +1 so that an initialized zero is distinguishable from
// "untouched" in the epoch-stamped array.
func (m *Maintainer) cdTouch(w int) int {
	if m.cd.get(w) == 0 && !m.inVStar.has(w) {
		m.cd.set(w, m.mcd[w]+1)
	}
	return m.cd.get(w) - 1
}

func errMissing(u, v int) error {
	return fmt.Errorf("korder: edge (%d,%d): %w", u, v, graph.ErrMissingEdge)
}

package korder

// Region estimation for the parallel batch planner: a cheap
// over-approximation of the vertices one update may touch, derived from the
// paper's locality result — an update at root core level K changes cores
// only inside the level-K connected region around the edge (V* is contained
// in the root's subcore, Section III), and reads or writes state only of
// that region and its direct neighbors. The BFS below is the capped,
// frontier-collecting version of the same level-K component walk that
// subcore.Maintainer.collectSubcore and decomp.Subcores perform statically.
//
// The estimate does not have to be sound for correctness: the simulation
// records its exact footprint, and the engine falls back to live sequential
// execution whenever the footprint escapes the claimed region. The estimate
// only has to be right often enough to keep the fallback rare.

const (
	// regionBFSCap bounds the number of same-level vertices the estimate
	// expands. Updates whose level-K region is larger run live. The cap is
	// deliberately tight: the paper's measurements show V* is almost always
	// tiny, and a giant level-K component (the modal core level of a
	// homogeneous graph) would otherwise burn the whole cap on every update
	// only to produce a region too big to be conflict-free — profiling
	// showed exactly that pathology dominating the planning phase.
	regionBFSCap = 24
	// regionSizeCap bounds the total estimated region (expanded vertices
	// plus their neighbors). Hub-adjacent regions beyond it run live.
	regionSizeCap = 512
)

// EstimateRegion appends to dst an over-approximated region for the update
// (insert, u, v), returning the region and whether the update is a
// candidate for simulation. ok=false means the update must run live: an
// endpoint is out of range, or the region blew past the caps.
//
// EstimateRegion is read-only and may run concurrently with other Sims'
// estimates and simulations, but not with mutations of the Maintainer.
func (s *Sim) EstimateRegion(insert bool, u, v int, dst []int32) ([]int32, bool) {
	m := s.m
	if u < 0 || v < 0 || u >= len(m.core) || v >= len(m.core) {
		return dst, false
	}
	// fpSet doubles as the region dedup set, inQ as the BFS-visited set;
	// both are reset by the next begin()/EstimateRegion call.
	s.fpSet.reset()
	s.inQ.reset()
	dst = dst[:0]
	add := func(w int) {
		if !s.fpSet.has(w) {
			s.fpSet.set(w)
			dst = append(dst, int32(w))
		}
	}
	add(u)
	add(v)
	s.pu, s.pv = u, v
	s.patchAdd, s.patchDel = insert, !insert

	var K int
	queue := s.queueBuf[:0]
	if insert {
		cu, cv := m.core[u], m.core[v]
		root := u
		if cv < cu || (cv == cu && m.levels[cu].Less(v, u)) {
			root = v
		}
		K = m.core[root]
		if m.degPlus[root]+1 <= K {
			// Lemma 5.2 at snapshot time: the update touches only its
			// endpoints (mcd, deg+, order comparison). If a batch-earlier
			// update invalidates this prediction, it must have written the
			// root — which is in this region, so the groups conflict or the
			// dirty check demotes us. Either way the fallback is sound.
			s.queueBuf = queue
			return dst, true
		}
		s.inQ.set(root)
		queue = append(queue, root)
	} else {
		cu, cv := m.core[u], m.core[v]
		K = cu
		if cv < K {
			K = cv
		}
		// Peeling starts only if an endpoint's post-removal mcd drops below
		// K; otherwise the update touches only its endpoints.
		starts := false
		for _, r := range [2]int{u, v} {
			other := u + v - r
			if m.core[r] != K {
				continue
			}
			mcdAfter := m.mcd[r]
			if m.core[other] >= m.core[r] {
				mcdAfter--
			}
			if mcdAfter < K {
				starts = true
			}
			s.inQ.set(r)
			queue = append(queue, r)
		}
		if !starts {
			s.queueBuf = queue[:0]
			return dst, true
		}
	}

	// BFS over the level-K region reachable from the seeds, collecting the
	// expanded vertices and all their neighbors (state of both is read:
	// cores of every neighbor, deg+/order of same-level ones).
	pops := 0
	for qi := 0; qi < len(queue); qi++ {
		w := queue[qi]
		pops++
		if pops > regionBFSCap {
			s.queueBuf = queue[:0]
			return dst, false
		}
		add(w)
		s.eachNeighbor(w, func(z int) {
			add(z)
			if m.core[z] == K && !s.inQ.has(z) {
				s.inQ.set(z)
				queue = append(queue, z)
			}
		})
		if len(dst) > regionSizeCap {
			s.queueBuf = queue[:0]
			return dst, false
		}
	}
	s.queueBuf = queue[:0]
	return dst, true
}

package korder

import (
	"math/rand/v2"
	"testing"

	"kcore/internal/graph"
)

// BenchmarkMaintainerChurn measures the maintainer's steady-state update
// path (mixed Insert/Remove on a fixed vertex set). With arena-backed
// levels, the hybrid adjacency index, and pooled scratch, the loop should
// sit near zero allocs/op.
func BenchmarkMaintainerChurn(b *testing.B) {
	const n = 2000
	g := graph.New(n)
	rng := rand.New(rand.NewPCG(5, 6))
	for g.NumEdges() < 4*n {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	m := New(g, Options{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			if _, err := m.Remove(u, v); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := m.Insert(u, v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMaintainerInsertOnly grows a fresh maintained index by one edge
// per iteration (the paper's insertion workload shape).
func BenchmarkMaintainerInsertOnly(b *testing.B) {
	const n = 2000
	rng := rand.New(rand.NewPCG(7, 8))
	g := graph.New(n)
	m := New(g, Options{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if _, err := m.Insert(u, v); err != nil {
			b.Fatal(err)
		}
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/korder"
	"kcore/internal/workload"
)

// Hot-path micro-experiments: measured evidence for the allocation-free
// update path (arena-backed order lists, hybrid adjacency index, pooled
// per-update scratch). Each experiment runs through testing.Benchmark and
// reports ns/op, B/op and allocs/op; kcore-bench -experiment hotpath
// renders the table and, with -json, appends the results to a
// machine-readable report (see Report).

// Result is one measured benchmark, serializable into the BENCH_*.json
// trajectory format.
//
// AllocsPerOp and BytesPerOp are pointers so that a result which never
// measured allocations (the latency-style experiments: serve, replicate,
// chaos) omits the fields entirely instead of reporting a misleading 0,
// while a genuinely measured zero — the whole point of the hot-path
// experiments — still serializes as 0. Use Measured to set them.
type Result struct {
	Name        string         `json:"name"`
	NsPerOp     float64        `json:"ns_per_op"`
	AllocsPerOp *int64         `json:"allocs_per_op,omitempty"`
	BytesPerOp  *int64         `json:"bytes_per_op,omitempty"`
	Iterations  int            `json:"iterations"`
	Params      map[string]any `json:"params,omitempty"`
}

// Measured stamps an allocation measurement onto the result.
func (r *Result) Measured(allocsPerOp, bytesPerOp int64) {
	r.AllocsPerOp = &allocsPerOp
	r.BytesPerOp = &bytesPerOp
}

// Report is the one-document JSON format kcore-bench -json writes and
// future BENCH_*.json files append to.
type Report struct {
	Schema  string   `json:"schema"` // "kcore-bench/v1"
	Go      string   `json:"go"`
	Arch    string   `json:"arch"`
	Results []Result `json:"results"`
}

// ReportSchema identifies the current JSON report format.
const ReportSchema = "kcore-bench/v1"

// NewReport returns an empty report stamped with the runtime environment.
// Results starts non-nil so an empty report marshals as "results": [].
func NewReport() *Report {
	return &Report{Schema: ReportSchema, Go: runtime.Version(), Arch: runtime.GOARCH,
		Results: []Result{}}
}

// Write serializes the report as one indented JSON document.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// benchRunner indirects testing.Benchmark so tests can substitute a
// single-iteration runner instead of paying ~1s of auto-tuning per
// experiment.
var benchRunner = testing.Benchmark

// PrintResultHeader writes the column header RunMeasured's rows line up
// under.
func PrintResultHeader(w io.Writer) {
	fmt.Fprintf(w, "%-28s %14s %12s %12s\n", "experiment", "ns/op", "B/op", "allocs/op")
}

// StampParams copies params (so callers' maps stay untouched) and stamps
// the runtime environment every measured result must carry for
// reproducibility: GOMAXPROCS and the physical CPU count. Experiment-
// specific worker counts are the caller's responsibility.
func StampParams(params map[string]any) map[string]any {
	out := make(map[string]any, len(params)+2)
	for k, v := range params {
		out[k] = v
	}
	out["gomaxprocs"] = runtime.GOMAXPROCS(0)
	out["cpus"] = runtime.NumCPU()
	return out
}

// RunMeasured runs fn through the benchmark runner, prints one table row
// to w, and returns the structured result. It is the shared measurement
// path for Hotpath and kcore-bench's engine-level experiments. The result's
// params are stamped with GOMAXPROCS and the CPU count.
func RunMeasured(w io.Writer, name string, params map[string]any, fn func(b *testing.B)) Result {
	r := benchRunner(fn)
	res := Result{
		Name:       name,
		NsPerOp:    float64(r.NsPerOp()),
		Iterations: r.N,
		Params:     StampParams(params),
	}
	res.Measured(r.AllocsPerOp(), r.AllocedBytesPerOp())
	fmt.Fprintf(w, "%-28s %14.0f %12d %12d\n",
		res.Name, res.NsPerOp, *res.BytesPerOp, *res.AllocsPerOp)
	return res
}

// hotpathExperiment is one named benchmark closure.
type hotpathExperiment struct {
	name   string
	params map[string]any
	fn     func(b *testing.B)
}

// hotpathExperiments builds the experiment list. Sizes follow cfg.Edges
// (default 10000) where a workload size applies.
func hotpathExperiments(cfg Config) []hotpathExperiment {
	// The churn workload toggles a sample of the fixture graph's edges; the
	// sample is capped so it stays a subset of the 8000-edge fixture.
	churnSample := min(cfg.Edges, 4000)
	return []hotpathExperiment{
		{
			name:   "korder/insert/social",
			params: map[string]any{"graph": "barabasi-albert", "n": 5000, "m0": 8, "edges": 2000},
			fn: func(b *testing.B) {
				g := gen.BarabasiAlbert(5000, 8, 3)
				sample := workload.SampleEdges(g, 2000, 5)
				workload.RemoveAll(g, sample)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					gc := g.Clone()
					m := korder.New(gc, korder.Options{Seed: 1})
					b.StartTimer()
					for _, e := range sample {
						if _, err := m.Insert(e.U, e.V); err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		{
			name:   "korder/churn/steady-state",
			params: map[string]any{"n": 2000, "graph_edges": 8000, "sampled_edges": churnSample},
			fn: func(b *testing.B) {
				g := gen.ErdosRenyi(2000, 8000, 9)
				m := korder.New(g, korder.Options{Seed: 1})
				sample := workload.SampleEdges(g, churnSample, 7)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e := sample[i%len(sample)]
					if g.HasEdge(e.U, e.V) {
						if _, err := m.Remove(e.U, e.V); err != nil {
							b.Fatal(err)
						}
					} else {
						if _, err := m.Insert(e.U, e.V); err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		{
			name:   "graph/hybrid/addremove",
			params: map[string]any{"n": 4096, "threshold": graph.IndexThreshold},
			fn: func(b *testing.B) {
				g := gen.BarabasiAlbert(4096, 4, 11)
				sample := workload.SampleEdges(g, 2048, 13)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e := sample[i%len(sample)]
					if g.HasEdge(e.U, e.V) {
						if err := g.RemoveEdge(e.U, e.V); err != nil {
							b.Fatal(err)
						}
					} else {
						if err := g.AddEdge(e.U, e.V); err != nil {
							b.Fatal(err)
						}
					}
				}
			},
		},
		{
			name:   "graph/hybrid/hasedge",
			params: map[string]any{"n": 4096, "threshold": graph.IndexThreshold},
			fn: func(b *testing.B) {
				g := gen.BarabasiAlbert(4096, 4, 17)
				sample := workload.SampleEdges(g, 2048, 19)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e := sample[i%len(sample)]
					_ = g.HasEdge(e.U, e.V)
					_ = g.HasEdge(e.U, (e.V+1)%4096)
				}
			},
		},
		{
			name:   "order/arena/migrate",
			params: map[string]any{"n": 1024, "lists": 2},
			fn:     benchArenaMigrate,
		},
	}
}

// benchArenaMigrate mirrors order's BenchmarkOrderMigrate: level-migration
// slot reuse between two lists on one shared arena, through the korder
// maintainer's own structures.
func benchArenaMigrate(b *testing.B) {
	g := graph.New(1024)
	for v := 1; v < 1024; v++ {
		if err := g.AddEdge(0, v); err != nil {
			b.Fatal(err)
		}
	}
	m := korder.New(g, korder.Options{Seed: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i%1023 + 1
		// Removing and re-adding a spoke moves the leaf across levels.
		if _, err := m.Remove(0, v); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Insert(0, v); err != nil {
			b.Fatal(err)
		}
	}
}

// Hotpath runs the hot-path micro-experiments, prints a table to cfg.Out,
// and returns the structured results.
func Hotpath(cfg Config) []Result {
	cfg = cfg.withDefaults()
	exps := hotpathExperiments(cfg)
	results := make([]Result, 0, len(exps))
	PrintResultHeader(cfg.Out)
	for _, e := range exps {
		results = append(results, RunMeasured(cfg.Out, e.name, e.params, e.fn))
	}
	return results
}

// Package bench implements the paper's evaluation harness: one driver per
// table and figure of Section VII (see DESIGN.md §4 for the index). Every
// driver prints a paper-style plain-text table to Config.Out and returns
// its data for programmatic assertions.
//
// Workload sizes default to the paper's counts scaled down 10x (10,000
// sampled edges instead of 100,000) to match the ~20x reduced synthetic
// datasets; both are configurable.
package bench

import (
	"fmt"
	"io"
	"time"

	"kcore/internal/datasets"
	"kcore/internal/decomp"
	"kcore/internal/graph"
	"kcore/internal/korder"
	"kcore/internal/traversal"
	"kcore/internal/workload"
)

// Config parameterizes the experiment drivers.
type Config struct {
	// Out receives the rendered tables. Required.
	Out io.Writer
	// Edges is the number of sampled edges per workload (paper: 100,000).
	Edges int
	// Groups is the number of groups in the stability test (paper: 100).
	Groups int
	// Hops lists the traversal variants to run (paper: 2..6).
	Hops []int
	// Seed drives all sampling deterministically.
	Seed uint64
	// Datasets overrides the dataset list (default: datasets.All()).
	Datasets []datasets.Dataset
	// Workers lists the worker counts the parallel experiment sweeps
	// (default 1, 2, 4, 8).
	Workers []int
}

// WithDefaults fills zero fields with the scaled-paper defaults.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills zero fields with the scaled-paper defaults.
func (c Config) withDefaults() Config {
	if c.Edges == 0 {
		c.Edges = 10000
	}
	if c.Groups == 0 {
		c.Groups = 10
	}
	if len(c.Hops) == 0 {
		c.Hops = []int{2, 3, 4, 5, 6}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Datasets == nil {
		c.Datasets = datasets.All()
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// temporal reports whether the paper treats this dataset's edges as
// time-stamped (latest-edge workload selection).
func temporal(name string) bool {
	switch name {
	case "facebook-sim", "youtube-sim", "dblp-sim":
		return true
	}
	return false
}

// sampleWorkload picks the update workload for a dataset: the latest Edges
// edges for temporal analogs, a uniform sample otherwise (Section VII).
func sampleWorkload(cfg Config, d datasets.Dataset, g *graph.Undirected) []workload.Edge {
	if temporal(d.Name) {
		return workload.LatestEdges(g, cfg.Edges)
	}
	return workload.SampleEdges(g, cfg.Edges, cfg.Seed)
}

// prepared is a dataset with its workload edges removed, ready for a timed
// reinsertion pass.
type prepared struct {
	d     datasets.Dataset
	g     *graph.Undirected
	edges []workload.Edge
}

// prepare builds the dataset graph, samples the workload, and removes the
// sampled edges so drivers can time their (re)insertion.
func prepare(cfg Config, d datasets.Dataset) prepared {
	g := d.Build()
	edges := sampleWorkload(cfg, d, g)
	workload.RemoveAll(g, edges)
	return prepared{d: d, g: g, edges: edges}
}

// timeIt measures fn's wall-clock duration in seconds.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// newOrder builds an order-based maintainer with bench defaults.
func newOrder(g *graph.Undirected, seed uint64) *korder.Maintainer {
	return korder.New(g, korder.Options{Heuristic: decomp.SmallDegPlusFirst, Seed: seed})
}

// newTrav builds a traversal maintainer.
func newTrav(g *graph.Undirected, hops int) *traversal.Maintainer {
	return traversal.New(g, hops)
}

func fprintln(w io.Writer, args ...any) {
	if _, err := fmt.Fprintln(w, args...); err != nil {
		// Output failures (e.g. closed pipe) should not abort experiments.
		_ = err
	}
}

package bench

import (
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	var sample []time.Duration
	for i := 100; i >= 1; i-- { // descending: Summarize must sort
		sample = append(sample, time.Duration(i)*time.Millisecond)
	}
	s := Summarize(sample)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms (nearest rank ceil(0.5*100)=50)", s.P50)
	}
	if s.P90 != 90*time.Millisecond {
		t.Errorf("p90 = %v, want 90ms", s.P90)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms (must not collapse to max)", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", s.Mean)
	}
	if z := Summarize(nil); z.Count != 0 || z.P99 != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestQuantileBounds(t *testing.T) {
	sorted := []time.Duration{1, 2, 3}
	if Quantile(sorted, 0) != 1 || Quantile(sorted, 1) != 3 {
		t.Fatal("quantile bounds wrong")
	}
	if Quantile(sorted, 0.5) != 2 {
		t.Fatalf("median = %v", Quantile(sorted, 0.5))
	}
}

func TestLatencySummaryParams(t *testing.T) {
	s := Summarize([]time.Duration{time.Microsecond, 2 * time.Microsecond})
	p := s.Params(map[string]any{"writers": 4})
	if p["count"] != 2 || p["writers"] != 4 {
		t.Fatalf("params = %v", p)
	}
	if p["p50_ns"] != int64(1000) {
		t.Fatalf("p50_ns = %v, want 1000 (nearest rank ceil(0.5*2)=1)", p["p50_ns"])
	}
}

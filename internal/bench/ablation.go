package bench

import (
	"kcore/internal/korder"
	"kcore/internal/order"
	"kcore/internal/stats"
)

// AblationRow compares the two order-structure implementations (the paper's
// order-statistics treap vs the tag-list with O(1) comparisons) on the same
// insertion+removal workload.
type AblationRow struct {
	Dataset    string
	TreapSec   float64
	TagSec     float64
	TreapBuild float64
	TagBuild   float64
}

// AblationOrderStructure benchmarks the design choice of Section VI(A):
// how much of OrderInsert/OrderRemoval's cost is attributable to the
// O(log n) treap comparisons, by swapping in a labeled list with O(1)
// comparisons. (The treap is still required when rank queries are needed;
// the tag list trades rank for comparison speed.)
func AblationOrderStructure(cfg Config) []AblationRow {
	cfg = cfg.withDefaults()
	var rows []AblationRow
	tb := &stats.Table{Header: []string{"dataset", "treap build(s)", "tag build(s)", "treap ins+rem(s)", "tag ins+rem(s)"}}
	for _, d := range cfg.Datasets {
		p := prepare(cfg, d)
		row := AblationRow{Dataset: d.Name}
		for _, kind := range []order.Kind{order.KindTreap, order.KindTagList} {
			g := p.g.Clone()
			var m *korder.Maintainer
			build := timeIt(func() {
				m = korder.New(g, korder.Options{OrderKind: kind, Seed: cfg.Seed})
			})
			run := timeIt(func() {
				for _, e := range p.edges {
					if _, err := m.Insert(e.U, e.V); err != nil {
						panic(err)
					}
				}
				for _, e := range p.edges {
					if _, err := m.Remove(e.U, e.V); err != nil {
						panic(err)
					}
				}
			})
			if kind == order.KindTreap {
				row.TreapBuild, row.TreapSec = build, run
			} else {
				row.TagBuild, row.TagSec = build, run
			}
		}
		rows = append(rows, row)
		tb.AddRow(d.Name, stats.FSec(row.TreapBuild), stats.FSec(row.TagBuild),
			stats.FSec(row.TreapSec), stats.FSec(row.TagSec))
	}
	fprintln(cfg.Out, "Ablation: order-statistics treap vs tag list (same workload)")
	fprintln(cfg.Out, tb.String())
	return rows
}

// HeuristicTimingRow times the full insertion workload under each k-order
// generation heuristic (the timing companion to Fig. 9's ratio view).
type HeuristicTimingRow struct {
	Dataset string
	Small   float64
	Large   float64
	Random  float64
}

// AblationHeuristicTiming measures how the initial-order heuristic affects
// end-to-end insertion time.
func AblationHeuristicTiming(cfg Config) []HeuristicTimingRow {
	cfg = cfg.withDefaults()
	var rows []HeuristicTimingRow
	tb := &stats.Table{Header: []string{"dataset", "small deg+ (s)", "large deg+ (s)", "random deg+ (s)"}}
	for _, d := range cfg.Datasets {
		p := prepare(cfg, d)
		row := HeuristicTimingRow{Dataset: d.Name}
		for hi, h := range heuristicsAll() {
			g := p.g.Clone()
			m := korder.New(g, korder.Options{Heuristic: h, Seed: cfg.Seed})
			sec := timeIt(func() {
				for _, e := range p.edges {
					if _, err := m.Insert(e.U, e.V); err != nil {
						panic(err)
					}
				}
			})
			switch hi {
			case 0:
				row.Small = sec
			case 1:
				row.Large = sec
			default:
				row.Random = sec
			}
		}
		rows = append(rows, row)
		tb.AddRow(d.Name, stats.FSec(row.Small), stats.FSec(row.Large), stats.FSec(row.Random))
	}
	fprintln(cfg.Out, "Ablation: insertion time under each k-order generation heuristic")
	fprintln(cfg.Out, tb.String())
	return rows
}

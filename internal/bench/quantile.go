package bench

import (
	"math"
	"slices"
	"time"
)

// Latency summarization for the request-level experiments (kcore-bench
// -experiment serve): the service-layer benchmarks measure per-request
// wall-clock samples under concurrency, where a distribution — not a single
// ns/op — is the honest result.

// LatencySummary condenses a latency sample into the percentiles the serve
// experiment records.
type LatencySummary struct {
	Count int
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Summarize computes the summary of a sample (the input slice is sorted in
// place). A nil or empty sample yields a zero summary.
func Summarize(sample []time.Duration) LatencySummary {
	if len(sample) == 0 {
		return LatencySummary{}
	}
	slices.Sort(sample)
	var sum time.Duration
	for _, d := range sample {
		sum += d
	}
	return LatencySummary{
		Count: len(sample),
		P50:   Quantile(sample, 0.50),
		P90:   Quantile(sample, 0.90),
		P99:   Quantile(sample, 0.99),
		Max:   sample[len(sample)-1],
		Mean:  sum / time.Duration(len(sample)),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using the nearest-rank method (1-indexed rank ceil(q*n)). It
// panics on an empty sample.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Params renders the summary as result params (nanosecond values), merged
// with extra.
func (s LatencySummary) Params(extra map[string]any) map[string]any {
	out := map[string]any{
		"count":   s.Count,
		"p50_ns":  s.P50.Nanoseconds(),
		"p90_ns":  s.P90.Nanoseconds(),
		"p99_ns":  s.P99.Nanoseconds(),
		"max_ns":  s.Max.Nanoseconds(),
		"mean_ns": s.Mean.Nanoseconds(),
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

package bench

import (
	"kcore/internal/stats"
	"kcore/internal/subcore"
)

// BaselineRow compares the insertion search space of the three maintenance
// algorithm families on the same workload: SubCore (materializes the whole
// subcore), Traversal (prunes with pcd), and Order-based (jumps along the
// k-order). This extends Fig. 2 with the paper's Section II lineage:
// sc ⊇ V' ⊇ ... and V+ ⊆ oc.
type BaselineRow struct {
	Dataset   string
	Subcore   float64 // sum |sc| / sum |V*|
	Traversal float64 // sum |V'| / sum |V*|
	Order     float64 // sum |V+| / sum |V*|
}

// BaselineSearchSpace reproduces the search-space comparison across all
// three algorithm families.
func BaselineSearchSpace(cfg Config) []BaselineRow {
	cfg = cfg.withDefaults()
	var rows []BaselineRow
	tb := &stats.Table{Header: []string{"dataset", "subcore |sc|/|V*|", "traversal |V'|/|V*|", "order |V+|/|V*|"}}
	for _, d := range cfg.Datasets {
		p := prepare(cfg, d)
		var rS, rT, rO stats.Ratio
		{
			g := p.g.Clone()
			m := subcore.New(g)
			for _, e := range p.edges {
				res, err := m.Insert(e.U, e.V)
				if err != nil {
					panic(err)
				}
				rS.Add(res.Visited, len(res.Changed))
			}
		}
		{
			g := p.g.Clone()
			m := newTrav(g, 2)
			for _, e := range p.edges {
				res, err := m.Insert(e.U, e.V)
				if err != nil {
					panic(err)
				}
				rT.Add(res.Visited, len(res.Changed))
			}
		}
		{
			g := p.g.Clone()
			m := newOrder(g, cfg.Seed)
			for _, e := range p.edges {
				res, err := m.Insert(e.U, e.V)
				if err != nil {
					panic(err)
				}
				rO.Add(res.Visited, len(res.Changed))
			}
		}
		row := BaselineRow{Dataset: d.Name, Subcore: rS.Value(), Traversal: rT.Value(), Order: rO.Value()}
		rows = append(rows, row)
		tb.AddRow(d.Name, stats.F(row.Subcore), stats.F(row.Traversal), stats.F(row.Order))
	}
	fprintln(cfg.Out, "Baselines: insertion search space per updated vertex, three algorithm families")
	fprintln(cfg.Out, tb.String())
	return rows
}

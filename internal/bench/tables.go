package bench

import (
	"fmt"

	"kcore/internal/decomp"
	"kcore/internal/stats"
)

// TableIRow holds one dataset's statistics (paper Table I).
type TableIRow struct {
	Dataset string
	Paper   string
	N       int
	M       int
	AvgDeg  float64
	MaxCore int
}

// TableI reproduces Table I: dataset statistics for the synthetic analogs.
func TableI(cfg Config) []TableIRow {
	cfg = cfg.withDefaults()
	var rows []TableIRow
	tb := &stats.Table{Header: []string{"dataset", "paper graph", "n=|V|", "m=|E|", "avg. deg", "max k"}}
	for _, d := range cfg.Datasets {
		g := d.Build()
		row := TableIRow{
			Dataset: d.Name,
			Paper:   d.Paper,
			N:       g.NumVertices(),
			M:       g.NumEdges(),
			AvgDeg:  g.AvgDegree(),
			MaxCore: decomp.Degeneracy(g),
		}
		rows = append(rows, row)
		tb.AddRow(d.Name, d.Paper, stats.I(row.N), stats.I(row.M),
			fmt.Sprintf("%.2f", row.AvgDeg), stats.I(row.MaxCore))
	}
	fprintln(cfg.Out, "Table I: dataset statistics (synthetic analogs; see DESIGN.md §3)")
	fprintln(cfg.Out, tb.String())
	return rows
}

// TableIIRow holds one dataset's accumulated maintenance times in seconds:
// the order-based algorithms vs each traversal hop variant (paper Table II).
type TableIIRow struct {
	Dataset     string
	OrderInsert float64
	TravInsert  map[int]float64
	OrderRemove float64
	TravRemove  map[int]float64
}

// TableII reproduces Table II: accumulated time to insert the workload
// edges one by one, then remove them, for OrderInsert/OrderRemoval vs
// Trav-h for each configured h.
func TableII(cfg Config) []TableIIRow {
	cfg = cfg.withDefaults()
	var rows []TableIIRow
	header := []string{"dataset", "OrderInsert"}
	for _, h := range cfg.Hops {
		header = append(header, fmt.Sprintf("Trav-%d ins", h))
	}
	header = append(header, "OrderRemoval")
	for _, h := range cfg.Hops {
		header = append(header, fmt.Sprintf("Trav-%d rem", h))
	}
	tb := &stats.Table{Header: header}
	for _, d := range cfg.Datasets {
		p := prepare(cfg, d)
		row := TableIIRow{
			Dataset:    d.Name,
			TravInsert: make(map[int]float64),
			TravRemove: make(map[int]float64),
		}
		// Order-based pass: insert all, then remove all.
		{
			g := p.g.Clone()
			m := newOrder(g, cfg.Seed)
			row.OrderInsert = timeIt(func() {
				for _, e := range p.edges {
					if _, err := m.Insert(e.U, e.V); err != nil {
						panic(err)
					}
				}
			})
			row.OrderRemove = timeIt(func() {
				for _, e := range p.edges {
					if _, err := m.Remove(e.U, e.V); err != nil {
						panic(err)
					}
				}
			})
		}
		// Traversal passes.
		for _, h := range cfg.Hops {
			g := p.g.Clone()
			m := newTrav(g, h)
			row.TravInsert[h] = timeIt(func() {
				for _, e := range p.edges {
					if _, err := m.Insert(e.U, e.V); err != nil {
						panic(err)
					}
				}
			})
			row.TravRemove[h] = timeIt(func() {
				for _, e := range p.edges {
					if _, err := m.Remove(e.U, e.V); err != nil {
						panic(err)
					}
				}
			})
		}
		rows = append(rows, row)
		cells := []string{d.Name, stats.FSec(row.OrderInsert)}
		for _, h := range cfg.Hops {
			cells = append(cells, stats.FSec(row.TravInsert[h]))
		}
		cells = append(cells, stats.FSec(row.OrderRemove))
		for _, h := range cfg.Hops {
			cells = append(cells, stats.FSec(row.TravRemove[h]))
		}
		tb.AddRow(cells...)
		// Long-running experiment: stream progress so partial runs are
		// still useful.
		fprintln(cfg.Out, "# completed", d.Name)
	}
	fprintln(cfg.Out, fmt.Sprintf(
		"Table II: accumulated maintenance time in seconds (%d edges inserted then removed)", cfg.Edges))
	fprintln(cfg.Out, tb.String())
	return rows
}

// TableIIIRow holds one dataset's index construction times in seconds.
type TableIIIRow struct {
	Dataset string
	Order   float64
	Trav    map[int]float64
}

// TableIII reproduces Table III: time to create each algorithm's index
// (including the initial core decomposition).
func TableIII(cfg Config) []TableIIIRow {
	cfg = cfg.withDefaults()
	var rows []TableIIIRow
	header := []string{"dataset", "order-based"}
	for _, h := range cfg.Hops {
		header = append(header, fmt.Sprintf("Trav-%d", h))
	}
	tb := &stats.Table{Header: header}
	for _, d := range cfg.Datasets {
		g := d.Build()
		row := TableIIIRow{Dataset: d.Name, Trav: make(map[int]float64)}
		row.Order = timeIt(func() { _ = newOrder(g.Clone(), cfg.Seed) })
		for _, h := range cfg.Hops {
			h := h
			row.Trav[h] = timeIt(func() { _ = newTrav(g.Clone(), h) })
		}
		rows = append(rows, row)
		cells := []string{d.Name, stats.FSec(row.Order)}
		for _, h := range cfg.Hops {
			cells = append(cells, stats.FSec(row.Trav[h]))
		}
		tb.AddRow(cells...)
	}
	fprintln(cfg.Out, "Table III: index creation time in seconds")
	fprintln(cfg.Out, tb.String())
	return rows
}

// Experiments maps experiment names to runners for the CLI.
var Experiments = map[string]func(Config){
	"table1":             func(c Config) { TableI(c) },
	"table2":             func(c Config) { TableII(c) },
	"table3":             func(c Config) { TableIII(c) },
	"fig1":               func(c Config) { Fig1(c) },
	"fig2":               func(c Config) { Fig2(c) },
	"fig5":               func(c Config) { Fig5(c) },
	"fig9":               func(c Config) { Fig9(c) },
	"fig10":              func(c Config) { Fig10(c) },
	"fig11":              func(c Config) { Fig11(c) },
	"fig12":              func(c Config) { Fig12(c) },
	"ablation-order":     func(c Config) { AblationOrderStructure(c) },
	"ablation-heuristic": func(c Config) { AblationHeuristicTiming(c) },
	"baselines":          func(c Config) { BaselineSearchSpace(c) },
	"hotpath":            func(c Config) { Hotpath(c) },
}

// ExperimentNames lists the runnable experiments in report order.
var ExperimentNames = []string{
	"table1", "fig1", "fig2", "fig5", "fig9", "fig10", "table2", "table3",
	"fig11", "fig12", "ablation-order", "ablation-heuristic", "baselines",
	"hotpath",
}

// heuristicsAll returns the three k-order heuristics in paper order.
func heuristicsAll() []decomp.Heuristic {
	return []decomp.Heuristic{
		decomp.SmallDegPlusFirst, decomp.LargeDegPlusFirst, decomp.RandomDegPlusFirst,
	}
}

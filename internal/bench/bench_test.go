package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"kcore/internal/datasets"
)

// tinyConfig keeps experiment runtime small: three reduced datasets and a
// few hundred workload edges.
func tinyConfig(out *strings.Builder) Config {
	return Config{
		Out:      out,
		Edges:    300,
		Groups:   4,
		Hops:     []int{2, 3},
		Seed:     7,
		Datasets: datasets.Small(),
	}
}

func TestTableI(t *testing.T) {
	var out strings.Builder
	rows := TableI(tinyConfig(&out))
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.N == 0 || r.M == 0 || r.MaxCore == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatal("missing header")
	}
}

func TestFig1And2ShapeClaims(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	rows1 := Fig1(cfg)
	if len(rows1) != 3 {
		t.Fatalf("fig1 rows=%d", len(rows1))
	}
	for _, r := range rows1 {
		// Paper claim: the order-based algorithm's visited counts are
		// concentrated in the small buckets — the fraction of insertions
		// visiting <=10 vertices is at least as high as the traversal's.
		ordSmall := r.Order[0] + r.Order[1]
		travSmall := r.Traversal[0] + r.Traversal[1]
		if ordSmall+1e-9 < travSmall {
			t.Errorf("%s: order small-bucket mass %.3f < traversal %.3f",
				r.Dataset, ordSmall, travSmall)
		}
	}
	rows2 := Fig2(cfg)
	for _, r := range rows2 {
		// Paper claims: the order-based ratio is small (<4 on the paper's
		// real graphs; the synthetic analogs at tiny scale are noisier, so
		// assert a loose absolute bound) and never above the traversal's.
		if r.OrderRatio > 25 {
			t.Errorf("%s: order ratio %.2f implausibly large", r.Dataset, r.OrderRatio)
		}
		if r.OrderRatio > r.TraversalRatio*1.05+1e-9 {
			t.Errorf("%s: order ratio %.2f above traversal %.2f",
				r.Dataset, r.OrderRatio, r.TraversalRatio)
		}
	}
}

func TestFig5(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	rows := Fig5(cfg)
	if len(rows) != 2 {
		t.Fatalf("fig5 rows=%d", len(rows))
	}
	for _, r := range rows {
		// CDFs are monotone and end at 1 (sizes are bounded by n <= 10000
		// for the tiny datasets).
		for _, series := range [][]float64{r.PC, r.SC, r.OC} {
			for i := 1; i < len(series); i++ {
				if series[i]+1e-9 < series[i-1] {
					t.Fatalf("%s: CDF not monotone: %v", r.Dataset, series)
				}
			}
			if series[len(series)-1] < 0.999 {
				t.Fatalf("%s: CDF does not reach 1: %v", r.Dataset, series)
			}
		}
		// Paper claim: oc is stochastically smaller than pc (its CDF is
		// pointwise at least as large).
		for i := range r.OC {
			if r.OC[i]+0.05 < r.PC[i] {
				t.Errorf("%s: oc CDF %.3f below pc CDF %.3f at threshold %d",
					r.Dataset, r.OC[i], r.PC[i], Fig5Thresholds[i])
			}
		}
	}
}

func TestFig9(t *testing.T) {
	var out strings.Builder
	rows := Fig9(tinyConfig(&out))
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Small <= 0 || r.Large <= 0 || r.Random <= 0 {
			t.Fatalf("%s: degenerate ratios %+v", r.Dataset, r)
		}
		// Paper claim (Fig. 9): small deg+ first never loses badly; allow
		// small noise at tiny scale.
		if r.Small > r.Large*1.5 && r.Small > r.Random*1.5 {
			t.Errorf("%s: small-first ratio %.2f dominates large %.2f / random %.2f",
				r.Dataset, r.Small, r.Large, r.Random)
		}
	}
}

func TestFig10(t *testing.T) {
	var out strings.Builder
	rows := Fig10(tinyConfig(&out))
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.CoreCDF[len(r.CoreCDF)-1] < 0.999 {
			t.Fatalf("%s: core CDF does not reach 1", r.Dataset)
		}
		if r.EdgeKCDF[len(r.EdgeKCDF)-1] < 0.999 {
			t.Fatalf("%s: edge-K CDF does not reach 1", r.Dataset)
		}
	}
}

func TestFig11(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	cfg.Edges = 150
	rows := Fig11(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if len(r.VaryV) != 5 || len(r.VaryE) != 5 {
			t.Fatalf("%s: series lengths %d/%d", r.Dataset, len(r.VaryV), len(r.VaryE))
		}
		// Edge ratio grows with the vertex sampling rate.
		if r.VaryV[0].EdgeRatio >= r.VaryV[4].EdgeRatio {
			t.Errorf("%s: edge ratio not increasing: %v", r.Dataset, r.VaryV)
		}
	}
}

func TestFig12(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	cfg.Edges = 100
	rows := Fig12(cfg)
	if len(rows) != 9 { // 3 datasets x 3 removal probabilities
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if len(r.GroupSec) != cfg.Groups {
			t.Fatalf("%s p=%.1f: groups=%d", r.Dataset, r.P, len(r.GroupSec))
		}
	}
}

func TestTableII(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	cfg.Edges = 200
	rows := TableII(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.OrderInsert <= 0 || r.OrderRemove <= 0 {
			t.Fatalf("%s: zero order times", r.Dataset)
		}
		for _, h := range cfg.Hops {
			if r.TravInsert[h] <= 0 || r.TravRemove[h] <= 0 {
				t.Fatalf("%s: zero traversal times (h=%d)", r.Dataset, h)
			}
		}
	}
	if !strings.Contains(out.String(), "Table II") {
		t.Fatal("missing header")
	}
}

func TestTableIII(t *testing.T) {
	var out strings.Builder
	rows := TableIII(tinyConfig(&out))
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Order <= 0 {
			t.Fatalf("%s: zero build time", r.Dataset)
		}
	}
}

func TestAblationOrderStructure(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	cfg.Edges = 200
	rows := AblationOrderStructure(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.TreapSec <= 0 || r.TagSec <= 0 || r.TreapBuild <= 0 || r.TagBuild <= 0 {
			t.Fatalf("%s: zero times %+v", r.Dataset, r)
		}
	}
	if !strings.Contains(out.String(), "Ablation") {
		t.Fatal("missing header")
	}
}

func TestAblationHeuristicTiming(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	cfg.Edges = 200
	rows := AblationHeuristicTiming(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Small <= 0 || r.Large <= 0 || r.Random <= 0 {
			t.Fatalf("%s: zero times %+v", r.Dataset, r)
		}
	}
}

func TestBaselineSearchSpace(t *testing.T) {
	var out strings.Builder
	cfg := tinyConfig(&out)
	cfg.Edges = 200
	rows := BaselineSearchSpace(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		// Section II lineage: order-based search space <= traversal's <=
		// the whole subcore (allowing small measurement noise).
		if r.Order > r.Traversal*1.05+1e-9 {
			t.Errorf("%s: order %.2f above traversal %.2f", r.Dataset, r.Order, r.Traversal)
		}
		if r.Traversal > r.Subcore*1.05+1e-9 {
			t.Errorf("%s: traversal %.2f above subcore %.2f", r.Dataset, r.Traversal, r.Subcore)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(ExperimentNames) != len(Experiments) {
		t.Fatalf("registry mismatch: %d names, %d experiments",
			len(ExperimentNames), len(Experiments))
	}
	for _, name := range ExperimentNames {
		if _, ok := Experiments[name]; !ok {
			t.Fatalf("experiment %q missing from map", name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Edges != 10000 || c.Groups != 10 || len(c.Hops) != 5 || c.Seed == 0 {
		t.Fatalf("defaults = %+v", c)
	}
	if len(c.Datasets) != 11 {
		t.Fatalf("default datasets = %d", len(c.Datasets))
	}
	if c.Out == nil {
		t.Fatal("Out default missing")
	}
}

func TestTemporalSelection(t *testing.T) {
	if !temporal("facebook-sim") || !temporal("dblp-sim") || temporal("ca-sim") {
		t.Fatal("temporal classification wrong")
	}
}

// TestHotpath runs the hot-path experiments with a single-iteration
// runner (full auto-tuned runs happen in kcore-bench) and checks the
// table and the JSON report shape.
func TestHotpath(t *testing.T) {
	orig := benchRunner
	benchRunner = func(f func(b *testing.B)) testing.BenchmarkResult {
		b := &testing.B{N: 1}
		f(b)
		return testing.BenchmarkResult{N: 1, T: 1}
	}
	defer func() { benchRunner = orig }()

	var out strings.Builder
	cfg := tinyConfig(&out)
	results := Hotpath(cfg)
	if len(results) == 0 {
		t.Fatal("no hotpath results")
	}
	for _, r := range results {
		if r.Name == "" || r.Iterations != 1 {
			t.Fatalf("malformed result %+v", r)
		}
		if !strings.Contains(out.String(), r.Name) {
			t.Fatalf("table missing row for %s", r.Name)
		}
	}

	rep := NewReport()
	rep.Results = results
	var buf strings.Builder
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != ReportSchema || len(back.Results) != len(results) {
		t.Fatalf("round-tripped report = %+v", back)
	}
}

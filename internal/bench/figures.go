package bench

import (
	"kcore/internal/datasets"
	"kcore/internal/decomp"
	"kcore/internal/graph"
	"kcore/internal/korder"
	"kcore/internal/stats"
	"kcore/internal/workload"
)

// Fig1Row holds one dataset's Fig. 1 bars: the distribution of the number
// of vertices visited per insertion, traversal (|V'|) vs order-based (|V+|),
// over the paper's buckets (<=3, <=10, <=100, <=1000, >1000).
type Fig1Row struct {
	Dataset   string
	Traversal []float64
	Order     []float64
}

// Fig1 reproduces Figure 1.
func Fig1(cfg Config) []Fig1Row {
	cfg = cfg.withDefaults()
	var rows []Fig1Row
	tb := &stats.Table{Header: append([]string{"dataset", "algorithm"}, stats.BucketLabels...)}
	for _, d := range cfg.Datasets {
		p := prepare(cfg, d)
		// Traversal (h=2) pass.
		gT := p.g.Clone()
		mT := newTrav(gT, 2)
		var visT []int
		for _, e := range p.edges {
			res, err := mT.Insert(e.U, e.V)
			if err != nil {
				panic(err)
			}
			visT = append(visT, res.Visited)
		}
		// Order-based pass.
		gO := p.g.Clone()
		mO := newOrder(gO, cfg.Seed)
		var visO []int
		for _, e := range p.edges {
			res, err := mO.Insert(e.U, e.V)
			if err != nil {
				panic(err)
			}
			visO = append(visO, res.Visited)
		}
		row := Fig1Row{Dataset: d.Name, Traversal: stats.Bucketize(visT), Order: stats.Bucketize(visO)}
		rows = append(rows, row)
		tb.AddRow(append([]string{d.Name, "traversal"}, fmtProps(row.Traversal)...)...)
		tb.AddRow(append([]string{"", "order-based"}, fmtProps(row.Order)...)...)
	}
	fprintln(cfg.Out, "Fig. 1: distribution of the number of vertices visited per insertion")
	fprintln(cfg.Out, tb.String())
	return rows
}

func fmtProps(ps []float64) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = stats.F(p)
	}
	return out
}

// Fig2Row holds one dataset's Fig. 2 ratios: sum(visited)/sum(|V*|) per
// algorithm over the insertion workload.
type Fig2Row struct {
	Dataset        string
	TraversalRatio float64
	OrderRatio     float64
}

// Fig2 reproduces Figure 2.
func Fig2(cfg Config) []Fig2Row {
	cfg = cfg.withDefaults()
	var rows []Fig2Row
	tb := &stats.Table{Header: []string{"dataset", "traversal |V'|/|V*|", "order |V+|/|V*|"}}
	for _, d := range cfg.Datasets {
		p := prepare(cfg, d)
		var rT, rO stats.Ratio
		gT := p.g.Clone()
		mT := newTrav(gT, 2)
		for _, e := range p.edges {
			res, err := mT.Insert(e.U, e.V)
			if err != nil {
				panic(err)
			}
			rT.Add(res.Visited, len(res.Changed))
		}
		gO := p.g.Clone()
		mO := newOrder(gO, cfg.Seed)
		for _, e := range p.edges {
			res, err := mO.Insert(e.U, e.V)
			if err != nil {
				panic(err)
			}
			rO.Add(res.Visited, len(res.Changed))
		}
		row := Fig2Row{Dataset: d.Name, TraversalRatio: rT.Value(), OrderRatio: rO.Value()}
		rows = append(rows, row)
		tb.AddRow(d.Name, stats.F(row.TraversalRatio), stats.F(row.OrderRatio))
	}
	fprintln(cfg.Out, "Fig. 2: ratio of vertices visited to vertices updated (insertions)")
	fprintln(cfg.Out, tb.String())
	return rows
}

// Fig5Thresholds are the x-axis points of the cumulative distribution.
var Fig5Thresholds = []int{1, 10, 100, 1000, 10000}

// Fig5Row holds the cumulative size distribution of pc, sc, and oc for one
// dataset: entry [i] is the fraction of vertices whose region size is
// <= Fig5Thresholds[i].
type Fig5Row struct {
	Dataset string
	PC      []float64
	SC      []float64
	OC      []float64
}

// Fig5 reproduces Figure 5 (pure-core / subcore exactly; order-core on a
// vertex sample, see DESIGN.md §7). By default it runs on the two datasets
// the paper plots (patents-sim, orkut-sim).
func Fig5(cfg Config) []Fig5Row {
	cfg = cfg.withDefaults()
	ds := cfg.Datasets
	if len(ds) > 2 {
		ds = pickByName(cfg, "patents-sim", "orkut-sim")
	}
	var rows []Fig5Row
	tb := &stats.Table{Header: []string{"dataset", "region", "<=1", "<=10", "<=100", "<=1000", "<=10000"}}
	for _, d := range ds {
		g := d.Build()
		dec := decomp.KOrder(g, decomp.SmallDegPlusFirst, cfg.Seed)
		mcd := decomp.ComputeMCD(g, dec.Core)
		pc := decomp.PureCoreSizes(g, dec.Core, mcd)
		sc := decomp.SubcoreSizes(g, dec.Core)
		oc := decomp.SampleOrderCoreSizes(g, dec, 2000, cfg.Seed)
		row := Fig5Row{
			Dataset: d.Name,
			PC:      stats.CDF(pc, Fig5Thresholds),
			SC:      stats.CDF(sc, Fig5Thresholds),
			OC:      stats.CDF(oc, Fig5Thresholds),
		}
		rows = append(rows, row)
		tb.AddRow(append([]string{d.Name, "pc"}, fmtProps(row.PC)...)...)
		tb.AddRow(append([]string{"", "sc"}, fmtProps(row.SC)...)...)
		tb.AddRow(append([]string{"", "oc"}, fmtProps(row.OC)...)...)
	}
	fprintln(cfg.Out, "Fig. 5: cumulative size distribution of pc, sc, oc")
	fprintln(cfg.Out, tb.String())
	return rows
}

// pickByName filters cfg.Datasets to the named ones (first two present),
// falling back to the first entries when none match.
func pickByName(cfg Config, names ...string) []datasets.Dataset {
	var out []datasets.Dataset
	for _, d := range cfg.Datasets {
		for _, n := range names {
			if d.Name == n {
				out = append(out, d)
			}
		}
	}
	if len(out) == 0 {
		k := len(names)
		if k > len(cfg.Datasets) {
			k = len(cfg.Datasets)
		}
		out = cfg.Datasets[:k]
	}
	return out
}

// largestThree returns the paper's three scalability datasets when present
// (Patents, Orkut, LiveJournal analogs), else the first three configured.
func largestThree(cfg Config) []datasets.Dataset {
	out := pickByName(cfg, "patents-sim", "orkut-sim", "livejournal-sim")
	if len(out) > 3 {
		out = out[:3]
	}
	return out
}

// Fig9Row holds one dataset's heuristic comparison: |V+|/|V*| for the
// small/large/random deg+ first initial orders.
type Fig9Row struct {
	Dataset string
	Small   float64
	Large   float64
	Random  float64
}

// Fig9 reproduces Figure 9: the same insertion workload executed on
// maintainers whose initial k-order was generated with each heuristic.
func Fig9(cfg Config) []Fig9Row {
	cfg = cfg.withDefaults()
	var rows []Fig9Row
	tb := &stats.Table{Header: []string{"dataset", "small deg+", "large deg+", "random deg+"}}
	for _, d := range cfg.Datasets {
		p := prepare(cfg, d)
		vals := make(map[decomp.Heuristic]float64)
		for _, h := range []decomp.Heuristic{decomp.SmallDegPlusFirst, decomp.LargeDegPlusFirst, decomp.RandomDegPlusFirst} {
			g := p.g.Clone()
			m := korder.New(g, korder.Options{Heuristic: h, Seed: cfg.Seed})
			var r stats.Ratio
			for _, e := range p.edges {
				res, err := m.Insert(e.U, e.V)
				if err != nil {
					panic(err)
				}
				r.Add(res.Visited, len(res.Changed))
			}
			vals[h] = r.Value()
		}
		row := Fig9Row{
			Dataset: d.Name,
			Small:   vals[decomp.SmallDegPlusFirst],
			Large:   vals[decomp.LargeDegPlusFirst],
			Random:  vals[decomp.RandomDegPlusFirst],
		}
		rows = append(rows, row)
		tb.AddRow(d.Name, stats.F(row.Small), stats.F(row.Large), stats.F(row.Random))
	}
	fprintln(cfg.Out, "Fig. 9: |V+|/|V*| under the three k-order generation heuristics")
	fprintln(cfg.Out, tb.String())
	return rows
}

// Fig10Thresholds are the core-number CDF x-axis points.
var Fig10Thresholds = []int{1, 10, 100, 1000}

// Fig10Row holds, per dataset, the cumulative distributions of (a) vertex
// core numbers and (b) K = min core over the sampled workload edges.
type Fig10Row struct {
	Dataset  string
	CoreCDF  []float64
	EdgeKCDF []float64
}

// Fig10 reproduces Figures 10a and 10b.
func Fig10(cfg Config) []Fig10Row {
	cfg = cfg.withDefaults()
	var rows []Fig10Row
	tb := &stats.Table{Header: []string{"dataset", "series", "<=1", "<=10", "<=100", "<=1000"}}
	for _, d := range cfg.Datasets {
		g := d.Build()
		core := decomp.Cores(g)
		edges := sampleWorkload(cfg, d, g)
		ks := make([]int, len(edges))
		for i, e := range edges {
			k := core[e.U]
			if core[e.V] < k {
				k = core[e.V]
			}
			ks[i] = k
		}
		row := Fig10Row{
			Dataset:  d.Name,
			CoreCDF:  stats.CDF(core, Fig10Thresholds),
			EdgeKCDF: stats.CDF(ks, Fig10Thresholds),
		}
		rows = append(rows, row)
		tb.AddRow(append([]string{d.Name, "core numbers"}, fmtProps(row.CoreCDF)...)...)
		tb.AddRow(append([]string{"", "edge K"}, fmtProps(row.EdgeKCDF)...)...)
	}
	fprintln(cfg.Out, "Fig. 10: CDF of core numbers (a) and of K over sampled edges (b)")
	fprintln(cfg.Out, tb.String())
	return rows
}

// Fig11Point is one sample-rate measurement of the scalability test.
type Fig11Point struct {
	Rate        float64
	InsertSec   float64
	EdgeRatio   float64 // sampled m / original m (vary-|V| series)
	VertexRatio float64 // touched n / original n (vary-|E| series)
}

// Fig11Row holds one dataset's vary-|V| and vary-|E| series.
type Fig11Row struct {
	Dataset string
	VaryV   []Fig11Point
	VaryE   []Fig11Point
}

// Fig11 reproduces Figure 11 (OrderInsert scalability): subgraphs sampled
// at 20%..100% of vertices / edges, timing the insertion of the sampled
// workload on each.
func Fig11(cfg Config) []Fig11Row {
	cfg = cfg.withDefaults()
	ds := cfg.Datasets
	if len(ds) > 3 {
		ds = largestThree(cfg)
	}
	rates := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	var rows []Fig11Row
	tb := &stats.Table{Header: []string{"dataset", "series", "rate", "time(s)", "edge-ratio", "vertex-ratio"}}
	for _, d := range ds {
		base := d.Build()
		row := Fig11Row{Dataset: d.Name}
		for _, rate := range rates {
			sub := workload.VertexSample(base, rate, cfg.Seed)
			pt := timeInsertWorkload(cfg, sub)
			pt.Rate = rate
			pt.EdgeRatio = float64(sub.NumEdges()) / float64(base.NumEdges())
			row.VaryV = append(row.VaryV, pt)
			tb.AddRow(d.Name, "vary|V|", stats.F(rate), stats.FSec(pt.InsertSec), stats.F(pt.EdgeRatio), "")
		}
		for _, rate := range rates {
			sub := workload.EdgeSample(base, rate, cfg.Seed)
			pt := timeInsertWorkload(cfg, sub)
			pt.Rate = rate
			touched := 0
			for v := 0; v < sub.NumVertices(); v++ {
				if sub.Degree(v) > 0 {
					touched++
				}
			}
			pt.VertexRatio = float64(touched) / float64(base.NumVertices())
			row.VaryE = append(row.VaryE, pt)
			tb.AddRow(d.Name, "vary|E|", stats.F(rate), stats.FSec(pt.InsertSec), "", stats.F(pt.VertexRatio))
		}
		rows = append(rows, row)
	}
	fprintln(cfg.Out, "Fig. 11: OrderInsert scalability under vertex/edge sampling")
	fprintln(cfg.Out, tb.String())
	return rows
}

// timeInsertWorkload samples cfg.Edges edges of g, removes them, builds the
// order-based index, and times their one-by-one reinsertion.
func timeInsertWorkload(cfg Config, g *graph.Undirected) Fig11Point {
	edges := workload.SampleEdges(g, cfg.Edges, cfg.Seed+1)
	workload.RemoveAll(g, edges)
	m := newOrder(g, cfg.Seed)
	sec := timeIt(func() {
		for _, e := range edges {
			if _, err := m.Insert(e.U, e.V); err != nil {
				panic(err)
			}
		}
	})
	return Fig11Point{InsertSec: sec}
}

// Fig12Row holds the stability test for one dataset and removal probability:
// per-group accumulated insertion time over sequential edge groups.
type Fig12Row struct {
	Dataset   string
	P         float64
	GroupSec  []float64
	GroupVStr []int // number of vertices updated per group (Fig. 12b)
}

// Fig12 reproduces Figure 12: reinsert a large edge sample group by group
// (with probability P removing a random present edge after each insertion),
// checking that per-group time does not degrade as the maintained order
// ages.
func Fig12(cfg Config) []Fig12Row {
	cfg = cfg.withDefaults()
	ds := cfg.Datasets
	if len(ds) > 3 {
		ds = largestThree(cfg)
	}
	var rows []Fig12Row
	tb := &stats.Table{Header: []string{"dataset", "p", "group", "time(s)", "|V*|"}}
	for _, d := range ds {
		for _, p := range []float64{0, 0.1, 0.2} {
			g := d.Build()
			edges := workload.SampleEdges(g, cfg.Edges*cfg.Groups, cfg.Seed)
			workload.RemoveAll(g, edges)
			m := newOrder(g, cfg.Seed)
			groups := workload.Partition(edges, cfg.Groups)
			row := Fig12Row{Dataset: d.Name, P: p}
			for gi, grp := range groups {
				ops := workload.MixedStream(grp, p, cfg.Seed+uint64(gi))
				changed := 0
				sec := timeIt(func() {
					for _, op := range ops {
						var res korder.UpdateResult
						var err error
						if op.Insert {
							res, err = m.Insert(op.E.U, op.E.V)
						} else {
							res, err = m.Remove(op.E.U, op.E.V)
						}
						if err != nil {
							panic(err)
						}
						changed += len(res.Changed)
					}
				})
				row.GroupSec = append(row.GroupSec, sec)
				row.GroupVStr = append(row.GroupVStr, changed)
				tb.AddRow(d.Name, stats.F(p), stats.I(gi+1), stats.FSec(sec), stats.I(changed))
			}
			rows = append(rows, row)
		}
	}
	fprintln(cfg.Out, "Fig. 12: OrderInsert stability across sequential edge groups")
	fprintln(cfg.Out, tb.String())
	return rows
}

// Package parallel provides the batch execution planner and worker-pool
// primitives behind the engine's concurrent Apply path.
//
// The planner turns per-update region estimates (internal/korder's
// EstimateRegion) into conflict groups: updates whose regions share a vertex
// are unioned into one group, because they may read or write the same
// state. Updates alone in their group ("singletons") have pairwise-disjoint
// regions with every other group and can be simulated concurrently against
// the pre-batch snapshot; everything else replays sequentially. The grouping
// is an over-approximation twice over — regions over-approximate footprints,
// and sharing any vertex counts as a conflict even when the accesses would
// not interact — which is exactly what makes the concurrent schedule safe.
package parallel

// Planner computes conflict groups over one batch. The zero value is ready
// to use; a Planner is reusable across batches (its scratch is epoch-reset)
// but not safe for concurrent use.
type Planner struct {
	// Union-find over update indices.
	parent []int32
	rank   []int8

	// claim[v] = update index that first claimed vertex v this epoch.
	claim   []int32
	claimEp []uint32
	epoch   uint32

	groupSize []int32
}

// Plan unions updates whose regions intersect. regions[i] lists the
// estimated region of update i; a nil region claims nothing (the update is
// not a simulation candidate — coalesced, out of range, or capped — and
// conflicts with nothing at planning time; the engine's dirty tracking
// covers it at commit time). n is the vertex-id upper bound; region entries
// must be < n.
func (p *Planner) Plan(n int, regions [][]int32) {
	m := len(regions)
	if cap(p.parent) < m {
		p.parent = make([]int32, m)
		p.rank = make([]int8, m)
		p.groupSize = make([]int32, m)
	}
	p.parent = p.parent[:m]
	p.rank = p.rank[:m]
	p.groupSize = p.groupSize[:m]
	for i := range p.parent {
		p.parent[i] = int32(i)
		p.rank[i] = 0
		p.groupSize[i] = 0
	}
	if len(p.claim) < n {
		grown := make([]int32, n)
		copy(grown, p.claim)
		p.claim = grown
		grownEp := make([]uint32, n)
		copy(grownEp, p.claimEp)
		p.claimEp = grownEp
	}
	p.epoch++
	if p.epoch == 0 { // wrapped: all stamps stale, restart cleanly
		clear(p.claimEp)
		p.epoch = 1
	}
	for i, region := range regions {
		for _, w := range region {
			if p.claimEp[w] == p.epoch {
				p.union(int32(i), p.claim[w])
			} else {
				p.claimEp[w] = p.epoch
				p.claim[w] = int32(i)
			}
		}
	}
	// Fully compress the forest: after this loop parent[i] is its root for
	// all i. Group/Singleton/Contained then resolve roots with root(), a
	// single parent read with no path-halving writes, so they may be called
	// concurrently from simulation workers (find's halving body writes
	// parent entries even when the written value is unchanged, which would
	// be a data race under concurrent use).
	for i := range p.parent {
		p.parent[i] = p.find(int32(i))
	}
	for i, region := range regions {
		if region != nil {
			p.groupSize[p.root(int32(i))]++
		}
	}
}

// root resolves i's group after Plan's full compression pass: a pure read,
// safe for concurrent use (unlike find, which path-halves).
func (p *Planner) root(i int32) int32 { return p.parent[i] }

func (p *Planner) find(i int32) int32 {
	for p.parent[i] != i {
		p.parent[i] = p.parent[p.parent[i]] // path halving
		i = p.parent[i]
	}
	return i
}

func (p *Planner) union(a, b int32) {
	ra, rb := p.find(a), p.find(b)
	if ra == rb {
		return
	}
	if p.rank[ra] < p.rank[rb] {
		ra, rb = rb, ra
	}
	p.parent[rb] = ra
	if p.rank[ra] == p.rank[rb] {
		p.rank[ra]++
	}
}

// Group returns the group id (an update index, stable within one Plan) of
// update i. Safe for concurrent use after Plan returns.
func (p *Planner) Group(i int) int { return int(p.root(int32(i))) }

// Singleton reports whether update i is alone in its conflict group and so
// may be simulated concurrently. Safe for concurrent use after Plan
// returns.
func (p *Planner) Singleton(i int) bool {
	return p.groupSize[p.root(int32(i))] == 1
}

// Contained reports whether every vertex of footprint is claimed by update
// i's own group. A simulation whose footprint escapes its claimed region —
// into another group's territory or into unclaimed vertices — must be
// discarded and replayed live. Safe for concurrent use after Plan returns.
func (p *Planner) Contained(i int, footprint []int) bool {
	g := p.root(int32(i))
	for _, w := range footprint {
		if w >= len(p.claim) || p.claimEp[w] != p.epoch || p.root(p.claim[w]) != g {
			return false
		}
	}
	return true
}

package parallel

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(worker, i) for every i in [0, n) across up to `workers`
// goroutines and waits for completion. Each invocation receives the id of
// the worker executing it (in [0, workers)), so callers can hand every
// worker its own scratch state. Indices are handed out in chunks from an
// atomic cursor: cheap, deterministic-free scheduling — callers must not
// depend on assignment or completion order.
//
// With workers <= 1 (or tiny n) it degrades to a plain loop on the calling
// goroutine with worker id 0.
func ForEach(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	const chunk = 16
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(cursor.Add(chunk)) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

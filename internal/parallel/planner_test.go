package parallel

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"
)

func TestPlannerBasicGroups(t *testing.T) {
	p := &Planner{}
	regions := [][]int32{
		{0, 1, 2},  // group A
		{3, 4},     // group B
		{2, 5},     // overlaps update 0 -> group A
		{6},        // group C
		nil,        // not a candidate
		{4, 7, 8},  // overlaps update 1 -> group B
		{9, 10, 6}, // overlaps update 3 -> group C
	}
	p.Plan(11, regions)
	if p.Group(0) != p.Group(2) || p.Group(1) != p.Group(5) || p.Group(3) != p.Group(6) {
		t.Fatalf("expected merges missing: groups %d %d %d %d %d %d",
			p.Group(0), p.Group(1), p.Group(2), p.Group(3), p.Group(5), p.Group(6))
	}
	if p.Group(0) == p.Group(1) || p.Group(0) == p.Group(3) || p.Group(1) == p.Group(3) {
		t.Fatalf("independent groups merged")
	}
	for _, i := range []int{0, 1, 2, 3, 5, 6} {
		if p.Singleton(i) {
			t.Fatalf("update %d wrongly a singleton", i)
		}
	}
}

func TestPlannerSingletonsAndContainment(t *testing.T) {
	p := &Planner{}
	regions := [][]int32{
		{0, 1},
		{2, 3},
		{1, 4}, // merges with 0
	}
	p.Plan(5, regions)
	if !p.Singleton(1) {
		t.Fatal("update 1 should be a singleton")
	}
	if p.Singleton(0) || p.Singleton(2) {
		t.Fatal("updates 0 and 2 share a group")
	}
	if !p.Contained(1, []int{2, 3}) {
		t.Fatal("footprint within own region must be contained")
	}
	if p.Contained(1, []int{2, 4}) {
		t.Fatal("footprint touching another group must not be contained")
	}
	if p.Contained(1, []int{2, 99}) {
		t.Fatal("out-of-range footprint vertex must not be contained")
	}
	// Unclaimed vertex 0? vertex 0 is claimed by group of update 0.
	if p.Contained(1, []int{0}) {
		t.Fatal("vertex claimed by a foreign group must not be contained")
	}
}

// TestPlannerReuse: a second Plan on the same Planner must not leak claims
// from the first epoch.
func TestPlannerReuse(t *testing.T) {
	p := &Planner{}
	p.Plan(10, [][]int32{{1, 2}, {3, 4}})
	if p.Group(0) == p.Group(1) {
		t.Fatal("disjoint regions merged in first epoch")
	}
	// Same vertices, swapped: stale claims from epoch 1 must not merge.
	p.Plan(10, [][]int32{{5, 6}, {1, 2}})
	if p.Group(0) == p.Group(1) {
		t.Fatal("stale claims leaked across epochs")
	}
	if !p.Singleton(0) || !p.Singleton(1) {
		t.Fatal("both updates should be singletons after reuse")
	}
}

// FuzzPlannerAgainstBruteForce checks the union-find grouping against a
// brute-force oracle that computes connected components of the pairwise
// region-intersection graph — the "everything that could conflict,
// conflicts" reference partition.
func FuzzPlannerAgainstBruteForce(f *testing.F) {
	f.Add(uint64(1), 8, 20)
	f.Add(uint64(42), 16, 6)
	f.Add(uint64(7), 1, 1)
	f.Add(uint64(9), 30, 50)
	f.Fuzz(func(t *testing.T, seed uint64, updates, vertices int) {
		if updates < 0 || updates > 64 || vertices < 1 || vertices > 128 {
			t.Skip()
		}
		rng := rand.New(rand.NewPCG(seed, 77))
		regions := make([][]int32, updates)
		for i := range regions {
			if rng.IntN(6) == 0 {
				continue // nil region: not a candidate
			}
			k := 1 + rng.IntN(5)
			seen := map[int32]bool{}
			for j := 0; j < k; j++ {
				w := int32(rng.IntN(vertices))
				if !seen[w] {
					seen[w] = true
					regions[i] = append(regions[i], w)
				}
			}
		}
		p := &Planner{}
		p.Plan(vertices, regions)

		// Oracle: union-find-free transitive closure over pairwise
		// intersection.
		group := make([]int, updates)
		for i := range group {
			group[i] = i
		}
		intersect := func(a, b []int32) bool {
			for _, x := range a {
				for _, y := range b {
					if x == y {
						return true
					}
				}
			}
			return false
		}
		for changed := true; changed; {
			changed = false
			for i := 0; i < updates; i++ {
				for j := i + 1; j < updates; j++ {
					if regions[i] == nil || regions[j] == nil {
						continue
					}
					if intersect(regions[i], regions[j]) && group[i] != group[j] {
						lo, hi := group[i], group[j]
						if lo > hi {
							lo, hi = hi, lo
						}
						for k := range group {
							if group[k] == hi {
								group[k] = lo
							}
						}
						changed = true
					}
				}
			}
		}
		for i := 0; i < updates; i++ {
			for j := i + 1; j < updates; j++ {
				if regions[i] == nil || regions[j] == nil {
					continue
				}
				same := p.Group(i) == p.Group(j)
				want := group[i] == group[j]
				if same != want {
					t.Fatalf("updates %d,%d: planner same-group=%v oracle=%v (regions %v %v)",
						i, j, same, want, regions[i], regions[j])
				}
			}
		}
		// Singleton agreement: an update is concurrently simulable iff the
		// oracle's component has exactly one candidate member.
		for i := 0; i < updates; i++ {
			if regions[i] == nil {
				continue
			}
			count := 0
			for j := 0; j < updates; j++ {
				if regions[j] != nil && group[j] == group[i] {
					count++
				}
			}
			if p.Singleton(i) != (count == 1) {
				t.Fatalf("update %d: singleton=%v oracle count=%d", i, p.Singleton(i), count)
			}
		}
	})
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		var hits [1000]atomic.Int32
		ForEach(workers, len(hits), func(worker, i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, hits[i].Load())
			}
		}
	}
	// n smaller than workers and n == 0.
	var small [3]atomic.Int32
	ForEach(8, len(small), func(worker, i int) { small[i].Add(1) })
	for i := range small {
		if small[i].Load() != 1 {
			t.Fatal("small n mishandled")
		}
	}
	ForEach(4, 0, func(worker, i int) { t.Fatal("fn called for n=0") })
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	const workers = 4
	var bad atomic.Int32
	ForEach(workers, 500, func(worker, i int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}

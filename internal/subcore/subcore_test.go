package subcore

import (
	"math/rand/v2"
	"testing"

	"kcore/internal/graph"
	"kcore/internal/korder"
)

func TestTriangleLifecycle(t *testing.T) {
	g := graph.New(3)
	m := New(g)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if _, err := m.Insert(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 3; v++ {
		if m.Core(v) != 2 {
			t.Fatalf("core(%d)=%d", v, m.Core(v))
		}
	}
	res, err := m.Remove(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 3 {
		t.Fatalf("V*=%v", res.Changed)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsAndGrowth(t *testing.T) {
	g := graph.New(0)
	m := New(g)
	if _, err := m.Insert(2, 5); err != nil {
		t.Fatal(err)
	}
	if m.Core(2) != 1 || m.Core(5) != 1 || m.Core(4) != 0 {
		t.Fatalf("cores=%v", m.Cores())
	}
	if _, err := m.Insert(2, 5); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if _, err := m.Remove(0, 1); err == nil {
		t.Fatal("remove of absent edge should fail")
	}
	if m.Core(-1) != 0 || m.Core(99) != 0 {
		t.Fatal("out-of-range Core should be 0")
	}
	if _, err := m.Remove(5, 2); err != nil {
		t.Fatal(err)
	}
	if m.Core(2) != 0 {
		t.Fatalf("core after removing last edge: %d", m.Core(2))
	}
	_ = m.Graph()
}

// TestOracleRandomStream validates cores against recomputation after every
// update.
func TestOracleRandomStream(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	n := 25
	g := graph.New(n)
	m := New(g)
	for step := 0; step < 400; step++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		var err error
		if g.HasEdge(u, v) {
			_, err = m.Remove(u, v)
		} else {
			_, err = m.Insert(u, v)
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if m.Stats().Inserts == 0 || m.Stats().Visited == 0 {
		t.Fatal("stats not accumulated")
	}
}

// TestAgreesWithOrderBased cross-validates SubCore against the order-based
// maintainer, and checks the paper's search-space ordering: the subcore
// search space is never smaller than the order-based one (V+ lives inside
// the subcore).
func TestAgreesWithOrderBased(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	n := 30
	gS := graph.New(n)
	gO := graph.New(n)
	mS := New(gS)
	mO := korder.New(gO, korder.Options{Seed: 2})
	var visS, visO int64
	for step := 0; step < 400; step++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		if gS.HasEdge(u, v) {
			if _, err := mS.Remove(u, v); err != nil {
				t.Fatal(err)
			}
			if _, err := mO.Remove(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			rs, err := mS.Insert(u, v)
			if err != nil {
				t.Fatal(err)
			}
			ro, err := mO.Insert(u, v)
			if err != nil {
				t.Fatal(err)
			}
			visS += int64(rs.Visited)
			visO += int64(ro.Visited)
		}
		for x := 0; x < n; x++ {
			if mS.Core(x) != mO.Core(x) {
				t.Fatalf("step %d: core(%d): subcore %d vs order %d",
					step, x, mS.Core(x), mO.Core(x))
			}
		}
	}
	if visO > visS {
		t.Fatalf("order-based visited %d > subcore's search space %d (V+ should live inside sc)",
			visO, visS)
	}
}

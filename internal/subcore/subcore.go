// Package subcore implements the SubCore algorithm of Sariyüce et al.
// (PVLDB'13) — the simpler baseline the traversal algorithm improves on,
// and the algorithm the distributed approach of Aksu et al. approximates.
//
// SubCore maintains no index beyond the core numbers themselves: for every
// update it materializes the subcore containing the edge (the maximal
// connected set of vertices sharing core number K, Theorem 3.2's search
// bound), computes local degree bounds, and peels. Per-update cost is
// O(|sc| + vol(sc)) — cheap bookkeeping, large search space; it brackets
// the traversal algorithm from the other side than the order-based one.
package subcore

import (
	"kcore/internal/decomp"
	"kcore/internal/graph"
)

// Maintainer maintains core numbers with the SubCore algorithm.
type Maintainer struct {
	g    *graph.Undirected
	core []int

	stats Stats
}

// Stats accumulates work counters.
type Stats struct {
	Inserts int64
	Removes int64
	// Visited accumulates subcore sizes (the algorithm's search space).
	Visited int64
}

// UpdateResult describes one maintained update.
type UpdateResult struct {
	K       int
	Changed []int
	Visited int // |sc|: vertices of the materialized subcore(s)
}

// New builds a SubCore maintainer for g.
func New(g *graph.Undirected) *Maintainer {
	return &Maintainer{g: g, core: decomp.Cores(g)}
}

// Graph returns the underlying graph.
func (m *Maintainer) Graph() *graph.Undirected { return m.g }

// Core returns the current core number of v.
func (m *Maintainer) Core(v int) int {
	if v < 0 || v >= len(m.core) {
		return 0
	}
	return m.core[v]
}

// Cores returns a copy of all core numbers.
func (m *Maintainer) Cores() []int {
	out := make([]int, len(m.core))
	copy(out, m.core)
	return out
}

// Stats returns accumulated counters.
func (m *Maintainer) Stats() Stats { return m.stats }

// EnsureVertex grows the maintained state to include v.
func (m *Maintainer) EnsureVertex(v int) {
	if v < 0 {
		return
	}
	m.g.EnsureVertex(v)
	for len(m.core) < m.g.NumVertices() {
		m.core = append(m.core, 0)
	}
}

// collectSubcore gathers the connected set of vertices with core number K
// reachable from the roots through level-K vertices.
func (m *Maintainer) collectSubcore(roots []int, K int) []int {
	inS := make(map[int]bool, 16)
	var s, stack []int
	for _, r := range roots {
		if m.core[r] == K && !inS[r] {
			inS[r] = true
			stack = append(stack, r)
			s = append(s, r)
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if m.core[z] == K && !inS[z] {
				inS[z] = true
				stack = append(stack, z)
				s = append(s, z)
			}
		}
	}
	return s
}

// peel removes from the candidate set every vertex whose bound on neighbors
// in the new (K+1)-core (insertion) or K-core (removal) falls below need,
// returning the survivors and the removed set.
func (m *Maintainer) peel(s []int, K, need int) (survivors, removed []int) {
	inS := make(map[int]bool, len(s))
	for _, w := range s {
		inS[w] = true
	}
	cd := make(map[int]int, len(s))
	for _, w := range s {
		c := 0
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if m.core[z] > K || inS[z] {
				c++
			}
		}
		cd[w] = c
	}
	var queue []int
	queued := make(map[int]bool, len(s))
	for _, w := range s {
		if cd[w] < need {
			queue = append(queue, w)
			queued[w] = true
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		inS[w] = false
		removed = append(removed, w)
		for _, z32 := range m.g.Neighbors(w) {
			z := int(z32)
			if inS[z] && !queued[z] {
				cd[z]--
				if cd[z] < need {
					queue = append(queue, z)
					queued[z] = true
				}
			}
		}
	}
	for _, w := range s {
		if inS[w] {
			survivors = append(survivors, w)
		}
	}
	return survivors, removed
}

// Insert adds edge (u, v) and updates core numbers: the subcore of the
// lower endpoint is peeled against the (K+1)-core requirement; survivors
// form V*.
func (m *Maintainer) Insert(u, v int) (UpdateResult, error) {
	m.EnsureVertex(u)
	m.EnsureVertex(v)
	if err := m.g.AddEdge(u, v); err != nil {
		return UpdateResult{}, err
	}
	m.stats.Inserts++
	K := m.core[u]
	if m.core[v] < K {
		K = m.core[v]
	}
	s := m.collectSubcore([]int{u, v}, K)
	survivors, _ := m.peel(s, K, K+1)
	for _, w := range survivors {
		m.core[w] = K + 1
	}
	m.stats.Visited += int64(len(s))
	return UpdateResult{K: K, Changed: survivors, Visited: len(s)}, nil
}

// Remove deletes edge (u, v) and updates core numbers: the subcore(s) of
// the endpoints are peeled against the K-core requirement; peeled vertices
// form V*.
func (m *Maintainer) Remove(u, v int) (UpdateResult, error) {
	if err := m.g.RemoveEdge(u, v); err != nil {
		return UpdateResult{}, err
	}
	m.stats.Removes++
	K := m.core[u]
	if m.core[v] < K {
		K = m.core[v]
	}
	s := m.collectSubcore([]int{u, v}, K)
	_, removed := m.peel(s, K, K)
	for _, w := range removed {
		m.core[w] = K - 1
	}
	m.stats.Visited += int64(len(s))
	return UpdateResult{K: K, Changed: removed, Visited: len(s)}, nil
}

// CheckInvariants validates the maintained cores by recomputation.
func (m *Maintainer) CheckInvariants() error {
	return decomp.Validate(m.g, m.core)
}

package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Per-tenant data layout. A kcore-serve data directory serves double duty:
// its root holds the default tenant's snapshot + WAL (the exact layout
// single-tenant builds used, so pre-tenant data directories keep booting
// unchanged), and every other tenant gets its own store in a subdirectory:
//
//	<data-dir>/snapshot.kcs            default tenant snapshot
//	<data-dir>/wal.kcl                 default tenant write-ahead log
//	<data-dir>/tenants/<name>/snapshot.kcs
//	<data-dir>/tenants/<name>/wal.kcl
//
// Each tenant directory is a complete, self-contained Store: it opens,
// recovers, compacts and heals independently of every other tenant.

// TenantsDirName is the subdirectory of a data directory that holds the
// non-default tenants' stores.
const TenantsDirName = "tenants"

// TenantDir returns the store directory for tenant name under root. The
// caller must have validated name (see the tenant package); this function
// only joins paths.
func TenantDir(root, name string) string {
	return filepath.Join(root, TenantsDirName, name)
}

// HasState reports whether dir contains durable store state (a snapshot or
// a WAL file). A directory that merely exists but holds neither is treated
// as stateless — opening it would initialize a fresh store.
func HasState(dir string) bool {
	for _, f := range []string{SnapshotFile, WALFile} {
		if st, err := os.Stat(filepath.Join(dir, f)); err == nil && st.Mode().IsRegular() {
			return true
		}
	}
	return false
}

// ListTenantDirs returns the sorted names of tenant subdirectories under
// root that contain durable state. A root without a tenants directory lists
// empty — a single-tenant data directory is a valid multi-tenant one with
// zero named tenants.
func ListTenantDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, TenantsDirName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: list tenants: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if HasState(TenantDir(root, e.Name())) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

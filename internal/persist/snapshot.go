package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"

	"kcore"
	"kcore/internal/fault"
)

// SnapshotVersion is the current snapshot format version. Bump it — and
// regenerate the golden fixtures (see golden_test.go) — whenever the byte
// format changes.
const SnapshotVersion = 1

var snapshotMagic = [8]byte{'K', 'C', 'O', 'R', 'S', 'N', 'A', 'P'}

// snapshotHeaderLen is magic + version + heuristic/structure/reserved +
// seed + seq; the varint-coded body follows.
const snapshotHeaderLen = 8 + 4 + 4 + 8 + 8

// IsSnapshot reports whether prefix begins with the snapshot magic — the
// first 8 bytes are enough to tell a KCORSNAP image apart from other
// formats (e.g. a text edge list) when a loader accepts both.
func IsSnapshot(prefix []byte) bool {
	return len(prefix) >= 8 && [8]byte(prefix[:8]) == snapshotMagic
}

// maxSnapshotDim bounds the vertex and edge counts a snapshot may claim,
// matching the engine's dense-int32 vertex ids.
const maxSnapshotDim = 1 << 31

// EncodeSnapshot serializes an IndexState into the snapshot format
// (deterministically: edges are sorted during encoding).
func EncodeSnapshot(st *kcore.IndexState) ([]byte, error) {
	if st.Vertices < 0 || st.Vertices > maxSnapshotDim || len(st.Edges) > maxSnapshotDim {
		return nil, fmt.Errorf("persist: snapshot dimensions n=%d m=%d out of range",
			st.Vertices, len(st.Edges))
	}
	if len(st.Cores) != st.Vertices || len(st.Order) != st.Vertices {
		return nil, fmt.Errorf("persist: snapshot has %d cores and %d order entries for %d vertices",
			len(st.Cores), len(st.Order), st.Vertices)
	}
	edges := make([][2]int, len(st.Edges))
	copy(edges, st.Edges)
	for i, e := range edges {
		if e[0] > e[1] {
			edges[i] = [2]int{e[1], e[0]}
		}
		// Validate the normalized (post-swap) endpoints: the minimum must be
		// non-negative and the maximum in range.
		if edges[i][0] < 0 || edges[i][1] >= st.Vertices || e[0] == e[1] {
			return nil, fmt.Errorf("persist: snapshot edge (%d,%d) invalid for %d vertices",
				e[0], e[1], st.Vertices)
		}
	}
	slices.SortFunc(edges, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})

	buf := make([]byte, 0, snapshotHeaderLen+4+len(edges)*3+len(st.Cores)+len(st.Order)*2)
	buf = append(buf, snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, SnapshotVersion)
	buf = append(buf, byte(st.Heuristic), byte(st.Structure), 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, st.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, st.Seq)
	buf = binary.AppendUvarint(buf, uint64(st.Vertices))
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	prevU, prevV := 0, 0
	for i, e := range edges {
		if i > 0 && e[0] == prevU && e[1] == prevV {
			return nil, fmt.Errorf("persist: duplicate snapshot edge (%d,%d)", e[0], e[1])
		}
		buf = binary.AppendUvarint(buf, uint64(e[0]-prevU))
		if e[0] != prevU {
			buf = binary.AppendUvarint(buf, uint64(e[1]))
		} else {
			buf = binary.AppendUvarint(buf, uint64(e[1]-prevV))
		}
		prevU, prevV = e[0], e[1]
	}
	for _, c := range st.Cores {
		if c < 0 {
			return nil, fmt.Errorf("persist: negative core number %d", c)
		}
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	for _, v := range st.Order {
		if v < 0 || v >= st.Vertices {
			return nil, fmt.Errorf("persist: order entry %d outside vertex range %d", v, st.Vertices)
		}
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeSnapshot parses and CRC-verifies snapshot bytes back into an
// IndexState. Structural failures wrap ErrCorruptSnapshot. The decoded
// state is syntactically canonical (sorted unique edges, in-range values);
// semantic verification — that the cores and order actually describe the
// graph — happens in kcore.FromIndex (see ReadSnapshot).
func DecodeSnapshot(data []byte) (*kcore.IndexState, error) {
	if len(data) < snapshotHeaderLen+2+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any valid snapshot", ErrCorruptSnapshot, len(data))
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != SnapshotVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d (want %d)",
			ErrCorruptSnapshot, v, SnapshotVersion)
	}
	body, trailer := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if sum := crc32.ChecksumIEEE(body); sum != trailer {
		return nil, fmt.Errorf("%w: checksum mismatch (have %08x, recorded %08x)",
			ErrCorruptSnapshot, sum, trailer)
	}
	st := &kcore.IndexState{
		Heuristic: kcore.Heuristic(data[12]),
		Structure: kcore.OrderStructure(data[13]),
		Seed:      binary.LittleEndian.Uint64(data[16:24]),
		Seq:       binary.LittleEndian.Uint64(data[24:32]),
	}
	r := bytes.NewReader(body[snapshotHeaderLen:])
	n, err := readDim(r, "vertex count")
	if err != nil {
		return nil, err
	}
	m, err := readDim(r, "edge count")
	if err != nil {
		return nil, err
	}
	// Each edge takes >= 2 bytes, each core and order entry >= 1: reject
	// size claims the remaining bytes cannot possibly back before
	// allocating.
	if uint64(r.Len()) < 2*m+2*n {
		return nil, fmt.Errorf("%w: %d bytes left cannot hold %d edges and %d vertices",
			ErrCorruptSnapshot, r.Len(), m, n)
	}
	st.Vertices = int(n)
	st.Edges = make([][2]int, m)
	prevU, prevV := 0, 0
	for i := range st.Edges {
		du, err := readDim(r, "edge delta")
		if err != nil {
			return nil, err
		}
		u := prevU + int(du)
		var v int
		dv, err := readDim(r, "edge endpoint")
		if err != nil {
			return nil, err
		}
		if du != 0 {
			v = int(dv)
		} else {
			v = prevV + int(dv)
			if i > 0 && dv == 0 {
				return nil, fmt.Errorf("%w: duplicate edge (%d,%d)", ErrCorruptSnapshot, u, v)
			}
		}
		if u >= v || v >= st.Vertices {
			return nil, fmt.Errorf("%w: edge (%d,%d) is not canonical for %d vertices",
				ErrCorruptSnapshot, u, v, st.Vertices)
		}
		st.Edges[i] = [2]int{u, v}
		prevU, prevV = u, v
	}
	st.Cores = make([]int, n)
	for i := range st.Cores {
		c, err := readDim(r, "core number")
		if err != nil {
			return nil, err
		}
		st.Cores[i] = int(c)
	}
	st.Order = make([]int, n)
	for i := range st.Order {
		v, err := readDim(r, "order entry")
		if err != nil {
			return nil, err
		}
		if v >= uint64(st.Vertices) {
			return nil, fmt.Errorf("%w: order entry %d outside vertex range %d",
				ErrCorruptSnapshot, v, st.Vertices)
		}
		st.Order[i] = int(v)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after order section", ErrCorruptSnapshot, r.Len())
	}
	return st, nil
}

// readDim reads one uvarint bounded to the snapshot dimension range.
func readDim(r *bytes.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: truncated %s", ErrCorruptSnapshot, what)
	}
	if v > maxSnapshotDim {
		return 0, fmt.Errorf("%w: implausible %s %d", ErrCorruptSnapshot, what, v)
	}
	return v, nil
}

// WriteSnapshot serializes an IndexState to w.
func WriteSnapshot(w io.Writer, st *kcore.IndexState) error {
	data, err := EncodeSnapshot(st)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadSnapshot decodes, CRC-verifies, and semantically verifies a snapshot,
// returning a reconstructed engine. opts configure non-replay engine knobs
// (workers, rebuild thresholds); the snapshot's stored seed, heuristic and
// structure always win. All failures wrap ErrCorruptSnapshot.
func ReadSnapshot(r io.Reader, opts ...kcore.Option) (*kcore.Engine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	}
	e, _, err := decodeEngine(data, opts...)
	return e, err
}

// decodeEngine decodes snapshot bytes and reconstructs the verified engine,
// also returning the decoded state (Store recovery needs its Seq). Shared
// by ReadSnapshot and Store.Open so the corruption classification cannot
// diverge between the two recovery paths.
func decodeEngine(data []byte, opts ...kcore.Option) (*kcore.Engine, *kcore.IndexState, error) {
	st, err := DecodeSnapshot(data)
	if err != nil {
		return nil, nil, err
	}
	e, err := kcore.FromIndex(st, opts...)
	if err != nil {
		// The bytes were well-formed but the state does not verify (e.g. a
		// forged CRC over inconsistent cores): still corruption, never a
		// silently-wrong engine.
		return nil, nil, fmt.Errorf("%w: state verification failed: %v", ErrCorruptSnapshot, err)
	}
	return e, st, nil
}

// Save atomically writes a snapshot of e's current state to path: the bytes
// go to a temp file in the same directory, are fsynced, renamed over path,
// and the directory entry is fsynced. Concurrent writers are blocked only
// during the in-memory state capture, not the file write.
func Save(path string, e *kcore.Engine) error {
	st, err := e.View(kcore.WithIndex()).Index()
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	data, err := EncodeSnapshot(st)
	if err != nil {
		return err
	}
	return atomicWrite(nil, path, data)
}

// Load reads the snapshot at path into a reconstructed engine (see
// ReadSnapshot for verification and option semantics).
func Load(path string, opts ...kcore.Option) (*kcore.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f, opts...)
}

// atomicWrite writes data to path via temp file + fsync + rename + dir
// sync. plane (nil in production) injects faults at the "snap.*" probe
// points — see internal/fault.
func atomicWrite(plane *fault.Plane, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fault.CreateTemp(plane, "snap", dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err := fault.Rename(plane, "snap", tmpName, path); err != nil {
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

package persist

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"

	"kcore"
)

// streamBytes builds a WAL byte stream: header + one frame per record.
func streamBytes(t *testing.T, recs []WALRecord) []byte {
	t.Helper()
	buf := AppendWALHeader(nil)
	for _, rec := range recs {
		b, err := AppendWALFrame(buf, rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = b
	}
	return buf
}

var streamRecs = []WALRecord{
	{Seq: 2, Updates: []kcore.Update{kcore.Add(0, 1), kcore.Add(1, 2)}},
	{Seq: 3, Updates: []kcore.Update{kcore.Remove(0, 1)}},
	{Seq: 6, Updates: []kcore.Update{kcore.Add(0, 1), kcore.Add(0, 2), kcore.Add(3, 4)}},
}

// TestWALReaderStream: the streaming reader decodes a full stream record by
// record and ends with a clean io.EOF — also through a one-byte-at-a-time
// reader, the worst case a network connection can deliver.
func TestWALReaderStream(t *testing.T) {
	data := streamBytes(t, streamRecs)
	for _, tc := range []struct {
		name string
		r    io.Reader
	}{
		{"whole", bytes.NewReader(data)},
		{"one-byte-reads", iotest.OneByteReader(bytes.NewReader(data))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wr := NewWALReader(tc.r)
			for i, want := range streamRecs {
				rec, err := wr.Next()
				if err != nil {
					t.Fatalf("record %d: %v", i, err)
				}
				if rec.Seq != want.Seq || len(rec.Updates) != len(want.Updates) {
					t.Fatalf("record %d = %+v, want %+v", i, rec, want)
				}
				for j := range want.Updates {
					if rec.Updates[j] != want.Updates[j] {
						t.Fatalf("record %d update %d = %+v, want %+v", i, j, rec.Updates[j], want.Updates[j])
					}
				}
			}
			if _, err := wr.Next(); err != io.EOF {
				t.Fatalf("end of stream: %v, want io.EOF", err)
			}
			if wr.Records() != 3 || wr.LastSeq() != 6 || wr.Offset() != int64(len(data)) {
				t.Fatalf("reader state: records=%d lastSeq=%d off=%d", wr.Records(), wr.LastSeq(), wr.Offset())
			}
		})
	}
}

// TestWALReaderTorn: every truncation point inside a record (or the header)
// yields io.ErrUnexpectedEOF with the torn size, while truncation at a
// record boundary is a clean EOF.
func TestWALReaderTorn(t *testing.T) {
	data := streamBytes(t, streamRecs)
	// 0 is a boundary too: a zero-length stream is a valid empty WAL.
	boundaries := map[int]bool{0: true, len(data): true}
	{
		wr := NewWALReader(bytes.NewReader(data))
		for {
			if _, err := wr.Next(); err != nil {
				break
			}
			boundaries[int(wr.Offset())] = true
		}
		boundaries[walHeaderLen] = true
	}
	for cut := 0; cut < len(data); cut++ {
		wr := NewWALReader(bytes.NewReader(data[:cut]))
		var err error
		for err == nil {
			_, err = wr.Next()
		}
		if boundaries[cut] {
			if err != io.EOF {
				t.Fatalf("cut %d (boundary): %v, want io.EOF", cut, err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
		if wr.Offset()+wr.Torn() != int64(cut) {
			t.Fatalf("cut %d: off %d + torn %d != cut", cut, wr.Offset(), wr.Torn())
		}
	}
}

// TestWALReaderCorruption: malformations are structured ErrCorruptWAL
// errors — never torn tails, never panics.
func TestWALReaderCorruption(t *testing.T) {
	good := streamBytes(t, streamRecs)
	flipCRC := bytes.Clone(good)
	flipCRC[len(flipCRC)-1] ^= 0xff // payload bit flip: CRC mismatch
	badMagic := bytes.Clone(good)
	badMagic[0] = 'X'
	badVersion := bytes.Clone(good)
	badVersion[8] = 99
	regressed := streamBytes(t, []WALRecord{
		{Seq: 5, Updates: []kcore.Update{kcore.Add(0, 1)}},
		{Seq: 4, Updates: []kcore.Update{kcore.Add(1, 2)}},
	})
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"crc", flipCRC},
		{"magic", badMagic},
		{"version", badVersion},
		{"seq-regression", regressed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wr := NewWALReader(bytes.NewReader(tc.data))
			var err error
			for err == nil {
				_, err = wr.Next()
			}
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("err = %v, want ErrCorruptWAL", err)
			}
		})
	}
}

// TestWALReaderTransportError: a reader failing with a real I/O error (not
// EOF) surfaces that error, distinguishable from corruption — a follower
// must treat it as reconnectable, not as a poisoned stream.
func TestWALReaderTransportError(t *testing.T) {
	boom := errors.New("connection reset")
	data := streamBytes(t, streamRecs)
	wr := NewWALReader(io.MultiReader(bytes.NewReader(data[:len(data)-4]), iotest.ErrReader(boom)))
	var err error
	for err == nil {
		_, err = wr.Next()
	}
	if !errors.Is(err, boom) || errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("err = %v, want the transport error and not ErrCorruptWAL", err)
	}
}

// TestAppendWALFrameRejects: records the format cannot represent fail at
// encode time.
func TestAppendWALFrameRejects(t *testing.T) {
	if _, err := AppendWALFrame(nil, WALRecord{Seq: 1}); err == nil {
		t.Fatal("empty record must not encode")
	}
	if _, err := AppendWALFrame(nil, WALRecord{Seq: 1, Updates: []kcore.Update{kcore.Add(-1, 2)}}); err == nil {
		t.Fatal("negative vertex must not encode")
	}
}

package persist

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"kcore"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden format fixtures")

// goldenState is the fixed engine state both golden fixtures derive from.
// Do not change it: the fixtures pin the byte format, and this state pins
// the fixtures.
func goldenState(tb testing.TB) *kcore.IndexState {
	tb.Helper()
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}, {1, 5}}
	e, err := kcore.FromEdges(edges, kcore.WithSeed(7))
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := e.Apply(kcore.Batch{kcore.Add(0, 5), kcore.Remove(2, 3), kcore.Add(6, 0)}); err != nil {
		tb.Fatal(err)
	}
	st, err := e.View(kcore.WithIndex()).Index()
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

// goldenWAL is the fixed WAL byte stream (header + three records, one with
// a multi-byte varint vertex id).
func goldenWAL(tb testing.TB) []byte {
	tb.Helper()
	buf := append([]byte(nil), walMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, WALVersion)
	recs := []WALRecord{
		{Seq: 2, Updates: []kcore.Update{kcore.Add(0, 1), kcore.Add(1, 2)}},
		{Seq: 3, Updates: []kcore.Update{kcore.Add(0, 300)}},
		{Seq: 6, Updates: []kcore.Update{kcore.Remove(0, 1), kcore.Add(2, 3), kcore.Add(1, 3)}},
	}
	for _, r := range recs {
		var err error
		buf, err = appendWALRecord(buf, r.Seq, r.Updates)
		if err != nil {
			tb.Fatal(err)
		}
	}
	return buf
}

func goldenPath(name string) string { return filepath.Join("testdata", "golden", name) }

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run 'go test ./internal/persist -run Golden -update'): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoding changed (%d bytes, golden %d).\n"+
			"The on-disk format is pinned: if this change is intentional, bump the "+
			"format version, keep a decoder for the old version (or document the "+
			"migration), and regenerate with -update.", name, len(got), len(want))
	}
}

// TestGoldenSnapshotFormat pins the snapshot byte format: the fixed state
// must encode to the committed fixture byte for byte, and the fixture must
// decode back to the exact state.
func TestGoldenSnapshotFormat(t *testing.T) {
	st := goldenState(t)
	data, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot_v1.bin", data)

	e, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.View(kcore.WithIndex()).Index()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != st.Seq || got.Seed != st.Seed || got.Vertices != st.Vertices {
		t.Fatalf("golden decode header mismatch: %+v vs %+v", got, st)
	}
}

// TestGoldenWALFormat pins the WAL byte format.
func TestGoldenWALFormat(t *testing.T) {
	data := goldenWAL(t)
	checkGolden(t, "wal_v1.bin", data)

	var seqs []uint64
	res, err := scanWAL(bytes.NewReader(data), func(rec WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	})
	if err != nil || res.tornBytes != 0 {
		t.Fatalf("golden WAL scan: %v (torn %d)", err, res.tornBytes)
	}
	if len(seqs) != 3 || seqs[2] != 6 {
		t.Fatalf("golden WAL records = %v", seqs)
	}
}

// TestGoldenBatchFormat pins the binary batch-frame byte format used as the
// application/x-kcore-batch wire body.
func TestGoldenBatchFormat(t *testing.T) {
	updates := []kcore.Update{
		kcore.Add(0, 1), kcore.Add(1, 2), kcore.Remove(0, 1), kcore.Add(0, 300),
	}
	data, err := AppendBatchFrame(nil, updates)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "batch_v1.bin", data)

	got, err := DecodeBatchFrame(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(updates) {
		t.Fatalf("golden batch decoded %d updates, want %d", len(got), len(updates))
	}
	for i := range got {
		if got[i] != updates[i] {
			t.Fatalf("golden batch update %d = %+v, want %+v", i, got[i], updates[i])
		}
	}
}

// TestFormatVersionsPinned makes a format-version bump an explicit,
// reviewed act: changing either constant fails here until the golden
// fixtures (and this test) are updated together.
func TestFormatVersionsPinned(t *testing.T) {
	if SnapshotVersion != 1 {
		t.Fatalf("SnapshotVersion = %d; the golden fixtures pin version 1. "+
			"Add a snapshot_v%d.bin fixture, keep (or explicitly drop, with a "+
			"migration note) the v1 decoder, and update this test.", SnapshotVersion, SnapshotVersion)
	}
	if WALVersion != 1 {
		t.Fatalf("WALVersion = %d; the golden fixtures pin version 1. "+
			"Add a wal_v%d.bin fixture, keep (or explicitly drop, with a "+
			"migration note) the v1 decoder, and update this test.", WALVersion, WALVersion)
	}
	if BatchVersion != 1 {
		t.Fatalf("BatchVersion = %d; the golden fixtures pin version 1. "+
			"Add a batch_v%d.bin fixture, keep (or explicitly drop, with a "+
			"migration note) the v1 decoder, and update this test.", BatchVersion, BatchVersion)
	}
}

package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"kcore"
	"kcore/internal/fault"
)

// File names inside a Store directory.
const (
	// SnapshotFile is the current snapshot.
	SnapshotFile = "snapshot.kcs"
	// WALFile is the write-ahead log.
	WALFile = "wal.kcl"
)

// Store manages a durable engine in one directory: a snapshot plus a WAL,
// an apply hook that logs every batch, and compaction that rolls the WAL
// into a fresh snapshot. Open recovers the pre-crash state; Close detaches
// cleanly. All methods are safe for concurrent use.
type Store struct {
	dir    string
	opts   Options
	engine *kcore.Engine

	// snapMu serializes snapshot writes (manual and automatic compaction)
	// against each other. It is never held while acquiring mu-after-engine
	// paths: a snapshot captures the view first (engine read lock, no store
	// locks), writes the file, and only then takes mu to swap the WAL.
	snapMu sync.Mutex

	// mu guards the WAL handle and the counters below. The apply hook takes
	// it under the engine's write lock, so nothing holding mu may acquire
	// engine locks.
	mu         sync.Mutex
	wal        *wal
	closed     bool
	snapSeq    uint64
	snapBytes  int64
	appends    uint64
	compacts   uint64
	cErrs      uint64
	lastCErr   error
	sErrs      uint64
	lastSErr   error
	recovered  uint64
	recSeq     uint64
	torn       int64
	retrySaves uint64

	compactCh chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup
}

// Open recovers (or initializes) a durable engine in dir and returns the
// managing Store. Recovery order: load the snapshot if present (else build
// a fresh engine — via opts.Init for a brand-new directory), replay every
// WAL record past the snapshot's sequence number through Engine.Replay
// (silent: no subscriber events), truncate a torn WAL tail, write the
// initial snapshot if the directory had none, then attach the WAL apply
// hook so every subsequent Apply is logged before it returns. A corrupt
// snapshot or WAL fails Open with ErrCorruptSnapshot / ErrCorruptWAL.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	removeStaleTemps(dir)

	s := &Store{dir: dir, opts: opts,
		compactCh: make(chan struct{}, 1), stop: make(chan struct{})}
	snapPath := filepath.Join(dir, SnapshotFile)
	walPath := filepath.Join(dir, WALFile)

	// 1. Base state: snapshot, Init seed, or empty engine.
	hadSnapshot := false
	if data, err := os.ReadFile(snapPath); err == nil {
		e, st, err := decodeEngine(data, opts.Engine...)
		if err != nil {
			return nil, err
		}
		s.engine = e
		s.snapSeq = st.Seq
		s.snapBytes = int64(len(data))
		hadSnapshot = true
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	} else {
		fresh := true
		if wst, err := os.Stat(walPath); err == nil && wst.Size() > walHeaderLen {
			// WAL records without a snapshot: the log must start at sequence
			// zero against an empty engine, so an Init seed would be wrong.
			fresh = false
		}
		if fresh && opts.Init != nil {
			e, err := opts.Init()
			if err != nil {
				return nil, fmt.Errorf("persist: init engine: %w", err)
			}
			s.engine = e
		} else {
			s.engine = kcore.NewEngine(opts.Engine...)
		}
	}

	// 2. Replay the WAL past the snapshot seq, truncating a torn tail.
	var walRecords, walLastSeq uint64
	if f, err := os.OpenFile(walPath, os.O_RDWR, 0); err == nil {
		res, replayed, serr := replayWAL(s.engine, f)
		s.recovered = replayed
		if serr != nil {
			f.Close()
			return nil, serr
		}
		if res.tornBytes > 0 {
			if err := f.Truncate(res.goodOffset); err != nil {
				f.Close()
				return nil, fmt.Errorf("persist: truncate torn WAL tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("persist: sync truncated WAL: %w", err)
			}
			s.torn = res.tornBytes
		}
		f.Close()
		walRecords, walLastSeq = res.records, res.lastSeq
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: open WAL: %w", err)
	}
	s.recSeq = s.engine.Seq()

	// 3. A directory without a snapshot gets one now, so the base state is
	// durable (and recovery above never depends on Init again). This runs
	// before the WAL is opened for appending so the append-side chain base
	// below reflects the snapshot actually on disk.
	if !hadSnapshot {
		if err := s.writeSnapshot(); err != nil {
			return nil, err
		}
	}
	var err error
	if s.wal, err = openWAL(walPath, opts.Sync, opts.SyncEvery, walRecords, walLastSeq, s.snapSeq, opts.Fault); err != nil {
		return nil, err
	}

	// 4. Log every future batch; compact — and, under the interval policy,
	// fsync — in the background.
	s.engine.SetApplyHook(s.onApply)
	s.wg.Add(1)
	go s.compactLoop()
	if opts.Sync == SyncInterval {
		s.wg.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// syncLoop is the interval policy's durability timer: appends piggyback an
// fsync when one is due, but a lone batch followed by silence would
// otherwise sit in the page cache indefinitely — this loop bounds the
// exposure of acknowledged-but-unsynced records to roughly one SyncEvery
// period even when no further appends arrive.
func (s *Store) syncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.wal != nil && s.wal.dirty {
				if err := s.wal.sync(); err != nil {
					// A durability failure, not a compaction one: batches it
					// covers were already acknowledged, so count it where
					// Stats.SyncErrors makes it visible.
					s.sErrs++
					s.lastSErr = err
				}
			}
			s.mu.Unlock()
		}
	}
}

// replayWAL scans a WAL stream, replaying every record past e's current
// sequence number into e through Engine.Replay (silent: no subscriber
// events, no apply hook). Records at or below e's sequence number are
// skipped (they are covered by the snapshot e was loaded from); a record
// that does not chain onto the current sequence number, or whose updates
// fail to apply, is corruption. Returns the scan outcome (including the
// torn-tail size the caller may truncate) and the number of records
// replayed.
func replayWAL(e *kcore.Engine, r io.Reader) (walScan, uint64, error) {
	cur := e.Seq()
	var replayed uint64
	res, err := scanWAL(r, func(rec WALRecord) error {
		if rec.Seq <= cur {
			return nil // already covered by the snapshot
		}
		if start := rec.Seq - uint64(len(rec.Updates)); start != cur {
			return fmt.Errorf("%w: record covering seq %d..%d does not chain onto state at seq %d",
				ErrCorruptWAL, start+1, rec.Seq, cur)
		}
		if _, err := e.Replay(kcore.Batch(rec.Updates)); err != nil {
			return fmt.Errorf("%w: record ending at seq %d does not apply: %v",
				ErrCorruptWAL, rec.Seq, err)
		}
		cur = rec.Seq
		replayed++
		return nil
	})
	return res, replayed, err
}

// removeStaleTemps deletes temp files a crashed snapshot write or WAL
// rewrite left behind.
func removeStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.Contains(name, ".tmp-") &&
			(strings.HasPrefix(name, SnapshotFile) || strings.HasPrefix(name, "wal")) {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// Engine returns the managed engine. Mutate it through its normal API; the
// store's hook logs every applied batch.
func (s *Store) Engine() *kcore.Engine { return s.engine }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// onApply is the engine apply hook: it appends the batch to the WAL (the
// engine's write lock is held, so append order equals apply order) and
// schedules a background compaction when the log has outgrown its budget —
// or when the append failed, because a fresh snapshot is also the repair
// path: the engine has advanced past the log (HookError contract: the batch
// stays applied), so the snapshot captures that advanced state, re-covers
// the gap, and rebuilds a sealed log file; appends then chain again with no
// restart. Until the heal lands, every append is refused (errWALGap /
// sealed) rather than written as an unreplayable gap record, so one
// transient write error can never make the directory unrecoverable.
func (s *Store) onApply(rec kcore.AppliedBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errStoreClosed
	}
	err := s.wal.append(rec.Seq, rec.Updates)
	if err != nil {
		err = s.retryAppend(err)
	}
	if err != nil {
		if s.opts.CompactBytes > 0 { // negative disables background compaction entirely
			select {
			case s.compactCh <- struct{}{}:
			default:
			}
		}
		return err
	}
	s.appends++
	if s.opts.CompactBytes > 0 && s.wal.size >= s.opts.CompactBytes {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// retryAppend is the bounded in-line retry of a transiently failed append
// (Options.AppendRetries): when the frame was deferred cleanly — the chain
// is intact, only the write blipped — it sleeps a short jittered backoff
// and re-flushes the backlog, so the Apply caller never sees the fault.
// Appends refused as gaps, sealed logs, and backlog overflows are not
// retried: those need the snapshot heal. The caller holds s.mu (and the
// engine write lock above it), so the backoff bound is the worst-case
// latency added to every concurrent engine operation.
func (s *Store) retryAppend(err error) error {
	if s.opts.AppendRetries <= 0 || errors.Is(err, errWALGap) ||
		s.wal.failed || s.wal.pendingRecords == 0 {
		return err
	}
	bo := fault.Backoff{Min: s.opts.RetryBackoff, Max: 8 * s.opts.RetryBackoff}
	for i := 0; i < s.opts.AppendRetries; i++ {
		time.Sleep(bo.Next())
		ferr := s.wal.flushDeferred()
		if ferr == nil {
			s.retrySaves++
			return nil
		}
		err = ferr
		if s.wal.failed || s.wal.pendingRecords == 0 {
			break // rollback failed or the backlog overflowed: only a heal helps
		}
	}
	return err
}

// compactLoop runs automatic compactions off the apply path.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.compactCh:
			// A signal racing Close can lose to the closed flag inside
			// Snapshot; that is a benign shutdown, not a compaction failure.
			if _, err := s.Snapshot(); err != nil && !errors.Is(err, errStoreClosed) {
				s.mu.Lock()
				s.cErrs++
				s.lastCErr = err
				s.mu.Unlock()
			}
		}
	}
}

// SnapshotInfo reports one compaction.
type SnapshotInfo struct {
	// Seq is the sequence number the snapshot captured.
	Seq uint64
	// Bytes is the snapshot file size.
	Bytes int64
}

// Snapshot compacts now: it captures a consistent view, atomically replaces
// the snapshot file, and drops WAL records the new snapshot covers. Writers
// are never blocked during the snapshot file write, only during the
// in-memory capture and the WAL swap — which is an O(1) in-place truncate
// when the snapshot covers the whole log, but degrades to a full log scan
// and tail rewrite (writers waiting throughout) when batches landed after
// the capture. Safe to call at any time (the admin endpoint of kcore-serve
// does); concurrent calls serialize. When only the
// WAL compaction step fails after the snapshot landed, the returned
// SnapshotInfo is still valid and the error wraps ErrCompaction (partial
// success). Snapshot is also the repair path after a failed WAL append: the
// new snapshot re-covers the engine state the log is missing and rebuilds a
// sealed log file, after which appends resume.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SnapshotInfo{}, errStoreClosed
	}
	s.mu.Unlock()
	if err := s.writeSnapshot(); err != nil {
		return SnapshotInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info := SnapshotInfo{Seq: s.snapSeq, Bytes: s.snapBytes}
	if s.closed { // closed while the file was being written
		return info, nil
	}
	if err := s.wal.compactTo(s.snapSeq); err != nil {
		if s.wal.failed || s.wal.chainSeq() < s.snapSeq {
			// The log still cannot accept appends (sealed handle, or the
			// engine is ahead of what the log chains onto): this snapshot
			// did NOT heal it, so report a real failure — not the partial
			// success below, which would tell the caller not to retry.
			return info, err
		}
		// The snapshot file is already durably in place and the log keeps
		// accepting appends — only the WAL shrink failed. Wrap with
		// ErrCompaction so callers (the /v1/snapshot handler) can report
		// partial success instead of re-triggering a full snapshot that
		// already succeeded.
		return info, fmt.Errorf("%w: %w", ErrCompaction, err)
	}
	return info, nil
}

// writeSnapshot captures the engine and atomically replaces the snapshot
// file, updating the snapshot counters. It does not touch the WAL.
func (s *Store) writeSnapshot() error {
	st, err := s.engine.View(kcore.WithIndex()).Index()
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	data, err := EncodeSnapshot(st)
	if err != nil {
		return err
	}
	if err := atomicWrite(s.opts.Fault, filepath.Join(s.dir, SnapshotFile), data); err != nil {
		return err
	}
	s.mu.Lock()
	s.snapSeq = st.Seq
	s.snapBytes = int64(len(data))
	s.compacts++
	s.mu.Unlock()
	return nil
}

// WALAppendable reports whether the log can accept the next append: the
// handle is usable and the chain is caught up with the engine. It is the
// health probe behind the server's availability state machine — false
// means every write is currently answered with a durability failure and
// the store needs a heal. It reads the engine's sequence number before
// taking the store lock (nothing holding mu may acquire engine locks);
// the two reads can race a concurrent apply, which at worst reports a
// transiently stale verdict — callers poll.
func (s *Store) WALAppendable() bool {
	seq := s.engine.Seq()
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && s.wal != nil && !s.wal.failed &&
		s.wal.chainSeq() == seq && s.wal.pendingRecords == 0
}

// Sealed reports whether the WAL handle is unusable — the log refuses
// every append until a compaction rebuilds the file. Sealed is strictly
// worse than !WALAppendable: a non-sealed, non-appendable log (deferred
// backlog) still self-heals on the next successful append, while a sealed
// one cannot accept appends at all.
func (s *Store) Sealed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && s.wal != nil && s.wal.failed
}

// Heal restores WAL appendability after a durability failure by forcing
// the compaction snapshot described on Snapshot: the fresh snapshot
// captures the engine state the log is missing and rebuilds a sealed log
// file. A store that is already appendable returns nil immediately, so
// the server's degraded-mode recovery probe can call it blindly.
func (s *Store) Heal() error {
	if s.WALAppendable() {
		return nil
	}
	if _, err := s.Snapshot(); err != nil && !errors.Is(err, ErrCompaction) {
		return err
	}
	if !s.WALAppendable() {
		return fmt.Errorf("persist: WAL still not appendable after snapshot")
	}
	return nil
}

// Stats returns the store's durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		SnapshotSeq:      s.snapSeq,
		SnapshotBytes:    s.snapBytes,
		Appends:          s.appends,
		AppendRetrySaves: s.retrySaves,
		Compactions:      s.compacts,
		CompactErrors:    s.cErrs,
		SyncErrors:       s.sErrs,
		RecoveredRecords: s.recovered,
		RecoveredSeq:     s.recSeq,
		TornBytes:        s.torn,
	}
	if s.wal != nil {
		st.WALRecords = s.wal.records
		st.WALBytes = s.wal.size
		st.Syncs = s.wal.syncs
	}
	return st
}

// Close detaches the apply hook, stops the background compactor, and syncs
// and closes the WAL. The engine remains usable afterwards — it just stops
// being logged. Close returns the last background compaction and interval
// fsync errors, if any occurred. It is idempotent.
func (s *Store) Close() error {
	s.engine.SetApplyHook(nil) // waits out any in-flight Apply (write lock)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.snapMu.Lock() // a manual Snapshot may still be writing
	defer s.snapMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.wal.close()
	if s.lastCErr != nil {
		err = errors.Join(err, fmt.Errorf("persist: background compaction: %w", s.lastCErr))
	}
	if s.lastSErr != nil {
		err = errors.Join(err, fmt.Errorf("persist: background WAL sync: %w", s.lastSErr))
	}
	return err
}

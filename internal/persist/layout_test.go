package persist

import (
	"os"
	"path/filepath"
	"slices"
	"testing"
)

func TestTenantLayout(t *testing.T) {
	root := t.TempDir()
	if names, err := ListTenantDirs(root); err != nil || names != nil {
		t.Fatalf("empty root: names=%v err=%v", names, err)
	}
	if HasState(root) {
		t.Fatal("empty root claims state")
	}

	// A directory with no store files is stateless and must not list.
	if err := os.MkdirAll(TenantDir(root, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A stray regular file under tenants/ must be ignored.
	if err := os.WriteFile(filepath.Join(root, TenantsDirName, "junk.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"beta", "alpha"} {
		st, err := Open(TenantDir(root, name), Options{Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Engine().AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if !HasState(TenantDir(root, name)) {
			t.Fatalf("tenant %s has no state after Open+Close", name)
		}
	}

	names, err := ListTenantDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(names, []string{"alpha", "beta"}) {
		t.Fatalf("ListTenantDirs = %v, want [alpha beta]", names)
	}

	// The default tenant's root-level store never shadows a named tenant.
	if st, err := Open(root, Options{Sync: SyncOff}); err != nil {
		t.Fatal(err)
	} else if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if names, err = ListTenantDirs(root); err != nil || !slices.Equal(names, []string{"alpha", "beta"}) {
		t.Fatalf("after root store: names=%v err=%v", names, err)
	}
}

package persist

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"kcore"
	"kcore/internal/gen"
)

// testEngine builds a deterministic engine with some update history, so the
// maintained k-order differs from a fresh decomposition of the same edges.
func testEngine(t *testing.T) *kcore.Engine {
	t.Helper()
	g := gen.BarabasiAlbert(80, 3, 11)
	e, err := kcore.FromEdges(g.Edges(), kcore.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	// Churn a little so order state is history-dependent (fresh vertices, so
	// validity is independent of the BA topology; one pair coalesces).
	if _, err := e.Apply(kcore.Batch{
		kcore.Add(0, 80), kcore.Add(1, 81), kcore.Remove(0, 80), kcore.Add(2, 82),
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// stateOf captures the observable maintained state for comparison.
func stateOf(t *testing.T, e *kcore.Engine) *kcore.IndexState {
	t.Helper()
	st, err := e.View(kcore.WithIndex()).Index()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// assertSameState fails unless two engines agree on cores, k-order, and seq.
func assertSameState(t *testing.T, want, got *kcore.Engine) {
	t.Helper()
	ws, gs := stateOf(t, want), stateOf(t, got)
	if ws.Seq != gs.Seq {
		t.Fatalf("seq = %d, want %d", gs.Seq, ws.Seq)
	}
	if !slices.Equal(ws.Cores, gs.Cores) {
		t.Fatalf("core numbers differ\n got %v\nwant %v", gs.Cores, ws.Cores)
	}
	if !slices.Equal(ws.Order, gs.Order) {
		t.Fatalf("maintained k-order differs\n got %v\nwant %v", gs.Order, ws.Order)
	}
}

// assertEquivalentState fails unless two engines agree on seq, core numbers,
// and edge set, and got maintains a valid k-order. Unlike assertSameState it
// does NOT demand a bit-identical k-order: snapshots store edges canonically
// sorted, so a restored engine's adjacency ordering differs from the live
// engine's historical swap-remove ordering, and replaying a WAL tail recorded
// after a mid-churn compaction can then break k-order ties differently. Both
// orders are valid maintained decompositions of the same graph (Validate
// proves order-validity); demanding Order bit-equality across a compaction
// boundary was a ~15% flake. Deterministic round-trip tests (no compaction
// mid-churn) still use the strict assertSameState.
func assertEquivalentState(t *testing.T, want, got *kcore.Engine) {
	t.Helper()
	ws, gs := stateOf(t, want), stateOf(t, got)
	if ws.Seq != gs.Seq {
		t.Fatalf("seq = %d, want %d", gs.Seq, ws.Seq)
	}
	if !slices.Equal(ws.Cores, gs.Cores) {
		t.Fatalf("core numbers differ\n got %v\nwant %v", gs.Cores, ws.Cores)
	}
	if we, ge := canonicalEdges(ws.Edges), canonicalEdges(gs.Edges); !slices.Equal(we, ge) {
		t.Fatalf("edge sets differ\n got %v\nwant %v", ge, we)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("restored engine invalid: %v", err)
	}
}

// canonicalEdges normalizes endpoint order and sorts, so edge sets compare
// independently of adjacency history.
func canonicalEdges(edges [][2]int) [][2]int {
	out := make([][2]int, len(edges))
	for i, e := range edges {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		out[i] = e
	}
	slices.SortFunc(out, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	e := testEngine(t)
	path := filepath.Join(t.TempDir(), "snap.kcs")
	if err := Save(path, e); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	assertSameState(t, e, got)
	if err := got.Validate(); err != nil {
		t.Fatalf("restored engine invalid: %v", err)
	}
	// The restored engine evolves identically: same updates, same state.
	// Fresh vertices keep the batch valid regardless of the BA topology.
	batch := kcore.Batch{kcore.Add(2, 80), kcore.Remove(2, 80), kcore.Add(81, 3), kcore.Add(81, 5)}
	if _, err := e.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Apply(batch); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, e, got)
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	e := testEngine(t)
	st := stateOf(t, e)
	data, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		b := slices.Clone(data)
		b = mutate(b)
		if _, err := DecodeSnapshot(b); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("%s: err = %v, want ErrCorruptSnapshot", name, err)
		}
	}
	check("empty", func(b []byte) []byte { return nil })
	check("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	check("bad version", func(b []byte) []byte { b[8] = 99; return b })
	check("flipped header bit", func(b []byte) []byte { b[20] ^= 0x10; return b })
	check("flipped body bit", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b })
	check("flipped trailer bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	check("truncated", func(b []byte) []byte { return b[:len(b)-7] })
	check("extended", func(b []byte) []byte { return append(b, 0xAB) })
}

// TestSnapshotRejectsForgedState proves a well-formed snapshot (valid CRC)
// carrying an internally inconsistent state still fails verification
// instead of loading silently-wrong core numbers.
func TestSnapshotRejectsForgedState(t *testing.T) {
	e := testEngine(t)
	st := stateOf(t, e)
	forged := *st
	forged.Cores = slices.Clone(st.Cores)
	forged.Cores[0]++ // claim a core number the graph cannot support
	data, err := EncodeSnapshot(&forged)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("forged snapshot should decode structurally: %v", err)
	}
	if _, err := Load(writeTemp(t, data)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("forged state loaded: err = %v, want ErrCorruptSnapshot", err)
	}
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "file.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSaveIsAtomic proves a Save over an existing snapshot leaves either
// the old or the new bytes, never a partial file, and cleans its temp.
func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.kcs")
	e := testEngine(t)
	if err := Save(path, e); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddEdge(4, 70); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, e); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.kcs" {
		t.Fatalf("directory not clean after Save: %v", entries)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, e, got)
}

// TestEncodeRejectsInvalidEdges: malformed IndexState edges must fail the
// encode, never produce a snapshot that cannot be decoded.
func TestEncodeRejectsInvalidEdges(t *testing.T) {
	base := stateOf(t, testEngine(t))
	for name, edges := range map[string][][2]int{
		"negative second endpoint": {{5, -1}},
		"negative first endpoint":  {{-1, 5}},
		"self loop":                {{4, 4}},
		"out of range":             {{0, base.Vertices}},
	} {
		st := *base
		st.Edges = edges
		if _, err := EncodeSnapshot(&st); err == nil {
			t.Errorf("%s: EncodeSnapshot accepted %v", name, edges)
		}
	}
}

func TestSaveRequiresOrderEngine(t *testing.T) {
	e, err := kcore.FromEdges([][2]int{{0, 1}}, kcore.WithAlgorithm(kcore.Traversal))
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(filepath.Join(t.TempDir(), "x"), e); !errors.Is(err, kcore.ErrWrongEngine) {
		t.Fatalf("Save on traversal engine: err = %v, want ErrWrongEngine", err)
	}
}

// TestSnapshotEmptyEngine covers the smallest state: zero vertices.
func TestSnapshotEmptyEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.kcs")
	if err := Save(path, kcore.NewEngine()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 0 || got.Seq() != 0 {
		t.Fatalf("empty snapshot loaded %d vertices, seq %d", got.NumVertices(), got.Seq())
	}
}

package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the streaming face of the WAL codec: the same KCOREWAL byte
// format the on-disk log uses (see wal.go), exposed record by record so it
// can travel over a network connection. internal/replicate ships the
// primary's log to followers through exactly these functions — the wire
// format of replication IS the WAL format, so the golden fixtures and the
// recovery semantics cover both.

// AppendWALHeader appends the KCOREWAL stream header (magic + version) onto
// buf. A WAL byte stream is this header followed by zero or more frames
// produced by AppendWALFrame.
func AppendWALHeader(buf []byte) []byte {
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], WALVersion)
	return append(buf, hdr[:]...)
}

// AppendWALFrame encodes one record as a WAL frame (length + CRC + payload)
// onto buf. It fails only on records the format cannot represent (unknown
// op, negative vertex, no updates).
func AppendWALFrame(buf []byte, rec WALRecord) ([]byte, error) {
	if len(rec.Updates) == 0 {
		return nil, fmt.Errorf("persist: WAL record with no updates")
	}
	return appendWALRecord(buf, rec.Seq, rec.Updates)
}

// WALReader decodes a KCOREWAL byte stream record by record. It is the
// streaming core the file-recovery scan (scanWAL) and the replication
// follower share. Next returns errors in three classes:
//
//   - io.EOF: the stream ended cleanly at a record boundary (a header-only
//     stream is a valid empty WAL);
//   - io.ErrUnexpectedEOF: the stream ended inside a record or the header —
//     the torn tail a crashed append (or a cut connection) leaves behind;
//     Torn reports its size;
//   - anything else: either a malformation wrapping ErrCorruptWAL (bad
//     magic, CRC mismatch, implausible structure, sequence regression) or
//     the underlying reader's error, wrapped.
//
// After any error the reader is spent; Offset reports the byte offset just
// past the last complete, valid record (0 when the header never validated).
// The reader issues small framed reads and does not buffer: wrap the source
// in a bufio.Reader unless it already buffers.
type WALReader struct {
	r       io.Reader
	payload []byte // reused payload scratch; records get fresh Update slices
	off     int64
	torn    int64
	records uint64
	lastSeq uint64
	started bool
}

// NewWALReader returns a reader decoding the WAL byte stream r.
func NewWALReader(r io.Reader) *WALReader { return &WALReader{r: r} }

// Offset is the byte offset just past the last complete, valid record (just
// past the header when no record was read, 0 when the header never
// validated).
func (d *WALReader) Offset() int64 { return d.off }

// Torn is the size of the incomplete trailing structure, non-zero only
// after Next returned io.ErrUnexpectedEOF.
func (d *WALReader) Torn() int64 { return d.torn }

// Records is the number of valid records decoded so far.
func (d *WALReader) Records() uint64 { return d.records }

// LastSeq is the sequence number of the last valid record (0 before any).
func (d *WALReader) LastSeq() uint64 { return d.lastSeq }

// Next decodes and returns the next record. See the type comment for the
// error contract.
func (d *WALReader) Next() (WALRecord, error) {
	var zero WALRecord
	if !d.started {
		var header [walHeaderLen]byte
		n, err := io.ReadFull(d.r, header[:])
		switch {
		case err == io.EOF:
			return zero, io.EOF
		case err == io.ErrUnexpectedEOF:
			d.torn = int64(n)
			return zero, io.ErrUnexpectedEOF
		case err != nil:
			return zero, fmt.Errorf("persist: WAL read: %w", err)
		}
		if [8]byte(header[:8]) != walMagic {
			return zero, fmt.Errorf("%w: bad magic %q", ErrCorruptWAL, header[:8])
		}
		if v := binary.LittleEndian.Uint32(header[8:]); v != WALVersion {
			return zero, fmt.Errorf("%w: unsupported WAL version %d (want %d)", ErrCorruptWAL, v, WALVersion)
		}
		d.off = walHeaderLen
		d.started = true
	}
	var frame [walFrameLen]byte
	n, err := io.ReadFull(d.r, frame[:])
	if err == io.EOF {
		return zero, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		d.torn = int64(n)
		return zero, io.ErrUnexpectedEOF
	}
	if err != nil {
		return zero, fmt.Errorf("persist: WAL read: %w", err)
	}
	length := binary.LittleEndian.Uint32(frame[:4])
	sum := binary.LittleEndian.Uint32(frame[4:])
	if length == 0 || length > maxWALPayload {
		return zero, fmt.Errorf("%w: implausible record length %d at offset %d",
			ErrCorruptWAL, length, d.off)
	}
	if cap(d.payload) < int(length) {
		d.payload = make([]byte, length)
	}
	payload := d.payload[:length]
	n, err = io.ReadFull(d.r, payload)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		d.torn = walFrameLen + int64(n)
		return zero, io.ErrUnexpectedEOF
	}
	if err != nil {
		return zero, fmt.Errorf("persist: WAL read: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		// The record is fully present, so this is bit corruption, not a
		// torn append (torn appends shorten the stream).
		return zero, fmt.Errorf("%w: record checksum mismatch at offset %d (have %08x, recorded %08x)",
			ErrCorruptWAL, d.off, got, sum)
	}
	rec, err := decodeWALPayload(payload)
	if err != nil {
		return zero, fmt.Errorf("%w at offset %d", err, d.off)
	}
	if d.records > 0 && rec.Seq <= d.lastSeq {
		return zero, fmt.Errorf("%w: sequence regressed from %d to %d at offset %d",
			ErrCorruptWAL, d.lastSeq, rec.Seq, d.off)
	}
	d.off += walFrameLen + int64(length)
	d.records++
	d.lastSeq = rec.Seq
	return rec, nil
}

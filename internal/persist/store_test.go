package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kcore"
	"kcore/internal/fault"
	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/workload"
)

// churnBatches generates count valid batches of size updates each against
// the engine's current state, using the workload churn generator.
func churnBatches(t *testing.T, e *kcore.Engine, count, size int, seed uint64) []kcore.Batch {
	t.Helper()
	cg := graph.New(e.NumVertices())
	for _, ed := range e.Edges() {
		if err := cg.AddEdge(ed[0], ed[1]); err != nil {
			t.Fatal(err)
		}
	}
	ops := workload.Churn(cg, count*size, workload.ChurnOptions{Seed: seed, Skew: 0.3})
	if len(ops) < count*size {
		t.Fatalf("churn produced %d ops, want %d", len(ops), count*size)
	}
	batches := make([]kcore.Batch, count)
	for i := range batches {
		b := make(kcore.Batch, 0, size)
		for _, op := range ops[i*size : (i+1)*size] {
			if op.Insert {
				b = append(b, kcore.Add(op.E.U, op.E.V))
			} else {
				b = append(b, kcore.Remove(op.E.U, op.E.V))
			}
		}
		batches[i] = b
	}
	return batches
}

func TestStoreOpenApplyReopen(t *testing.T) {
	dir := t.TempDir()
	engOpts := []kcore.Option{kcore.WithSeed(5)}
	init := func() (*kcore.Engine, error) {
		g := gen.BarabasiAlbert(100, 3, 13)
		return kcore.FromEdges(g.Edges(), engOpts...)
	}
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1, Engine: engOpts, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if e.NumEdges() == 0 {
		t.Fatal("Init engine not used")
	}
	// The seed state was snapshotted before Open returned.
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err != nil {
		t.Fatalf("no initial snapshot: %v", err)
	}

	for _, b := range churnBatches(t, e, 20, 8, 99) {
		if _, err := e.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Appends != 20 || stats.WALRecords != 20 {
		t.Fatalf("stats = %+v, want 20 appends and records", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1, Engine: engOpts})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	assertSameState(t, e, st2.Engine())
	if got := st2.Stats(); got.RecoveredRecords != 20 || got.TornBytes != 0 {
		t.Fatalf("recovery stats = %+v, want 20 clean records", got)
	}
	// The recovered engine keeps evolving identically to the original.
	extra := churnBatches(t, e, 3, 6, 123)
	for _, b := range extra {
		if _, err := e.Apply(b); err != nil {
			t.Fatal(err)
		}
		if _, err := st2.Engine().Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	assertSameState(t, e, st2.Engine())
}

// TestStoreInitIgnoredWithState proves Init only seeds a brand-new
// directory.
func TestStoreInitIgnoredWithState(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Engine().AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff, Init: func() (*kcore.Engine, error) {
		t.Fatal("Init called for a directory with prior state")
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Engine().Seq() != 1 || !st2.Engine().HasEdge(0, 1) {
		t.Fatalf("prior state not recovered: seq %d", st2.Engine().Seq())
	}
}

// TestStoreCompaction drives the automatic compactor: a tiny CompactBytes
// forces snapshot rolls, after which reopen still recovers the exact state.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	engOpts := []kcore.Option{kcore.WithSeed(3)}
	init := func() (*kcore.Engine, error) {
		return kcore.FromEdges(gen.BarabasiAlbert(80, 3, 17).Edges(), engOpts...)
	}
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: 512, Engine: engOpts, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	for _, b := range churnBatches(t, e, 40, 8, 7) {
		if _, err := e.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	// The compactor is asynchronous; wait for at least one roll beyond the
	// initial snapshot before closing.
	deadline := time.Now().Add(10 * time.Second)
	for st.Stats().Compactions < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Compactions < 2 { // initial snapshot + at least one roll
		t.Fatalf("compactions = %d, want >= 2 (stats %+v)", stats.Compactions, stats)
	}
	if stats.SnapshotSeq == 0 {
		t.Fatal("snapshot seq never advanced")
	}

	st2, err := Open(dir, Options{Sync: SyncOff, Engine: engOpts})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer st2.Close()
	// Equivalence, not bit-equality: compaction mid-churn rebuilds adjacency
	// in canonical order, so the recovered k-order may break ties differently
	// from the live engine's. See assertEquivalentState for the rationale.
	assertEquivalentState(t, e, st2.Engine())
}

// TestStoreManualSnapshot covers Store.Snapshot (the admin-endpoint path):
// it must shrink the WAL and leave a recoverable state.
func TestStoreManualSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	for i := 0; i < 50; i++ {
		if _, err := e.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	before := st.Stats()
	info, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 50 {
		t.Fatalf("snapshot seq = %d, want 50", info.Seq)
	}
	after := st.Stats()
	if after.WALRecords != 0 || after.WALBytes >= before.WALBytes {
		t.Fatalf("WAL not compacted: before %+v after %+v", before, after)
	}
	if _, err := e.AddEdge(100, 101); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	assertSameState(t, e, st2.Engine())
}

// TestRecoveryIsSilent pins the Replay contract end to end: a subscriber
// attached while recovery replays the WAL sees none of the recovered
// changes, only changes applied after recovery.
func TestRecoveryIsSilent(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	// A triangle changes cores of 0,1,2 — events a poller must NOT see
	// again after recovery.
	for _, ed := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if _, err := e.AddEdge(ed[0], ed[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery with a pre-attached subscriber: Open cannot attach one before
	// it returns, so drive replayWAL directly against the same WAL file,
	// exactly as Open does (the initial snapshot is at seq 0, so all three
	// records replay).
	e2 := kcore.NewEngine()
	events, cancel := e2.Subscribe()
	defer cancel()
	f, err := os.Open(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, replayed, err := replayWAL(e2, f); err != nil || replayed != 3 {
		t.Fatalf("replayWAL: %d records, %v", replayed, err)
	}
	select {
	case ev := <-events:
		t.Fatalf("recovery delivered %+v; replay must be silent", ev)
	default:
	}
	// Post-recovery changes are delivered normally, with continuous seq.
	if _, err := e2.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Seq != 4 {
			t.Fatalf("post-recovery event seq = %d, want 4", ev.Seq)
		}
	default:
		t.Fatal("post-recovery change not delivered")
	}
}

// TestOpenSkipsCoveredRecords reconstructs the crash window between a
// compaction's snapshot rename and its WAL shrink: the snapshot already
// covers a WAL prefix, and replay must skip exactly that prefix.
func TestOpenSkipsCoveredRecords(t *testing.T) {
	dirA := t.TempDir()
	engOpts := []kcore.Option{kcore.WithSeed(21)}
	st, err := Open(dirA, Options{Sync: SyncOff, CompactBytes: -1, Engine: engOpts})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	var mid *kcore.IndexState
	for i := 0; i < 30; i++ {
		if _, err := e.AddEdge(i%7, 7+i); err != nil {
			t.Fatal(err)
		}
		if i == 19 {
			s, err := e.View(kcore.WithIndex()).Index()
			if err != nil {
				t.Fatal(err)
			}
			mid = s
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// dirB = mid-stream snapshot + the FULL WAL (first 20 records covered).
	dirB := t.TempDir()
	data, err := EncodeSnapshot(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, SnapshotFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dirA, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, WALFile), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dirB, Options{Sync: SyncOff, Engine: engOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().RecoveredRecords; got != 10 {
		t.Fatalf("replayed %d records, want 10 (20 covered by snapshot)", got)
	}
	assertSameState(t, e, st2.Engine())
}

// TestStoreHookFailureSurfaces proves a WAL append failure reaches the
// Apply caller as a *kcore.HookError while the in-memory state advanced.
func TestStoreHookFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// Sabotage the WAL file handle to force the next append to fail.
	st.mu.Lock()
	st.wal.f.Close()
	st.mu.Unlock()
	_, err = e.AddEdge(1, 2)
	var he *kcore.HookError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *kcore.HookError", err)
	}
	if !e.HasEdge(1, 2) || e.Seq() != 2 {
		t.Fatal("in-memory state must still advance on a hook failure")
	}
	// The rollback itself also failed (the fd is closed), so the log is
	// sealed: further appends are refused instead of landing after a
	// potential partial frame.
	if _, err := e.AddEdge(2, 3); !errors.As(err, &he) {
		t.Fatalf("append after a failed rollback = %v, want *kcore.HookError (sealed log)", err)
	}
}

// TestStoreAppendFailureThenReopen pins the transient-write-error scenario:
// after one failed WAL append the engine keeps advancing (HookError
// contract) while the log does not, so later batches must be REFUSED —
// never written as records with a sequence gap, which would fail replay's
// chaining check and make the directory unrecoverable. A reopen must
// succeed and land on the last durable state.
func TestStoreAppendFailureThenReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// Sabotage the handle: the next append's write (and its rollback) fail.
	st.mu.Lock()
	st.wal.f.Close()
	st.mu.Unlock()
	var he *kcore.HookError
	if _, err := e.AddEdge(1, 2); !errors.As(err, &he) {
		t.Fatalf("first failed append = %v, want *kcore.HookError", err)
	}
	// The batch AFTER the failure is where the old bug lived: it must not
	// produce a gap record.
	if _, err := e.AddEdge(2, 3); !errors.As(err, &he) {
		t.Fatalf("append after failure = %v, want *kcore.HookError", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close with a sealed WAL: %v", err)
	}
	// The on-disk log holds exactly the one durable record — no gap.
	var seqs []uint64
	if _, _, err := ScanWALFile(filepath.Join(dir, WALFile), func(rec WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("WAL records = %v, want [1]", seqs)
	}
	// Recovery succeeds on the last durable state, and logging resumes.
	st2, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatalf("reopen after failed append: %v", err)
	}
	defer st2.Close()
	e2 := st2.Engine()
	if e2.Seq() != 1 || !e2.HasEdge(0, 1) || e2.HasEdge(1, 2) {
		t.Fatalf("recovered seq %d, want the pre-failure durable state (seq 1)", e2.Seq())
	}
	if _, err := e2.AddEdge(1, 2); err != nil {
		t.Fatalf("append on the recovered store: %v", err)
	}
}

// TestStoreSnapshotHealsFailedWAL: a snapshot is the repair path after a
// failed append — it captures the advanced in-memory state (so the
// un-logged batch is not lost), rebuilds the log file, and appends resume
// without a restart.
func TestStoreSnapshotHealsFailedWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.wal.f.Close()
	st.mu.Unlock()
	var he *kcore.HookError
	if _, err := e.AddEdge(1, 2); !errors.As(err, &he) {
		t.Fatalf("failed append = %v, want *kcore.HookError", err)
	}
	info, err := st.Snapshot()
	if err != nil {
		t.Fatalf("healing snapshot: %v", err)
	}
	if info.Seq != 2 {
		t.Fatalf("healing snapshot seq = %d, want 2 (the advanced state)", info.Seq)
	}
	if _, err := e.AddEdge(2, 3); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	defer st2.Close()
	if st2.Engine().Seq() != 3 {
		t.Fatalf("recovered seq = %d, want 3 (nothing lost)", st2.Engine().Seq())
	}
	assertSameState(t, e, st2.Engine())
}

// TestStoreAutoHealAfterAppendFailure: with background compaction enabled,
// a failed append schedules the healing snapshot itself — applies start
// succeeding again without manual intervention, and nothing is lost.
func TestStoreAutoHealAfterAppendFailure(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.wal.f.Close()
	st.mu.Unlock()
	var he *kcore.HookError
	if _, err := e.AddEdge(1, 2); !errors.As(err, &he) {
		t.Fatalf("failed append = %v, want *kcore.HookError", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	healed := false
	for i := 0; time.Now().Before(deadline); i++ {
		if _, err := e.AddEdge(2+i, 3+i); err == nil {
			healed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !healed {
		t.Fatalf("store did not heal itself after a failed append (stats %+v)", st.Stats())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("reopen after auto-heal: %v", err)
	}
	defer st2.Close()
	assertSameState(t, e, st2.Engine())
}

// TestStoreTransientAppendFailureNoLoss: one failed write under continued
// traffic loses nothing — the deferred record rides ahead of the next
// successful append, no heal or restart needed.
func TestStoreTransientAppendFailureNoLoss(t *testing.T) {
	dir := t.TempDir()
	pl := fault.New(1)
	// AppendRetries: -1 disables the in-line retry so the fault surfaces
	// to the caller (the retry path has its own test below).
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1, Fault: pl, AppendRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	pl.Fail(fault.WALWrite, 1, errors.New("transient: no space left on device"))
	var he *kcore.HookError
	if _, err := e.AddEdge(1, 2); !errors.As(err, &he) {
		t.Fatalf("failed append = %v, want *kcore.HookError", err)
	}
	// The very next batch succeeds and carries the deferred record with it.
	if _, err := e.AddEdge(2, 3); err != nil {
		t.Fatalf("append after transient failure: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Engine().Seq() != 3 {
		t.Fatalf("recovered seq = %d, want 3 (the transiently failed batch included)", st2.Engine().Seq())
	}
	assertSameState(t, e, st2.Engine())
}

// TestStoreAppendRetryAbsorbsBlip: with the default in-line retry enabled,
// a one-shot write fault never surfaces to the Apply caller at all — the
// hook re-flushes the deferred frame after a short backoff, the caller sees
// nil, and Stats counts the save.
func TestStoreAppendRetryAbsorbsBlip(t *testing.T) {
	dir := t.TempDir()
	pl := fault.New(1)
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1, Fault: pl})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	pl.Fail(fault.WALWrite, 1, errors.New("transient: EIO blip"))
	if _, err := e.AddEdge(1, 2); err != nil {
		t.Fatalf("append with one-shot fault = %v, want nil (absorbed by in-line retry)", err)
	}
	if got := st.Stats().AppendRetrySaves; got != 1 {
		t.Fatalf("AppendRetrySaves = %d, want 1", got)
	}
	if !st.WALAppendable() {
		t.Fatal("store should be fully appendable after the retry save")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Engine().Seq() != 2 {
		t.Fatalf("recovered seq = %d, want 2 (the retried batch is durable)", st2.Engine().Seq())
	}
	assertSameState(t, e, st2.Engine())
}

// TestStoreAppendRetryGivesUpOnPersistentFault: a fault that outlasts the
// retry budget surfaces as *kcore.HookError, and the deferred record still
// rides ahead of the next successful append — the bounded retry changes
// latency, never durability semantics.
func TestStoreAppendRetryGivesUpOnPersistentFault(t *testing.T) {
	dir := t.TempDir()
	pl := fault.New(1)
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1, Fault: pl})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// Default budget is 1 initial try + 2 retries; arm 3 failures.
	pl.Fail(fault.WALWrite, 3, errors.New("persistent: no space left on device"))
	var he *kcore.HookError
	if _, err := e.AddEdge(1, 2); !errors.As(err, &he) {
		t.Fatalf("append past retry budget = %v, want *kcore.HookError", err)
	}
	if st.WALAppendable() {
		t.Fatal("store should report a WAL backlog after exhausted retries")
	}
	// Fault spent: the next batch flushes the backlog and heals.
	if _, err := e.AddEdge(2, 3); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	if !st.WALAppendable() {
		t.Fatal("store should be appendable again once the backlog flushed")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Engine().Seq() != 3 {
		t.Fatalf("recovered seq = %d, want 3 (no loss)", st2.Engine().Seq())
	}
	assertSameState(t, e, st2.Engine())
}

// TestStoreSnapshotPartialCompactionFailure: when the snapshot file lands,
// the WAL shrink fails, but the log remains append-ready, Snapshot reports
// partial success — a valid SnapshotInfo plus an ErrCompaction-wrapped
// error — appends keep working, and the directory still recovers (replay
// skips the records the snapshot covers).
func TestStoreSnapshotPartialCompactionFailure(t *testing.T) {
	dir := t.TempDir()
	pl := fault.New(1)
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1, Fault: pl})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	pl.Fail(fault.WALCompact, 1, errors.New("transient compaction failure"))
	info, err := st.Snapshot()
	if !errors.Is(err, ErrCompaction) {
		t.Fatalf("err = %v, want ErrCompaction", err)
	}
	if info.Seq != 1 || info.Bytes == 0 {
		t.Fatalf("info = %+v, want the durably written snapshot", info)
	}
	// Partial success means exactly that: the log still accepts appends.
	if _, err := e.AddEdge(1, 2); err != nil {
		t.Fatalf("append after partial compaction failure: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatalf("reopen after partial compaction failure: %v", err)
	}
	defer st2.Close()
	assertSameState(t, e, st2.Engine())
}

// TestStoreSnapshotDeadHandleNotPartialSuccess: a compaction that fails
// because the WAL handle is dead must NOT be reported as ErrCompaction —
// the log cannot accept appends, so "partial success, don't re-trigger"
// would strand the operator. Re-triggering the snapshot rebuilds the file
// and heals.
func TestStoreSnapshotDeadHandleNotPartialSuccess(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	if _, err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.wal.f.Close()
	st.mu.Unlock()
	info, err := st.Snapshot()
	if err == nil || errors.Is(err, ErrCompaction) {
		t.Fatalf("err = %v, want a real (non-ErrCompaction) failure: the log is not append-ready", err)
	}
	if info.Seq != 1 {
		t.Fatalf("info.Seq = %d, want 1 (the snapshot itself landed)", info.Seq)
	}
	// Re-triggering rebuilds the sealed log through a rename and heals.
	if _, err := st.Snapshot(); err != nil {
		t.Fatalf("second snapshot should heal the sealed log: %v", err)
	}
	if _, err := e.AddEdge(1, 2); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1})
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	defer st2.Close()
	assertSameState(t, e, st2.Engine())
}

// TestIntervalSyncCoversIdleTail: under the interval policy a lone batch
// followed by silence must still be fsynced within about one period by the
// background timer, not wait for the next append.
func TestIntervalSyncCoversIdleTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Engine().AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st.Stats().Syncs > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no fsync within 5s of an idle append (stats %+v)", st.Stats())
}

package persist

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"kcore"
	"kcore/internal/gen"
)

// TestCrashRecoveryDifferential is the durability acceptance test: an
// engine applies a stream of churn batches with the WAL enabled, the
// process is "killed" at 100 randomized points — both at record boundaries
// (a crash between appends) and mid-record (a torn write, simulated by a
// truncated copy of the WAL) — and every recovery must reconstruct the
// exact state the uninterrupted engine had at that point: identical core
// numbers, identical maintained k-order, identical Seq().
func TestCrashRecoveryDifferential(t *testing.T) {
	const (
		batches   = 50
		batchSize = 10
		trials    = 100
	)
	dir := t.TempDir()
	engOpts := []kcore.Option{kcore.WithSeed(9)}
	init := func() (*kcore.Engine, error) {
		return kcore.FromEdges(gen.BarabasiAlbert(120, 3, 41).Edges(), engOpts...)
	}
	st, err := Open(dir, Options{Sync: SyncOff, CompactBytes: -1, Engine: engOpts, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()

	// The uninterrupted run, with the observable state and the WAL record
	// boundary recorded after every batch. boundaries[i] is the WAL size
	// with exactly i records; states[i] is the engine state at that point.
	states := make([]*kcore.IndexState, 0, batches+1)
	boundaries := make([]int64, 0, batches+1)
	record := func() {
		s, err := e.View(kcore.WithIndex()).Index()
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, s)
		boundaries = append(boundaries, st.Stats().WALBytes)
	}
	record()
	stream := churnBatches(t, e, batches-5, batchSize, 1234)
	for _, b := range stream {
		if _, err := e.Apply(b); err != nil {
			t.Fatal(err)
		}
		record()
	}
	// A few batches with intra-batch coalescing, so WAL records carry
	// surviving updates rather than raw batches.
	for i := 0; i < 5; i++ {
		u := 200 + 2*i
		b := kcore.Batch{kcore.Add(u, u+1), kcore.Add(0, u), kcore.Remove(u, u+1)}
		if _, err := e.Apply(b); err != nil {
			t.Fatal(err)
		}
		record()
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snapData, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	walData, err := os.ReadFile(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := boundaries[len(boundaries)-1], int64(len(walData)); got != want {
		t.Fatalf("recorded final boundary %d != WAL size %d", got, want)
	}

	rng := rand.New(rand.NewPCG(77, 78))
	for trial := 0; trial < trials; trial++ {
		// Half the trials kill exactly at a record boundary, half tear the
		// last record by cutting strictly inside it.
		j := 1 + rng.IntN(batches) // batch whose record the kill lands in/after
		cut := boundaries[j]
		torn := trial%2 == 1
		if torn {
			lo, hi := boundaries[j-1], boundaries[j]
			cut = lo + 1 + rng.Int64N(hi-lo-1) // strictly mid-record
			j--                                // the torn record is lost
		}

		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, SnapshotFile), snapData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, WALFile), walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		rst, err := Open(crashDir, Options{Sync: SyncOff, CompactBytes: -1, Engine: engOpts})
		if err != nil {
			t.Fatalf("trial %d (cut %d, torn %v): recovery failed: %v", trial, cut, torn, err)
		}
		want := states[j]
		got, err := rst.Engine().View(kcore.WithIndex()).Index()
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != want.Seq {
			t.Fatalf("trial %d (cut %d, torn %v): recovered seq %d, want %d",
				trial, cut, torn, got.Seq, want.Seq)
		}
		if !slices.Equal(got.Cores, want.Cores) {
			t.Fatalf("trial %d (cut %d, torn %v): recovered core numbers differ at seq %d",
				trial, cut, torn, want.Seq)
		}
		if !slices.Equal(got.Order, want.Order) {
			t.Fatalf("trial %d (cut %d, torn %v): recovered k-order differs at seq %d",
				trial, cut, torn, want.Seq)
		}
		stats := rst.Stats()
		if torn && stats.TornBytes == 0 {
			t.Fatalf("trial %d: mid-record cut %d reported no torn tail", trial, cut)
		}
		if !torn && stats.TornBytes != 0 {
			t.Fatalf("trial %d: boundary cut %d reported torn tail of %d bytes",
				trial, cut, stats.TornBytes)
		}
		// Every 10th trial: the recovered store keeps working — the full
		// invariant check passes and new batches append and recover.
		if trial%10 == 0 {
			if err := rst.Engine().Validate(); err != nil {
				t.Fatalf("trial %d: recovered engine invalid: %v", trial, err)
			}
			if _, err := rst.Engine().AddEdge(500, 501); err != nil {
				t.Fatalf("trial %d: post-recovery apply: %v", trial, err)
			}
			if got := rst.Stats().WALRecords; got == 0 {
				t.Fatalf("trial %d: post-recovery append not logged", trial)
			}
		}
		if err := rst.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

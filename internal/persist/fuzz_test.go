package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"kcore"
)

// fuzzSeedSnapshot builds a small valid snapshot for the seed corpus.
func fuzzSeedSnapshot(tb testing.TB) []byte {
	tb.Helper()
	e, err := kcore.FromEdges([][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}, kcore.WithSeed(3))
	if err != nil {
		tb.Fatal(err)
	}
	st, err := e.View(kcore.WithIndex()).Index()
	if err != nil {
		tb.Fatal(err)
	}
	data, err := EncodeSnapshot(st)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// fuzzSeedWAL builds a small valid WAL byte stream for the seed corpus.
func fuzzSeedWAL(tb testing.TB) []byte {
	tb.Helper()
	buf := append([]byte(nil), walMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, WALVersion)
	var err error
	buf, err = appendWALRecord(buf, 3,
		[]kcore.Update{kcore.Add(0, 1), kcore.Add(1, 2), kcore.Add(0, 2)})
	if err != nil {
		tb.Fatal(err)
	}
	buf, err = appendWALRecord(buf, 5,
		[]kcore.Update{kcore.Remove(0, 1), kcore.Add(2, 3)})
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

// FuzzSnapshotLoad: arbitrary snapshot bytes must either load a fully
// verified engine or fail with ErrCorruptSnapshot — never panic, never
// produce silently-wrong state.
func FuzzSnapshotLoad(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])              // truncated
	f.Add(append([]byte(nil), valid[4:]...)) // missing magic prefix
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped) // payload bit flip
	f.Add([]byte{})
	f.Add([]byte("KCORSNAP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("non-structured snapshot error: %v", err)
			}
			return
		}
		// Accepted: the engine must be fully consistent — the load
		// verification promises exactly this.
		if err := e.Validate(); err != nil {
			t.Fatalf("snapshot loaded silently-wrong state: %v", err)
		}
	})
}

// FuzzWALReplay: arbitrary WAL bytes replayed into a fresh engine must
// either recover cleanly (with at most a torn tail) or fail with
// ErrCorruptWAL — never panic, never leave inconsistent state.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzSeedWAL(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[:walHeaderLen])
	flipped := append([]byte(nil), valid...)
	flipped[walHeaderLen+walFrameLen+1] ^= 0x04
	f.Add(flipped) // corrupt first record payload
	f.Add([]byte{})
	f.Add([]byte("KCOREWAL"))
	f.Fuzz(func(t *testing.T, data []byte) {
		e := kcore.NewEngine()
		res, replayed, err := replayWAL(e, bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("non-structured WAL error: %v", err)
			}
			return
		}
		if res.goodOffset+res.tornBytes > int64(len(data)) {
			t.Fatalf("scan accounted %d+%d bytes of %d",
				res.goodOffset, res.tornBytes, len(data))
		}
		if replayed > 0 {
			if err := e.Validate(); err != nil {
				t.Fatalf("WAL replay left inconsistent state: %v", err)
			}
		}
	})
}

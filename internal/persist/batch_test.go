package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"kcore"
)

func TestBatchFrameRoundTrip(t *testing.T) {
	cases := [][]kcore.Update{
		nil,
		{kcore.Add(0, 1)},
		{kcore.Add(0, 1), kcore.Remove(1, 2), kcore.Add(0, 300), kcore.Add(1<<20, 7)},
	}
	for _, updates := range cases {
		frame, err := AppendBatchFrame(nil, updates)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBatchFrame(frame, nil)
		if err != nil {
			t.Fatalf("decode %d updates: %v", len(updates), err)
		}
		if len(got) != len(updates) || (len(updates) > 0 && !reflect.DeepEqual(got, updates)) {
			t.Fatalf("round trip mismatch: %v vs %v", got, updates)
		}
	}
}

func TestBatchFrameScratchReuse(t *testing.T) {
	frame, err := AppendBatchFrame(nil, []kcore.Update{kcore.Add(1, 2), kcore.Remove(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]kcore.Update, 0, 8)
	got, err := DecodeBatchFrame(frame, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("decode did not reuse the scratch backing array")
	}
	// A second decode over the same scratch must not see stale entries.
	frame2, err := AppendBatchFrame(nil, []kcore.Update{kcore.Add(9, 10)})
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeBatchFrame(frame2, got)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != kcore.Add(9, 10) {
		t.Fatalf("scratch reuse decode = %v", got)
	}
}

func TestBatchFrameRejectsCorruption(t *testing.T) {
	frame, err := AppendBatchFrame(nil, []kcore.Update{kcore.Add(0, 1), kcore.Add(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), frame...))
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       frame[:batchHeaderLen+batchTrailerLen-1],
		"bad magic":   mut(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"bad version": mut(func(b []byte) []byte { b[8] = 99; return b }),
		"payload flip": mut(func(b []byte) []byte {
			b[batchHeaderLen+1] ^= 0x01
			return b
		}),
		"crc flip":  mut(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }),
		"truncated": frame[:len(frame)-6],
		"trailing": mut(func(b []byte) []byte {
			// Keep the CRC valid over an extended payload so the trailing-byte
			// check itself is what fires.
			payload := append([]byte(nil), b[batchHeaderLen:len(b)-batchTrailerLen]...)
			payload = append(payload, 0x00)
			out := append(b[:batchHeaderLen], payload...)
			return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
		}),
	}
	for name, data := range cases {
		if _, err := DecodeBatchFrame(data, nil); !errors.Is(err, ErrCorruptBatch) {
			t.Errorf("%s: err = %v, want ErrCorruptBatch", name, err)
		}
	}
}

func TestBatchFrameRejectsBadUpdates(t *testing.T) {
	if _, err := AppendBatchFrame(nil, []kcore.Update{{Op: 42, U: 0, V: 1}}); err == nil {
		t.Fatal("unknown op encoded")
	}
	if _, err := AppendBatchFrame(nil, []kcore.Update{{Op: kcore.OpAdd, U: -1, V: 1}}); err == nil {
		t.Fatal("negative vertex encoded")
	}
}

// FuzzBatchFrameDecode: arbitrary bytes must either decode to a batch that
// survives an encode/decode round trip or fail with ErrCorruptBatch — never
// panic. (Byte-level canonicality is NOT asserted: Uvarint tolerates
// redundant encodings, so a CRC-valid non-minimal frame may legitimately
// re-encode shorter.)
func FuzzBatchFrameDecode(f *testing.F) {
	valid, err := AppendBatchFrame(nil, []kcore.Update{kcore.Add(0, 1), kcore.Remove(1, 300)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[batchHeaderLen] ^= 0x08
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("KCORBTCH"))
	f.Fuzz(func(t *testing.T, data []byte) {
		updates, err := DecodeBatchFrame(data, nil)
		if err != nil {
			if !errors.Is(err, ErrCorruptBatch) {
				t.Fatalf("non-structured batch error: %v", err)
			}
			return
		}
		again, err := AppendBatchFrame(nil, updates)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		back, err := DecodeBatchFrame(again, nil)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, updates) && (len(back) != 0 || len(updates) != 0) {
			t.Fatalf("round trip mismatch: %v vs %v", back, updates)
		}
	})
}

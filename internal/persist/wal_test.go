package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kcore"
	"kcore/internal/fault"
)

// buildWAL assembles WAL file bytes from records (test helper; the golden
// test also pins the exact output).
func buildWAL(t *testing.T, recs []WALRecord) []byte {
	t.Helper()
	buf := make([]byte, 0, 256)
	buf = append(buf, walMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, WALVersion)
	for _, r := range recs {
		var err error
		buf, err = appendWALRecord(buf, r.Seq, r.Updates)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func testRecords() []WALRecord {
	return []WALRecord{
		{Seq: 2, Updates: []kcore.Update{kcore.Add(0, 1), kcore.Add(1, 2)}},
		{Seq: 3, Updates: []kcore.Update{kcore.Add(0, 2)}},
		{Seq: 5, Updates: []kcore.Update{kcore.Remove(0, 1), kcore.Add(0, 3)}},
	}
}

func TestWALScanRoundTrip(t *testing.T) {
	data := buildWAL(t, testRecords())
	var got []WALRecord
	res, err := scanWAL(bytes.NewReader(data), func(rec WALRecord) error {
		cp := rec
		cp.Updates = append([]kcore.Update(nil), rec.Updates...)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.tornBytes != 0 || res.goodOffset != int64(len(data)) || res.records != 3 || res.lastSeq != 5 {
		t.Fatalf("scan = %+v, want clean full scan", res)
	}
	want := testRecords()
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("record %d seq = %d, want %d", i, got[i].Seq, want[i].Seq)
		}
		for j := range want[i].Updates {
			if got[i].Updates[j] != want[i].Updates[j] {
				t.Fatalf("record %d update %d = %+v, want %+v", i, j, got[i].Updates[j], want[i].Updates[j])
			}
		}
	}
}

// TestWALTornTails proves every truncation point of a valid WAL is either a
// clean record boundary or a reported torn tail — never an error — and that
// the good offset always lands on the last complete record boundary.
func TestWALTornTails(t *testing.T) {
	data := buildWAL(t, testRecords())
	// Record boundaries, computed from the frame lengths.
	boundaries := []int64{walHeaderLen}
	off := int64(walHeaderLen)
	for i := 0; i < 3; i++ {
		length := binary.LittleEndian.Uint32(data[off : off+4])
		off += walFrameLen + int64(length)
		boundaries = append(boundaries, off)
	}
	for cut := 0; cut <= len(data); cut++ {
		res, err := scanWAL(bytes.NewReader(data[:cut]), func(rec WALRecord) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		wantGood := int64(0)
		for _, b := range boundaries {
			if int64(cut) >= b {
				wantGood = b
			}
		}
		if cut < walHeaderLen {
			wantGood = 0
		}
		if res.goodOffset != wantGood {
			t.Fatalf("cut %d: goodOffset = %d, want %d", cut, res.goodOffset, wantGood)
		}
		if res.goodOffset+res.tornBytes != int64(cut) {
			t.Fatalf("cut %d: good %d + torn %d != cut", cut, res.goodOffset, res.tornBytes)
		}
	}
}

func TestWALRejectsCorruption(t *testing.T) {
	data := buildWAL(t, testRecords())
	check := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		b := append([]byte(nil), data...)
		b = mutate(b)
		_, err := scanWAL(bytes.NewReader(b), func(rec WALRecord) error { return nil })
		if !errors.Is(err, ErrCorruptWAL) {
			t.Fatalf("%s: err = %v, want ErrCorruptWAL", name, err)
		}
	}
	check("bad magic", func(b []byte) []byte { b[3] ^= 0xff; return b })
	check("bad version", func(b []byte) []byte { b[8] = 9; return b })
	check("payload bit flip", func(b []byte) []byte { b[walHeaderLen+walFrameLen] ^= 0x40; return b })
	check("crc bit flip", func(b []byte) []byte { b[walHeaderLen+5] ^= 0x01; return b })
	check("zero-length record", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[walHeaderLen:], 0)
		return b
	})
	check("seq regression", func(b []byte) []byte {
		// Duplicate the first record after the last: 2 after 5 regresses.
		first := b[walHeaderLen : walHeaderLen+walFrameLen+int(binary.LittleEndian.Uint32(b[walHeaderLen:]))]
		return append(b, first...)
	})
}

// TestWALRefusesGapAppend pins the append-side chaining invariant: a record
// that does not continue the durable sequence — the shape of every batch
// after a failed append, since the engine keeps advancing — is refused and
// NOT written. A gap record would fail replayWAL's chaining check on the
// next Open and make the whole log unrecoverable.
func TestWALRefusesGapAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kcl")
	w, err := openWAL(path, SyncOff, time.Second, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(2, []kcore.Update{kcore.Add(0, 1), kcore.Add(1, 2)}); err != nil {
		t.Fatal(err)
	}
	size := w.size
	// Covers seq 5 only: start 4 does not chain onto 2.
	if err := w.append(5, []kcore.Update{kcore.Add(2, 3)}); !errors.Is(err, errWALGap) {
		t.Fatalf("gap append = %v, want errWALGap", err)
	}
	if w.records != 1 || w.size != size {
		t.Fatal("refused record must not be written")
	}
	// The chaining record is accepted.
	if err := w.append(4, []kcore.Update{kcore.Add(2, 3), kcore.Add(3, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// Crash window between a compaction's snapshot rename and WAL shrink:
	// every leftover record is covered by the snapshot (base > lastSeq), so
	// the next append chains onto the snapshot seq, not the stale records.
	w2, err := openWAL(path, SyncOff, time.Second, 2, 4, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.append(10, []kcore.Update{kcore.Add(5, 6)}); err != nil {
		t.Fatalf("append onto snapshot base: %v", err)
	}
	if err := w2.close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if _, _, err := ScanWALFile(path, func(rec WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[2] != 10 {
		t.Fatalf("records = %v, want [2 4 10]", seqs)
	}
}

// TestWALDeferredFlushAfterTransientFailure: a failed write whose rollback
// succeeds defers the encoded frame instead of dropping it; the next append
// flushes the backlog first, so a transient fault loses nothing and the
// on-disk chain stays contiguous.
func TestWALDeferredFlushAfterTransientFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kcl")
	pl := fault.New(1)
	w, err := openWAL(path, SyncOff, time.Second, 0, 0, 0, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(1, []kcore.Update{kcore.Add(0, 1)}); err != nil {
		t.Fatal(err)
	}
	pl.Fail(fault.WALWrite, 1, errors.New("transient: no space left on device"))
	if err := w.append(2, []kcore.Update{kcore.Add(1, 2)}); err == nil {
		t.Fatal("append with a failing write must report the error")
	}
	if w.failed || w.pendingRecords != 1 || w.lastSeq != 2 {
		t.Fatalf("deferred state: failed=%v pending=%d lastSeq=%d, want clean 1-record backlog at seq 2",
			w.failed, w.pendingRecords, w.lastSeq)
	}
	// The next append flushes the deferred record ahead of itself.
	if err := w.append(3, []kcore.Update{kcore.Add(2, 3)}); err != nil {
		t.Fatalf("append after transient failure: %v", err)
	}
	if w.pendingRecords != 0 || w.records != 3 {
		t.Fatalf("backlog not flushed: pending=%d records=%d", w.pendingRecords, w.records)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if _, _, err := ScanWALFile(path, func(rec WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("records = %v, want the contiguous chain [1 2 3]", seqs)
	}
}

// TestWALRewriteRetainsDeferredFrames: a compaction whose snapshot was
// captured BEFORE a deferred append (Store.Snapshot races applies) must not
// drop the backlog — otherwise the log would silently end up behind the
// engine with the snapshot reporting success. The backlog survives the
// rewrite and flushes into the rebuilt file.
func TestWALRewriteRetainsDeferredFrames(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kcl")
	pl := fault.New(1)
	w, err := openWAL(path, SyncOff, time.Second, 0, 0, 0, pl)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if err := w.append(seq, []kcore.Update{kcore.Add(int(seq-1), int(seq))}); err != nil {
			t.Fatal(err)
		}
	}
	pl.Fail(fault.WALWrite, 1, errors.New("transient"))
	if err := w.append(3, []kcore.Update{kcore.Add(2, 3)}); err == nil {
		t.Fatal("append with a failing write must report the error")
	}
	// Snapshot captured at seq 2, before the deferred seq-3 record.
	if err := w.compactTo(2); err != nil {
		t.Fatal(err)
	}
	if w.pendingRecords != 1 || w.lastSeq != 3 || w.base != 2 {
		t.Fatalf("after rewrite: pending=%d lastSeq=%d base=%d, want the deferred chain retained",
			w.pendingRecords, w.lastSeq, w.base)
	}
	if err := w.append(4, []kcore.Update{kcore.Add(3, 4)}); err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if _, _, err := ScanWALFile(path, func(rec WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("records = %v, want [3 4] (deferred record flushed, chain intact)", seqs)
	}
}

// TestWALSealedRebuildByCompact: a sealed log (unusable handle after a
// failed rollback or reopen) refuses appends, and compactTo rebuilds it
// through a rename — clearing the seal so appends resume against the fresh
// file, which replays cleanly.
func TestWALSealedRebuildByCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kcl")
	w, err := openWAL(path, SyncOff, time.Second, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if err := w.append(seq, []kcore.Update{kcore.Add(int(seq-1), int(seq))}); err != nil {
			t.Fatal(err)
		}
	}
	w.failed = true // as after a failed rollback
	if err := w.append(3, []kcore.Update{kcore.Add(2, 3)}); err == nil {
		t.Fatal("sealed log accepted an append")
	}
	if err := w.compactTo(5); err != nil {
		t.Fatalf("rebuild compaction: %v", err)
	}
	if w.failed || w.records != 0 || w.base != 5 {
		t.Fatalf("rebuild left failed=%v records=%d base=%d", w.failed, w.records, w.base)
	}
	if err := w.append(6, []kcore.Update{kcore.Add(3, 4)}); err != nil {
		t.Fatalf("append after rebuild: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if _, _, err := ScanWALFile(path, func(rec WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 6 {
		t.Fatalf("rebuilt log records = %v, want [6]", seqs)
	}
}

func TestWALAppendAndCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kcl")
	w, err := openWAL(path, SyncAlways, time.Second, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		if err := w.append(r.Seq, r.Updates); err != nil {
			t.Fatal(err)
		}
	}
	if w.records != 3 || w.lastSeq != 5 || w.syncs != 3 {
		t.Fatalf("wal state = %d records, lastSeq %d, syncs %d", w.records, w.lastSeq, w.syncs)
	}

	// Partial compaction keeps the tail records.
	if err := w.compactTo(3); err != nil {
		t.Fatal(err)
	}
	if w.records != 1 || w.lastSeq != 5 {
		t.Fatalf("after compactTo(3): %d records, lastSeq %d; want 1, 5", w.records, w.lastSeq)
	}
	// Appends still work on the rewritten file.
	if err := w.append(6, []kcore.Update{kcore.Add(9, 10)}); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if _, _, err := ScanWALFile(path, func(rec WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 5 || seqs[1] != 6 {
		t.Fatalf("post-compaction records = %v, want [5 6]", seqs)
	}

	// Full compaction truncates in place; the next append chains onto the
	// compacted-to seq.
	if err := w.compactTo(6); err != nil {
		t.Fatal(err)
	}
	if w.records != 0 || w.size != walHeaderLen {
		t.Fatalf("after full compaction: %d records, %d bytes", w.records, w.size)
	}
	if err := w.append(7, []kcore.Update{kcore.Add(1, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != w.size {
		t.Fatalf("file size %d, wal thinks %d", st.Size(), w.size)
	}
}

package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"kcore"
	"kcore/internal/fault"
)

// WALVersion is the current write-ahead-log format version. Bump it — and
// regenerate the golden fixtures (see golden_test.go) — whenever the byte
// format changes.
const WALVersion = 1

var walMagic = [8]byte{'K', 'C', 'O', 'R', 'E', 'W', 'A', 'L'}

// walHeaderLen is magic + version.
const walHeaderLen = 8 + 4

// walFrameLen is the per-record frame prefix: payload length + payload CRC.
const walFrameLen = 4 + 4

// maxWALPayload bounds a record's claimed payload size; anything larger is
// corruption, not a batch (the engine cannot produce multi-hundred-MiB
// single batches, and the cap keeps hostile inputs from forcing huge
// allocations).
const maxWALPayload = 1 << 28

// maxPendingBytes bounds the in-memory backlog of encoded frames whose
// write failed (see wal.pending). Past the cap the log stops deferring and
// the chain check refuses appends until a snapshot heals the gap.
const maxPendingBytes = 1 << 20

// WALRecord is one decoded write-ahead-log record: a batch's surviving
// updates and the engine sequence number after applying them.
type WALRecord struct {
	// Seq is the engine sequence number AFTER the batch; the batch starts
	// at Seq - len(Updates).
	Seq uint64
	// Updates are the batch's surviving updates in application order.
	Updates []kcore.Update
}

// appendUpdates encodes updates in the op-byte + uvarint-vertex form shared
// by the WAL record payload and the batch frame (see batch.go).
func appendUpdates(buf []byte, updates []kcore.Update) ([]byte, error) {
	for _, up := range updates {
		var op byte
		switch up.Op {
		case kcore.OpAdd:
			op = 0
		case kcore.OpRemove:
			op = 1
		default:
			return nil, fmt.Errorf("persist: record with unknown op %d", up.Op)
		}
		if up.U < 0 || up.V < 0 {
			return nil, fmt.Errorf("persist: record with negative vertex (%d,%d)", up.U, up.V)
		}
		buf = append(buf, op)
		buf = binary.AppendUvarint(buf, uint64(up.U))
		buf = binary.AppendUvarint(buf, uint64(up.V))
	}
	return buf, nil
}

// decodeUpdates parses count updates off payload, appending them to dst.
// Malformed input errors wrap sentinel (ErrCorruptWAL or ErrCorruptBatch).
func decodeUpdates(payload []byte, count uint64, dst []kcore.Update, sentinel error) ([]kcore.Update, []byte, error) {
	for i := uint64(0); i < count; i++ {
		if len(payload) == 0 {
			return dst, payload, fmt.Errorf("%w: truncated update %d", sentinel, i)
		}
		op := payload[0]
		payload = payload[1:]
		u, n := binary.Uvarint(payload)
		if n <= 0 || u > maxSnapshotDim {
			return dst, payload, fmt.Errorf("%w: bad vertex in update %d", sentinel, i)
		}
		payload = payload[n:]
		v, n := binary.Uvarint(payload)
		if n <= 0 || v > maxSnapshotDim {
			return dst, payload, fmt.Errorf("%w: bad vertex in update %d", sentinel, i)
		}
		payload = payload[n:]
		switch op {
		case 0:
			dst = append(dst, kcore.Add(int(u), int(v)))
		case 1:
			dst = append(dst, kcore.Remove(int(u), int(v)))
		default:
			return dst, payload, fmt.Errorf("%w: unknown op %d in update %d", sentinel, op, i)
		}
	}
	return dst, payload, nil
}

// appendWALRecord encodes one record frame (length + crc + payload) onto buf.
func appendWALRecord(buf []byte, seq uint64, updates []kcore.Update) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame prefix placeholder
	payloadStart := len(buf)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(updates)))
	buf, err := appendUpdates(buf, updates)
	if err != nil {
		return nil, err
	}
	payload := buf[payloadStart:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// decodeWALPayload parses one CRC-verified record payload.
func decodeWALPayload(payload []byte) (WALRecord, error) {
	var rec WALRecord
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return rec, fmt.Errorf("%w: truncated record seq", ErrCorruptWAL)
	}
	payload = payload[n:]
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return rec, fmt.Errorf("%w: truncated record count", ErrCorruptWAL)
	}
	payload = payload[n:]
	if count == 0 {
		return rec, fmt.Errorf("%w: empty record", ErrCorruptWAL)
	}
	if count > uint64(len(payload)) || count > seq {
		// Each update takes >= 3 bytes; a count beyond the payload (or the
		// claimed end seq) is structurally impossible.
		return rec, fmt.Errorf("%w: implausible update count %d", ErrCorruptWAL, count)
	}
	rec.Seq = seq
	updates, payload, err := decodeUpdates(payload, count, make([]kcore.Update, 0, count), ErrCorruptWAL)
	if err != nil {
		return rec, err
	}
	rec.Updates = updates
	if len(payload) != 0 {
		return rec, fmt.Errorf("%w: %d trailing bytes in record payload", ErrCorruptWAL, len(payload))
	}
	return rec, nil
}

// walScan is the outcome of scanning a WAL stream.
type walScan struct {
	// goodOffset is the byte offset just past the last complete, valid
	// record (or past the header when no record is valid, or 0 for a file
	// too short to hold the header).
	goodOffset int64
	// tornBytes counts bytes past goodOffset forming an incomplete tail
	// record — the prefix a crashed append leaves behind. Always 0 when
	// scanWAL returns an error.
	tornBytes int64
	// records is the number of valid records scanned.
	records uint64
	// lastSeq is the last valid record's sequence number.
	lastSeq uint64
}

// scanWAL reads a WAL byte stream, invoking fn for every complete,
// CRC-valid record in order (the decoding itself lives in WALReader; this
// wrapper adds the file-recovery bookkeeping). It enforces strictly
// increasing sequence numbers. An incomplete structure at the end of the
// stream is reported as a torn tail; every other malformation is an error
// wrapping ErrCorruptWAL. A zero-length stream is a valid empty WAL.
func scanWAL(r io.Reader, fn func(rec WALRecord) error) (walScan, error) {
	wr := NewWALReader(bufio.NewReaderSize(r, 1<<16))
	var res walScan
	for {
		rec, err := wr.Next()
		switch {
		case err == io.EOF:
			res.goodOffset = wr.Offset()
			return res, nil
		case errors.Is(err, io.ErrUnexpectedEOF):
			res.goodOffset, res.tornBytes = wr.Offset(), wr.Torn()
			return res, nil
		case err != nil:
			res.goodOffset = wr.Offset()
			return res, err
		}
		if err := fn(rec); err != nil {
			// res still excludes rec: recovery must not count a record the
			// callback refused (e.g. a chain break) as good.
			return res, err
		}
		res.goodOffset = wr.Offset()
		res.records = wr.Records()
		res.lastSeq = wr.LastSeq()
	}
}

// ScanWALFile reads every valid record of the WAL at path. It reports the
// torn-tail size (bytes of an incomplete final record) without modifying
// the file; errors wrap ErrCorruptWAL for malformed content.
func ScanWALFile(path string, fn func(rec WALRecord) error) (records uint64, tornBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	res, err := scanWAL(f, fn)
	return res.records, res.tornBytes, err
}

// wal is the append side of the write-ahead log. It is not safe for
// concurrent use; the Store serializes access.
type wal struct {
	f      *fault.File
	path   string
	policy SyncPolicy
	every  time.Duration
	fault  *fault.Plane // nil in production; see internal/fault

	buf      []byte // frame scratch, one Write call per append
	size     int64  // current file size
	records  uint64 // records in the file
	lastSeq  uint64 // seq of the last record, including deferred ones (0 when empty)
	base     uint64 // seq the on-disk snapshot covers; an empty log chains onto it
	lastSync time.Time
	syncs    uint64
	dirty    bool // appends since the last fsync (interval-sync bookkeeping)
	failed   bool // file handle unusable (failed rollback or reopen); sealed until compactTo rebuilds the file

	// pending holds encoded frames whose write failed but whose rollback
	// succeeded — exactly the chain links the file is missing, in order.
	// They are flushed ahead of the next append, so a transient fault
	// (ENOSPC cleared, one-off EIO) converges with zero loss as soon as one
	// write lands, without waiting for a healing snapshot. Bounded by
	// maxPendingBytes; an overflow falls back to gap refusal + heal.
	pending        []byte
	pendingRecords uint64
}

// write performs one file write. Fault injection (errors, short writes,
// latency) happens inside the fault.File wrapper — a short write leaves a
// real partial frame behind for rollback to truncate away.
func (w *wal) write(b []byte) error {
	_, err := w.f.Write(b)
	return err
}

// rollback restores the file to the last good offset after a failed write;
// if the file cannot be restored the log seals itself.
func (w *wal) rollback() {
	if terr := w.f.Truncate(w.size); terr != nil {
		w.failed = true
	} else if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
		w.failed = true
	}
}

// chainSeq is the sequence number the next appended record must chain onto:
// the last (possibly deferred) record's seq, or the snapshot base when the
// snapshot covers everything the log holds.
func (w *wal) chainSeq() uint64 {
	if (w.records > 0 || w.pendingRecords > 0) && w.lastSeq > w.base {
		return w.lastSeq
	}
	return w.base
}

// flushPending writes the deferred frames; they precede any new record in
// the chain, so nothing may be appended while they remain unflushed.
func (w *wal) flushPending() error {
	if len(w.pending) == 0 {
		return nil
	}
	if err := w.write(w.pending); err != nil {
		w.rollback()
		return err
	}
	w.size += int64(len(w.pending))
	w.records += w.pendingRecords
	w.pending = nil
	w.pendingRecords = 0
	w.dirty = true
	return nil
}

// flushDeferred retries the deferred backlog immediately, honoring the sync
// policy on success — the bounded in-line retry path of the apply hook (see
// Options.AppendRetries). On success the log has fully caught up with the
// engine and the append that deferred is as durable as a first-try append.
func (w *wal) flushDeferred() error {
	if w.failed {
		return fmt.Errorf("persist: WAL sealed after a failed write (a snapshot will rebuild it)")
	}
	if err := w.flushPending(); err != nil {
		return fmt.Errorf("persist: WAL append retry: %w", err)
	}
	switch w.policy {
	case SyncAlways:
		return w.sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.every {
			return w.sync()
		}
	}
	return nil
}

// deferFrame retains an encoded frame whose write failed, keeping the chain
// alive for a later flushPending. Past the backlog cap (or with an unusable
// file) the frame is dropped — the chain check then refuses further appends
// and the healing snapshot re-covers everything.
func (w *wal) deferFrame(frame []byte, seq uint64) {
	if w.failed || len(w.pending)+len(frame) > maxPendingBytes {
		return
	}
	w.pending = append(w.pending, frame...)
	w.pendingRecords++
	w.lastSeq = seq
}

// errWALGap marks an append refused because the record does not chain onto
// the log's last durable sequence number — the engine has advanced past the
// log, which happens after any failed append (the HookError contract keeps
// the batch applied in memory). The record is NOT written: a gap record
// would make the whole log unreplayable, since replayWAL rejects a broken
// chain as ErrCorruptWAL. The store heals by compacting — a fresh snapshot
// captures the advanced engine state and re-covers the gap.
var errWALGap = errors.New("persist: WAL behind engine state (batch not logged; a snapshot will re-cover the gap)")

// openWAL opens (creating or validating) the WAL at path for appending.
// The file must already be consistent — the Store truncates torn tails
// during recovery before calling openWAL. base is the sequence number the
// current snapshot covers: when the log is empty, the first appended record
// must chain onto it (replayWAL starts its cursor there).
func openWAL(path string, policy SyncPolicy, every time.Duration, records uint64, lastSeq uint64, base uint64, plane *fault.Plane) (*wal, error) {
	f, err := fault.Open(plane, "wal", path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: stat WAL: %w", err)
	}
	w := &wal{f: f, path: path, policy: policy, every: every, fault: plane,
		size: st.Size(), records: records, lastSeq: lastSeq, base: base, lastSync: time.Now()}
	if w.size == 0 {
		var hdr [walHeaderLen]byte
		copy(hdr[:], walMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:], WALVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: write WAL header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: sync WAL header: %w", err)
		}
		w.size = walHeaderLen
	} else if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: seek WAL: %w", err)
	}
	return w, nil
}

// append logs one batch, honoring the sync policy. The frame is written
// with a single write call so a crash can only leave a strict prefix.
//
// Three guards keep a failed append (e.g. ENOSPC) from ever corrupting the
// log. First, the chain check: a record that does not continue the last
// durable sequence — which is what a batch looks like once the engine has
// advanced past the log — is refused with errWALGap instead of being
// written; a gap record would fail replayWAL's chaining check on the next
// Open and make the directory unrecoverable. Second, rollback: a failed
// write may leave a partial frame behind, so the file is truncated back to
// the last good offset; if even that fails (or the seek back does), the
// handle is sealed until compactTo rebuilds the file through a rename.
// Third, deferral: after a clean rollback the already-encoded frame is
// retained in a bounded backlog and flushed ahead of the next append, so
// the chain stays intact and a transient fault loses nothing once writes
// land again.
func (w *wal) append(seq uint64, updates []kcore.Update) error {
	if w.failed {
		return fmt.Errorf("persist: WAL sealed after a failed write (a snapshot will rebuild it)")
	}
	// replayWAL's cursor starts at the snapshot seq (base), skips records the
	// snapshot covers, and ends at the last record beyond it — so the next
	// record must chain onto chainSeq. (lastSeq < base happens after a crash
	// between a compaction's snapshot rename and WAL shrink: the leftover
	// records are all covered and will be skipped.)
	if expected := w.chainSeq(); seq-uint64(len(updates)) != expected {
		return fmt.Errorf("%w: record covering seq %d..%d cannot chain onto seq %d",
			errWALGap, seq-uint64(len(updates))+1, seq, expected)
	}
	buf, err := appendWALRecord(w.buf[:0], seq, updates)
	if err != nil {
		return err
	}
	w.buf = buf
	if err := w.flushPending(); err != nil {
		w.deferFrame(buf, seq)
		return fmt.Errorf("persist: WAL append (flushing deferred records): %w", err)
	}
	if err := w.write(buf); err != nil {
		w.rollback()
		w.deferFrame(buf, seq)
		return fmt.Errorf("persist: WAL append: %w", err)
	}
	w.size += int64(len(buf))
	w.records++
	w.lastSeq = seq
	w.dirty = true
	switch w.policy {
	case SyncAlways:
		return w.sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.every {
			return w.sync()
		}
	}
	return nil
}

func (w *wal) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: WAL sync: %w", err)
	}
	w.syncs++
	w.lastSync = time.Now()
	w.dirty = false
	return nil
}

// compactTo drops every record with seq <= upto, retaining the rest. Fast
// path: when the whole log is covered it truncates in place; otherwise the
// surviving tail is rewritten through a temp file + rename. A sealed log
// (w.failed) always takes the rewrite path — its handle may be orphaned or
// its file may end in a partial frame, so in-place truncation cannot be
// trusted — and a successful rewrite clears the seal: the snapshot at upto
// covers everything the rebuilt log lacks, so appends may resume.
func (w *wal) compactTo(upto uint64) error {
	if out := w.fault.Check(fault.WALCompact); out.Err != nil {
		return fmt.Errorf("persist: WAL compact: %w", out.Err)
	}
	// lastSeq covers deferred frames too, so the fast path only fires when
	// the snapshot covers the entire chain, file and backlog alike.
	if !w.failed && w.lastSeq <= upto {
		if err := w.f.Truncate(walHeaderLen); err != nil {
			// A shrinking truncate that fails usually means the handle is
			// dead (EIO, closed fd): seal so nobody mistakes the log for
			// append-ready — the next compaction rebuilds it via rename,
			// which is also the only way to find out the handle still works.
			w.failed = true
			return fmt.Errorf("persist: WAL truncate: %w", err)
		}
		// Past the truncate the file has changed; a failed seek leaves the
		// write offset beyond the new end (appends would punch a zero-filled
		// hole the next scan rejects as corruption), and a failed fsync
		// leaves the on-disk state undefined. Seal either way.
		if _, err := w.f.Seek(walHeaderLen, io.SeekStart); err != nil {
			w.failed = true
			return fmt.Errorf("persist: WAL seek: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			w.failed = true
			return fmt.Errorf("persist: WAL sync: %w", err)
		}
		w.size = walHeaderLen
		w.records = 0
		w.lastSeq = 0
		w.base = upto
		w.pending = nil // all deferred frames are <= upto: the snapshot covers them
		w.pendingRecords = 0
		return nil
	}
	// Records appended after the snapshot capture must survive: rewrite the
	// tail. The old handle keeps its flushed contents; read it back via a
	// second handle from the start (a fresh open by path, so this also works
	// when the old handle is orphaned or the file ends in a partial frame —
	// the scan drops an incomplete tail as torn).
	tmp, err := fault.CreateTemp(w.fault, "wal", filepath.Dir(w.path), "wal.tmp-*")
	if err != nil {
		return fmt.Errorf("persist: WAL rewrite temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], WALVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: WAL rewrite: %w", err)
	}
	var kept uint64
	var lastSeq uint64
	size := int64(walHeaderLen)
	var buf []byte
	_, _, err = ScanWALFile(w.path, func(rec WALRecord) error {
		if rec.Seq <= upto {
			return nil
		}
		b, err := appendWALRecord(buf[:0], rec.Seq, rec.Updates)
		if err != nil {
			return err
		}
		buf = b
		if _, err := tmp.Write(b); err != nil {
			return fmt.Errorf("persist: WAL rewrite: %w", err)
		}
		size += int64(len(b))
		kept++
		lastSeq = rec.Seq
		return nil
	})
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: WAL rewrite sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: WAL rewrite close: %w", err)
	}
	if err := fault.Rename(w.fault, "wal", tmpName, w.path); err != nil {
		return fmt.Errorf("persist: WAL rewrite rename: %w", err)
	}
	syncDir(filepath.Dir(w.path))
	// The rename already replaced the file on disk: from here on, w.f points
	// at the old, unlinked inode. If the rewritten file cannot be opened for
	// appending, seal the log — appends through the stale handle would
	// report success while landing in an orphaned file, silently losing
	// acknowledged batches on the next restart.
	old := w.f
	f, err := fault.Open(w.fault, "wal", w.path, os.O_RDWR, 0o644)
	if err != nil {
		w.failed = true
		return fmt.Errorf("persist: reopen WAL: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		w.failed = true
		return fmt.Errorf("persist: seek WAL: %w", err)
	}
	w.f = f
	_ = old.Close()
	w.size = size
	w.records = kept
	if w.pendingRecords == 0 {
		w.lastSeq = lastSeq
	}
	// else: the deferred backlog survives the rewrite — its chain extends
	// past upto (a Snapshot racing a deferred apply captures an older seq),
	// so dropping it would leave the log permanently behind the engine.
	// w.lastSeq already ends that chain; backlog frames at or below upto are
	// merely skipped at replay once flushed. Deferred frames always follow
	// every file record, so flushing after the kept tail keeps seqs ordered.
	w.base = upto
	w.failed = false
	return nil
}

// close syncs (unless SyncOff already synced implicitly) and closes the log.
func (w *wal) close() error {
	if w.failed {
		// The handle is unusable for appends, but when the seal came from a
		// failed rollback it still references the live file, whose earlier
		// valid records may sit unfsynced in the page cache — so still
		// attempt the sync (harmless on an orphaned or dead handle). Errors
		// are expected here and not reported: recovery re-derives state from
		// the snapshot plus whatever the on-disk log holds.
		_ = w.f.Sync()
		_ = w.f.Close()
		return nil
	}
	// Deferred records become durable after all if the device recovered;
	// their Apply callers already saw the failure, so errors stay silent.
	_ = w.flushPending()
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("persist: close WAL: %w", err)
	}
	return nil
}

// errStoreClosed guards appends racing a Close (should not happen: Close
// detaches the hook first, which waits out in-flight applies).
var errStoreClosed = errors.New("persist: store is closed")

// Package persist gives a kcore.Engine crash-safe durability: a versioned
// binary snapshot format plus a write-ahead log (WAL) of applied batches,
// managed together by a Store so that a process restart — clean or not —
// reconstructs the engine bit-identically: same core numbers, same
// maintained k-order, same update sequence number.
//
// # Why snapshot + WAL suffices
//
// The order-based maintenance engine is deterministic: its complete state is
// a function of (a) a captured index state — edge set, core numbers, and the
// maintained k-order, with the seed/heuristic/structure parameters — and
// (b) the ordered stream of update batches applied since. The snapshot
// captures (a); the WAL records (b), one record per applied batch holding
// the surviving (post-coalescing) updates and the resulting sequence number.
// Recovery loads the snapshot, replays WAL records in order through
// kcore.Engine.Replay (silent: no subscriber events, no re-logging), and
// resumes. See PAPER.md / the package kcore doc for the engine background.
//
// # Snapshot format (version 1, little endian)
//
//	magic     [8]byte  "KCORSNAP"
//	version   uint32   1
//	heuristic uint8    engine heuristic     (replay determinism parameters)
//	structure uint8    order structure
//	reserved  uint16   0
//	seed      uint64   engine seed
//	seq       uint64   update sequence number of the captured state
//	n         uvarint  vertices
//	m         uvarint  edges
//	edges     ...      m edges, sorted (u < v, lexicographic), delta coded:
//	                   uvarint(u - prevU), then uvarint(v) when u advanced
//	                   or uvarint(v - prevV) when u repeated
//	cores     ...      n uvarints, core number per vertex
//	order     ...      n uvarints, the maintained k-order front to back
//	crc32     uint32   IEEE CRC-32 of every preceding byte
//
// Snapshots are written atomically (temp file + rename + directory sync)
// from a View(WithIndex()) capture, so writers are blocked only for the
// O(m + n) in-memory capture, never for the file write. Loading verifies
// the CRC and then the state itself (korder.Restore's O(m + n)
// certification), so a load that succeeds can never install
// silently-wrong state; every structural failure wraps ErrCorruptSnapshot.
//
// # WAL format (version 1, little endian)
//
//	magic   [8]byte  "KCOREWAL"
//	version uint32   1
//	records, each:
//	  length uint32   payload byte length
//	  crc32  uint32   IEEE CRC-32 of the payload
//	  payload:
//	    seq    uvarint  engine sequence number AFTER the batch
//	    count  uvarint  number of updates (== sequence increments)
//	    count × { op uint8 (0 add, 1 remove); u uvarint; v uvarint }
//
// Each record is appended with a single write call when a batch commits
// (via kcore.Engine.SetApplyHook, under the engine's write lock, so record
// order equals apply order). Sync policy is configurable: SyncAlways
// fsyncs per record, SyncInterval groups fsyncs, SyncOff leaves flushing
// to the OS.
//
// Replay distinguishes two failure shapes. An incomplete record at the end
// of the file — the prefix a crashed append leaves behind — is a torn tail:
// it is truncated away and recovery proceeds (Stats.TornBytes reports it).
// Everything else — bad magic, a checksum mismatch on a fully present
// record, non-monotone sequence numbers, a sequence gap, or a record whose
// updates do not apply — is corruption and fails recovery with
// ErrCorruptWAL rather than guessing.
//
// # Compaction
//
// The WAL grows without bound until a compaction rolls it into a fresh
// snapshot: capture, atomic snapshot replace, then drop WAL records already
// covered by the new snapshot's sequence number. A Store compacts
// automatically past Options.CompactBytes (in a background goroutine — never
// on the apply path) and on demand via Store.Snapshot. Crash safety needs no
// coordination beyond the sequence numbers: replay skips WAL records at or
// below the snapshot's seq, so dying between the snapshot rename and the WAL
// shrink merely replays less.
//
// # Append failures
//
// A WAL append that fails (e.g. ENOSPC) surfaces to the Apply caller as a
// *kcore.HookError while the batch stays applied in memory — so the engine
// advances past the log. When the file could be rolled back cleanly, the
// already-encoded record is retained in a bounded in-memory backlog and
// flushed ahead of the next append: the chain stays intact and a transient
// fault loses nothing once writes land again, even under sustained traffic.
// When the log cannot defer (unusable handle, backlog overflow), it refuses
// subsequent appends instead of writing a record with a sequence gap (a gap
// would fail replay's chaining check and make the directory unrecoverable),
// and compaction heals it: a fresh snapshot captures the advanced engine
// state, re-covers the gap, and rebuilds the log file, after which appends
// resume. The healing compaction is scheduled immediately when background
// compaction is enabled; calling Store.Snapshot heals on demand. Batches
// applied while the log was behind are durable through the snapshot, not
// the WAL.
package persist

import (
	"errors"
	"time"

	"kcore"
	"kcore/internal/fault"
)

// Structural corruption sentinels. Every snapshot- or WAL-shaped failure
// (bad magic, checksum mismatch, truncation mid-structure, implausible
// sizes, state that fails verification, updates that do not apply) wraps
// one of these, so callers branch with errors.Is.
var (
	// ErrCorruptSnapshot marks an unreadable or unverifiable snapshot.
	ErrCorruptSnapshot = errors.New("persist: corrupt snapshot")
	// ErrCorruptWAL marks an unreadable or inconsistent write-ahead log
	// (torn tails are NOT corruption; they are truncated silently).
	ErrCorruptWAL = errors.New("persist: corrupt write-ahead log")
)

// ErrCompaction marks a Store.Snapshot whose snapshot file was durably
// written but whose WAL compaction step failed: the returned SnapshotInfo
// is valid, the directory recovers correctly (replay skips the records the
// snapshot covers), and the log keeps accepting appends — it merely kept
// its pre-compaction size. Callers should treat it as partial success, not
// re-trigger the snapshot. When the compaction failure leaves the log
// unable to accept appends (still sealed or still behind the engine), the
// error is NOT wrapped with ErrCompaction: that snapshot did not heal.
var ErrCompaction = errors.New("persist: WAL compaction failed")

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs at most once per Options.SyncEvery:
	// batches are written immediately but group their durability barrier,
	// piggybacked on appends with a background timer covering idle tails
	// (a lone batch followed by silence is still synced within about one
	// period). An OS crash can lose roughly SyncEvery of acknowledged
	// batches; a process crash loses nothing.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every record: an acknowledged batch survives
	// even an OS crash, at the cost of one fsync per Apply.
	SyncAlways
	// SyncOff never fsyncs on the append path (only on Close and
	// compaction). Records still reach the file with one write call per
	// batch, so a process crash loses nothing; an OS crash may lose any
	// unflushed suffix — replay truncates the torn tail and resumes.
	SyncOff
)

// String names the policy (flag-friendly: "interval", "always", "off").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	case SyncInterval:
		return "interval"
	default:
		return "unknown"
	}
}

// ParseSyncPolicy parses a policy name as printed by String.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, errors.New("persist: sync policy must be always, interval or off")
}

// Options configures a Store. The zero value is usable: interval fsync
// every 100ms, 64 MiB compaction threshold, default engine options.
type Options struct {
	// Sync is the WAL fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// CompactBytes triggers automatic compaction when the WAL exceeds this
	// size. A compaction is also scheduled after a failed WAL append, since
	// the fresh snapshot re-covers the un-logged batch and heals the log. 0
	// selects the default 64 MiB; negative disables all background
	// compaction, size- and heal-triggered (Store.Snapshot still compacts —
	// and heals — on demand).
	CompactBytes int64
	// Engine supplies the engine options used when no snapshot exists yet
	// and passed through to snapshot loading (snapshot-stored seed,
	// heuristic and structure win over these; see kcore.FromIndex).
	Engine []kcore.Option
	// Init, when non-nil, builds the initial engine for a directory that
	// holds no prior state (no snapshot, no WAL records) — e.g. preloading
	// an edge list. Its engine is snapshotted immediately so the seed state
	// is durable before Open returns. Ignored when prior state exists.
	Init func() (*kcore.Engine, error)
	// Fault, when non-nil, injects faults into the store's file operations
	// (WAL writes/fsyncs/truncates/compaction, snapshot writes/renames) —
	// see internal/fault. Production stores leave it nil.
	Fault *fault.Plane
	// AppendRetries bounds the in-line retries of a transiently failed WAL
	// append: after a failed write whose frame was deferred cleanly, the
	// apply hook sleeps a short jittered backoff (RetryBackoff envelope)
	// and re-flushes, so a blip (one-off EIO, ENOSPC that clears) never
	// surfaces to the Apply caller at all. The retries run under the
	// engine's write lock, so the bound keeps worst-case added latency to a
	// few milliseconds. 0 selects the default of 2; negative disables
	// in-line retries (the deferred backlog still heals on the next
	// append).
	AppendRetries int
	// RetryBackoff is the minimum backoff before the first append retry
	// (default 500µs); each retry doubles it, jittered, capped at 8×.
	RetryBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 64 << 20
	}
	if o.AppendRetries == 0 {
		o.AppendRetries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 500 * time.Microsecond
	}
	return o
}

// Stats reports a Store's durability counters. Recovered* and TornBytes
// describe the Open-time recovery; the rest track the running store.
type Stats struct {
	// SnapshotSeq is the sequence number of the current on-disk snapshot.
	SnapshotSeq uint64
	// SnapshotBytes is the current snapshot's size.
	SnapshotBytes int64
	// WALRecords and WALBytes describe the current WAL file (records since
	// the last compaction; bytes include the file header).
	WALRecords uint64
	WALBytes   int64
	// Appends counts batches logged over the store's lifetime.
	Appends uint64
	// AppendRetrySaves counts appends that failed transiently and then
	// succeeded within the bounded in-line retry (Options.AppendRetries):
	// faults the Apply caller never saw.
	AppendRetrySaves uint64
	// Syncs counts fsyncs issued by the WAL append path.
	Syncs uint64
	// Compactions counts snapshots written (Open's initial snapshot,
	// automatic compactions, and Store.Snapshot calls).
	Compactions uint64
	// CompactErrors counts failed background compactions; SyncErrors counts
	// failed background interval fsyncs (durability exposure for batches that
	// were already acknowledged). The last error of each is also returned by
	// Close.
	CompactErrors uint64
	SyncErrors    uint64
	// RecoveredRecords is the number of WAL records replayed at Open;
	// RecoveredSeq is the engine sequence number recovery ended at.
	RecoveredRecords uint64
	RecoveredSeq     uint64
	// TornBytes is the size of the torn WAL tail truncated at Open (0 for a
	// clean shutdown).
	TornBytes int64
}

package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"kcore"
)

// BatchVersion is the current binary batch-frame format version. Bump it —
// and regenerate the golden fixture (see golden_test.go) — whenever the
// byte format changes.
const BatchVersion = 1

var batchMagic = [8]byte{'K', 'C', 'O', 'R', 'B', 'T', 'C', 'H'}

// batchHeaderLen is magic + version; the frame ends with a 4-byte CRC.
const batchHeaderLen = 8 + 4

// batchTrailerLen is the CRC-32 trailer.
const batchTrailerLen = 4

// ErrCorruptBatch reports a malformed binary batch frame. The server maps
// it to a 400 with a stable wire code, exactly like a JSON syntax error.
var ErrCorruptBatch = errors.New("persist: corrupt batch frame")

// AppendBatchFrame encodes updates as one self-contained binary batch frame
// onto buf and returns the extended slice. The frame is the wire form of a
// POST /v1/batch body under Content-Type application/x-kcore-batch:
//
//	magic "KCORBTCH"        8 bytes
//	version                 u32 LE (BatchVersion)
//	count                   uvarint
//	count x update          op byte (0=add, 1=remove), uvarint u, uvarint v
//	crc                     u32 LE, CRC-32 (IEEE) of count + updates
//
// The update encoding is byte-identical to the WAL record payload, so the
// two formats share one proven codec.
func AppendBatchFrame(buf []byte, updates []kcore.Update) ([]byte, error) {
	buf = append(buf, batchMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, BatchVersion)
	payloadStart := len(buf)
	buf = binary.AppendUvarint(buf, uint64(len(updates)))
	buf, err := appendUpdates(buf, updates)
	if err != nil {
		return nil, err
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[payloadStart:])), nil
}

// DecodeBatchFrame parses one binary batch frame, appending the decoded
// updates to scratch[:0] (pass nil to allocate). Every malformation wraps
// ErrCorruptBatch; on error the returned slice is scratch[:0] resliced and
// must not be interpreted.
func DecodeBatchFrame(data []byte, scratch []kcore.Update) ([]kcore.Update, error) {
	dst := scratch[:0]
	if len(data) < batchHeaderLen+batchTrailerLen {
		return dst, fmt.Errorf("%w: %d bytes is shorter than the fixed framing", ErrCorruptBatch, len(data))
	}
	if [8]byte(data[:8]) != batchMagic {
		return dst, fmt.Errorf("%w: bad magic %q", ErrCorruptBatch, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != BatchVersion {
		return dst, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorruptBatch, v, BatchVersion)
	}
	payload := data[batchHeaderLen : len(data)-batchTrailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-batchTrailerLen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return dst, fmt.Errorf("%w: CRC mismatch (got %08x, frame says %08x)", ErrCorruptBatch, got, want)
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("%w: truncated update count", ErrCorruptBatch)
	}
	payload = payload[n:]
	if count > uint64(len(payload)) {
		// Each update takes >= 3 bytes; a count beyond the payload length is
		// structurally impossible and would force a huge scratch growth.
		return dst, fmt.Errorf("%w: implausible update count %d", ErrCorruptBatch, count)
	}
	dst, payload, err := decodeUpdates(payload, count, dst, ErrCorruptBatch)
	if err != nil {
		return scratch[:0], err
	}
	if len(payload) != 0 {
		return scratch[:0], fmt.Errorf("%w: %d trailing bytes", ErrCorruptBatch, len(payload))
	}
	return dst, nil
}

// Package datasets defines the 11 named synthetic analogs of the paper's
// Table I datasets (DESIGN.md §3). Sizes are scaled down ~20x so the full
// harness runs on commodity hardware; every analog is deterministic given
// its name.
package datasets

import (
	"fmt"
	"sort"

	"kcore/internal/gen"
	"kcore/internal/graph"
)

// Dataset names a synthetic analog and builds it on demand.
type Dataset struct {
	// Name is the analog's identifier, e.g. "facebook-sim".
	Name string
	// Paper is the paper dataset this analog substitutes for.
	Paper string
	// Kind describes the graph family (social, web, road, ...).
	Kind string
	// Build constructs the graph (deterministic).
	Build func() *graph.Undirected
}

// All returns the 11 analogs in the paper's Table I order.
func All() []Dataset {
	return []Dataset{
		{"facebook-sim", "Facebook", "social (temporal)", func() *graph.Undirected {
			return gen.BarabasiAlbert(3200, 13, 1)
		}},
		{"youtube-sim", "Youtube", "social (temporal)", func() *graph.Undirected {
			return gen.BarabasiAlbert(60000, 3, 2)
		}},
		{"dblp-sim", "DBLP", "collaboration (temporal)", func() *graph.Undirected {
			return gen.Community(40000, 8, 0.7, 60000, 3)
		}},
		{"patents-sim", "Patents", "citation", func() *graph.Undirected {
			return gen.RMAT(16, 280000, 0.57, 0.19, 0.19, 4)
		}},
		{"orkut-sim", "Orkut", "social", func() *graph.Undirected {
			return gen.BarabasiAlbert(24000, 38, 5)
		}},
		{"livejournal-sim", "LiveJournal", "social", func() *graph.Undirected {
			return gen.RMAT(16, 560000, 0.55, 0.2, 0.2, 6)
		}},
		{"gowalla-sim", "Gowalla", "location social", func() *graph.Undirected {
			return gen.BarabasiAlbert(10000, 5, 7)
		}},
		{"ca-sim", "CA", "road", func() *graph.Undirected {
			return gen.Grid(300, 330, 0.62, 0.05, 8)
		}},
		{"pokec-sim", "Pokec", "social", func() *graph.Undirected {
			return gen.BarabasiAlbert(30000, 14, 9)
		}},
		{"berkstan-sim", "BerkStan", "web", func() *graph.Undirected {
			return gen.RMAT(15, 320000, 0.6, 0.18, 0.18, 10)
		}},
		{"google-sim", "Google", "web", func() *graph.Undirected {
			return gen.RMAT(15, 160000, 0.57, 0.19, 0.19, 11)
		}},
	}
}

// Names lists all analog names in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name
	}
	return out
}

// ByName returns the dataset with the given name (the "-sim" suffix may be
// omitted; the reduced "-tiny" variants are also resolvable), or an error
// listing valid names.
func ByName(name string) (Dataset, error) {
	for _, d := range append(All(), Small()...) {
		if d.Name == name || d.Name == name+"-sim" {
			return d, nil
		}
	}
	valid := Names()
	sort.Strings(valid)
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q (valid: %v)", name, valid)
}

// Small returns reduced-size variants of a few representative analogs for
// fast benchmarks and tests.
func Small() []Dataset {
	return []Dataset{
		{"facebook-tiny", "Facebook", "social", func() *graph.Undirected {
			return gen.BarabasiAlbert(800, 10, 21)
		}},
		{"patents-tiny", "Patents", "citation", func() *graph.Undirected {
			return gen.RMAT(12, 18000, 0.57, 0.19, 0.19, 22)
		}},
		{"ca-tiny", "CA", "road", func() *graph.Undirected {
			return gen.Grid(60, 70, 0.62, 0.05, 23)
		}},
	}
}

package datasets

import (
	"testing"

	"kcore/internal/decomp"
)

func TestAllHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset name %q", d.Name)
		}
		seen[d.Name] = true
		if d.Paper == "" || d.Kind == "" || d.Build == nil {
			t.Fatalf("dataset %q incomplete", d.Name)
		}
	}
	if len(All()) != 11 {
		t.Fatalf("expected 11 analogs, got %d", len(All()))
	}
	if len(Names()) != 11 {
		t.Fatal("Names() wrong length")
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("ca-sim")
	if err != nil || d.Name != "ca-sim" {
		t.Fatalf("ByName(ca-sim): %v, %v", d, err)
	}
	d, err = ByName("ca")
	if err != nil || d.Name != "ca-sim" {
		t.Fatalf("ByName(ca) suffix fallback: %v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

// TestAllAnalogsBuild builds every full-size analog once and sanity-checks
// its statistics against the paper's Table I shape (skipped with -short:
// building all 11 graphs takes tens of seconds).
func TestAllAnalogsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all 11 full-size analogs")
	}
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			g := d.Build()
			if g.NumVertices() < 1000 || g.NumEdges() < 1000 {
				t.Fatalf("%s: implausibly small (n=%d m=%d)", d.Name, g.NumVertices(), g.NumEdges())
			}
			avg := g.AvgDegree()
			if avg < 2 || avg > 100 {
				t.Fatalf("%s: avg degree %.2f out of range", d.Name, avg)
			}
		})
	}
}

// TestAnalogShapes verifies each analog is deterministic and structurally in
// line with its paper counterpart (relative density, road-network max core).
func TestAnalogShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all analogs")
	}
	for _, d := range Small() {
		g := d.Build()
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", d.Name)
		}
		h := d.Build()
		if !g.Equal(h) {
			t.Fatalf("%s: not deterministic", d.Name)
		}
	}
	// Spot-check the full-size road analog: avg degree and max core must
	// match the paper's CA characteristics (avg 2.8, max k=3).
	ca, err := ByName("ca-sim")
	if err != nil {
		t.Fatal(err)
	}
	g := ca.Build()
	if avg := g.AvgDegree(); avg < 2.3 || avg > 3.4 {
		t.Fatalf("ca-sim avg degree %.2f out of range", avg)
	}
	if k := decomp.Degeneracy(g); k < 2 || k > 3 {
		t.Fatalf("ca-sim degeneracy %d, want 2..3", k)
	}
	// Spot-check a social analog for degree skew.
	fb, err := ByName("facebook-sim")
	if err != nil {
		t.Fatal(err)
	}
	gf := fb.Build()
	if float64(gf.MaxDegree()) < 3*gf.AvgDegree() {
		t.Fatalf("facebook-sim lacks degree skew (max %d avg %.1f)", gf.MaxDegree(), gf.AvgDegree())
	}
}

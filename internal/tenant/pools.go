package tenant

import (
	"sync"

	"kcore"
)

// Pools is allocation scratch shared by every tenant a Manager hosts.
// Engines already pool their per-update maintenance scratch internally, and
// the wire codecs pool decode buffers process-wide; Pools covers what used
// to be per-server allocation — combined ingest batches and encode buffers —
// so memory cost tracks concurrent load, not resident tenant count.
//
// Slices above the retention caps are dropped instead of pooled so one
// pathological batch cannot pin a huge backing array forever.
type Pools struct {
	batches sync.Pool // *kcore.Batch
	buffers sync.Pool // *[]byte
}

const (
	maxPooledBatch  = 1 << 16 // updates
	maxPooledBuffer = 1 << 20 // bytes
)

// Batch returns a zero-length update slice with capacity at least capHint.
func (p *Pools) Batch(capHint int) kcore.Batch {
	if v, ok := p.batches.Get().(*kcore.Batch); ok && cap(*v) >= capHint {
		return (*v)[:0]
	}
	if capHint < 64 {
		capHint = 64
	}
	return make(kcore.Batch, 0, capHint)
}

// PutBatch returns a slice obtained from Batch. The caller must not retain
// any aliases.
func (p *Pools) PutBatch(b kcore.Batch) {
	if cap(b) == 0 || cap(b) > maxPooledBatch {
		return
	}
	b = b[:0]
	p.batches.Put(&b)
}

// Buffer returns a zero-length byte slice with capacity at least capHint.
func (p *Pools) Buffer(capHint int) []byte {
	if v, ok := p.buffers.Get().(*[]byte); ok && cap(*v) >= capHint {
		return (*v)[:0]
	}
	if capHint < 512 {
		capHint = 512
	}
	return make([]byte, 0, capHint)
}

// PutBuffer returns a slice obtained from Buffer.
func (p *Pools) PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuffer {
		return
	}
	b = b[:0]
	p.buffers.Put(&b)
}

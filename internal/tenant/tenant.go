// Package tenant hosts many independent k-core engines in one process.
//
// A Manager is a registry of named tenants. Each tenant owns an engine, an
// optional durable persist.Store rooted in a per-tenant subdirectory of the
// manager's data directory, and an Attachment — serving-plane state (ingest
// coalescer, watch ring, availability tracker) built by the owner through
// Options.Attach. The lifecycle is:
//
//   - create by touch: the first write to an unknown name admits a fresh
//     tenant (reads of unknown names fail with ErrUnknownTenant);
//   - lazy load: a tenant with durable state on disk is recovered from its
//     snapshot + WAL tail on first access, not at boot;
//   - idle eviction: a store-backed tenant that stays unreferenced for
//     Options.IdleAfter is snapshotted and closed, freeing its memory while
//     keeping it one touch away from serving again;
//   - bounded residency: at most MaxTenants tenants are resident at once;
//     admission beyond the bound fails with ErrTenantLimit.
//
// Acquire/Release reference counting makes eviction safe under load:
// eviction first closes the attachment (which must stop writers and wake
// blocked readers), waits for references to drain, then snapshots and closes
// the store.
package tenant

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"kcore"
	"kcore/internal/persist"
)

// DefaultName is the tenant the legacy single-tenant /v1 routes alias.
const DefaultName = "default"

// DefaultMaxTenants bounds residency when Options.MaxTenants is zero.
const DefaultMaxTenants = 64

var (
	// ErrUnknownTenant: the name is neither resident nor on disk, and the
	// access was not allowed to create it.
	ErrUnknownTenant = errors.New("unknown tenant")
	// ErrTenantLimit: admitting the tenant would exceed MaxTenants.
	ErrTenantLimit = errors.New("tenant limit reached")
	// ErrInvalidName: the name fails the tenant-name grammar.
	ErrInvalidName = errors.New("invalid tenant name")
	// ErrClosed: the manager has shut down.
	ErrClosed = errors.New("tenant manager closed")
	// ErrPinned: the tenant is pinned (the default tenant) and cannot be
	// evicted.
	ErrPinned = errors.New("tenant is pinned")
)

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// ValidName reports whether name can be used as a tenant name. Names double
// as directory names under the data dir, so the grammar is deliberately
// conservative: lowercase alphanumerics plus '.', '_', '-', starting with an
// alphanumeric, at most 64 bytes, and never containing "..".
func ValidName(name string) bool {
	return nameRE.MatchString(name) && !strings.Contains(name, "..")
}

// Attachment is owner state carried by a resident tenant — typically the
// serving plane. Close is called exactly once, during eviction or manager
// shutdown, before the tenant's store is snapshotted and closed. It must
// stop all writers into the engine and wake every blocked reader so the
// tenant's reference count can drain.
type Attachment interface {
	Close()
}

// Options configures a Manager.
type Options struct {
	// DataDir is the serving data directory. Named tenants persist under
	// DataDir/tenants/<name> (the directory root itself belongs to the
	// default tenant, preserving the single-tenant layout). Empty means
	// every tenant is memory-only; memory-only tenants are never
	// idle-evicted, since evicting without a snapshot would destroy data.
	DataDir string

	// MaxTenants bounds resident tenants (default DefaultMaxTenants).
	MaxTenants int

	// IdleAfter evicts store-backed, unreferenced tenants untouched for
	// this long. Zero disables idle eviction.
	IdleAfter time.Duration

	// Engine options applied to every tenant engine, fresh or recovered.
	Engine []kcore.Option

	// Persist is the store configuration template for tenant stores; the
	// Engine and Init fields are overridden per tenant.
	Persist persist.Options

	// Attach builds the owner's serving state once a tenant's engine (and
	// store, if durable) is ready. Runs once per residency, outside the
	// registry lock. Nil leaves tenants without attachments.
	Attach func(*Tenant) (Attachment, error)

	now func() time.Time // test hook
}

// Manager is the tenant registry. All methods are safe for concurrent use.
type Manager struct {
	opts  Options
	pools Pools
	stop  chan struct{}
	idle  chan struct{} // closed when the idle loop exits; nil if none

	mu      sync.Mutex
	tenants map[string]*Tenant
	closed  bool

	loads      uint64 // residencies recovered from disk
	creates    uint64 // residencies created fresh by touch
	evictions  uint64
	rejections uint64 // admissions refused at the tenant limit
}

// NewManager starts a manager (and its idle-eviction loop, when configured).
// Callers must Close it.
func NewManager(opts Options) *Manager {
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = DefaultMaxTenants
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	m := &Manager{
		opts:    opts,
		stop:    make(chan struct{}),
		tenants: make(map[string]*Tenant),
	}
	if opts.IdleAfter > 0 && opts.DataDir != "" {
		m.idle = make(chan struct{})
		go m.idleLoop()
	}
	return m
}

// Pools returns the scratch pools shared across this manager's tenants.
func (m *Manager) Pools() *Pools { return &m.pools }

// Tenant is one resident (or loading, or evicting) tenant. The engine,
// store, and attachment are immutable once the load completes.
type Tenant struct {
	name    string
	m       *Manager
	pinned  bool
	adopted bool // store owned by the caller; never snapshot/close it

	loaded   chan struct{} // closed when engine/store/att (or loadErr) are set
	engine   *kcore.Engine
	store    *persist.Store
	att      Attachment
	loadErr  error
	fromDisk bool

	mu        sync.Mutex
	cond      *sync.Cond // broadcast when refs drains to zero
	refs      int
	lastTouch time.Time
	closing   bool
	gone      chan struct{} // closed when the tenant has left the registry
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Engine returns the tenant's engine. Valid only while the caller holds a
// reference from Acquire (or, for adopted tenants, for the owner).
func (t *Tenant) Engine() *kcore.Engine { return t.engine }

// Store returns the tenant's durable store, or nil for memory-only tenants.
func (t *Tenant) Store() *persist.Store { return t.store }

// Attachment returns the serving state built by Options.Attach (nil if none).
func (t *Tenant) Attachment() Attachment { return t.att }

// Pinned reports whether the tenant is exempt from eviction.
func (t *Tenant) Pinned() bool { return t.pinned }

// FromDisk reports whether this residency was recovered from durable state
// (as opposed to created fresh by touch).
func (t *Tenant) FromDisk() bool { return t.fromDisk }

// Release drops a reference taken by Acquire.
func (t *Tenant) Release() {
	t.mu.Lock()
	t.refs--
	t.lastTouch = t.m.opts.now()
	if t.refs == 0 {
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

func (m *Manager) newResident(name string, pinned, adopted bool) *Tenant {
	t := &Tenant{
		name:      name,
		m:         m,
		pinned:    pinned,
		adopted:   adopted,
		loaded:    make(chan struct{}),
		gone:      make(chan struct{}),
		lastTouch: m.opts.now(),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Acquire resolves name to a resident tenant and takes a reference,
// recovering the tenant from its on-disk store — or, when create is true,
// admitting a fresh one — as needed. The caller must Release the tenant when
// done with it; eviction waits for references to drain. Reads of names with
// no durable state fail with ErrUnknownTenant unless create is set.
func (m *Manager) Acquire(name string, create bool) (*Tenant, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrClosed
		}
		if t, ok := m.tenants[name]; ok {
			m.mu.Unlock()
			<-t.loaded
			if t.loadErr != nil {
				return nil, t.loadErr
			}
			t.mu.Lock()
			if t.closing {
				t.mu.Unlock()
				<-t.gone // wait out the eviction, then resolve afresh
				continue
			}
			t.refs++
			t.lastTouch = m.opts.now()
			t.mu.Unlock()
			return t, nil
		}
		onDisk := m.opts.DataDir != "" &&
			persist.HasState(persist.TenantDir(m.opts.DataDir, name))
		if !onDisk && !create {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
		}
		if len(m.tenants) >= m.opts.MaxTenants {
			m.rejections++
			m.mu.Unlock()
			return nil, fmt.Errorf("%w (max %d resident)", ErrTenantLimit, m.opts.MaxTenants)
		}
		t := m.newResident(name, false, false)
		t.fromDisk = onDisk
		t.refs = 1
		m.tenants[name] = t
		if onDisk {
			m.loads++
		} else {
			m.creates++
		}
		m.mu.Unlock()

		m.load(t)
		if t.loadErr != nil {
			// The residency never served; remove it so a later touch can
			// retry (e.g. after a transient disk error heals).
			m.mu.Lock()
			delete(m.tenants, name)
			m.mu.Unlock()
			close(t.gone)
			return nil, t.loadErr
		}
		return t, nil
	}
}

// load opens the tenant's store (or builds a fresh engine) and attaches the
// serving plane, then publishes the result by closing t.loaded.
func (m *Manager) load(t *Tenant) {
	defer close(t.loaded)
	if m.opts.DataDir != "" {
		popts := m.opts.Persist
		popts.Engine = m.opts.Engine
		popts.Init = nil
		st, err := persist.Open(persist.TenantDir(m.opts.DataDir, t.name), popts)
		if err != nil {
			t.loadErr = fmt.Errorf("tenant %q: %w", t.name, err)
			return
		}
		t.store = st
		t.engine = st.Engine()
	} else {
		t.engine = kcore.NewEngine(m.opts.Engine...)
	}
	if m.opts.Attach != nil {
		att, err := m.opts.Attach(t)
		if err != nil {
			if t.store != nil {
				t.store.Close()
				t.store = nil
			}
			t.engine = nil
			t.loadErr = fmt.Errorf("tenant %q: attach: %w", t.name, err)
			return
		}
		t.att = att
	}
}

// Adopt registers an externally constructed engine/store pair — the boot
// path's default tenant — as a resident, pinned tenant. The manager treats
// an adopted store as caller-owned: it closes the attachment on shutdown but
// never snapshots or closes the store; its owner does, after Manager.Close.
func (m *Manager) Adopt(name string, e *kcore.Engine, st *persist.Store) (*Tenant, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := m.tenants[name]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("tenant %q already resident", name)
	}
	if len(m.tenants) >= m.opts.MaxTenants {
		m.rejections++
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (max %d resident)", ErrTenantLimit, m.opts.MaxTenants)
	}
	t := m.newResident(name, true, true)
	t.engine = e
	t.store = st
	t.fromDisk = st != nil
	m.tenants[name] = t
	m.mu.Unlock()

	if m.opts.Attach != nil {
		att, err := m.opts.Attach(t)
		if err != nil {
			t.loadErr = fmt.Errorf("tenant %q: attach: %w", t.name, err)
			close(t.loaded)
			m.mu.Lock()
			delete(m.tenants, name)
			m.mu.Unlock()
			close(t.gone)
			return nil, t.loadErr
		}
		t.att = att
	}
	close(t.loaded)
	return t, nil
}

// Evict removes tenant name from residency: new requests stop resolving to
// it, its attachment is closed (draining writers and waking watchers), and
// once references drain its store is snapshotted and closed, leaving the
// state one lazy load away. Evicting a memory-only tenant discards its
// graph. Evicting a name that is on disk but not resident is a no-op;
// a fully unknown name is ErrUnknownTenant; pinned tenants refuse with
// ErrPinned.
func (m *Manager) Evict(name string) error {
	if !ValidName(name) {
		return fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	m.mu.Lock()
	t, ok := m.tenants[name]
	if !ok {
		onDisk := m.opts.DataDir != "" &&
			persist.HasState(persist.TenantDir(m.opts.DataDir, name))
		m.mu.Unlock()
		if onDisk {
			return nil // already cold
		}
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if t.pinned {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPinned, name)
	}
	m.mu.Unlock()
	m.retire(t, false)
	return nil
}

// retire drives one tenant through shutdown. With idleOnly set it aborts
// unless the tenant is still unreferenced and idle-expired at decision time
// (an Acquire may have raced the idle sweep).
func (m *Manager) retire(t *Tenant, idleOnly bool) {
	<-t.loaded
	if t.loadErr != nil {
		return // failed loads remove themselves in Acquire
	}
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		<-t.gone
		return
	}
	if idleOnly && (t.refs > 0 || m.opts.now().Sub(t.lastTouch) < m.opts.IdleAfter) {
		t.mu.Unlock()
		return
	}
	t.closing = true
	t.mu.Unlock()

	if t.att != nil {
		t.att.Close()
	}
	t.mu.Lock()
	for t.refs > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()

	if t.store != nil && !t.adopted {
		// ErrCompaction is partial success: the snapshot itself landed and
		// the WAL tail still covers anything it missed, so the state reloads
		// intact either way.
		if _, err := t.store.Snapshot(); err != nil && !errors.Is(err, persist.ErrCompaction) {
			// Snapshot failed outright; the WAL up to the last applied batch
			// remains the source of truth for the next load.
			_ = err
		}
		t.store.Close()
	}

	m.mu.Lock()
	delete(m.tenants, t.name)
	m.evictions++
	m.mu.Unlock()
	close(t.gone)
}

func (m *Manager) idleLoop() {
	defer close(m.idle)
	interval := m.opts.IdleAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.sweepIdle()
		}
	}
}

func (m *Manager) sweepIdle() {
	m.mu.Lock()
	var victims []*Tenant
	for _, t := range m.tenants {
		if t.pinned {
			continue
		}
		select {
		case <-t.loaded:
		default:
			continue // still loading
		}
		if t.loadErr != nil || t.store == nil {
			continue // memory-only tenants are never idle-evicted
		}
		t.mu.Lock()
		expired := t.refs == 0 && !t.closing &&
			m.opts.now().Sub(t.lastTouch) >= m.opts.IdleAfter
		t.mu.Unlock()
		if expired {
			victims = append(victims, t)
		}
	}
	m.mu.Unlock()
	for _, t := range victims {
		m.retire(t, true)
	}
}

// Close evicts every resident tenant — closing attachments, draining
// references, snapshotting owned stores — and shuts the manager down.
// Adopted stores are left open for their owners. Safe to call more than
// once.
func (m *Manager) Close() {
	m.mu.Lock()
	first := !m.closed
	m.closed = true
	all := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		all = append(all, t)
	}
	m.mu.Unlock()
	if first {
		close(m.stop)
	}
	if m.idle != nil {
		<-m.idle
	}
	for _, t := range all {
		m.retire(t, false)
	}
}

// State describes where a tenant is in its lifecycle.
type State string

const (
	StateLoading  State = "loading"  // residency admitted, recovery in progress
	StateReady    State = "ready"    // serving
	StateEvicting State = "evicting" // draining references / flushing
	StateUnloaded State = "unloaded" // durable state on disk, not resident
)

// Info is a point-in-time snapshot of one tenant for listings.
type Info struct {
	Name     string
	State    State
	Pinned   bool
	Resident bool
	Durable  bool // has (or is) durable state
	Refs     int
	IdleFor  time.Duration // time since last touch; 0 while referenced
	Seq      uint64
	Vertices int
	Edges    int
}

// List returns every known tenant — resident ones plus durable ones still
// cold on disk — sorted by name.
func (m *Manager) List() []Info {
	m.mu.Lock()
	residents := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		residents = append(residents, t)
	}
	m.mu.Unlock()

	now := m.opts.now()
	infos := make(map[string]Info, len(residents))
	for _, t := range residents {
		in := Info{Name: t.name, Resident: true, Pinned: t.pinned}
		select {
		case <-t.loaded:
			if t.loadErr != nil {
				continue
			}
			t.mu.Lock()
			in.Refs = t.refs
			if t.refs == 0 {
				in.IdleFor = now.Sub(t.lastTouch)
			}
			if t.closing {
				in.State = StateEvicting
			} else {
				in.State = StateReady
			}
			t.mu.Unlock()
			in.Durable = t.store != nil
			in.Vertices, in.Edges, _, in.Seq = t.engine.Counts()
		default:
			in.State = StateLoading
		}
		infos[t.name] = in
	}
	if m.opts.DataDir != "" {
		names, _ := persist.ListTenantDirs(m.opts.DataDir)
		for _, n := range names {
			if _, ok := infos[n]; !ok {
				infos[n] = Info{Name: n, State: StateUnloaded, Durable: true}
			}
		}
	}
	out := make([]Info, 0, len(infos))
	for _, in := range infos {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats reports manager-level counters.
type Stats struct {
	Resident   int
	MaxTenants int
	Loads      uint64 // residencies recovered from disk
	Creates    uint64 // residencies created fresh by touch
	Evictions  uint64
	Rejections uint64 // admissions refused at the tenant limit
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Resident:   len(m.tenants),
		MaxTenants: m.opts.MaxTenants,
		Loads:      m.loads,
		Creates:    m.creates,
		Evictions:  m.evictions,
		Rejections: m.rejections,
	}
}

package tenant

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kcore"
	"kcore/internal/persist"
)

type testAtt struct {
	closed atomic.Bool
}

func (a *testAtt) Close() { a.closed.Store(true) }

// newTestManager builds a manager with a durable data dir and an attachment
// recorder.
func newTestManager(t *testing.T, opts Options) (*Manager, *sync.Map) {
	t.Helper()
	var atts sync.Map // name -> *testAtt (last attachment per name)
	opts.Attach = func(tn *Tenant) (Attachment, error) {
		a := &testAtt{}
		atts.Store(tn.Name(), a)
		return a, nil
	}
	opts.Persist.Sync = persist.SyncOff
	m := NewManager(opts)
	t.Cleanup(m.Close)
	return m, &atts
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"default", "a", "t-1", "team.red", "a_b", "0x9"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	long := ""
	for i := 0; i < 65; i++ {
		long += "a"
	}
	for _, bad := range []string{"", ".", "..", "a..b", "-x", "_x", "A", "a/b", "a b", long, "café"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

func TestCreateByTouchAndUnknown(t *testing.T) {
	m, _ := newTestManager(t, Options{DataDir: t.TempDir()})

	if _, err := m.Acquire("ghost", false); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("read of unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	if _, err := m.Acquire("no/slash", true); !errors.Is(err, ErrInvalidName) {
		t.Fatalf("invalid name: err = %v, want ErrInvalidName", err)
	}

	tn, err := m.Acquire("alpha", true)
	if err != nil {
		t.Fatal(err)
	}
	if tn.Store() == nil || tn.FromDisk() {
		t.Fatalf("fresh durable tenant: store=%v fromDisk=%v", tn.Store(), tn.FromDisk())
	}
	if _, err := tn.Engine().AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	tn.Release()

	// Now known: reads resolve without create.
	tn2, err := m.Acquire("alpha", false)
	if err != nil {
		t.Fatal(err)
	}
	if tn2 != tn {
		t.Fatal("second acquire returned a different residency")
	}
	tn2.Release()

	st := m.Stats()
	if st.Creates != 1 || st.Loads != 0 || st.Resident != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLazyReloadAfterEvict(t *testing.T) {
	m, atts := newTestManager(t, Options{DataDir: t.TempDir()})
	tn, err := m.Acquire("alpha", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := tn.Engine().AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	tn.Release()

	if err := m.Evict("alpha"); err != nil {
		t.Fatal(err)
	}
	if a, _ := atts.Load("alpha"); !a.(*testAtt).closed.Load() {
		t.Fatal("eviction did not close the attachment")
	}
	if m.Stats().Resident != 0 {
		t.Fatalf("resident = %d after evict", m.Stats().Resident)
	}
	// Cold but durable: listed as unloaded, evicting again is a no-op.
	infos := m.List()
	if len(infos) != 1 || infos[0].State != StateUnloaded || !infos[0].Durable {
		t.Fatalf("List after evict = %+v", infos)
	}
	if err := m.Evict("alpha"); err != nil {
		t.Fatal(err)
	}

	// A read (not a write) lazily reloads the evicted state.
	tn2, err := m.Acquire("alpha", false)
	if err != nil {
		t.Fatal(err)
	}
	defer tn2.Release()
	if !tn2.FromDisk() {
		t.Fatal("reload not marked fromDisk")
	}
	if got := tn2.Engine().Seq(); got != 5 {
		t.Fatalf("reloaded seq = %d, want 5", got)
	}
	if !tn2.Engine().HasEdge(2, 3) {
		t.Fatal("reloaded engine missing edge")
	}
	if st := m.Stats(); st.Loads != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTenantLimit(t *testing.T) {
	m, _ := newTestManager(t, Options{DataDir: t.TempDir(), MaxTenants: 2})
	for _, n := range []string{"a", "b"} {
		tn, err := m.Acquire(n, true)
		if err != nil {
			t.Fatal(err)
		}
		tn.Release()
	}
	if _, err := m.Acquire("c", true); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("over-limit admit: err = %v, want ErrTenantLimit", err)
	}
	if m.Stats().Rejections != 1 {
		t.Fatalf("rejections = %d", m.Stats().Rejections)
	}
	// Evicting one frees a residency slot.
	if err := m.Evict("a"); err != nil {
		t.Fatal(err)
	}
	tn, err := m.Acquire("c", true)
	if err != nil {
		t.Fatalf("post-evict admit: %v", err)
	}
	tn.Release()
}

func TestEvictPinnedAndUnknown(t *testing.T) {
	m, _ := newTestManager(t, Options{DataDir: t.TempDir()})
	if _, err := m.Adopt(DefaultName, kcore.NewEngine(), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict(DefaultName); !errors.Is(err, ErrPinned) {
		t.Fatalf("evict default: err = %v, want ErrPinned", err)
	}
	if err := m.Evict("nobody"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("evict unknown: err = %v, want ErrUnknownTenant", err)
	}
}

func TestAdoptedStoreNotClosedByManager(t *testing.T) {
	dir := t.TempDir()
	st, err := persist.Open(dir, persist.Options{Sync: persist.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	m, atts := newTestManager(t, Options{DataDir: dir})
	if _, err := m.Adopt(DefaultName, st.Engine(), st); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if a, _ := atts.Load(DefaultName); !a.(*testAtt).closed.Load() {
		t.Fatal("manager close did not close the default attachment")
	}
	// The adopted store must still be usable by its owner.
	if _, err := st.Engine().AddEdge(7, 8); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIdleEviction(t *testing.T) {
	var clock atomic.Int64 // fake time, nanoseconds
	now := func() time.Time { return time.Unix(0, clock.Load()) }
	m, atts := newTestManager(t, Options{
		DataDir:   t.TempDir(),
		IdleAfter: 40 * time.Millisecond,
		now:       now,
	})
	tn, err := m.Acquire("alpha", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Engine().AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}

	// Referenced tenants never idle out, no matter the clock.
	clock.Add(int64(time.Hour))
	time.Sleep(60 * time.Millisecond) // several sweep intervals
	if m.Stats().Evictions != 0 {
		t.Fatal("idle sweep evicted a referenced tenant")
	}
	tn.Release() // release touches, restarting the idle clock

	clock.Add(int64(time.Hour))
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Evictions == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", m.Stats().Evictions)
	}
	if a, _ := atts.Load("alpha"); !a.(*testAtt).closed.Load() {
		t.Fatal("idle eviction did not close the attachment")
	}
	// State survived the eviction.
	tn2, err := m.Acquire("alpha", false)
	if err != nil {
		t.Fatal(err)
	}
	defer tn2.Release()
	if !tn2.Engine().HasEdge(0, 1) {
		t.Fatal("idle-evicted state lost")
	}
}

func TestMemoryOnlyTenantsNotIdleEvicted(t *testing.T) {
	// No data dir: idle loop must not start, and nothing is evicted.
	m, _ := newTestManager(t, Options{IdleAfter: time.Millisecond})
	tn, err := m.Acquire("mem", true)
	if err != nil {
		t.Fatal(err)
	}
	if tn.Store() != nil {
		t.Fatal("memory-only tenant has a store")
	}
	tn.Release()
	time.Sleep(30 * time.Millisecond)
	if m.Stats().Evictions != 0 {
		t.Fatal("memory-only tenant was idle-evicted")
	}
}

// TestEvictionChurnRace hammers acquire/release against evictions under
// -race: references always drain, evictions never lose applied state, and a
// racing Acquire either lands before the eviction or reloads after it.
func TestEvictionChurnRace(t *testing.T) {
	m, _ := newTestManager(t, Options{DataDir: t.TempDir()})
	const workers = 4
	var wg sync.WaitGroup
	var writes atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tn, err := m.Acquire("churn", true)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if _, err := tn.Engine().AddEdge(w*10000+i, w*10000+i+1); err == nil {
					writes.Add(1)
				}
				tn.Release()
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		time.Sleep(2 * time.Millisecond)
		if err := m.Evict("churn"); err != nil && !errors.Is(err, ErrUnknownTenant) {
			t.Errorf("evict: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	tn, err := m.Acquire("churn", false)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Release()
	if got, want := tn.Engine().Seq(), uint64(writes.Load()); got != want {
		t.Fatalf("final seq = %d, want %d applied writes", got, want)
	}
}

func TestListStates(t *testing.T) {
	m, _ := newTestManager(t, Options{DataDir: t.TempDir()})
	if _, err := m.Adopt(DefaultName, kcore.NewEngine(), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tn, err := m.Acquire(fmt.Sprintf("t%d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Engine().AddEdge(0, i+1); err != nil {
			t.Fatal(err)
		}
		tn.Release()
	}
	if err := m.Evict("t1"); err != nil {
		t.Fatal(err)
	}
	infos := m.List()
	byName := map[string]Info{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if len(infos) != 4 {
		t.Fatalf("List = %+v, want 4 tenants", infos)
	}
	if in := byName[DefaultName]; in.State != StateReady || !in.Pinned || in.Durable {
		t.Fatalf("default info = %+v", in)
	}
	if in := byName["t0"]; in.State != StateReady || in.Seq != 1 || in.Edges != 1 {
		t.Fatalf("t0 info = %+v", in)
	}
	if in := byName["t1"]; in.State != StateUnloaded || !in.Durable || in.Resident {
		t.Fatalf("t1 info = %+v", in)
	}
	// Sorted by name.
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Fatalf("List not sorted: %+v", infos)
		}
	}
}

func TestAcquireAfterClose(t *testing.T) {
	m, _ := newTestManager(t, Options{DataDir: t.TempDir()})
	m.Close()
	if _, err := m.Acquire("x", true); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: err = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

func TestPoolsRoundTrip(t *testing.T) {
	var p Pools
	b := p.Batch(10)
	if len(b) != 0 || cap(b) < 10 {
		t.Fatalf("Batch: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, kcore.Add(1, 2))
	p.PutBatch(b)
	b2 := p.Batch(1)
	if len(b2) != 0 {
		t.Fatalf("recycled batch not reset: len=%d", len(b2))
	}
	buf := p.Buffer(100)
	if len(buf) != 0 || cap(buf) < 100 {
		t.Fatalf("Buffer: len=%d cap=%d", len(buf), cap(buf))
	}
	p.PutBuffer(append(buf, 1, 2, 3))
	if got := p.Buffer(1); len(got) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(got))
	}
	// Oversized slices are dropped, not pooled.
	p.PutBatch(make(kcore.Batch, maxPooledBatch+1))
	p.PutBuffer(make([]byte, maxPooledBuffer+1))
}

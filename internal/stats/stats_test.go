package stats

import (
	"strings"
	"testing"
)

func TestBucketize(t *testing.T) {
	vals := []int{1, 2, 3, 4, 10, 11, 100, 101, 1000, 1001}
	got := Bucketize(vals)
	want := []float64{0.3, 0.2, 0.2, 0.2, 0.1}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bucket %d = %v want %v", i, got[i], want[i])
		}
	}
	sum := 0.0
	for _, p := range got {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("buckets sum to %v", sum)
	}
	empty := Bucketize(nil)
	for _, p := range empty {
		if p != 0 {
			t.Fatal("empty input should give zeros")
		}
	}
	if len(BucketLabels) != len(Buckets)+1 {
		t.Fatal("labels/buckets mismatch")
	}
}

func TestCDF(t *testing.T) {
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := CDF(vals, []int{0, 5, 10, 20})
	want := []float64{0, 0.5, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CDF[%d]=%v want %v", i, got[i], want[i])
		}
	}
	if out := CDF(nil, []int{1}); out[0] != 0 {
		t.Fatal("empty CDF should be 0")
	}
}

func TestPercentile(t *testing.T) {
	vals := []int{5, 1, 9, 3, 7}
	if p := Percentile(vals, 0); p != 1 {
		t.Fatalf("p0=%d", p)
	}
	if p := Percentile(vals, 100); p != 9 {
		t.Fatalf("p100=%d", p)
	}
	if p := Percentile(vals, 50); p != 5 && p != 7 {
		t.Fatalf("p50=%d", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("zero ratio should be 0")
	}
	r.Add(10, 2)
	r.Add(10, 3)
	if v := r.Value(); v != 4 {
		t.Fatalf("ratio=%v want 4", v)
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "123456")
	s := tb.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "123456") {
		t.Fatalf("table output missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	if len(lines[0]) != len(lines[2]) {
		t.Fatalf("misaligned rows:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F=%s", F(1.23456))
	}
	if FSec(0.12345) != "0.1235" && FSec(0.12345) != "0.1234" {
		t.Fatalf("FSec=%s", FSec(0.12345))
	}
	if I(42) != "42" {
		t.Fatalf("I=%s", I(42))
	}
}

// Package stats provides the small statistics and formatting toolkit the
// experiment drivers use: the paper's bucketed distributions (Fig. 1),
// cumulative distributions (Figs. 5 and 10), ratio accumulators (Fig. 2 and
// Fig. 9), and plain-text table rendering.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Buckets is the paper's Fig. 1 bucketing of visited-set sizes:
// <=3, <=10, <=100, <=1000, >1000.
var Buckets = []int{3, 10, 100, 1000}

// BucketLabels are the display labels matching Buckets plus the overflow.
var BucketLabels = []string{"<=3", "<=10", "<=100", "<=1000", ">1000"}

// Bucketize counts how many values fall into each Fig. 1 bucket and returns
// proportions summing to 1 (all zeros for empty input).
func Bucketize(values []int) []float64 {
	counts := make([]int, len(Buckets)+1)
	for _, v := range values {
		placed := false
		for i, b := range Buckets {
			if v <= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(Buckets)]++
		}
	}
	out := make([]float64, len(counts))
	if len(values) == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(len(values))
	}
	return out
}

// CDF summarizes a sample as cumulative proportions at the given
// thresholds: result[i] = fraction of values <= thresholds[i].
func CDF(values []int, thresholds []int) []float64 {
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	out := make([]float64, len(thresholds))
	if len(sorted) == 0 {
		return out
	}
	for i, t := range thresholds {
		idx := sort.SearchInts(sorted, t+1)
		out[i] = float64(idx) / float64(len(sorted))
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of values using the
// nearest-rank method; 0 for empty input.
func Percentile(values []int, p float64) int {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	rank := int(p / 100 * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Ratio is a sum-of-numerator over sum-of-denominator accumulator
// (the paper's sum|V'| / sum|V*| metric).
type Ratio struct {
	Num int64
	Den int64
}

// Add accumulates one observation.
func (r *Ratio) Add(num, den int) {
	r.Num += int64(num)
	r.Den += int64(den)
}

// Value returns Num/Den (0 when Den is 0).
func (r *Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Table renders rows as an aligned plain-text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for i, w := range width {
		total += w
		if i > 0 {
			total += 2
		}
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// F formats a float compactly (3 significant decimals, trailing zeros kept
// for alignment).
func F(x float64) string { return fmt.Sprintf("%.3f", x) }

// FSec formats a duration in seconds with 4 decimals.
func FSec(sec float64) string { return fmt.Sprintf("%.4f", sec) }

// I formats an int.
func I(x int) string { return fmt.Sprintf("%d", x) }

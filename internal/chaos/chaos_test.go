package chaos

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// TestChaosSoak runs the seeded chaos schedule end to end. The default run
// covers a handful of seeds so `go test ./...` stays fast; the full
// 25-seed soak documented in the README is
//
//	KCORE_CHAOS_SEEDS=25 go test ./internal/chaos -run TestChaosSoak -timeout 30m
//
// and a failing seed is replayed alone with KCORE_CHAOS_SEED=<n>.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}

	if env := os.Getenv("KCORE_CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("KCORE_CHAOS_SEED=%q: %v", env, err)
		}
		runSeed(t, seed)
		return
	}

	seeds := 3
	if env := os.Getenv("KCORE_CHAOS_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("KCORE_CHAOS_SEEDS=%q: want a positive integer", env)
		}
		seeds = n
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		runSeed(t, seed)
	}
}

func runSeed(t *testing.T, seed uint64) {
	t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
		rep, err := Run(Config{
			Seed:       seed,
			Episodes:   10,
			EpisodeDur: 120 * time.Millisecond,
			Logf:       t.Logf,
		})
		if err != nil {
			t.Fatalf("seed %d: %v (report: %+v)", seed, err, rep)
		}
		// The schedule always includes a disk outage or a WAL seal, so the
		// run must have exercised degraded mode and recovered from it.
		if rep.Writes == 0 {
			t.Fatalf("seed %d: no writes attempted", seed)
		}
		if rep.Applied == 0 {
			t.Fatalf("seed %d: no writes applied", seed)
		}
		if rep.HealthzProbes == 0 {
			t.Fatalf("seed %d: health prober never ran", seed)
		}
		if rep.HealthzFailures != 0 {
			t.Fatalf("seed %d: healthz missed %d probes", seed, rep.HealthzFailures)
		}
		if rep.Degradations != rep.Recoveries {
			t.Fatalf("seed %d: %d degradations, %d recoveries", seed, rep.Degradations, rep.Recoveries)
		}
		t.Logf("seed %d: %d writes (%.1f%% available), %d persist-failed, %d degraded, %d panics contained, %d probes, median recovery %.1fms, final seq %d",
			seed, rep.Writes, 100*rep.WriteAvailability, rep.PersistFailed,
			rep.RejectedDegraded, rep.EnginePanics, rep.HealthzProbes,
			rep.MedianRecoveryMS, rep.FinalSeq)
	})
}

// Package chaos is a deterministic fault-injection soak harness for the
// full serving stack: it stands up a primary kcore-serve (engine +
// persistence + publisher + HTTP server on a real listener) with two
// replicating followers, runs concurrent writers against it, and drives a
// seeded schedule of fault episodes through the internal/fault plane —
// disk write blips and outages, WAL seals, injected apply panics, apply
// delays, follower connection drops, slow SSE consumers, and follower
// kills with re-bootstrap.
//
// Throughout the run a health prober polls GET /v1/healthz and asserts it
// ALWAYS answers (liveness is never lost, only write availability), and
// measures degraded→healthy recovery times. Each writer keeps a local
// model of its (vertex-disjoint) edge set, committing the model exactly
// when the server acknowledged application — including "applied but not
// durable" persistence_failed responses — and rolling back on overloaded /
// degraded / shutting-down / internal rejections. Because writers own
// disjoint vertex ranges, the union of their final models IS the final
// graph, so Run can prove end-to-end correctness three ways:
//
//   - the primary's core numbers equal a fresh fault-free engine fed the
//     union edge set (classification exactness: one mis-classified write
//     diverges the models and the cores differ);
//   - both followers converge to the primary's seq with identical cores
//     (no frame lost or reordered across drops, kills and re-bootstraps);
//   - reopening the primary's data directory recovers the identical state
//     at the identical seq (the WAL/snapshot chain is gap-free).
//
// Everything is seeded: Config.Seed fixes the fault plane, the episode
// schedule, and every writer's workload, so a failing run is replayed by
// rerunning its seed.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kcore"
	"kcore/internal/fault"
	"kcore/internal/persist"
	"kcore/internal/replicate"
	"kcore/internal/server"
	"kcore/internal/server/wire"
)

// Config tunes one chaos run. The zero value of every field picks a
// default; Seed 0 is a valid (and fixed) seed.
type Config struct {
	// Seed fixes the fault plane, episode schedule and writer workloads.
	Seed uint64
	// Episodes is the number of fault episodes to run. The first len(kinds)
	// episodes cover every episode kind once (in seeded order), the rest
	// are drawn at random. Default 12.
	Episodes int
	// EpisodeDur is how long each episode's faults stay armed before the
	// quiesce. Default 250ms.
	EpisodeDur time.Duration
	// Writers is the number of concurrent writer goroutines. Each owns a
	// disjoint vertex range. Default 4.
	Writers int
	// VertexSpan is the width of each writer's vertex range. Default 24.
	VertexSpan int
	// BatchSize caps the updates per writer batch (each batch draws
	// 1..BatchSize). Default 8.
	BatchSize int
	// Followers is the replicating follower count. Default 2.
	Followers int
	// Dir is the primary's data directory. Empty creates (and removes) a
	// temp dir.
	Dir string
	// Logf, when non-nil, receives progress lines (episode starts, quiesce
	// results). Nil is silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Episodes <= 0 {
		c.Episodes = 12
	}
	if c.EpisodeDur <= 0 {
		c.EpisodeDur = 250 * time.Millisecond
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.VertexSpan <= 0 {
		c.VertexSpan = 24
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Followers <= 0 {
		c.Followers = 2
	}
	return c
}

// Report is the outcome of one chaos run. A non-nil Report is returned
// even alongside an error, so callers can see how far the run got.
type Report struct {
	Seed     uint64 `json:"seed"`
	Episodes int    `json:"episodes"`

	// Writer outcomes. Applied includes PersistFailed (the batch took
	// effect; only durability lagged).
	Writes             int     `json:"writes"`
	Applied            int     `json:"applied"`
	PersistFailed      int     `json:"persist_failed"`
	RejectedDegraded   int     `json:"rejected_degraded"`
	RejectedOverloaded int     `json:"rejected_overloaded"`
	RejectedInternal   int     `json:"rejected_internal"`
	WriteAvailability  float64 `json:"write_availability"`

	// Liveness: healthz must answer every probe, fault or no fault.
	HealthzProbes   int `json:"healthz_probes"`
	HealthzFailures int `json:"healthz_failures"`

	// Degraded-mode accounting, observed through /v1/healthz transitions.
	Degradations     int       `json:"degradations"`
	Recoveries       int       `json:"recoveries"`
	RecoveryMS       []float64 `json:"recovery_ms"`
	MedianRecoveryMS float64   `json:"median_recovery_ms"`

	// EnginePanics is the primary engine's quarantined-batch count
	// (injected apply panics contained by the engine).
	EnginePanics  uint64 `json:"engine_panics"`
	FollowerKills int    `json:"follower_kills"`

	FinalSeq   uint64  `json:"final_seq"`
	FinalEdges int     `json:"final_edges"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// episode kinds, in coverage order before the schedule goes random.
var kinds = []string{
	"disk-blip", "disk-outage", "wal-seal", "apply-panic",
	"apply-delay", "conn-drop", "slow-sse", "follower-kill",
}

// writer drives one vertex-disjoint workload and records what the server
// acknowledged.
type writer struct {
	id     int
	lo, hi int // vertex range [lo, hi)
	batch  int
	rng    *rand.Rand
	client *server.Client
	model  map[[2]int]bool
	// stop asks the writer to exit at the next batch boundary. In-flight
	// requests always run to completion: cancelling one mid-flight would
	// leave its outcome unknown (the server may have applied it), and an
	// unknown outcome breaks the differential model.
	stop chan struct{}

	writes, applied, persistFailed          int
	rejDegraded, rejOverloaded, rejInternal int
	fatal                                   error
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (w *writer) run(ctx context.Context) {
	for {
		select {
		case <-w.stop:
			return
		case <-ctx.Done():
			return
		default:
		}
		updates, staged := w.propose()
		if len(updates) == 0 {
			continue
		}
		w.writes++
		_, err := w.client.Batch(ctx, updates)
		switch classify(err) {
		case outcomeApplied:
			w.applied++
			w.model = staged
		case outcomePersistFailed:
			w.applied++
			w.persistFailed++
			w.model = staged
		case outcomeDegraded:
			w.rejDegraded++
		case outcomeOverloaded:
			w.rejOverloaded++
		case outcomeInternal:
			w.rejInternal++
		case outcomeCtxDone:
			return
		default:
			w.fatal = fmt.Errorf("writer %d: unclassifiable batch outcome: %w", w.id, err)
			return
		}
		// A short seeded pause keeps the coalescer mixing requests from
		// different writers without saturating MaxPending.
		select {
		case <-w.stop:
			return
		case <-ctx.Done():
			return
		case <-time.After(time.Duration(w.rng.IntN(400)) * time.Microsecond):
		}
	}
}

// propose builds the next batch against a staged copy of the model, so a
// rejected batch rolls back by discarding the copy.
func (w *writer) propose() ([]wire.Update, map[[2]int]bool) {
	staged := make(map[[2]int]bool, len(w.model)+w.rng.IntN(8))
	for k := range w.model {
		staged[k] = true
	}
	n := 1 + w.rng.IntN(w.batch)
	updates := make([]wire.Update, 0, n)
	for i := 0; i < n; i++ {
		u := w.lo + w.rng.IntN(w.hi-w.lo)
		v := w.lo + w.rng.IntN(w.hi-w.lo)
		if u == v {
			continue
		}
		k := edgeKey(u, v)
		if staged[k] {
			delete(staged, k)
			updates = append(updates, wire.Update{Op: wire.OpRemove, U: u, V: v})
		} else {
			staged[k] = true
			updates = append(updates, wire.Update{Op: wire.OpAdd, U: u, V: v})
		}
	}
	return updates, staged
}

type outcome int

const (
	outcomeApplied outcome = iota
	outcomePersistFailed
	outcomeDegraded
	outcomeOverloaded
	outcomeInternal
	outcomeCtxDone
	outcomeUnknown
)

// classify maps a Batch error to whether the batch took effect. The
// differential core check downstream proves these rules exact: a single
// wrong classification diverges the writer model from the engine and the
// final cores disagree.
func classify(err error) outcome {
	if err == nil {
		return outcomeApplied
	}
	var we *wire.Error
	if errors.As(err, &we) {
		switch we.Code {
		case wire.CodePersistenceFailed:
			// Applied; only durability failed (deferred frame heals later).
			return outcomePersistFailed
		case wire.CodeDegraded:
			return outcomeDegraded
		case wire.CodeOverloaded:
			return outcomeOverloaded
		case wire.CodeInternal:
			// Panic containment: the probe fires before any mutation, so a
			// quarantined batch is a clean rejection.
			return outcomeInternal
		case wire.CodeShuttingDown:
			return outcomeCtxDone
		}
		return outcomeUnknown
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return outcomeCtxDone
	}
	return outcomeUnknown
}

// prober polls healthz and tracks liveness plus degraded→ok transitions.
type prober struct {
	client *server.Client

	mu         sync.Mutex
	probes     int
	failures   int
	inDegraded bool
	degradedAt time.Time
	recoveries []time.Duration
	degrades   int
}

// snapshot copies the prober's counters into the report.
func (p *prober) snapshot(rep *Report) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep.HealthzProbes = p.probes
	rep.HealthzFailures = p.failures
	rep.Degradations = p.degrades
	rep.Recoveries = len(p.recoveries)
	rep.RecoveryMS = rep.RecoveryMS[:0]
	for _, d := range p.recoveries {
		rep.RecoveryMS = append(rep.RecoveryMS, float64(d.Microseconds())/1000)
	}
}

func (p *prober) run(ctx context.Context) {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		h, err := p.client.Health(hctx)
		cancel()
		if ctx.Err() != nil {
			return
		}
		p.mu.Lock()
		p.probes++
		if err != nil {
			p.failures++
		} else {
			switch {
			case h.Status == "degraded" && !p.inDegraded:
				p.inDegraded = true
				p.degradedAt = time.Now()
				p.degrades++
			case h.Status == "ok" && p.inDegraded:
				p.inDegraded = false
				p.recoveries = append(p.recoveries, time.Since(p.degradedAt))
			}
		}
		p.mu.Unlock()
	}
}

// Run executes one seeded chaos soak and returns its report. err is
// non-nil when any invariant failed (healthz missed a probe, cores
// diverged, followers failed to converge, recovery state mismatched).
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Seed: cfg.Seed, Episodes: cfg.Episodes}
	start := time.Now()

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "kcore-chaos-*")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(dir)
	}

	// Primary: faulted store + engine apply probe + publisher + server on a
	// real listener. The listener itself stays un-faulted so every writer
	// POST has an unambiguous outcome (connection faults are exercised on
	// the follower dialers and the raw slow-SSE connection instead).
	pl := fault.New(cfg.Seed)
	st, err := persist.Open(dir, persist.Options{
		Sync:         persist.SyncOff,
		Fault:        pl,
		RetryBackoff: 200 * time.Microsecond,
	})
	if err != nil {
		return rep, fmt.Errorf("open primary store: %w", err)
	}
	defer st.Close()
	eng := st.Engine()
	eng.SetApplyProbe(pl.ApplyProbe())

	pub := replicate.NewPublisher(eng, replicate.PublisherOptions{
		WALPath: filepath.Join(dir, persist.WALFile),
	})
	defer pub.Close()

	srv := server.New(eng, server.Options{
		Persist:      st,
		Publisher:    pub,
		WriteTimeout: 2 * time.Second,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer srv.Close()
	base := "http://" + l.Addr().String()

	// Followers, each dialing through its own fault plane so connection
	// faults hit exactly one replication stream.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type follower struct {
		fol   *replicate.Follower
		plane *fault.Plane
	}
	startFollower := func(seed uint64) (follower, error) {
		fpl := fault.New(seed)
		bctx, bcancel := context.WithTimeout(ctx, 10*time.Second)
		defer bcancel()
		fol, err := replicate.StartFollower(bctx, base, replicate.FollowerOptions{
			Client: &http.Client{Transport: &http.Transport{
				DialContext: fault.Dialer(fpl, nil),
			}},
			ReconnectMin: 20 * time.Millisecond,
			ReconnectMax: 250 * time.Millisecond,
			PollInterval: 50 * time.Millisecond,
		})
		return follower{fol: fol, plane: fpl}, err
	}
	fols := make([]follower, cfg.Followers)
	for i := range fols {
		if fols[i], err = startFollower(cfg.Seed + uint64(i) + 1); err != nil {
			return rep, fmt.Errorf("start follower %d: %w", i, err)
		}
	}
	defer func() {
		for _, f := range fols {
			if f.fol != nil {
				f.fol.Close()
			}
		}
	}()

	// Health prober: liveness + recovery timing.
	probeClient, err := server.NewClient(base, &http.Client{Timeout: 2 * time.Second})
	if err != nil {
		return rep, err
	}
	probeClient.Retry = nil
	pr := &prober{client: probeClient}
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() { defer probeWG.Done(); pr.run(ctx) }()

	// Writers: disjoint vertex ranges, raw (non-retrying) clients so every
	// outcome is classified exactly once.
	writers := make([]*writer, cfg.Writers)
	stopWriters := make(chan struct{})
	var writerWG sync.WaitGroup
	for i := range writers {
		wc, err := server.NewClient(base, &http.Client{Timeout: 10 * time.Second})
		if err != nil {
			return rep, err
		}
		wc.Retry = nil
		writers[i] = &writer{
			id:     i,
			lo:     i * cfg.VertexSpan,
			hi:     (i + 1) * cfg.VertexSpan,
			batch:  cfg.BatchSize,
			rng:    rand.New(rand.NewPCG(cfg.Seed, uint64(i)+0x57)),
			client: wc,
			model:  make(map[[2]int]bool),
			stop:   stopWriters,
		}
		writerWG.Add(1)
		go func(w *writer) { defer writerWG.Done(); w.run(ctx) }(writers[i])
	}

	// waitHealthy blocks until healthz reports ok (the recovery probe has
	// healed the store) or the deadline passes.
	waitHealthy := func(deadline time.Duration) error {
		t0 := time.Now()
		for time.Since(t0) < deadline {
			hctx, hcancel := context.WithTimeout(ctx, time.Second)
			h, err := probeClient.Health(hctx)
			hcancel()
			if err == nil && h.Status == "ok" {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("server did not return to healthy within %v", deadline)
	}

	// Seeded episode schedule: every kind once (seeded order), then random.
	erng := rand.New(rand.NewPCG(cfg.Seed, 0xC4A05))
	schedule := make([]string, 0, cfg.Episodes)
	perm := erng.Perm(len(kinds))
	for _, i := range perm {
		schedule = append(schedule, kinds[i])
	}
	for len(schedule) < cfg.Episodes {
		schedule = append(schedule, kinds[erng.IntN(len(kinds))])
	}
	schedule = schedule[:cfg.Episodes]

	errBlip := errors.New("chaos: injected disk blip")
	errOutage := errors.New("chaos: injected disk outage")

	runErr := func() error {
		for ep, kind := range schedule {
			logf("episode %d/%d: %s", ep+1, cfg.Episodes, kind)
			switch kind {
			case "disk-blip":
				// One-shot write failure; the store's in-line retry should
				// absorb it without any caller seeing an error.
				pl.Fail(fault.WALWrite, 1, errBlip)
				time.Sleep(cfg.EpisodeDur)

			case "disk-outage":
				// Every WAL write fails until cleared: writers see
				// persistence_failed, the health monitor degrades to
				// read-only, the recovery probe heals after the clear.
				pl.Add(fault.Rule{Op: fault.WALWrite, Kind: fault.KindError, Err: errOutage})
				time.Sleep(cfg.EpisodeDur)
				pl.ClearOp(fault.WALWrite)
				if err := waitHealthy(30 * time.Second); err != nil {
					return fmt.Errorf("episode %d (%s): %w", ep+1, kind, err)
				}

			case "wal-seal":
				// A failed append whose rollback truncate ALSO fails seals
				// the WAL (unrecoverable through traffic) — the server must
				// degrade immediately and heal only via the probe's
				// compaction.
				pl.Fail(fault.WALWrite, 1, errOutage)
				pl.Fail(fault.WALTruncate, 1, errOutage)
				time.Sleep(cfg.EpisodeDur)
				pl.ClearOp(fault.WALWrite)
				pl.ClearOp(fault.WALTruncate)
				if err := waitHealthy(30 * time.Second); err != nil {
					return fmt.Errorf("episode %d (%s): %w", ep+1, kind, err)
				}

			case "apply-panic":
				// The engine must contain the panic, quarantine the batch
				// and keep serving; callers get a clean internal rejection.
				pl.Add(fault.Rule{
					Op: fault.Apply, Kind: fault.KindPanic,
					Count: 1 + erng.IntN(3),
				})
				time.Sleep(cfg.EpisodeDur)
				pl.ClearOp(fault.Apply)

			case "apply-delay":
				pl.Add(fault.Rule{
					Op: fault.Apply, Kind: fault.KindDelay,
					Delay: time.Duration(1+erng.IntN(4)) * time.Millisecond,
					Count: 40,
				})
				time.Sleep(cfg.EpisodeDur)
				pl.ClearOp(fault.Apply)

			case "conn-drop":
				// Sever one follower's replication stream mid-flight; it
				// must reconnect (resume or re-bootstrap) on its own.
				f := fols[erng.IntN(len(fols))]
				f.plane.Add(fault.Rule{
					Op: fault.ConnRead, Kind: fault.KindDrop,
					Count: 1 + erng.IntN(2),
				})
				f.fol.DropConnection()
				time.Sleep(cfg.EpisodeDur)
				f.plane.ClearOp(fault.ConnRead)

			case "slow-sse":
				// A watcher that stops reading: the per-write SSE deadline
				// and drop-on-full subscriptions keep it from parking the
				// server.
				conn, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					return fmt.Errorf("episode %d (%s): dial: %w", ep+1, kind, err)
				}
				fmt.Fprintf(conn, "GET /v1/watch HTTP/1.1\r\nHost: chaos\r\nAccept: text/event-stream\r\n\r\n")
				buf := make([]byte, 512)
				conn.SetReadDeadline(time.Now().Add(time.Second))
				conn.Read(buf) // consume a little, then stall
				time.Sleep(cfg.EpisodeDur)
				conn.Close()

			case "follower-kill":
				// Kill a follower outright and boot a replacement that
				// must re-bootstrap from the live primary.
				i := erng.IntN(len(fols))
				fols[i].fol.Close()
				rep.FollowerKills++
				time.Sleep(cfg.EpisodeDur)
				nf, err := startFollower(cfg.Seed + uint64(rep.FollowerKills)*101)
				if err != nil {
					return fmt.Errorf("episode %d (%s): restart follower: %w", ep+1, kind, err)
				}
				fols[i] = nf
			}
		}

		// Quiesce: clear every fault surface and wait for full health.
		pl.Clear()
		for _, f := range fols {
			f.plane.Clear()
		}
		if err := waitHealthy(30 * time.Second); err != nil {
			return err
		}
		return nil
	}()

	// Stop writers at their batch boundaries and collect their outcomes
	// regardless of runErr.
	close(stopWriters)
	writerWG.Wait()
	finalEdges := make([][2]int, 0, 256)
	for _, w := range writers {
		rep.Writes += w.writes
		rep.Applied += w.applied
		rep.PersistFailed += w.persistFailed
		rep.RejectedDegraded += w.rejDegraded
		rep.RejectedOverloaded += w.rejOverloaded
		rep.RejectedInternal += w.rejInternal
		if w.fatal != nil && runErr == nil {
			runErr = w.fatal
		}
		for k := range w.model {
			finalEdges = append(finalEdges, k)
		}
	}
	if rep.Writes > 0 {
		rep.WriteAvailability = float64(rep.Applied) / float64(rep.Writes)
	}
	rep.FinalEdges = len(finalEdges)
	pr.snapshot(rep)
	if runErr != nil {
		return rep, runErr
	}

	// The writers have stopped; give the coalescer a beat to drain, then
	// pin the final seq.
	if err := waitSettled(eng); err != nil {
		return rep, err
	}
	finalSeq := eng.Seq()
	rep.FinalSeq = finalSeq
	rep.EnginePanics = eng.ExecStats().Panics

	maxVertex := cfg.Writers * cfg.VertexSpan

	// Invariant 1: primary cores == fault-free reference of the acked edge
	// set. This is the exactness proof for the classification rules.
	sort.Slice(finalEdges, func(i, j int) bool {
		if finalEdges[i][0] != finalEdges[j][0] {
			return finalEdges[i][0] < finalEdges[j][0]
		}
		return finalEdges[i][1] < finalEdges[j][1]
	})
	ref := kcore.NewEngine()
	if len(finalEdges) > 0 {
		if _, err := ref.AddEdges(finalEdges); err != nil {
			return rep, fmt.Errorf("reference engine rejected acked edges: %w", err)
		}
	}
	if got, want := eng.NumEdges(), ref.NumEdges(); got != want {
		return rep, fmt.Errorf("primary has %d edges, acked model has %d", got, want)
	}
	engSet := make(map[[2]int]bool, len(finalEdges))
	for _, e := range eng.Edges() {
		engSet[edgeKey(e[0], e[1])] = true
	}
	for _, e := range finalEdges {
		if !engSet[e] {
			return rep, fmt.Errorf("edge %v acked to a writer but absent from the primary", e)
		}
		delete(engSet, e)
	}
	for e := range engSet {
		return rep, fmt.Errorf("edge %v present on the primary but never acked to a writer", e)
	}
	for v := 0; v < maxVertex; v++ {
		if got, want := eng.Core(v), ref.Core(v); got != want {
			return rep, fmt.Errorf("core(%d): primary %d, fault-free reference %d", v, got, want)
		}
	}

	// Invariant 2: followers converge to the primary's seq with identical
	// cores, across every drop, kill and re-bootstrap.
	for i, f := range fols {
		if err := waitFollower(f.fol, finalSeq, 30*time.Second); err != nil {
			return rep, fmt.Errorf("follower %d: %w", i, err)
		}
		fe := f.fol.Engine()
		for v := 0; v < maxVertex; v++ {
			if got, want := fe.Core(v), eng.Core(v); got != want {
				return rep, fmt.Errorf("follower %d core(%d) = %d, primary %d", i, v, got, want)
			}
		}
	}

	// Probe accounting: liveness must have held the whole time.
	cancel()
	probeWG.Wait()
	pr.snapshot(rep)
	if rep.HealthzFailures > 0 {
		return rep, fmt.Errorf("healthz failed to answer %d of %d probes", rep.HealthzFailures, rep.HealthzProbes)
	}
	if rep.Degradations != rep.Recoveries {
		return rep, fmt.Errorf("%d degradations but %d observed recoveries — server did not re-enter healthy", rep.Degradations, rep.Recoveries)
	}
	sort.Float64s(rep.RecoveryMS)
	if n := len(rep.RecoveryMS); n > 0 {
		rep.MedianRecoveryMS = rep.RecoveryMS[n/2]
	}

	// Invariant 3: shut the fleet down and recover the data directory —
	// the reopened engine must be bit-identical (same seq, same cores).
	for _, f := range fols {
		f.fol.Close()
	}
	if err := srv.Close(); err != nil {
		return rep, fmt.Errorf("server close: %w", err)
	}
	<-serveDone
	pub.Close()
	if _, err := st.Snapshot(); err != nil {
		return rep, fmt.Errorf("final snapshot: %w", err)
	}
	if err := st.Close(); err != nil {
		return rep, fmt.Errorf("store close: %w", err)
	}
	st2, err := persist.Open(dir, persist.Options{Sync: persist.SyncOff, CompactBytes: -1})
	if err != nil {
		return rep, fmt.Errorf("recovery reopen: %w", err)
	}
	defer st2.Close()
	re := st2.Engine()
	if re.Seq() != finalSeq {
		return rep, fmt.Errorf("recovered seq %d, want %d (gap in the WAL chain)", re.Seq(), finalSeq)
	}
	if got, want := re.NumEdges(), ref.NumEdges(); got != want {
		return rep, fmt.Errorf("recovered %d edges, want %d", got, want)
	}
	for v := 0; v < maxVertex; v++ {
		if got, want := re.Core(v), ref.Core(v); got != want {
			return rep, fmt.Errorf("recovered core(%d) = %d, want %d", v, got, want)
		}
	}

	rep.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return rep, nil
}

// waitSettled waits for the engine's seq to stop moving (the coalescer has
// drained every in-flight request).
func waitSettled(e *kcore.Engine) error {
	last := e.Seq()
	for i := 0; i < 200; i++ {
		time.Sleep(10 * time.Millisecond)
		if s := e.Seq(); s == last {
			return nil
		} else {
			last = s
		}
	}
	return errors.New("engine seq did not settle after writers stopped")
}

// waitFollower waits until the follower's engine reaches seq.
func waitFollower(f *replicate.Follower, seq uint64, deadline time.Duration) error {
	t0 := time.Now()
	for time.Since(t0) < deadline {
		if f.Engine().Seq() >= seq {
			if f.Engine().Seq() == seq {
				return nil
			}
			return fmt.Errorf("follower seq %d beyond primary %d", f.Engine().Seq(), seq)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("did not reach seq %d within %v (at %d)", seq, deadline, f.Engine().Seq())
}

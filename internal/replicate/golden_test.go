package replicate

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"kcore"
	"kcore/internal/persist"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden stream fixture")

// goldenStream is the fixed replication stream both the golden fixture and
// the fuzz seeds derive from: a snapshot bootstrap followed by two live
// frames. Do not change it — the fixture pins the byte format.
func goldenStream(tb testing.TB) []byte {
	tb.Helper()
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	e, err := kcore.FromEdges(edges, kcore.WithSeed(7))
	if err != nil {
		tb.Fatal(err)
	}
	st, err := e.View(kcore.WithIndex()).Index()
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := persist.EncodeSnapshot(st)
	if err != nil {
		tb.Fatal(err)
	}
	buf := AppendBootstrap(nil, snap)
	buf = persist.AppendWALHeader(buf)
	for _, rec := range []persist.WALRecord{
		{Seq: 2, Updates: []kcore.Update{kcore.Add(3, 4), kcore.Add(4, 300)}},
		{Seq: 3, Updates: []kcore.Update{kcore.Remove(2, 3)}},
	} {
		buf, err = persist.AppendWALFrame(buf, rec)
		if err != nil {
			tb.Fatal(err)
		}
	}
	return buf
}

// TestStreamGolden pins the replication stream byte format: the fixture may
// only change together with a StreamVersion bump.
func TestStreamGolden(t *testing.T) {
	got := goldenStream(t)
	path := filepath.Join("testdata", "golden", "stream_v1.bin")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run 'go test ./internal/replicate -run Golden -update'): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream_v1.bin: encoding changed (%d bytes, golden %d).\n"+
			"The wire format is pinned: a running fleet streams it between versions. "+
			"If this change is intentional, bump StreamVersion (followers reject "+
			"unknown versions and re-bootstrap after an upgrade) and regenerate "+
			"with -update.", len(got), len(want))
	}

	// The fixture must round-trip through the follower-side decoders.
	r := bytes.NewReader(want)
	snap, err := ReadBootstrap(r)
	if err != nil || snap == nil {
		t.Fatalf("golden bootstrap: snap=%v err=%v", snap != nil, err)
	}
	if _, err := persist.DecodeSnapshot(snap); err != nil {
		t.Fatalf("golden snapshot decode: %v", err)
	}
	wr := persist.NewWALReader(r)
	var seqs []uint64
	for {
		rec, err := wr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("golden frame decode: %v", err)
		}
		seqs = append(seqs, rec.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 2 || seqs[1] != 3 {
		t.Fatalf("golden frames decoded to seqs %v, want [2 3]", seqs)
	}
}

// TestStreamVersionPinned trips when StreamVersion changes without the
// golden fixture (and the follower's version handling) being revisited.
func TestStreamVersionPinned(t *testing.T) {
	if StreamVersion != 1 {
		t.Fatalf("StreamVersion = %d; this tripwire pins 1. Bumping it is allowed "+
			"only together with a new golden fixture and a follower story for the "+
			"old version (diskless followers re-bootstrap, so refusing it is fine "+
			"— but make that choice deliberately, then update this test)", StreamVersion)
	}
}

// FuzzStreamDecode throws arbitrary bytes at the follower's stream decoding
// path: the bootstrap reader, the snapshot decoder, and the WAL frame
// reader. Every outcome must be a structured error — never a panic, never
// an unclassified failure.
func FuzzStreamDecode(f *testing.F) {
	golden := goldenStream(f)
	f.Add(golden)
	f.Add(golden[:streamHeaderLen])                           // bootstrap only, cut before snapshot
	f.Add(golden[:streamHeaderLen+2])                         // cut inside the snapshot length
	f.Add(golden[:len(golden)-3])                             // cut inside the last frame
	f.Add(AppendBootstrap(nil, nil))                          // resume bootstrap, no stream
	f.Add(persist.AppendWALHeader(AppendBootstrap(nil, nil))) // resume + empty WAL
	bad := append([]byte(nil), golden...)
	bad[3] ^= 0xff // break the magic
	f.Add(bad)
	flip := append([]byte(nil), golden...)
	flip[len(flip)-1] ^= 0xff // break the last frame's payload
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		snap, err := ReadBootstrap(r)
		if err != nil {
			if !errors.Is(err, ErrBadStream) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("bootstrap error is unstructured: %v", err)
			}
			return
		}
		if snap != nil {
			// Must not panic; a decode error is fine (the follower rejects
			// the bootstrap and reconnects).
			_, _ = persist.DecodeSnapshot(snap)
		}
		wr := persist.NewWALReader(r)
		for {
			if _, err := wr.Next(); err != nil {
				if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) ||
					errors.Is(err, persist.ErrCorruptWAL) {
					return
				}
				t.Fatalf("stream error is unstructured: %v", err)
			}
		}
	})
}

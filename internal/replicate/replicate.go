// Package replicate ships the engine's write-ahead log over the network:
// one primary owns writes, N followers apply the streamed batches and serve
// reads, scaling read throughput linearly with replicas while every replica
// maintains bit-identical cores and k-order (the determinism the order-based
// maintenance algorithm guarantees for identical update sequences).
//
// # Topology and consistency model
//
// Replication is asynchronous, pull-based and diskless. A follower connects
// to the primary's GET /v1/replicate endpoint and receives one long-lived
// byte stream: a bootstrap section (optionally carrying a full KCORSNAP
// engine snapshot), then a live KCOREWAL frame stream — the exact on-disk
// WAL format (internal/persist), so replication reuses the persist codec,
// its CRC protection, its golden fixtures, and its sequence-chaining
// invariant end to end. The follower applies frames through
// Engine.ReplayNotify: its local watchers see the changes, but its own
// durability hook and replication tap do not re-fire.
//
// Reads on a follower are eventually consistent. Read-your-primary-writes
// is NOT guaranteed; the staleness is observable as seq_lag (primary seq
// minus follower seq) in the follower's /v1/stats. Writes on a follower are
// rejected with the stable wire error code "read_only".
//
// # Catch-up, resume, and gaps
//
// A follower that reconnects asks to resume `?from=<seq>` at its last
// applied sequence number. The primary serves the resume tail from a
// bounded in-memory frame history, or — when configured with the persist
// WAL's path — from the on-disk log; when neither covers the requested
// seq, it falls back to a fresh snapshot bootstrap. The WAL chaining
// invariant makes resumption safe: the follower skips frames at or below
// its seq and refuses any frame that does not chain exactly onto it,
// forcing a clean snapshot re-bootstrap instead of silent divergence.
//
// Sequence numbers identify positions within one primary lineage. A primary
// that is rebuilt from scratch with different data can reuse seq values;
// restart followers (they are diskless — a restart re-bootstraps) after
// replacing a primary's dataset out of band.
//
// # Backpressure
//
// The primary never blocks on a slow follower. Frames queue per subscriber
// up to a byte budget; past it the subscriber is dropped (counted in
// /v1/stats, analogous to the watch stream's lagged-drop accounting) and
// the follower reconnects — usually resuming from history, degenerating to
// a snapshot re-bootstrap only if it stayed away long enough.
package replicate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// StreamVersion is the replication bootstrap format version. Bump it — and
// regenerate the golden fixtures (see golden_test.go) — whenever the byte
// format changes. The embedded snapshot and WAL sections carry their own
// versions (persist.SnapshotVersion, persist.WALVersion).
const StreamVersion = 1

var streamMagic = [8]byte{'K', 'C', 'O', 'R', 'E', 'R', 'E', 'P'}

// streamHeaderLen is magic + version + flags.
const streamHeaderLen = 8 + 4 + 1

// flagSnapshot marks a bootstrap that carries a snapshot section.
const flagSnapshot = 0x01

// maxStreamSnapshot bounds the snapshot section a follower will accept; a
// larger claim is corruption, not a snapshot.
const maxStreamSnapshot = 1 << 30

// ErrBadStream marks a malformed replication bootstrap: wrong magic,
// unsupported version, unknown flags, or an implausible section length.
// Frame-level malformations inside the WAL section wrap
// persist.ErrCorruptWAL instead.
var ErrBadStream = errors.New("replicate: malformed replication stream")

// AppendBootstrap encodes the bootstrap section onto buf: the stream header
// and, when snapshot is non-nil, a length-prefixed KCORSNAP snapshot. The
// KCOREWAL frame stream follows it on the wire.
func AppendBootstrap(buf []byte, snapshot []byte) []byte {
	var hdr [streamHeaderLen]byte
	copy(hdr[:], streamMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], StreamVersion)
	if snapshot != nil {
		hdr[12] = flagSnapshot
	}
	buf = append(buf, hdr[:]...)
	if snapshot != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snapshot)))
		buf = append(buf, snapshot...)
	}
	return buf
}

// ReadBootstrap decodes the bootstrap section from r, returning the
// snapshot bytes (nil for a resume bootstrap without one). Errors are
// ErrBadStream for malformation, io.ErrUnexpectedEOF for a stream cut
// inside the section, or the reader's own error.
func ReadBootstrap(r io.Reader) ([]byte, error) {
	var hdr [streamHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("replicate: read bootstrap header: %w", err)
	}
	if [8]byte(hdr[:8]) != streamMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadStream, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != StreamVersion {
		return nil, fmt.Errorf("%w: unsupported stream version %d (want %d)", ErrBadStream, v, StreamVersion)
	}
	flags := hdr[12]
	if flags&^byte(flagSnapshot) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#02x", ErrBadStream, flags)
	}
	if flags&flagSnapshot == 0 {
		return nil, nil
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("replicate: read snapshot length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxStreamSnapshot {
		return nil, fmt.Errorf("%w: implausible snapshot length %d", ErrBadStream, n)
	}
	snap := make([]byte, n)
	if _, err := io.ReadFull(r, snap); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("replicate: read snapshot section: %w", err)
	}
	return snap, nil
}

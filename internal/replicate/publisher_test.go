package replicate

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"kcore"
	"kcore/internal/persist"
)

// decodeFrames runs the returned backlog/queue frames through the real
// follower-side decoder and returns the record seqs.
func decodeFrames(t *testing.T, frames [][]byte) []persist.WALRecord {
	t.Helper()
	buf := persist.AppendWALHeader(nil)
	for _, f := range frames {
		buf = append(buf, f...)
	}
	wr := persist.NewWALReader(bytes.NewReader(buf))
	var out []persist.WALRecord
	for {
		rec, err := wr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decode published frame: %v", err)
		}
		out = append(out, rec)
	}
}

func apply(t *testing.T, e *kcore.Engine, updates ...kcore.Update) {
	t.Helper()
	if _, err := e.Apply(kcore.Batch(updates)); err != nil {
		t.Fatalf("apply: %v", err)
	}
}

// TestPublisherSnapshotBootstrap covers the fresh-subscriber path: a
// snapshot bootstrap at the current seq, then live frames chaining past it.
func TestPublisherSnapshotBootstrap(t *testing.T) {
	e, err := kcore.FromEdges([][2]int{{0, 1}, {1, 2}}, kcore.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPublisher(e, PublisherOptions{})
	defer p.Close()

	sub, boot, err := p.Subscribe("test", 0, false)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer p.Unsubscribe(sub)
	if boot.Snapshot == nil || len(boot.Backlog) != 0 || boot.BacklogSeq != e.Seq() {
		t.Fatalf("fresh bootstrap = snapshot %v, %d backlog, seq %d; want snapshot at seq %d",
			boot.Snapshot != nil, len(boot.Backlog), boot.BacklogSeq, e.Seq())
	}
	st, err := persist.DecodeSnapshot(boot.Snapshot)
	if err != nil || st.Seq != e.Seq() {
		t.Fatalf("bootstrap snapshot: seq %d err %v, want seq %d", st.Seq, err, e.Seq())
	}

	apply(t, e, kcore.Add(2, 3), kcore.Add(3, 4))
	apply(t, e, kcore.Remove(0, 1))
	<-sub.Notify()
	frames, lastSeq, err := sub.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	recs := decodeFrames(t, frames)
	if len(recs) != 2 || lastSeq != e.Seq() || recs[1].Seq != e.Seq() {
		t.Fatalf("live frames = %d recs up to %d, want 2 up to %d", len(recs), lastSeq, e.Seq())
	}
	if start := recs[0].Seq - uint64(len(recs[0].Updates)); start != st.Seq {
		t.Fatalf("first live frame starts at %d, snapshot at %d: bootstrap and stream must tile", start, st.Seq)
	}
	sub.MarkSent(lastSeq)

	stats := p.Stats()
	if stats.Bootstraps != 1 || stats.HeadSeq != e.Seq() || len(stats.Subscribers) != 1 {
		t.Fatalf("publisher stats = %+v", stats)
	}
	if s := stats.Subscribers[0]; s.SentSeq != e.Seq() {
		t.Fatalf("subscriber sent seq = %d, want %d", s.SentSeq, e.Seq())
	}
}

// TestMemoryTailResume covers the reconnect path served from the in-memory
// history: exact frame-boundary tiling, empty tail at head, and the
// snapshot fallbacks for mid-frame or evicted resume points.
func TestMemoryTailResume(t *testing.T) {
	e := kcore.NewEngine(kcore.WithSeed(3))
	p := NewPublisher(e, PublisherOptions{})
	defer p.Close()
	apply(t, e, kcore.Add(0, 1))                  // seq 1
	apply(t, e, kcore.Add(1, 2))                  // seq 2
	apply(t, e, kcore.Add(2, 3), kcore.Add(3, 4)) // seq 4, frame covers 3..4

	sub, boot, err := p.Subscribe("resume", 2, true)
	if err != nil {
		t.Fatalf("Subscribe(resume 2): %v", err)
	}
	p.Unsubscribe(sub)
	if boot.Snapshot != nil {
		t.Fatalf("boundary resume served a snapshot")
	}
	recs := decodeFrames(t, boot.Backlog)
	if len(recs) != 1 || recs[0].Seq != 4 || boot.BacklogSeq != 4 {
		t.Fatalf("resume(2) backlog = %+v seq %d, want the 3..4 frame", recs, boot.BacklogSeq)
	}

	sub, boot, err = p.Subscribe("at-head", 4, true)
	if err != nil {
		t.Fatalf("Subscribe(resume 4): %v", err)
	}
	p.Unsubscribe(sub)
	if boot.Snapshot != nil || len(boot.Backlog) != 0 || boot.BacklogSeq != 4 {
		t.Fatalf("resume at head = %+v, want empty backlog at seq 4", boot)
	}

	// Seq 3 is inside the two-update frame: not a boundary of this lineage.
	sub, boot, err = p.Subscribe("mid-frame", 3, true)
	if err != nil {
		t.Fatalf("Subscribe(resume 3): %v", err)
	}
	p.Unsubscribe(sub)
	if boot.Snapshot == nil {
		t.Fatalf("mid-frame resume must fall back to a snapshot")
	}

	if st := p.Stats(); st.Resumes != 2 || st.Bootstraps != 1 {
		t.Fatalf("stats = %+v, want 2 resumes + 1 bootstrap", st)
	}
}

// TestEvictedHistoryFallsBackToSnapshot pins the gap behavior: a resume
// point the bounded history no longer covers yields a fresh snapshot, not a
// broken chain.
func TestEvictedHistoryFallsBackToSnapshot(t *testing.T) {
	e := kcore.NewEngine(kcore.WithSeed(3))
	p := NewPublisher(e, PublisherOptions{HistoryBytes: 1}) // evict every frame
	defer p.Close()
	for i := 0; i < 5; i++ {
		apply(t, e, kcore.Add(i, i+1))
	}
	sub, boot, err := p.Subscribe("gap", 1, true)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	p.Unsubscribe(sub)
	if boot.Snapshot == nil {
		t.Fatalf("evicted resume must fall back to a snapshot")
	}
	st, err := persist.DecodeSnapshot(boot.Snapshot)
	if err != nil || st.Seq != 5 {
		t.Fatalf("fallback snapshot at seq %d err %v, want 5", st.Seq, err)
	}
}

// TestWALFileResume covers the middle resume tier: history evicted, but the
// persist WAL on disk still chains the requested tail.
func TestWALFileResume(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.Open(dir, persist.Options{
		Init: func() (*kcore.Engine, error) { return kcore.NewEngine(kcore.WithSeed(3)), nil },
	})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	defer store.Close()
	e := store.Engine()
	p := NewPublisher(e, PublisherOptions{
		HistoryBytes: 1, // force every resume past the memory tier
		WALPath:      filepath.Join(dir, persist.WALFile),
	})
	defer p.Close()

	for i := 0; i < 6; i++ {
		apply(t, e, kcore.Add(i, i+1))
	}

	sub, boot, err := p.Subscribe("wal", 2, true)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	p.Unsubscribe(sub)
	if boot.Snapshot != nil {
		t.Fatalf("WAL-covered resume served a snapshot")
	}
	recs := decodeFrames(t, boot.Backlog)
	if len(recs) != 4 || recs[0].Seq != 3 || recs[3].Seq != 6 || boot.BacklogSeq != 6 {
		t.Fatalf("WAL resume backlog = %d recs (%v..), want seqs 3..6", len(recs), recs)
	}
	if st := p.Stats(); st.WALResumes != 1 {
		t.Fatalf("stats = %+v, want 1 WAL resume", st)
	}
}

// TestBackpressureDropsSubscriber pins the slow-follower contract: queue
// overflow drops the whole subscriber (partial frames would break the
// chain), Next reports ErrDropped, and the drop is counted.
func TestBackpressureDropsSubscriber(t *testing.T) {
	e := kcore.NewEngine(kcore.WithSeed(3))
	p := NewPublisher(e, PublisherOptions{QueueBytes: 1})
	defer p.Close()
	sub, _, err := p.Subscribe("slow", 0, false)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer p.Unsubscribe(sub)

	apply(t, e, kcore.Add(0, 1))
	<-sub.Notify()
	if _, _, err := sub.Next(); !errors.Is(err, ErrDropped) {
		t.Fatalf("Next after overflow = %v, want ErrDropped", err)
	}
	if st := p.Stats(); st.Drops != 1 {
		t.Fatalf("stats = %+v, want 1 drop", st)
	}
}

// TestSubscribeAfterClose pins ErrClosed.
func TestSubscribeAfterClose(t *testing.T) {
	e := kcore.NewEngine(kcore.WithSeed(3))
	p := NewPublisher(e, PublisherOptions{})
	p.Close()
	if _, _, err := p.Subscribe("late", 0, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
	// The tap is detached: applying more batches must not touch the
	// publisher (would panic on a nil map write if it did).
	apply(t, e, kcore.Add(0, 1))
}

package replicate

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kcore"
	"kcore/internal/fault"
	"kcore/internal/persist"
	"kcore/internal/server/wire"
)

// FollowerOptions tunes the follower side. The zero value picks defaults.
type FollowerOptions struct {
	// Engine options applied when rebuilding the engine from a shipped
	// snapshot (workers, rebuild thresholds; seed/heuristic/structure come
	// from the snapshot itself — determinism requires the primary's).
	Engine []kcore.Option
	// Client is the HTTP client for the stream and the seq poll. The
	// default enables TCP keepalives (dead primaries are detected within
	// tens of seconds) and must NOT set Client.Timeout — the stream is
	// long-lived.
	Client *http.Client
	// ReconnectMin/ReconnectMax bound the jittered exponential reconnect
	// backoff. Defaults 100ms / 5s.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// PollInterval paces the GET /v1/healthz poll of the primary that keeps
	// seq_lag honest while the stream is quiet or down. Default 1s.
	PollInterval time.Duration
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 15 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
		}}
	}
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 100 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 5 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Second
	}
	return o
}

// Follower replicates a primary kcore-serve into a local engine: it
// bootstraps from the primary's /v1/replicate stream, applies live frames
// through Engine.ReplayNotify, reconnects with resume on stream failure,
// and re-bootstraps from a fresh snapshot when the stream cannot chain onto
// its state. The current engine is read through Engine — it is REPLACED on
// re-bootstrap, so callers must not cache it across requests.
type Follower struct {
	primary string
	opts    FollowerOptions

	engine atomic.Pointer[kcore.Engine]

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu             sync.Mutex
	conn           io.Closer // current stream body (nil while disconnected)
	connected      bool
	forceBoot      bool // next connect must not ask to resume
	lastErr        string
	lastFrame      time.Time
	primarySeq     uint64
	framesApplied  uint64
	updatesApplied uint64
	bootstraps     uint64 // snapshot bootstraps received
	resumes        uint64 // resume connects (no snapshot section)
	reconnects     uint64 // connection attempts after the first success
	gaps           uint64 // chain breaks / corrupt streams forcing re-bootstrap
}

// stream is one established replication connection, bootstrap already
// consumed and the engine installed.
type stream struct {
	body io.ReadCloser
	wr   *persist.WALReader
}

// StartFollower connects to the primary (retrying until ctx expires),
// performs the initial bootstrap, and returns a serving follower whose
// background goroutines stream frames and reconnect until Close. ctx bounds
// ONLY the initial connection: pass a deadline to fail fast when the
// primary is down at boot.
func StartFollower(ctx context.Context, primaryURL string, opts FollowerOptions) (*Follower, error) {
	u, err := url.Parse(primaryURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("replicate: primary URL %q must be absolute (e.g. http://host:8080)", primaryURL)
	}
	u.Path, u.RawQuery, u.Fragment = "", "", ""
	f := &Follower{primary: u.String(), opts: opts.withDefaults()}
	f.ctx, f.cancel = context.WithCancel(context.Background())

	bo := f.backoff()
	for {
		st, err := f.connect()
		if err == nil {
			f.wg.Add(2)
			go f.run(st)
			go f.pollLoop()
			return f, nil
		}
		select {
		case <-ctx.Done():
			f.cancel()
			return nil, fmt.Errorf("replicate: bootstrap from %s: %w (last attempt: %v)", f.primary, ctx.Err(), err)
		case <-time.After(bo.Next()):
		}
	}
}

// backoff builds the follower's jittered exponential reconnect envelope.
// Jitter keeps severed followers from reconnecting in lockstep.
func (f *Follower) backoff() fault.Backoff {
	return fault.Backoff{Min: f.opts.ReconnectMin, Max: f.opts.ReconnectMax}
}

// Primary is the primary's base URL.
func (f *Follower) Primary() string { return f.primary }

// Engine is the follower's current engine. It changes identity on
// re-bootstrap; fetch it per use.
func (f *Follower) Engine() *kcore.Engine { return f.engine.Load() }

// DropConnection severs the current stream, forcing a reconnect (resume).
// Exposed for tests and operational kicks; a no-op while disconnected.
func (f *Follower) DropConnection() {
	f.mu.Lock()
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// Close stops streaming and polling. The last installed engine remains
// readable.
func (f *Follower) Close() {
	f.cancel()
	f.DropConnection()
	f.wg.Wait()
}

// FollowerStats is a point-in-time snapshot of the follower's counters.
type FollowerStats struct {
	Primary    string
	Connected  bool
	AppliedSeq uint64
	PrimarySeq uint64
	// SeqLag is how far the local engine trails the primary's last known
	// seq (via stream frames and the healthz poll). 0 = caught up as far as
	// the follower can know.
	SeqLag         uint64
	LastFrame      time.Time
	FramesApplied  uint64
	UpdatesApplied uint64
	Bootstraps     uint64
	Resumes        uint64
	Reconnects     uint64
	Gaps           uint64
	LastError      string
}

// Stats reports the follower's replication health.
func (f *Follower) Stats() FollowerStats {
	applied := f.Engine().Seq()
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		Primary:        f.primary,
		Connected:      f.connected,
		AppliedSeq:     applied,
		PrimarySeq:     f.primarySeq,
		LastFrame:      f.lastFrame,
		FramesApplied:  f.framesApplied,
		UpdatesApplied: f.updatesApplied,
		Bootstraps:     f.bootstraps,
		Resumes:        f.resumes,
		Reconnects:     f.reconnects,
		Gaps:           f.gaps,
		LastError:      f.lastErr,
	}
	if f.primarySeq > applied {
		st.SeqLag = f.primarySeq - applied
	}
	return st
}

// connect dials the replication endpoint, consumes the bootstrap, and
// installs the engine. On success the returned stream delivers live frames.
func (f *Follower) connect() (*stream, error) {
	target := f.primary + "/v1/replicate"
	f.mu.Lock()
	force := f.forceBoot
	f.mu.Unlock()
	eng := f.engine.Load()
	resume := eng != nil && !force
	if resume {
		target += "?from=" + strconv.FormatUint(eng.Seq(), 10)
	}
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replicate: connect %s: %w", target, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeWireError(resp)
	}

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	snap, err := ReadBootstrap(br)
	if err != nil {
		resp.Body.Close()
		return nil, err
	}
	switch {
	case snap != nil:
		st, err := persist.DecodeSnapshot(snap)
		if err != nil {
			resp.Body.Close()
			return nil, fmt.Errorf("replicate: shipped snapshot: %w", err)
		}
		fresh, err := kcore.FromIndex(st, f.opts.Engine...)
		if err != nil {
			resp.Body.Close()
			return nil, fmt.Errorf("replicate: restore shipped snapshot: %w", err)
		}
		f.engine.Store(fresh)
		f.mu.Lock()
		f.bootstraps++
		f.forceBoot = false
		f.observeSeqLocked(st.Seq)
		f.mu.Unlock()
	case eng == nil || force:
		// A resume bootstrap answers only a resume request; for a fresh (or
		// poisoned) follower the primary must ship state.
		resp.Body.Close()
		return nil, fmt.Errorf("%w: bootstrap carried no snapshot", ErrBadStream)
	default:
		f.mu.Lock()
		f.resumes++
		f.mu.Unlock()
	}

	f.mu.Lock()
	f.conn = resp.Body
	f.connected = true
	f.lastErr = ""
	f.mu.Unlock()
	return &stream{body: resp.Body, wr: persist.NewWALReader(br)}, nil
}

// run consumes the live stream and reconnects (with resume) until Close.
func (f *Follower) run(st *stream) {
	defer f.wg.Done()
	for {
		err := f.consume(st)
		st.body.Close()
		f.mu.Lock()
		f.conn = nil
		f.connected = false
		if err != nil {
			f.lastErr = err.Error()
		}
		f.mu.Unlock()
		if f.ctx.Err() != nil {
			return
		}

		// A fresh envelope per outage: a successful stream resets the
		// delay, so a long-lived follower never pays a stale maximum.
		bo := f.backoff()
		for {
			f.mu.Lock()
			f.reconnects++
			f.mu.Unlock()
			next, err := f.connect()
			if err == nil {
				st = next
				break
			}
			f.mu.Lock()
			f.lastErr = err.Error()
			f.mu.Unlock()
			select {
			case <-f.ctx.Done():
				return
			case <-time.After(bo.Next()):
			}
		}
	}
}

// consume applies stream frames until the connection ends or the stream
// cannot be trusted. A frame that does not chain onto the engine's seq —
// or any malformation — poisons the stream: the next connect re-bootstraps
// from a snapshot instead of risking silent divergence.
func (f *Follower) consume(st *stream) error {
	for {
		rec, err := st.wr.Next()
		if err != nil {
			if errors.Is(err, persist.ErrCorruptWAL) || errors.Is(err, ErrBadStream) {
				f.poison()
				return fmt.Errorf("replicate: stream poisoned: %w", err)
			}
			// EOF / cut connection / transport error: reconnect with resume.
			return fmt.Errorf("replicate: stream ended: %w", err)
		}
		eng := f.engine.Load()
		cur := eng.Seq()
		if rec.Seq <= cur {
			continue // bootstrap overlap; already covered
		}
		if start := rec.Seq - uint64(len(rec.Updates)); start != cur {
			f.poison()
			return fmt.Errorf("replicate: stream gap: frame covers seq %d..%d but follower is at %d",
				rec.Seq-uint64(len(rec.Updates))+1, rec.Seq, cur)
		}
		if _, err := eng.ReplayNotify(kcore.Batch(rec.Updates)); err != nil {
			// The primary applied this exact batch; a local refusal means the
			// states diverged. Rebuild from a snapshot.
			f.poison()
			return fmt.Errorf("replicate: apply frame at seq %d: %w", rec.Seq, err)
		}
		f.mu.Lock()
		f.framesApplied++
		f.updatesApplied += uint64(len(rec.Updates))
		f.lastFrame = time.Now()
		f.observeSeqLocked(rec.Seq)
		f.mu.Unlock()
	}
}

// poison forces the next connect to request a full snapshot bootstrap.
func (f *Follower) poison() {
	f.mu.Lock()
	f.forceBoot = true
	f.gaps++
	f.mu.Unlock()
}

// observeSeqLocked advances the highest primary seq we know of (mu held).
func (f *Follower) observeSeqLocked(seq uint64) {
	if seq > f.primarySeq {
		f.primarySeq = seq
	}
}

// pollLoop keeps primarySeq (and with it seq_lag) honest while the stream
// is quiet or down, via the primary's cheap healthz probe.
func (f *Follower) pollLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-t.C:
			if seq, err := f.pollPrimarySeq(); err == nil {
				f.mu.Lock()
				f.observeSeqLocked(seq)
				f.mu.Unlock()
			}
		}
	}
}

func (f *Follower) pollPrimarySeq() (uint64, error) {
	ctx, cancel := context.WithTimeout(f.ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+"/v1/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("replicate: healthz status %d", resp.StatusCode)
	}
	var h wire.HealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return 0, err
	}
	return h.Seq, nil
}

// decodeWireError turns a non-200 replication response into an error,
// surfacing the wire error envelope when present.
func decodeWireError(resp *http.Response) error {
	var envelope wire.ErrorResponse
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.Error != nil {
		envelope.Error.Status = resp.StatusCode
		return envelope.Error
	}
	return fmt.Errorf("replicate: primary answered %s", resp.Status)
}

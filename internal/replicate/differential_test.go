package replicate_test

// Differential tests at the subsystem boundary: a real primary server, real
// followers over HTTP, and the bit-identical-state guarantee the order-based
// engine's determinism promises. External test package so it can drive
// internal/server (which imports replicate) without a cycle.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	"kcore"
	"kcore/internal/persist"
	"kcore/internal/replicate"
	"kcore/internal/server"
)

// churnScript builds a valid mixed add/remove batch sequence on the vertex
// block [base, base+span), tracking its own edge history like the server
// differential test's generator.
func churnScript(base, batches, batchSize int, seed uint64) []kcore.Batch {
	const span = 64
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	present := map[[2]int]bool{}
	var presentList [][2]int
	out := make([]kcore.Batch, 0, batches)
	for b := 0; b < batches; b++ {
		batch := make(kcore.Batch, 0, batchSize)
		for len(batch) < batchSize {
			if len(presentList) > 0 && rng.Float64() < 0.35 {
				i := rng.IntN(len(presentList))
				e := presentList[i]
				presentList[i] = presentList[len(presentList)-1]
				presentList = presentList[:len(presentList)-1]
				delete(present, e)
				batch = append(batch, kcore.Remove(e[0], e[1]))
				continue
			}
			u, v := base+rng.IntN(span), base+rng.IntN(span)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if present[[2]int{u, v}] {
				continue
			}
			present[[2]int{u, v}] = true
			presentList = append(presentList, [2]int{u, v})
			batch = append(batch, kcore.Add(u, v))
		}
		out = append(out, batch)
	}
	return out
}

// indexOf captures an engine's full replicated identity.
func indexOf(t *testing.T, e *kcore.Engine) *kcore.IndexState {
	t.Helper()
	st, err := e.View(kcore.WithIndex()).Index()
	if err != nil {
		t.Fatalf("capture index: %v", err)
	}
	return st
}

// sameState asserts bit-identical replicated state: seq, vertex space, core
// numbers, the maintained k-order, and the edge SET (the Edges slice order
// is an iteration artifact, not state — sort before comparing).
func sameState(t *testing.T, name string, got, want *kcore.IndexState) {
	t.Helper()
	if got.Seq != want.Seq || got.Vertices != want.Vertices {
		t.Fatalf("%s: seq/vertices = %d/%d, want %d/%d", name, got.Seq, got.Vertices, want.Seq, want.Vertices)
	}
	if got.Seed != want.Seed || got.Heuristic != want.Heuristic || got.Structure != want.Structure {
		t.Fatalf("%s: engine parameters differ: got %d/%v/%v want %d/%v/%v",
			name, got.Seed, got.Heuristic, got.Structure, want.Seed, want.Heuristic, want.Structure)
	}
	if !slices.Equal(got.Cores, want.Cores) {
		t.Fatalf("%s: core numbers diverged at seq %d", name, want.Seq)
	}
	if !slices.Equal(got.Order, want.Order) {
		t.Fatalf("%s: maintained k-order diverged at seq %d", name, want.Seq)
	}
	ge := slices.Clone(got.Edges)
	we := slices.Clone(want.Edges)
	cmp := func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	}
	slices.SortFunc(ge, cmp)
	slices.SortFunc(we, cmp)
	if !slices.Equal(ge, we) {
		t.Fatalf("%s: edge sets diverged at seq %d (%d vs %d edges)", name, want.Seq, len(ge), len(we))
	}
}

// waitSeq blocks until the follower's engine reaches seq.
func waitSeq(t *testing.T, f *replicate.Follower, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for f.Engine().Seq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d (stats %+v)", f.Engine().Seq(), seq, f.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicationDifferential runs one primary and two followers under
// concurrent multi-writer churn, severing one follower's connection
// mid-stream. Both followers must converge to the primary's state
// bit-identically — edges, core numbers, AND the maintained k-order (the
// strongest equality the engine offers), with no gap-forced re-bootstraps.
func TestReplicationDifferential(t *testing.T) {
	engine := kcore.NewEngine(kcore.WithSeed(42))
	pub := replicate.NewPublisher(engine, replicate.PublisherOptions{})
	defer pub.Close()
	srv := server.New(engine, server.Options{Publisher: pub})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Preload before the followers exist: shipped via snapshot bootstrap.
	if _, err := engine.Apply(churnScript(0, 1, 200, 1)[0]); err != nil {
		t.Fatalf("preload: %v", err)
	}

	ctx := context.Background()
	var followers []*replicate.Follower
	for i := 0; i < 2; i++ {
		f, err := replicate.StartFollower(ctx, ts.URL, replicate.FollowerOptions{
			PollInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartFollower %d: %v", i, err)
		}
		defer f.Close()
		followers = append(followers, f)
	}

	// Concurrent writers on private vertex blocks; halfway through, sever
	// follower 0's stream so it must reconnect and resume.
	const writers = 3
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	var once sync.Once
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			script := churnScript(100+w*64, 40, 25, uint64(w)+2)
			for i, b := range script {
				if _, err := engine.Apply(b); err != nil {
					errs <- fmt.Errorf("writer %d batch %d: %w", w, i, err)
					return
				}
				if w == 0 && i == len(script)/2 {
					once.Do(followers[0].DropConnection)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := engine.Seq()
	want := indexOf(t, engine)
	for i, f := range followers {
		waitSeq(t, f, final)
		sameState(t, fmt.Sprintf("follower %d", i), indexOf(t, f.Engine()), want)
		st := f.Stats()
		if st.Gaps != 0 {
			t.Fatalf("follower %d hit %d gaps; a severed stream must resume, not re-bootstrap (stats %+v)", i, st.Gaps, st)
		}
		if st.SeqLag != 0 || st.AppliedSeq != final {
			t.Fatalf("follower %d lag = %+v, want caught up at %d", i, st, final)
		}
	}
	// The severed follower reconnected: either a seamless resume or (if the
	// drop raced the first frames) a clean snapshot re-bootstrap — but it
	// must have gone through the reconnect path.
	if st := followers[0].Stats(); st.Reconnects == 0 {
		t.Fatalf("severed follower never reconnected: %+v", st)
	}

	// The primary served two bootstraps and saw the reconnect.
	ps := pub.Stats()
	if ps.Bootstraps < 2 || ps.HeadSeq != final {
		t.Fatalf("publisher stats = %+v, want >=2 bootstraps at head %d", ps, final)
	}
}

// TestFollowerGapReBootstrap drives the follower against a scripted fake
// primary whose stream jumps a sequence range. The follower must refuse the
// non-chaining frame, poison the connection, and re-bootstrap from a fresh
// snapshot — never silently diverge.
func TestFollowerGapReBootstrap(t *testing.T) {
	// Real engine states for the two bootstraps the fake primary serves.
	e := kcore.NewEngine(kcore.WithSeed(9))
	if _, err := e.Apply(kcore.Batch{kcore.Add(0, 1), kcore.Add(1, 2), kcore.Add(0, 2)}); err != nil {
		t.Fatal(err)
	}
	snapEarly, err := persist.EncodeSnapshot(indexOf(t, e)) // seq 3
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(kcore.Batch{kcore.Add(2, 3), kcore.Add(3, 4), kcore.Add(2, 4)}); err != nil {
		t.Fatal(err)
	}
	snapFull, err := persist.EncodeSnapshot(indexOf(t, e)) // seq 6
	if err != nil {
		t.Fatal(err)
	}

	// A frame claiming seqs 5..6 cannot chain onto a follower at seq 3.
	gapFrame, err := persist.AppendWALFrame(nil, persist.WALRecord{
		Seq: 6, Updates: []kcore.Update{kcore.Add(3, 4), kcore.Add(2, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var connects int
	var resumeAsked []bool
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/replicate" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		connects++
		n := connects
		resumeAsked = append(resumeAsked, r.URL.Query().Has("from"))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/octet-stream")
		var out []byte
		switch n {
		case 1:
			// Bootstrap at seq 3, then a stream with a hole in it.
			out = replicate.AppendBootstrap(nil, snapEarly)
			out = persist.AppendWALHeader(out)
			out = append(out, gapFrame...)
		default:
			// The re-bootstrap must carry the full state.
			out = replicate.AppendBootstrap(nil, snapFull)
			out = persist.AppendWALHeader(out)
		}
		_, _ = w.Write(out)
		w.(http.Flusher).Flush()
		<-r.Context().Done() // hold the stream open like a real primary
	}))
	defer primary.Close()

	f, err := replicate.StartFollower(context.Background(), primary.URL, replicate.FollowerOptions{
		ReconnectMin: 5 * time.Millisecond,
		PollInterval: time.Hour, // no healthz on the fake primary
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	defer f.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Stats()
		if st.Gaps >= 1 && st.Bootstraps >= 2 && st.AppliedSeq == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never re-bootstrapped past the gap: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	sameState(t, "post-re-bootstrap", indexOf(t, f.Engine()), indexOf(t, e))
	mu.Lock()
	defer mu.Unlock()
	if len(resumeAsked) < 2 || resumeAsked[0] || resumeAsked[1] {
		t.Fatalf("connect resume flags = %v: the first connect and the post-gap "+
			"re-bootstrap must NOT ask to resume", resumeAsked)
	}
}

// TestFollowerRejectsCorruptStream: a fake primary whose frame bytes are
// corrupted mid-stream must poison the connection (gap counted), not crash
// or apply garbage.
func TestFollowerRejectsCorruptStream(t *testing.T) {
	e := kcore.NewEngine(kcore.WithSeed(9))
	if _, err := e.Apply(kcore.Batch{kcore.Add(0, 1), kcore.Add(1, 2)}); err != nil {
		t.Fatal(err)
	}
	snap, err := persist.EncodeSnapshot(indexOf(t, e))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := persist.AppendWALFrame(nil, persist.WALRecord{
		Seq: 3, Updates: []kcore.Update{kcore.Add(0, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-1] ^= 0xff

	var mu sync.Mutex
	var connects int
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/replicate" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		connects++
		n := connects
		mu.Unlock()
		w.Header().Set("Content-Type", "application/octet-stream")
		out := replicate.AppendBootstrap(nil, snap)
		out = persist.AppendWALHeader(out)
		if n == 1 {
			out = append(out, corrupt...)
		} else {
			out = append(out, frame...)
		}
		_, _ = w.Write(out)
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	}))
	defer primary.Close()

	f, err := replicate.StartFollower(context.Background(), primary.URL, replicate.FollowerOptions{
		ReconnectMin: 5 * time.Millisecond,
		PollInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	defer f.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Stats()
		if st.Gaps >= 1 && st.AppliedSeq == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never recovered from the corrupt frame: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package replicate

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kcore"
	"kcore/internal/persist"
)

// PublisherOptions tunes the primary side. The zero value picks defaults.
type PublisherOptions struct {
	// HistoryBytes bounds the in-memory encoded-frame history kept for
	// resuming reconnecting followers without a snapshot. Default 4 MiB.
	HistoryBytes int
	// QueueBytes bounds the bytes queued per subscriber; a subscriber whose
	// transport cannot keep up past it is dropped (it reconnects and
	// resumes). Default 32 MiB.
	QueueBytes int
	// WALPath, when set, names the persist WAL file (persist.WALFile inside
	// the data directory); resume requests beyond the in-memory history are
	// served from it before falling back to a snapshot.
	WALPath string
	// WALResumeBytes bounds a file-served resume tail; a larger tail falls
	// back to a snapshot bootstrap instead (the snapshot is smaller at that
	// point). Default 64 MiB.
	WALResumeBytes int64
}

func (o PublisherOptions) withDefaults() PublisherOptions {
	if o.HistoryBytes <= 0 {
		o.HistoryBytes = 4 << 20
	}
	if o.QueueBytes <= 0 {
		o.QueueBytes = 32 << 20
	}
	if o.WALResumeBytes <= 0 {
		o.WALResumeBytes = 64 << 20
	}
	return o
}

// frame is one encoded WAL frame covering the engine seq range (start, seq].
type frame struct {
	start uint64
	seq   uint64
	data  []byte // immutable once published
}

// Publisher is the primary side of replication: it taps the engine's apply
// path (Engine.SetApplyTap), keeps a bounded frame history, and fans frames
// out to subscribers with per-subscriber bounded queues. One Publisher per
// engine; NewPublisher attaches the tap, Close detaches it.
type Publisher struct {
	engine *kcore.Engine
	opts   PublisherOptions

	// mu is taken by the apply tap while the engine's write lock is held
	// (lock order: engine.mu -> pub.mu). Nothing holding mu may call into
	// the engine.
	mu       sync.Mutex
	head     uint64 // engine seq after the last published frame
	hist     []frame
	histSize int
	subs     map[*Subscription]struct{}
	closed   bool

	bootstraps uint64 // snapshot bootstraps served
	resumes    uint64 // in-memory history resumes served
	walResumes uint64 // on-disk WAL resumes served
	drops      uint64 // subscribers dropped for backpressure
}

// ErrClosed is returned by Subscribe after Close.
var ErrClosed = errors.New("replicate: publisher closed")

// ErrDropped is returned by Subscription.Next after the publisher dropped
// the subscriber for backpressure (or was closed): the stream must end and
// the follower reconnect.
var ErrDropped = errors.New("replicate: subscriber dropped")

// NewPublisher attaches a publisher to the engine's apply tap. The engine
// must not already have a tap (replication owns it; the persistence hook is
// a separate slot).
func NewPublisher(engine *kcore.Engine, opts PublisherOptions) *Publisher {
	p := &Publisher{
		engine: engine,
		opts:   opts.withDefaults(),
		subs:   make(map[*Subscription]struct{}),
		head:   engine.Seq(),
	}
	engine.SetApplyTap(p.onApply)
	return p
}

// onApply is the engine tap: encode the batch as a WAL frame, extend the
// history, fan out. It runs under the engine write lock — keep it
// allocation-light and never call back into the engine.
func (p *Publisher) onApply(rec kcore.AppliedBatch) {
	data, err := persist.AppendWALFrame(nil, persist.WALRecord{Seq: rec.Seq, Updates: rec.Updates})
	if err != nil {
		// Unreachable: the engine validated the batch (no negative vertices,
		// known ops, at least one survivor). Dropping the frame would poison
		// every subscriber chain, so fail loudly instead of diverging.
		panic(fmt.Sprintf("replicate: encode applied batch: %v", err))
	}
	f := frame{start: rec.Seq - uint64(len(rec.Updates)), seq: rec.Seq, data: data}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if len(p.hist) == 0 && p.head != f.start {
		// Batches applied between NewPublisher reading the seq and the tap
		// attaching are pre-history; restart the contiguous window here.
		p.head = f.start
	}
	p.hist = append(p.hist, f)
	p.histSize += len(f.data)
	for p.histSize > p.opts.HistoryBytes && len(p.hist) > 0 {
		p.histSize -= len(p.hist[0].data)
		p.hist[0] = frame{}
		p.hist = p.hist[1:]
	}
	p.head = f.seq
	for sub := range p.subs {
		sub.enqueue(f)
	}
}

// histBase is the earliest seq resumable from memory (mu held).
func (p *Publisher) histBase() uint64 {
	if len(p.hist) > 0 {
		return p.hist[0].start
	}
	return p.head
}

// Bootstrap is what a new subscriber must send before live frames: either a
// full snapshot (Snapshot non-nil) or a resume backlog of encoded WAL
// frames tiling (from, BacklogSeq]. BacklogSeq is the seq the transport is
// at once the bootstrap is written; frames at or below it arriving from the
// live queue are skipped by the follower.
type Bootstrap struct {
	Snapshot []byte
	Backlog  [][]byte
	// BacklogSeq is the snapshot's seq, or the last backlog frame's (== the
	// resume point when the backlog is empty).
	BacklogSeq uint64
}

// Subscribe registers a subscriber and computes its bootstrap. When resume
// is true the publisher tries to serve a frame tail continuing exactly at
// `from` — from memory, then from the configured WAL file — and falls back
// to a snapshot; with resume false it always snapshots. The caller must
// Unsubscribe when the stream ends.
func (p *Publisher) Subscribe(remote string, from uint64, resume bool) (*Subscription, *Bootstrap, error) {
	sub := &Subscription{
		p:       p,
		remote:  remote,
		from:    from,
		started: time.Now(),
		notify:  make(chan struct{}, 1),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, nil, ErrClosed
	}
	// Register before computing the bootstrap: every frame applied from now
	// on lands in sub's queue, so bootstrap + queue tile with no gap (the
	// overlap at the boundary is handled by the follower's skip rule).
	p.subs[sub] = struct{}{}
	headReg := p.head
	if resume {
		if backlog, ok := p.memoryTail(from); ok {
			p.resumes++
			p.mu.Unlock()
			last := from
			if n := len(backlog); n > 0 {
				last = backlog[n-1].seq
			}
			return sub, &Bootstrap{Backlog: frameData(backlog), BacklogSeq: last}, nil
		}
	}
	p.mu.Unlock()

	if resume && p.opts.WALPath != "" && from < headReg {
		if backlog, ok := p.walTail(from, headReg); ok {
			p.mu.Lock()
			p.walResumes++
			p.mu.Unlock()
			return sub, &Bootstrap{Backlog: backlog, BacklogSeq: headReg}, nil
		}
	}

	// Snapshot fallback. The engine read lock is taken WITHOUT holding
	// p.mu (the tap takes p.mu under the engine write lock; holding both
	// here would invert that order). Frames applied during the capture are
	// already queued on sub and chain past the snapshot's seq.
	st, err := p.engine.View(kcore.WithIndex()).Index()
	if err != nil {
		p.Unsubscribe(sub)
		return nil, nil, fmt.Errorf("replicate: capture bootstrap state: %w", err)
	}
	snap, err := persist.EncodeSnapshot(st)
	if err != nil {
		p.Unsubscribe(sub)
		return nil, nil, fmt.Errorf("replicate: encode bootstrap snapshot: %w", err)
	}
	p.mu.Lock()
	p.bootstraps++
	p.mu.Unlock()
	return sub, &Bootstrap{Snapshot: snap, BacklogSeq: st.Seq}, nil
}

// memoryTail collects history frames tiling (from, head] (mu held). It
// fails when the history no longer reaches back to `from` or `from` is not
// a frame boundary of this lineage.
func (p *Publisher) memoryTail(from uint64) ([]frame, bool) {
	if from > p.head || from < p.histBase() {
		return nil, false
	}
	if from == p.head {
		return nil, true
	}
	start := -1
	for i, f := range p.hist {
		if f.seq <= from {
			continue
		}
		if f.start != from {
			return nil, false // not a frame boundary: different lineage
		}
		start = i
		break
	}
	if start < 0 {
		return nil, false
	}
	tail := make([]frame, len(p.hist)-start)
	copy(tail, p.hist[start:])
	return tail, true
}

// walTail reads the on-disk WAL tail covering (from, upto], re-encoded as
// stream frames. It fails — sending the subscriber to the snapshot path —
// when the log does not contain a chain from exactly `from` up to `upto`
// (compacted away, torn, sealed with a deferred backlog, or mid-write), or
// when the tail exceeds the byte budget.
func (p *Publisher) walTail(from, upto uint64) ([][]byte, bool) {
	var out [][]byte
	var total int64
	cur := from
	_, _, err := persist.ScanWALFile(p.opts.WALPath, func(rec persist.WALRecord) error {
		if rec.Seq <= from || rec.Seq > upto {
			return nil
		}
		start := rec.Seq - uint64(len(rec.Updates))
		if start != cur {
			return fmt.Errorf("tail does not chain at seq %d", cur)
		}
		data, err := persist.AppendWALFrame(nil, rec)
		if err != nil {
			return err
		}
		if total += int64(len(data)); total > p.opts.WALResumeBytes {
			return fmt.Errorf("tail exceeds %d bytes", p.opts.WALResumeBytes)
		}
		out = append(out, data)
		cur = rec.Seq
		return nil
	})
	if err != nil || cur != upto {
		return nil, false
	}
	return out, true
}

func frameData(frames []frame) [][]byte {
	out := make([][]byte, len(frames))
	for i, f := range frames {
		out[i] = f.data
	}
	return out
}

// Unsubscribe removes a subscriber; idempotent.
func (p *Publisher) Unsubscribe(sub *Subscription) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.subs, sub)
}

// Close detaches the engine tap and drops every subscriber. Streams end;
// reconnect attempts fail with ErrClosed.
func (p *Publisher) Close() {
	p.engine.SetApplyTap(nil)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for sub := range p.subs {
		sub.drop("publisher closed")
	}
}

// SubscriberStats describes one connected subscriber.
type SubscriberStats struct {
	Remote      string
	FromSeq     uint64 // seq the subscriber asked to resume from (0 = bootstrap)
	SentSeq     uint64 // last seq handed to the subscriber's transport
	QueuedBytes int64
	ConnectedMS int64
}

// Stats is a point-in-time snapshot of the publisher's counters.
type Stats struct {
	HeadSeq      uint64
	HistoryBytes int64
	HistoryBase  uint64
	Subscribers  []SubscriberStats
	Bootstraps   uint64
	Resumes      uint64
	WALResumes   uint64
	Drops        uint64
}

// Stats reports the publisher's counters and per-subscriber progress.
func (p *Publisher) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		HeadSeq:      p.head,
		HistoryBytes: int64(p.histSize),
		HistoryBase:  p.histBase(),
		Bootstraps:   p.bootstraps,
		Resumes:      p.resumes,
		WALResumes:   p.walResumes,
		Drops:        p.drops,
	}
	for sub := range p.subs {
		st.Subscribers = append(st.Subscribers, SubscriberStats{
			Remote:      sub.remote,
			FromSeq:     sub.from,
			SentSeq:     sub.sent.Load(),
			QueuedBytes: int64(sub.queued),
			ConnectedMS: time.Since(sub.started).Milliseconds(),
		})
	}
	return st
}

// Subscription is one subscriber's live-frame queue. The transport goroutine
// waits on Notify, drains with Next, and acknowledges transport progress
// with MarkSent.
type Subscription struct {
	p       *Publisher
	remote  string
	from    uint64
	started time.Time
	notify  chan struct{}
	sent    atomic.Uint64

	// guarded by p.mu:
	queue   []frame
	queued  int
	dropped string // non-empty once dropped; queue is discarded
}

// enqueue appends a frame (p.mu held). Overflow drops the subscriber whole:
// partial delivery would break the frame chain, so the follower must
// reconnect and resume instead.
func (s *Subscription) enqueue(f frame) {
	if s.dropped != "" {
		return
	}
	if s.queued+len(f.data) > s.p.opts.QueueBytes {
		s.p.drops++
		s.drop("backpressure")
		return
	}
	s.queue = append(s.queue, f)
	s.queued += len(f.data)
	s.wake()
}

// drop marks the subscriber dead (p.mu held).
func (s *Subscription) drop(reason string) {
	s.dropped = reason
	s.queue = nil
	s.queued = 0
	s.wake()
}

func (s *Subscription) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Notify signals queued frames (or the drop). Level-triggered with a
// one-slot channel: after a wakeup, drain with Next until empty.
func (s *Subscription) Notify() <-chan struct{} { return s.notify }

// Next drains the queued frames (non-blocking). lastSeq is the seq after
// the final returned frame (0 when none). After the publisher dropped the
// subscriber it returns ErrDropped — the transport must end the stream.
func (s *Subscription) Next() (frames [][]byte, lastSeq uint64, err error) {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	if s.dropped != "" {
		return nil, 0, fmt.Errorf("%w (%s)", ErrDropped, s.dropped)
	}
	if len(s.queue) == 0 {
		return nil, 0, nil
	}
	frames = make([][]byte, len(s.queue))
	for i, f := range s.queue {
		frames[i] = f.data
	}
	lastSeq = s.queue[len(s.queue)-1].seq
	s.queue = nil
	s.queued = 0
	return frames, lastSeq, nil
}

// MarkSent records that the transport wrote everything up to seq.
func (s *Subscription) MarkSent(seq uint64) {
	if seq > s.sent.Load() {
		s.sent.Store(seq)
	}
}

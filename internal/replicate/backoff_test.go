package replicate

import (
	"testing"
	"time"
)

// TestFollowerBackoffEnvelope pins the follower's reconnect pacing to its
// options: every delay stays inside the jitter envelope [min/2, min] →
// doubling → [max/2, max], and a fresh outage starts a fresh envelope
// (run builds a new Backoff per disconnect, so a success resets the
// delay). The fault package owns the Backoff unit tests; this test guards
// the option mapping.
func TestFollowerBackoffEnvelope(t *testing.T) {
	f := &Follower{opts: FollowerOptions{
		ReconnectMin: 80 * time.Millisecond,
		ReconnectMax: 300 * time.Millisecond,
	}.withDefaults()}

	bo := f.backoff()
	if bo.Min != 80*time.Millisecond || bo.Max != 300*time.Millisecond {
		t.Fatalf("backoff envelope = [%v, %v], want the reconnect options", bo.Min, bo.Max)
	}
	base := 80 * time.Millisecond
	for i := 0; i < 10; i++ {
		d := bo.Next()
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, base/2, base)
		}
		base = min(base*2, 300*time.Millisecond)
	}

	// A fresh envelope (what run builds after each successful stream)
	// starts back at the minimum.
	fresh := f.backoff()
	if d := fresh.Next(); d > 80*time.Millisecond {
		t.Fatalf("fresh envelope first delay %v, want <= ReconnectMin", d)
	}

	// Defaults apply when the options are zero.
	fd := &Follower{opts: FollowerOptions{}.withDefaults()}
	bo = fd.backoff()
	if bo.Min != 100*time.Millisecond || bo.Max != 5*time.Second {
		t.Fatalf("default envelope = [%v, %v], want [100ms, 5s]", bo.Min, bo.Max)
	}
}

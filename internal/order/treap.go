package order

import (
	"fmt"
	"math/rand/v2"
)

type tnode struct {
	v          int
	prio       uint64
	size       int
	l, r, p    *tnode
	next, prev *tnode // doubly linked list in order
}

func tsize(n *tnode) int {
	if n == nil {
		return 0
	}
	return n.size
}

// Treap is an order-statistics tree keyed by position (not by value): every
// node holds one vertex, subtree sizes give 1-based ranks in O(log n), and
// parent pointers let Rank start from the vertex's node directly — this is
// the one-to-one vertex→node mapping the paper introduces to make rank
// queries possible without knowing the rank in advance (Section VI(A)).
type Treap struct {
	root  *tnode
	nodes map[int]*tnode
	head  *tnode
	tail  *tnode
	rng   *rand.Rand
}

var _ List = (*Treap)(nil)

// NewTreap returns an empty treap whose priorities are drawn from a PCG
// seeded with seed (deterministic for tests).
func NewTreap(seed uint64) *Treap {
	return &Treap{
		nodes: make(map[int]*tnode),
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Len reports the number of elements.
func (t *Treap) Len() int { return len(t.nodes) }

// Contains reports whether v is present.
func (t *Treap) Contains(v int) bool { _, ok := t.nodes[v]; return ok }

func (t *Treap) newNode(v int) *tnode {
	if _, ok := t.nodes[v]; ok {
		panic(fmt.Sprintf("order: vertex %d already in treap", v))
	}
	n := &tnode{v: v, prio: t.rng.Uint64(), size: 1}
	t.nodes[v] = n
	return n
}

// PushFront inserts v at the beginning of the order.
func (t *Treap) PushFront(v int) {
	n := t.newNode(v)
	// DLL.
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
	// Tree: attach at leftmost position.
	if t.root == nil {
		t.root = n
		return
	}
	a := t.root
	for a.l != nil {
		a = a.l
	}
	a.l = n
	n.p = a
	t.fixupInsert(n)
}

// PushBack inserts v at the end of the order.
func (t *Treap) PushBack(v int) {
	n := t.newNode(v)
	n.prev = t.tail
	if t.tail != nil {
		t.tail.next = n
	}
	t.tail = n
	if t.head == nil {
		t.head = n
	}
	if t.root == nil {
		t.root = n
		return
	}
	a := t.root
	for a.r != nil {
		a = a.r
	}
	a.r = n
	n.p = a
	t.fixupInsert(n)
}

// InsertAfter inserts v immediately after after.
func (t *Treap) InsertAfter(after, v int) {
	x, ok := t.nodes[after]
	if !ok {
		panic(fmt.Sprintf("order: InsertAfter: %d not in treap", after))
	}
	n := t.newNode(v)
	// DLL.
	n.prev = x
	n.next = x.next
	if x.next != nil {
		x.next.prev = n
	} else {
		t.tail = n
	}
	x.next = n
	// Tree: successor position of x.
	if x.r == nil {
		x.r = n
		n.p = x
	} else {
		a := x.r
		for a.l != nil {
			a = a.l
		}
		a.l = n
		n.p = a
	}
	t.fixupInsert(n)
}

// InsertBefore inserts v immediately before before.
func (t *Treap) InsertBefore(before, v int) {
	x, ok := t.nodes[before]
	if !ok {
		panic(fmt.Sprintf("order: InsertBefore: %d not in treap", before))
	}
	n := t.newNode(v)
	n.next = x
	n.prev = x.prev
	if x.prev != nil {
		x.prev.next = n
	} else {
		t.head = n
	}
	x.prev = n
	if x.l == nil {
		x.l = n
		n.p = x
	} else {
		a := x.l
		for a.r != nil {
			a = a.r
		}
		a.r = n
		n.p = a
	}
	t.fixupInsert(n)
}

// fixupInsert walks size increments up from the freshly attached leaf n and
// then restores the min-heap priority invariant by rotations.
func (t *Treap) fixupInsert(n *tnode) {
	for a := n.p; a != nil; a = a.p {
		a.size++
	}
	for n.p != nil && n.prio < n.p.prio {
		t.rotateUp(n)
	}
}

// rotateUp rotates n above its parent, preserving in-order sequence,
// sizes, and parent pointers.
func (t *Treap) rotateUp(n *tnode) {
	p := n.p
	g := p.p
	if n == p.l {
		p.l = n.r
		if n.r != nil {
			n.r.p = p
		}
		n.r = p
	} else {
		p.r = n.l
		if n.l != nil {
			n.l.p = p
		}
		n.l = p
	}
	p.p = n
	n.p = g
	if g == nil {
		t.root = n
	} else if g.l == p {
		g.l = n
	} else {
		g.r = n
	}
	p.size = tsize(p.l) + tsize(p.r) + 1
	n.size = tsize(n.l) + tsize(n.r) + 1
}

// Remove deletes v.
func (t *Treap) Remove(v int) {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Remove: %d not in treap", v))
	}
	// DLL unlink.
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	// Rotate n down to a leaf.
	for n.l != nil || n.r != nil {
		var c *tnode
		switch {
		case n.l == nil:
			c = n.r
		case n.r == nil:
			c = n.l
		case n.l.prio < n.r.prio:
			c = n.l
		default:
			c = n.r
		}
		t.rotateUp(c)
	}
	// Detach leaf and decrement sizes on the path to the root.
	p := n.p
	if p == nil {
		t.root = nil
	} else {
		if p.l == n {
			p.l = nil
		} else {
			p.r = nil
		}
		for a := p; a != nil; a = a.p {
			a.size--
		}
	}
	n.p, n.l, n.r, n.next, n.prev = nil, nil, nil, nil, nil
	delete(t.nodes, v)
}

// Rank returns the 1-based position of v in O(log n) expected time.
func (t *Treap) Rank(v int) int {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Rank: %d not in treap", v))
	}
	r := tsize(n.l) + 1
	for a := n; a.p != nil; a = a.p {
		if a == a.p.r {
			r += tsize(a.p.l) + 1
		}
	}
	return r
}

// Key returns the rank as a position-monotone key.
func (t *Treap) Key(v int) uint64 { return uint64(t.Rank(v)) }

// Less reports whether a precedes b.
func (t *Treap) Less(a, b int) bool {
	if a == b {
		return false
	}
	return t.Rank(a) < t.Rank(b)
}

// Front returns the first element.
func (t *Treap) Front() (int, bool) {
	if t.head == nil {
		return 0, false
	}
	return t.head.v, true
}

// Back returns the last element.
func (t *Treap) Back() (int, bool) {
	if t.tail == nil {
		return 0, false
	}
	return t.tail.v, true
}

// Next returns the element after v in O(1).
func (t *Treap) Next(v int) (int, bool) {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Next: %d not in treap", v))
	}
	if n.next == nil {
		return 0, false
	}
	return n.next.v, true
}

// Prev returns the element before v in O(1).
func (t *Treap) Prev(v int) (int, bool) {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Prev: %d not in treap", v))
	}
	if n.prev == nil {
		return 0, false
	}
	return n.prev.v, true
}

// checkInvariants validates heap order, subtree sizes, parent pointers, and
// DLL/tree order agreement. Test helper.
func (t *Treap) checkInvariants() error {
	var inorder []int
	var walk func(n *tnode) (int, error)
	walk = func(n *tnode) (int, error) {
		if n == nil {
			return 0, nil
		}
		if n.l != nil {
			if n.l.p != n {
				return 0, fmt.Errorf("parent pointer broken at %d.l", n.v)
			}
			if n.l.prio < n.prio {
				return 0, fmt.Errorf("heap violated at %d", n.v)
			}
		}
		if n.r != nil {
			if n.r.p != n {
				return 0, fmt.Errorf("parent pointer broken at %d.r", n.v)
			}
			if n.r.prio < n.prio {
				return 0, fmt.Errorf("heap violated at %d", n.v)
			}
		}
		ls, err := walk(n.l)
		if err != nil {
			return 0, err
		}
		inorder = append(inorder, n.v)
		rs, err := walk(n.r)
		if err != nil {
			return 0, err
		}
		if n.size != ls+rs+1 {
			return 0, fmt.Errorf("size broken at %d: %d != %d", n.v, n.size, ls+rs+1)
		}
		return ls + rs + 1, nil
	}
	total, err := walk(t.root)
	if err != nil {
		return err
	}
	if total != len(t.nodes) {
		return fmt.Errorf("tree has %d nodes, map has %d", total, len(t.nodes))
	}
	i := 0
	for n := t.head; n != nil; n = n.next {
		if i >= len(inorder) || inorder[i] != n.v {
			return fmt.Errorf("DLL and tree inorder diverge at index %d", i)
		}
		i++
	}
	if i != total {
		return fmt.Errorf("DLL has %d nodes, tree has %d", i, total)
	}
	return nil
}

package order

import "fmt"

// Treap is an order-statistics tree keyed by position (not by value): every
// node holds one vertex, subtree sizes give 1-based ranks in O(log n), and
// parent pointers let Rank start from the vertex's node directly — this is
// the one-to-one vertex→node mapping the paper introduces to make rank
// queries possible without knowing the rank in advance (Section VI(A)).
//
// Nodes live in an Arena: tree and list links are int32 handles into the
// arena's field slices, and the vertex→node map of the previous
// implementation is a direct slice index. Steady-state updates allocate
// nothing. Several treaps may share one arena (see Arena).
type Treap struct {
	a    *Arena
	id   int32
	root int32
	head int32
	tail int32
	n    int
	rng  uint64 // splitmix64 state for priorities
}

var _ List = (*Treap)(nil)

// NewTreap returns an empty treap on its own private arena, with priorities
// drawn deterministically from seed.
func NewTreap(seed uint64) *Treap { return NewTreapOn(NewArena(), seed) }

// NewTreapOn returns an empty treap whose nodes live on the shared arena a.
// Lists sharing an arena must hold disjoint vertex sets.
func NewTreapOn(a *Arena, seed uint64) *Treap {
	return &Treap{a: a, id: a.register(), rng: seed ^ 0x9e3779b97f4a7c15}
}

// prio draws the next node priority (splitmix64: allocation-free and
// deterministic for a given seed).
func (t *Treap) prio() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len reports the number of elements.
func (t *Treap) Len() int { return t.n }

// Contains reports whether v is present.
func (t *Treap) Contains(v int) bool { return t.a.handle(t.id, v) != 0 }

func (t *Treap) newNode(v int) int32 {
	h := t.a.alloc(t.id, v, t.prio(), "treap")
	t.n++
	return h
}

// PushFront inserts v at the beginning of the order.
func (t *Treap) PushFront(v int) {
	a := t.a
	n := t.newNode(v)
	// DLL.
	a.next[n] = t.head
	if t.head != 0 {
		a.prev[t.head] = n
	}
	t.head = n
	if t.tail == 0 {
		t.tail = n
	}
	// Tree: attach at leftmost position.
	if t.root == 0 {
		t.root = n
		return
	}
	x := t.root
	for a.left[x] != 0 {
		x = a.left[x]
	}
	a.left[x] = n
	a.par[n] = x
	t.fixupInsert(n)
}

// PushBack inserts v at the end of the order.
func (t *Treap) PushBack(v int) {
	a := t.a
	n := t.newNode(v)
	a.prev[n] = t.tail
	if t.tail != 0 {
		a.next[t.tail] = n
	}
	t.tail = n
	if t.head == 0 {
		t.head = n
	}
	if t.root == 0 {
		t.root = n
		return
	}
	x := t.root
	for a.right[x] != 0 {
		x = a.right[x]
	}
	a.right[x] = n
	a.par[n] = x
	t.fixupInsert(n)
}

// InsertAfter inserts v immediately after after.
func (t *Treap) InsertAfter(after, v int) {
	a := t.a
	x := a.mustHandle(t.id, after, "InsertAfter", "treap")
	n := t.newNode(v)
	// DLL.
	a.prev[n] = x
	a.next[n] = a.next[x]
	if a.next[x] != 0 {
		a.prev[a.next[x]] = n
	} else {
		t.tail = n
	}
	a.next[x] = n
	// Tree: successor position of x.
	if a.right[x] == 0 {
		a.right[x] = n
		a.par[n] = x
	} else {
		y := a.right[x]
		for a.left[y] != 0 {
			y = a.left[y]
		}
		a.left[y] = n
		a.par[n] = y
	}
	t.fixupInsert(n)
}

// InsertBefore inserts v immediately before before.
func (t *Treap) InsertBefore(before, v int) {
	a := t.a
	x := a.mustHandle(t.id, before, "InsertBefore", "treap")
	n := t.newNode(v)
	a.next[n] = x
	a.prev[n] = a.prev[x]
	if a.prev[x] != 0 {
		a.next[a.prev[x]] = n
	} else {
		t.head = n
	}
	a.prev[x] = n
	if a.left[x] == 0 {
		a.left[x] = n
		a.par[n] = x
	} else {
		y := a.left[x]
		for a.right[y] != 0 {
			y = a.right[y]
		}
		a.right[y] = n
		a.par[n] = y
	}
	t.fixupInsert(n)
}

// fixupInsert walks size increments up from the freshly attached leaf n and
// then restores the min-heap priority invariant by rotations.
func (t *Treap) fixupInsert(n int32) {
	a := t.a
	for x := a.par[n]; x != 0; x = a.par[x] {
		a.size[x]++
	}
	for a.par[n] != 0 && a.key[n] < a.key[a.par[n]] {
		t.rotateUp(n)
	}
}

// rotateUp rotates n above its parent, preserving in-order sequence,
// sizes, and parent links.
func (t *Treap) rotateUp(n int32) {
	a := t.a
	p := a.par[n]
	g := a.par[p]
	if n == a.left[p] {
		a.left[p] = a.right[n]
		if a.right[n] != 0 {
			a.par[a.right[n]] = p
		}
		a.right[n] = p
	} else {
		a.right[p] = a.left[n]
		if a.left[n] != 0 {
			a.par[a.left[n]] = p
		}
		a.left[n] = p
	}
	a.par[p] = n
	a.par[n] = g
	if g == 0 {
		t.root = n
	} else if a.left[g] == p {
		a.left[g] = n
	} else {
		a.right[g] = n
	}
	a.size[p] = a.size[a.left[p]] + a.size[a.right[p]] + 1
	a.size[n] = a.size[a.left[n]] + a.size[a.right[n]] + 1
}

// Remove deletes v. Its node handle goes back to the arena's free list, so
// a following insertion (into this list or a sibling on the same arena)
// reuses the slot.
func (t *Treap) Remove(v int) {
	a := t.a
	n := a.mustHandle(t.id, v, "Remove", "treap")
	// DLL unlink.
	if a.prev[n] != 0 {
		a.next[a.prev[n]] = a.next[n]
	} else {
		t.head = a.next[n]
	}
	if a.next[n] != 0 {
		a.prev[a.next[n]] = a.prev[n]
	} else {
		t.tail = a.prev[n]
	}
	// Rotate n down to a leaf.
	for a.left[n] != 0 || a.right[n] != 0 {
		var c int32
		switch {
		case a.left[n] == 0:
			c = a.right[n]
		case a.right[n] == 0:
			c = a.left[n]
		case a.key[a.left[n]] < a.key[a.right[n]]:
			c = a.left[n]
		default:
			c = a.right[n]
		}
		t.rotateUp(c)
	}
	// Detach leaf and decrement sizes on the path to the root.
	p := a.par[n]
	if p == 0 {
		t.root = 0
	} else {
		if a.left[p] == n {
			a.left[p] = 0
		} else {
			a.right[p] = 0
		}
		for x := p; x != 0; x = a.par[x] {
			a.size[x]--
		}
	}
	t.n--
	a.release(n)
}

// Rank returns the 1-based position of v in O(log n) expected time.
func (t *Treap) Rank(v int) int {
	a := t.a
	n := a.mustHandle(t.id, v, "Rank", "treap")
	r := int(a.size[a.left[n]]) + 1
	for x := n; a.par[x] != 0; x = a.par[x] {
		if x == a.right[a.par[x]] {
			r += int(a.size[a.left[a.par[x]]]) + 1
		}
	}
	return r
}

// Key returns the rank as a position-monotone key.
func (t *Treap) Key(v int) uint64 { return uint64(t.Rank(v)) }

// Less reports whether a precedes b.
func (t *Treap) Less(a, b int) bool {
	if a == b {
		return false
	}
	return t.Rank(a) < t.Rank(b)
}

// Front returns the first element.
func (t *Treap) Front() (int, bool) {
	if t.head == 0 {
		return 0, false
	}
	return int(t.a.vert[t.head]), true
}

// Back returns the last element.
func (t *Treap) Back() (int, bool) {
	if t.tail == 0 {
		return 0, false
	}
	return int(t.a.vert[t.tail]), true
}

// Next returns the element after v in O(1).
func (t *Treap) Next(v int) (int, bool) {
	n := t.a.mustHandle(t.id, v, "Next", "treap")
	if t.a.next[n] == 0 {
		return 0, false
	}
	return int(t.a.vert[t.a.next[n]]), true
}

// Prev returns the element before v in O(1).
func (t *Treap) Prev(v int) (int, bool) {
	n := t.a.mustHandle(t.id, v, "Prev", "treap")
	if t.a.prev[n] == 0 {
		return 0, false
	}
	return int(t.a.vert[t.a.prev[n]]), true
}

// checkInvariants validates heap order, subtree sizes, parent links, DLL
// and tree order agreement, and arena slot consistency. Test helper.
func (t *Treap) checkInvariants() error {
	a := t.a
	var inorder []int32
	var walk func(n int32) (int, error)
	walk = func(n int32) (int, error) {
		if n == 0 {
			return 0, nil
		}
		if l := a.left[n]; l != 0 {
			if a.par[l] != n {
				return 0, fmt.Errorf("parent link broken at %d.left", a.vert[n])
			}
			if a.key[l] < a.key[n] {
				return 0, fmt.Errorf("heap violated at %d", a.vert[n])
			}
		}
		if r := a.right[n]; r != 0 {
			if a.par[r] != n {
				return 0, fmt.Errorf("parent link broken at %d.right", a.vert[n])
			}
			if a.key[r] < a.key[n] {
				return 0, fmt.Errorf("heap violated at %d", a.vert[n])
			}
		}
		if a.owner[n] != t.id {
			return 0, fmt.Errorf("node of %d owned by list %d, not %d", a.vert[n], a.owner[n], t.id)
		}
		if a.slot[a.vert[n]] != n {
			return 0, fmt.Errorf("slot of %d does not point back to its node", a.vert[n])
		}
		ls, err := walk(a.left[n])
		if err != nil {
			return 0, err
		}
		inorder = append(inorder, n)
		rs, err := walk(a.right[n])
		if err != nil {
			return 0, err
		}
		if int(a.size[n]) != ls+rs+1 {
			return 0, fmt.Errorf("size broken at %d: %d != %d", a.vert[n], a.size[n], ls+rs+1)
		}
		return ls + rs + 1, nil
	}
	total, err := walk(t.root)
	if err != nil {
		return err
	}
	if total != t.n {
		return fmt.Errorf("tree has %d nodes, list claims %d", total, t.n)
	}
	i := 0
	for n := t.head; n != 0; n = a.next[n] {
		if i >= len(inorder) || inorder[i] != n {
			return fmt.Errorf("DLL and tree inorder diverge at index %d", i)
		}
		i++
	}
	if i != total {
		return fmt.Errorf("DLL has %d nodes, tree has %d", i, total)
	}
	return nil
}

package order

import (
	"math/rand/v2"
	"testing"
)

// Differential tests: the arena-backed structures must be behaviorally
// identical to a pointer-based container/list reference, including when
// several lists share one arena and vertices migrate between them (the
// korder level-migration pattern).

// checkAgainst compares every observable of l against the oracle ref.
func checkAgainst(t *testing.T, tag string, l, ref List) {
	t.Helper()
	if l.Len() != ref.Len() {
		t.Fatalf("%s: Len=%d want %d", tag, l.Len(), ref.Len())
	}
	lf, lok := l.Front()
	rf, rok := ref.Front()
	if lok != rok || lf != rf {
		t.Fatalf("%s: Front=(%d,%v) want (%d,%v)", tag, lf, lok, rf, rok)
	}
	lb, lok := l.Back()
	rb, rok := ref.Back()
	if lok != rok || lb != rb {
		t.Fatalf("%s: Back=(%d,%v) want (%d,%v)", tag, lb, lok, rb, rok)
	}
	// Full forward walk: sequence, Next, Prev, Rank, Less vs predecessor.
	prev := -1
	rank := 0
	for v, ok := ref.Front(); ok; v, ok = ref.Next(v) {
		rank++
		if !l.Contains(v) {
			t.Fatalf("%s: Contains(%d)=false", tag, v)
		}
		if got := l.Rank(v); got != rank {
			t.Fatalf("%s: Rank(%d)=%d want %d", tag, v, got, rank)
		}
		if prev >= 0 {
			if !l.Less(prev, v) || l.Less(v, prev) {
				t.Fatalf("%s: Less(%d,%d) disagrees with order", tag, prev, v)
			}
			if p, ok := l.Prev(v); !ok || p != prev {
				t.Fatalf("%s: Prev(%d)=(%d,%v) want %d", tag, v, p, ok, prev)
			}
			if n, ok := l.Next(prev); !ok || n != v {
				t.Fatalf("%s: Next(%d)=(%d,%v) want %d", tag, prev, n, ok, v)
			}
		}
		prev = v
	}
	if rank != l.Len() {
		t.Fatalf("%s: walked %d elements, Len=%d", tag, rank, l.Len())
	}
}

// TestDifferentialSharedArena drives random insert/remove/move sequences
// through several lists sharing ONE arena and a container/list oracle per
// list, asserting Rank/Less/Next/Prev (and everything else observable)
// agree after every batch of operations. Vertex moves between lists
// exercise the level-migration slot reuse.
func TestDifferentialSharedArena(t *testing.T) {
	const lists = 4
	for _, k := range kinds() {
		rng := rand.New(rand.NewPCG(7, uint64(k)))
		a := NewArena()
		var impl [lists]List
		var ref [lists]List
		for i := range impl {
			impl[i] = NewListOn(a, k, uint64(100+i))
			ref[i] = newPtrList()
		}
		where := map[int]int{} // vertex -> list index
		var vs []int
		nextID := 0

		insert := func(li int, v int) {
			l, r := impl[li], ref[li]
			switch {
			case l.Len() == 0 || rng.IntN(4) == 0:
				if rng.IntN(2) == 0 {
					l.PushFront(v)
					r.PushFront(v)
				} else {
					l.PushBack(v)
					r.PushBack(v)
				}
			default:
				// Anchor on a random existing element of this list.
				anchor := -1
				for _, w := range vs {
					if where[w] == li && rng.IntN(3) == 0 {
						anchor = w
						break
					}
				}
				if anchor < 0 {
					anchor, _ = r.Front()
				}
				if rng.IntN(2) == 0 {
					l.InsertAfter(anchor, v)
					r.InsertAfter(anchor, v)
				} else {
					l.InsertBefore(anchor, v)
					r.InsertBefore(anchor, v)
				}
			}
			where[v] = li
		}

		for step := 0; step < 3000; step++ {
			switch op := rng.IntN(10); {
			case op < 4 || len(vs) == 0: // insert a fresh vertex
				v := nextID
				nextID++
				insert(rng.IntN(lists), v)
				vs = append(vs, v)
			case op < 6: // remove a vertex outright
				i := rng.IntN(len(vs))
				v := vs[i]
				li := where[v]
				impl[li].Remove(v)
				ref[li].Remove(v)
				delete(where, v)
				vs[i] = vs[len(vs)-1]
				vs = vs[:len(vs)-1]
			default: // migrate a vertex to another list (level move)
				v := vs[rng.IntN(len(vs))]
				li := where[v]
				before := a.Len()
				impl[li].Remove(v)
				ref[li].Remove(v)
				to := (li + 1 + rng.IntN(lists-1)) % lists
				insert(to, v)
				if a.Len() != before {
					t.Fatalf("%v: migration changed arena node count %d -> %d (slot not reused)",
						k, before, a.Len())
				}
			}
			if step%50 == 0 || step > 2900 {
				for i := range impl {
					checkAgainst(t, k.String(), impl[i], ref[i])
				}
			}
		}
		if a.Len() != len(vs) {
			t.Fatalf("%v: arena holds %d nodes, %d vertices live", k, a.Len(), len(vs))
		}
	}
}

// FuzzListOps interprets the fuzz input as an operation stream and runs it
// through the arena treap, the arena tag list, and the container/list
// reference simultaneously, requiring identical observable behavior.
func FuzzListOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x43, 0x85, 0x16, 0xff, 3, 9})
	f.Add([]byte{0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87})
	f.Fuzz(func(t *testing.T, data []byte) {
		impls := []List{NewTreap(1), NewTagList(), newPtrList()}
		var vs []int
		nextID := 0
		for pc := 0; pc+1 < len(data); pc += 2 {
			op, arg := data[pc]%6, int(data[pc+1])
			switch {
			case op <= 1 || len(vs) == 0: // insert front/back
				v := nextID
				nextID++
				for _, l := range impls {
					if op == 0 {
						l.PushFront(v)
					} else {
						l.PushBack(v)
					}
				}
				vs = append(vs, v)
			case op <= 3: // insert relative to an existing element
				anchor := vs[arg%len(vs)]
				v := nextID
				nextID++
				for _, l := range impls {
					if op == 2 {
						l.InsertAfter(anchor, v)
					} else {
						l.InsertBefore(anchor, v)
					}
				}
				vs = append(vs, v)
			case op == 4: // remove
				i := arg % len(vs)
				v := vs[i]
				for _, l := range impls {
					l.Remove(v)
				}
				vs[i] = vs[len(vs)-1]
				vs = vs[:len(vs)-1]
			default: // query: ranks and pairwise order must agree
				a := vs[arg%len(vs)]
				ref := impls[2]
				want := ref.Rank(a)
				for _, l := range impls[:2] {
					if got := l.Rank(a); got != want {
						t.Fatalf("Rank(%d): %d want %d", a, got, want)
					}
				}
				b := vs[(arg*7+1)%len(vs)]
				wantLess := ref.Less(a, b)
				for _, l := range impls[:2] {
					if got := l.Less(a, b); got != wantLess {
						t.Fatalf("Less(%d,%d): %v want %v", a, b, got, wantLess)
					}
				}
			}
		}
		// Final full-sequence agreement.
		ref := impls[2]
		for _, l := range impls[:2] {
			if l.Len() != ref.Len() {
				t.Fatalf("Len %d want %d", l.Len(), ref.Len())
			}
			v, ok := l.Front()
			rv, rok := ref.Front()
			for rok {
				if !ok || v != rv {
					t.Fatalf("sequence diverges: (%d,%v) want (%d,%v)", v, ok, rv, rok)
				}
				v, ok = l.Next(v)
				rv, rok = ref.Next(rv)
			}
			if ok {
				t.Fatalf("implementation longer than reference")
			}
		}
	})
}

// TestTagListGapExhaustion forces tag-gap exhaustion between two adjacent
// elements and verifies renumbering keeps the order intact (differentially
// against the reference) while bumping Renumbers().
func TestTagListGapExhaustion(t *testing.T) {
	tl := NewTagList()
	ref := newPtrList()
	tl.PushBack(0)
	ref.PushBack(0)
	tl.PushBack(1)
	ref.PushBack(1)
	// Inserting always immediately before 1 halves the (0, 1) tag gap each
	// time; 64-bit tags guarantee exhaustion within ~64 inserts, after which
	// every further insert must renumber rather than corrupt the order.
	for v := 2; v < 202; v++ {
		tl.InsertBefore(1, v)
		ref.InsertBefore(1, v)
	}
	if tl.Renumbers() == 0 {
		t.Fatal("200 midpoint insertions did not exhaust a 64-bit tag gap")
	}
	checkAgainst(t, "taglist-exhaustion", tl, ref)

	// Same stress on a shared arena with a sibling list present: renumbering
	// must only touch the exhausted list.
	a := NewArena()
	shared := NewTagListOn(a)
	sibling := NewTagListOn(a)
	sibRef := newPtrList()
	for v := 1000; v < 1010; v++ {
		sibling.PushBack(v)
		sibRef.PushBack(v)
	}
	shared.PushBack(0)
	shared.PushBack(1)
	for v := 2; v < 150; v++ {
		shared.InsertBefore(1, v)
	}
	if shared.Renumbers() == 0 {
		t.Fatal("shared-arena list did not renumber")
	}
	checkAgainst(t, "taglist-sibling", sibling, sibRef)
}

package order

import (
	"math/rand/v2"
	"testing"
)

// Insertion-churn benchmarks: the same treap algorithm on the arena layout
// versus the previous pointer-node + map layout (ptrTreap, reference_test),
// plus the container/list baseline. The workload mimics order maintenance:
// grow a window, then slide it with one Remove and one interior InsertAfter
// per step.

func churn(b *testing.B, l List) {
	const window = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i < window {
			l.PushBack(i)
			continue
		}
		l.Remove(i - window)
		l.InsertAfter(i-1, i)
	}
}

func BenchmarkOrderInsertArena(b *testing.B)   { churn(b, NewTreap(1)) }
func BenchmarkOrderInsertPointer(b *testing.B) { churn(b, newPtrTreap(1)) }

func BenchmarkOrderInsertArenaTagList(b *testing.B) { churn(b, NewTagList()) }
func BenchmarkOrderInsertPtrList(b *testing.B)      { churn(b, newPtrList()) }

// BenchmarkOrderMigrate measures the korder level-migration pattern: moving
// vertices back and forth between two lists sharing one arena (slot reuse,
// no allocation in steady state).
func BenchmarkOrderMigrate(b *testing.B) {
	const n = 1024
	a := NewArena()
	lo := NewTreapOn(a, 1)
	hi := NewTreapOn(a, 2)
	for v := 0; v < n; v++ {
		lo.PushBack(v)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := rng.IntN(n)
		if lo.Contains(v) {
			lo.Remove(v)
			hi.PushFront(v)
		} else {
			hi.Remove(v)
			lo.PushBack(v)
		}
	}
}

func BenchmarkOrderRankArena(b *testing.B) {
	tr := NewTreap(1)
	for i := 0; i < 100000; i++ {
		tr.PushBack(i)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Rank(rng.IntN(100000))
	}
}

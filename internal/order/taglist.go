package order

import (
	"fmt"
	"math"
)

type lnode struct {
	v          int
	tag        uint64
	next, prev *lnode
}

// TagList is a labeled order-maintenance list in the style of Dietz and
// Sleator: every element carries a 64-bit tag, order comparison is a tag
// comparison (O(1)), and insertion places the new tag at the midpoint of
// its neighbors' tags, renumbering the whole list in the rare case the gap
// is exhausted. With 64-bit tags and the uniform renumbering below, global
// renumbering is amortized away for the update patterns core maintenance
// produces (front/back/cursor insertions).
//
// TagList is the ablation counterpart of Treap: Less costs O(1) instead of
// O(log n), at the price of O(n) Rank (used only in tests/diagnostics).
type TagList struct {
	head, tail *lnode
	nodes      map[int]*lnode
	renumbers  int // diagnostic: how many global renumberings happened
}

var _ List = (*TagList)(nil)

// NewTagList returns an empty TagList.
func NewTagList() *TagList {
	return &TagList{nodes: make(map[int]*lnode)}
}

// Len reports the number of elements.
func (t *TagList) Len() int { return len(t.nodes) }

// Contains reports whether v is present.
func (t *TagList) Contains(v int) bool { _, ok := t.nodes[v]; return ok }

// Renumbers reports how many global renumberings occurred (diagnostics).
func (t *TagList) Renumbers() int { return t.renumbers }

func (t *TagList) newNode(v int) *lnode {
	if _, ok := t.nodes[v]; ok {
		panic(fmt.Sprintf("order: vertex %d already in taglist", v))
	}
	n := &lnode{v: v}
	t.nodes[v] = n
	return n
}

// lowerTag returns the tag bound below n (exclusive); 0 when n is the head.
func lowerTag(n *lnode) uint64 {
	if n.prev == nil {
		return 0
	}
	return n.prev.tag
}

// upperTag returns the tag bound above n (exclusive); MaxUint64 when n is
// the tail.
func upperTag(n *lnode) uint64 {
	if n.next == nil {
		return math.MaxUint64
	}
	return n.next.tag
}

// assignTag picks a tag strictly between lo and hi, renumbering first when
// the gap is exhausted. n must already be linked into the DLL.
func (t *TagList) assignTag(n *lnode) {
	lo, hi := lowerTag(n), upperTag(n)
	if hi-lo >= 2 {
		n.tag = lo + (hi-lo)/2
		return
	}
	t.renumber()
}

// renumber spreads all tags uniformly across the 64-bit space.
func (t *TagList) renumber() {
	t.renumbers++
	n := uint64(len(t.nodes))
	step := math.MaxUint64/(n+1) | 1
	tag := step
	for e := t.head; e != nil; e = e.next {
		e.tag = tag
		tag += step
	}
}

// PushFront inserts v at the beginning.
func (t *TagList) PushFront(v int) {
	n := t.newNode(v)
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
	t.assignTag(n)
}

// PushBack inserts v at the end.
func (t *TagList) PushBack(v int) {
	n := t.newNode(v)
	n.prev = t.tail
	if t.tail != nil {
		t.tail.next = n
	}
	t.tail = n
	if t.head == nil {
		t.head = n
	}
	t.assignTag(n)
}

// InsertAfter inserts v immediately after after.
func (t *TagList) InsertAfter(after, v int) {
	x, ok := t.nodes[after]
	if !ok {
		panic(fmt.Sprintf("order: InsertAfter: %d not in taglist", after))
	}
	n := t.newNode(v)
	n.prev = x
	n.next = x.next
	if x.next != nil {
		x.next.prev = n
	} else {
		t.tail = n
	}
	x.next = n
	t.assignTag(n)
}

// InsertBefore inserts v immediately before before.
func (t *TagList) InsertBefore(before, v int) {
	x, ok := t.nodes[before]
	if !ok {
		panic(fmt.Sprintf("order: InsertBefore: %d not in taglist", before))
	}
	n := t.newNode(v)
	n.next = x
	n.prev = x.prev
	if x.prev != nil {
		x.prev.next = n
	} else {
		t.head = n
	}
	x.prev = n
	t.assignTag(n)
}

// Remove deletes v.
func (t *TagList) Remove(v int) {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Remove: %d not in taglist", v))
	}
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.next, n.prev = nil, nil
	delete(t.nodes, v)
}

// Rank returns the 1-based position of v. O(n): TagList trades rank queries
// for O(1) comparisons; use Treap when ranks are needed.
func (t *TagList) Rank(v int) int {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Rank: %d not in taglist", v))
	}
	r := 1
	for e := t.head; e != n; e = e.next {
		r++
	}
	return r
}

// Key returns the tag as a position-monotone key in O(1).
func (t *TagList) Key(v int) uint64 {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Key: %d not in taglist", v))
	}
	return n.tag
}

// Less reports whether a precedes b in O(1).
func (t *TagList) Less(a, b int) bool {
	if a == b {
		return false
	}
	na, ok := t.nodes[a]
	if !ok {
		panic(fmt.Sprintf("order: Less: %d not in taglist", a))
	}
	nb, ok := t.nodes[b]
	if !ok {
		panic(fmt.Sprintf("order: Less: %d not in taglist", b))
	}
	return na.tag < nb.tag
}

// Front returns the first element.
func (t *TagList) Front() (int, bool) {
	if t.head == nil {
		return 0, false
	}
	return t.head.v, true
}

// Back returns the last element.
func (t *TagList) Back() (int, bool) {
	if t.tail == nil {
		return 0, false
	}
	return t.tail.v, true
}

// Next returns the element after v.
func (t *TagList) Next(v int) (int, bool) {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Next: %d not in taglist", v))
	}
	if n.next == nil {
		return 0, false
	}
	return n.next.v, true
}

// Prev returns the element before v.
func (t *TagList) Prev(v int) (int, bool) {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: Prev: %d not in taglist", v))
	}
	if n.prev == nil {
		return 0, false
	}
	return n.prev.v, true
}

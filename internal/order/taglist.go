package order

import "math"

// TagList is a labeled order-maintenance list in the style of Dietz and
// Sleator: every element carries a 64-bit tag, order comparison is a tag
// comparison (O(1)), and insertion places the new tag at the midpoint of
// its neighbors' tags, renumbering the whole list in the rare case the gap
// is exhausted. With 64-bit tags and the uniform renumbering below, global
// renumbering is amortized away for the update patterns core maintenance
// produces (front/back/cursor insertions).
//
// TagList is the ablation counterpart of Treap: Less costs O(1) instead of
// O(log n), at the price of O(n) Rank (used only in tests/diagnostics).
//
// Nodes live in an Arena (tags in the arena's key column); steady-state
// updates allocate nothing. Several lists may share one arena (see Arena).
type TagList struct {
	a          *Arena
	id         int32
	head, tail int32
	n          int
	renumbers  int // diagnostic: how many global renumberings happened
}

var _ List = (*TagList)(nil)

// NewTagList returns an empty TagList on its own private arena.
func NewTagList() *TagList { return NewTagListOn(NewArena()) }

// NewTagListOn returns an empty TagList whose nodes live on the shared
// arena a. Lists sharing an arena must hold disjoint vertex sets.
func NewTagListOn(a *Arena) *TagList {
	return &TagList{a: a, id: a.register()}
}

// Len reports the number of elements.
func (t *TagList) Len() int { return t.n }

// Contains reports whether v is present.
func (t *TagList) Contains(v int) bool { return t.a.handle(t.id, v) != 0 }

// Renumbers reports how many global renumberings occurred (diagnostics).
func (t *TagList) Renumbers() int { return t.renumbers }

func (t *TagList) newNode(v int) int32 {
	h := t.a.alloc(t.id, v, 0, "taglist")
	t.n++
	return h
}

// lowerTag returns the tag bound below n (exclusive); 0 when n is the head.
func (t *TagList) lowerTag(n int32) uint64 {
	if t.a.prev[n] == 0 {
		return 0
	}
	return t.a.key[t.a.prev[n]]
}

// upperTag returns the tag bound above n (exclusive); MaxUint64 when n is
// the tail.
func (t *TagList) upperTag(n int32) uint64 {
	if t.a.next[n] == 0 {
		return math.MaxUint64
	}
	return t.a.key[t.a.next[n]]
}

// assignTag picks a tag strictly between the neighbors of n, renumbering
// first when the gap is exhausted. n must already be linked into the DLL.
func (t *TagList) assignTag(n int32) {
	lo, hi := t.lowerTag(n), t.upperTag(n)
	if hi-lo >= 2 {
		t.a.key[n] = lo + (hi-lo)/2
		return
	}
	t.renumber()
}

// renumber spreads all tags uniformly across the 64-bit space.
func (t *TagList) renumber() {
	t.renumbers++
	step := math.MaxUint64/(uint64(t.n)+1) | 1
	tag := step
	for e := t.head; e != 0; e = t.a.next[e] {
		t.a.key[e] = tag
		tag += step
	}
}

// PushFront inserts v at the beginning.
func (t *TagList) PushFront(v int) {
	a := t.a
	n := t.newNode(v)
	a.next[n] = t.head
	if t.head != 0 {
		a.prev[t.head] = n
	}
	t.head = n
	if t.tail == 0 {
		t.tail = n
	}
	t.assignTag(n)
}

// PushBack inserts v at the end.
func (t *TagList) PushBack(v int) {
	a := t.a
	n := t.newNode(v)
	a.prev[n] = t.tail
	if t.tail != 0 {
		a.next[t.tail] = n
	}
	t.tail = n
	if t.head == 0 {
		t.head = n
	}
	t.assignTag(n)
}

// InsertAfter inserts v immediately after after.
func (t *TagList) InsertAfter(after, v int) {
	a := t.a
	x := a.mustHandle(t.id, after, "InsertAfter", "taglist")
	n := t.newNode(v)
	a.prev[n] = x
	a.next[n] = a.next[x]
	if a.next[x] != 0 {
		a.prev[a.next[x]] = n
	} else {
		t.tail = n
	}
	a.next[x] = n
	t.assignTag(n)
}

// InsertBefore inserts v immediately before before.
func (t *TagList) InsertBefore(before, v int) {
	a := t.a
	x := a.mustHandle(t.id, before, "InsertBefore", "taglist")
	n := t.newNode(v)
	a.next[n] = x
	a.prev[n] = a.prev[x]
	if a.prev[x] != 0 {
		a.next[a.prev[x]] = n
	} else {
		t.head = n
	}
	a.prev[x] = n
	t.assignTag(n)
}

// Remove deletes v, returning its node handle to the arena's free list.
func (t *TagList) Remove(v int) {
	a := t.a
	n := a.mustHandle(t.id, v, "Remove", "taglist")
	if a.prev[n] != 0 {
		a.next[a.prev[n]] = a.next[n]
	} else {
		t.head = a.next[n]
	}
	if a.next[n] != 0 {
		a.prev[a.next[n]] = a.prev[n]
	} else {
		t.tail = a.prev[n]
	}
	t.n--
	a.release(n)
}

// Rank returns the 1-based position of v. O(n): TagList trades rank queries
// for O(1) comparisons; use Treap when ranks are needed.
func (t *TagList) Rank(v int) int {
	n := t.a.mustHandle(t.id, v, "Rank", "taglist")
	r := 1
	for e := t.head; e != n; e = t.a.next[e] {
		r++
	}
	return r
}

// Key returns the tag as a position-monotone key in O(1).
func (t *TagList) Key(v int) uint64 {
	n := t.a.mustHandle(t.id, v, "Key", "taglist")
	return t.a.key[n]
}

// Less reports whether a precedes b in O(1).
func (t *TagList) Less(a, b int) bool {
	if a == b {
		return false
	}
	na := t.a.mustHandle(t.id, a, "Less", "taglist")
	nb := t.a.mustHandle(t.id, b, "Less", "taglist")
	return t.a.key[na] < t.a.key[nb]
}

// Front returns the first element.
func (t *TagList) Front() (int, bool) {
	if t.head == 0 {
		return 0, false
	}
	return int(t.a.vert[t.head]), true
}

// Back returns the last element.
func (t *TagList) Back() (int, bool) {
	if t.tail == 0 {
		return 0, false
	}
	return int(t.a.vert[t.tail]), true
}

// Next returns the element after v.
func (t *TagList) Next(v int) (int, bool) {
	n := t.a.mustHandle(t.id, v, "Next", "taglist")
	if t.a.next[n] == 0 {
		return 0, false
	}
	return int(t.a.vert[t.a.next[n]]), true
}

// Prev returns the element before v.
func (t *TagList) Prev(v int) (int, bool) {
	n := t.a.mustHandle(t.id, v, "Prev", "taglist")
	if t.a.prev[n] == 0 {
		return 0, false
	}
	return int(t.a.vert[t.a.prev[n]]), true
}

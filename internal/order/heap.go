package order

// Item is an entry in MinHeap: a vertex keyed by a position snapshot.
type Item struct {
	Key uint64
	V   int
}

// MinHeap is the paper's jump structure B (Section VI(B)): a binary
// min-heap of (rank, vertex) pairs. Duplicate and stale entries are
// permitted; callers perform lazy deletion by validating the popped vertex.
// The zero value is an empty heap ready to use.
type MinHeap struct {
	items []Item
}

// Len reports the number of entries (including stale ones).
func (h *MinHeap) Len() int { return len(h.items) }

// Reset empties the heap, retaining capacity.
func (h *MinHeap) Reset() { h.items = h.items[:0] }

// Push inserts an entry.
func (h *MinHeap) Push(key uint64, v int) {
	h.items = append(h.items, Item{Key: key, V: v})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].Key <= h.items[i].Key {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

// Peek returns the minimum entry without removing it.
func (h *MinHeap) Peek() (Item, bool) {
	if len(h.items) == 0 {
		return Item{}, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum entry.
func (h *MinHeap) Pop() (Item, bool) {
	if len(h.items) == 0 {
		return Item{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].Key < h.items[small].Key {
			small = l
		}
		if r < len(h.items) && h.items[r].Key < h.items[small].Key {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top, true
}

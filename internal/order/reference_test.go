package order

import (
	"container/list"
	"fmt"
)

// This file holds the pointer-based reference implementations the arena
// structures are differentially tested and benchmarked against:
//
//   - ptrList: a container/list + map[int]*Element order list — the
//     canonical "one heap node per element behind a map" design, used as
//     the behavioral oracle for the differential tests and as the pointer
//     baseline for the insertion benchmarks.
//   - ptrTreap: the repository's previous pointer-node treap (one struct
//     per element, map[int]*node lookup), kept test-only so the
//     BenchmarkOrderInsert* pair compares the same algorithm across the
//     two memory layouts.

// ptrList implements List on container/list. Rank/Key/Less are O(n); the
// differential tests only use it at small sizes.
type ptrList struct {
	l     *list.List
	nodes map[int]*list.Element
}

var _ List = (*ptrList)(nil)

func newPtrList() *ptrList {
	return &ptrList{l: list.New(), nodes: make(map[int]*list.Element)}
}

func (p *ptrList) Len() int            { return p.l.Len() }
func (p *ptrList) Contains(v int) bool { _, ok := p.nodes[v]; return ok }

func (p *ptrList) checkNew(v int) {
	if _, ok := p.nodes[v]; ok {
		panic(fmt.Sprintf("order: vertex %d already in ptrlist", v))
	}
}

func (p *ptrList) must(v int, op string) *list.Element {
	e, ok := p.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: %s: %d not in ptrlist", op, v))
	}
	return e
}

func (p *ptrList) PushFront(v int) { p.checkNew(v); p.nodes[v] = p.l.PushFront(v) }
func (p *ptrList) PushBack(v int)  { p.checkNew(v); p.nodes[v] = p.l.PushBack(v) }

func (p *ptrList) InsertAfter(after, v int) {
	e := p.must(after, "InsertAfter")
	p.checkNew(v)
	p.nodes[v] = p.l.InsertAfter(v, e)
}

func (p *ptrList) InsertBefore(before, v int) {
	e := p.must(before, "InsertBefore")
	p.checkNew(v)
	p.nodes[v] = p.l.InsertBefore(v, e)
}

func (p *ptrList) Remove(v int) {
	e := p.must(v, "Remove")
	p.l.Remove(e)
	delete(p.nodes, v)
}

func (p *ptrList) Rank(v int) int {
	e := p.must(v, "Rank")
	r := 1
	for x := p.l.Front(); x != e; x = x.Next() {
		r++
	}
	return r
}

func (p *ptrList) Key(v int) uint64 { return uint64(p.Rank(v)) }

func (p *ptrList) Less(a, b int) bool {
	if a == b {
		return false
	}
	return p.Rank(a) < p.Rank(b)
}

func (p *ptrList) Front() (int, bool) {
	e := p.l.Front()
	if e == nil {
		return 0, false
	}
	return e.Value.(int), true
}

func (p *ptrList) Back() (int, bool) {
	e := p.l.Back()
	if e == nil {
		return 0, false
	}
	return e.Value.(int), true
}

func (p *ptrList) Next(v int) (int, bool) {
	e := p.must(v, "Next").Next()
	if e == nil {
		return 0, false
	}
	return e.Value.(int), true
}

func (p *ptrList) Prev(v int) (int, bool) {
	e := p.must(v, "Prev").Prev()
	if e == nil {
		return 0, false
	}
	return e.Value.(int), true
}

// ptrTreap is the pre-arena pointer treap (benchmark baseline).
type ptnode struct {
	v          int
	prio       uint64
	size       int
	l, r, p    *ptnode
	next, prev *ptnode
}

type ptrTreap struct {
	root  *ptnode
	nodes map[int]*ptnode
	head  *ptnode
	tail  *ptnode
	rng   uint64
}

var _ List = (*ptrTreap)(nil)

func newPtrTreap(seed uint64) *ptrTreap {
	return &ptrTreap{nodes: make(map[int]*ptnode), rng: seed ^ 0x9e3779b97f4a7c15}
}

func (t *ptrTreap) prio() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func ptsize(n *ptnode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (t *ptrTreap) Len() int            { return len(t.nodes) }
func (t *ptrTreap) Contains(v int) bool { _, ok := t.nodes[v]; return ok }

func (t *ptrTreap) newNode(v int) *ptnode {
	if _, ok := t.nodes[v]; ok {
		panic(fmt.Sprintf("order: vertex %d already in ptrtreap", v))
	}
	n := &ptnode{v: v, prio: t.prio(), size: 1}
	t.nodes[v] = n
	return n
}

func (t *ptrTreap) mustNode(v int, op string) *ptnode {
	n, ok := t.nodes[v]
	if !ok {
		panic(fmt.Sprintf("order: %s: %d not in ptrtreap", op, v))
	}
	return n
}

func (t *ptrTreap) PushFront(v int) {
	n := t.newNode(v)
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
	if t.root == nil {
		t.root = n
		return
	}
	a := t.root
	for a.l != nil {
		a = a.l
	}
	a.l = n
	n.p = a
	t.fixupInsert(n)
}

func (t *ptrTreap) PushBack(v int) {
	n := t.newNode(v)
	n.prev = t.tail
	if t.tail != nil {
		t.tail.next = n
	}
	t.tail = n
	if t.head == nil {
		t.head = n
	}
	if t.root == nil {
		t.root = n
		return
	}
	a := t.root
	for a.r != nil {
		a = a.r
	}
	a.r = n
	n.p = a
	t.fixupInsert(n)
}

func (t *ptrTreap) InsertAfter(after, v int) {
	x := t.mustNode(after, "InsertAfter")
	n := t.newNode(v)
	n.prev = x
	n.next = x.next
	if x.next != nil {
		x.next.prev = n
	} else {
		t.tail = n
	}
	x.next = n
	if x.r == nil {
		x.r = n
		n.p = x
	} else {
		a := x.r
		for a.l != nil {
			a = a.l
		}
		a.l = n
		n.p = a
	}
	t.fixupInsert(n)
}

func (t *ptrTreap) InsertBefore(before, v int) {
	x := t.mustNode(before, "InsertBefore")
	n := t.newNode(v)
	n.next = x
	n.prev = x.prev
	if x.prev != nil {
		x.prev.next = n
	} else {
		t.head = n
	}
	x.prev = n
	if x.l == nil {
		x.l = n
		n.p = x
	} else {
		a := x.l
		for a.r != nil {
			a = a.r
		}
		a.r = n
		n.p = a
	}
	t.fixupInsert(n)
}

func (t *ptrTreap) fixupInsert(n *ptnode) {
	for a := n.p; a != nil; a = a.p {
		a.size++
	}
	for n.p != nil && n.prio < n.p.prio {
		t.rotateUp(n)
	}
}

func (t *ptrTreap) rotateUp(n *ptnode) {
	p := n.p
	g := p.p
	if n == p.l {
		p.l = n.r
		if n.r != nil {
			n.r.p = p
		}
		n.r = p
	} else {
		p.r = n.l
		if n.l != nil {
			n.l.p = p
		}
		n.l = p
	}
	p.p = n
	n.p = g
	if g == nil {
		t.root = n
	} else if g.l == p {
		g.l = n
	} else {
		g.r = n
	}
	p.size = ptsize(p.l) + ptsize(p.r) + 1
	n.size = ptsize(n.l) + ptsize(n.r) + 1
}

func (t *ptrTreap) Remove(v int) {
	n := t.mustNode(v, "Remove")
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	for n.l != nil || n.r != nil {
		var c *ptnode
		switch {
		case n.l == nil:
			c = n.r
		case n.r == nil:
			c = n.l
		case n.l.prio < n.r.prio:
			c = n.l
		default:
			c = n.r
		}
		t.rotateUp(c)
	}
	p := n.p
	if p == nil {
		t.root = nil
	} else {
		if p.l == n {
			p.l = nil
		} else {
			p.r = nil
		}
		for a := p; a != nil; a = a.p {
			a.size--
		}
	}
	n.p, n.l, n.r, n.next, n.prev = nil, nil, nil, nil, nil
	delete(t.nodes, v)
}

func (t *ptrTreap) Rank(v int) int {
	n := t.mustNode(v, "Rank")
	r := ptsize(n.l) + 1
	for a := n; a.p != nil; a = a.p {
		if a == a.p.r {
			r += ptsize(a.p.l) + 1
		}
	}
	return r
}

func (t *ptrTreap) Key(v int) uint64 { return uint64(t.Rank(v)) }

func (t *ptrTreap) Less(a, b int) bool {
	if a == b {
		return false
	}
	return t.Rank(a) < t.Rank(b)
}

func (t *ptrTreap) Front() (int, bool) {
	if t.head == nil {
		return 0, false
	}
	return t.head.v, true
}

func (t *ptrTreap) Back() (int, bool) {
	if t.tail == nil {
		return 0, false
	}
	return t.tail.v, true
}

func (t *ptrTreap) Next(v int) (int, bool) {
	n := t.mustNode(v, "Next")
	if n.next == nil {
		return 0, false
	}
	return n.next.v, true
}

func (t *ptrTreap) Prev(v int) (int, bool) {
	n := t.mustNode(v, "Prev")
	if n.prev == nil {
		return 0, false
	}
	return n.prev.v, true
}

// Package order provides the order-maintenance structures used to represent
// the paper's per-level sequences O_k.
//
// Two implementations of the List interface are provided:
//
//   - Treap: the paper's order-statistics tree (Section VI(A)), built on a
//     randomized treap with subtree sizes and parent pointers. Rank and
//     order comparison cost O(log n); every structural update costs
//     O(log n) expected.
//   - TagList: a Dietz–Sleator style labeled list that supports O(1) order
//     comparison with amortized O(1) relabeling on insert. Included as the
//     ablation for the paper's data-structure choice.
//
// Both embed a doubly linked list for O(1) Next/Prev traversal, mirroring
// the paper's implementation note that O_k is kept in a linked list with an
// auxiliary structure A_k for comparisons.
//
// Both implementations store their nodes in an Arena — growable parallel
// slices indexed by compact handles, with a direct vertex→node slot table —
// instead of one heap object per element behind a map. Lists holding
// disjoint vertex sets can share one arena (NewListOn), which is how the
// korder Maintainer backs all per-level O_k lists with a single store and
// makes level migration a slot reuse instead of a free+alloc.
package order

// List is an ordered set of distinct non-negative vertex ids supporting
// order queries and positional insertion.
type List interface {
	// Len reports the number of elements.
	Len() int
	// Contains reports whether v is in the list.
	Contains(v int) bool
	// PushFront inserts v at the beginning. v must not be present.
	PushFront(v int)
	// PushBack inserts v at the end. v must not be present.
	PushBack(v int)
	// InsertAfter inserts v immediately after existing element after.
	InsertAfter(after, v int)
	// InsertBefore inserts v immediately before existing element before.
	InsertBefore(before, v int)
	// Remove deletes v from the list. v must be present.
	Remove(v int)
	// Rank returns the 1-based position of v.
	Rank(v int) int
	// Key returns a position-monotone key for v: for any u, w present,
	// Key(u) < Key(w) iff u precedes w. Keys are only comparable while the
	// list is unmodified (the treap returns the rank, the tag list its
	// label). Used as heap keys by the maintenance scan.
	Key(v int) uint64
	// Less reports whether a precedes b. Both must be present.
	Less(a, b int) bool
	// Front returns the first element, or ok=false when empty.
	Front() (v int, ok bool)
	// Back returns the last element, or ok=false when empty.
	Back() (v int, ok bool)
	// Next returns the element after v, or ok=false at the end.
	Next(v int) (w int, ok bool)
	// Prev returns the element before v, or ok=false at the beginning.
	Prev(v int) (w int, ok bool)
}

// Kind selects a List implementation.
type Kind int

const (
	// KindTreap selects the order-statistics treap (the paper's choice).
	KindTreap Kind = iota
	// KindTagList selects the labeled list ablation.
	KindTagList
)

// String returns a human-readable implementation name.
func (k Kind) String() string {
	switch k {
	case KindTreap:
		return "treap"
	case KindTagList:
		return "taglist"
	default:
		return "unknown"
	}
}

// NewList constructs an empty List of the given kind on its own private
// arena. The seed deterministically drives any internal randomization.
func NewList(k Kind, seed uint64) List {
	return NewListOn(NewArena(), k, seed)
}

// NewListOn constructs an empty List of the given kind whose nodes live on
// the shared arena a. Lists sharing an arena must hold pairwise disjoint
// vertex sets (see Arena).
func NewListOn(a *Arena, k Kind, seed uint64) List {
	switch k {
	case KindTagList:
		return NewTagListOn(a)
	default:
		return NewTreapOn(a, seed)
	}
}

// Slice returns the list contents front to back. Intended for tests and
// diagnostics; costs O(n).
func Slice(l List) []int {
	out := make([]int, 0, l.Len())
	for v, ok := l.Front(); ok; v, ok = l.Next(v) {
		out = append(out, v)
	}
	return out
}

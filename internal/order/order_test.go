package order

import (
	"math/rand/v2"
	"testing"
)

// refList is the reference model: a plain slice.
type refList struct {
	vals []int
}

func (r *refList) index(v int) int {
	for i, x := range r.vals {
		if x == v {
			return i
		}
	}
	return -1
}

func (r *refList) pushFront(v int)       { r.vals = append([]int{v}, r.vals...) }
func (r *refList) pushBack(v int)        { r.vals = append(r.vals, v) }
func (r *refList) insertAfter(a, v int)  { r.insertAt(r.index(a)+1, v) }
func (r *refList) insertBefore(b, v int) { r.insertAt(r.index(b), v) }
func (r *refList) insertAt(i int, v int) {
	r.vals = append(r.vals, 0)
	copy(r.vals[i+1:], r.vals[i:])
	r.vals[i] = v
}
func (r *refList) remove(v int) {
	i := r.index(v)
	r.vals = append(r.vals[:i], r.vals[i+1:]...)
}

func kinds() []Kind { return []Kind{KindTreap, KindTagList} }

func TestKindString(t *testing.T) {
	if KindTreap.String() != "treap" || KindTagList.String() != "taglist" {
		t.Fatal("Kind.String broken")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func TestBasicSequence(t *testing.T) {
	for _, k := range kinds() {
		l := NewList(k, 42)
		if l.Len() != 0 {
			t.Fatalf("%v: new list not empty", k)
		}
		if _, ok := l.Front(); ok {
			t.Fatalf("%v: Front on empty", k)
		}
		if _, ok := l.Back(); ok {
			t.Fatalf("%v: Back on empty", k)
		}
		l.PushBack(10)
		l.PushBack(20)
		l.PushFront(5)
		l.InsertAfter(10, 15)
		l.InsertBefore(5, 1)
		// Order should be 1 5 10 15 20.
		want := []int{1, 5, 10, 15, 20}
		got := Slice(l)
		if len(got) != len(want) {
			t.Fatalf("%v: got %v", k, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: got %v want %v", k, got, want)
			}
		}
		for i, v := range want {
			if l.Rank(v) != i+1 {
				t.Fatalf("%v: Rank(%d)=%d want %d", k, v, l.Rank(v), i+1)
			}
		}
		if !l.Less(1, 20) || l.Less(20, 1) || l.Less(10, 10) {
			t.Fatalf("%v: Less broken", k)
		}
		if f, _ := l.Front(); f != 1 {
			t.Fatalf("%v: Front=%d", k, f)
		}
		if b, _ := l.Back(); b != 20 {
			t.Fatalf("%v: Back=%d", k, b)
		}
		if n, ok := l.Next(5); !ok || n != 10 {
			t.Fatalf("%v: Next(5)=%d,%v", k, n, ok)
		}
		if p, ok := l.Prev(5); !ok || p != 1 {
			t.Fatalf("%v: Prev(5)=%d,%v", k, p, ok)
		}
		if _, ok := l.Next(20); ok {
			t.Fatalf("%v: Next(last) should fail", k)
		}
		if _, ok := l.Prev(1); ok {
			t.Fatalf("%v: Prev(first) should fail", k)
		}
		l.Remove(10)
		if l.Contains(10) {
			t.Fatalf("%v: Contains after Remove", k)
		}
		if n, _ := l.Next(5); n != 15 {
			t.Fatalf("%v: Next after Remove = %d", k, n)
		}
		if l.Len() != 4 {
			t.Fatalf("%v: Len=%d", k, l.Len())
		}
	}
}

func TestRemoveAll(t *testing.T) {
	for _, k := range kinds() {
		l := NewList(k, 1)
		for i := 0; i < 100; i++ {
			l.PushBack(i)
		}
		for i := 0; i < 100; i += 2 {
			l.Remove(i)
		}
		for i := 99; i >= 1; i -= 2 {
			l.Remove(i)
		}
		if l.Len() != 0 {
			t.Fatalf("%v: Len=%d after removing all", k, l.Len())
		}
		// Reuse after emptying.
		l.PushFront(7)
		if r := l.Rank(7); r != 1 {
			t.Fatalf("%v: Rank after reuse = %d", k, r)
		}
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	for _, k := range kinds() {
		l := NewList(k, 1)
		l.PushBack(1)
		mustPanic(t, func() { l.PushBack(1) })
		mustPanic(t, func() { l.Remove(2) })
		mustPanic(t, func() { l.InsertAfter(9, 3) })
		mustPanic(t, func() { l.InsertBefore(9, 3) })
		mustPanic(t, func() { l.Rank(9) })
		mustPanic(t, func() { _, _ = l.Next(9) })
		mustPanic(t, func() { _, _ = l.Prev(9) })
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestRandomizedAgainstModel drives both implementations with the same
// random operation stream and compares against the slice model after each
// step, including rank and order queries.
func TestRandomizedAgainstModel(t *testing.T) {
	for _, k := range kinds() {
		rng := rand.New(rand.NewPCG(9, uint64(k)))
		l := NewList(k, 99)
		ref := &refList{}
		present := map[int]bool{}
		nextID := 0
		for step := 0; step < 4000; step++ {
			op := rng.IntN(5)
			switch {
			case op == 0 || len(ref.vals) == 0:
				v := nextID
				nextID++
				if rng.IntN(2) == 0 {
					l.PushFront(v)
					ref.pushFront(v)
				} else {
					l.PushBack(v)
					ref.pushBack(v)
				}
				present[v] = true
			case op == 1:
				anchor := ref.vals[rng.IntN(len(ref.vals))]
				v := nextID
				nextID++
				if rng.IntN(2) == 0 {
					l.InsertAfter(anchor, v)
					ref.insertAfter(anchor, v)
				} else {
					l.InsertBefore(anchor, v)
					ref.insertBefore(anchor, v)
				}
				present[v] = true
			case op == 2:
				v := ref.vals[rng.IntN(len(ref.vals))]
				l.Remove(v)
				ref.remove(v)
				delete(present, v)
			case op == 3 && len(ref.vals) >= 2:
				i, j := rng.IntN(len(ref.vals)), rng.IntN(len(ref.vals))
				a, b := ref.vals[i], ref.vals[j]
				if got, want := l.Less(a, b), i < j; got != want {
					t.Fatalf("%v step %d: Less(%d,%d)=%v want %v", k, step, a, b, got, want)
				}
			default:
				i := rng.IntN(len(ref.vals))
				v := ref.vals[i]
				if got := l.Rank(v); got != i+1 {
					t.Fatalf("%v step %d: Rank(%d)=%d want %d", k, step, v, got, i+1)
				}
			}
			if l.Len() != len(ref.vals) {
				t.Fatalf("%v step %d: Len=%d want %d", k, step, l.Len(), len(ref.vals))
			}
			if tr, ok := l.(*Treap); ok && step%200 == 0 {
				if err := tr.checkInvariants(); err != nil {
					t.Fatalf("treap invariants at step %d: %v", step, err)
				}
			}
		}
		// Full sequence comparison at the end.
		got := Slice(l)
		for i := range ref.vals {
			if got[i] != ref.vals[i] {
				t.Fatalf("%v: final sequence mismatch at %d: %v vs %v", k, i, got[i], ref.vals[i])
			}
		}
	}
}

func TestTreapInvariantsAfterHeavyChurn(t *testing.T) {
	tr := NewTreap(5)
	for i := 0; i < 2000; i++ {
		tr.PushBack(i)
	}
	for i := 0; i < 2000; i += 3 {
		tr.Remove(i)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Interior inserts.
	for i := 2000; i < 2500; i++ {
		tr.InsertAfter(1, i)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTagListRenumbering(t *testing.T) {
	tl := NewTagList()
	tl.PushBack(0)
	// Repeated insertion right after the head exhausts the local gap and
	// must trigger renumbering rather than failing.
	for i := 1; i < 200; i++ {
		tl.InsertAfter(0, i)
	}
	if tl.Renumbers() == 0 {
		t.Fatal("dense insertion after the head never renumbered")
	}
	// Order: 0, 199, 198, ..., 1.
	if r := tl.Rank(0); r != 1 {
		t.Fatalf("Rank(0)=%d", r)
	}
	if !tl.Less(199, 1) {
		t.Fatal("tag order wrong after dense insertion")
	}
	got := Slice(tl)
	if len(got) != 200 {
		t.Fatalf("len=%d", len(got))
	}
	for i := 1; i < 199; i++ {
		if got[i] != 200-i {
			t.Fatalf("sequence wrong at %d: %v...", i, got[:5])
		}
	}
}

func TestKeyMonotone(t *testing.T) {
	for _, k := range kinds() {
		l := NewList(k, 3)
		for i := 0; i < 200; i++ {
			l.PushBack(i)
		}
		// Interleave interior inserts.
		for i := 200; i < 260; i++ {
			l.InsertAfter(i%200, i)
		}
		seq := Slice(l)
		for i := 1; i < len(seq); i++ {
			if l.Key(seq[i-1]) >= l.Key(seq[i]) {
				t.Fatalf("%v: Key not strictly monotone at position %d", k, i)
			}
		}
		mustPanic(t, func() { l.Key(9999) })
	}
}

func TestMinHeap(t *testing.T) {
	var h MinHeap
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap")
	}
	keys := []uint64{5, 3, 9, 1, 7, 3, 2}
	for i, k := range keys {
		h.Push(k, i)
	}
	if it, _ := h.Peek(); it.Key != 1 {
		t.Fatalf("Peek key=%d", it.Key)
	}
	prev := uint64(0)
	n := 0
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		if it.Key < prev {
			t.Fatalf("heap order violated: %d after %d", it.Key, prev)
		}
		prev = it.Key
		n++
	}
	if n != len(keys) {
		t.Fatalf("popped %d items, want %d", n, len(keys))
	}
	h.Push(4, 0)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMinHeapRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var h MinHeap
	var model []uint64
	for i := 0; i < 3000; i++ {
		if rng.IntN(3) != 0 || len(model) == 0 {
			k := rng.Uint64() % 1000
			h.Push(k, i)
			model = append(model, k)
		} else {
			it, ok := h.Pop()
			if !ok {
				t.Fatal("Pop failed with non-empty model")
			}
			minIdx := 0
			for j, k := range model {
				if k < model[minIdx] {
					minIdx = j
				}
			}
			if it.Key != model[minIdx] {
				t.Fatalf("popped %d, model min %d", it.Key, model[minIdx])
			}
			model = append(model[:minIdx], model[minIdx+1:]...)
		}
	}
}

func BenchmarkTreapPushBack(b *testing.B) {
	tr := NewTreap(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.PushBack(i)
	}
}

func BenchmarkTreapLess(b *testing.B) {
	tr := NewTreap(1)
	for i := 0; i < 100000; i++ {
		tr.PushBack(i)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := rng.IntN(100000), rng.IntN(100000)
		_ = tr.Less(a, c)
	}
}

func BenchmarkTagListLess(b *testing.B) {
	tl := NewTagList()
	for i := 0; i < 100000; i++ {
		tl.PushBack(i)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := rng.IntN(100000), rng.IntN(100000)
		_ = tl.Less(a, c)
	}
}

package order

import "fmt"

// Arena is the shared node store backing the order lists: every node field
// lives in a parallel growable slice indexed by a compact int32 handle, the
// vertex→node lookup is a direct slice index (vertices are dense ints), and
// freed handles are recycled through a LIFO free list. Compared with the
// previous pointer-per-node layout (one heap object per element found
// through a map), an arena keeps the hot maintenance loops allocation-free
// in steady state and walks contiguous memory.
//
// Handle 0 is a reserved null sentinel: a zero-filled slot table means
// "absent", child/parent links of 0 mean "none", and size[0] = 0 makes
// subtree-size arithmetic branch-free.
//
// One arena may back any number of lists (the korder Maintainer backs every
// per-level O_k list with a single arena), under one restriction: lists
// sharing an arena must hold pairwise disjoint vertex sets. That is exactly
// the level-partition invariant of core maintenance, and it is what makes
// level migration cheap — when a vertex moves from O_k to O_{k+1}, the
// handle freed by the Remove is the next one handed out by the insert, so
// the move reuses the same node slot instead of paying free+alloc.
//
// An Arena and the lists attached to it are not safe for concurrent use.
type Arena struct {
	// Per-node fields, parallel, indexed by handle. vert/next/prev and key
	// are used by every list kind; left/right/par/size only by treaps (the
	// sentinel keeps them consistent for mixed-kind arenas).
	vert  []int32  // node → vertex id
	next  []int32  // linked-list forward link (0 = none)
	prev  []int32  // linked-list backward link (0 = none)
	left  []int32  // treap left child (0 = none)
	right []int32  // treap right child (0 = none)
	par   []int32  // treap parent (0 = root)
	size  []int32  // treap subtree size; size[0] = 0 anchors the sentinel
	key   []uint64 // treap heap priority / taglist order tag
	owner []int32  // id of the list holding the node; 0 = free

	slot  []int32 // vertex id → handle; 0 = not in any list on this arena
	free  []int32 // recycled handles, LIFO
	lists int32   // ids handed out to attached lists (ids start at 1)
}

// NewArena returns an empty arena holding only the null sentinel.
func NewArena() *Arena {
	a := &Arena{}
	a.growNodes(1) // handle 0: the sentinel
	return a
}

// Reserve pre-sizes the arena for n vertices: the slot table covers ids
// 0..n-1 and node storage for n elements is pre-allocated, so a bulk load
// performs no growth reallocations.
func (a *Arena) Reserve(n int) {
	if n <= 0 {
		return
	}
	a.growSlots(n)
	if need := n + 1 - cap(a.vert); need > 0 {
		grow := func(s []int32) []int32 {
			ns := make([]int32, len(s), n+1)
			copy(ns, s)
			return ns
		}
		a.vert = grow(a.vert)
		a.next = grow(a.next)
		a.prev = grow(a.prev)
		a.left = grow(a.left)
		a.right = grow(a.right)
		a.par = grow(a.par)
		a.size = grow(a.size)
		a.owner = grow(a.owner)
		nk := make([]uint64, len(a.key), n+1)
		copy(nk, a.key)
		a.key = nk
	}
}

// Len reports the number of live nodes across all lists on the arena.
func (a *Arena) Len() int { return len(a.vert) - 1 - len(a.free) }

// register attaches a new list and returns its owner id.
func (a *Arena) register() int32 {
	a.lists++
	return a.lists
}

// growSlots extends the vertex→handle table to cover vertex id n-1.
func (a *Arena) growSlots(n int) {
	for len(a.slot) < n {
		a.slot = append(a.slot, 0)
	}
}

// growNodes appends k zeroed nodes.
func (a *Arena) growNodes(k int) {
	for ; k > 0; k-- {
		a.vert = append(a.vert, 0)
		a.next = append(a.next, 0)
		a.prev = append(a.prev, 0)
		a.left = append(a.left, 0)
		a.right = append(a.right, 0)
		a.par = append(a.par, 0)
		a.size = append(a.size, 0)
		a.key = append(a.key, 0)
		a.owner = append(a.owner, 0)
	}
}

// alloc takes a handle for vertex v on behalf of list id, recycling the most
// recently freed handle when one exists. impl names the list kind for the
// panic message. Panics if v is negative or already present in any list
// sharing the arena (lists on one arena hold disjoint vertex sets).
func (a *Arena) alloc(id int32, v int, key uint64, impl string) int32 {
	if v < 0 {
		panic(fmt.Sprintf("order: negative vertex %d", v))
	}
	a.growSlots(v + 1)
	if h := a.slot[v]; h != 0 {
		if a.owner[h] == id {
			panic(fmt.Sprintf("order: vertex %d already in %s", v, impl))
		}
		panic(fmt.Sprintf("order: vertex %d already held by another list on this arena", v))
	}
	var h int32
	if k := len(a.free); k > 0 {
		h = a.free[k-1]
		a.free = a.free[:k-1]
	} else {
		h = int32(len(a.vert))
		a.growNodes(1)
	}
	a.vert[h] = int32(v)
	a.next[h], a.prev[h] = 0, 0
	a.left[h], a.right[h], a.par[h] = 0, 0, 0
	a.size[h] = 1
	a.key[h] = key
	a.owner[h] = id
	a.slot[int32(v)] = h
	return h
}

// release returns handle h to the free list and clears its vertex slot.
func (a *Arena) release(h int32) {
	a.slot[a.vert[h]] = 0
	a.owner[h] = 0
	a.free = append(a.free, h)
}

// handle resolves vertex v to its node handle in list id, or 0 when v is
// absent from that list (including when it lives in a sibling list).
func (a *Arena) handle(id int32, v int) int32 {
	if v < 0 || v >= len(a.slot) {
		return 0
	}
	h := a.slot[v]
	if h == 0 || a.owner[h] != id {
		return 0
	}
	return h
}

// mustHandle is handle with the original panic-on-misuse contract.
func (a *Arena) mustHandle(id int32, v int, op, impl string) int32 {
	h := a.handle(id, v)
	if h == 0 {
		panic(fmt.Sprintf("order: %s: %d not in %s", op, v, impl))
	}
	return h
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kcore"
	"kcore/internal/server/wire"
)

// newTestServer starts the service on an httptest server and returns the
// Server plus a Client aimed at it. Cleanup shuts both down.
func newTestServer(t *testing.T, e *kcore.Engine, opts Options) (*Server, *Client) {
	t.Helper()
	s := New(e, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	c, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return s, c
}

func TestBatchQueryRoundTrip(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{})
	ctx := context.Background()

	// A triangle: all three vertices reach core 2.
	resp, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatalf("AddEdges: %v", err)
	}
	if resp.Applied != 3 || resp.Seq != 3 || resp.FlushedWith != 1 {
		t.Fatalf("batch response = %+v, want applied 3, seq 3, flushed_with 1", resp)
	}
	if len(resp.CoreChanged) == 0 {
		t.Fatalf("batch response reported no core changes: %+v", resp)
	}

	core, err := c.Core(ctx, 1)
	if err != nil {
		t.Fatalf("Core: %v", err)
	}
	if core.Core != 2 || core.Seq != 3 {
		t.Fatalf("core(1) = %+v, want core 2 at seq 3", core)
	}

	kc, err := c.KCore(ctx, 2)
	if err != nil {
		t.Fatalf("KCore: %v", err)
	}
	if kc.Count != 3 || len(kc.Vertices) != 3 {
		t.Fatalf("kcore(2) = %+v, want 3 vertices", kc)
	}
	if kc, err = c.KCore(ctx, 3); err != nil || kc.Count != 0 || kc.Vertices == nil {
		t.Fatalf("kcore(3) = %+v, err %v; want empty non-nil vertex list", kc, err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Vertices != 3 || st.Edges != 3 || st.Degeneracy != 2 || st.Seq != 3 {
		t.Fatalf("stats = %+v, want 3 vertices, 3 edges, degeneracy 2, seq 3", st)
	}
	if st.Algorithm != "order-based" {
		t.Fatalf("stats algorithm = %q", st.Algorithm)
	}
	if st.Ingest.Requests != 1 || st.Ingest.Flushes != 1 {
		t.Fatalf("ingest stats = %+v, want 1 request in 1 flush", st.Ingest)
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, err %v", h, err)
	}

	// Removal through the same path.
	if _, err := c.RemoveEdges(ctx, [][2]int{{0, 2}}); err != nil {
		t.Fatalf("RemoveEdges: %v", err)
	}
	if core, err = c.Core(ctx, 0); err != nil || core.Core != 1 {
		t.Fatalf("core(0) after removal = %+v, err %v, want 1", core, err)
	}
}

func TestBatchErrorMapping(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{MaxBatch: 4})
	ctx := context.Background()
	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("seed edge: %v", err)
	}

	cases := []struct {
		name    string
		updates []wire.Update
		code    string
		status  int
		index   int
	}{
		{"self loop", []wire.Update{{Op: "add", U: 3, V: 3}}, wire.CodeSelfLoop, 422, 0},
		{"negative vertex", []wire.Update{{Op: "add", U: -1, V: 2}}, wire.CodeVertexRange, 422, 0},
		{"duplicate", []wire.Update{{Op: "add", U: 2, V: 3}, {Op: "add", U: 0, V: 1}}, wire.CodeDuplicateEdge, 409, 1},
		{"missing", []wire.Update{{Op: "remove", U: 5, V: 6}}, wire.CodeMissingEdge, 409, 0},
		{"bad op", []wire.Update{{Op: "toggle", U: 1, V: 2}}, wire.CodeBadRequest, 400, 0},
		{"empty", nil, wire.CodeBadRequest, 400, -1},
		{"too large", []wire.Update{
			{Op: "add", U: 10, V: 11}, {Op: "add", U: 11, V: 12}, {Op: "add", U: 12, V: 13},
			{Op: "add", U: 13, V: 14}, {Op: "add", U: 14, V: 15},
		}, wire.CodeBatchTooLarge, 413, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Batch(ctx, tc.updates)
			var we *wire.Error
			if !errors.As(err, &we) {
				t.Fatalf("err = %v, want *wire.Error", err)
			}
			if we.Code != tc.code || we.Status != tc.status {
				t.Fatalf("error = %s (HTTP %d), want %s (HTTP %d): %v",
					we.Code, we.Status, tc.code, tc.status, we)
			}
			if tc.index >= 0 {
				if we.Index == nil || *we.Index != tc.index {
					t.Fatalf("error index = %v, want %d: %v", we.Index, tc.index, we)
				}
				if we.Update == nil {
					t.Fatalf("error update missing: %v", we)
				}
			}
		})
	}

	// A failed batch is atomic: nothing from the duplicate case applied.
	if core, err := c.Core(ctx, 2); err != nil || core.Core != 0 {
		t.Fatalf("core(2) = %+v, err %v; failed batch must not partially apply", core, err)
	}
}

func TestQueryParamValidation(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{})
	hc := c.hc
	for _, path := range []string{"/v1/core/x", "/v1/core/-1", "/v1/kcore", "/v1/kcore?k=-2",
		"/v1/watch?min_core=-1", "/v1/watch?buffer=0"} {
		resp, err := hc.Get(c.base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = HTTP %d, want 400", path, resp.StatusCode)
		}
	}
	// Unknown routes and wrong methods answer with the JSON envelope, not
	// ServeMux's plain text.
	readEnvelope := func(resp *http.Response) *wire.Error {
		t.Helper()
		defer resp.Body.Close()
		var envelope wire.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == nil {
			t.Fatalf("HTTP %d body is not the JSON error envelope: %v", resp.StatusCode, err)
		}
		return envelope.Error
	}
	resp, err := hc.Get(c.base + "/v1/nope")
	if err != nil {
		t.Fatalf("GET /v1/nope: %v", err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/nope = HTTP %d, want 404", resp.StatusCode)
	}
	if we := readEnvelope(resp); we.Code != wire.CodeNotFound {
		t.Errorf("GET /v1/nope code = %q, want %q", we.Code, wire.CodeNotFound)
	}
	resp, err = hc.Get(c.base + "/v1/batch") // GET on a POST endpoint
	if err != nil {
		t.Fatalf("GET /v1/batch: %v", err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch = HTTP %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodPost {
		t.Errorf("Allow = %q, want POST", got)
	}
	if we := readEnvelope(resp); we.Code != wire.CodeMethodNotAllowed {
		t.Errorf("GET /v1/batch code = %q, want %q", we.Code, wire.CodeMethodNotAllowed)
	}
}

// TestGracefulShutdown runs the server on a real listener through Serve and
// verifies the full drain sequence: Shutdown ends watch streams, rejects
// new writes with 503, and Serve returns nil.
func TestGracefulShutdown(t *testing.T) {
	e := kcore.NewEngine()
	s := New(e, Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	c, err := NewClient("http://"+l.Addr().String(), nil)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	ctx := context.Background()
	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("AddEdges: %v", err)
	}
	events, err := c.Watch(ctx, WatchOptions{})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if ev := <-events; ev.Type != wire.EventHello {
		t.Fatalf("first watch event = %+v, want hello", ev)
	}

	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// The watch stream must have ended.
	deadline := time.After(5 * time.Second)
waitClosed:
	for {
		select {
		case _, open := <-events:
			if !open {
				break waitClosed
			}
		case <-deadline:
			t.Fatal("watch stream still open after Shutdown")
		}
	}
	// New writes are refused (either a structured 503 if a lingering
	// listener handled it, or a connection error once the socket is gone).
	if _, err := c.AddEdges(ctx, [][2]int{{1, 2}}); err == nil {
		t.Fatal("AddEdges after Shutdown succeeded, want failure")
	}
	// Idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestServeAfterShutdownFails(t *testing.T) {
	s := New(kcore.NewEngine(), Options{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	if err := s.Serve(l); err == nil {
		t.Fatal("Serve after Shutdown succeeded, want error")
	}
}

func TestNewClientValidatesURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "127.0.0.1:8080", "/just/a/path"} {
		if _, err := NewClient(bad, nil); err == nil {
			t.Errorf("NewClient(%q) succeeded, want error", bad)
		}
	}
	if _, err := NewClient("http://127.0.0.1:8080/", nil); err != nil {
		t.Errorf("NewClient(valid) = %v", err)
	}
}

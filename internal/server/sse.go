package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"kcore"
	"kcore/internal/server/wire"
)

// handleWatch streams CoreChange events over Server-Sent Events on top of
// Engine.Subscribe. The engine's non-blocking drop-on-full delivery is
// preserved end to end: a slow consumer loses events (never stalling
// writers) and learns about it through "lagged" events carrying the
// cumulative drop count. See the wire package comment for the schema.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
			Message: "response writer does not support streaming"})
		return
	}
	q := r.URL.Query()
	minCore := 0
	if v := q.Get("min_core"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, badRequest("min_core must be a non-negative integer, got %q", v))
			return
		}
		minCore = n
	}
	buffer := s.opts.WatchBuffer
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, badRequest("buffer must be a positive integer, got %q", v))
			return
		}
		buffer = min(n, s.opts.MaxWatchBuffer)
	}

	// The engine is captured once: on a follower a re-bootstrap swaps the
	// engine underneath the server, orphaning this subscription. The
	// keepalive tick detects the swap and ends the stream so the client
	// reconnects onto the new engine.
	eng := s.eng()
	var dropped atomic.Uint64
	ch, cancel := eng.Subscribe(
		kcore.WithMinCore(minCore),
		kcore.WithBuffer(buffer),
		kcore.WithDropCounter(&dropped),
	)
	defer cancel()
	s.watchers.Add(1)
	defer s.watchers.Add(-1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Every write is bounded by a fresh deadline: a watcher whose TCP peer
	// stopped reading must not park this goroutine forever (it would also
	// park graceful shutdown, which awaits in-flight handlers). When the
	// deadline fires the blocked write errors and the stream ends.
	rc := http.NewResponseController(w)
	arm := func() { _ = rc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)) }
	arm()

	// Seq is read after Subscribe so every change with a greater sequence
	// number is covered by the subscription (an event at the hello seq
	// itself may additionally be delivered; see wire.HelloEvent).
	if writeSSE(w, wire.EventHello, wire.HelloEvent{
		Seq: eng.Seq(), MinCore: minCore, Buffer: buffer,
	}) != nil {
		return
	}
	flusher.Flush()

	keepalive := time.NewTicker(s.opts.Keepalive)
	defer keepalive.Stop()
	var lagged uint64
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			arm()
			if writeChange(w, ev) != nil {
				return
			}
			// Drain whatever queued behind it before flushing once, so a
			// bursty update doesn't pay one syscall per event.
		drain:
			for {
				select {
				case ev, open := <-ch:
					if !open {
						return
					}
					if writeChange(w, ev) != nil {
						return
					}
				default:
					break drain
				}
			}
			if d := dropped.Load(); d != lagged {
				lagged = d
				if writeSSE(w, wire.EventLagged, wire.LaggedEvent{Dropped: d}) != nil {
					return
				}
			}
			flusher.Flush()
		case <-keepalive.C:
			if s.eng() != eng {
				// Follower re-bootstrap replaced the engine; this stream's
				// subscription is on the dead one.
				return
			}
			// Dropped events surface even when the stream has gone quiet
			// (everything after the overflow was dropped, so no change
			// event is coming to piggyback on).
			arm()
			if d := dropped.Load(); d != lagged {
				lagged = d
				if writeSSE(w, wire.EventLagged, wire.LaggedEvent{Dropped: d}) != nil {
					return
				}
			} else if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}

func writeChange(w http.ResponseWriter, ev kcore.CoreChange) error {
	return writeSSE(w, wire.EventChange, wire.ChangeEvent{
		Vertex: ev.Vertex, OldCore: ev.OldCore, NewCore: ev.NewCore, Seq: ev.Seq,
	})
}

// writeSSE writes one SSE frame: "event: <name>\ndata: <json>\n\n".
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

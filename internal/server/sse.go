package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"kcore/internal/server/wire"
)

// handleWatch streams CoreChange events, as Server-Sent Events by default
// or as binary event frames when the request's Accept header selects
// application/x-kcore-events. Events come from the shared broadcast ring
// (see ring.go): each change is encoded once per framing regardless of the
// watcher count, and this handler only walks its cursor. The engine's
// non-blocking drop-on-full delivery is preserved end to end: a slow
// consumer loses events (never stalling writers) and learns about it
// through "lagged" events carrying the cumulative drop count. See the wire
// package comment for the schema.
func (s *Server) handleWatch(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
			Message: "response writer does not support streaming"})
		return
	}
	stream, ok := negotiate(r.Header.Get("Accept"), wire.ContentTypeSSE, wire.ContentTypeEvents)
	if !ok {
		writeError(w, unsupportedMedia("/v1/watch streams %s or %s",
			wire.ContentTypeSSE, wire.ContentTypeEvents))
		return
	}
	binary := stream == wire.ContentTypeEvents
	q := r.URL.Query()
	minCore := 0
	if v := q.Get("min_core"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, badRequest("min_core must be a non-negative integer, got %q", v))
			return
		}
		minCore = n
	}
	buffer := s.opts.WatchBuffer
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, badRequest("buffer must be a positive integer, got %q", v))
			return
		}
		buffer = min(n, s.opts.MaxWatchBuffer)
	}

	// The engine is captured once: on a follower a re-bootstrap swaps the
	// engine underneath the server, orphaning this stream's ring. The
	// keepalive tick detects the swap and ends the stream so the client
	// reconnects onto the new engine (the next watch request also retires
	// the old ring, which ends its streams immediately).
	eng := ts.eng()
	ring := ts.hub.ringFor(eng)
	if ring == nil {
		writeError(w, toWireError(errShuttingDown))
		return
	}
	cursor := ring.subscribe(buffer, minCore)
	s.watchers.Add(1)
	ts.watchers.Add(1)
	defer func() {
		s.watchers.Add(-1)
		ts.watchers.Add(-1)
	}()

	h := w.Header()
	h.Set("Content-Type", stream)
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Every write is bounded by a fresh deadline: a watcher whose TCP peer
	// stopped reading must not park this goroutine forever (it would also
	// park graceful shutdown, which awaits in-flight handlers). When the
	// deadline fires the blocked write errors and the stream ends.
	rc := http.NewResponseController(w)
	arm := func() { _ = rc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)) }
	arm()

	// Seq is read after the cursor is attached, so every change with a
	// greater sequence number is covered; changes at or before the hello seq
	// may additionally be delivered (see wire.HelloEvent).
	out := newEventWriter(w, binary)
	if out.hello(wire.HelloEvent{Seq: eng.Seq(), MinCore: minCore, Buffer: buffer}) != nil {
		return
	}
	flusher.Flush()

	keepalive := time.NewTicker(s.opts.Keepalive)
	defer keepalive.Stop()
	var lagged uint64
	scratch := make([]ringEvent, 0, 64)
	for {
		events, dropped, wait, closed := cursor.poll(scratch)
		if closed {
			return
		}
		if len(events) > 0 {
			arm()
			for _, ev := range events {
				if out.change(ev) != nil {
					return
				}
			}
			// One flush per polled chunk (up to cap(scratch) events), so a
			// bursty update doesn't pay one syscall per event.
			if dropped != lagged {
				lagged = dropped
				if out.lagged(wire.LaggedEvent{Dropped: dropped}) != nil {
					return
				}
			}
			flusher.Flush()
			continue
		}
		if dropped != lagged {
			// Dropped events surface even when the stream has gone quiet
			// (everything after the overflow was dropped, so no change event
			// is coming to piggyback on).
			arm()
			lagged = dropped
			if out.lagged(wire.LaggedEvent{Dropped: dropped}) != nil {
				return
			}
			flusher.Flush()
		}
		select {
		case <-wait:
		case <-keepalive.C:
			if ts.eng() != eng {
				// Follower re-bootstrap replaced the engine; this stream's
				// ring feeds from the dead one.
				return
			}
			arm()
			if out.keepalive() != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}

// eventWriter writes watch frames in the negotiated encoding. Change events
// come pre-encoded from the ring; only the per-subscriber frames (hello,
// lagged, keepalive) are encoded here.
type eventWriter struct {
	w      http.ResponseWriter
	binary bool
	buf    []byte // scratch for the per-subscriber frames
}

func newEventWriter(w http.ResponseWriter, binary bool) *eventWriter {
	return &eventWriter{w: w, binary: binary}
}

func (e *eventWriter) hello(h wire.HelloEvent) error {
	if e.binary {
		e.buf = wire.AppendHelloFrame(e.buf[:0], h)
		_, err := e.w.Write(e.buf)
		return err
	}
	return writeSSE(e.w, wire.EventHello, h)
}

func (e *eventWriter) change(ev ringEvent) error {
	frame := ev.sse
	if e.binary {
		frame = ev.bin
	}
	_, err := e.w.Write(frame)
	return err
}

func (e *eventWriter) lagged(l wire.LaggedEvent) error {
	if e.binary {
		e.buf = wire.AppendLaggedFrame(e.buf[:0], l)
		_, err := e.w.Write(e.buf)
		return err
	}
	return writeSSE(e.w, wire.EventLagged, l)
}

func (e *eventWriter) keepalive() error {
	if e.binary {
		_, err := e.w.Write([]byte{wire.FrameKeepalive})
		return err
	}
	_, err := fmt.Fprint(e.w, ": keepalive\n\n")
	return err
}

// writeSSE writes one SSE frame: "event: <name>\ndata: <json>\n\n". Used
// for the per-subscriber frames; change events stream pre-encoded from the
// broadcast ring.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

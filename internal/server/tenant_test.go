package server

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	"kcore"
	"kcore/internal/persist"
	"kcore/internal/server/wire"
	"kcore/internal/tenant"
)

// TestTenantRoutesAliasDefault pins the legacy-alias contract: the unscoped
// /v1 routes and /v1/t/default/... address the same graph.
func TestTenantRoutesAliasDefault(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{})
	ctx := context.Background()

	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatalf("legacy AddEdges: %v", err)
	}
	def := c.Tenant("default")
	kc, err := def.KCore(ctx, 2)
	if err != nil {
		t.Fatalf("scoped KCore: %v", err)
	}
	if kc.Count != 3 {
		t.Fatalf("scoped view of legacy write: 2-core count = %d, want 3", kc.Count)
	}
	if _, err := def.AddEdges(ctx, [][2]int{{2, 3}}); err != nil {
		t.Fatalf("scoped AddEdges: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("legacy Stats: %v", err)
	}
	if st.Edges != 4 || st.Tenant != "default" {
		t.Fatalf("legacy view of scoped write: stats = %+v, want 4 edges on tenant default", st)
	}
}

// TestTenantErrors pins the tenant error envelope: codes, statuses, and the
// create-by-touch asymmetry between reads and writes.
func TestTenantErrors(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{
		Tenants: tenant.Options{MaxTenants: 3}, // default + 2 named
	})
	ctx := context.Background()

	// Reads of a never-written tenant do not create it.
	_, err := c.Tenant("ghost").Stats(ctx)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeUnknownTenant || we.Status != http.StatusNotFound {
		t.Fatalf("read of unknown tenant: err = %v, want %s/404", err, wire.CodeUnknownTenant)
	}

	// Writes create; two named tenants fill the residency bound.
	for _, name := range []string{"alpha", "beta"} {
		if _, err := c.Tenant(name).AddEdges(ctx, [][2]int{{0, 1}}); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	_, err = c.Tenant("gamma").AddEdges(ctx, [][2]int{{0, 1}})
	if !errors.As(err, &we) || we.Code != wire.CodeTenantLimit || we.Status != http.StatusTooManyRequests {
		t.Fatalf("write past tenant limit: err = %v, want %s/429", err, wire.CodeTenantLimit)
	}
	if we.RetryAfter <= 0 {
		t.Fatalf("tenant_limit response carries no Retry-After: %+v", we)
	}

	// Invalid names are 400s, not 404s (they could never exist).
	_, err = c.Tenant("Not-Valid!").Stats(ctx)
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest || we.Status != http.StatusBadRequest {
		t.Fatalf("invalid tenant name: err = %v, want %s/400", err, wire.CodeBadRequest)
	}

	// The pinned default tenant refuses eviction.
	_, err = c.EvictTenant(ctx, "default")
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("evicting default: err = %v, want %s", err, wire.CodeBadRequest)
	}

	// Evicting a live named tenant frees a slot for gamma.
	if _, err := c.EvictTenant(ctx, "beta"); err != nil {
		t.Fatalf("evict beta: %v", err)
	}
	if _, err := c.Tenant("gamma").AddEdges(ctx, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("create gamma after evicting beta: %v", err)
	}

	// The listing sees the residents (beta had no persistence — it is gone,
	// not unloaded) and the admission counters.
	ls, err := c.Tenants(ctx)
	if err != nil {
		t.Fatalf("Tenants: %v", err)
	}
	var names []string
	for _, ti := range ls.Tenants {
		names = append(names, ti.Name)
	}
	if !slices.Equal(names, []string{"alpha", "default", "gamma"}) {
		t.Fatalf("tenant listing = %v, want [alpha default gamma]", names)
	}
	if ls.Creates != 3 || ls.Evictions != 1 || ls.Rejections != 1 {
		t.Fatalf("admission counters = %+v, want creates 3, evictions 1, rejections 1", ls)
	}
}

// tenantScript builds a deterministic per-tenant update workload: batches of
// never-before-seen edge adds, with a removal of a previously added edge
// mixed in every few batches.
func tenantScript(seed int64, batches, batchSize int) [][]wire.Update {
	rng := rand.New(rand.NewSource(seed))
	var script [][]wire.Update
	var added [][2]int
	present := make(map[[2]int]bool)
	for b := 0; b < batches; b++ {
		var ups []wire.Update
		if b%5 == 4 && len(added) > 0 {
			e := added[rng.Intn(len(added))]
			ups = append(ups, wire.Update{Op: wire.OpRemove, U: e[0], V: e[1]})
			delete(present, e)
			added = slices.DeleteFunc(added, func(x [2]int) bool { return x == e })
		}
		for len(ups) < batchSize {
			u, v := rng.Intn(200), rng.Intn(200)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if present[[2]int{u, v}] {
				continue
			}
			present[[2]int{u, v}] = true
			added = append(added, [2]int{u, v})
			ups = append(ups, wire.Update{Op: wire.OpAdd, U: u, V: v})
		}
		script = append(script, ups)
	}
	return script
}

// TestTenantIsolationDifferential is the multi-tenant isolation check: three
// tenants served concurrently by one process — each with its own writer and
// watcher, and eviction churn kicking residency out from under all of them —
// must each end identical to a solo engine replaying exactly the batches the
// server acknowledged for that tenant. Run with -race; this is the PR's
// isolation differential.
func TestTenantIsolationDifferential(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{
		Tenants: tenant.Options{
			DataDir: t.TempDir(),
			Persist: persist.Options{Sync: persist.SyncOff},
		},
	})
	ctx := context.Background()

	names := []string{"red", "green", "blue"}
	const batches, batchSize = 40, 8
	scripts := make([][][]wire.Update, len(names))
	acked := make([][][]wire.Update, len(names)) // per tenant: acknowledged batches, in order

	// Seed every tenant with its first batch synchronously so the churn and
	// watcher goroutines never race tenant creation itself.
	for i, name := range names {
		scripts[i] = tenantScript(int64(1000+i), batches, batchSize)
		if _, err := c.Tenant(name).Batch(ctx, scripts[i][0]); err != nil {
			t.Fatalf("seed tenant %s: %v", name, err)
		}
		acked[i] = append(acked[i], scripts[i][0])
	}

	var writers, aux sync.WaitGroup
	stopChurn := make(chan struct{})
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	for i, name := range names {
		tc := c.Tenant(name)

		// Watcher: holds a live stream (and with it a tenant reference) so
		// eviction always has references to drain. Reconnects when an
		// eviction ends the stream.
		aux.Add(1)
		go func() {
			defer aux.Done()
			for watchCtx.Err() == nil {
				events, err := tc.Watch(watchCtx, WatchOptions{})
				if err != nil {
					select {
					case <-watchCtx.Done():
					case <-time.After(2 * time.Millisecond):
					}
					continue
				}
				for range events {
				}
			}
		}()

		// Writer: one per tenant (each graph keeps a total order of its own
		// updates); the concurrency under test is across tenants. Only
		// server-acknowledged batches count — a write that loses the race
		// with an eviction is rejected before it applies, and the client
		// does not auto-retry that rejection.
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for _, ups := range scripts[i][1:] {
				if _, err := tc.Batch(ctx, ups); err != nil {
					var we *wire.Error
					if !errors.As(err, &we) {
						t.Errorf("tenant %s: batch failed hard: %v", tc.Name(), err)
						return
					}
					continue // rejected, never applied: drop from the replay too
				}
				acked[i] = append(acked[i], ups)
			}
		}(i)

		// Eviction churn: repeatedly kick the tenant out mid-traffic. The
		// tenants are durable, so eviction snapshots and acknowledged
		// writes survive the reload.
		aux.Add(1)
		go func(name string) {
			defer aux.Done()
			for {
				select {
				case <-stopChurn:
					return
				case <-time.After(10 * time.Millisecond):
					if _, err := c.EvictTenant(ctx, name); err != nil {
						t.Errorf("evict %s: %v", name, err)
						return
					}
				}
			}
		}(name)
	}

	writers.Wait()
	close(stopChurn)
	stopWatch()
	aux.Wait()

	// Differential: each tenant must equal a solo engine fed exactly its
	// acknowledged batches in order — independent of its neighbors and of
	// how often it was evicted and reloaded.
	for i, name := range names {
		solo := kcore.NewEngine()
		var seq uint64
		for _, ups := range acked[i] {
			batch, werr := toBatch(ups)
			if werr != nil {
				t.Fatalf("tenant %s: replay decode: %v", name, werr)
			}
			info, err := solo.Apply(batch)
			if err != nil {
				t.Fatalf("tenant %s: solo replay rejected an acknowledged batch: %v", name, err)
			}
			seq = info.Seq
		}
		got, err := c.Tenant(name).Cores(ctx)
		if err != nil {
			t.Fatalf("tenant %s: Cores: %v", name, err)
		}
		if got.Seq != seq {
			t.Fatalf("tenant %s: served seq %d, solo replay seq %d (%d acked batches)",
				name, got.Seq, seq, len(acked[i]))
		}
		if want := solo.View().Cores(); !slices.Equal(got.Cores, want) {
			t.Fatalf("tenant %s: served cores diverge from solo replay of %d acked batches",
				name, len(acked[i]))
		}
		if err := solo.Validate(); err != nil {
			t.Fatalf("tenant %s: solo replay invalid: %v", name, err)
		}
	}
}

// TestTenantLazyReloadAcrossRestart pins the durable lifecycle end to end
// through the HTTP surface: named tenants persist under
// <data-dir>/tenants/<name>, and a fresh server over the same directory
// lists them cold and recovers them lazily on first touch.
func TestTenantLazyReloadAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	topts := tenant.Options{DataDir: dir, Persist: persist.Options{Sync: persist.SyncOff}}

	s1 := New(kcore.NewEngine(), Options{Tenants: topts})
	ts1 := httptest.NewServer(s1.Handler())
	c1, err := NewClient(ts1.URL, ts1.Client())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if _, err := c1.Tenant("acme").AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatalf("seed acme: %v", err)
	}
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown first server: %v", err)
	}
	ts1.Close()

	s2 := New(kcore.NewEngine(), Options{Tenants: topts})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s2.Shutdown(sctx); err != nil {
			t.Errorf("shutdown second server: %v", err)
		}
		ts2.Close()
	})
	c2, err := NewClient(ts2.URL, ts2.Client())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	// Before any touch the tenant is known but cold.
	ls, err := c2.Tenants(ctx)
	if err != nil {
		t.Fatalf("Tenants: %v", err)
	}
	found := false
	for _, ti := range ls.Tenants {
		if ti.Name == "acme" {
			found = true
			if ti.State != string(tenant.StateUnloaded) || !ti.Durable {
				t.Fatalf("acme before touch = %+v, want unloaded and durable", ti)
			}
		}
	}
	if !found {
		t.Fatalf("restarted server lost tenant acme from its listing: %+v", ls.Tenants)
	}

	// First read lazily recovers snapshot + WAL from disk.
	kc, err := c2.Tenant("acme").KCore(ctx, 2)
	if err != nil {
		t.Fatalf("lazy reload read: %v", err)
	}
	if kc.Count != 3 || kc.Seq != 3 {
		t.Fatalf("reloaded acme 2-core = %+v, want 3 vertices at seq 3", kc)
	}
}

// TestTenantEvictionEpochReaders audits idle/forced eviction against the
// lock-free epoch read path: a reader that captured a View (or just holds
// the engine pointer) before the tenant is retired must keep answering from
// its pre-eviction snapshot — never a use-after-unload — because eviction
// only closes the store and drops the registry entry; the engine object and
// every published epoch stay reachable by the holder. DELETE /v1/t/{name}
// drives the same retire path the -tenant-idle background sweep uses.
func TestTenantEvictionEpochReaders(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, c := newTestServer(t, kcore.NewEngine(), Options{
		Tenants: tenant.Options{DataDir: dir, Persist: persist.Options{Sync: persist.SyncOff}},
	})

	acme := c.Tenant("acme")
	if _, err := acme.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}); err != nil {
		t.Fatalf("seed acme: %v", err)
	}

	// Capture the reader's state, then drop the tenant ref so eviction can
	// drain (retire blocks until the refcount reaches zero).
	tn, err := s.mgr.Acquire("acme", false)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	eng := tn.Engine()
	view := eng.View()
	wantSeq, wantCores := view.Seq(), view.Cores()
	tn.Release()

	if _, err := c.EvictTenant(ctx, "acme"); err != nil {
		t.Fatalf("EvictTenant: %v", err)
	}

	// The held View answers exactly its capture-time state.
	if view.Seq() != wantSeq {
		t.Fatalf("post-eviction View seq = %d, want %d", view.Seq(), wantSeq)
	}
	if got := view.Cores(); !slices.Equal(got, wantCores) {
		t.Fatalf("post-eviction View cores = %v, want %v", got, wantCores)
	}
	if view.Core(0) != 2 || view.Degeneracy() != 2 {
		t.Fatalf("post-eviction View point reads = (%d,%d), want (2,2)",
			view.Core(0), view.Degeneracy())
	}
	// Lock-free reads against the unloaded engine still answer its final
	// epoch (the object outlives the registry entry by construction).
	if core, seq := eng.CoreSeq(1); core != 2 || seq != wantSeq {
		t.Fatalf("post-eviction CoreSeq = (%d,%d), want (2,%d)", core, seq, wantSeq)
	}

	// Re-touching the tenant reloads it from disk into a fresh engine with
	// the same logical state; the old View is unaffected.
	kc, err := acme.KCore(ctx, 2)
	if err != nil {
		t.Fatalf("reload acme: %v", err)
	}
	if kc.Count != 3 {
		t.Fatalf("reloaded acme 2-core count = %d, want 3", kc.Count)
	}
	tn2, err := s.mgr.Acquire("acme", false)
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if tn2.Engine() == eng {
		t.Fatal("reload returned the evicted engine object")
	}
	tn2.Release()
	if view.Seq() != wantSeq || view.NumEdges() != 4 {
		t.Fatalf("old View drifted after reload: seq %d edges %d", view.Seq(), view.NumEdges())
	}
}

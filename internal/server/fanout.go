package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kcore"
)

// FanoutStats reports one FanoutLoad run.
type FanoutStats struct {
	// Watchers is the subscriber count; Changes the number of core-change
	// events the engine emitted.
	Watchers int
	Changes  uint64
	// Delivered is the total number of events handed to subscribers across
	// all cursors (Watchers x Changes when nothing was dropped); Dropped is
	// the summed lagged count.
	Delivered uint64
	Dropped   uint64
	// EncodedSSE/EncodedBin are the ring's encode counters — by construction
	// one per event per framing, independent of Watchers.
	EncodedSSE uint64
	EncodedBin uint64
	// Bytes is the summed length of the pre-encoded SSE frames subscribers
	// read (the work a real handler would write to its socket).
	Bytes uint64
	// Elapsed covers first Apply to last subscriber exit.
	Elapsed time.Duration
}

// FanoutLoad measures watch fan-out through the shared broadcast ring with
// in-process subscribers: watchers cursors drain the ring concurrently while
// the engine emits changes core-change events (a growing star: each new
// spoke changes one vertex's core).
//
// Subscribers are in-process cursors rather than real /v1/watch connections
// deliberately: N TCP watchers cost 2N file descriptors (client + server
// end), which caps a 10k-watcher run well above typical nofile limits, and
// the per-connection HTTP write path would measure socket throughput, not
// fan-out. The cursors run the same poll loop the watch handler runs, so
// the measured cost is the ring's.
func FanoutLoad(watchers, changes, ringSize int) (FanoutStats, error) {
	if watchers < 1 || changes < 1 || ringSize < 1 {
		return FanoutStats{}, fmt.Errorf("server: FanoutLoad wants positive watchers, changes and ringSize")
	}
	eng := kcore.NewEngine()
	hub := newWatchHub(ringSize)
	defer hub.close()
	ring := hub.ringFor(eng)

	var delivered, dropped, bytes atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < watchers; w++ {
		cursor := ring.subscribe(ringSize, 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lagged uint64
			scratch := make([]ringEvent, 0, 64)
			for {
				events, drops, wait, closed := cursor.poll(scratch)
				if closed {
					dropped.Add(lagged)
					return
				}
				if len(events) > 0 {
					var n uint64
					for _, ev := range events {
						n += uint64(len(ev.sse))
					}
					bytes.Add(n)
					delivered.Add(uint64(len(events)))
					lagged = drops
					continue
				}
				lagged = drops
				<-wait
			}
		}()
	}

	start := time.Now()
	// A growing star: spoke i's core flips 0 -> 1, one change per add (plus
	// one extra for the hub vertex on the first edge).
	const batch = 100
	for next := 1; next <= changes; next += batch {
		b := kcore.Batch{}
		for v := next; v <= changes && v < next+batch; v++ {
			b = append(b, kcore.Add(0, v))
		}
		if _, err := eng.Apply(b); err != nil {
			hub.close()
			wg.Wait()
			return FanoutStats{}, fmt.Errorf("server: fanout apply: %w", err)
		}
	}
	// The feed goroutine appends asynchronously; wait for the encode counter
	// to quiesce before closing the ring under the subscribers.
	var last uint64
	for i := 0; i < 1000; i++ {
		n := ring.encodedSSE.Load()
		if n >= uint64(changes) && n == last {
			break
		}
		last = n
		time.Sleep(2 * time.Millisecond)
	}
	hub.close()
	wg.Wait()
	elapsed := time.Since(start)

	return FanoutStats{
		Watchers:   watchers,
		Changes:    ring.encodedSSE.Load(),
		Delivered:  delivered.Load(),
		Dropped:    dropped.Load(),
		EncodedSSE: ring.encodedSSE.Load(),
		EncodedBin: ring.encodedBin.Load(),
		Bytes:      bytes.Load(),
		Elapsed:    elapsed,
	}, nil
}

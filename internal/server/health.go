package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kcore"
	"kcore/internal/fault"
	"kcore/internal/persist"
)

// degradeAfter is the number of consecutive durability (apply-hook)
// failures that flips a healthy server to degraded read-only mode. A
// sealed WAL degrades immediately — it cannot heal through traffic — but
// a deferred-backlog failure may clear on the very next append, so a
// single blip that the store's own in-line retry missed does not give up
// write availability.
const degradeAfter = 3

// health is the server's availability state machine. A persisted writable
// server is either healthy (writes flow) or degraded (read-only: writes
// answer 503 "degraded" with Retry-After until the durability layer
// heals). Transitions:
//
//	healthy --(WAL sealed, or degradeAfter consecutive hook failures)--> degraded
//	degraded --(recovery probe heals the log)--> healthy
//
// While degraded, a background probe repeatedly calls persist.Store.Heal
// (snapshot + log rebuild) under jittered exponential backoff; recovery
// is automatic, no operator action required for transient faults.
type health struct {
	store *persist.Store

	mu          sync.Mutex
	degraded    bool
	cause       string
	since       time.Time
	consecFails int

	degradations atomic.Uint64
	recoveries   atomic.Uint64
	probes       atomic.Uint64

	kick     chan struct{} // buffered(1): wakes the recovery probe
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newHealth(store *persist.Store) *health {
	h := &health{
		store: store,
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	h.wg.Add(1)
	go h.probeLoop()
	return h
}

// observe is called by the ingest coalescer with every engine Apply
// outcome. Only durability failures (*kcore.HookError) count against the
// consecutive-failure budget; validation failures say nothing about the
// log's health, and a success resets the streak.
func (h *health) observe(err error) {
	var he *kcore.HookError
	if err == nil {
		h.mu.Lock()
		h.consecFails = 0
		h.mu.Unlock()
		return
	}
	if !errors.As(err, &he) {
		return
	}
	h.mu.Lock()
	h.consecFails++
	trip := h.consecFails >= degradeAfter
	h.mu.Unlock()
	if trip || h.store.Sealed() {
		h.degrade(fmt.Sprintf("write-ahead log append failing: %v", he.Err))
	}
}

// degrade flips to degraded (idempotent) and kicks the recovery probe.
func (h *health) degrade(cause string) {
	h.mu.Lock()
	if h.degraded {
		h.mu.Unlock()
		return
	}
	h.degraded = true
	h.cause = cause
	h.since = time.Now()
	h.mu.Unlock()
	h.degradations.Add(1)
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

// current reports the state for the write path and the health endpoint.
func (h *health) current() (degraded bool, cause string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded, h.cause
}

// degradedFor reports how long the server has been degraded (0 if not).
func (h *health) degradedFor() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.degraded {
		return 0
	}
	return time.Since(h.since)
}

// probeLoop runs for the server's lifetime: each kick starts a recovery
// loop that heals the store under backoff until the log accepts appends
// again, then re-enters healthy and waits for the next kick.
func (h *health) probeLoop() {
	defer h.wg.Done()
	for {
		select {
		case <-h.stop:
			return
		case <-h.kick:
		}
		bo := fault.Backoff{Min: 25 * time.Millisecond, Max: 2 * time.Second}
		for {
			select {
			case <-h.stop:
				return
			case <-time.After(bo.Next()):
			}
			h.probes.Add(1)
			if err := h.store.Heal(); err == nil && h.store.WALAppendable() {
				h.mu.Lock()
				h.degraded = false
				h.cause = ""
				h.consecFails = 0
				h.mu.Unlock()
				h.recoveries.Add(1)
				break
			}
		}
	}
}

// close stops the recovery probe. Idempotent.
func (h *health) close() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.wg.Wait()
}

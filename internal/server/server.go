// Package server implements kcore-serve: an HTTP/JSON network service over
// a kcore.Engine. It exposes a mutation path (POST /v1/batch through an
// ingest coalescer that flushes concurrent client batches through one
// engine Apply), a query path (core/kcore/stats served from immutable View
// snapshots, so readers never block writers), and a live path (core-change
// events over Server-Sent Events on top of Engine.Subscribe, with
// drop-on-full semantics surfaced as "lagged" events).
//
// The wire protocol — request/response bodies, error envelope and codes,
// and the SSE event schema — is defined and documented in the nested wire
// package. Client is the in-process Go client speaking that protocol; the
// server's own tests and the CI end-to-end smoke drive the service through
// it.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kcore"
	"kcore/internal/persist"
	"kcore/internal/replicate"
)

// Options tunes the service limits. The zero value picks the defaults.
type Options struct {
	// MaxBatch is the largest number of updates accepted in one POST
	// /v1/batch request (HTTP 413 beyond it). Default 10000.
	MaxBatch int
	// MaxPending is the ingest coalescer's backpressure budget: the largest
	// number of updates buffered across queued requests before further
	// requests are rejected with HTTP 429. Default 100000.
	MaxPending int
	// WatchBuffer is the default per-watch subscription buffer (overridable
	// per request via ?buffer=, clamped to MaxWatchBuffer). Default 256.
	WatchBuffer int
	// MaxWatchBuffer caps the per-request ?buffer= parameter. Default 65536.
	MaxWatchBuffer int
	// WatchRing is the capacity of the shared watch broadcast ring: every
	// change event is encoded once into it, and each watcher reads through
	// a cursor whose lag window is min(?buffer=, WatchRing). Default 4096.
	WatchRing int
	// ReadHeaderTimeout guards Serve against slow-header clients (a
	// slowloris opener never parks a connection past it). Default 10s.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading one mutation request's body (applied
	// per-request via a read deadline on the write endpoints, NOT as
	// http.Server.ReadTimeout — a server-wide read deadline would kill
	// long-lived watch streams). A client trickling a POST body cannot
	// park a handler past it. Default 30s.
	ReadTimeout time.Duration
	// IdleTimeout caps how long Serve keeps an idle keep-alive connection
	// open between requests. Default 2m.
	IdleTimeout time.Duration
	// Keepalive paces comment lines (and pending lagged reports) on idle
	// watch streams. Default 15s.
	Keepalive time.Duration
	// WriteTimeout bounds each SSE write on watch streams, so a watcher
	// whose TCP peer stopped reading cannot park its handler goroutine
	// forever (and with it, graceful shutdown). A healthy-but-slow consumer
	// is unaffected: the deadline applies per write, not per stream.
	// Default 30s.
	WriteTimeout time.Duration
	// Persist, when non-nil, is the durability store managing the engine:
	// it enables POST /v1/snapshot and the persistence section of
	// /v1/stats. The caller owns its lifecycle (kcore-serve opens it before
	// New and closes it after Shutdown).
	Persist *persist.Store
	// ReadOnly rejects the mutating endpoints (POST /v1/batch, POST
	// /v1/snapshot) with the stable wire code "read_only" (HTTP 403).
	// Implied by Follower.
	ReadOnly bool
	// Publisher, when non-nil, makes the server a replication primary: it
	// enables GET /v1/replicate and the primary replication section of
	// /v1/stats. The caller owns its lifecycle (attach it to the engine
	// before New, Close it after Shutdown).
	Publisher *replicate.Publisher
	// Follower, when non-nil, makes the server a replication follower: the
	// read endpoints serve from Follower.Engine() (re-fetched per request —
	// a re-bootstrap replaces the engine), writes are rejected as with
	// ReadOnly naming the primary, and /v1/stats carries the follower
	// replication section. The engine passed to New is only the follower's
	// boot engine; the caller owns the follower's lifecycle.
	Follower *replicate.Follower
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 10000
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 100000
	}
	if o.WatchBuffer <= 0 {
		o.WatchBuffer = 256
	}
	if o.MaxWatchBuffer <= 0 {
		o.MaxWatchBuffer = 65536
	}
	if o.WatchRing <= 0 {
		o.WatchRing = 4096
	}
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = 10 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.Keepalive <= 0 {
		o.Keepalive = 15 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	return o
}

// Server serves a kcore.Engine over HTTP. Create it with New, expose it
// either through Serve (which owns an http.Server) or by mounting Handler
// on an existing server, and stop it with Shutdown. The engine remains
// usable directly alongside the server — its own locking arbitrates.
type Server struct {
	engine *kcore.Engine
	opts   Options
	co     *coalescer
	hub    *watchHub
	mux    *http.ServeMux
	// health is the availability state machine; nil when the server runs
	// without persistence or is read-only (nothing to degrade on).
	health *health

	httpMu   sync.Mutex
	httpSrv  *http.Server
	stop     chan struct{} // closed by Shutdown: unblocks watch streams
	stopOnce sync.Once
	draining atomic.Bool
	watchers atomic.Int64
}

// New builds a server around an existing engine.
func New(engine *kcore.Engine, opts Options) *Server {
	s := &Server{
		engine: engine,
		opts:   opts.withDefaults(),
		stop:   make(chan struct{}),
	}
	s.co = newCoalescer(engine, s.opts.MaxPending)
	s.hub = newWatchHub(s.opts.WatchRing)
	if s.opts.Persist != nil && !s.opts.ReadOnly && s.opts.Follower == nil {
		s.health = newHealth(s.opts.Persist)
		s.co.observe = s.health.observe
	}
	// Method-less patterns with an explicit guard (rather than "GET /path"
	// patterns) so wrong-method and unknown-path responses carry the wire
	// protocol's JSON error envelope instead of ServeMux's plain text.
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/batch", methodGuard(http.MethodPost, s.handleBatch))
	s.mux.HandleFunc("/v1/core/{v}", methodGuard(http.MethodGet, s.handleCore))
	s.mux.HandleFunc("/v1/cores", methodGuard(http.MethodGet, s.handleCores))
	s.mux.HandleFunc("/v1/kcore", methodGuard(http.MethodGet, s.handleKCore))
	s.mux.HandleFunc("/v1/stats", methodGuard(http.MethodGet, s.handleStats))
	s.mux.HandleFunc("/v1/watch", methodGuard(http.MethodGet, s.handleWatch))
	s.mux.HandleFunc("/v1/healthz", methodGuard(http.MethodGet, s.handleHealthz))
	s.mux.HandleFunc("/v1/snapshot", methodGuard(http.MethodPost, s.handleSnapshot))
	s.mux.HandleFunc("/v1/snapshot/export", methodGuard(http.MethodGet, s.handleSnapshotExport))
	s.mux.HandleFunc("/v1/replicate", methodGuard(http.MethodGet, s.handleReplicate))
	s.mux.HandleFunc("/", handleNotFound)
	return s
}

// eng is the engine handlers must read from: the follower's current one
// (re-fetched per call — a re-bootstrap swaps it) or the server's own.
func (s *Server) eng() *kcore.Engine {
	if s.opts.Follower != nil {
		return s.opts.Follower.Engine()
	}
	return s.engine
}

// readOnly reports whether mutations are rejected.
func (s *Server) readOnly() bool { return s.opts.ReadOnly || s.opts.Follower != nil }

// Handler returns the service's HTTP handler, for mounting on an existing
// http.Server (tests use it with httptest). Callers that bypass Serve must
// still call Shutdown to drain the ingest queue and close watch streams.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns nil after a
// clean shutdown (http.ErrServerClosed is swallowed).
func (s *Server) Serve(l net.Listener) error {
	s.httpMu.Lock()
	if s.draining.Load() {
		s.httpMu.Unlock()
		return fmt.Errorf("server: Serve after Shutdown")
	}
	if s.httpSrv != nil {
		s.httpMu.Unlock()
		return fmt.Errorf("server: Serve called twice")
	}
	// ReadTimeout is deliberately NOT set here: a server-wide read deadline
	// fires mid-stream on long-lived SSE watch responses. The write
	// endpoints arm a per-request read deadline instead (see handleBatch).
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.opts.ReadHeaderTimeout,
		IdleTimeout:       s.opts.IdleTimeout,
	}
	srv := s.httpSrv
	s.httpMu.Unlock()
	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown drains the server gracefully: it stops admitting writes (new
// batch requests get HTTP 503), flushes every queued batch, ends all watch
// streams, and then closes the HTTP listener, waiting for in-flight
// requests up to ctx's deadline. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopOnce.Do(func() {
		s.co.close() // reject new writes, drain queued ones
		if s.health != nil {
			s.health.close()
		}
		s.hub.close()
		close(s.stop)
	})
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// Close shuts the server down forcefully: like Shutdown it drains the
// ingest queue (queued writes were already accepted, so they commit), but
// in-flight HTTP requests and watch streams are cut instead of awaited.
// Use it when a graceful Shutdown exceeded its deadline.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.stopOnce.Do(func() {
		s.co.close()
		if s.health != nil {
			s.health.close()
		}
		s.hub.close()
		close(s.stop)
	})
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Watchers reports the number of currently connected watch streams.
func (s *Server) Watchers() int { return int(s.watchers.Load()) }

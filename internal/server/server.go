// Package server implements kcore-serve: an HTTP/JSON network service over
// kcore engines. It exposes a mutation path (POST .../batch through a
// per-tenant ingest coalescer that flushes concurrent client batches through
// one engine Apply), a query path (core/kcore/stats served from immutable
// View snapshots, so readers never block writers), and a live path
// (core-change events over Server-Sent Events on top of Engine.Subscribe,
// with drop-on-full semantics surfaced as "lagged" events).
//
// One server hosts many independent graphs: the tenant-scoped routes
// /v1/t/{tenant}/... resolve through a tenant.Manager (create by touch,
// lazy load from disk, idle eviction), while the legacy /v1/... routes are
// exact aliases for the pinned "default" tenant — the engine passed to New.
//
// The wire protocol — request/response bodies, error envelope and codes,
// and the SSE event schema — is defined and documented in the nested wire
// package. Client is the in-process Go client speaking that protocol; the
// server's own tests and the CI end-to-end smoke drive the service through
// it.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kcore"
	"kcore/internal/persist"
	"kcore/internal/replicate"
	"kcore/internal/tenant"
)

// Options tunes the service limits. The zero value picks the defaults.
type Options struct {
	// MaxBatch is the largest number of updates accepted in one POST
	// /v1/batch request (HTTP 413 beyond it). Default 10000.
	MaxBatch int
	// MaxPending is each tenant's ingest backpressure budget: the largest
	// number of updates buffered across queued requests before further
	// requests are rejected with HTTP 429. Default 100000.
	MaxPending int
	// WatchBuffer is the default per-watch subscription buffer (overridable
	// per request via ?buffer=, clamped to MaxWatchBuffer). Default 256.
	WatchBuffer int
	// MaxWatchBuffer caps the per-request ?buffer= parameter. Default 65536.
	MaxWatchBuffer int
	// WatchRing is the capacity of each tenant's watch broadcast ring: every
	// change event is encoded once into it, and each watcher reads through
	// a cursor whose lag window is min(?buffer=, WatchRing). Default 4096.
	WatchRing int
	// ReadHeaderTimeout guards Serve against slow-header clients (a
	// slowloris opener never parks a connection past it). Default 10s.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading one mutation request's body (applied
	// per-request via a read deadline on the write endpoints, NOT as
	// http.Server.ReadTimeout — a server-wide read deadline would kill
	// long-lived watch streams). A client trickling a POST body cannot
	// park a handler past it. Default 30s.
	ReadTimeout time.Duration
	// IdleTimeout caps how long Serve keeps an idle keep-alive connection
	// open between requests. Default 2m.
	IdleTimeout time.Duration
	// Keepalive paces comment lines (and pending lagged reports) on idle
	// watch streams. Default 15s.
	Keepalive time.Duration
	// WriteTimeout bounds each SSE write on watch streams, so a watcher
	// whose TCP peer stopped reading cannot park its handler goroutine
	// forever (and with it, graceful shutdown). A healthy-but-slow consumer
	// is unaffected: the deadline applies per write, not per stream.
	// Default 30s.
	WriteTimeout time.Duration
	// Persist, when non-nil, is the durability store managing the default
	// tenant's engine: it enables POST /v1/snapshot and the persistence
	// section of /v1/stats for it. The caller owns its lifecycle
	// (kcore-serve opens it before New and closes it after Shutdown).
	// Named tenants get their own stores through Tenants.DataDir; those are
	// owned — opened, snapshotted, and closed — by the tenant manager.
	Persist *persist.Store
	// ReadOnly rejects the mutating endpoints (POST .../batch, POST
	// .../snapshot) with the stable wire code "read_only" (HTTP 403).
	// Implied by Follower.
	ReadOnly bool
	// Publisher, when non-nil, makes the server a replication primary: it
	// enables GET /v1/replicate and the primary replication section of
	// /v1/stats. Replication spans the default tenant only. The caller owns
	// its lifecycle (attach it to the engine before New, Close it after
	// Shutdown).
	Publisher *replicate.Publisher
	// Follower, when non-nil, makes the server a replication follower: the
	// default tenant's read endpoints serve from Follower.Engine()
	// (re-fetched per request — a re-bootstrap replaces the engine), writes
	// are rejected as with ReadOnly naming the primary, and /v1/stats
	// carries the follower replication section. The engine passed to New is
	// only the follower's boot engine; the caller owns the follower's
	// lifecycle.
	Follower *replicate.Follower
	// Tenants configures the lifecycle manager behind the tenant-scoped
	// /v1/t/{tenant}/... routes: data directory, residency bound, idle
	// eviction, and the engine/store options applied to named tenants. The
	// Attach field is owned by the server and overwritten if set. The
	// engine passed to New always serves as the pinned "default" tenant,
	// whatever Tenants says.
	Tenants tenant.Options
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 10000
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 100000
	}
	if o.WatchBuffer <= 0 {
		o.WatchBuffer = 256
	}
	if o.MaxWatchBuffer <= 0 {
		o.MaxWatchBuffer = 65536
	}
	if o.WatchRing <= 0 {
		o.WatchRing = 4096
	}
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = 10 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.Keepalive <= 0 {
		o.Keepalive = 15 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	return o
}

// tenantServing is one tenant's serving plane: the ingest coalescer, the
// watch broadcast hub, and (for durable, writable tenants) the availability
// state machine. Built by Server.attach when the tenant becomes resident;
// closed by the tenant manager during eviction or shutdown.
type tenantServing struct {
	t      *tenant.Tenant
	co     *coalescer
	hub    *watchHub
	health *health // nil without a store, or on read-only servers
	// pub/fol are set only on the default tenant: replication spans the
	// process's primary graph, not individual tenants.
	pub *replicate.Publisher
	fol *replicate.Follower

	watchers atomic.Int64
}

// eng is the engine handlers must read from: the follower's current one
// (re-fetched per call — a re-bootstrap swaps it) or the tenant's own.
func (ts *tenantServing) eng() *kcore.Engine {
	if ts.fol != nil {
		return ts.fol.Engine()
	}
	return ts.t.Engine()
}

// Close implements tenant.Attachment: stop admitting writes (draining the
// queued ones), stop the durability prober, and end every watch stream, so
// the tenant's reference count can drain.
func (ts *tenantServing) Close() {
	ts.co.close()
	if ts.health != nil {
		ts.health.close()
	}
	ts.hub.close()
}

// Server serves kcore engines over HTTP. Create it with New, expose it
// either through Serve (which owns an http.Server) or by mounting Handler
// on an existing server, and stop it with Shutdown. The default tenant's
// engine remains usable directly alongside the server — its own locking
// arbitrates.
type Server struct {
	opts Options
	mgr  *tenant.Manager
	// def is the pinned default tenant's serving plane — the engine passed
	// to New. Held directly so the legacy /v1 aliases (and every default-
	// scoped route) bypass tenant resolution entirely.
	def *tenantServing
	mux *http.ServeMux

	// co, hub, and health alias def's plane: the single-tenant server's
	// fields, kept for white-box tests and internal callers.
	co     *coalescer
	hub    *watchHub
	health *health

	httpMu   sync.Mutex
	httpSrv  *http.Server
	stop     chan struct{} // closed by Shutdown: unblocks watch streams
	stopOnce sync.Once
	mgrDone  chan struct{} // closed once every tenant has retired
	draining atomic.Bool
	watchers atomic.Int64
}

// New builds a server around an existing engine, which serves as the pinned
// "default" tenant.
func New(engine *kcore.Engine, opts Options) *Server {
	s := &Server{
		opts:    opts.withDefaults(),
		stop:    make(chan struct{}),
		mgrDone: make(chan struct{}),
	}
	topts := s.opts.Tenants
	topts.Attach = s.attach
	s.mgr = tenant.NewManager(topts)
	def, err := s.mgr.Adopt(tenant.DefaultName, engine, s.opts.Persist)
	if err != nil {
		// Adopting a valid constant name into a fresh manager cannot fail.
		panic(fmt.Sprintf("server: adopting default tenant: %v", err))
	}
	s.def = def.Attachment().(*tenantServing)
	s.co, s.hub, s.health = s.def.co, s.def.hub, s.def.health
	s.registerRoutes()
	return s
}

// attach builds a tenant's serving plane; the tenant manager invokes it once
// per residency (including the adopted default tenant, from New).
func (s *Server) attach(t *tenant.Tenant) (tenant.Attachment, error) {
	ts := &tenantServing{t: t}
	ts.co = newCoalescer(t.Engine(), s.opts.MaxPending)
	ts.co.pools = s.mgr.Pools()
	ts.hub = newWatchHub(s.opts.WatchRing)
	if t.Name() == tenant.DefaultName {
		ts.pub = s.opts.Publisher
		ts.fol = s.opts.Follower
	}
	if t.Store() != nil && !s.readOnly() {
		ts.health = newHealth(t.Store())
		ts.co.observe = ts.health.observe
	}
	return ts, nil
}

// readOnly reports whether mutations are rejected.
func (s *Server) readOnly() bool { return s.opts.ReadOnly || s.opts.Follower != nil }

// Handler returns the service's HTTP handler, for mounting on an existing
// http.Server (tests use it with httptest). Callers that bypass Serve must
// still call Shutdown to drain the ingest queues and close watch streams.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns nil after a
// clean shutdown (http.ErrServerClosed is swallowed).
func (s *Server) Serve(l net.Listener) error {
	s.httpMu.Lock()
	if s.draining.Load() {
		s.httpMu.Unlock()
		return fmt.Errorf("server: Serve after Shutdown")
	}
	if s.httpSrv != nil {
		s.httpMu.Unlock()
		return fmt.Errorf("server: Serve called twice")
	}
	// ReadTimeout is deliberately NOT set here: a server-wide read deadline
	// fires mid-stream on long-lived SSE watch responses. The write
	// endpoints arm a per-request read deadline instead (see handleBatch).
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.opts.ReadHeaderTimeout,
		IdleTimeout:       s.opts.IdleTimeout,
	}
	srv := s.httpSrv
	s.httpMu.Unlock()
	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// beginStop starts the one-shot teardown: mark the server draining, end the
// long-lived streams, and retire every tenant in the background. Retiring a
// tenant drains its ingest queue (queued writes were already accepted, so
// they commit), snapshots and closes manager-owned stores, and waits for
// in-flight per-tenant requests to release their references — which is why
// it runs off this goroutine: Shutdown stays bounded by its context even if
// a handler takes its full write deadline to unblock.
func (s *Server) beginStop() {
	s.draining.Store(true)
	s.stopOnce.Do(func() {
		close(s.stop)
		go func() {
			s.mgr.Close()
			close(s.mgrDone)
		}()
	})
}

// Shutdown drains the server gracefully: it stops admitting writes (new
// batch requests get HTTP 503), flushes every queued batch, ends all watch
// streams, evicts every tenant (snapshotting manager-owned stores), and
// then closes the HTTP listener, waiting for in-flight requests up to ctx's
// deadline. It is idempotent. The adopted default store is not closed — its
// owner closes it after Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginStop()
	select {
	case <-s.mgrDone:
	case <-ctx.Done():
	}
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// Close shuts the server down forcefully: like Shutdown it drains the
// ingest queues (queued writes were already accepted, so they commit), but
// in-flight HTTP requests and watch streams are cut instead of awaited.
// Use it when a graceful Shutdown exceeded its deadline.
func (s *Server) Close() error {
	s.beginStop()
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	var err error
	if srv != nil {
		err = srv.Close() // cut in-flight requests so tenant references drain
	}
	<-s.mgrDone
	return err
}

// Watchers reports the number of currently connected watch streams, across
// all tenants.
func (s *Server) Watchers() int { return int(s.watchers.Load()) }

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kcore"
	"kcore/internal/fault"
	"kcore/internal/persist"
	"kcore/internal/replicate"
	"kcore/internal/server/wire"
)

// openFaultStore opens a persisted engine with an armed fault plane.
func openFaultStore(t *testing.T, pl *fault.Plane) *persist.Store {
	t.Helper()
	st, err := persist.Open(t.TempDir(), persist.Options{
		Sync: persist.SyncOff, CompactBytes: -1, Fault: pl,
		RetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// TestHealthzTable asserts the healthz verdict across every server role
// and availability state.
func TestHealthzTable(t *testing.T) {
	ctx := context.Background()

	health := func(t *testing.T, c *Client) *wire.HealthResponse {
		t.Helper()
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatalf("Health: %v", err)
		}
		return h
	}

	t.Run("healthy read-write", func(t *testing.T) {
		_, c := newTestServer(t, kcore.NewEngine(), Options{})
		if h := health(t, c); h.Status != "ok" || h.Mode != "read_write" || h.Cause != "" {
			t.Fatalf("healthz = %+v, want ok/read_write", h)
		}
	})

	t.Run("read-only", func(t *testing.T) {
		_, c := newTestServer(t, kcore.NewEngine(), Options{ReadOnly: true})
		if h := health(t, c); h.Status != "ok" || h.Mode != "read_only" {
			t.Fatalf("healthz = %+v, want ok/read_only", h)
		}
	})

	t.Run("draining", func(t *testing.T) {
		e := kcore.NewEngine()
		s := New(e, Options{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		c, err := NewClient(ts.URL, ts.Client())
		if err != nil {
			t.Fatal(err)
		}
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if err := s.Shutdown(sctx); err != nil {
			t.Fatal(err)
		}
		if h := health(t, c); h.Status != "draining" {
			t.Fatalf("healthz = %+v, want draining", h)
		}
	})

	t.Run("degraded", func(t *testing.T) {
		pl := fault.New(7)
		st := openFaultStore(t, pl)
		s, c := newTestServer(t, st.Engine(), Options{Persist: st})
		s.health.degrade("test-injected durability failure")
		h := health(t, c)
		if h.Status != "degraded" || h.Mode != "read_only" || h.Cause == "" {
			t.Fatalf("healthz = %+v, want degraded/read_only with cause", h)
		}
	})

	t.Run("follower", func(t *testing.T) {
		eng := kcore.NewEngine()
		pub := replicate.NewPublisher(eng, replicate.PublisherOptions{})
		defer pub.Close()
		_, pc := newTestServer(t, eng, Options{Publisher: pub})
		if _, err := pc.AddEdges(ctx, [][2]int{{0, 1}}); err != nil {
			t.Fatal(err)
		}
		fol, err := replicate.StartFollower(ctx, pc.base, replicate.FollowerOptions{})
		if err != nil {
			t.Fatalf("StartFollower: %v", err)
		}
		defer fol.Close()
		_, fc := newTestServer(t, fol.Engine(), Options{Follower: fol})
		if h := health(t, fc); h.Status != "ok" || h.Mode != "follower" {
			t.Fatalf("healthz = %+v, want ok/follower", h)
		}
	})
}

// TestDegradedModeFlow drives the full availability cycle end to end:
// persistent WAL faults fail enough consecutive batches to degrade the
// server (healthz reports cause, writes answer 503 "degraded" with
// Retry-After), then the fault clears and the recovery probe heals the
// log, writes flow again, and the stats record one degradation and one
// recovery.
func TestDegradedModeFlow(t *testing.T) {
	ctx := context.Background()
	pl := fault.New(11)
	st := openFaultStore(t, pl)
	e := st.Engine()
	_, c := newTestServer(t, e, Options{Persist: st})
	c.Retry = nil // observe rejections raw

	if _, err := c.AddEdges(ctx, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	// Every WAL write fails until cleared: each POST exhausts the store's
	// in-line retry and surfaces persistence_failed; degradeAfter of those
	// in a row trip the state machine.
	pl.Fail(fault.WALWrite, 100000, errors.New("injected: disk on fire"))
	for i := 0; i < degradeAfter; i++ {
		_, err := c.AddEdges(ctx, [][2]int{{i + 1, i + 2}})
		if !isWireCode(err, wire.CodePersistenceFailed, http.StatusInternalServerError) {
			t.Fatalf("write %d under fault: err = %v, want persistence_failed", i, err)
		}
	}

	// Degraded: writes now answer 503 "degraded" + Retry-After, healthz
	// stays 200 but says so, and the write never applies.
	seqBefore := e.Seq()
	_, err := c.AddEdges(ctx, [][2]int{{90, 91}})
	if !isWireCode(err, wire.CodeDegraded, http.StatusServiceUnavailable) {
		t.Fatalf("write while degraded: err = %v, want degraded 503", err)
	}
	var we *wire.Error
	if errors.As(err, &we) && we.RetryAfter <= 0 {
		t.Fatalf("degraded rejection carries no Retry-After: %+v", we)
	}
	if e.Seq() != seqBefore {
		t.Fatal("degraded rejection must not apply the batch")
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "degraded" || h.Mode != "read_only" || h.Cause == "" {
		t.Fatalf("healthz while degraded = %+v, err %v", h, err)
	}
	// Reads keep working while degraded.
	if _, err := c.Core(ctx, 0); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}

	// Clear the fault: the recovery probe heals the log and re-enters
	// healthy on its own.
	pl.ClearOp(fault.WALWrite)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if h, err = c.Health(ctx); err == nil && h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover; last healthz %+v err %v", h, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.AddEdges(ctx, [][2]int{{50, 51}}); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	av := stats.Availability
	if av == nil || av.State != "healthy" || av.Degradations != 1 ||
		av.Recoveries != 1 || av.Probes == 0 {
		t.Fatalf("availability stats = %+v, want healthy after 1 degradation/recovery", av)
	}

	// The healed directory recovers everything that was acknowledged.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := persist.Open(st.Dir(), persist.Options{Sync: persist.SyncOff})
	if err != nil {
		t.Fatalf("reopen healed dir: %v", err)
	}
	defer st2.Close()
	if st2.Engine().Seq() != e.Seq() {
		t.Fatalf("recovered seq %d, want %d", st2.Engine().Seq(), e.Seq())
	}
}

// TestClientRetryPolicy asserts the client's transient-rejection retry:
// overloaded and degraded responses are retried within the attempt cap,
// everything else fails fast.
func TestClientRetryPolicy(t *testing.T) {
	ctx := context.Background()
	reject := func(code string, status int, n int) (*httptest.Server, *int) {
		calls := 0
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls++
			if calls <= n {
				w.Header().Set("Retry-After", "0")
				writeJSON(w, status, wire.ErrorResponse{Error: &wire.Error{
					Code: code, Status: status, Message: "injected"}})
				return
			}
			writeJSON(w, http.StatusOK, wire.BatchResponse{Seq: uint64(calls)})
		}))
		return ts, &calls
	}

	t.Run("retries overloaded then succeeds", func(t *testing.T) {
		ts, calls := reject(wire.CodeOverloaded, http.StatusTooManyRequests, 2)
		defer ts.Close()
		c, _ := NewClient(ts.URL, ts.Client())
		c.Retry = &RetryPolicy{Attempts: 4,
			Backoff: fault.Backoff{Min: time.Millisecond, Max: 4 * time.Millisecond}}
		if _, err := c.AddEdges(ctx, [][2]int{{0, 1}}); err != nil {
			t.Fatalf("err = %v, want success on third attempt", err)
		}
		if *calls != 3 {
			t.Fatalf("calls = %d, want 3", *calls)
		}
	})

	t.Run("gives up after the attempt cap", func(t *testing.T) {
		ts, calls := reject(wire.CodeDegraded, http.StatusServiceUnavailable, 1000)
		defer ts.Close()
		c, _ := NewClient(ts.URL, ts.Client())
		c.Retry = &RetryPolicy{Attempts: 3,
			Backoff: fault.Backoff{Min: time.Millisecond, Max: 4 * time.Millisecond}}
		_, err := c.AddEdges(ctx, [][2]int{{0, 1}})
		if !isWireCode(err, wire.CodeDegraded, http.StatusServiceUnavailable) {
			t.Fatalf("err = %v, want the degraded rejection after retries", err)
		}
		if *calls != 3 {
			t.Fatalf("calls = %d, want exactly the attempt cap", *calls)
		}
	})

	t.Run("never retries persistence_failed", func(t *testing.T) {
		ts, calls := reject(wire.CodePersistenceFailed, http.StatusInternalServerError, 1000)
		defer ts.Close()
		c, _ := NewClient(ts.URL, ts.Client())
		if _, err := c.AddEdges(ctx, [][2]int{{0, 1}}); !isWireCode(err,
			wire.CodePersistenceFailed, http.StatusInternalServerError) {
			t.Fatalf("err = %v, want immediate persistence_failed", err)
		}
		if *calls != 1 {
			t.Fatalf("calls = %d, want 1 (retry would double-apply)", *calls)
		}
	})

	t.Run("never retries shutting_down", func(t *testing.T) {
		ts, calls := reject(wire.CodeShuttingDown, http.StatusServiceUnavailable, 1000)
		defer ts.Close()
		c, _ := NewClient(ts.URL, ts.Client())
		if _, err := c.AddEdges(ctx, [][2]int{{0, 1}}); !isWireCode(err,
			wire.CodeShuttingDown, http.StatusServiceUnavailable) {
			t.Fatalf("err = %v, want immediate shutting_down", err)
		}
		if *calls != 1 {
			t.Fatalf("calls = %d, want 1 (the server is going away)", *calls)
		}
	})
}

// TestSlowHeaderClientDisconnected: a slowloris opener that trickles its
// request header is cut at ReadHeaderTimeout instead of parking a
// connection forever.
func TestSlowHeaderClientDisconnected(t *testing.T) {
	s := New(kcore.NewEngine(), Options{ReadHeaderTimeout: 100 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// An incomplete header block, then silence.
	if _, err := conn.Write([]byte("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded; want the server to cut the slow-header connection")
	}
}

// TestSlowBodyWriterDisconnected: a client that sends complete headers for
// POST /v1/batch but trickles the body is cut at the per-request
// ReadTimeout — without affecting long-lived SSE watch streams (which the
// companion sse tests cover under the same server defaults).
func TestSlowBodyWriterDisconnected(t *testing.T) {
	s := New(kcore.NewEngine(), Options{ReadTimeout: 150 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	header := "POST /v1/batch HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n"
	if _, err := conn.Write([]byte(header + `{"updates":[`)); err != nil {
		t.Fatal(err)
	}
	// Trickle nothing further: the handler's read deadline must fire and
	// fail the request rather than waiting for the full body forever.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return // connection cut outright: equally acceptable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (deadline-failed body decode) or a cut connection", resp.StatusCode)
	}
	var envelope wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err == nil && envelope.Error != nil {
		if envelope.Error.Code != wire.CodeBadRequest {
			t.Fatalf("code = %s, want bad_request", envelope.Error.Code)
		}
	}
}

// TestRetryAfterOn429: backpressure rejections carry the Retry-After
// header on the wire.
func TestRetryAfterOn429(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, &wire.Error{Code: wire.CodeOverloaded,
		Status: http.StatusTooManyRequests, Message: "full"})
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 response carries no Retry-After header")
	}
	rec = httptest.NewRecorder()
	writeError(rec, degradedError("x"))
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 degraded response carries no Retry-After header")
	}
	rec = httptest.NewRecorder()
	writeError(rec, badRequest("x"))
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("400 response must not carry Retry-After")
	}
}

package server

import (
	"context"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"kcore"
	"kcore/internal/server/wire"
)

// writerScript generates one writer's deterministic batch sequence over its
// private vertex block [base, base+span). Every batch is valid against the
// writer's own edge history (the blocks are disjoint, so validity is
// independent of the other writers), mixing adds and removes.
func writerScript(w, batches, batchSize int, seed uint64) []kcore.Batch {
	const span = 64
	base := w * span
	rng := rand.New(rand.NewPCG(seed, uint64(w)))
	present := map[[2]int]bool{}
	var presentList [][2]int
	out := make([]kcore.Batch, 0, batches)
	for b := 0; b < batches; b++ {
		batch := make(kcore.Batch, 0, batchSize)
		for len(batch) < batchSize {
			if len(presentList) > 0 && rng.Float64() < 0.35 {
				i := rng.IntN(len(presentList))
				e := presentList[i]
				presentList[i] = presentList[len(presentList)-1]
				presentList = presentList[:len(presentList)-1]
				delete(present, e)
				batch = append(batch, kcore.Remove(e[0], e[1]))
				continue
			}
			u := base + rng.IntN(span)
			v := base + rng.IntN(span)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if present[[2]int{u, v}] {
				continue
			}
			present[[2]int{u, v}] = true
			presentList = append(presentList, [2]int{u, v})
			batch = append(batch, kcore.Add(u, v))
		}
		out = append(out, batch)
	}
	return out
}

func toWire(b kcore.Batch) []wire.Update {
	out := make([]wire.Update, len(b))
	for i, u := range b {
		out[i] = wire.Update{Op: u.Op.String(), U: u.U, V: u.V}
	}
	return out
}

// TestServeDifferential is the acceptance check for the whole service
// stack: N concurrent HTTP writers (through the ingest coalescer), M
// snapshot readers, and one SSE watcher, all live at once — and the final
// core numbers must be bit-identical to applying the same update scripts
// through a single sequential sequence of Apply calls on a fresh engine.
// Run it with -race and GOMAXPROCS=4 (CI does).
func TestServeDifferential(t *testing.T) {
	const (
		writers   = 6
		readers   = 3
		batches   = 25
		batchSize = 12
		seed      = 7
	)
	scripts := make([][]kcore.Batch, writers)
	for w := range scripts {
		scripts[w] = writerScript(w, batches, batchSize, seed)
	}

	engine := kcore.NewEngine(kcore.WithSeed(seed))
	_, c := newTestServer(t, engine, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// One SSE watcher with a large buffer rides along for the whole run.
	events, err := c.Watch(ctx, WatchOptions{Buffer: 1 << 16})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	watcherDone := make(chan int, 1)
	go func() {
		n := 0
		for ev := range events {
			switch ev.Type {
			case wire.EventChange:
				if ev.Change.OldCore == ev.Change.NewCore {
					t.Errorf("change event with no transition: %+v", ev.Change)
				}
				n++
			case wire.EventHello, wire.EventLagged:
			}
		}
		watcherDone <- n
	}()

	var wgWriters, wgReaders sync.WaitGroup
	errCh := make(chan error, writers+readers)

	// Writers: each sends its batches in order, waiting for each response
	// (so the writer's own updates keep their order; cross-writer
	// interleaving is arbitrary but harmless on disjoint vertex blocks).
	// Odd-numbered writers speak the binary wire protocol, so JSON and
	// binary ingest interleave through the same coalescer.
	cb := binaryClient(t, c)
	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(w int) {
			defer wgWriters.Done()
			cw := c
			if w%2 == 1 {
				cw = cb
			}
			for _, b := range scripts[w] {
				if _, err := cw.Batch(ctx, toWire(b)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// Readers: hammer the snapshot endpoints until the writers finish,
	// checking per-reader seq monotonicity (views never go backwards).
	stopReaders := make(chan struct{})
	for r := 0; r < readers; r++ {
		wgReaders.Add(1)
		go func(r int) {
			defer wgReaders.Done()
			var lastSeq uint64
			rng := rand.New(rand.NewPCG(seed+1, uint64(r)))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				var seq uint64
				switch rng.IntN(3) {
				case 0:
					resp, err := c.Core(ctx, rng.IntN(writers*64))
					if err != nil {
						errCh <- err
						return
					}
					seq = resp.Seq
				case 1:
					resp, err := c.KCore(ctx, rng.IntN(4))
					if err != nil {
						errCh <- err
						return
					}
					seq = resp.Seq
				default:
					resp, err := c.Stats(ctx)
					if err != nil {
						errCh <- err
						return
					}
					seq = resp.Seq
				}
				if seq < lastSeq {
					t.Errorf("reader %d observed seq going backwards: %d then %d", r, lastSeq, seq)
					return
				}
				lastSeq = seq
			}
		}(r)
	}

	// Wait for the writers, then release the readers and the watcher,
	// surfacing the first client error along the way.
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		wgWriters.Wait()
	}()
	var firstErr error
	waitWriters := time.After(60 * time.Second)
poll:
	for {
		select {
		case err := <-errCh:
			if firstErr == nil {
				firstErr = err
			}
			cancel() // unwind everything
		case <-writersDone:
			break poll
		case <-waitWriters:
			t.Fatal("writers did not finish in time")
		}
	}
	close(stopReaders)
	wgReaders.Wait()
	if firstErr != nil {
		t.Fatalf("concurrent client failed: %v", firstErr)
	}
	if cb.binaryOff.Load() {
		t.Fatal("binary writers silently fell back to JSON")
	}
	cancel() // end the watch stream
	select {
	case n := <-watcherDone:
		t.Logf("watcher observed %d change events", n)
	case <-time.After(10 * time.Second):
		t.Fatal("watcher never finished")
	}

	// Sequential reference: the same scripts through one engine, writer by
	// writer, batch by batch — one Apply stream, no server, no concurrency.
	ref := kcore.NewEngine(kcore.WithSeed(seed))
	for _, script := range scripts {
		for _, b := range script {
			if _, err := ref.Apply(b); err != nil {
				t.Fatalf("reference Apply: %v", err)
			}
		}
	}
	got, want := engine.Cores(), ref.Cores()
	if len(got) != len(want) {
		t.Fatalf("vertex counts differ: served %d, reference %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("core(%d): served %d, reference %d", v, got[v], want[v])
		}
	}
	if err := engine.Validate(); err != nil {
		t.Fatalf("served engine fails invariant check: %v", err)
	}
	if engine.Seq() != ref.Seq() {
		t.Fatalf("seq: served %d, reference %d", engine.Seq(), ref.Seq())
	}
}

package server

import (
	"errors"
	"fmt"
	"net/http"

	"kcore/internal/server/wire"
	"kcore/internal/tenant"
)

// The v1 route surface is declared once, in routeTable: the mux patterns,
// the method guard, the tenant resolution (legacy /v1/... aliases the
// "default" tenant; /v1/t/{tenant}/... scopes any tenant), and the
// read-only / draining / degraded write gating are all driven from the
// table instead of ad-hoc per-handler checks.

// routeClass is a route's write-gating class.
type routeClass uint8

const (
	// classRead routes are never write-gated: they serve on read-only,
	// draining, and degraded servers alike.
	classRead routeClass = iota
	// classWrite routes mutate the graph: rejected on read-only servers
	// (403), while draining (503), and while the tenant's durability layer
	// is degraded (503 + Retry-After).
	classWrite
	// classMaint routes are maintenance writes: rejected on read-only
	// servers but deliberately NOT degraded-gated — POST /v1/snapshot is the
	// manual heal path, it must work precisely while degraded.
	classMaint
)

// route is one row of the v1 API surface.
type route struct {
	method string
	// path is the unscoped pattern. Tenant-scoped rows (suffix != "") use it
	// as the legacy default-tenant alias and additionally register
	// /v1/t/{tenant}/<suffix>.
	path   string
	suffix string
	// create admits an unknown tenant name on this route (create by touch);
	// without it unknown names answer 404 unknown_tenant.
	create  bool
	class   routeClass
	handler func(*Server, *tenantServing, http.ResponseWriter, *http.Request)
}

var routeTable = []route{
	{method: http.MethodPost, path: "/v1/batch", suffix: "batch", create: true, class: classWrite, handler: (*Server).handleBatch},
	{method: http.MethodGet, path: "/v1/core/{v}", suffix: "core/{v}", class: classRead, handler: (*Server).handleCore},
	{method: http.MethodGet, path: "/v1/cores", suffix: "cores", class: classRead, handler: (*Server).handleCores},
	{method: http.MethodGet, path: "/v1/kcore", suffix: "kcore", class: classRead, handler: (*Server).handleKCore},
	{method: http.MethodGet, path: "/v1/stats", suffix: "stats", class: classRead, handler: (*Server).handleStats},
	{method: http.MethodGet, path: "/v1/watch", suffix: "watch", class: classRead, handler: (*Server).handleWatch},
	{method: http.MethodPost, path: "/v1/snapshot", suffix: "snapshot", class: classMaint, handler: (*Server).handleSnapshot},
	{method: http.MethodGet, path: "/v1/snapshot/export", suffix: "snapshot/export", class: classRead, handler: (*Server).handleSnapshotExport},
	{method: http.MethodGet, path: "/v1/healthz", class: classRead, handler: (*Server).handleHealthz},
	{method: http.MethodGet, path: "/v1/replicate", class: classRead, handler: (*Server).handleReplicate},
	{method: http.MethodGet, path: "/v1/tenants", class: classRead, handler: (*Server).handleTenants},
	{method: http.MethodDelete, path: "/v1/t/{tenant}", class: classRead, handler: (*Server).handleEvictTenant},
}

// registerRoutes builds the mux from routeTable. Method-less patterns with
// an explicit guard (rather than "GET /path" patterns) so wrong-method and
// unknown-path responses carry the wire protocol's JSON error envelope
// instead of ServeMux's plain text.
func (s *Server) registerRoutes() {
	s.mux = http.NewServeMux()
	for _, rt := range routeTable {
		s.mux.HandleFunc(rt.path, s.route(rt, false))
		if rt.suffix != "" {
			s.mux.HandleFunc("/v1/t/{tenant}/"+rt.suffix, s.route(rt, true))
		}
	}
	s.mux.HandleFunc("/", handleNotFound)
}

// route wraps one table row into a handler: method guard, write gating,
// tenant resolution, and reference lifetime around the handler call.
func (s *Server) route(rt route, scoped bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != rt.method {
			w.Header().Set("Allow", rt.method)
			writeError(w, &wire.Error{
				Code: wire.CodeMethodNotAllowed, Status: http.StatusMethodNotAllowed,
				Message: fmt.Sprintf("%s requires %s, got %s", r.URL.Path, rt.method, r.Method),
			})
			return
		}
		if rt.class != classRead && s.readOnly() {
			writeError(w, s.readOnlyError())
			return
		}
		if rt.class == classWrite && s.draining.Load() {
			writeError(w, toWireError(errShuttingDown))
			return
		}
		// The default tenant is pinned — resident for the server's lifetime —
		// so its routes (every legacy alias included) skip the acquire/release
		// reference dance entirely and behave exactly as the single-tenant
		// server did.
		ts := s.def
		if rt.suffix != "" && scoped {
			if name := r.PathValue("tenant"); name != tenant.DefaultName {
				t, err := s.mgr.Acquire(name, rt.create)
				if err != nil {
					writeError(w, tenantError(err))
					return
				}
				defer t.Release()
				ts = t.Attachment().(*tenantServing)
			}
		}
		if rt.class == classWrite && ts.health != nil {
			if degraded, cause := ts.health.current(); degraded {
				writeError(w, degradedError(cause))
				return
			}
		}
		rt.handler(s, ts, w, r)
	}
}

// tenantError maps tenant manager errors onto the wire protocol. The
// mapping lives here (not in wire) so the wire package stays a pure
// protocol definition.
func tenantError(err error) *wire.Error {
	switch {
	case errors.Is(err, tenant.ErrUnknownTenant):
		return &wire.Error{Code: wire.CodeUnknownTenant, Status: http.StatusNotFound,
			Message: err.Error() + " (tenants are created by their first write)"}
	case errors.Is(err, tenant.ErrTenantLimit):
		// 429 + Retry-After (via writeError): a slot frees when a tenant is
		// evicted or idles out.
		return &wire.Error{Code: wire.CodeTenantLimit, Status: http.StatusTooManyRequests,
			Message: err.Error() + "; evict an idle tenant or raise -max-tenants"}
	case errors.Is(err, tenant.ErrInvalidName), errors.Is(err, tenant.ErrPinned):
		return badRequest("%v", err)
	case errors.Is(err, tenant.ErrClosed):
		return toWireError(errShuttingDown)
	}
	return &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
		Message: err.Error()}
}

// handleTenants serves the admin tenant listing: every known tenant
// (resident or cold on disk) with its lifecycle state and size, plus the
// manager's admission counters.
func (s *Server) handleTenants(_ *tenantServing, w http.ResponseWriter, r *http.Request) {
	infos := s.mgr.List()
	ms := s.mgr.Stats()
	resp := wire.TenantsResponse{
		Resident:   ms.Resident,
		MaxTenants: ms.MaxTenants,
		Loads:      ms.Loads,
		Creates:    ms.Creates,
		Evictions:  ms.Evictions,
		Rejections: ms.Rejections,
		Tenants:    make([]wire.TenantInfo, 0, len(infos)), // [] over null
	}
	for _, in := range infos {
		resp.Tenants = append(resp.Tenants, wire.TenantInfo{
			Name:     in.Name,
			State:    string(in.State),
			Pinned:   in.Pinned,
			Durable:  in.Durable,
			Refs:     in.Refs,
			IdleMS:   in.IdleFor.Milliseconds(),
			Seq:      in.Seq,
			Vertices: in.Vertices,
			Edges:    in.Edges,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEvictTenant serves DELETE /v1/t/{tenant}: close the tenant's serving
// plane, drain its references, snapshot + close its store (memory-only
// tenants lose their graph), and drop it from residency. Evicting an
// already-cold durable tenant is an idempotent success.
func (s *Server) handleEvictTenant(_ *tenantServing, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if err := s.mgr.Evict(name); err != nil {
		writeError(w, tenantError(err))
		return
	}
	writeJSON(w, http.StatusOK, wire.EvictResponse{Tenant: name, Evicted: true})
}

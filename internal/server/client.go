package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"kcore/internal/fault"
	"kcore/internal/persist"
	"kcore/internal/server/wire"
)

// RetryPolicy controls the client's automatic retry of transient
// rejections. Only responses whose retry is provably safe are retried:
// 429 "overloaded" and 503 "degraded", where the server rejected the
// request before applying anything. "shutting_down" (the server is going
// away) and "persistence_failed" (the batch DID apply; a retry would
// double-apply) are never retried. The server's Retry-After header, when
// present, overrides the computed backoff delay (capped at Backoff.Max).
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first
	// (default 4; 1 disables retries).
	Attempts int
	// Backoff is the jittered exponential delay envelope between tries
	// (default 50ms min, 1s max). The zero value selects the defaults.
	Backoff fault.Backoff
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Backoff.Min <= 0 {
		p.Backoff.Min = 50 * time.Millisecond
	}
	if p.Backoff.Max <= 0 {
		p.Backoff.Max = time.Second
	}
	return p
}

// Client is the in-process Go client for kcore-serve. It speaks exactly the
// wire protocol over a standard http.Client, so it exercises the real HTTP
// surface (routing, serialization, status mapping) — the server's tests and
// the CI end-to-end smoke drive the service through it.
//
// The graph-scoped calls (Batch, Cores, Watch, ...) exist in two forms:
// scoped to a named tenant through Tenant(name), or directly on Client,
// where they hit the legacy unscoped /v1 routes — exact aliases for the
// "default" tenant. The direct forms are kept for pre-tenant callers; new
// multi-tenant code should scope explicitly.
type Client struct {
	base string
	hc   *http.Client

	// Retry is the transient-rejection retry policy. NewClient installs
	// the default policy; set it to nil to fail fast on 429/503 instead.
	Retry *RetryPolicy
	// Binary makes the client prefer the binary wire protocol: batch
	// bodies and acknowledgements as application/x-kcore-batch, the cores
	// dump as application/x-kcore-cores, and watch streams as
	// application/x-kcore-events. A server that answers 415 (an older
	// build) makes the client fall back to JSON for the rest of its
	// lifetime, so Binary is always safe to set.
	Binary bool

	// binaryOff remembers a 415 from the server: the binary protocol is
	// not spoken there, so later calls go straight to JSON.
	binaryOff atomic.Bool
}

// BaseURL reports the normalized base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// NewClient builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). hc may be nil to use http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("server client: invalid base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("server client: base URL %q needs a scheme and host", baseURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	pol := RetryPolicy{}.withDefaults()
	return &Client{base: strings.TrimRight(u.String(), "/"), hc: hc, Retry: &pol}, nil
}

// TenantClient is a Client view scoped to one tenant: its calls hit the
// /v1/t/{tenant}/... routes and share the parent client's connection,
// retry policy, and binary-protocol negotiation state. Build one with
// Client.Tenant; the zero value is not usable.
type TenantClient struct {
	c      *Client
	name   string
	prefix string // "/v1/t/<name>" (escaped), or "/v1" for the legacy view
}

// Tenant returns a view of the client scoped to the named tenant. The
// tenant need not exist yet — the first Batch/AddEdges call creates it
// (reads of a never-written tenant fail with code "unknown_tenant").
func (c *Client) Tenant(name string) *TenantClient {
	return &TenantClient{c: c, name: name, prefix: "/v1/t/" + url.PathEscape(name)}
}

// legacy is the default-tenant view behind the unscoped /v1 aliases; the
// Client's top-level graph methods delegate through it.
func (c *Client) legacy() *TenantClient {
	return &TenantClient{c: c, name: "default", prefix: "/v1"}
}

// Name reports the tenant this view is scoped to.
func (tc *TenantClient) Name() string { return tc.name }

// Batch applies a mixed update batch via POST .../batch. A non-2xx response
// is returned as a *wire.Error (branch on its Code and Status). With Binary
// set, the batch travels as a binary frame (falling back to JSON once if
// the server answers 415).
func (tc *TenantClient) Batch(ctx context.Context, updates []wire.Update) (*wire.BatchResponse, error) {
	if tc.c.useBinary() {
		resp, err := tc.batchBinary(ctx, updates)
		if !tc.c.fellBack(err) {
			return resp, err
		}
	}
	var resp wire.BatchResponse
	err := tc.c.do(ctx, http.MethodPost, tc.prefix+"/batch", wire.BatchRequest{Updates: updates}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch applies a batch on the default tenant — the pre-tenant call kept
// for existing callers; new code should scope explicitly with Tenant.
func (c *Client) Batch(ctx context.Context, updates []wire.Update) (*wire.BatchResponse, error) {
	return c.legacy().Batch(ctx, updates)
}

// useBinary reports whether the binary protocol should be attempted.
func (c *Client) useBinary() bool { return c.Binary && !c.binaryOff.Load() }

// fellBack inspects a binary-protocol error: a 415 flips the client to
// JSON permanently and asks the caller to retry the JSON way.
func (c *Client) fellBack(err error) bool {
	var we *wire.Error
	if errors.As(err, &we) && we.Code == wire.CodeUnsupportedMedia {
		c.binaryOff.Store(true)
		return true
	}
	return false
}

// batchBinary issues POST .../batch with a binary frame body and a binary
// acknowledgement response.
func (tc *TenantClient) batchBinary(ctx context.Context, updates []wire.Update) (*wire.BatchResponse, error) {
	batch, werr := toBatch(updates)
	if werr != nil {
		return nil, werr
	}
	frame, err := persist.AppendBatchFrame(nil, batch)
	if err != nil {
		return nil, fmt.Errorf("server client: encode batch frame: %w", err)
	}
	var resp wire.BatchResponse
	if err := tc.c.exchange(ctx, http.MethodPost, tc.prefix+"/batch", frame,
		wire.ContentTypeBatch, wire.ContentTypeBatch, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cores fetches the full core-number dump via GET .../cores (binary when
// the client prefers it, JSON otherwise).
func (tc *TenantClient) Cores(ctx context.Context) (*wire.CoresResponse, error) {
	var resp wire.CoresResponse
	if tc.c.useBinary() {
		err := tc.c.exchange(ctx, http.MethodGet, tc.prefix+"/cores", nil, "", wire.ContentTypeCores, &resp)
		if !tc.c.fellBack(err) {
			if err != nil {
				return nil, err
			}
			return &resp, nil
		}
	}
	if err := tc.c.exchange(ctx, http.MethodGet, tc.prefix+"/cores", nil, "", wire.ContentTypeJSON, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cores fetches the default tenant's dump — pre-tenant call, see Batch.
func (c *Client) Cores(ctx context.Context) (*wire.CoresResponse, error) {
	return c.legacy().Cores(ctx)
}

// SnapshotExport fetches a KCORSNAP image of the tenant's current state via
// GET .../snapshot/export. The image loads with persist.ReadSnapshot.
func (tc *TenantClient) SnapshotExport(ctx context.Context) ([]byte, error) {
	var raw []byte
	if err := tc.c.exchange(ctx, http.MethodGet, tc.prefix+"/snapshot/export", nil, "",
		wire.ContentTypeSnapshot, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// SnapshotExport exports the default tenant — pre-tenant call, see Batch.
func (c *Client) SnapshotExport(ctx context.Context) ([]byte, error) {
	return c.legacy().SnapshotExport(ctx)
}

// AddEdges applies a pure-insertion batch.
func (tc *TenantClient) AddEdges(ctx context.Context, edges [][2]int) (*wire.BatchResponse, error) {
	updates := make([]wire.Update, len(edges))
	for i, e := range edges {
		updates[i] = wire.Update{Op: wire.OpAdd, U: e[0], V: e[1]}
	}
	return tc.Batch(ctx, updates)
}

// AddEdges inserts on the default tenant — pre-tenant call, see Batch.
func (c *Client) AddEdges(ctx context.Context, edges [][2]int) (*wire.BatchResponse, error) {
	return c.legacy().AddEdges(ctx, edges)
}

// RemoveEdges applies a pure-removal batch.
func (tc *TenantClient) RemoveEdges(ctx context.Context, edges [][2]int) (*wire.BatchResponse, error) {
	updates := make([]wire.Update, len(edges))
	for i, e := range edges {
		updates[i] = wire.Update{Op: wire.OpRemove, U: e[0], V: e[1]}
	}
	return tc.Batch(ctx, updates)
}

// RemoveEdges removes on the default tenant — pre-tenant call, see Batch.
func (c *Client) RemoveEdges(ctx context.Context, edges [][2]int) (*wire.BatchResponse, error) {
	return c.legacy().RemoveEdges(ctx, edges)
}

// Core fetches one vertex's core number.
func (tc *TenantClient) Core(ctx context.Context, v int) (*wire.CoreResponse, error) {
	var resp wire.CoreResponse
	if err := tc.c.do(ctx, http.MethodGet, tc.prefix+"/core/"+strconv.Itoa(v), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Core reads the default tenant — pre-tenant call, see Batch.
func (c *Client) Core(ctx context.Context, v int) (*wire.CoreResponse, error) {
	return c.legacy().Core(ctx, v)
}

// KCore fetches the vertices of the k-core.
func (tc *TenantClient) KCore(ctx context.Context, k int) (*wire.KCoreResponse, error) {
	var resp wire.KCoreResponse
	if err := tc.c.do(ctx, http.MethodGet, tc.prefix+"/kcore?k="+strconv.Itoa(k), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// KCore reads the default tenant — pre-tenant call, see Batch.
func (c *Client) KCore(ctx context.Context, k int) (*wire.KCoreResponse, error) {
	return c.legacy().KCore(ctx, k)
}

// Stats fetches the tenant's stats snapshot.
func (tc *TenantClient) Stats(ctx context.Context) (*wire.StatsResponse, error) {
	var resp wire.StatsResponse
	if err := tc.c.do(ctx, http.MethodGet, tc.prefix+"/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats reads the default tenant — pre-tenant call, see Batch.
func (c *Client) Stats(ctx context.Context) (*wire.StatsResponse, error) {
	return c.legacy().Stats(ctx)
}

// Snapshot asks the server to write a durability snapshot of the tenant and
// compact its WAL now (POST .../snapshot). Tenants running without
// persistence answer with a *wire.Error carrying code "no_persistence".
func (tc *TenantClient) Snapshot(ctx context.Context) (*wire.SnapshotResponse, error) {
	var resp wire.SnapshotResponse
	if err := tc.c.do(ctx, http.MethodPost, tc.prefix+"/snapshot", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Snapshot snapshots the default tenant — pre-tenant call, see Batch.
func (c *Client) Snapshot(ctx context.Context) (*wire.SnapshotResponse, error) {
	return c.legacy().Snapshot(ctx)
}

// Health fetches the liveness probe.
func (c *Client) Health(ctx context.Context) (*wire.HealthResponse, error) {
	var resp wire.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Tenants lists every tenant the server knows — resident or cold on disk —
// with lifecycle state and the manager's admission counters.
func (c *Client) Tenants(ctx context.Context) (*wire.TenantsResponse, error) {
	var resp wire.TenantsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EvictTenant evicts one tenant from residency (DELETE /v1/t/{name}):
// durable tenants are snapshotted and closed, memory-only tenants lose
// their graph. Evicting an already-cold durable tenant succeeds.
func (c *Client) EvictTenant(ctx context.Context, name string) (*wire.EvictResponse, error) {
	var resp wire.EvictResponse
	if err := c.do(ctx, http.MethodDelete, "/v1/t/"+url.PathEscape(name), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do issues one JSON exchange, retrying safely-retryable rejections per
// the client's RetryPolicy.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var data []byte
	contentType := ""
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return fmt.Errorf("server client: marshal request: %w", err)
		}
		contentType = wire.ContentTypeJSON
	}
	return c.exchange(ctx, method, path, data, contentType, "", out)
}

// exchange issues one request/response exchange in the given encodings,
// retrying safely-retryable rejections per the client's RetryPolicy. The
// request body is rebuilt from data on every attempt.
func (c *Client) exchange(ctx context.Context, method, path string, data []byte, contentType, accept string, out any) error {
	if c.Retry == nil {
		return c.doOnce(ctx, method, path, data, contentType, accept, out)
	}
	pol := c.Retry.withDefaults()
	bo := pol.Backoff
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, method, path, data, contentType, accept, out)
		var we *wire.Error
		if err == nil || attempt >= pol.Attempts ||
			!errors.As(err, &we) || !retryable(we) {
			return err
		}
		delay := bo.Next()
		if we.RetryAfter > 0 {
			// The server's explicit pacing hint wins, bounded by the
			// policy's envelope so a bogus header cannot park the caller.
			delay = min(we.RetryAfter, pol.Backoff.Max)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}

// retryable reports whether a wire error is provably safe to retry: the
// server rejected the request without applying it.
func retryable(we *wire.Error) bool {
	return we.Code == wire.CodeOverloaded || we.Code == wire.CodeDegraded
}

// doOnce issues one request/response exchange. Non-2xx responses always
// decode the JSON error envelope into a *wire.Error (the server serves
// errors as JSON regardless of negotiation); 2xx bodies decode by the
// response's Content-Type.
func (c *Client) doOnce(ctx context.Context, method, path string, data []byte, contentType, accept string, out any) error {
	var body io.Reader
	if contentType != "" {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("server client: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var envelope wire.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == nil {
			return fmt.Errorf("server client: %s %s: HTTP %d (unparseable error body)",
				method, path, resp.StatusCode)
		}
		envelope.Error.Status = resp.StatusCode
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
			envelope.Error.RetryAfter = time.Duration(secs) * time.Second
		}
		return envelope.Error
	}
	return decodeResponse(resp, method, path, out)
}

// decodeResponse decodes one 2xx body by its Content-Type.
func decodeResponse(resp *http.Response, method, path string, out any) error {
	if raw, ok := out.(*[]byte); ok {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("server client: %s %s: read response: %w", method, path, err)
		}
		*raw = data
		return nil
	}
	ct := resp.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	switch ct {
	case wire.ContentTypeBatch:
		br, ok := out.(*wire.BatchResponse)
		if !ok {
			return fmt.Errorf("server client: %s %s: unexpected binary batch ack", method, path)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("server client: %s %s: read response: %w", method, path, err)
		}
		ack, err := wire.DecodeBatchAck(data)
		if err != nil {
			return fmt.Errorf("server client: %s %s: %w", method, path, err)
		}
		*br = *ack
		return nil
	case wire.ContentTypeCores:
		cr, ok := out.(*wire.CoresResponse)
		if !ok {
			return fmt.Errorf("server client: %s %s: unexpected binary cores dump", method, path)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("server client: %s %s: read response: %w", method, path, err)
		}
		seq, cores, err := wire.DecodeCoresDump(data)
		if err != nil {
			return fmt.Errorf("server client: %s %s: %w", method, path, err)
		}
		cr.Seq, cr.Cores = seq, cores
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server client: %s %s: decode response: %w", method, path, err)
	}
	return nil
}

// WatchOptions configures a Watch stream.
type WatchOptions struct {
	// MinCore filters events to those touching core level MinCore or above.
	MinCore int
	// Buffer overrides the server-side subscription buffer (0 = server
	// default).
	Buffer int
}

// Event is one parsed SSE frame from a Watch stream. Exactly one of Hello,
// Change and Lagged is non-nil, matching Type.
type Event struct {
	Type   string
	Hello  *wire.HelloEvent
	Change *wire.ChangeEvent
	Lagged *wire.LaggedEvent
}

// Watch opens GET .../watch and parses the stream (SSE, or binary event
// frames when Binary is set) into events. The returned channel closes when
// the stream ends for any reason (server shutdown, network error, or ctx
// cancellation — cancel ctx to stop watching). The first event is always
// the "hello" frame.
func (tc *TenantClient) Watch(ctx context.Context, opts WatchOptions) (<-chan Event, error) {
	out, err := tc.watch(ctx, opts, tc.c.useBinary())
	if tc.c.fellBack(err) {
		out, err = tc.watch(ctx, opts, false)
	}
	return out, err
}

// Watch streams the default tenant — pre-tenant call, see Batch.
func (c *Client) Watch(ctx context.Context, opts WatchOptions) (<-chan Event, error) {
	return c.legacy().Watch(ctx, opts)
}

func (tc *TenantClient) watch(ctx context.Context, opts WatchOptions, binary bool) (<-chan Event, error) {
	q := url.Values{}
	if opts.MinCore > 0 {
		q.Set("min_core", strconv.Itoa(opts.MinCore))
	}
	if opts.Buffer > 0 {
		q.Set("buffer", strconv.Itoa(opts.Buffer))
	}
	path := tc.prefix + "/watch"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, tc.c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("server client: %w", err)
	}
	accept := wire.ContentTypeSSE
	if binary {
		accept = wire.ContentTypeEvents
	}
	req.Header.Set("Accept", accept)
	resp, err := tc.c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("server client: watch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var envelope wire.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == nil {
			return nil, fmt.Errorf("server client: watch: HTTP %d (unparseable error body)",
				resp.StatusCode)
		}
		envelope.Error.Status = resp.StatusCode
		return nil, envelope.Error
	}
	out := make(chan Event, 16)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		if binary {
			parseEventFrames(ctx, resp.Body, out)
		} else {
			parseSSE(ctx, resp.Body, out)
		}
	}()
	return out, nil
}

// parseEventFrames scans a binary watch stream into events until it ends or
// ctx is cancelled. Malformed frames end the stream (binary framing has no
// per-frame resynchronization point, unlike SSE's blank-line delimiter).
func parseEventFrames(ctx context.Context, r io.Reader, out chan<- Event) {
	br := bufio.NewReaderSize(r, 32*1024)
	for {
		f, err := wire.ReadEventFrame(br)
		if err != nil {
			return
		}
		var ev Event
		switch f.Type {
		case wire.FrameKeepalive:
			continue
		case wire.FrameHello:
			h := f.Hello
			ev = Event{Type: wire.EventHello, Hello: &h}
		case wire.FrameChange:
			c := f.Change
			ev = Event{Type: wire.EventChange, Change: &c}
		case wire.FrameLagged:
			l := f.Lagged
			ev = Event{Type: wire.EventLagged, Lagged: &l}
		}
		select {
		case out <- ev:
		case <-ctx.Done():
			return
		}
	}
}

// parseSSE scans an SSE byte stream into events until the stream ends or
// ctx is cancelled (the cancellation check matters when the consumer has
// stopped reading out: the send must not block forever). Unknown event
// types and malformed frames are skipped (forward compatibility).
func parseSSE(ctx context.Context, r io.Reader, out chan<- Event) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var event string
	var data []string
	flush := func() bool {
		defer func() { event = ""; data = data[:0] }()
		if event == "" || len(data) == 0 {
			return true
		}
		ev := Event{Type: event}
		// Multiple data: lines of one frame join with newlines, per the
		// SSE specification.
		payload := []byte(strings.Join(data, "\n"))
		var err error
		switch event {
		case wire.EventHello:
			ev.Hello = &wire.HelloEvent{}
			err = json.Unmarshal(payload, ev.Hello)
		case wire.EventChange:
			ev.Change = &wire.ChangeEvent{}
			err = json.Unmarshal(payload, ev.Change)
		case wire.EventLagged:
			ev.Lagged = &wire.LaggedEvent{}
			err = json.Unmarshal(payload, ev.Lagged)
		default:
			return true
		}
		if err != nil {
			return true
		}
		select {
		case out <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if !flush() {
				return
			}
		case strings.HasPrefix(line, ":"):
			// comment / keepalive
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			// Strip the field name and the single optional leading space —
			// nothing more, so payload bytes survive verbatim.
			d := strings.TrimPrefix(line, "data:")
			d = strings.TrimPrefix(d, " ")
			data = append(data, d)
		}
	}
}

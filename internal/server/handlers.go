package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"kcore"
	"kcore/internal/persist"
	"kcore/internal/server/wire"
)

// maxBodyBytes bounds POST bodies defensively; the per-request update count
// is separately limited by Options.MaxBatch.
const maxBodyBytes = 16 << 20

// requestMediaType extracts a request's Content-Type media type (parameters
// stripped, lowercased). An absent header defaults to JSON; an unparseable
// one is returned verbatim so the 415 message can name it.
func requestMediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return wire.ContentTypeJSON
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return strings.ToLower(strings.TrimSpace(ct))
	}
	return mt
}

// negotiate picks the first offered media type the Accept header admits.
// An absent Accept admits everything (the first offer — the server's
// preferred encoding — wins); q-values are ignored, so among admitted
// offers the server's preference order decides.
func negotiate(accept string, offers ...string) (string, bool) {
	if strings.TrimSpace(accept) == "" {
		return offers[0], true
	}
	var accepted []string
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil {
			continue
		}
		accepted = append(accepted, mt)
	}
	for _, offer := range offers {
		for _, a := range accepted {
			if a == offer || a == "*/*" ||
				(strings.HasSuffix(a, "/*") && strings.HasPrefix(offer, a[:len(a)-1])) {
				return offer, true
			}
		}
	}
	return "", false
}

// unsupportedMedia builds the stable 415 wire error.
func unsupportedMedia(format string, args ...any) *wire.Error {
	return &wire.Error{Code: wire.CodeUnsupportedMedia, Status: http.StatusUnsupportedMediaType,
		Message: fmt.Sprintf(format, args...)}
}

// writeJSON serializes one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode failures past WriteHeader mean a dead client; nothing to do.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError serializes the structured error envelope with its HTTP
// status. Backpressure rejections (429 overloaded, 503 degraded or
// shutting down) carry a Retry-After header so well-behaved clients pace
// their retries instead of hammering.
func writeError(w http.ResponseWriter, e *wire.Error) {
	if e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, e.Status, wire.ErrorResponse{Error: e})
}

// badRequest builds a 400 wire error.
func badRequest(format string, args ...any) *wire.Error {
	return &wire.Error{Code: wire.CodeBadRequest, Status: http.StatusBadRequest,
		Message: fmt.Sprintf(format, args...)}
}

// readOnlyError builds the stable 403 for mutations on a read-only server;
// on a follower the message names the primary to send writes to.
func (s *Server) readOnlyError() *wire.Error {
	msg := "server is read-only"
	if f := s.opts.Follower; f != nil {
		msg = fmt.Sprintf("server is a replication follower; send writes to the primary at %s", f.Primary())
	}
	return &wire.Error{Code: wire.CodeReadOnly, Status: http.StatusForbidden, Message: msg}
}

// handleNotFound answers unknown paths with the JSON error envelope.
func handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, &wire.Error{Code: wire.CodeNotFound, Status: http.StatusNotFound,
		Message: fmt.Sprintf("no such endpoint %s", r.URL.Path)})
}

// toWireError maps an engine or ingest error onto the wire protocol:
// kcore's sentinel causes become stable error codes, a *kcore.BatchError
// additionally carries the offending batch position and update.
func toWireError(err error) *wire.Error {
	we := &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
		Message: err.Error()}
	switch {
	case errors.Is(err, errShuttingDown):
		we.Code, we.Status = wire.CodeShuttingDown, http.StatusServiceUnavailable
	case errors.Is(err, errOverloaded):
		we.Code, we.Status = wire.CodeOverloaded, http.StatusTooManyRequests
	case errors.Is(err, kcore.ErrSelfLoop):
		we.Code, we.Status = wire.CodeSelfLoop, http.StatusUnprocessableEntity
	case errors.Is(err, kcore.ErrVertexRange):
		we.Code, we.Status = wire.CodeVertexRange, http.StatusUnprocessableEntity
	case errors.Is(err, kcore.ErrDuplicateEdge):
		we.Code, we.Status = wire.CodeDuplicateEdge, http.StatusConflict
	case errors.Is(err, kcore.ErrMissingEdge):
		we.Code, we.Status = wire.CodeMissingEdge, http.StatusConflict
	}
	var he *kcore.HookError
	if errors.As(err, &he) {
		// The batch applied in memory but durability failed: a distinct code
		// so clients know NOT to retry (a retry would double-apply).
		we.Code, we.Status = wire.CodePersistenceFailed, http.StatusInternalServerError
		we.Message = "batch applied but not persisted: " + he.Err.Error()
		return we
	}
	var be *kcore.BatchError
	if errors.As(err, &be) {
		idx := be.Index
		we.Index = &idx
		we.Update = &wire.Update{Op: be.Update.Op.String(), U: be.Update.U, V: be.Update.V}
		we.Message = be.Err.Error()
	}
	return we
}

// toBatch converts wire updates to an engine batch, rejecting unknown ops.
func toBatch(updates []wire.Update) (kcore.Batch, *wire.Error) {
	batch := make(kcore.Batch, len(updates))
	for i, u := range updates {
		switch u.Op {
		case wire.OpAdd:
			batch[i] = kcore.Add(u.U, u.V)
		case wire.OpRemove:
			batch[i] = kcore.Remove(u.U, u.V)
		default:
			idx := i
			uc := u
			return nil, &wire.Error{
				Code: wire.CodeBadRequest, Status: http.StatusBadRequest,
				Message: fmt.Sprintf("unknown op %q (want %q or %q)", u.Op, wire.OpAdd, wire.OpRemove),
				Index:   &idx, Update: &uc,
			}
		}
	}
	return batch, nil
}

// degradedError builds the stable 503 for writes on a degraded server.
// Unlike persistence_failed, the rejected write never applied: retrying
// (after Retry-After) is safe.
func degradedError(cause string) *wire.Error {
	return &wire.Error{
		Code: wire.CodeDegraded, Status: http.StatusServiceUnavailable,
		Message: "server is degraded (read-only) while its durability layer heals: " + cause,
	}
}

// batchScratch is the pooled per-request state of the binary ingest path:
// the body read buffer, the decoded update scratch, and the response frame
// buffer. Safe to recycle once the handler returns — coalescer.submit
// blocks until its flush completes, so nothing retains the update slice.
type batchScratch struct {
	body    []byte
	updates []kcore.Update
	ack     []byte
}

var batchPool = sync.Pool{New: func() any {
	return &batchScratch{body: make([]byte, 0, 64<<10)}
}}

// readAllInto reads r to EOF into buf[:0], growing only past buf's existing
// capacity — the zero-steady-state-alloc read of the binary ingest path.
func readAllInto(r io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// handleBatch runs after the route wrapper's gating (read-only, draining,
// degraded — see routes.go), so the body here is pure decode + submit.
func (s *Server) handleBatch(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	ct := requestMediaType(r)
	if ct != wire.ContentTypeJSON && ct != wire.ContentTypeBatch {
		writeError(w, unsupportedMedia("/v1/batch accepts %s or %s request bodies, got %q",
			wire.ContentTypeJSON, wire.ContentTypeBatch, ct))
		return
	}
	// The response encoding is negotiated BEFORE the batch is decoded or
	// applied: an Accept header admitting neither encoding must fail the
	// request while it is still side-effect free.
	respType, ok := negotiate(r.Header.Get("Accept"), wire.ContentTypeJSON, wire.ContentTypeBatch)
	if !ok {
		writeError(w, unsupportedMedia("/v1/batch responds with %s or %s, none admitted by Accept %q",
			wire.ContentTypeJSON, wire.ContentTypeBatch, r.Header.Get("Accept")))
		return
	}

	// Per-request read deadline: a client trickling its body cannot park
	// this handler past ReadTimeout (server-wide ReadTimeout would kill
	// SSE streams instead; see Serve). Cleared again after the decode so
	// the connection's later keep-alive requests are unaffected.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)

	var batch kcore.Batch
	var sc *batchScratch
	if ct == wire.ContentTypeBatch {
		// Binary fast path: read into pooled scratch, decode with the persist
		// varint codec straight into a pooled update slice, and hand that to
		// the coalescer — no JSON, no per-request allocation at steady state.
		sc = batchPool.Get().(*batchScratch)
		defer batchPool.Put(sc)
		var err error
		sc.body, err = readAllInto(body, sc.body)
		_ = rc.SetReadDeadline(time.Time{})
		if err != nil {
			writeError(w, bodyReadError(err))
			return
		}
		updates, err := persist.DecodeBatchFrame(sc.body, sc.updates)
		sc.updates = updates[:0]
		if err != nil {
			writeError(w, badRequest("invalid binary batch frame: %v", err))
			return
		}
		sc.updates = updates
		if werr := checkBatchSize(len(updates), s.opts.MaxBatch); werr != nil {
			writeError(w, werr)
			return
		}
		batch = kcore.Batch(updates)
	} else {
		var req wire.BatchRequest
		err := json.NewDecoder(body).Decode(&req)
		_ = rc.SetReadDeadline(time.Time{})
		if err != nil {
			writeError(w, bodyReadError(err))
			return
		}
		if werr := checkBatchSize(len(req.Updates), s.opts.MaxBatch); werr != nil {
			writeError(w, werr)
			return
		}
		var werr *wire.Error
		if batch, werr = toBatch(req.Updates); werr != nil {
			writeError(w, werr)
			return
		}
	}
	resp, err := ts.co.submit(batch)
	if err != nil {
		writeError(w, toWireError(err))
		return
	}
	if respType == wire.ContentTypeBatch {
		var buf []byte
		if sc != nil {
			buf = sc.ack[:0]
		}
		buf = wire.AppendBatchAck(buf, resp)
		if sc != nil {
			sc.ack = buf[:0]
		}
		w.Header().Set("Content-Type", wire.ContentTypeBatch)
		w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkBatchSize enforces the shape limits both batch encodings share.
func checkBatchSize(n, maxBatch int) *wire.Error {
	if n == 0 {
		return badRequest("updates must be non-empty")
	}
	if n > maxBatch {
		return &wire.Error{
			Code: wire.CodeBatchTooLarge, Status: http.StatusRequestEntityTooLarge,
			Message: fmt.Sprintf("batch has %d updates, limit is %d; split the batch", n, maxBatch),
		}
	}
	return nil
}

// bodyReadError maps a mutation-body read/decode failure onto the wire
// protocol: an over-limit body is the stable 413, anything else a 400.
func bodyReadError(err error) *wire.Error {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return &wire.Error{
			Code: wire.CodeBatchTooLarge, Status: http.StatusRequestEntityTooLarge,
			Message: fmt.Sprintf("request body exceeds %d bytes; split the batch", tooLarge.Limit),
		}
	}
	return badRequest("invalid batch request body: %v", err)
}

func (s *Server) handleCore(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil || v < 0 {
		writeError(w, badRequest("vertex must be a non-negative integer, got %q", r.PathValue("v")))
		return
	}
	// CoreSeq, not View: the point query must not pay an O(n) snapshot.
	core, seq := ts.eng().CoreSeq(v)
	writeJSON(w, http.StatusOK, wire.CoreResponse{Vertex: v, Core: core, Seq: seq})
}

func (s *Server) handleKCore(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	kstr := r.URL.Query().Get("k")
	if kstr == "" {
		writeError(w, badRequest("missing required query parameter k"))
		return
	}
	k, err := strconv.Atoi(kstr)
	if err != nil || k < 0 {
		writeError(w, badRequest("k must be a non-negative integer, got %q", kstr))
		return
	}
	view := ts.eng().View()
	vs := view.KCore(k)
	if vs == nil {
		vs = []int{} // an empty core serializes as [], not null
	}
	writeJSON(w, http.StatusOK, wire.KCoreResponse{K: k, Count: len(vs), Vertices: vs, Seq: view.Seq()})
}

// handleCores serves the full core-number dump, binary (the server's
// preferred encoding) or JSON by Accept negotiation.
func (s *Server) handleCores(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	typ, ok := negotiate(r.Header.Get("Accept"), wire.ContentTypeCores, wire.ContentTypeJSON)
	if !ok {
		writeError(w, unsupportedMedia("/v1/cores responds with %s or %s, none admitted by Accept %q",
			wire.ContentTypeCores, wire.ContentTypeJSON, r.Header.Get("Accept")))
		return
	}
	view := ts.eng().View()
	cores := view.Cores()
	if typ == wire.ContentTypeJSON {
		if cores == nil {
			cores = []int{} // an empty graph serializes as [], not null
		}
		writeJSON(w, http.StatusOK, wire.CoresResponse{Cores: cores, Seq: view.Seq()})
		return
	}
	buf := wire.AppendCoresDump(nil, view.Seq(), cores)
	w.Header().Set("Content-Type", wire.ContentTypeCores)
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

// handleSnapshotExport streams a KCORSNAP image of the current engine state
// (View(WithIndex()), one read-lock capture), so followers and tools can
// bootstrap without JSON — and without requiring the server to persist.
func (s *Server) handleSnapshotExport(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	if _, ok := negotiate(r.Header.Get("Accept"), wire.ContentTypeSnapshot); !ok {
		writeError(w, unsupportedMedia("/v1/snapshot/export responds with %s, not admitted by Accept %q",
			wire.ContentTypeSnapshot, r.Header.Get("Accept")))
		return
	}
	st, err := ts.eng().View(kcore.WithIndex()).Index()
	if err != nil {
		writeError(w, &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
			Message: fmt.Sprintf("engine cannot export its index: %v", err)})
		return
	}
	data, err := persist.EncodeSnapshot(st)
	if err != nil {
		writeError(w, &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
			Message: fmt.Sprintf("snapshot encode failed: %v", err)})
		return
	}
	w.Header().Set("Content-Type", wire.ContentTypeSnapshot)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("X-Kcore-Seq", strconv.FormatUint(st.Seq, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleStats(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	// Counts, not View: four scalars don't justify an O(n) snapshot —
	// /v1/stats is the resync signal for lagged watchers, so it gets hit.
	eng := ts.eng()
	vertices, edges, degeneracy, seq := eng.Counts()
	ex := eng.ExecStats()
	resp := wire.StatsResponse{
		Tenant:     ts.t.Name(),
		Vertices:   vertices,
		Edges:      edges,
		Degeneracy: degeneracy,
		Seq:        seq,
		Algorithm:  eng.Algorithm().String(),
		Watchers:   int(ts.watchers.Load()),
		Exec: wire.ExecStats{
			Sequential: ex.Sequential,
			Replayed:   ex.Replayed,
			Live:       ex.Live,
			Recomputed: ex.Recomputed,
			Panics:     ex.Panics,
		},
		Ingest: ts.co.stats.wire(),
	}
	if st := ts.t.Store(); st != nil {
		ps := st.Stats()
		resp.Persist = &wire.PersistStats{
			SnapshotSeq:      ps.SnapshotSeq,
			SnapshotBytes:    ps.SnapshotBytes,
			WALRecords:       ps.WALRecords,
			WALBytes:         ps.WALBytes,
			Appends:          ps.Appends,
			AppendRetrySaves: ps.AppendRetrySaves,
			Syncs:            ps.Syncs,
			Compactions:      ps.Compactions,
			CompactErrors:    ps.CompactErrors,
			SyncErrors:       ps.SyncErrors,
			RecoveredRecords: ps.RecoveredRecords,
			RecoveredSeq:     ps.RecoveredSeq,
			TornBytes:        ps.TornBytes,
		}
	}
	if h := ts.health; h != nil {
		av := &wire.AvailabilityStats{
			State:        "healthy",
			Degradations: h.degradations.Load(),
			Recoveries:   h.recoveries.Load(),
			Probes:       h.probes.Load(),
		}
		if degraded, cause := h.current(); degraded {
			av.State, av.Cause = "degraded", cause
			av.DegradedForMS = h.degradedFor().Milliseconds()
		}
		resp.Availability = av
	}
	if pub := ts.pub; pub != nil {
		rs := pub.Stats()
		pr := &wire.PrimaryReplication{
			HeadSeq:        rs.HeadSeq,
			HistoryBaseSeq: rs.HistoryBase,
			HistoryBytes:   rs.HistoryBytes,
			Followers:      []wire.FollowerConn{}, // [] over null for clients
			Bootstraps:     rs.Bootstraps,
			Resumes:        rs.Resumes,
			WALResumes:     rs.WALResumes,
			Drops:          rs.Drops,
		}
		for _, sub := range rs.Subscribers {
			fc := wire.FollowerConn{
				Remote:      sub.Remote,
				FromSeq:     sub.FromSeq,
				SentSeq:     sub.SentSeq,
				QueuedBytes: sub.QueuedBytes,
				ConnectedMS: sub.ConnectedMS,
			}
			if rs.HeadSeq > sub.SentSeq {
				fc.SeqLag = rs.HeadSeq - sub.SentSeq
			}
			pr.Followers = append(pr.Followers, fc)
		}
		resp.Replication = &wire.ReplicationStats{Role: "primary", Primary: pr}
	}
	if f := ts.fol; f != nil {
		fs := f.Stats()
		fr := &wire.FollowerReplication{
			Primary:        fs.Primary,
			Connected:      fs.Connected,
			PrimarySeq:     fs.PrimarySeq,
			AppliedSeq:     fs.AppliedSeq,
			SeqLag:         fs.SeqLag,
			FramesApplied:  fs.FramesApplied,
			UpdatesApplied: fs.UpdatesApplied,
			Bootstraps:     fs.Bootstraps,
			Resumes:        fs.Resumes,
			Reconnects:     fs.Reconnects,
			Gaps:           fs.Gaps,
			LastError:      fs.LastError,
		}
		if !fs.LastFrame.IsZero() {
			fr.LastFrameUnixMS = fs.LastFrame.UnixMilli()
		}
		resp.Replication = &wire.ReplicationStats{Role: "follower", Follower: fr}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot runs after the route wrapper's read-only gate, but is NOT
// degraded-gated: forcing a snapshot is the manual heal path and must work
// precisely while the durability layer is unwell.
func (s *Server) handleSnapshot(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	st := ts.t.Store()
	if st == nil {
		writeError(w, &wire.Error{
			Code: wire.CodeNoPersistence, Status: http.StatusConflict,
			Message: "tenant has no persistence; start kcore-serve with -data-dir",
		})
		return
	}
	start := time.Now()
	info, err := st.Snapshot()
	if err != nil && !errors.Is(err, persist.ErrCompaction) {
		writeError(w, &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
			Message: fmt.Sprintf("snapshot failed: %v", err)})
		return
	}
	resp := wire.SnapshotResponse{
		Seq:       info.Seq,
		Bytes:     info.Bytes,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000.0,
	}
	if err != nil {
		// The snapshot itself is durably on disk; only the WAL shrink failed.
		// Partial success, not a 500 — re-running the snapshot won't help.
		resp.Warning = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz always answers 200 — it is a liveness probe and must keep
// answering precisely when the server is unwell. Status and Mode carry
// the availability verdict; load balancers route writes on those.
func (s *Server) handleHealthz(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	resp := wire.HealthResponse{Status: "ok", Mode: "read_write", Seq: ts.eng().Seq()}
	switch {
	case ts.fol != nil:
		resp.Mode = "follower"
	case s.opts.ReadOnly:
		resp.Mode = "read_only"
	}
	if ts.health != nil {
		if degraded, cause := ts.health.current(); degraded {
			resp.Status, resp.Cause = "degraded", cause
			resp.Mode = "read_only"
		}
	}
	if s.draining.Load() {
		resp.Status = "draining"
	}
	writeJSON(w, http.StatusOK, resp)
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"kcore"
	"kcore/internal/replicate"
	"kcore/internal/server/wire"
)

// TestReadOnlyRejectsWrites pins the wire mapping of the -read-only mode:
// both mutating endpoints answer 403 read_only while every read keeps
// working against the engine's preloaded state.
func TestReadOnlyRejectsWrites(t *testing.T) {
	eng := kcore.NewEngine()
	if _, err := eng.Apply(kcore.Batch{kcore.Add(0, 1), kcore.Add(1, 2), kcore.Add(0, 2)}); err != nil {
		t.Fatalf("preload: %v", err)
	}
	_, c := newTestServer(t, eng, Options{ReadOnly: true})
	ctx := context.Background()

	if _, err := c.AddEdges(ctx, [][2]int{{3, 4}}); !isWireCode(err, wire.CodeReadOnly, http.StatusForbidden) {
		t.Fatalf("batch on read-only server: err = %v, want %s (403)", err, wire.CodeReadOnly)
	}
	if _, err := c.Snapshot(ctx); !isWireCode(err, wire.CodeReadOnly, http.StatusForbidden) {
		t.Fatalf("snapshot on read-only server: err = %v, want %s (403)", err, wire.CodeReadOnly)
	}

	core, err := c.Core(ctx, 1)
	if err != nil || core.Core != 2 {
		t.Fatalf("core(1) on read-only server = %+v, err %v; reads must keep working", core, err)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.Edges != 3 {
		t.Fatalf("stats on read-only server = %+v, err %v", st, err)
	}
	if st.Replication != nil {
		t.Fatalf("read-only without replication must not report a replication section: %+v", st.Replication)
	}
}

// TestReplicateWithoutPublisher pins the 409 on servers not running as a
// replication primary.
func TestReplicateWithoutPublisher(t *testing.T) {
	_, c := newTestServer(t, kcore.NewEngine(), Options{})
	resp, err := c.hc.Get(c.base + "/v1/replicate")
	if err != nil {
		t.Fatalf("GET /v1/replicate: %v", err)
	}
	defer resp.Body.Close()
	var envelope wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	if resp.StatusCode != http.StatusConflict || envelope.Error == nil || envelope.Error.Code != wire.CodeNoReplication {
		t.Fatalf("replicate without publisher = HTTP %d %+v, want 409 %s",
			resp.StatusCode, envelope.Error, wire.CodeNoReplication)
	}
}

// TestReplicateBadFrom pins the 400 on an unparsable resume point.
func TestReplicateBadFrom(t *testing.T) {
	eng := kcore.NewEngine()
	pub := replicate.NewPublisher(eng, replicate.PublisherOptions{})
	defer pub.Close()
	_, c := newTestServer(t, eng, Options{Publisher: pub})
	resp, err := c.hc.Get(c.base + "/v1/replicate?from=x")
	if err != nil {
		t.Fatalf("GET /v1/replicate?from=x: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replicate with bad from = HTTP %d, want 400", resp.StatusCode)
	}
}

// TestPrimaryFollowerEndToEnd drives the whole subsystem through the HTTP
// layer: a primary server with a publisher, a follower bootstrapped over
// /v1/replicate and serving reads from its replicated engine. It asserts
// convergence, the stats sections on both roles, and the follower's write
// rejection naming the primary.
func TestPrimaryFollowerEndToEnd(t *testing.T) {
	ctx := context.Background()
	eng := kcore.NewEngine()
	pub := replicate.NewPublisher(eng, replicate.PublisherOptions{})
	defer pub.Close()
	_, pc := newTestServer(t, eng, Options{Publisher: pub})

	// Writes before the follower exists: covered by the bootstrap snapshot.
	if _, err := pc.AddEdges(ctx, [][2]int{{0, 1}, {1, 2}, {0, 2}}); err != nil {
		t.Fatalf("primary ingest: %v", err)
	}

	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	fol, err := replicate.StartFollower(fctx, pc.base, replicate.FollowerOptions{
		PollInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	defer fol.Close()
	_, fc := newTestServer(t, fol.Engine(), Options{Follower: fol})

	// Writes after: covered by the live stream.
	if _, err := pc.AddEdges(ctx, [][2]int{{2, 3}, {3, 0}}); err != nil {
		t.Fatalf("primary ingest: %v", err)
	}

	waitFollowerCaughtUp(t, fc, 5)

	core, err := fc.Core(ctx, 3)
	if err != nil || core.Core != 2 {
		t.Fatalf("follower core(3) = %+v, err %v, want 2", core, err)
	}

	// Follower rejects writes, naming the primary.
	_, err = fc.AddEdges(ctx, [][2]int{{7, 8}})
	if !isWireCode(err, wire.CodeReadOnly, http.StatusForbidden) {
		t.Fatalf("write on follower: err = %v, want %s (403)", err, wire.CodeReadOnly)
	}
	var we *wire.Error
	if errors.As(err, &we) && !strings.Contains(we.Message, fol.Primary()) {
		t.Fatalf("follower read_only message %q does not name primary %q", we.Message, fol.Primary())
	}

	// Stats sections on both roles.
	fst, err := fc.Stats(ctx)
	if err != nil {
		t.Fatalf("follower stats: %v", err)
	}
	fr := fst.Replication
	if fr == nil || fr.Role != "follower" || fr.Follower == nil || fr.Primary != nil {
		t.Fatalf("follower replication stats = %+v, want follower role with follower section", fr)
	}
	if fr.Follower.Primary != fol.Primary() || !fr.Follower.Connected ||
		fr.Follower.AppliedSeq != 5 || fr.Follower.SeqLag != 0 ||
		fr.Follower.Bootstraps != 1 || fr.Follower.LastFrameUnixMS == 0 {
		t.Fatalf("follower replication section = %+v", fr.Follower)
	}

	pst, err := pc.Stats(ctx)
	if err != nil {
		t.Fatalf("primary stats: %v", err)
	}
	pr := pst.Replication
	if pr == nil || pr.Role != "primary" || pr.Primary == nil || pr.Follower != nil {
		t.Fatalf("primary replication stats = %+v, want primary role with primary section", pr)
	}
	if pr.Primary.HeadSeq != 5 || pr.Primary.Bootstraps != 1 || len(pr.Primary.Followers) != 1 {
		t.Fatalf("primary replication section = %+v", pr.Primary)
	}
	if f := pr.Primary.Followers[0]; f.SentSeq != 5 || f.SeqLag != 0 {
		t.Fatalf("primary's follower conn = %+v, want sent_seq 5, seq_lag 0", f)
	}
}

// waitFollowerCaughtUp polls the follower's /v1/stats until it reports the
// target applied seq with zero lag.
func waitFollowerCaughtUp(t *testing.T, fc *Client, seq uint64) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := fc.Stats(ctx)
		if err == nil && st.Replication != nil && st.Replication.Follower != nil {
			f := st.Replication.Follower
			if f.AppliedSeq >= seq && f.SeqLag == 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			st, _ := fc.Stats(ctx)
			t.Fatalf("follower never caught up to seq %d: %+v", seq, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// isWireCode reports whether err is a wire error with the given code and
// HTTP status.
func isWireCode(err error, code string, status int) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Code == code && we.Status == status
}

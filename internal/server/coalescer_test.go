package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"kcore"
)

// idleCoalescer builds a coalescer whose flusher goroutine is NOT running,
// so tests can drive flush deterministically or inspect the queue.
func idleCoalescer(e *kcore.Engine, maxPending int) *coalescer {
	c := &coalescer{engine: e, maxPending: maxPending}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func mkPending(batch kcore.Batch) *pending {
	return &pending{batch: batch, done: make(chan flushResult, 1)}
}

// TestFlushGroupsRequests drives one flush over three queued requests and
// checks the combined Apply is split back per request.
func TestFlushGroupsRequests(t *testing.T) {
	e := kcore.NewEngine()
	c := idleCoalescer(e, 1000)
	reqs := []*pending{
		mkPending(kcore.Batch{kcore.Add(0, 1), kcore.Add(1, 2)}),
		mkPending(kcore.Batch{kcore.Add(0, 2)}), // closes the triangle: cores 1 -> 2
		mkPending(kcore.Batch{kcore.Add(3, 4)}),
	}
	c.flush(reqs)

	r0 := <-reqs[0].done
	r1 := <-reqs[1].done
	r2 := <-reqs[2].done
	for i, r := range []flushResult{r0, r1, r2} {
		if r.err != nil {
			t.Fatalf("request %d failed: %v", i, r.err)
		}
		if r.resp.FlushedWith != 3 {
			t.Errorf("request %d FlushedWith = %d, want 3", i, r.resp.FlushedWith)
		}
		if r.resp.Seq != 4 {
			t.Errorf("request %d Seq = %d, want group-final 4", i, r.resp.Seq)
		}
	}
	if r0.resp.Applied != 2 || r1.resp.Applied != 1 || r2.resp.Applied != 1 {
		t.Fatalf("applied = %d/%d/%d, want 2/1/1",
			r0.resp.Applied, r1.resp.Applied, r2.resp.Applied)
	}
	// Request 1's single update lifted the triangle to core 2: exactly the
	// three triangle vertices changed, attributed to that request alone.
	if len(r1.resp.CoreChanged) != 3 {
		t.Fatalf("request 1 CoreChanged = %v, want the 3 triangle vertices", r1.resp.CoreChanged)
	}
	if len(r2.resp.CoreChanged) != 2 {
		t.Fatalf("request 2 CoreChanged = %v, want its own 2 vertices", r2.resp.CoreChanged)
	}
	if got := c.stats.wire(); got.Flushes != 1 || got.Requests != 3 || got.Grouped != 3 {
		t.Fatalf("stats = %+v, want 1 flush, 3 requests, 3 grouped", got)
	}
	if e.NumEdges() != 4 {
		t.Fatalf("engine has %d edges, want 4", e.NumEdges())
	}
}

// TestFlushCrossRequestCoalescing: an add in one request annihilated by a
// remove in a co-flushed request — both elided, per the documented contract.
func TestFlushCrossRequestCoalescing(t *testing.T) {
	e := kcore.NewEngine()
	c := idleCoalescer(e, 1000)
	reqs := []*pending{
		mkPending(kcore.Batch{kcore.Add(0, 1), kcore.Add(5, 6)}),
		mkPending(kcore.Batch{kcore.Remove(5, 6)}),
	}
	c.flush(reqs)
	r0, r1 := <-reqs[0].done, <-reqs[1].done
	if r0.err != nil || r1.err != nil {
		t.Fatalf("errors: %v / %v", r0.err, r1.err)
	}
	if r0.resp.Applied != 1 || r0.resp.Coalesced != 1 {
		t.Fatalf("request 0 = %+v, want applied 1, coalesced 1", r0.resp)
	}
	if r1.resp.Applied != 0 || r1.resp.Coalesced != 1 {
		t.Fatalf("request 1 = %+v, want applied 0, coalesced 1", r1.resp)
	}
	if e.HasEdge(5, 6) {
		t.Fatal("annihilated edge (5,6) present in engine")
	}
	if !e.HasEdge(0, 1) {
		t.Fatal("surviving edge (0,1) missing from engine")
	}
}

// TestFlushFallbackIsolatesInvalidRequest: when the combined group fails
// validation, each request is re-applied alone — the valid one succeeds,
// the invalid one gets its own structured error.
func TestFlushFallbackIsolatesInvalidRequest(t *testing.T) {
	e := kcore.NewEngine()
	c := idleCoalescer(e, 1000)
	// Both requests add (0,1): combined validation sees a duplicate, but
	// neither request is invalid on its own — arrival order decides.
	reqs := []*pending{
		mkPending(kcore.Batch{kcore.Add(0, 1), kcore.Add(1, 2)}),
		mkPending(kcore.Batch{kcore.Add(0, 1)}),
	}
	c.flush(reqs)
	r0, r1 := <-reqs[0].done, <-reqs[1].done
	if r0.err != nil {
		t.Fatalf("first-arrived request failed: %v", r0.err)
	}
	if r0.resp.Applied != 2 || r0.resp.FlushedWith != 1 {
		t.Fatalf("request 0 = %+v, want applied 2, flushed_with 1 (individual fallback)", r0.resp)
	}
	if r1.err == nil {
		t.Fatal("second-arrived duplicate add succeeded, want error")
	}
	if !errors.Is(r1.err, kcore.ErrDuplicateEdge) {
		t.Fatalf("request 1 error = %v, want ErrDuplicateEdge", r1.err)
	}
	var be *kcore.BatchError
	if !errors.As(r1.err, &be) || be.Index != 0 {
		t.Fatalf("request 1 error = %v, want *BatchError at index 0", r1.err)
	}
	if got := c.stats.wire(); got.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 fallback", got)
	}
	if e.NumEdges() != 2 {
		t.Fatalf("engine has %d edges, want 2", e.NumEdges())
	}
}

// TestFlushRecomputedGroup: a multi-request group applied by wholesale
// recomputation reports submitted counts and omits per-request attribution.
func TestFlushRecomputedGroup(t *testing.T) {
	// Rebuild threshold floor 1 forces every multi-update batch down the
	// recompute path.
	e := kcore.NewEngine(kcore.WithRebuildThreshold(1, 0))
	c := idleCoalescer(e, 1000)
	reqs := []*pending{
		mkPending(kcore.Batch{kcore.Add(0, 1), kcore.Add(1, 2)}),
		mkPending(kcore.Batch{kcore.Add(0, 2)}),
	}
	c.flush(reqs)
	r0, r1 := <-reqs[0].done, <-reqs[1].done
	if r0.err != nil || r1.err != nil {
		t.Fatalf("errors: %v / %v", r0.err, r1.err)
	}
	for i, r := range []flushResult{r0, r1} {
		if !r.resp.Recomputed {
			t.Errorf("request %d not marked recomputed: %+v", i, r.resp)
		}
		if r.resp.CoreChanged != nil {
			t.Errorf("request %d carries CoreChanged despite recomputed group: %+v", i, r.resp)
		}
		if r.resp.Seq != 3 {
			t.Errorf("request %d Seq = %d, want 3", i, r.resp.Seq)
		}
	}
	if r0.resp.Applied != 2 || r1.resp.Applied != 1 {
		t.Fatalf("applied = %d/%d, want submitted counts 2/1", r0.resp.Applied, r1.resp.Applied)
	}
	if e.Core(0) != 2 {
		t.Fatalf("core(0) = %d, want 2", e.Core(0))
	}
}

// TestSubmitBackpressure: a non-empty queue over the pending budget rejects
// with errOverloaded; an empty queue always admits one request.
func TestSubmitBackpressure(t *testing.T) {
	e := kcore.NewEngine()
	c := idleCoalescer(e, 3) // budget: 3 buffered updates
	// No flusher is running yet, so the first submit parks in the queue.
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.submit(kcore.Batch{kcore.Add(0, 1), kcore.Add(1, 2)})
		firstDone <- err
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.queued == 2
	})
	// 2 queued + 2 > 3: shed.
	if _, err := c.submit(kcore.Batch{kcore.Add(2, 3), kcore.Add(3, 4)}); !errors.Is(err, errOverloaded) {
		t.Fatalf("over-budget submit err = %v, want errOverloaded", err)
	}
	// 2 queued + 1 <= 3: admitted.
	secondDone := make(chan error, 1)
	go func() {
		_, err := c.submit(kcore.Batch{kcore.Add(4, 5)})
		secondDone <- err
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.queued == 3
	})
	if got := c.stats.wire(); got.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 rejected", got)
	}
	// Start the flusher; both parked requests complete.
	c.wg.Add(1)
	go c.run()
	for i, ch := range []chan error{firstDone, secondDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("parked request %d failed: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("parked request %d never completed", i)
		}
	}
	c.close()
	if _, err := c.submit(kcore.Batch{kcore.Add(9, 10)}); !errors.Is(err, errShuttingDown) {
		t.Fatalf("submit after close err = %v, want errShuttingDown", err)
	}
}

// TestConcurrentSubmitStress exercises the real (running) coalescer with
// many concurrent writers over disjoint edges and verifies every update
// landed and the grouped counter saw some batching.
func TestConcurrentSubmitStress(t *testing.T) {
	e := kcore.NewEngine()
	c := newCoalescer(e, 1_000_000)
	defer c.close()
	const writers = 16
	const batches = 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * 1000
			for b := 0; b < batches; b++ {
				u := base + 2*b
				resp, err := c.submit(kcore.Batch{kcore.Add(u, u+1)})
				if err != nil {
					errs <- err
					return
				}
				if resp.Applied != 1 {
					errs <- errors.New("applied != 1")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := e.NumEdges(), writers*batches; got != want {
		t.Fatalf("engine has %d edges, want %d", got, want)
	}
	st := c.stats.wire()
	if st.Requests != writers*batches {
		t.Fatalf("stats = %+v, want %d requests", st, writers*batches)
	}
	t.Logf("ingest stats: %+v", st)
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

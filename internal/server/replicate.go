package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"kcore/internal/persist"
	"kcore/internal/replicate"
	"kcore/internal/server/wire"
)

// handleReplicate serves the binary replication stream (GET /v1/replicate):
// a KCOREREP bootstrap section (snapshot, or empty on a granted resume)
// followed by an endless KCOREWAL stream of applied batches. A follower
// resuming after a reconnect passes ?from=<seq>; the bare presence of the
// parameter is the resume request (from=0 is a valid resume point on an
// empty primary, distinct from a fresh bootstrap).
//
// The stream is one-way. Errors detected before the first byte get the JSON
// error envelope; after that the only signal is closing the connection —
// the follower treats EOF as a reconnect cue and malformed bytes as a gap.
func (s *Server) handleReplicate(ts *tenantServing, w http.ResponseWriter, r *http.Request) {
	pub := ts.pub
	if pub == nil {
		writeError(w, &wire.Error{
			Code: wire.CodeNoReplication, Status: http.StatusConflict,
			Message: "server does not replicate; this kcore-serve runs without a publisher",
		})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
			Message: "response writer does not support streaming"})
		return
	}
	q := r.URL.Query()
	var from uint64
	resume := q.Has("from")
	if resume {
		n, err := strconv.ParseUint(q.Get("from"), 10, 64)
		if err != nil {
			writeError(w, badRequest("from must be a non-negative integer, got %q", q.Get("from")))
			return
		}
		from = n
	}

	sub, boot, err := pub.Subscribe(r.RemoteAddr, from, resume)
	if err != nil {
		if errors.Is(err, replicate.ErrClosed) {
			writeError(w, toWireError(errShuttingDown))
			return
		}
		writeError(w, &wire.Error{Code: wire.CodeInternal, Status: http.StatusInternalServerError,
			Message: "replication subscribe failed: " + err.Error()})
		return
	}
	defer pub.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Per-write deadlines, same rationale as the watch stream: a follower
	// whose TCP peer stopped reading must not park this handler (and with
	// it graceful shutdown) forever.
	rc := http.NewResponseController(w)
	arm := func() { _ = rc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)) }
	arm()

	// Bootstrap: KCOREREP header (+snapshot unless resuming from the exact
	// chain position), then the KCOREWAL header the live frames extend, then
	// any backlog frames queued between the resume point and registration.
	head := replicate.AppendBootstrap(nil, boot.Snapshot)
	head = persist.AppendWALHeader(head)
	if _, err := w.Write(head); err != nil {
		return
	}
	for _, f := range boot.Backlog {
		if _, err := w.Write(f); err != nil {
			return
		}
	}
	sub.MarkSent(boot.BacklogSeq)
	flusher.Flush()

	for {
		select {
		case <-sub.Notify():
			frames, lastSeq, err := sub.Next()
			if err != nil {
				// Dropped for backpressure (or publisher close). Nothing can
				// be written mid-stream; the close is the signal.
				return
			}
			if len(frames) == 0 {
				continue
			}
			arm()
			for _, f := range frames {
				if _, err := w.Write(f); err != nil {
					return
				}
			}
			sub.MarkSent(lastSeq)
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}

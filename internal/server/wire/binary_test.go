package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestBatchAckRoundTrip(t *testing.T) {
	cases := []BatchResponse{
		{},
		{Seq: 42, Applied: 10, Coalesced: 2, FlushedWith: 3, Visited: 17},
		{Seq: 1 << 40, Applied: 1, Recomputed: true, FlushedWith: 1},
		{Seq: 7, Applied: 2, FlushedWith: 1, CoreChanged: []int{0, 5, 300}, Visited: 9},
	}
	for i, in := range cases {
		data := AppendBatchAck(nil, &in)
		out, err := DecodeBatchAck(data)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(*out, in) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, in, *out)
		}
	}
}

func TestBatchAckRejectsMalformed(t *testing.T) {
	valid := AppendBatchAck(nil, &BatchResponse{Seq: 9, Applied: 1, FlushedWith: 1, CoreChanged: []int{1, 2}})
	cases := map[string][]byte{
		"empty":       {},
		"one byte":    {ackVersion},
		"bad version": append([]byte{99}, valid[1:]...),
		"truncated":   valid[:len(valid)-1],
		"trailing":    append(append([]byte(nil), valid...), 0x00),
	}
	for name, data := range cases {
		if _, err := DecodeBatchAck(data); !errors.Is(err, ErrMalformedFrame) {
			t.Errorf("%s: err = %v, want ErrMalformedFrame", name, err)
		}
	}
}

func TestCoresDumpRoundTrip(t *testing.T) {
	cases := []struct {
		seq   uint64
		cores []int
	}{
		{0, nil},
		{12, []int{0, 1, 2, 2, 2, 0, 300}},
	}
	for i, c := range cases {
		data := AppendCoresDump(nil, c.seq, c.cores)
		seq, cores, err := DecodeCoresDump(data)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if seq != c.seq || len(cores) != len(c.cores) {
			t.Fatalf("case %d: got seq %d, %d cores; want seq %d, %d cores",
				i, seq, len(cores), c.seq, len(c.cores))
		}
		for v := range cores {
			if cores[v] != c.cores[v] {
				t.Fatalf("case %d: core[%d] = %d, want %d", i, v, cores[v], c.cores[v])
			}
		}
	}
}

func TestCoresDumpRejectsMalformed(t *testing.T) {
	valid := AppendCoresDump(nil, 5, []int{1, 2, 3})
	flip := append([]byte(nil), valid...)
	flip[coresHeaderLen] ^= 0x01
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXXXXXX"), valid[8:]...),
		"flip":      flip,
		"truncated": valid[:len(valid)-2],
	}
	for name, data := range cases {
		if _, _, err := DecodeCoresDump(data); !errors.Is(err, ErrMalformedFrame) {
			t.Errorf("%s: err = %v, want ErrMalformedFrame", name, err)
		}
	}
}

func TestEventFrameRoundTrip(t *testing.T) {
	var stream []byte
	stream = AppendHelloFrame(stream, HelloEvent{Seq: 10, MinCore: 2, Buffer: 256})
	stream = AppendChangeFrame(stream, ChangeEvent{Vertex: 7, OldCore: 1, NewCore: 2, Seq: 11})
	stream = append(stream, FrameKeepalive)
	stream = AppendLaggedFrame(stream, LaggedEvent{Dropped: 1 << 33})
	stream = AppendChangeFrame(stream, ChangeEvent{Vertex: 0, OldCore: 3, NewCore: 2, Seq: 12})

	br := bufio.NewReader(bytes.NewReader(stream))
	var frames []EventFrame
	for {
		f, err := ReadEventFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if len(frames) != 5 {
		t.Fatalf("decoded %d frames, want 5", len(frames))
	}
	if frames[0].Type != FrameHello || frames[0].Hello != (HelloEvent{Seq: 10, MinCore: 2, Buffer: 256}) {
		t.Fatalf("hello = %+v", frames[0])
	}
	if frames[1].Type != FrameChange || frames[1].Change != (ChangeEvent{Vertex: 7, OldCore: 1, NewCore: 2, Seq: 11}) {
		t.Fatalf("change = %+v", frames[1])
	}
	if frames[2].Type != FrameKeepalive {
		t.Fatalf("keepalive = %+v", frames[2])
	}
	if frames[3].Type != FrameLagged || frames[3].Lagged.Dropped != 1<<33 {
		t.Fatalf("lagged = %+v", frames[3])
	}
	if frames[4].Type != FrameChange || frames[4].Change.Seq != 12 {
		t.Fatalf("change 2 = %+v", frames[4])
	}
}

func TestEventFrameRejectsUnknownType(t *testing.T) {
	br := bufio.NewReader(bytes.NewReader([]byte{0xEE}))
	if _, err := ReadEventFrame(br); !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("err = %v, want ErrMalformedFrame", err)
	}
	// A truncated frame reports the reader's error, not a panic.
	br = bufio.NewReader(bytes.NewReader([]byte{FrameChange, 0x07}))
	if _, err := ReadEventFrame(br); err == nil {
		t.Fatal("truncated change frame decoded")
	}
}

package wire

import (
	"fmt"
	"time"
)

// Error codes carried in ErrorResponse. Mutation codes mirror the kcore
// sentinel errors one-to-one so clients can branch without string matching.
const (
	// CodeBadRequest: the request body or a parameter was malformed
	// (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeSelfLoop: an update named an edge (v, v) (HTTP 422).
	CodeSelfLoop = "self_loop"
	// CodeVertexRange: an update named a negative vertex id (HTTP 422).
	CodeVertexRange = "vertex_range"
	// CodeDuplicateEdge: an inserted edge was already present (HTTP 409).
	CodeDuplicateEdge = "duplicate_edge"
	// CodeMissingEdge: a removed edge was not present (HTTP 409).
	CodeMissingEdge = "missing_edge"
	// CodeBatchTooLarge: the batch exceeded the server's max-batch limit
	// (HTTP 413).
	CodeBatchTooLarge = "batch_too_large"
	// CodeOverloaded: the ingest coalescer's pending-update budget is
	// exhausted; retry later (HTTP 429).
	CodeOverloaded = "overloaded"
	// CodeShuttingDown: the server is draining and no longer accepts writes
	// (HTTP 503).
	CodeShuttingDown = "shutting_down"
	// CodeDegraded: the server entered degraded read-only mode because its
	// durability layer is failing (sealed write-ahead log or repeated append
	// failures); writes are rejected until the automatic recovery probe
	// heals the log. The response carries a Retry-After header — the write
	// IS safe to retry, unlike "persistence_failed" (HTTP 503).
	CodeDegraded = "degraded"
	// CodeNotFound: no such endpoint or resource (HTTP 404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the endpoint exists but not for this HTTP
	// method (HTTP 405; the Allow header names the right one).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeInternal: unexpected server-side failure (HTTP 500).
	CodeInternal = "internal"
	// CodePersistenceFailed: the batch WAS applied in memory but could not
	// be made durable (the write-ahead log append failed). Do NOT retry the
	// batch — it would double-apply; resynchronize and alert instead
	// (HTTP 500).
	CodePersistenceFailed = "persistence_failed"
	// CodeNoPersistence: the snapshot endpoint requires the server to run
	// with a data directory (HTTP 409).
	CodeNoPersistence = "no_persistence"
	// CodeReadOnly: the server does not accept writes — it is a replication
	// follower or runs with -read-only. Send the mutation to the primary
	// (the message names it on followers) (HTTP 403).
	CodeReadOnly = "read_only"
	// CodeNoReplication: the replication endpoint requires the server to
	// run as a replicating primary (HTTP 409).
	CodeNoReplication = "no_replication"
	// CodeUnsupportedMedia: the request declared a Content-Type the endpoint
	// does not speak, or its Accept header admits none of the encodings the
	// endpoint can produce. The message names the supported types (HTTP 415).
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeUnknownTenant: the tenant named in a /v1/t/{tenant}/... path is
	// neither resident nor on disk. Tenants are created by their first write
	// (POST .../batch); reads of never-written names get this (HTTP 404).
	CodeUnknownTenant = "unknown_tenant"
	// CodeTenantLimit: admitting the tenant would exceed the server's
	// resident-tenant bound (-max-tenants). Retry after an idle tenant is
	// evicted, or evict one explicitly (HTTP 429, Retry-After).
	CodeTenantLimit = "tenant_limit"
)

// Error is the structured error body every non-2xx response carries,
// wrapped in ErrorResponse. It implements the error interface so the Go
// client returns it directly.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
	// Index, when non-nil, is the position of the offending update within
	// the submitted batch (mutation errors only).
	Index *int `json:"index,omitempty"`
	// Update, when non-nil, is the offending update (mutation errors only).
	Update *Update `json:"update,omitempty"`
	// Status is the HTTP status the error was served with. It is set by the
	// client from the response and not serialized.
	Status int `json:"-"`
	// RetryAfter is the parsed Retry-After header of a 429/503 response
	// (zero when absent). Set by the client, not serialized.
	RetryAfter time.Duration `json:"-"`
}

// Error renders the wire error for logs and error chains.
func (e *Error) Error() string {
	if e.Index != nil && e.Update != nil {
		return fmt.Sprintf("kcore-serve: %s: %s (update %d: %s %d-%d)",
			e.Code, e.Message, *e.Index, e.Update.Op, e.Update.U, e.Update.V)
	}
	return fmt.Sprintf("kcore-serve: %s: %s", e.Code, e.Message)
}

// ErrorResponse is the envelope of every non-2xx JSON response.
type ErrorResponse struct {
	Error *Error `json:"error"`
}

// Package wire defines the typed HTTP/JSON protocol of kcore-serve: the
// request and response bodies of every endpoint, the error envelope, and the
// SSE event schema of the watch stream. Both the server handlers
// (internal/server) and the Go client (internal/server.Client) marshal
// exactly these types, so the package is the single source of truth for the
// protocol.
//
// # Endpoints
//
// Bodies are JSON unless the binary protocol is negotiated (see the Binary
// protocol section); all successful responses use status 200 unless noted.
//
//	POST /v1/batch       — apply a mixed add/remove update batch (BatchRequest
//	                       → BatchResponse, or their binary framings). Each
//	                       request is atomic: either every surviving update
//	                       applies or none does.
//	GET  /v1/core/{v}    — core number of one vertex (CoreResponse).
//	GET  /v1/cores       — bulk dump of every vertex's core number
//	                       (CoresResponse as JSON, or the binary KCORDUMP
//	                       frame — the default when the Accept header does
//	                       not ask for JSON).
//	GET  /v1/kcore?k=K   — vertices of the k-core (KCoreResponse).
//	GET  /v1/stats       — graph size, degeneracy, execution, ingest and
//	                       persistence counters (StatsResponse).
//	GET  /v1/watch       — live CoreChange events over Server-Sent Events or
//	                       binary event frames; query parameters min_core and
//	                       buffer configure the subscription (see the watch
//	                       section below).
//	GET  /v1/healthz     — liveness probe (HealthResponse).
//	POST /v1/snapshot    — admin: force a durability snapshot + WAL
//	                       compaction now (SnapshotResponse). Requires the
//	                       server to run with persistence (-data-dir);
//	                       otherwise it fails with code "no_persistence".
//	GET  /v1/snapshot/export — stream the current engine state as a raw
//	                       KCORSNAP image (application/x-kcore-snapshot,
//	                       loadable with internal/persist.ReadSnapshot; the
//	                       X-Kcore-Seq response header carries its seq).
//	GET  /v1/replicate   — replication stream for followers (binary, not
//	                       JSON: a bootstrap section, optionally carrying a
//	                       KCORSNAP snapshot, followed by a live KCOREWAL
//	                       frame stream; see internal/replicate). The
//	                       optional ?from=<seq> query asks to resume at that
//	                       sequence number. Fails with "no_replication" when
//	                       the server is not a replicating primary.
//	GET  /v1/tenants     — admin: list every known tenant, resident or cold
//	                       on disk, with lifecycle state and admission
//	                       counters (TenantsResponse).
//	DELETE /v1/t/{tenant} — admin: evict one tenant from residency
//	                       (EvictResponse). Durable tenants are snapshotted
//	                       and closed — one lazy load away from serving
//	                       again; memory-only tenants lose their graph. The
//	                       pinned "default" tenant refuses with HTTP 400.
//
// # Multi-tenancy
//
// One server hosts many independent graphs. Every graph-scoped endpoint
// above exists in a tenant-scoped form under /v1/t/{tenant}/... — e.g.
// POST /v1/t/acme/batch, GET /v1/t/acme/kcore?k=3 — with identical
// request/response bodies. The legacy unscoped /v1/... routes are exact
// aliases for the pinned "default" tenant, so single-tenant deployments
// and pre-tenant clients keep working unchanged.
//
// Tenants are created by touch: the first POST .../batch to an unknown name
// admits a fresh tenant (names: lowercase [a-z0-9._-], max 64 bytes,
// starting alphanumeric). Read requests to names with no state answer 404
// with the stable code "unknown_tenant". When the server runs with a data
// directory, each named tenant persists under <data-dir>/tenants/<name>/
// and is recovered lazily on its first touch after a restart; tenants idle
// past the server's -tenant-idle are snapshotted and evicted from memory
// automatically. At most -max-tenants tenants are resident at once; past
// the bound, admission answers 429 "tenant_limit" with a Retry-After
// header. GET .../stats echoes the serving tenant in StatsResponse.Tenant.
//
// # Binary protocol
//
// The hot paths — bulk ingest, bulk reads and the watch stream — have binary
// framings negotiated per request through the standard HTTP headers:
//
//   - POST /v1/batch with Content-Type: application/x-kcore-batch sends the
//     updates as one persist batch frame (KCORBTCH magic, varint-encoded
//     updates, CRC-32 trailer; see internal/persist.AppendBatchFrame) instead
//     of a BatchRequest. The server decodes it into pooled scratch — the
//     steady state allocates nothing per request.
//   - Accept: application/x-kcore-batch on POST /v1/batch selects the binary
//     batch ack (AppendBatchAck) over the JSON BatchResponse.
//   - GET /v1/cores answers the binary KCORDUMP frame unless Accept asks for
//     application/json specifically (absent and wildcard Accept both pick
//     binary — the dump exists for bulk transfer).
//   - Accept: application/x-kcore-events on GET /v1/watch selects binary
//     event frames (ReadEventFrame) over SSE.
//
// A request whose Content-Type the endpoint cannot decode, or whose Accept
// header rules out every representation the endpoint can produce, fails with
// HTTP 415 and the stable code "unsupported_media_type" — before any side
// effect, so a 415 never applied anything. Error responses always use the
// JSON envelope regardless of negotiation (errors are rare and need no
// binary fast path; a client that can send the binary protocol can parse
// JSON). Absent headers mean JSON everywhere except GET /v1/cores, so plain
// curl and pre-binary clients observe the exact JSON protocol that existed
// before the binary framings. The Go Client negotiates automatically when
// its Binary field is set: one 415 from a pre-binary server downgrades it to
// JSON permanently, so Binary is always safe to enable.
//
// # Replication and read-only mode
//
// kcore-serve started with -follow=<primary-url> replicates that primary:
// it bootstraps from /v1/replicate, applies streamed frames to its local
// engine, and serves the read endpoints (core, kcore, stats, watch) from
// it. Replication is asynchronous — follower reads are eventually
// consistent, read-your-primary-writes is NOT guaranteed — and the
// staleness is observable: StatsResponse.Replication carries seq_lag on
// followers and per-follower progress on the primary.
//
// Mutating endpoints (POST /v1/batch, POST /v1/snapshot) on a follower, or
// on any server started with -read-only, fail with the stable code
// "read_only" (HTTP 403); on followers the error message names the primary
// to write to.
//
// # Durability
//
// When kcore-serve runs with a data directory, every applied batch is
// appended to a write-ahead log before its POST /v1/batch response is sent
// (fsync timing depends on the server's -fsync policy), and the engine state
// is periodically compacted into a snapshot. A WAL append failure is
// reported with code "persistence_failed" (HTTP 500): the batch IS applied
// in memory — retrying it would double-apply — but was not made durable.
// For a transient fault the failed records are retained in a bounded
// backlog and written ahead of the next batch that lands, so the log
// catches up with nothing lost. If the log cannot accept records at all,
// further batches keep answering "persistence_failed" (the log refuses
// records that would leave a replay-breaking sequence gap) until a snapshot
// re-covers the gap. The server schedules that healing snapshot
// automatically — unless it runs with background compaction disabled
// (-compact-every < 0), where POST /v1/snapshot must be called to heal —
// and POST /v1/snapshot forces it at any time. StatsResponse.Persist
// exposes the durability counters.
//
// POST /v1/snapshot distinguishes partial success: when the snapshot file
// was durably written but the WAL compaction step failed, the response is
// still 200 with SnapshotResponse.Warning set — the data is safe, the log
// merely kept its size — rather than a misleading 500.
//
// # Degraded mode
//
// A persisted server tracks its durability layer's health. When the
// write-ahead log seals itself (unusable handle) or several consecutive
// batches fail their append, the server flips to degraded read-only mode:
// POST /v1/batch and /v1/snapshot answer 503 with the stable code
// "degraded" and a Retry-After header (the write never applied — retrying
// it is safe, unlike "persistence_failed"), reads keep working, and
// GET /v1/healthz reports status "degraded" with the cause. A background
// recovery probe repeatedly tries to heal the log (snapshot + rebuild)
// with jittered exponential backoff; once the log accepts appends again
// the server re-enters healthy mode on its own. The transitions are
// observable in StatsResponse.Availability.
//
// Reads never block writes, and every query response carries the engine
// sequence number ("seq") of the state it describes. The k-core listing is
// served from an immutable engine snapshot (kcore.Engine.View); the
// single-vertex core and the stats scalars are read as consistent
// (value, seq) pairs under one shared-lock acquisition (kcore.Engine.CoreSeq
// and Counts), which is observably equivalent and avoids View's O(n) copy
// per request.
//
// # Batch coalescing and atomicity
//
// Concurrent POST /v1/batch requests are funneled through an ingest
// coalescer: requests that arrive while an earlier flush is still applying
// are buffered and flushed through one kcore Apply call, amortizing batch
// planning and lock acquisition across callers. The contract:
//
//   - Each request stays atomic. Either all of its (surviving) updates
//     commit, or the request fails and changes nothing.
//   - Requests flushed together behave as one ordered batch, ordered by
//     arrival. In particular, self-annihilating pairs MAY coalesce across
//     requests: if one request adds an edge and a co-flushed later request
//     removes it, both updates can be elided entirely (reported via
//     BatchResponse.Coalesced, exactly like an intra-batch pair).
//   - A request never fails because another request in its flush group is
//     invalid: when a combined flush fails validation, the server re-applies
//     each request individually, in arrival order, so every caller gets its
//     own success or its own structured error.
//   - BatchResponse.Seq is the engine sequence number after the whole flush
//     group committed (group-final, not request-final).
//   - When the engine applied a multi-request flush group by wholesale
//     recomputation (Recomputed is true and FlushedWith > 1), per-update
//     attribution does not exist: CoreChanged is omitted and Applied reports
//     the request's submitted update count.
//
// # Watch events
//
// GET /v1/watch responds with Content-Type: text/event-stream (SSE) by
// default, or with application/x-kcore-events (binary frames) when Accept
// selects it. Three event types are sent; as SSE each carries a JSON data
// payload:
//
//	event: hello    data: HelloEvent   — once, immediately: subscription
//	                                     parameters and the current seq.
//	event: change   data: ChangeEvent  — one per core-number change.
//	event: lagged   data: LaggedEvent  — the subscriber fell behind and
//	                                     events were dropped.
//
// Events fan out through a shared broadcast ring: each change is encoded
// once per framing (not once per watcher), and every watcher walks the ring
// through its own cursor. Delivery keeps kcore.Subscribe's drop-on-full
// semantics: the engine never blocks on a slow watcher. Events that fall out
// of a watcher's lag window — the "buffer" query parameter (default 256),
// effectively clamped to the ring capacity (kcore-serve -watch-ring,
// default 4096) — are dropped, and the next time the stream catches up a
// "lagged" event reports the cumulative drop count. The count may slightly
// over-report for min_core-filtered subscribers: drops are counted before
// the filter, so some dropped events would have been filtered out anyway.
// Consumers that must not miss changes should treat "lagged" as a signal to
// resynchronize via GET /v1/cores (or /v1/stats + /v1/kcore).
package wire

// Update is one edge update in a batch request. Op is "add" or "remove".
type Update struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// Op values accepted in Update.Op.
const (
	OpAdd    = "add"
	OpRemove = "remove"
)

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Updates is the ordered update list. It must be non-empty and no longer
	// than the server's max-batch limit.
	Updates []Update `json:"updates"`
}

// BatchResponse reports the effect of one applied batch request.
type BatchResponse struct {
	// Seq is the engine update sequence number after this request's flush
	// group committed (see the coalescing contract in the package comment).
	Seq uint64 `json:"seq"`
	// Applied is the number of this request's updates that took effect.
	// When Recomputed is set for a multi-request flush group, it reports the
	// submitted update count instead (per-update attribution does not exist).
	Applied int `json:"applied"`
	// Coalesced counts this request's updates elided as self-annihilating
	// pairs — including pairs formed across co-flushed requests.
	Coalesced int `json:"coalesced"`
	// Recomputed reports that the engine applied the flush group by one
	// wholesale recomputation instead of per-update maintenance.
	Recomputed bool `json:"recomputed,omitempty"`
	// FlushedWith is the number of requests in the flush group this request
	// was applied with, including itself (1 = applied alone).
	FlushedWith int `json:"flushed_with"`
	// CoreChanged lists the vertices whose core number changed due to this
	// request's updates, deduplicated, in first-change order. Omitted when
	// the flush group was recomputed with FlushedWith > 1.
	CoreChanged []int `json:"core_changed,omitempty"`
	// Visited sums the per-update search-space sizes (the paper's |V+|/|V'|
	// metric); 0 when unattributable.
	Visited int `json:"visited,omitempty"`
}

// CoreResponse is the body of GET /v1/core/{v}.
type CoreResponse struct {
	Vertex int    `json:"vertex"`
	Core   int    `json:"core"`
	Seq    uint64 `json:"seq"`
}

// KCoreResponse is the body of GET /v1/kcore?k=K.
type KCoreResponse struct {
	K        int    `json:"k"`
	Count    int    `json:"count"`
	Vertices []int  `json:"vertices"`
	Seq      uint64 `json:"seq"`
}

// ExecStats mirrors kcore.ExecStats: lifetime update counts per batch
// execution mode, plus the count of contained engine panics.
type ExecStats struct {
	Sequential uint64 `json:"sequential"`
	Replayed   uint64 `json:"replayed"`
	Live       uint64 `json:"live"`
	Recomputed uint64 `json:"recomputed"`
	// Panics counts batches quarantined by the engine's panic containment:
	// the batch was rejected and the maintained state rebuilt wholesale.
	// Non-zero values deserve investigation.
	Panics uint64 `json:"panics,omitempty"`
}

// IngestStats counts the ingest coalescer's lifetime activity.
type IngestStats struct {
	// Flushes is the number of Apply calls the coalescer issued.
	Flushes uint64 `json:"flushes"`
	// Requests is the number of batch requests flushed.
	Requests uint64 `json:"requests"`
	// Grouped counts requests that shared their flush with at least one
	// other request (the coalescer's amortization win).
	Grouped uint64 `json:"grouped"`
	// Fallbacks counts flush groups that failed combined validation and were
	// re-applied request by request.
	Fallbacks uint64 `json:"fallbacks"`
	// Rejected counts requests refused for backpressure (HTTP 429).
	Rejected uint64 `json:"rejected"`
}

// PersistStats mirrors the persistence layer's durability counters
// (internal/persist.Stats); present in StatsResponse only when the server
// runs with a data directory.
type PersistStats struct {
	// SnapshotSeq and SnapshotBytes describe the current on-disk snapshot.
	SnapshotSeq   uint64 `json:"snapshot_seq"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	// WALRecords and WALBytes describe the current write-ahead log.
	WALRecords uint64 `json:"wal_records"`
	WALBytes   int64  `json:"wal_bytes"`
	// Appends, Syncs and Compactions are lifetime durability counters.
	// AppendRetrySaves counts appends that failed transiently and succeeded
	// within the store's bounded in-line retry — faults callers never saw.
	Appends          uint64 `json:"appends"`
	AppendRetrySaves uint64 `json:"append_retry_saves,omitempty"`
	Syncs            uint64 `json:"syncs"`
	Compactions      uint64 `json:"compactions"`
	// CompactErrors counts failed background compactions; SyncErrors counts
	// failed background interval fsyncs. Both should stay 0 — a non-zero
	// value means acknowledged batches may have reduced durability.
	CompactErrors uint64 `json:"compact_errors"`
	SyncErrors    uint64 `json:"sync_errors"`
	// RecoveredRecords, RecoveredSeq and TornBytes describe the boot-time
	// recovery (TornBytes > 0 means a torn WAL tail was truncated).
	RecoveredRecords uint64 `json:"recovered_records"`
	RecoveredSeq     uint64 `json:"recovered_seq"`
	TornBytes        int64  `json:"torn_bytes"`
}

// ReplicationStats is the replication section of StatsResponse: Role is
// "primary" (serving /v1/replicate) or "follower" (replicating one), and
// exactly one of Primary/Follower is set.
type ReplicationStats struct {
	Role     string               `json:"role"`
	Primary  *PrimaryReplication  `json:"primary,omitempty"`
	Follower *FollowerReplication `json:"follower,omitempty"`
}

// PrimaryReplication is the primary's view of its followers.
type PrimaryReplication struct {
	// HeadSeq is the last published sequence number; HistoryBaseSeq is the
	// earliest one still resumable from the in-memory frame history
	// (HistoryBytes big).
	HeadSeq        uint64 `json:"head_seq"`
	HistoryBaseSeq uint64 `json:"history_base_seq"`
	HistoryBytes   int64  `json:"history_bytes"`
	// Followers lists the connected replication subscribers.
	Followers []FollowerConn `json:"followers"`
	// Bootstraps/Resumes/WALResumes count served connection kinds; Drops
	// counts subscribers disconnected for backpressure (they reconnect).
	Bootstraps uint64 `json:"bootstraps"`
	Resumes    uint64 `json:"resumes"`
	WALResumes uint64 `json:"wal_resumes"`
	Drops      uint64 `json:"drops"`
}

// FollowerConn is one connected follower as the primary sees it.
type FollowerConn struct {
	Remote string `json:"remote"`
	// FromSeq is the seq the follower asked to resume from (0 on a fresh
	// bootstrap); SentSeq is the last seq handed to its transport — the
	// closest one-way streaming gets to an acked seq; SeqLag is HeadSeq
	// minus SentSeq.
	FromSeq     uint64 `json:"from_seq"`
	SentSeq     uint64 `json:"sent_seq"`
	SeqLag      uint64 `json:"seq_lag"`
	QueuedBytes int64  `json:"queued_bytes"`
	ConnectedMS int64  `json:"connected_ms"`
}

// FollowerReplication is a follower's replication health.
type FollowerReplication struct {
	// Primary is the replicated primary's base URL.
	Primary   string `json:"primary"`
	Connected bool   `json:"connected"`
	// SeqLag is how far this follower's engine trails the primary's last
	// known seq (stream frames + a periodic healthz poll); PrimarySeq and
	// AppliedSeq are its terms.
	PrimarySeq uint64 `json:"primary_seq"`
	AppliedSeq uint64 `json:"applied_seq"`
	SeqLag     uint64 `json:"seq_lag"`
	// LastFrameUnixMS is when the last frame applied (0 before any).
	LastFrameUnixMS int64  `json:"last_frame_unix_ms"`
	FramesApplied   uint64 `json:"frames_applied"`
	UpdatesApplied  uint64 `json:"updates_applied"`
	// Bootstraps counts snapshot bootstraps (1 is the boot one; more mean
	// re-bootstraps after gaps), Resumes seamless reconnects, Gaps chain
	// breaks that forced a re-bootstrap.
	Bootstraps uint64 `json:"bootstraps"`
	Resumes    uint64 `json:"resumes"`
	Reconnects uint64 `json:"reconnects"`
	Gaps       uint64 `json:"gaps"`
	LastError  string `json:"last_error,omitempty"`
}

// SnapshotResponse is the body of POST /v1/snapshot.
type SnapshotResponse struct {
	// Seq is the engine sequence number the snapshot captured.
	Seq uint64 `json:"seq"`
	// Bytes is the written snapshot's size.
	Bytes int64 `json:"bytes"`
	// ElapsedMS is the wall-clock time the snapshot + compaction took.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Warning reports a partial success: the snapshot was durably written
	// but the WAL compaction step failed, so the log kept its size. Empty
	// on full success.
	Warning string `json:"warning,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	// Tenant names the graph these stats describe ("default" on the legacy
	// unscoped route).
	Tenant     string      `json:"tenant,omitempty"`
	Vertices   int         `json:"vertices"`
	Edges      int         `json:"edges"`
	Degeneracy int         `json:"degeneracy"`
	Seq        uint64      `json:"seq"`
	Algorithm  string      `json:"algorithm"`
	Watchers   int         `json:"watchers"`
	Exec       ExecStats   `json:"exec"`
	Ingest     IngestStats `json:"ingest"`
	// Persist carries the durability counters; nil when the server runs
	// without persistence.
	Persist *PersistStats `json:"persist,omitempty"`
	// Availability carries the degraded-mode state machine's counters; nil
	// when the server runs without persistence (it then has no durability
	// layer to degrade on).
	Availability *AvailabilityStats `json:"availability,omitempty"`
	// Replication carries replication health; nil when the server neither
	// publishes to followers nor follows a primary.
	Replication *ReplicationStats `json:"replication,omitempty"`
}

// AvailabilityStats is the availability section of StatsResponse: the
// current state of the degraded-mode state machine and its lifetime
// transition counters.
type AvailabilityStats struct {
	// State is "healthy" or "degraded". While degraded the server is
	// read-only: writes answer 503 "degraded" with a Retry-After header.
	State string `json:"state"`
	// Cause describes what degraded the server; empty while healthy.
	Cause string `json:"cause,omitempty"`
	// DegradedForMS is how long the server has been degraded (0 while
	// healthy).
	DegradedForMS int64 `json:"degraded_for_ms,omitempty"`
	// Degradations and Recoveries count state transitions; Probes counts
	// recovery-probe attempts (each tries to heal the durability layer).
	Degradations uint64 `json:"degradations"`
	Recoveries   uint64 `json:"recoveries"`
	Probes       uint64 `json:"probes"`
}

// HealthResponse is the body of GET /v1/healthz. The endpoint always
// answers 200 — it is a liveness probe; route write traffic on Status
// ("ok") and Mode ("read_write") instead.
type HealthResponse struct {
	// Status is "ok", "degraded" (durability failing, writes rejected with
	// 503 until the recovery probe heals the log), or "draining" (shutdown
	// in progress).
	Status string `json:"status"`
	// Mode is the write-path mode: "read_write", "read_only" (started with
	// -read-only, or temporarily while degraded), or "follower".
	Mode string `json:"mode"`
	// Cause explains a degraded status; empty otherwise.
	Cause string `json:"cause,omitempty"`
	Seq   uint64 `json:"seq"`
}

// TenantInfo is one tenant in TenantsResponse.
type TenantInfo struct {
	Name string `json:"name"`
	// State is the lifecycle phase: "loading" (recovery in progress),
	// "ready" (serving), "evicting" (draining references / flushing), or
	// "unloaded" (durable state on disk, not resident).
	State string `json:"state"`
	// Pinned marks the default tenant, which cannot be evicted.
	Pinned bool `json:"pinned,omitempty"`
	// Durable reports the tenant has (or is) on-disk state.
	Durable bool `json:"durable"`
	// Refs is the number of requests currently holding the tenant; IdleMS is
	// how long it has been unreferenced (0 while referenced or non-resident).
	Refs   int   `json:"refs"`
	IdleMS int64 `json:"idle_ms"`
	// Seq/Vertices/Edges describe the resident engine; all zero for
	// "unloaded" tenants (sizing them would force the load being avoided).
	Seq      uint64 `json:"seq"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

// TenantsResponse is the body of GET /v1/tenants.
type TenantsResponse struct {
	// Resident and MaxTenants describe the residency bound; the admission
	// counters below are lifetime totals.
	Resident   int    `json:"resident"`
	MaxTenants int    `json:"max_tenants"`
	Loads      uint64 `json:"loads"`
	Creates    uint64 `json:"creates"`
	Evictions  uint64 `json:"evictions"`
	Rejections uint64 `json:"rejections"`
	// Tenants lists every known tenant, sorted by name.
	Tenants []TenantInfo `json:"tenants"`
}

// EvictResponse is the body of DELETE /v1/t/{tenant}.
type EvictResponse struct {
	Tenant string `json:"tenant"`
	// Evicted is true even when the tenant was already cold on disk (the
	// eviction is idempotent).
	Evicted bool `json:"evicted"`
}

// SSE event names sent on /v1/watch streams.
const (
	EventHello  = "hello"
	EventChange = "change"
	EventLagged = "lagged"
)

// HelloEvent is the data payload of the initial "hello" SSE event.
type HelloEvent struct {
	// Seq is the engine sequence number when the subscription was created;
	// changes with Seq greater than this value will be delivered (modulo
	// drops). Changes at or before this value MAY additionally be delivered:
	// the cursor attaches to the broadcast ring before Seq is read, so a
	// change racing the subscription can appear on both sides of the hello.
	Seq uint64 `json:"seq"`
	// MinCore and Buffer echo the subscription parameters in effect.
	MinCore int `json:"min_core"`
	Buffer  int `json:"buffer"`
}

// ChangeEvent is the data payload of a "change" SSE event: one vertex's
// core-number transition (mirrors kcore.CoreChange).
type ChangeEvent struct {
	Vertex  int    `json:"vertex"`
	OldCore int    `json:"old_core"`
	NewCore int    `json:"new_core"`
	Seq     uint64 `json:"seq"`
}

// LaggedEvent is the data payload of a "lagged" SSE event: the watcher fell
// behind its buffer and events were dropped.
type LaggedEvent struct {
	// Dropped is the cumulative number of events dropped on this
	// subscription since it was created.
	Dropped uint64 `json:"dropped"`
}

package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Binary content types negotiated by the server. The batch body format
// itself (magic "KCORBTCH") lives in internal/persist; this file defines
// the service-layer frames: the binary batch acknowledgement, the bulk
// cores dump, and the binary watch event stream.
const (
	// ContentTypeJSON is the default protocol for every endpoint.
	ContentTypeJSON = "application/json"
	// ContentTypeBatch is the binary POST /v1/batch body (a persist batch
	// frame) and, when sent as Accept, the binary BatchResponse encoding.
	ContentTypeBatch = "application/x-kcore-batch"
	// ContentTypeCores is the binary GET /v1/cores dump.
	ContentTypeCores = "application/x-kcore-cores"
	// ContentTypeSnapshot is the GET /v1/snapshot/export body: a raw
	// KCORSNAP image as written by internal/persist.
	ContentTypeSnapshot = "application/x-kcore-snapshot"
	// ContentTypeEvents is the binary GET /v1/watch stream (Accept
	// negotiated; the default remains text/event-stream).
	ContentTypeEvents = "application/x-kcore-events"
	// ContentTypeSSE is the default GET /v1/watch stream encoding.
	ContentTypeSSE = "text/event-stream"
)

// ErrMalformedFrame reports a structurally invalid binary service frame
// (batch ack, cores dump, or watch event).
var ErrMalformedFrame = errors.New("wire: malformed binary frame")

// ackVersion is the binary BatchResponse encoding version (leading byte).
const ackVersion = 1

// ackFlagRecomputed marks BatchResponse.Recomputed in the flags byte.
const ackFlagRecomputed = 0x01

// AppendBatchAck encodes a BatchResponse as the application/x-kcore-batch
// response body:
//
//	version      byte (1)
//	flags        byte (bit 0: recomputed)
//	seq          uvarint
//	applied      uvarint
//	coalesced    uvarint
//	flushed_with uvarint
//	visited      uvarint
//	changed      uvarint count, then count x uvarint vertex
func AppendBatchAck(buf []byte, r *BatchResponse) []byte {
	var flags byte
	if r.Recomputed {
		flags |= ackFlagRecomputed
	}
	buf = append(buf, ackVersion, flags)
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendUvarint(buf, uint64(r.Applied))
	buf = binary.AppendUvarint(buf, uint64(r.Coalesced))
	buf = binary.AppendUvarint(buf, uint64(r.FlushedWith))
	buf = binary.AppendUvarint(buf, uint64(r.Visited))
	buf = binary.AppendUvarint(buf, uint64(len(r.CoreChanged)))
	for _, v := range r.CoreChanged {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

// DecodeBatchAck parses an AppendBatchAck body.
func DecodeBatchAck(data []byte) (*BatchResponse, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: batch ack of %d bytes", ErrMalformedFrame, len(data))
	}
	if data[0] != ackVersion {
		return nil, fmt.Errorf("%w: batch ack version %d (want %d)", ErrMalformedFrame, data[0], ackVersion)
	}
	flags := data[1]
	data = data[2:]
	var r BatchResponse
	r.Recomputed = flags&ackFlagRecomputed != 0
	fields := []*uint64{&r.Seq}
	ints := []*int{&r.Applied, &r.Coalesced, &r.FlushedWith, &r.Visited}
	for _, p := range fields {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated batch ack", ErrMalformedFrame)
		}
		*p, data = v, data[n:]
	}
	for _, p := range ints {
		v, n := binary.Uvarint(data)
		if n <= 0 || v > 1<<31 {
			return nil, fmt.Errorf("%w: truncated batch ack", ErrMalformedFrame)
		}
		*p, data = int(v), data[n:]
	}
	count, n := binary.Uvarint(data)
	if n <= 0 || count > uint64(len(data)) {
		return nil, fmt.Errorf("%w: bad batch ack change count", ErrMalformedFrame)
	}
	data = data[n:]
	if count > 0 {
		r.CoreChanged = make([]int, 0, count)
		for i := uint64(0); i < count; i++ {
			v, n := binary.Uvarint(data)
			if n <= 0 || v > 1<<31 {
				return nil, fmt.Errorf("%w: bad batch ack change vertex", ErrMalformedFrame)
			}
			r.CoreChanged = append(r.CoreChanged, int(v))
			data = data[n:]
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in batch ack", ErrMalformedFrame, len(data))
	}
	return &r, nil
}

// CoresResponse is the JSON body of GET /v1/cores (Accept:
// application/json); the binary form is the cores dump below.
type CoresResponse struct {
	// Cores holds every vertex's core number, indexed by vertex id
	// (0 for vertices never seen).
	Cores []int  `json:"cores"`
	Seq   uint64 `json:"seq"`
}

// coresMagic frames the binary cores dump.
var coresMagic = [8]byte{'K', 'C', 'O', 'R', 'D', 'U', 'M', 'P'}

// CoresDumpVersion is the binary cores dump format version.
const CoresDumpVersion = 1

const coresHeaderLen = 8 + 4

// AppendCoresDump encodes the application/x-kcore-cores body:
//
//	magic "KCORDUMP"  8 bytes
//	version           u32 LE
//	seq               uvarint
//	n                 uvarint (vertex count)
//	n x core          uvarint, indexed by vertex id
//	crc               u32 LE, CRC-32 (IEEE) of seq + n + cores
func AppendCoresDump(buf []byte, seq uint64, cores []int) []byte {
	buf = append(buf, coresMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, CoresDumpVersion)
	payloadStart := len(buf)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(cores)))
	for _, c := range cores {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[payloadStart:]))
}

// DecodeCoresDump parses an AppendCoresDump body.
func DecodeCoresDump(data []byte) (seq uint64, cores []int, err error) {
	if len(data) < coresHeaderLen+4 {
		return 0, nil, fmt.Errorf("%w: cores dump of %d bytes", ErrMalformedFrame, len(data))
	}
	if [8]byte(data[:8]) != coresMagic {
		return 0, nil, fmt.Errorf("%w: bad cores dump magic %q", ErrMalformedFrame, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != CoresDumpVersion {
		return 0, nil, fmt.Errorf("%w: cores dump version %d (want %d)", ErrMalformedFrame, v, CoresDumpVersion)
	}
	payload := data[coresHeaderLen : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, fmt.Errorf("%w: cores dump CRC mismatch", ErrMalformedFrame)
	}
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated cores dump seq", ErrMalformedFrame)
	}
	payload = payload[n:]
	count, n := binary.Uvarint(payload)
	if n <= 0 || count > uint64(len(payload)) {
		return 0, nil, fmt.Errorf("%w: implausible cores dump count", ErrMalformedFrame)
	}
	payload = payload[n:]
	cores = make([]int, count)
	for i := range cores {
		v, n := binary.Uvarint(payload)
		if n <= 0 || v > 1<<31 {
			return 0, nil, fmt.Errorf("%w: bad core value at vertex %d", ErrMalformedFrame, i)
		}
		cores[i] = int(v)
		payload = payload[n:]
	}
	if len(payload) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes in cores dump", ErrMalformedFrame, len(payload))
	}
	return seq, cores, nil
}

// Binary watch event frame types (application/x-kcore-events). Each frame
// is a type byte followed by the event's uvarint fields; uvarints are
// self-delimiting, so the stream needs no length prefixes.
const (
	// FrameKeepalive is a bare type byte sent periodically so dead
	// connections surface; it carries no payload.
	FrameKeepalive = byte(0x00)
	// FrameHello carries HelloEvent: seq, min_core, buffer.
	FrameHello = byte(0x01)
	// FrameChange carries ChangeEvent: vertex, old_core, new_core, seq.
	FrameChange = byte(0x02)
	// FrameLagged carries LaggedEvent: dropped.
	FrameLagged = byte(0x03)
)

// AppendHelloFrame encodes a hello event frame.
func AppendHelloFrame(buf []byte, h HelloEvent) []byte {
	buf = append(buf, FrameHello)
	buf = binary.AppendUvarint(buf, h.Seq)
	buf = binary.AppendUvarint(buf, uint64(h.MinCore))
	return binary.AppendUvarint(buf, uint64(h.Buffer))
}

// AppendChangeFrame encodes a change event frame.
func AppendChangeFrame(buf []byte, c ChangeEvent) []byte {
	buf = append(buf, FrameChange)
	buf = binary.AppendUvarint(buf, uint64(c.Vertex))
	buf = binary.AppendUvarint(buf, uint64(c.OldCore))
	buf = binary.AppendUvarint(buf, uint64(c.NewCore))
	return binary.AppendUvarint(buf, c.Seq)
}

// AppendLaggedFrame encodes a lagged event frame.
func AppendLaggedFrame(buf []byte, l LaggedEvent) []byte {
	buf = append(buf, FrameLagged)
	return binary.AppendUvarint(buf, l.Dropped)
}

// EventFrame is one decoded binary watch frame. Type selects which field is
// set; a FrameKeepalive carries nothing.
type EventFrame struct {
	Type   byte
	Hello  HelloEvent
	Change ChangeEvent
	Lagged LaggedEvent
}

// ReadEventFrame reads the next frame off a binary watch stream. It returns
// the reader's error (io.EOF at a clean end) verbatim, and wraps
// ErrMalformedFrame for an unknown frame type or overflowing field.
func ReadEventFrame(br *bufio.Reader) (EventFrame, error) {
	var f EventFrame
	t, err := br.ReadByte()
	if err != nil {
		return f, err
	}
	f.Type = t
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	readInt := func() (int, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if v > 1<<31 {
			return 0, fmt.Errorf("%w: field overflow", ErrMalformedFrame)
		}
		return int(v), nil
	}
	switch t {
	case FrameKeepalive:
		return f, nil
	case FrameHello:
		if f.Hello.Seq, err = read(); err == nil {
			if f.Hello.MinCore, err = readInt(); err == nil {
				f.Hello.Buffer, err = readInt()
			}
		}
	case FrameChange:
		if f.Change.Vertex, err = readInt(); err == nil {
			if f.Change.OldCore, err = readInt(); err == nil {
				if f.Change.NewCore, err = readInt(); err == nil {
					f.Change.Seq, err = read()
				}
			}
		}
	case FrameLagged:
		f.Lagged.Dropped, err = read()
	default:
		return f, fmt.Errorf("%w: unknown watch frame type 0x%02x", ErrMalformedFrame, t)
	}
	return f, err
}

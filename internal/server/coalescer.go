package server

import (
	"errors"
	"sync"
	"sync/atomic"

	"kcore"
	"kcore/internal/server/wire"
	"kcore/internal/tenant"
)

// The ingest coalescer funnels concurrent POST /v1/batch requests through
// one engine Apply call. Requests that arrive while a flush is in progress
// queue up; the flusher goroutine then concatenates every queued batch (in
// arrival order) and applies them together, amortizing the engine's write
// lock, validation pass, and batch planner across callers. See the wire
// package comment for the externally visible contract.

// Sentinel ingest errors, mapped to wire codes by toWireError.
var (
	errShuttingDown = errors.New("server is shutting down")
	errOverloaded   = errors.New("ingest queue is full")
)

// pending is one queued batch request awaiting its flush.
type pending struct {
	batch kcore.Batch
	done  chan flushResult // buffered (1): the flusher never blocks on it
}

// flushResult is what the flusher hands back to a waiting request.
type flushResult struct {
	resp *wire.BatchResponse
	err  error
}

// ingestStats are the coalescer's lifetime counters (atomic: read by the
// stats handler without the queue lock).
type ingestStats struct {
	flushes   atomic.Uint64
	requests  atomic.Uint64
	grouped   atomic.Uint64
	fallbacks atomic.Uint64
	rejected  atomic.Uint64
}

func (s *ingestStats) wire() wire.IngestStats {
	return wire.IngestStats{
		Flushes:   s.flushes.Load(),
		Requests:  s.requests.Load(),
		Grouped:   s.grouped.Load(),
		Fallbacks: s.fallbacks.Load(),
		Rejected:  s.rejected.Load(),
	}
}

// coalescer owns the ingest queue and its single flusher goroutine.
type coalescer struct {
	engine     *kcore.Engine
	maxPending int // max updates buffered across queued requests
	// observe, when non-nil, is told every engine Apply outcome (nil on
	// success) — the server's availability state machine watches for
	// durability-failure streaks through it. Set before the first submit.
	observe func(error)
	// pools, when non-nil, supplies the combined-batch scratch shared across
	// every tenant the hosting manager serves. Nil (white-box tests)
	// allocates per flush.
	pools *tenant.Pools

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*pending
	queued int // total updates in queue
	closed bool

	wg    sync.WaitGroup
	stats ingestStats
}

func newCoalescer(e *kcore.Engine, maxPending int) *coalescer {
	c := &coalescer{engine: e, maxPending: maxPending}
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(1)
	go c.run()
	return c
}

// submit enqueues a batch and blocks until its flush completes. The batch
// must already be validated for shape (non-empty, within the per-request
// size limit); submit only enforces the queue-wide backpressure budget.
func (c *coalescer) submit(batch kcore.Batch) (*wire.BatchResponse, error) {
	p := &pending{batch: batch, done: make(chan flushResult, 1)}
	c.mu.Lock()
	switch {
	case c.closed:
		c.mu.Unlock()
		return nil, errShuttingDown
	case len(c.queue) > 0 && c.queued+len(batch) > c.maxPending:
		// An empty queue always admits one request (otherwise a single batch
		// larger than the budget could never be served); a non-empty queue
		// over budget sheds load instead of growing without bound.
		c.mu.Unlock()
		c.stats.rejected.Add(1)
		return nil, errOverloaded
	}
	c.queue = append(c.queue, p)
	c.queued += len(batch)
	c.cond.Signal()
	c.mu.Unlock()
	r := <-p.done
	return r.resp, r.err
}

// close stops admitting requests, waits for the flusher to drain every
// queued request, and stops it.
func (c *coalescer) close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// run is the flusher goroutine: it repeatedly takes the whole queue and
// flushes it as one group, draining the queue before exiting on close.
func (c *coalescer) run() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if len(c.queue) == 0 {
			c.mu.Unlock()
			return
		}
		reqs := c.queue
		c.queue = nil
		c.queued = 0
		c.mu.Unlock()
		c.flush(reqs)
	}
}

// flush applies one group of requests and hands each its result.
func (c *coalescer) flush(reqs []*pending) {
	c.stats.flushes.Add(1)
	c.stats.requests.Add(uint64(len(reqs)))
	if len(reqs) == 1 {
		info, err := c.engine.Apply(reqs[0].batch)
		c.observed(err)
		reqs[0].done <- singleResult(info, err, 1)
		return
	}
	c.stats.grouped.Add(uint64(len(reqs)))

	var combined kcore.Batch
	if c.pools != nil {
		combined = c.pools.Batch(totalLen(reqs))
	} else {
		combined = make(kcore.Batch, 0, totalLen(reqs))
	}
	for _, r := range reqs {
		combined = append(combined, r.batch...)
	}
	info, err := c.engine.Apply(combined)
	c.observed(err)
	if c.pools != nil {
		// Apply copies what it keeps (BatchInfo attribution, subscriber
		// events); the combined slice is free to recycle immediately.
		c.pools.PutBatch(combined)
	}
	if err != nil {
		// A *kcore.HookError means the combined batch APPLIED in memory but
		// the durability hook (WAL append) failed afterwards: re-applying
		// individual requests would double-apply them, so every caller gets
		// the persistence error instead.
		var he *kcore.HookError
		if errors.As(err, &he) {
			for _, r := range reqs {
				r.done <- flushResult{err: err}
			}
			return
		}
		// The combined group failed validation — one request's invalid
		// update must not fail its co-flushed neighbors. Re-apply each
		// request individually, in arrival order, so every caller gets its
		// own success or its own error.
		c.stats.fallbacks.Add(1)
		for _, r := range reqs {
			ri, rerr := c.engine.Apply(r.batch)
			c.observed(rerr)
			r.done <- singleResult(ri, rerr, 1)
		}
		return
	}
	c.splitGroup(reqs, info)
}

// observed forwards one Apply outcome to the observer, if any.
func (c *coalescer) observed(err error) {
	if c.observe != nil {
		c.observe(err)
	}
}

// splitGroup maps a successful combined BatchInfo back onto the individual
// requests of the flush group.
func (c *coalescer) splitGroup(reqs []*pending, info kcore.BatchInfo) {
	if info.Recomputed {
		// Wholesale recomputation has no per-update attribution (Updates is
		// nil): report group-final seq and submitted counts, per the
		// documented contract.
		for _, r := range reqs {
			r.done <- flushResult{resp: &wire.BatchResponse{
				Seq:         info.Seq,
				Applied:     len(r.batch),
				Recomputed:  true,
				FlushedWith: len(reqs),
			}}
		}
		return
	}
	off := 0
	for _, r := range reqs {
		resp := &wire.BatchResponse{Seq: info.Seq, FlushedWith: len(reqs)}
		var seen map[int]struct{}
		for _, u := range info.Updates[off : off+len(r.batch)] {
			if u.Coalesced {
				resp.Coalesced++
				continue
			}
			resp.Applied++
			resp.Visited += u.Visited
			for _, v := range u.CoreChanged {
				if seen == nil {
					seen = make(map[int]struct{})
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				resp.CoreChanged = append(resp.CoreChanged, v)
			}
		}
		off += len(r.batch)
		r.done <- flushResult{resp: resp}
	}
}

// singleResult converts an un-grouped Apply outcome into a flushResult.
func singleResult(info kcore.BatchInfo, err error, flushedWith int) flushResult {
	if err != nil {
		return flushResult{err: err}
	}
	return flushResult{resp: &wire.BatchResponse{
		Seq:         info.Seq,
		Applied:     info.Applied,
		Coalesced:   info.Coalesced,
		Recomputed:  info.Recomputed,
		FlushedWith: flushedWith,
		CoreChanged: info.Total.CoreChanged,
		Visited:     info.Total.Visited,
	}}
}

func totalLen(reqs []*pending) int {
	n := 0
	for _, r := range reqs {
		n += len(r.batch)
	}
	return n
}
